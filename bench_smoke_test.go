package bench

import (
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sync"
	"testing"

	"sweeper/internal/epidemic"
	"sweeper/internal/experiments"
)

// smokeHotPathMicro caches one RunHotPathMicro result for the smoke
// registry, so the snapshot and bulk-I/O entries share a single (heavyweight)
// measurement run instead of booting and warming squid twice.
var smokeHotPathMicro = sync.OnceValues(experiments.RunHotPathMicro)

// benchOnce maps every benchmark in this package to a function executing one
// iteration of its body — the -benchtime=1x equivalent. TestBenchmarkSmoke
// runs each on every plain `go test`, so the paper-table benchmarks cannot
// silently rot, and TestBenchmarkRegistryComplete fails the moment a new
// Benchmark function is added without a registry entry.
var benchOnce = map[string]func(tb testing.TB){
	"BenchmarkTable1BuildApplications": table1Once,
	"BenchmarkTable2DefenseApache1":    func(tb testing.TB) { defenseOnce(tb, "apache1") },
	"BenchmarkTable2DefenseApache2":    func(tb testing.TB) { defenseOnce(tb, "apache2") },
	"BenchmarkTable2DefenseCVS":        func(tb testing.TB) { defenseOnce(tb, "cvs") },
	"BenchmarkTable2DefenseSquid":      func(tb testing.TB) { defenseOnce(tb, "squid") },
	"BenchmarkTable3AnalysisApache1":   func(tb testing.TB) { analysisTimesOnce(tb, "apache1") },
	"BenchmarkTable3AnalysisSquid":     func(tb testing.TB) { analysisTimesOnce(tb, "squid") },
	"BenchmarkTable3ParallelVsSequential": func(tb testing.TB) {
		seq, par := engineComparisonOnce(tb)
		if seq.antibodySec <= 0 || par.antibodySec <= 0 || seq.totalSec <= 0 || par.totalSec <= 0 {
			tb.Fatalf("implausible analysis times: sequential %+v, parallel %+v", seq, par)
		}
	},
	"BenchmarkTable3PooledVsFreshClone": func(tb testing.TB) {
		freshNs, pooledNs := pooledVsFreshOnce(tb)
		if freshNs <= 0 || pooledNs <= 0 {
			tb.Fatalf("implausible clone setup times: fresh %v ns, pooled %v ns", freshNs, pooledNs)
		}
		// Since the shared relocated image landed, a fresh clone no longer
		// relocates code or packs micro-ops, so the two paths are close
		// enough that race-detector instrumentation (which inflates the
		// pooled reset's map copies most) can invert the ordering; the
		// ordering bar only holds on uninstrumented builds.
		if !raceEnabled && pooledNs >= freshNs {
			tb.Errorf("pooled clone setup (%.0f ns) not below fresh clone setup (%.0f ns)", pooledNs, freshNs)
		}
	},
	"BenchmarkFigure4CheckpointInterval20ms":  func(tb testing.TB) { figure4Once(tb, 20) },
	"BenchmarkFigure4CheckpointInterval50ms":  func(tb testing.TB) { figure4Once(tb, 50) },
	"BenchmarkFigure4CheckpointInterval100ms": func(tb testing.TB) { figure4Once(tb, 100) },
	"BenchmarkFigure4CheckpointInterval200ms": func(tb testing.TB) { figure4Once(tb, 200) },
	"BenchmarkFigure4CheckpointIntervalSweep": func(tb testing.TB) {
		sweep := figure4SweepOnce(tb)
		for _, app := range figure4SweepApps {
			points := sweep[app]
			if len(points) != len(figure4SweepIntervals) {
				tb.Fatalf("%s: sweep returned %d points, want %d", app, len(points), len(figure4SweepIntervals))
			}
			// Overheads are deterministic virtual-clock quantities: never
			// negative beyond rounding, and no cheaper at the most frequent
			// checkpointing than at the paper's default interval.
			for _, pt := range points {
				if pt.Overhead < -1e-9 || pt.Overhead > 1 {
					tb.Errorf("%s @%dms: implausible overhead %v", app, pt.IntervalMs, pt.Overhead)
				}
			}
			if first, last := points[0].Overhead, points[len(points)-1].Overhead; first < last-1e-9 {
				tb.Errorf("%s: overhead at %dms (%v) below overhead at %dms (%v)",
					app, points[0].IntervalMs, first, points[len(points)-1].IntervalMs, last)
			}
		}
	},
	"BenchmarkSliceFallbackPrune": func(tb testing.TB) {
		pruned, forced := sliceFallbackOnce(tb)
		if !pruned.ControlPruned || forced.ControlPruned {
			tb.Fatalf("prune flags wrong: pruned=%+v forced=%+v", pruned, forced)
		}
		if !pruned.Consistent {
			tb.Errorf("data-only fallback slice inconsistent: missing %v", pruned.Missing)
		}
		if pruned.Nodes <= 0 || forced.Nodes <= 0 {
			tb.Fatalf("implausible slice sizes: pruned %d, forced %d", pruned.Nodes, forced.Nodes)
		}
		// The point of the prune: the fallback explores a fraction of what
		// the control-dep slice walks on squid.
		if pruned.Nodes*2 > forced.Nodes {
			tb.Errorf("fallback slice with prune explores %d nodes, control-dep slice %d; expected at least a 2x cut",
				pruned.Nodes, forced.Nodes)
		}
	},
	"BenchmarkFigure4FleetSweep": func(tb testing.TB) {
		sweep := figure4FleetSweepOnce(tb)
		if len(sweep) != len(fleetSweepApps) {
			tb.Fatalf("fleet sweep covered %d apps, want %d", len(sweep), len(fleetSweepApps))
		}
		for _, app := range sweep {
			if app.Guests < 2 {
				tb.Fatalf("%s: fleet sweep ran %d guests, want >= 2 concurrent live guests", app.App, app.Guests)
			}
			if len(app.Points) != len(figure4SweepIntervals) {
				tb.Fatalf("%s: sweep returned %d points, want %d", app.App, len(app.Points), len(figure4SweepIntervals))
			}
			for _, pt := range app.Points {
				if pt.ThroughputPerGuest <= 0 || pt.OfferedPerGuest <= 0 {
					tb.Errorf("%s @%dms: empty generator rates: %+v", app.App, pt.IntervalMs, pt)
				}
				if pt.Overhead < -1e-9 || pt.Overhead > 1 {
					tb.Errorf("%s @%dms: implausible overhead %v", app.App, pt.IntervalMs, pt.Overhead)
				}
				if pt.CapturedBytes <= 0 || pt.CapturedBytes >= pt.FullScanBytes {
					tb.Errorf("%s @%dms: captured %d bytes not below full-scan %d", app.App, pt.IntervalMs, pt.CapturedBytes, pt.FullScanBytes)
				}
			}
			// Overhead-vs-interval must come out monotone (non-increasing)
			// against the live fleet, like the single-guest Figure 4 sweep.
			if first, last := app.Points[0].Overhead, app.Points[len(app.Points)-1].Overhead; first < last-1e-9 {
				tb.Errorf("%s: fleet overhead at %dms (%v) below overhead at %dms (%v)",
					app.App, app.Points[0].IntervalMs, first, app.Points[len(app.Points)-1].IntervalMs, last)
			}
		}
	},
	"BenchmarkFigure5FleetThroughput": func(tb testing.TB) {
		app := figure5FleetOnce(tb)
		pt := app.Points[0]
		if pt.AttacksHandled == 0 || pt.AntibodiesGenerated == 0 {
			tb.Errorf("worm injections triggered no defence: %+v", pt)
		}
		if pt.OfferedPerGuest <= 0 || pt.ThroughputPerGuest <= 0 {
			tb.Fatalf("empty fleet throughput: %+v", pt)
		}
		// The excised exploit injections and recovery gaps cost some completed
		// requests, but the fleet must stay close to the offered load.
		if pt.ThroughputPerGuest > pt.OfferedPerGuest*1.001 {
			tb.Errorf("completed rate %.1f above offered rate %.1f", pt.ThroughputPerGuest, pt.OfferedPerGuest)
		}
		if pt.ThroughputPerGuest < pt.OfferedPerGuest*0.8 {
			tb.Errorf("completed rate %.1f collapsed below 80%% of offered %.1f", pt.ThroughputPerGuest, pt.OfferedPerGuest)
		}
	},
	"BenchmarkSnapshotSubPageVsPage": func(tb testing.TB) {
		r, err := experiments.RunSubPageMicro()
		if err != nil {
			tb.Fatal(err)
		}
		// The headline acceptance bar of the sub-page work: at least 2x fewer
		// captured bytes on the scattered-small-write workload (measured:
		// ~512x), and no regression for sequential full-page writers.
		if r.ScatteredReductionX < 2 {
			tb.Errorf("scattered-write capture reduction %.2fx, want >= 2x (%d captured vs %d page-granular)",
				r.ScatteredReductionX, r.ScatteredCapturedBytes, r.ScatteredPageBytes)
		}
		if r.SequentialReductionX < 0.99 {
			tb.Errorf("sequential-write capture regressed: %.3fx (%d captured vs %d page-granular)",
				r.SequentialReductionX, r.SequentialCapturedBytes, r.SequentialPageBytes)
		}
	},
	"BenchmarkSnapshotAlternatingWriter": func(tb testing.TB) {
		r, err := experiments.RunSubPageMicro()
		if err != nil {
			tb.Fatal(err)
		}
		// The bugfix bar: header+trailer writers used to blow the single
		// watermark past the patch cutoff and freeze whole pages (reduction
		// ~1x). Run-list tracking must keep capture sub-page — the same
		// order as the scattered case (measured: ~256x).
		if r.AlternatingReductionX < 2 {
			tb.Errorf("alternating-end capture reduction %.2fx, want >= 2x — whole-page fallback (%d captured vs %d page-granular)",
				r.AlternatingReductionX, r.AlternatingCapturedBytes, r.AlternatingPageBytes)
		}
	},
	"BenchmarkSnapshotDirtyVsFullScan": func(tb testing.TB) {
		r, err := smokeHotPathMicro()
		if err != nil {
			tb.Fatal(err)
		}
		if r.SteadySnapshotNs <= 0 || r.FullSnapshotNs <= 0 {
			tb.Fatalf("implausible snapshot times: %+v", r)
		}
		if r.SteadyDirtyPages <= 0 || r.SteadyDirtyPages >= r.MappedPages {
			tb.Errorf("steady checkpoint captured %d of %d pages; expected a small dirty delta", r.SteadyDirtyPages, r.MappedPages)
		}
		// The headline acceptance bar of the incremental-checkpoint work:
		// steady-state checkpoints at least 5x cheaper than full scans on
		// the (cache-warmed) Squid image. Under the race detector both
		// paths are short instrumented loops and the ratio compresses
		// (observed ~5-6x even before the multi-run dirty lists), so the
		// race lane only guards against losing the incrementality outright.
		bar := 5.0
		if raceEnabled {
			bar = 2.5
		}
		if r.SnapshotSpeedup < bar {
			tb.Errorf("steady-state snapshot only %.1fx cheaper than full scan (want >= %.1fx): steady %.0fns, full %.0fns",
				r.SnapshotSpeedup, bar, r.SteadySnapshotNs, r.FullSnapshotNs)
		}
	},
	"BenchmarkBulkGuestMemoryIO": func(tb testing.TB) {
		r, err := smokeHotPathMicro()
		if err != nil {
			tb.Fatal(err)
		}
		if r.BulkReadNsPerByte <= 0 || r.BulkWriteNsPerByte <= 0 {
			tb.Fatalf("implausible bulk I/O times: %+v", r)
		}
		if r.BulkIOSpeedup < 2 {
			tb.Errorf("bulk guest memory I/O only %.1fx faster than byte-at-a-time (want >= 2x)", r.BulkIOSpeedup)
		}
	},
	"BenchmarkInterpreterDispatch": func(tb testing.TB) {
		r, err := experiments.RunDispatchMicro()
		if err != nil {
			tb.Fatal(err)
		}
		if r.UntooledStepNs <= 0 || r.UntooledSlowPathNs <= 0 || r.TooledStepNs <= 0 {
			tb.Fatalf("implausible dispatch times: %+v", r)
		}
		// The acceptance bar of the block-dispatch work: the fused block loop
		// several times cheaper per instruction than the per-Step path
		// (measured ~3.3x on the reference machine; 2x leaves noise headroom).
		if r.DispatchSpeedup < 2 {
			tb.Errorf("block dispatch only %.1fx faster than per-Step path (want >= 2x): fast %.2fns, slow %.2fns",
				r.DispatchSpeedup, r.UntooledStepNs, r.UntooledSlowPathNs)
		}
		if r.TooledStepNs <= r.UntooledStepNs {
			tb.Errorf("tooled per-instr cost %.2fns not above untooled fast path %.2fns", r.TooledStepNs, r.UntooledStepNs)
		}
		// The tooled-path acceptance bar: with a hook attached the block
		// engines must still beat the per-Step path by a clear margin
		// (measured ~2x on the reference machine; 1.5x leaves noise headroom).
		// Ratio-based so it holds on any machine speed.
		if r.TooledSpeedup < 1.5 {
			tb.Errorf("tooled block dispatch only %.1fx faster than tooled per-Step path (want >= 1.5x): fast %.2fns, slow %.2fns",
				r.TooledSpeedup, r.TooledStepNs, r.TooledSlowPathNs)
		}
	},
	"BenchmarkVSEFOverhead": func(tb testing.TB) { vsefOverheadOnce(tb) },
	"BenchmarkFigure5Recovery": func(tb testing.TB) {
		recoveryGap, restartGap := figure5Once(tb)
		if recoveryGap >= restartGap {
			tb.Errorf("recovery gap %v ms not below restart gap %v ms", recoveryGap, restartGap)
		}
	},
	"BenchmarkFigure6EpidemicSlammer": func(tb testing.TB) {
		communityFigureOnce(0.1, 1.0, epidemic.Figure6Alphas(), 0.0001, 5)
	},
	"BenchmarkFigure7EpidemicHitlist1000": func(tb testing.TB) {
		communityFigureOnce(1000, epidemic.DefaultRho, epidemic.Figure78Alphas(), 0.0001, 10)
	},
	"BenchmarkFigure8EpidemicHitlist4000": func(tb testing.TB) {
		communityFigureOnce(4000, epidemic.DefaultRho, epidemic.Figure78Alphas(), 0.0001, 10)
	},
	"BenchmarkEpidemicLiveCommunity": func(tb testing.TB) { epidemicLiveOnce(tb) },
	"BenchmarkAblationProactiveProtection": func(tb testing.TB) {
		with, without := proactiveAblationOnce()
		if with >= without {
			tb.Errorf("proactive protection did not reduce infection: with %v, without %v", with, without)
		}
	},
	"BenchmarkAgentBasedCrossCheck": func(tb testing.TB) { agentCrossCheckOnce(tb, 1) },
}

// TestBenchmarkSmoke executes one iteration of every registered benchmark.
func TestBenchmarkSmoke(t *testing.T) {
	for name, fn := range benchOnce {
		t.Run(name, func(t *testing.T) { fn(t) })
	}
}

// TestBenchmarkRegistryComplete scans the package's test sources for
// Benchmark functions and fails if any is missing from benchOnce (or if the
// registry names a benchmark that no longer exists).
func TestBenchmarkRegistryComplete(t *testing.T) {
	files, err := filepath.Glob("*_test.go")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^func (Benchmark\w+)\(`)
	inSource := make(map[string]bool)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range re.FindAllStringSubmatch(string(data), -1) {
			inSource[m[1]] = true
		}
	}
	if len(inSource) == 0 {
		t.Fatal("no Benchmark functions found; scan is broken")
	}
	for name := range inSource {
		if _, ok := benchOnce[name]; !ok {
			t.Errorf("%s has no benchOnce registry entry; add one so the smoke test covers it", name)
		}
	}
	for name := range benchOnce {
		if !inSource[name] {
			t.Errorf("benchOnce entry %s does not match any Benchmark function", name)
		}
	}
}

// TestParallelAnalysisIsFasterThanSequential guards the headline latency
// claim behind the parallel engine: with the analyses running concurrently
// on independent clones, the final antibody ships after max(membug, taint)
// instead of their sum. The win requires actual parallel hardware, so the
// assertion is skipped on single-CPU machines (where goroutines only
// interleave), and each engine is timed best-of-3 to shed collector noise.
func TestParallelAnalysisIsFasterThanSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	// Two CPUs are enough for membug∥taint in principle, but on small shared
	// runners the ~10ms phase is within scheduler noise; require headroom.
	if runtime.NumCPU() < 4 {
		t.Skipf("timing comparison needs parallel hardware headroom; NumCPU=%d", runtime.NumCPU())
	}
	if _, err := experiments.RunDefense("squid", 8, 8, nil); err != nil {
		t.Fatal(err) // warm-up
	}
	seq, par := engineComparisonOnce(t)
	t.Logf("time to final antibody: sequential best %.2fms, parallel best %.2fms (totals %.2fms / %.2fms)",
		seq.antibodySec*1e3, par.antibodySec*1e3, seq.totalSec*1e3, par.totalSec*1e3)
	if par.antibodySec >= seq.antibodySec {
		t.Errorf("parallel time-to-antibody (%.2fms) not below sequential (%.2fms)",
			par.antibodySec*1e3, seq.antibodySec*1e3)
	}
}
