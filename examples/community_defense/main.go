// Community defence: evaluates how a partial Sweeper deployment protects the
// whole vulnerable population (Section 6 of the paper). It reproduces the
// headline numbers of Figures 6-8 with the SI differential-equation model,
// cross-checks one configuration with the agent-based simulator, and prints
// the abstract's containment claim for a hit-list worm.
package main

import (
	"fmt"
	"log"

	"sweeper/internal/epidemic"
	"sweeper/internal/experiments"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== Slammer outbreak (beta = 0.1, N = 100000), Figure 6 ==")
	for _, alpha := range []float64{0.0001, 0.001, 0.01} {
		for _, gamma := range []float64{5, 20, 100} {
			ratio := epidemic.InfectionRatio(0.1, 100000, alpha, gamma, 1.0)
			fmt.Printf("   producers %-7g response %3.0fs -> %6.2f%% infected\n", alpha, gamma, ratio*100)
		}
	}

	fmt.Println("\n== Hit-list worm (beta = 1000) with proactive protection rho = 2^-12, Figure 7 ==")
	for _, alpha := range []float64{0.0001, 0.001} {
		for _, gamma := range []float64{5, 10, 30, 50} {
			ratio := epidemic.InfectionRatio(1000, 100000, alpha, gamma, epidemic.DefaultRho)
			fmt.Printf("   producers %-7g response %3.0fs -> %6.2f%% infected\n", alpha, gamma, ratio*100)
		}
	}

	fmt.Println("\n== Hit-list worm (beta = 4000), Figure 8 ==")
	for _, gamma := range []float64{5, 10, 20} {
		ratio := epidemic.InfectionRatio(4000, 100000, 0.0001, gamma, epidemic.DefaultRho)
		fmt.Printf("   producers 0.0001  response %3.0fs -> %6.2f%% infected\n", gamma, ratio*100)
	}

	fmt.Println("\n== Why proactive protection matters (beta = 1000, gamma = 10s) ==")
	for _, alpha := range []float64{0.001, 0.0001} {
		with := epidemic.InfectionRatio(1000, 100000, alpha, 10, epidemic.DefaultRho)
		without := epidemic.InfectionRatio(1000, 100000, alpha, 10, 1.0)
		fmt.Printf("   producers %-7g: with ASLR %6.2f%%   without %6.2f%%\n", alpha, with*100, without*100)
	}

	fmt.Println("\n== Agent-based cross-check (N = 20000) ==")
	rows, err := experiments.AgentCrossCheck(20000, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("   beta=%-6g alpha=%-7g gamma=%-4.0f  model %6.2f%%  agents %6.2f%%\n",
			r.Beta, r.Alpha, r.Gamma, r.ModelRatio*100, r.AgentRatio*100)
	}

	unimpeded, contained := experiments.AbstractContainmentClaim()
	fmt.Printf("\nAbstract claim: a hit-list worm alone infects %.1f%% of hosts within a second;\n", unimpeded*100)
	fmt.Printf("with Sweeper producers at 0.1%% deployment and a 5 s response it is contained to %.2f%%.\n", contained*100)
}
