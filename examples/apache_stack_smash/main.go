// Apache stack-smash walkthrough: shows what the CVE-2003-0542-style stack
// smashing exploit does to an unprotected Apache guest (control-flow hijack,
// "OWNED"), how address-space randomisation turns the hijack into a
// detectable fault, and how Sweeper's analysis pipeline refines the initial
// return-address VSEF into a bounds check on the overflowing store in
// lmatcher — exactly the progression described in the paper's Table 2.
package main

import (
	"bytes"
	"fmt"
	"log"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

func main() {
	log.SetFlags(0)
	spec, err := apps.ByName("apache1")
	if err != nil {
		log.Fatal(err)
	}
	payload, err := exploit.Apache1ExploitDefault(spec.Image)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: the unprotected server at the attacker-assumed layout.
	fmt.Println("== unprotected apache-1.3.27, default address-space layout ==")
	proxy := netproxy.New()
	proxy.Submit([]byte("GET /index.html HTTP/1.0\r\n\r\n"), "client", false)
	proxy.Submit(payload, "worm", true)
	victim, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		log.Fatal(err)
	}
	stop := victim.Run(0)
	owned := false
	for _, out := range victim.Outputs() {
		if bytes.Contains(out.Data, []byte("OWNED")) {
			owned = true
		}
	}
	fmt.Printf("   server stopped with %v; control-flow hijacked: %v\n\n", stop.Reason, owned)

	// Part 2: the same exploit against a Sweeper-protected server.
	fmt.Println("== the same exploit against a Sweeper-protected server ==")
	sw, err := core.New(spec.Name, spec.Image, spec.Options, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sw.Submit(exploit.Benign("apache1", i), "client", false)
	}
	sw.Submit(payload, "worm", true)
	for i := 10; i < 20; i++ {
		sw.Submit(exploit.Benign("apache1", i), "client", false)
	}
	if _, err := sw.ServeAll(); err != nil {
		log.Fatal(err)
	}
	// The slicing cross-check completes after recovery; join it before
	// printing its fields.
	sw.WaitAnalyses()
	r := sw.Attacks()[0]
	fmt.Printf("   lightweight monitor : %s\n", r.Detection.Reason)
	fmt.Printf("   memory-state step   : %s\n", r.CoreDump.Summary())
	if len(r.InitialAntibody.VSEFs) > 0 {
		fmt.Printf("   initial VSEF        : %s (after %v)\n", r.InitialAntibody.VSEFs[0], r.TimeToFirstVSEF)
	}
	if len(r.MemBugFindings) > 0 {
		fmt.Printf("   memory-bug step     : %s\n", r.MemBugFindings[0].Summary())
	}
	if r.RefinedAntibody != nil {
		last := r.RefinedAntibody.VSEFs[len(r.RefinedAntibody.VSEFs)-1]
		fmt.Printf("   refined VSEF        : %s (after %v)\n", last, r.TimeToBestVSEF)
	}
	fmt.Printf("   exploit input       : request #%d identified\n", r.CulpritRequestID)
	fmt.Printf("   slicing             : %d dynamic instructions, consistent=%v\n", r.SliceNodes, r.SliceConsistent)
	fmt.Printf("   recovered           : %v; server still answering: %v\n", r.Recovered, !sw.Halted())

	// Part 3: a polymorphic variant (different padding, same vulnerability)
	// gets past the exact input signature but is stopped by the VSEF.
	variant, err := exploit.Apache1ExploitVariant(spec.Image, vm.DefaultLayout(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== polymorphic variant against the inoculated server ==")
	accepted := sw.Submit(variant, "worm", true)
	fmt.Printf("   passed the input filter: %v (it is a different byte string)\n", accepted)
	if _, err := sw.ServeAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   attacks handled so far: %d; server still up: %v\n", len(sw.Attacks()), !sw.Halted())
}
