// Quickstart: protect the Squid guest server with Sweeper, let a worm hit it
// with the CVE-2002-0068 heap-overflow exploit, and watch Sweeper detect the
// attack, analyse it by rollback-and-replay, generate antibodies and recover
// without restarting the service.
package main

import (
	"fmt"
	"log"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
)

func main() {
	log.SetFlags(0)

	// 1. Pick the application to protect and build a Sweeper around it.
	spec, err := apps.ByName("squid")
	if err != nil {
		log.Fatal(err)
	}
	sw, err := core.New(spec.Name, spec.Image, spec.Options, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protecting %s (%s)\n", spec.Program, spec.CVE)

	// 2. Normal traffic flows through the proxy.
	for i := 0; i < 25; i++ {
		sw.Submit(exploit.Benign("squid", i), "client", false)
	}

	// 3. A worm sends the exploit...
	payload, err := exploit.Exploit(spec)
	if err != nil {
		log.Fatal(err)
	}
	sw.Submit(payload, "worm", true)

	// ...while normal traffic keeps arriving.
	for i := 25; i < 50; i++ {
		sw.Submit(exploit.Benign("squid", i), "client", false)
	}

	// 4. Serve everything. Sweeper detects the exploit, analyses it and
	// recovers; the benign requests are all answered.
	res, err := sw.ServeAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d requests, attacks handled: %d, server still up: %v\n",
		res.RequestsServed, res.AttacksHandled, !sw.Halted())

	report := sw.Attacks()[0]
	fmt.Printf("\ndetected   : %s\n", report.Detection.Reason)
	fmt.Printf("analysis   : %s\n", report.CoreDump.Summary())
	fmt.Printf("exploit in : request #%d (%d bytes)\n", report.CulpritRequestID, len(report.CulpritPayload))
	fmt.Printf("first VSEF : %v after detection\n", report.TimeToFirstVSEF)
	fmt.Printf("recovered  : %v (%d virtual ms of service gap)\n", report.Recovered, report.RecoveryVirtualMs)

	fmt.Println("\nantibodies generated:")
	for _, ab := range sw.Antibodies() {
		fmt.Printf("  %s\n", ab)
	}

	// 5. The same exploit arrives again: the input-signature antibody drops
	// it at the proxy before it ever reaches the server.
	if sw.Submit(payload, "worm", true) {
		log.Fatal("the repeated exploit should have been filtered")
	}
	fmt.Println("\nrepeated exploit was filtered by the input signature — the host is immune")
}
