// Partial deployment: one Producer host runs the full Sweeper system; several
// Consumer hosts run only the lightweight runtime and consume antibodies the
// Producer distributes (as serialised bundles). The example shows that a
// Consumer that has installed the antibody stops the same worm — and even a
// polymorphic variant — without ever running the heavyweight analysis itself,
// which is the partial-deployment story of Sections 2.1 and 6.
package main

import (
	"fmt"
	"log"

	"sweeper/internal/antibody"
	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
)

func main() {
	log.SetFlags(0)
	spec, err := apps.ByName("cvs")
	if err != nil {
		log.Fatal(err)
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		log.Fatal(err)
	}

	// --- Producer host: full Sweeper, gets hit first, generates antibodies. ---
	producerCfg := core.DefaultConfig()
	producer, err := core.New(spec.Name, spec.Image, spec.Options, producerCfg)
	if err != nil {
		log.Fatal(err)
	}
	var distributed [][]byte
	producer.OnAntibody = func(a *antibody.Antibody) {
		// Antibodies are distributed piecemeal, as each analysis step
		// completes; here we serialise them exactly as they would go on the
		// wire to the consumers.
		if data, err := a.Marshal(); err == nil {
			distributed = append(distributed, data)
		}
	}
	for i := 0; i < 10; i++ {
		producer.Submit(exploit.Benign("cvs", i), "client", false)
	}
	producer.Submit(payload, "worm", true)
	if _, err := producer.ServeAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("producer: detected and analysed the attack, distributed %d antibody bundles\n", len(distributed))
	fmt.Printf("producer: first VSEF available %v after detection\n", producer.Attacks()[0].TimeToFirstVSEF)

	// --- Consumer host: lightweight runtime only (no analysis steps). ---
	consumerCfg := core.DefaultConfig()
	consumerCfg.EnableMemBug = false
	consumerCfg.EnableTaint = false
	consumerCfg.EnableSlicing = false
	consumerCfg.ASLRSeed = 777 // a different randomisation than the producer
	consumer, err := core.New(spec.Name, spec.Image, spec.Options, consumerCfg)
	if err != nil {
		log.Fatal(err)
	}

	// The consumer installs the final (most refined) received antibody. VSEFs
	// are position independent, so they apply unchanged despite the different
	// address-space randomisation.
	final, err := antibody.Unmarshal(distributed[len(distributed)-1])
	if err != nil {
		log.Fatal(err)
	}
	if _, err := final.Apply(consumer.Process(), consumer.Proxy()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer: installed %s\n", final)

	// The worm now targets the consumer with the identical exploit: the input
	// signature drops it at the proxy.
	if consumer.Submit(payload, "worm", true) {
		log.Fatal("consumer accepted the exploit despite the input signature")
	}
	fmt.Println("consumer: identical exploit filtered by the received input signature")

	// A polymorphic variant slips past the signature, but the received VSEF
	// detects it and the consumer's own lightweight runtime recovers.
	variant, err := exploit.ExploitVariant(spec, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		consumer.Submit(exploit.Benign("cvs", 100+i), "client", false)
	}
	if !consumer.Submit(variant, "worm", true) {
		log.Fatal("variant unexpectedly filtered; cannot demonstrate the VSEF")
	}
	for i := 0; i < 5; i++ {
		consumer.Submit(exploit.Benign("cvs", 200+i), "client", false)
	}
	if _, err := consumer.ServeAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer: polymorphic variant handled (%d attack(s) stopped), server still up: %v\n",
		len(consumer.Attacks()), !consumer.Halted())
	fmt.Printf("consumer: served %d benign requests in total\n", consumer.Process().ServedRequests())
}
