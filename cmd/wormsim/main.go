// Command wormsim runs the Section 6 community-defence models: the
// Susceptible-Infected differential-equation model (equations 1-4) and the
// agent-based cross-check, for arbitrary worm and deployment parameters.
//
// Examples:
//
//	wormsim -beta 0.1 -alpha 0.001 -gamma 20              # Slammer-like
//	wormsim -beta 1000 -alpha 0.0001 -gamma 10 -rho 0.000244  # hit-list + ASLR
//	wormsim -beta 1000 -alpha 0.001 -gamma 10 -agent -n 50000 # agent-based
package main

import (
	"flag"
	"fmt"
	"log"

	"sweeper/internal/epidemic"
)

func main() {
	log.SetFlags(0)
	var (
		beta   = flag.Float64("beta", 0.1, "contact rate (infection attempts per infected host per second)")
		n      = flag.Float64("n", 100000, "number of vulnerable hosts")
		alpha  = flag.Float64("alpha", 0.001, "producer (full Sweeper deployment) fraction")
		gamma  = flag.Float64("gamma", 5, "community response time in seconds")
		rho    = flag.Float64("rho", 1.0, "per-attempt success probability under proactive protection (2^-12 = 0.000244)")
		agent  = flag.Bool("agent", false, "also run the agent-based simulation")
		runs   = flag.Int("runs", 3, "agent-based runs to average")
		seed   = flag.Int64("seed", 1, "agent-based RNG seed")
		series = flag.Bool("series", false, "print the I(t)/P(t) time series of the ODE model")
	)
	flag.Parse()

	params := epidemic.Params{Beta: *beta, N: *n, Alpha: *alpha, Gamma: *gamma, Rho: *rho}
	res, err := epidemic.Simulate(params, *series)
	if err != nil {
		log.Fatalf("wormsim: %v", err)
	}
	fmt.Printf("SI model: beta=%g N=%g alpha=%g gamma=%gs rho=%g\n", *beta, *n, *alpha, *gamma, *rho)
	fmt.Printf("  T0 (first producer contacted) : %.3f s\n", res.T0)
	fmt.Printf("  infected at T0                : %.1f hosts\n", res.InfectedAtT0)
	fmt.Printf("  infected at T0+gamma          : %.1f hosts\n", res.FinalInfected)
	fmt.Printf("  infection ratio               : %.4f (%.2f%%)\n", res.InfectionRatio, res.InfectionRatio*100)
	if res.Saturated {
		fmt.Printf("  NOTE: the worm saturated the susceptible population before the response completed\n")
	}
	if *series {
		fmt.Printf("\n# t  infected  producers-contacted\n")
		step := len(res.Series)/200 + 1
		for i := 0; i < len(res.Series); i += step {
			p := res.Series[i]
			fmt.Printf("%.4f\t%.1f\t%.2f\n", p.Time, p.Infected, p.Producers)
		}
	}

	if *agent {
		mean, results, err := epidemic.SimulateAgentsMean(epidemic.AgentParams{
			N:     int(*n),
			Alpha: *alpha,
			Beta:  *beta,
			Gamma: *gamma,
			Rho:   *rho,
			Seed:  *seed,
		}, *runs)
		if err != nil {
			log.Fatalf("wormsim: agent simulation: %v", err)
		}
		fmt.Printf("\nAgent-based simulation (%d runs):\n", len(results))
		for i, r := range results {
			fmt.Printf("  run %d: T0=%.3fs infected=%d (%.2f%%), %d attempts\n",
				i+1, r.T0, r.Infected, r.InfectionRatio*100, r.Attempts)
		}
		fmt.Printf("  mean infection ratio: %.4f (%.2f%%)\n", mean, mean*100)
	}
}
