// Command wormsim attacks Sweeper-protected services. It has two modes.
//
// With -connect, it is a live worm driver over real sockets: it dials the
// framed TCP front ends a sweeperd exposes with -tcp-listen, offers benign
// traffic, fires the application's exploit at each target and reports what
// the defence answered (absorbed, filtered, or — if the daemon were
// unprotected — a dead connection). It exits non-zero with a clear
// diagnostic when a target daemon is unreachable or closes a connection
// mid-attack.
//
// Without -connect, it runs the Section 6 community-defence models: the
// Susceptible-Infected differential-equation model (equations 1-4) and the
// agent-based cross-check, for arbitrary worm and deployment parameters.
//
// Examples:
//
//	wormsim -connect 127.0.0.1:7400 -app squid -requests 50 -attack
//	wormsim -connect 127.0.0.1:7400,127.0.0.1:7401 -app squid -attack -variants 3
//
//	wormsim -beta 0.1 -alpha 0.001 -gamma 20              # Slammer-like
//	wormsim -beta 1000 -alpha 0.0001 -gamma 10 -rho 0.000244  # hit-list + ASLR
//	wormsim -beta 1000 -alpha 0.001 -gamma 10 -agent -n 50000 # agent-based
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sweeper/internal/apps"
	"sweeper/internal/epidemic"
	"sweeper/internal/exploit"
	"sweeper/internal/metrics"
	"sweeper/internal/netproxy"
)

func main() {
	log.SetFlags(0)
	var (
		// Socket-driver mode.
		connect  = flag.String("connect", "", "comma-separated sweeperd TCP front ends to attack (host:port); leave empty for the epidemic models")
		appName  = flag.String("app", "squid", "with -connect: application the targets run (selects benign traffic and the exploit)")
		requests = flag.Int("requests", 20, "with -connect: benign requests per target before and after the attack")
		attack   = flag.Bool("attack", true, "with -connect: fire the exploit at each target between the benign phases")
		variants = flag.Int("variants", 1, "with -connect: polymorphic exploit variants per target")

		// Epidemic-model mode.
		beta   = flag.Float64("beta", 0.1, "contact rate (infection attempts per infected host per second)")
		n      = flag.Float64("n", 100000, "number of vulnerable hosts")
		alpha  = flag.Float64("alpha", 0.001, "producer (full Sweeper deployment) fraction")
		gamma  = flag.Float64("gamma", 5, "community response time in seconds")
		rho    = flag.Float64("rho", 1.0, "per-attempt success probability under proactive protection (2^-12 = 0.000244)")
		agent  = flag.Bool("agent", false, "also run the agent-based simulation")
		runs   = flag.Int("runs", 3, "agent-based runs to average")
		seed   = flag.Int64("seed", 1, "agent-based RNG seed")
		series = flag.Bool("series", false, "print the I(t)/P(t) time series of the ODE model")
	)
	flag.Parse()

	if *connect != "" {
		if err := runSocketWorm(*connect, *appName, *requests, *variants, *attack); err != nil {
			log.Fatalf("wormsim: %v", err)
		}
		return
	}

	params := epidemic.Params{Beta: *beta, N: *n, Alpha: *alpha, Gamma: *gamma, Rho: *rho}
	res, err := epidemic.Simulate(params, *series)
	if err != nil {
		log.Fatalf("wormsim: %v", err)
	}
	fmt.Printf("SI model: beta=%g N=%g alpha=%g gamma=%gs rho=%g\n", *beta, *n, *alpha, *gamma, *rho)
	fmt.Printf("  T0 (first producer contacted) : %.3f s\n", res.T0)
	fmt.Printf("  infected at T0                : %.1f hosts\n", res.InfectedAtT0)
	fmt.Printf("  infected at T0+gamma          : %.1f hosts\n", res.FinalInfected)
	fmt.Printf("  infection ratio               : %.4f (%.2f%%)\n", res.InfectionRatio, res.InfectionRatio*100)
	if res.Saturated {
		fmt.Printf("  NOTE: the worm saturated the susceptible population before the response completed\n")
	}
	if *series {
		fmt.Printf("\n# t  infected  producers-contacted\n")
		step := len(res.Series)/200 + 1
		for i := 0; i < len(res.Series); i += step {
			p := res.Series[i]
			fmt.Printf("%.4f\t%.1f\t%.2f\n", p.Time, p.Infected, p.Producers)
		}
	}

	if *agent {
		mean, results, err := epidemic.SimulateAgentsMean(epidemic.AgentParams{
			N:     int(*n),
			Alpha: *alpha,
			Beta:  *beta,
			Gamma: *gamma,
			Rho:   *rho,
			Seed:  *seed,
		}, *runs)
		if err != nil {
			log.Fatalf("wormsim: agent simulation: %v", err)
		}
		fmt.Printf("\nAgent-based simulation (%d runs):\n", len(results))
		for i, r := range results {
			fmt.Printf("  run %d: T0=%.3fs infected=%d (%.2f%%), %d attempts\n",
				i+1, r.T0, r.Infected, r.InfectionRatio*100, r.Attempts)
		}
		fmt.Printf("  mean infection ratio: %.4f (%.2f%%)\n", mean, mean*100)
	}
}

// runSocketWorm drives each target front end over a real connection: benign
// traffic, the exploit variants, benign traffic again. Any unreachable
// daemon or connection closed mid-attack is a hard error — the caller exits
// non-zero with the diagnostic.
func runSocketWorm(targets, appName string, requests, variants int, attack bool) error {
	spec, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	var addrs []string
	for _, a := range strings.Split(targets, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-connect lists no targets")
	}

	var failures int
	for _, addr := range addrs {
		if err := attackTarget(addr, spec, requests, variants, attack); err != nil {
			fmt.Fprintf(os.Stderr, "wormsim: target %s: %v\n", addr, err)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d targets failed", failures, len(addrs))
	}
	return nil
}

func attackTarget(addr string, spec *apps.Spec, requests, variants int, attack bool) error {
	c, err := netproxy.Dial(addr)
	if err != nil {
		return err // already says "daemon unreachable at ..."
	}
	defer c.Close()
	lat := metrics.NewLatencyRecorder()

	benign := func(tag string, seqBase int) error {
		for i := 0; i < requests; i++ {
			start := time.Now()
			status, resp, err := c.Do(exploit.Benign(spec.Name, seqBase+i))
			if err != nil {
				return fmt.Errorf("benign request %d (%s phase): %w", i, tag, err)
			}
			lat.Record(time.Since(start))
			if status != netproxy.StatusOK {
				return fmt.Errorf("benign request %d (%s phase): daemon answered %s", i, tag, netproxy.StatusName(status))
			}
			if len(resp) == 0 {
				return fmt.Errorf("benign request %d (%s phase): empty response", i, tag)
			}
		}
		return nil
	}

	if err := benign("before", 0); err != nil {
		return err
	}
	fmt.Printf("%s: %d benign requests served\n", addr, requests)

	if attack {
		for v := 0; v < variants; v++ {
			payload, err := exploit.ExploitVariant(spec, v)
			if err != nil {
				return fmt.Errorf("building exploit variant %d: %w", v, err)
			}
			status, _, err := c.Do(payload)
			if err != nil {
				// The revealing failure mode of an unprotected daemon: the
				// exploit kills the service and the connection dies with it.
				return fmt.Errorf("exploit variant %d (%d bytes): %w", v, len(payload), err)
			}
			fmt.Printf("%s: exploit variant %d (%d bytes) -> %s\n", addr, v, len(payload), netproxy.StatusName(status))
			switch status {
			case netproxy.StatusAbsorbed, netproxy.StatusFiltered:
				// The defence held: the request was excised during recovery,
				// or an antibody already dropped it at the proxy.
			case netproxy.StatusOK:
				return fmt.Errorf("exploit variant %d was served as a normal request — target is not protected", v)
			default:
				return fmt.Errorf("exploit variant %d: daemon answered %s", v, netproxy.StatusName(status))
			}
		}
	}

	if err := benign("after", requests); err != nil {
		return err
	}
	p50, p95, p99 := lat.Percentiles()
	fmt.Printf("%s: service intact after attack; %d benign responses, client-observed p50=%v p95=%v p99=%v\n",
		addr, lat.Count(), p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
	return nil
}
