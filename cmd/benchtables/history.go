package main

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchRecordPattern matches the committed trajectory records (BENCH_4.json,
// BENCH_5.json, ...) and captures their sequence number so the history table
// sorts numerically rather than lexically.
var benchRecordPattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// historyRecord is one committed BENCH_<n>.json loaded for trajectory review.
type historyRecord struct {
	path    string
	seq     int
	metrics map[string]float64
}

// loadHistory loads every path whose base name matches BENCH_<n>.json, in
// sequence order. Explicit paths that do not match the pattern are an error
// (a typo'd file name should not silently vanish from the table).
func loadHistory(paths []string) ([]historyRecord, error) {
	var recs []historyRecord
	for _, p := range paths {
		m := benchRecordPattern.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			return nil, fmt.Errorf("%s: not a BENCH_<n>.json record", p)
		}
		seq, err := strconv.Atoi(m[1])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		metrics, err := loadBench(p)
		if err != nil {
			return nil, err
		}
		recs = append(recs, historyRecord{path: p, seq: seq, metrics: metrics})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	return recs, nil
}

// historyBench tabulates metrics across the committed BENCH_<n>.json records,
// one column per record, so the perf trajectory of a metric is reviewable
// run-over-run instead of only pairwise via -compare. `pattern` filters metric
// names by substring ("" or "all" prints every metric); unset metrics render
// as "-" since the schema is allowed to grow over time.
func historyBench(pattern string, paths []string) error {
	if len(paths) == 0 {
		glob, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
		for _, p := range glob {
			if benchRecordPattern.MatchString(filepath.Base(p)) {
				paths = append(paths, p)
			}
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("-history: no BENCH_<n>.json records found (run from the repo root or pass paths)")
	}
	recs, err := loadHistory(paths)
	if err != nil {
		return err
	}

	if pattern == "all" {
		pattern = ""
	}
	nameSet := make(map[string]bool)
	for _, r := range recs {
		for name := range r.metrics {
			if strings.Contains(name, pattern) {
				nameSet[name] = true
			}
		}
	}
	if len(nameSet) == 0 {
		return fmt.Errorf("-history: no metric matches %q", pattern)
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-46s", "metric")
	for _, r := range recs {
		fmt.Printf(" %12s", fmt.Sprintf("BENCH_%d", r.seq))
	}
	fmt.Println()
	for _, name := range names {
		fmt.Printf("%-46s", name)
		for _, r := range recs {
			if v, ok := r.metrics[name]; ok {
				fmt.Printf(" %12.4f", v)
			} else {
				fmt.Printf(" %12s", "-")
			}
		}
		fmt.Println()
	}
	return nil
}
