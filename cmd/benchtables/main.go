// Command benchtables regenerates every table and figure of the paper's
// evaluation from the reproduction: Tables 1-3, Figures 4-8, the VSEF
// overhead experiment and the ablations described in DESIGN.md.
//
// Usage:
//
//	benchtables -all            # everything (quick sizes)
//	benchtables -table 2        # a single table
//	benchtables -figure 6       # a single figure
//	benchtables -overhead       # monitoring overhead comparison
//	benchtables -ablation       # ablation studies
//	benchtables -paper -all     # larger, paper-scale workloads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sweeper/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		table    = flag.Int("table", 0, "regenerate table N (1-3)")
		figure   = flag.Int("figure", 0, "regenerate figure N (4-8)")
		overhead = flag.Bool("overhead", false, "monitoring overhead comparison (§5.3)")
		ablation = flag.Bool("ablation", false, "ablation studies")
		all      = flag.Bool("all", false, "regenerate everything")
		paper    = flag.Bool("paper", false, "use paper-scale workload sizes (slower)")
	)
	flag.Parse()

	sizes := experiments.QuickSizes()
	if *paper {
		sizes = experiments.PaperSizes()
	}
	if !*all && *table == 0 && *figure == 0 && !*overhead && !*ablation {
		flag.Usage()
		os.Exit(2)
	}

	run := func(cond bool, f func() error) {
		if !cond {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("benchtables: %v", err)
		}
	}

	run(*all || *table == 1, func() error {
		fmt.Println(experiments.FormatTable1(experiments.Table1()))
		return nil
	})
	run(*all || *table == 2, func() error {
		rows, _, err := experiments.Table2([]string{"apache1", "apache2", "cvs", "squid"})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable2(rows))
		return nil
	})
	run(*all || *table == 3, func() error {
		rows, err := experiments.Table3([]string{"apache1", "squid"})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable3(rows))
		return nil
	})
	run(*all || *figure == 4, func() error {
		points, err := experiments.Figure4(nil, sizes.Figure4Requests)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure4(points))
		return nil
	})
	run(*all || *overhead, func() error {
		rows, err := experiments.MonitoringOverhead(sizes.OverheadRequests)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatOverhead(rows))
		return nil
	})
	run(*all || *figure == 5, func() error {
		res, err := experiments.Figure5(sizes.Figure5Requests, sizes.Figure5AttackAt, sizes.Figure5BucketMs)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure5(res))
		return nil
	})
	run(*all || *figure == 6, func() error {
		fmt.Println(experiments.FormatCommunityFigure(
			"Figure 6: Sweeper defense against Slammer (beta=0.1, N=100000)", experiments.Figure6()))
		return nil
	})
	run(*all || *figure == 7, func() error {
		fmt.Println(experiments.FormatCommunityFigure(
			"Figure 7: Sweeper with proactive protection against hit-list worm (beta=1000, rho=2^-12)", experiments.Figure7()))
		return nil
	})
	run(*all || *figure == 8, func() error {
		fmt.Println(experiments.FormatCommunityFigure(
			"Figure 8: Sweeper with proactive protection against hit-list worm (beta=4000, rho=2^-12)", experiments.Figure8()))
		return nil
	})
	run(*all || *ablation, func() error {
		fmt.Println(experiments.FormatProactiveAblation(experiments.ProactiveAblation(1000)))
		fmt.Println(experiments.FormatResponseTimeAblation(experiments.ResponseTimeAblation(1000, 14)))
		rows, err := experiments.AgentCrossCheck(sizes.AgentN, sizes.AgentRuns)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAgentCrossCheck(rows))
		unimpeded, contained := experiments.AbstractContainmentClaim()
		fmt.Printf("Abstract claim: unimpeded hit-list infection after 1 s = %.1f%%; with Sweeper (alpha=0.001, gamma=5s, rho=2^-12) = %.2f%%\n\n",
			unimpeded*100, contained*100)
		return nil
	})
}
