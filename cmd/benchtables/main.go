// Command benchtables regenerates every table and figure of the paper's
// evaluation from the reproduction: Tables 1-3, Figures 4-8, the VSEF
// overhead experiment and the ablations described in DESIGN.md.
//
// Usage:
//
//	benchtables -all            # everything (quick sizes)
//	benchtables -table 2        # a single table
//	benchtables -figure 6       # a single figure
//	benchtables -overhead       # monitoring overhead comparison
//	benchtables -ablation       # ablation studies
//	benchtables -paper -all     # larger, paper-scale workloads
//	benchtables -json BENCH_5.json  # machine-readable perf trajectory point
//	benchtables -compare BENCH_4.json BENCH_5.json  # diff two records, exit 1 on regression
//	benchtables -history vm_tooled     # tabulate matching metrics across all BENCH_<n>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sweeper/internal/experiments"
	"sweeper/internal/vm"
)

// benchJSON is the machine-readable benchmark record written by -json: one
// flat metric map per run, committed as BENCH_<n>.json per PR (and archived
// by CI) so the perf trajectory is recorded run-over-run.
type benchJSON struct {
	Schema      string             `json:"schema"`
	GeneratedAt string             `json:"generated_at"`
	PaperScale  bool               `json:"paper_scale"`
	Metrics     map[string]float64 `json:"metrics"`
}

// writeBenchJSON runs the quick perf suite — the hot-path micro-benchmarks,
// the Figure 4 interval sweep, one full Squid defence and the Figure 5
// recovery comparison — and writes the results as one flat JSON metric map.
func writeBenchJSON(path string, sizes experiments.Sizes, paperScale bool) error {
	metrics := make(map[string]float64)

	micro, err := experiments.RunHotPathMicro()
	if err != nil {
		return err
	}
	metrics["snapshot_full_scan_ns"] = micro.FullSnapshotNs
	metrics["snapshot_steady_ns"] = micro.SteadySnapshotNs
	metrics["snapshot_steady_speedup_x"] = micro.SnapshotSpeedup
	metrics["snapshot_mapped_pages"] = float64(micro.MappedPages)
	metrics["snapshot_steady_dirty_pages"] = float64(micro.SteadyDirtyPages)
	metrics["bulk_read_ns_per_byte"] = micro.BulkReadNsPerByte
	metrics["bytewise_read_ns_per_byte"] = micro.ByteReadNsPerByte
	metrics["bulk_write_ns_per_byte"] = micro.BulkWriteNsPerByte
	metrics["bytewise_write_ns_per_byte"] = micro.ByteWriteNsPerByte
	metrics["bulk_io_speedup_x"] = micro.BulkIOSpeedup

	disp, err := experiments.RunDispatchMicro()
	if err != nil {
		return err
	}
	metrics["vm_untooled_step_ns"] = disp.UntooledStepNs
	metrics["vm_untooled_step_slowpath_ns"] = disp.UntooledSlowPathNs
	metrics["vm_tooled_step_ns"] = disp.TooledStepNs
	metrics["vm_tooled_step_slowpath_ns"] = disp.TooledSlowPathNs
	metrics["vm_untooled_dispatch_speedup_x"] = disp.DispatchSpeedup
	metrics["vm_tooled_dispatch_speedup_x"] = disp.TooledSpeedup

	for _, app := range []string{"apache1", "apache2", "cvs", "squid"} {
		points, err := experiments.Figure4ForApp(app, []uint64{20, 100, 200}, sizes.Figure4Requests)
		if err != nil {
			return err
		}
		for _, pt := range points {
			metrics[fmt.Sprintf("figure4_%s_overhead_pct_%dms", app, pt.IntervalMs)] = pt.Overhead * 100
		}
	}

	run, err := experiments.RunDefense("squid", 8, 8, nil)
	if err != nil {
		return err
	}
	metrics["squid_time_to_first_vsef_ms"] = float64(run.Report.TimeToFirstVSEF.Nanoseconds()) / 1e6
	metrics["squid_time_to_final_antibody_ms"] = float64(run.Report.TimeToFinalAntibody.Nanoseconds()) / 1e6
	metrics["squid_total_analysis_ms"] = float64(run.Report.TotalAnalysisTime.Nanoseconds()) / 1e6
	metrics["squid_recovery_ms"] = float64(run.Report.RecoveryTime.Nanoseconds()) / 1e6

	res5, err := experiments.Figure5(sizes.Figure5Requests, sizes.Figure5AttackAt, sizes.Figure5BucketMs)
	if err != nil {
		return err
	}
	metrics["figure5_recovery_gap_virtual_ms"] = float64(res5.RecoveryGapMs)
	metrics["figure5_restart_gap_virtual_ms"] = float64(res5.RestartGapMs)

	rows, err := experiments.MonitoringOverhead(sizes.OverheadRequests)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.Key == "" {
			return fmt.Errorf("monitoring overhead row %q has no machine-readable key", r.Mode)
		}
		metrics["monitoring_overhead_pct_"+r.Key] = r.Overhead * 100
	}

	sub, err := experiments.RunSubPageMicro()
	if err != nil {
		return err
	}
	metrics["snapshot_steady_captured_bytes"] = float64(micro.SteadyCapturedBytes)
	metrics["subpage_scattered_reduction_x"] = sub.ScatteredReductionX
	metrics["subpage_sequential_reduction_x"] = sub.SequentialReductionX
	metrics["subpage_alternating_reduction_x"] = sub.AlternatingReductionX

	sweep, err := experiments.RunFleetOverheadSweep(
		[]string{"apache1", "apache2", "cvs", "squid"}, experiments.QuickFleetWorkload(), []uint64{20, 100, 200})
	if err != nil {
		return err
	}
	for _, app := range sweep {
		for _, pt := range app.Points {
			metrics[fmt.Sprintf("figure4_fleet_%s_overhead_pct_%dms", app.App, pt.IntervalMs)] = pt.Overhead * 100
		}
	}
	f5, err := experiments.RunFleetOverheadSweep([]string{"squid"}, experiments.Figure5FleetWorkload(), []uint64{200})
	if err != nil {
		return err
	}
	f5pt := f5[0].Points[0]
	metrics["figure5_fleet_offered_req_per_s"] = f5pt.OfferedPerGuest
	metrics["figure5_fleet_completed_req_per_s"] = f5pt.ThroughputPerGuest
	metrics["figure5_fleet_attacks_handled_count"] = float64(f5pt.AttacksHandled)

	pruned, forced, err := experiments.SliceFallbackComparison()
	if err != nil {
		return err
	}
	if pruned.Nodes > 0 {
		metrics["slice_fallback_reduction_x"] = float64(forced.Nodes) / float64(pruned.Nodes)
	}

	// Client-observed latency over real loopback sockets (the Figure 5 view
	// from outside the daemon): percentiles before, during and after an
	// absorbed worm attack, plus the recovery tail degradation ratio.
	cl, err := experiments.RunClientLatency("squid")
	if err != nil {
		return err
	}
	metrics["client_latency_before_p50_ms"] = cl.BeforeP50Ms
	metrics["client_latency_before_p95_ms"] = cl.BeforeP95Ms
	metrics["client_latency_before_p99_ms"] = cl.BeforeP99Ms
	metrics["client_latency_during_p99_ms"] = cl.DuringP99Ms
	metrics["client_latency_after_p50_ms"] = cl.AfterP50Ms
	metrics["client_latency_after_p95_ms"] = cl.AfterP95Ms
	metrics["client_latency_after_p99_ms"] = cl.AfterP99Ms
	metrics["client_latency_recovery_degradation_x"] = cl.RecoveryDegradationX
	metrics["client_latency_sojourn_p99_ms"] = cl.SojournP99Ms

	// The live epidemic grid (Figures 6-8 measured on real 100-host
	// in-process communities) and the shared base-image economy that makes
	// those communities affordable. The infection outcomes are driven by a
	// seeded PRNG over virtual ticks, so they are deterministic per record.
	eps, err := experiments.RunEpidemicSweep(experiments.DefaultEpidemicSweepConfig())
	if err != nil {
		return err
	}
	for _, p := range eps.Figure6 {
		key := fmt.Sprintf("epidemic_fig6_alpha%g", p.Config.Alpha*100)
		metrics[key+"_infected_pct"] = 100 * p.InfectionRatio
		metrics[key+"_model_infected_pct"] = 100 * p.ModelInfectionRatio
	}
	for _, p := range eps.Figure7 {
		key := fmt.Sprintf("epidemic_fig7_deploy%g", p.Config.Deploy*100)
		metrics[key+"_infected_pct"] = 100 * p.InfectionRatio
	}
	for _, p := range eps.Figure8 {
		key := fmt.Sprintf("epidemic_fig8_gamma%d", p.Config.GammaTicks)
		metrics[key+"_infected_pct"] = 100 * p.InfectionRatio
		metrics[key+"_model_infected_pct"] = 100 * p.ModelInfectionRatio
	}
	base := eps.Figure6[len(eps.Figure6)-1]
	metrics["epidemic_t0_ticks"] = float64(base.T0)
	metrics["epidemic_antibodies_count"] = float64(base.AntibodiesTotal)
	metrics["epidemic_adoptions_count"] = float64(base.Adopted)
	metrics["epidemic_shared_page_fraction"] = base.SharedPageFraction

	// Crash-recovery fault injection: a 100-daemon durable community, a
	// seeded 20% hard-stopped mid-epidemic and restarted from disk. Retention
	// and warm-restart counts are deterministic; the converge timings are
	// wall-clock.
	crashRoot, err := os.MkdirTemp("", "sweeper-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(crashRoot)
	cr, err := experiments.RunCrashRecovery(experiments.CrashRecoveryConfig{Root: crashRoot, Seed: 7})
	if err != nil {
		return err
	}
	metrics["crash_baseline_converge_ms"] = cr.BaselineConvergeMs
	metrics["crash_reconverge_ms"] = cr.CrashReconvergeMs
	metrics["crash_warm_restart_ms"] = cr.WarmRestartMsMean
	metrics["crash_warm_restart_max_ms"] = cr.WarmRestartMsMax
	metrics["crash_antibodies_retained_pct"] = cr.AntibodiesRetainedPct
	metrics["crash_crashed_count"] = float64(cr.Crashed)
	metrics["crash_restarted_immune_count"] = float64(cr.RestartedImmune)
	metrics["crash_warm_restart_count"] = float64(cr.WarmRestarts)
	metrics["crash_cold_fallback_count"] = float64(cr.ColdFallbacks)

	bs := vm.DefaultBaseStore().Stats()
	metrics["base_store_distinct_pages"] = float64(bs.DistinctPages)
	metrics["base_store_installed_pages"] = float64(bs.InstalledPages)
	if bs.InstalledPages > 0 {
		metrics["base_store_shared_fraction"] = 1 - float64(bs.DistinctPages)/float64(bs.InstalledPages)
	}

	out := benchJSON{
		Schema:      "sweeper-bench/1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		PaperScale:  paperScale,
		Metrics:     metrics,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	log.SetFlags(0)
	var (
		table    = flag.Int("table", 0, "regenerate table N (1-3)")
		figure   = flag.Int("figure", 0, "regenerate figure N (4-8)")
		overhead = flag.Bool("overhead", false, "monitoring overhead comparison (§5.3)")
		ablation = flag.Bool("ablation", false, "ablation studies")
		all      = flag.Bool("all", false, "regenerate everything")
		paper    = flag.Bool("paper", false, "use paper-scale workload sizes (slower)")
		jsonPath = flag.String("json", "", "run the quick perf suite and write machine-readable results (BENCH_<n>.json) to this file")
		compare  = flag.Bool("compare", false, "compare two BENCH_<n>.json records (old new); exit 1 when a metric regressed beyond its tolerance")
		history  = flag.String("history", "", "tabulate metrics matching this substring (\"all\" for every metric) across committed BENCH_<n>.json records; positional args select records, default all in cwd")
		detThr   = flag.Float64("threshold", 0.20, "with -compare: relative worsening tolerated for deterministic virtual-clock metrics")
		ratioThr = flag.Float64("ratio-threshold", 0.50, "with -compare: relative drop tolerated for speedup/reduction ratios")
		wallThr  = flag.Float64("wall-threshold", 4.0, "with -compare: relative worsening tolerated for wall-clock timings (records may come from different machines)")
	)
	flag.Parse()

	if *history != "" {
		if err := historyBench(*history, flag.Args()); err != nil {
			log.Fatalf("benchtables: %v", err)
		}
		return
	}
	if *compare {
		paths := flag.Args()
		if len(paths) != 2 {
			log.Fatalf("benchtables: -compare needs exactly two files (old new), got %d", len(paths))
		}
		regressions, err := compareBench(paths[0], paths[1], Thresholds{
			Deterministic: *detThr, Ratio: *ratioThr, Wall: *wallThr,
		})
		if err != nil {
			log.Fatalf("benchtables: -compare: %v", err)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	sizes := experiments.QuickSizes()
	if *paper {
		sizes = experiments.PaperSizes()
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, sizes, *paper); err != nil {
			log.Fatalf("benchtables: -json: %v", err)
		}
		fmt.Printf("benchtables: wrote %s\n", *jsonPath)
		if !*all && *table == 0 && *figure == 0 && !*overhead && !*ablation {
			return
		}
	}
	if !*all && *table == 0 && *figure == 0 && !*overhead && !*ablation && *jsonPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	run := func(cond bool, f func() error) {
		if !cond {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("benchtables: %v", err)
		}
	}

	run(*all || *table == 1, func() error {
		fmt.Println(experiments.FormatTable1(experiments.Table1()))
		return nil
	})
	run(*all || *table == 2, func() error {
		rows, _, err := experiments.Table2([]string{"apache1", "apache2", "cvs", "squid"})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable2(rows))
		return nil
	})
	run(*all || *table == 3, func() error {
		rows, err := experiments.Table3([]string{"apache1", "squid"})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable3(rows))
		return nil
	})
	run(*all || *figure == 4, func() error {
		points, err := experiments.Figure4(nil, sizes.Figure4Requests)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure4(points))
		return nil
	})
	run(*all || *overhead, func() error {
		rows, err := experiments.MonitoringOverhead(sizes.OverheadRequests)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatOverhead(rows))
		return nil
	})
	run(*all || *figure == 5, func() error {
		res, err := experiments.Figure5(sizes.Figure5Requests, sizes.Figure5AttackAt, sizes.Figure5BucketMs)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure5(res))
		return nil
	})
	run(*all || *figure == 6, func() error {
		fmt.Println(experiments.FormatCommunityFigure(
			"Figure 6: Sweeper defense against Slammer (beta=0.1, N=100000)", experiments.Figure6()))
		return nil
	})
	run(*all || *figure == 7, func() error {
		fmt.Println(experiments.FormatCommunityFigure(
			"Figure 7: Sweeper with proactive protection against hit-list worm (beta=1000, rho=2^-12)", experiments.Figure7()))
		return nil
	})
	run(*all || *figure == 8, func() error {
		fmt.Println(experiments.FormatCommunityFigure(
			"Figure 8: Sweeper with proactive protection against hit-list worm (beta=4000, rho=2^-12)", experiments.Figure8()))
		return nil
	})
	run(*all || *ablation, func() error {
		fmt.Println(experiments.FormatProactiveAblation(experiments.ProactiveAblation(1000)))
		fmt.Println(experiments.FormatResponseTimeAblation(experiments.ResponseTimeAblation(1000, 14)))
		rows, err := experiments.AgentCrossCheck(sizes.AgentN, sizes.AgentRuns)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAgentCrossCheck(rows))
		unimpeded, contained := experiments.AbstractContainmentClaim()
		fmt.Printf("Abstract claim: unimpeded hit-list infection after 1 s = %.1f%%; with Sweeper (alpha=0.001, gamma=5s, rho=2^-12) = %.2f%%\n\n",
			unimpeded*100, contained*100)
		return nil
	})
}
