package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeRecord(t *testing.T, dir, name string, metrics map[string]float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(benchJSON{Schema: "sweeper-bench/1", Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCompare(t *testing.T, oldM, newM map[string]float64) int {
	t.Helper()
	dir := t.TempDir()
	oldPath := writeRecord(t, dir, "old.json", oldM)
	newPath := writeRecord(t, dir, "new.json", newM)
	n, err := compareBench(oldPath, newPath, Thresholds{Deterministic: 0.10, Ratio: 0.25, Wall: 3.0})
	if err != nil {
		t.Fatalf("compareBench: %v", err)
	}
	return n
}

// TestCompareMissingMetrics pins the one-sided-metric contract: the schema
// may grow (a metric present only in the new record never flags) but may not
// shrink (a metric present in the old record and missing from the new one is
// a deleted benchmark, and deleting a benchmark must fail the gate — not
// silently pass).
func TestCompareMissingMetrics(t *testing.T) {
	base := map[string]float64{"shared_overhead_pct": 1.0}

	newOnly := map[string]float64{
		"shared_overhead_pct":            1.0,
		"brand_new_metric_ns":            5000, // huge, but new: must not flag
		"vm_untooled_dispatch_speedup_x": 6.0,
	}
	if n := runCompare(t, base, newOnly); n != 0 {
		t.Errorf("got %d regressions, want 0: new-only metrics must never flag", n)
	}

	oldOnly := map[string]float64{
		"shared_overhead_pct": 1.0,
		"retired_metric_ns":   100,
	}
	if n := runCompare(t, oldOnly, base); n != 1 {
		t.Errorf("got %d regressions, want 1: a metric deleted from the new record must fail the gate", n)
	}
}

// TestCompareZeroBaseline pins the zero-baseline guard: a metric whose old
// value is zero cannot regress, whatever the new value is — relative
// comparison against zero is meaningless.
func TestCompareZeroBaseline(t *testing.T) {
	oldM := map[string]float64{
		"warm_overhead_pct":  0,
		"spin_loop_ns":       0,
		"epidemic_speedup_x": 0,
	}
	newM := map[string]float64{
		"warm_overhead_pct":  50, // would be a massive regression vs any positive baseline
		"spin_loop_ns":       1e9,
		"epidemic_speedup_x": 0.0001, // lower-is-worse for speedups, but baseline is 0
	}
	if n := runCompare(t, oldM, newM); n != 0 {
		t.Errorf("got %d regressions, want 0: zero baselines must never flag", n)
	}
}

// TestCompareFlagsRealRegressions checks that genuine worsening beyond both
// the relative tolerance and the absolute floor is flagged, in both
// directions (lower-better wall timings, higher-better speedups).
func TestCompareFlagsRealRegressions(t *testing.T) {
	oldM := map[string]float64{
		"dispatch_ns":         100, // lower better: 100 -> 900 is beyond 3x wall tolerance
		"recover_speedup_x":   8,   // higher better: 8 -> 1 is beyond tolerance and floor
		"steady_overhead_pct": 2.0, // deterministic: 2.0 -> 4.0 beyond 10% and 0.5 floor
	}
	newM := map[string]float64{
		"dispatch_ns":         900,
		"recover_speedup_x":   1,
		"steady_overhead_pct": 4.0,
	}
	if n := runCompare(t, oldM, newM); n != 3 {
		t.Errorf("got %d regressions, want 3", n)
	}
}

// TestCompareTolerancesAndFloors checks the non-flagging side: worsening
// inside the relative tolerance, or beyond it but under the absolute floor,
// stays green — as do sub-scale wall baselines and informational counts.
func TestCompareTolerancesAndFloors(t *testing.T) {
	oldM := map[string]float64{
		"dispatch_ns":           100,
		"steady_overhead_pct":   0.05,
		"bulk_read_ns_per_byte": 0.01, // below minComparableWall: never compared
		"snapshot_mapped_pages": 10,   // informational class
	}
	newM := map[string]float64{
		"dispatch_ns":           250,  // 2.5x: inside the 3x wall tolerance
		"steady_overhead_pct":   0.09, // 80% worse but under the 0.5-point floor
		"bulk_read_ns_per_byte": 0.2,  // 20x a sub-scale baseline
		"snapshot_mapped_pages": 1e6,  // counts are reported, never flagged
	}
	if n := runCompare(t, oldM, newM); n != 0 {
		t.Errorf("got %d regressions, want 0", n)
	}
}

// TestCompareLoadErrors pins error handling for unreadable or schema-less
// records.
func TestCompareLoadErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeRecord(t, dir, "good.json", map[string]float64{"x_ns": 1})
	if _, err := compareBench(filepath.Join(dir, "absent.json"), good, Thresholds{}); err == nil {
		t.Error("missing old record: want error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"sweeper-bench/1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := compareBench(good, bad, Thresholds{}); err == nil {
		t.Error("record without metrics map: want error")
	}
}
