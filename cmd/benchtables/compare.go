package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Thresholds tier the regression comparison by how reproducible a metric is:
// deterministic virtual-clock quantities (overhead percentages, virtual-ms
// gaps, generator rates) are compared tightly, dimensionless speedup/
// reduction ratios more loosely (they drift with host parallelism), and raw
// wall-clock timings most loosely of all, since consecutive BENCH records
// routinely come from different machines. Each class also carries an
// absolute floor, so a 0.05%→0.09% overhead blip is not a "regression".
type Thresholds struct {
	Deterministic float64 // relative worsening tolerated for virtual-clock metrics
	Ratio         float64 // relative drop tolerated for speedup/reduction ratios
	Wall          float64 // relative worsening tolerated for wall-clock timings
}

type metricClass int

const (
	classInfo metricClass = iota // counts and sizes: reported, never a regression
	classDeterministic
	classRatio
	classWall
)

// classify buckets a metric by name and says whether larger values are
// better. Unknown shapes fall back to informational.
func classify(name string) (class metricClass, higherBetter bool, floor float64) {
	switch {
	case strings.Contains(name, "_pages") || strings.HasSuffix(name, "_bytes") ||
		strings.HasSuffix(name, "_count"):
		return classInfo, false, 0
	case strings.Contains(name, "speedup"):
		// Speedups divide two wall-clock timings: the quotient inherits
		// their machine-to-machine (and run-to-run) noise, so it gets the
		// wall tolerance. Observed spread on one idle machine: ~2.5x.
		return classWall, true, 0.5
	case strings.Contains(name, "reduction"):
		// Reductions divide deterministic quantities (captured bytes,
		// explored nodes): tight comparison is safe.
		return classRatio, true, 0.5
	case strings.Contains(name, "overhead_pct"):
		return classDeterministic, false, 0.5 // percentage points
	case strings.Contains(name, "retained_pct"):
		// Antibody retention across a crash is a durability guarantee: a
		// drop of more than a point means the WAL or replay regressed.
		return classDeterministic, true, 1 // percentage points
	case strings.Contains(name, "infected_pct"):
		// Live epidemic outcomes are seeded-PRNG deterministic, but any code
		// change to the defence pipeline legitimately moves them; gate only
		// gross blow-ups (the community failing to contain the worm).
		return classDeterministic, false, 10 // percentage points
	case strings.Contains(name, "shared_fraction") || strings.Contains(name, "fraction"):
		return classDeterministic, true, 0.05 // fractions of pages shared
	case strings.Contains(name, "virtual_ms"):
		return classDeterministic, false, 10 // virtual milliseconds
	case strings.Contains(name, "req_per_s"):
		return classDeterministic, true, 5 // requests per virtual second
	case strings.HasSuffix(name, "_ns") || strings.HasSuffix(name, "_ms") ||
		strings.Contains(name, "ns_per_byte"):
		return classWall, false, 0
	}
	return classInfo, false, 0
}

// minComparableWall skips wall metrics whose baseline is tiny (fractions of
// a nanosecond per byte): at that scale a multiple is measurement noise, not
// a regression.
const minComparableWall = 0.5

type comparison struct {
	name       string
	old, new   float64
	class      metricClass
	regression bool
	note       string
}

func loadBench(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec benchJSON
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Metrics == nil {
		return nil, fmt.Errorf("%s: no metrics map (schema %q)", path, rec.Schema)
	}
	return rec.Metrics, nil
}

// compareBench diffs two BENCH_<n>.json records and returns the number of
// flagged regressions (callers exit nonzero on any). The schema is allowed to
// grow — metrics present only in the NEW record are reported and never
// flagged — but it is not allowed to shrink: a metric present in OLD and
// missing from NEW means a benchmark was deleted (or silently stopped
// reporting), and that fails the gate rather than vanishing from the table.
func compareBench(oldPath, newPath string, th Thresholds) (int, error) {
	oldM, err := loadBench(oldPath)
	if err != nil {
		return 0, err
	}
	newM, err := loadBench(newPath)
	if err != nil {
		return 0, err
	}

	names := make([]string, 0, len(oldM))
	for name := range oldM {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows []comparison
	regressions := 0
	for _, name := range names {
		oldV := oldM[name]
		newV, ok := newM[name]
		if !ok {
			regressions++
			rows = append(rows, comparison{
				name: name, old: oldV, regression: true,
				note: "REGRESSION: metric missing from new record",
			})
			continue
		}
		class, higherBetter, floor := classify(name)
		c := comparison{name: name, old: oldV, new: newV, class: class}
		var rel float64
		switch class {
		case classInfo:
			c.note = "informational"
		case classDeterministic:
			rel = th.Deterministic
		case classRatio:
			rel = th.Ratio
		case classWall:
			rel = th.Wall
			if oldV < minComparableWall {
				c.note = "below comparable scale"
				class = classInfo
				c.class = classInfo
			}
		}
		if class != classInfo && oldV > 0 {
			var worsened float64 // absolute worsening in the metric's own units
			if higherBetter {
				worsened = oldV - newV
				c.regression = newV < oldV/(1+rel) && worsened > floor
			} else {
				worsened = newV - oldV
				c.regression = newV > oldV*(1+rel) && worsened > floor
			}
			if c.regression {
				regressions++
				c.note = fmt.Sprintf("REGRESSION beyond %.0f%% tolerance", rel*100)
			}
		}
		rows = append(rows, c)
	}
	var added []string
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)

	fmt.Printf("benchtables: comparing %s (old) -> %s (new)\n", oldPath, newPath)
	for _, c := range rows {
		marker := " "
		if c.regression {
			marker = "!"
		}
		fmt.Printf("%s %-46s %14.4f -> %14.4f  %s\n", marker, c.name, c.old, c.new, c.note)
	}
	for _, name := range added {
		fmt.Printf("  %-46s %14s -> %14.4f  new metric\n", name, "-", newM[name])
	}
	if regressions > 0 {
		fmt.Printf("benchtables: %d regression(s) flagged\n", regressions)
	} else {
		fmt.Printf("benchtables: no regressions\n")
	}
	return regressions, nil
}
