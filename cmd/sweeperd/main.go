// Command sweeperd runs a fleet of evaluation servers under Sweeper
// protection — one goroutine per guest around a shared antibody store —
// drives a benign workload around a live exploit aimed at one guest, and
// prints the complete defence timeline: detection, each analysis step and its
// result, the antibodies generated (and when), recovery, and how the shared
// antibodies inoculate the rest of the fleet against the same worm.
//
// With -rate, the fixed benign+worm script is replaced by a rate-controlled
// open-loop workload generator per guest: each guest's serving goroutine
// offers -requests requests at -rate req/s of virtual time (idle gaps advance
// the virtual clock, backlog builds when the guest falls behind), and
// -attack-every injects an exploit variant into guest 0's stream every Nth
// request. -stats-every prints per-guest offered/completed rates while the
// workload runs.
//
// With -listen and -peers, several sweeperd daemons federate their antibody
// stores over HTTP+JSON: each daemon pushes what it publishes, polls what
// pushes missed, and replays a peer's full store on join. Federated daemons
// do not trust each other — every received antibody is re-verified by
// replaying its attached exploit input in a clone sandbox before adoption
// (disable with -verify-adopt=false to see why that would be a bad idea).
// -auth-token sets a community shared secret: served pushes and polls without
// it are rejected, and every outgoing request carries it.
//
// Examples:
//
//	sweeperd -app squid -guests 4
//	sweeperd -app apache1,cvs -benign 50 -variants 2
//	sweeperd -app cvs -no-aslr -shadow-stack
//	sweeperd -app squid -sequential
//	sweeperd -app squid -rate 150 -requests 600 -attack-every 100 -stats-every 200ms
//
//	# a federated pair: a producer that gets attacked and a consumer that
//	# only ever sees the antibody arrive over the wire
//	sweeperd -app squid -listen 127.0.0.1:7070 -linger 3s
//	sweeperd -app squid -listen 127.0.0.1:7071 -peers 127.0.0.1:7070 -variants 0 -linger 3s
//
// With -tcp-listen, every guest gets a real TCP front end serving the framed
// request protocol (see internal/netproxy): connections are accepted, each
// length-prefixed request flows through the guest's filtering proxy, and the
// response (the guest's output, or the absorbed/filtered verdict) is written
// back on the same connection. -per-guest-port assigns guest i the base port
// plus i; client-observed latency percentiles are printed at shutdown. The
// daemon keeps serving until interrupted. Drive it with wormsim -connect:
//
//	sweeperd -app squid -guests 2 -benign 0 -variants 0 -tcp-listen 127.0.0.1:7400 -per-guest-port
//	wormsim -connect 127.0.0.1:7400 -app squid -requests 50 -attack
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: profiling handlers on the default mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/experiments"
	"sweeper/internal/exploit"
	"sweeper/internal/federate"
	"sweeper/internal/metrics"
)

// flagWasSet reports whether the named flag was given explicitly on the
// command line (as opposed to holding its default value).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	log.SetFlags(0)
	var (
		appNames     = flag.String("app", "squid", "comma-separated applications to protect: apache1, apache2, cvs, squid")
		guests       = flag.Int("guests", 3, "number of protected guests per application")
		benign       = flag.Int("benign", 20, "benign requests per guest before and after the attack")
		variants     = flag.Int("variants", 1, "number of polymorphic exploit variants to launch at guest 0")
		interval     = flag.Uint64("checkpoint-ms", 200, "checkpoint interval in virtual milliseconds")
		noASLR       = flag.Bool("no-aslr", false, "disable address-space randomisation")
		shadowStack  = flag.Bool("shadow-stack", false, "enable the shadow-stack lightweight monitor")
		sequential   = flag.Bool("sequential", false, "run the heavyweight analyses sequentially instead of in parallel")
		analyses     = flag.String("analyses", "membug,taint,slicing", "comma-separated analyses to run after detection (registered: membug, taint, slicing)")
		noPool       = flag.Bool("no-clone-pool", false, "build a fresh clone per analysis replay instead of reusing pooled shells")
		showAntibody = flag.Bool("show-antibody", false, "print each final antibody as JSON")
		rate         = flag.Float64("rate", 0, "per-guest open-loop workload rate in requests per virtual second; replaces the scripted benign+worm workload (0 = scripted)")
		requests     = flag.Int("requests", 400, "with -rate: total requests each guest's generator offers")
		attackEvery  = flag.Int("attack-every", 100, "with -rate: inject an exploit variant every Nth request of guest 0's stream (0 = benign only)")
		statsEvery   = flag.Duration("stats-every", 0, "with -rate: print per-guest generator stats at this wall-clock period while the workload runs (0 = off)")
		listen       = flag.String("listen", "", "serve the antibody store to federation peers on this address (e.g. 127.0.0.1:7070)")
		peers        = flag.String("peers", "", "comma-separated federation peers to gossip antibodies with (host:port)")
		verifyAdopt  = flag.Bool("verify-adopt", false, "replay each received antibody's exploit in a sandbox before adoption (default on when -listen or -peers is set)")
		pollMs       = flag.Int("poll-ms", 25, "federation poll interval in milliseconds")
		authToken    = flag.String("auth-token", "", "federation shared-secret: require it on every served push/poll and attach it to every outgoing request (empty = open federation)")
		linger       = flag.Duration("linger", 0, "keep the daemon alive this long after the scripted workload, serving peers and absorbing gossip")
		tcpListen    = flag.String("tcp-listen", "", "serve framed TCP requests to the guests from this base address (e.g. 127.0.0.1:7400); the daemon then runs until interrupted")
		perGuestPort = flag.Bool("per-guest-port", false, "with -tcp-listen: guest i listens on the base port plus i (required for more than one guest unless the base port is 0)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for profiling the live daemon")
		dataDir      = flag.String("data-dir", "", "persist the antibody store (write-ahead log + snapshot) and guest checkpoints under this directory; a restarted daemon replays the WAL and warm-restores its guests from it")
		shards       = flag.Int("shards", 0, "antibody store shard count (0 = default)")
	)
	flag.Parse()
	if *guests < 1 {
		log.Fatalf("sweeperd: -guests must be at least 1")
	}
	var selected []string
	for _, name := range strings.Split(*analyses, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected = append(selected, name)
		}
	}
	if selected == nil {
		selected = []string{} // -analyses="" means: no heavyweight analyses
	}
	federated := *listen != "" || *peers != ""
	verify := *verifyAdopt
	if federated && !flagWasSet("verify-adopt") {
		// Untrusting by default across daemon boundaries: a listen-only
		// daemon still accepts pushes from arbitrary peers.
		verify = true
	}

	if *pprofAddr != "" {
		lis, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("sweeperd: -pprof %s: %v", *pprofAddr, err)
		}
		// net/http/pprof registered its handlers on the default mux.
		go http.Serve(lis, nil)
		fmt.Printf("sweeperd: pprof on http://%s/debug/pprof/\n", lis.Addr())
	}

	fleet := core.NewFleetWithOptions(core.FleetOptions{DataDir: *dataDir, Shards: *shards})
	if *dataDir != "" {
		if d := fleet.Durability(); d.Warnings > 0 {
			fmt.Printf("sweeperd: WARNING: data directory %s unusable (%d warnings); running in-memory\n", *dataDir, d.Warnings)
		} else {
			fmt.Printf("sweeperd: durable state in %s (%d antibodies replayed from disk)\n", *dataDir, fleet.Store().Len())
		}
	}
	var specs []*apps.Spec
	for _, name := range strings.Split(*appNames, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		spec, err := apps.ByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatalf("sweeperd: %v", err)
		}
		specs = append(specs, spec)
		for i := 0; i < *guests; i++ {
			cfg := core.DefaultConfig()
			cfg.CheckpointIntervalMs = *interval
			cfg.ASLR = !*noASLR
			// Every guest gets its own randomised layout, like distinct hosts.
			cfg.ASLRSeed = 0x5eed + int64(i)*7919
			cfg.ShadowStack = *shadowStack
			cfg.ParallelAnalysis = !*sequential
			cfg.Analyses = selected
			cfg.PoolClones = !*noPool
			cfg.VerifyAdoption = verify
			guestName := fmt.Sprintf("%s-%d", spec.Name, i)
			if _, err := fleet.AddGuest(guestName, spec.Name, spec.Image, spec.Options, cfg); err != nil {
				log.Fatalf("sweeperd: %v", err)
			}
			fmt.Printf("sweeperd: protecting %s (%s, %s)\n", guestName, spec.CVE, spec.BugType)
		}
	}
	engine := "parallel"
	if *sequential {
		engine = "sequential"
	}
	fmt.Printf("  analysis engine: %s; analyses: %s; checkpoints every %d ms; verify-before-adopt: %v\n",
		engine, strings.Join(selected, ","), *interval, verify)

	// Federation: serve our store to peers and gossip with theirs.
	fedRec := metrics.NewFederationRecorder()
	var node *federate.Node
	if *listen != "" {
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("sweeperd: -listen %s: %v", *listen, err)
		}
		fedSrv := federate.NewServer(fleet.Store(), fedRec)
		fedSrv.SetAuthToken(*authToken)
		srv := &http.Server{Handler: fedSrv}
		go srv.Serve(lis)
		defer srv.Close()
		auth := "open"
		if *authToken != "" {
			auth = "token required"
		}
		fmt.Printf("  federation: serving antibodies on %s (%s)\n", lis.Addr(), auth)
	}
	if *peers != "" {
		node = federate.NewNode(fleet.Store(), fedRec, federate.Config{
			Name:         "sweeperd@" + *listen,
			PollInterval: time.Duration(*pollMs) * time.Millisecond,
			AuthToken:    *authToken,
		})
		defer node.Close()
		for _, addr := range strings.Split(*peers, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if err := node.AddPeer(addr); err != nil {
				log.Fatalf("sweeperd: %v", err)
			}
			fmt.Printf("  federation: peered with %s\n", addr)
		}
	}
	// With -rate, every guest gets an open-loop workload generator (attached
	// before the serving goroutines launch); otherwise the fixed benign+worm
	// script below drives the fleet.
	exploits := make(map[string][]byte)
	for _, spec := range specs {
		payload0, err := exploit.ExploitVariant(spec, 0)
		if err != nil {
			log.Fatalf("sweeperd: building exploit: %v", err)
		}
		exploits[spec.Name] = payload0
	}
	attacksLaunched := *variants > 0
	if *rate > 0 {
		attacksLaunched = *attackEvery > 0 && *attackEvery <= *requests
		for _, spec := range specs {
			for i := 0; i < *guests; i++ {
				g, _ := fleet.Guest(fmt.Sprintf("%s-%d", spec.Name, i))
				wcfg, err := experiments.FleetGuestWorkload(spec, i, *rate, *requests, *attackEvery)
				if err != nil {
					log.Fatalf("sweeperd: building exploit: %v", err)
				}
				if err := g.SetWorkload(wcfg); err != nil {
					log.Fatalf("sweeperd: %v", err)
				}
			}
		}
		fmt.Printf("  workload: open-loop generators, %g req/s x %d requests per guest", *rate, *requests)
		if *attackEvery > 0 {
			fmt.Printf(", exploit every %d requests at guest 0", *attackEvery)
		}
		fmt.Println()
	}
	// TCP front ends: one listener per guest, attached before the serving
	// goroutines launch.
	if *tcpListen != "" {
		host, portStr, err := net.SplitHostPort(*tcpListen)
		if err != nil {
			log.Fatalf("sweeperd: -tcp-listen %s: %v", *tcpListen, err)
		}
		basePort, err := strconv.Atoi(portStr)
		if err != nil {
			log.Fatalf("sweeperd: -tcp-listen %s: bad port: %v", *tcpListen, err)
		}
		allGuests := fleet.Guests()
		if len(allGuests) > 1 && basePort != 0 && !*perGuestPort {
			log.Fatalf("sweeperd: %d guests cannot share TCP port %d; pass -per-guest-port (or a base port of 0)", len(allGuests), basePort)
		}
		for i, g := range allGuests {
			port := basePort
			if *perGuestPort && basePort != 0 {
				port = basePort + i
			}
			if err := g.AttachListener(net.JoinHostPort(host, strconv.Itoa(port))); err != nil {
				log.Fatalf("sweeperd: %v", err)
			}
			fmt.Printf("  tcp front end: %s on %s\n", g.Name(), g.ListenAddr())
		}
	}
	fmt.Println()
	fleet.Start()

	// Periodic stats: with -rate, the per-guest generator counters; and for
	// any guest with a TCP front end, the client-observed latency percentiles
	// of each attack window — the delta between recorder snapshots taken at
	// the stats ticks bracketing the tick(s) in which attacks were handled.
	stopStats := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			ticker := time.NewTicker(*statsEvery)
			defer ticker.Stop()
			type statsMark struct {
				snap    *metrics.LatencySnapshot
				attacks int
			}
			prev := make(map[string]statsMark)
			for {
				select {
				case <-stopStats:
					return
				case <-ticker.C:
					if *rate > 0 {
						for _, st := range fleet.Metrics().All() {
							fmt.Printf("loadgen: %-12s offered=%-4d (%.1f req/s) completed=%.1f req/s attacks-injected=%d handled=%d adopted=%d filtered=%d\n",
								st.Guest, st.WorkloadOffered, st.OfferedReqPerSec, st.CompletedReqPerSec,
								st.WorkloadAttacks, st.AttacksHandled, st.AntibodiesAdopted, st.FilteredInputs)
						}
					}
					for _, g := range fleet.Guests() {
						lat := g.FrontLatency()
						if lat == nil {
							continue
						}
						cur := statsMark{snap: lat.Snapshot(), attacks: len(g.Sweeper().Attacks())}
						if p, ok := prev[g.Name()]; ok && cur.attacks > p.attacks {
							if win := cur.snap.Delta(p.snap); win.Count() > 0 {
								p50, p95, p99 := win.Percentiles()
								fmt.Printf("attack-window: %-12s %d attack(s) handled, %d responses in window, client-observed p50=%v p95=%v p99=%v\n",
									g.Name(), cur.attacks-p.attacks, win.Count(),
									p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
							}
						}
						prev[g.Name()] = cur
					}
				}
			}
		}()
	}

	if *rate > 0 {
		fleet.Drain()
	} else {
		// Benign traffic to every guest, the worm's exploit variants at guest
		// 0 of each application, then more benign traffic.
		for _, spec := range specs {
			payload0 := exploits[spec.Name]
			for i := 0; i < *guests; i++ {
				guestName := fmt.Sprintf("%s-%d", spec.Name, i)
				for r := 0; r < *benign; r++ {
					fleet.Submit(guestName, exploit.Benign(spec.Name, r), "client", false)
				}
			}
			for v := 0; v < *variants; v++ {
				payload := payload0
				if v > 0 {
					var err error
					payload, err = exploit.ExploitVariant(spec, v)
					if err != nil {
						log.Fatalf("sweeperd: building exploit: %v", err)
					}
				}
				accepted := fleet.Submit(spec.Name+"-0", payload, "worm", true)
				fmt.Printf("worm: exploit variant %d submitted to %s-0 (%d bytes), accepted by proxy: %v\n",
					v, spec.Name, len(payload), accepted)
			}
			for i := 0; i < *guests; i++ {
				guestName := fmt.Sprintf("%s-%d", spec.Name, i)
				for r := 0; r < *benign; r++ {
					fleet.Submit(guestName, exploit.Benign(spec.Name, 1000+r), "client", false)
				}
			}
		}
		fleet.Drain()
	}

	// Linger: keep serving federation peers and absorbing their gossip (a
	// consumer daemon receives, verifies and adopts antibodies during this
	// window; a producer keeps answering pulls).
	if *linger > 0 {
		fmt.Printf("\nlingering %v for federation traffic...\n", *linger)
		lingerUntil := time.Now().Add(*linger)
		for time.Now().Before(lingerUntil) {
			time.Sleep(50 * time.Millisecond)
			fleet.Drain() // let guests verify/adopt whatever just arrived
		}
	}

	// With TCP front ends attached, the daemon's real work happens now: keep
	// serving socket traffic until interrupted.
	if *tcpListen != "" {
		fmt.Println("\nserving TCP requests until interrupted (ctrl-c to stop)...")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("sweeperd: shutting down")
	}

	// The worm now tries every guest in the fleet: the antibodies generated
	// at guest 0 — or, with -variants 0 in a federated consumer, received
	// from peers and verified — have been distributed through the shared
	// store, so the exact-match input signature drops the exploit at every
	// proxy.
	fmt.Println()
	for _, spec := range specs {
		if !attacksLaunched && !federated {
			continue // no exploit was ever launched and none could arrive
		}
		payload := exploits[spec.Name]
		for i := 0; i < *guests; i++ {
			guestName := fmt.Sprintf("%s-%d", spec.Name, i)
			accepted := fleet.Submit(guestName, payload, "worm", true)
			fmt.Printf("worm: replayed exploit against %s: accepted=%v (inoculated=%v)\n",
				guestName, accepted, !accepted)
		}
	}
	close(stopStats)
	fleet.Stop()

	fmt.Printf("\n=== fleet metrics ===\n")
	for _, st := range fleet.Metrics().All() {
		fmt.Printf("%-12s served=%-4d attacks=%d recovered=%d generated=%d adopted=%d verified=%d rejected=%d filtered=%d halted=%v\n",
			st.Guest, st.RequestsServed, st.AttacksHandled, st.Recovered,
			st.AntibodiesGenerated, st.AntibodiesAdopted, st.AntibodiesVerified,
			st.AntibodiesRejected, st.FilteredInputs, st.Halted)
		if st.WorkloadOffered > 0 {
			fmt.Printf("%-12s   workload: offered=%d (%.1f req/s) completed=%.1f req/s attacks-injected=%d rejected-at-proxy=%d\n",
				"", st.WorkloadOffered, st.OfferedReqPerSec, st.CompletedReqPerSec,
				st.WorkloadAttacks, st.WorkloadRejected)
		}
	}
	totals := fleet.Metrics().Totals()
	fmt.Printf("%-12s served=%-4d attacks=%d recovered=%d generated=%d adopted=%d verified=%d rejected=%d filtered=%d\n",
		"TOTAL", totals.RequestsServed, totals.AttacksHandled, totals.Recovered,
		totals.AntibodiesGenerated, totals.AntibodiesAdopted, totals.AntibodiesVerified,
		totals.AntibodiesRejected, totals.FilteredInputs)
	fmt.Printf("shared store: %d antibodies\n", fleet.Store().Len())
	if *dataDir != "" {
		d := fleet.Durability()
		fmt.Printf("durability  : warm-restarts=%d cold-fallbacks=%d warnings=%d; store flushed and fsynced to %s\n",
			d.WarmRestarts, d.ColdFallbacks, d.Warnings, *dataDir)
	}
	for _, g := range fleet.Guests() {
		lat := g.FrontLatency()
		if lat == nil || lat.Count() == 0 {
			continue
		}
		p50, p95, p99 := lat.Percentiles()
		fmt.Printf("%-12s tcp front end: %d responses, client-observed p50=%v p95=%v p99=%v\n",
			g.Name(), lat.Count(), p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
	}
	for _, g := range fleet.Guests() {
		ck := g.Sweeper().Checkpoints()
		captured, full := ck.ByteStats()
		if ck.Taken() == 0 {
			continue
		}
		fmt.Printf("%-12s checkpoints: %d taken, %d KiB captured as dirty runs/pages (full-page scans would have copied %d KiB)\n",
			g.Name(), ck.Taken(), captured/1024, full/1024)
	}
	for _, g := range fleet.Guests() {
		s := g.Sweeper()
		lats := s.AnalyzerLatencies()
		if len(lats) == 0 {
			continue
		}
		created, reused := s.ClonePoolStats()
		fmt.Printf("%-12s analyzer latency:", g.Name())
		for _, l := range lats {
			fmt.Printf(" %s mean=%v max=%v (%d runs)", l.Name, l.Mean().Round(10_000), l.Max.Round(10_000), l.Runs)
		}
		fmt.Printf("; sandboxes built=%d pooled=%d; deferred backlog=%d dropped=%d\n",
			created, reused, s.DeferredBacklog(), s.DeferredDropped())
	}
	if federated {
		fs := fedRec.Snapshot()
		fmt.Printf("federation  : peers=%d pushed=%d received=%d duplicates=%d polls=%d push-errors=%d\n",
			fs.Peers, fs.Pushed, fs.Received, fs.Duplicates, fs.Polls, fs.PushErrors)
	}

	for _, g := range fleet.Guests() {
		s := g.Sweeper()
		for _, r := range s.Attacks() {
			// Deferred analyses (the slicing cross-check) complete after a
			// guest resumes service; join before printing their results.
			r.Wait()
			fmt.Printf("\n=== attack %d on %s (virtual t=%d ms, %s engine) ===\n",
				r.Seq, g.Name(), r.DetectedAtMs, map[bool]string{true: "parallel", false: "sequential"}[r.Parallel])
			fmt.Printf("detected : %s\n", r.Detection.Reason)
			fmt.Printf("#1 memory state  (%v): %s\n", r.Steps[0].Duration.Round(10_000), r.CoreDump.Summary())
			if r.InitialAntibody != nil && len(r.InitialAntibody.VSEFs) > 0 {
				fmt.Printf("   initial VSEF after %v: %s\n", r.TimeToFirstVSEF.Round(10_000), r.InitialAntibody.VSEFs[0])
			}
			if len(r.MemBugFindings) > 0 {
				fmt.Printf("#2 memory bug    : %s\n", r.MemBugFindings[0].Summary())
			} else {
				fmt.Printf("#2 memory bug    : no memory bug detected\n")
			}
			if r.RefinedAntibody != nil {
				fmt.Printf("   refined VSEF after %v: %s\n", r.TimeToBestVSEF.Round(10_000), r.RefinedAntibody.VSEFs[len(r.RefinedAntibody.VSEFs)-1])
			}
			if r.CulpritRequestID >= 0 {
				method := "taint analysis"
				if r.IsolationUsed {
					method = "request isolation"
				}
				fmt.Printf("#3 input/taint   : exploit input = request %d (%d bytes) via %s\n",
					r.CulpritRequestID, len(r.CulpritPayload), method)
			} else {
				fmt.Printf("#3 input/taint   : exploit input not identified\n")
			}
			switch {
			case r.FindingFor("slicing") != nil:
				fmt.Printf("#4 slicing       : %d dynamic instructions, consistent=%v\n", r.SliceNodes, r.SliceConsistent)
			case r.ErrorFor("slicing") != "":
				fmt.Printf("#4 slicing       : FAILED: %s\n", r.ErrorFor("slicing"))
			default:
				fmt.Printf("#4 slicing       : not run (see -analyses)\n")
			}
			fmt.Printf("analysis times   : first VSEF %v, best VSEF %v, initial %v, total %v\n",
				r.TimeToFirstVSEF.Round(10_000), r.TimeToBestVSEF.Round(10_000),
				r.InitialAnalysisTime.Round(10_000), r.TotalAnalysisTime.Round(10_000))
			fmt.Printf("recovery         : ok=%v in %v wall / %d ms virtual (diverged=%v)\n",
				r.Recovered, r.RecoveryTime.Round(10_000), r.RecoveryVirtualMs, r.RecoveryDiverged)
			if *showAntibody && r.FinalAntibody != nil {
				if data, err := r.FinalAntibody.Marshal(); err == nil {
					fmt.Printf("final antibody   : %s\n", data)
				}
			}
		}
	}
}
