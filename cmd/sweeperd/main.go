// Command sweeperd runs a fleet of evaluation servers under Sweeper
// protection — one goroutine per guest around a shared antibody store —
// drives a benign workload around a live exploit aimed at one guest, and
// prints the complete defence timeline: detection, each analysis step and its
// result, the antibodies generated (and when), recovery, and how the shared
// antibodies inoculate the rest of the fleet against the same worm.
//
// Examples:
//
//	sweeperd -app squid -guests 4
//	sweeperd -app apache1,cvs -benign 50 -variants 2
//	sweeperd -app cvs -no-aslr -shadow-stack
//	sweeperd -app squid -sequential
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
)

func main() {
	log.SetFlags(0)
	var (
		appNames     = flag.String("app", "squid", "comma-separated applications to protect: apache1, apache2, cvs, squid")
		guests       = flag.Int("guests", 3, "number of protected guests per application")
		benign       = flag.Int("benign", 20, "benign requests per guest before and after the attack")
		variants     = flag.Int("variants", 1, "number of polymorphic exploit variants to launch at guest 0")
		interval     = flag.Uint64("checkpoint-ms", 200, "checkpoint interval in virtual milliseconds")
		noASLR       = flag.Bool("no-aslr", false, "disable address-space randomisation")
		shadowStack  = flag.Bool("shadow-stack", false, "enable the shadow-stack lightweight monitor")
		sequential   = flag.Bool("sequential", false, "run the heavyweight analyses sequentially instead of in parallel")
		showAntibody = flag.Bool("show-antibody", false, "print each final antibody as JSON")
	)
	flag.Parse()
	if *guests < 1 {
		log.Fatalf("sweeperd: -guests must be at least 1")
	}

	fleet := core.NewFleet()
	var specs []*apps.Spec
	for _, name := range strings.Split(*appNames, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		spec, err := apps.ByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatalf("sweeperd: %v", err)
		}
		specs = append(specs, spec)
		for i := 0; i < *guests; i++ {
			cfg := core.DefaultConfig()
			cfg.CheckpointIntervalMs = *interval
			cfg.ASLR = !*noASLR
			// Every guest gets its own randomised layout, like distinct hosts.
			cfg.ASLRSeed = 0x5eed + int64(i)*7919
			cfg.ShadowStack = *shadowStack
			cfg.ParallelAnalysis = !*sequential
			guestName := fmt.Sprintf("%s-%d", spec.Name, i)
			if _, err := fleet.AddGuest(guestName, spec.Name, spec.Image, spec.Options, cfg); err != nil {
				log.Fatalf("sweeperd: %v", err)
			}
			fmt.Printf("sweeperd: protecting %s (%s, %s)\n", guestName, spec.CVE, spec.BugType)
		}
	}
	engine := "parallel"
	if *sequential {
		engine = "sequential"
	}
	fmt.Printf("  analysis engine: %s; checkpoints every %d ms\n\n", engine, *interval)
	fleet.Start()

	// Benign traffic to every guest, the worm's exploit variants at guest 0
	// of each application, then more benign traffic.
	exploits := make(map[string][]byte)
	for _, spec := range specs {
		for i := 0; i < *guests; i++ {
			guestName := fmt.Sprintf("%s-%d", spec.Name, i)
			for r := 0; r < *benign; r++ {
				fleet.Submit(guestName, exploit.Benign(spec.Name, r), "client", false)
			}
		}
		for v := 0; v < *variants; v++ {
			payload, err := exploit.ExploitVariant(spec, v)
			if err != nil {
				log.Fatalf("sweeperd: building exploit: %v", err)
			}
			if v == 0 {
				exploits[spec.Name] = payload
			}
			accepted := fleet.Submit(spec.Name+"-0", payload, "worm", true)
			fmt.Printf("worm: exploit variant %d submitted to %s-0 (%d bytes), accepted by proxy: %v\n",
				v, spec.Name, len(payload), accepted)
		}
		for i := 0; i < *guests; i++ {
			guestName := fmt.Sprintf("%s-%d", spec.Name, i)
			for r := 0; r < *benign; r++ {
				fleet.Submit(guestName, exploit.Benign(spec.Name, 1000+r), "client", false)
			}
		}
	}
	fleet.Drain()

	// The worm now tries every guest in the fleet: the antibodies generated
	// at guest 0 have been distributed through the shared store, so the
	// exact-match input signature drops the exploit at every proxy.
	fmt.Println()
	for _, spec := range specs {
		payload, launched := exploits[spec.Name]
		if !launched {
			continue // -variants 0: no exploit was ever launched
		}
		for i := 0; i < *guests; i++ {
			guestName := fmt.Sprintf("%s-%d", spec.Name, i)
			accepted := fleet.Submit(guestName, payload, "worm", true)
			fmt.Printf("worm: replayed exploit against %s: accepted=%v (inoculated=%v)\n",
				guestName, accepted, !accepted)
		}
	}
	fleet.Stop()

	fmt.Printf("\n=== fleet metrics ===\n")
	for _, st := range fleet.Metrics().All() {
		fmt.Printf("%-12s served=%-4d attacks=%d recovered=%d generated=%d adopted=%d filtered=%d halted=%v\n",
			st.Guest, st.RequestsServed, st.AttacksHandled, st.Recovered,
			st.AntibodiesGenerated, st.AntibodiesAdopted, st.FilteredInputs, st.Halted)
	}
	totals := fleet.Metrics().Totals()
	fmt.Printf("%-12s served=%-4d attacks=%d recovered=%d generated=%d adopted=%d filtered=%d\n",
		"TOTAL", totals.RequestsServed, totals.AttacksHandled, totals.Recovered,
		totals.AntibodiesGenerated, totals.AntibodiesAdopted, totals.FilteredInputs)
	fmt.Printf("shared store: %d antibodies\n", fleet.Store().Len())

	for _, g := range fleet.Guests() {
		s := g.Sweeper()
		for _, r := range s.Attacks() {
			fmt.Printf("\n=== attack %d on %s (virtual t=%d ms, %s engine) ===\n",
				r.Seq, g.Name(), r.DetectedAtMs, map[bool]string{true: "parallel", false: "sequential"}[r.Parallel])
			fmt.Printf("detected : %s\n", r.Detection.Reason)
			fmt.Printf("#1 memory state  (%v): %s\n", r.Steps[0].Duration.Round(10_000), r.CoreDump.Summary())
			if r.InitialAntibody != nil && len(r.InitialAntibody.VSEFs) > 0 {
				fmt.Printf("   initial VSEF after %v: %s\n", r.TimeToFirstVSEF.Round(10_000), r.InitialAntibody.VSEFs[0])
			}
			if len(r.MemBugFindings) > 0 {
				fmt.Printf("#2 memory bug    : %s\n", r.MemBugFindings[0].Summary())
			} else {
				fmt.Printf("#2 memory bug    : no memory bug detected\n")
			}
			if r.RefinedAntibody != nil {
				fmt.Printf("   refined VSEF after %v: %s\n", r.TimeToBestVSEF.Round(10_000), r.RefinedAntibody.VSEFs[len(r.RefinedAntibody.VSEFs)-1])
			}
			if r.CulpritRequestID >= 0 {
				method := "taint analysis"
				if r.IsolationUsed {
					method = "request isolation"
				}
				fmt.Printf("#3 input/taint   : exploit input = request %d (%d bytes) via %s\n",
					r.CulpritRequestID, len(r.CulpritPayload), method)
			} else {
				fmt.Printf("#3 input/taint   : exploit input not identified\n")
			}
			fmt.Printf("#4 slicing       : %d dynamic instructions, consistent=%v\n", r.SliceNodes, r.SliceConsistent)
			fmt.Printf("analysis times   : first VSEF %v, best VSEF %v, initial %v, total %v\n",
				r.TimeToFirstVSEF.Round(10_000), r.TimeToBestVSEF.Round(10_000),
				r.InitialAnalysisTime.Round(10_000), r.TotalAnalysisTime.Round(10_000))
			fmt.Printf("recovery         : ok=%v in %v wall / %d ms virtual (diverged=%v)\n",
				r.Recovered, r.RecoveryTime.Round(10_000), r.RecoveryVirtualMs, r.RecoveryDiverged)
			if *showAntibody && r.FinalAntibody != nil {
				if data, err := r.FinalAntibody.Marshal(); err == nil {
					fmt.Printf("final antibody   : %s\n", data)
				}
			}
		}
	}
}
