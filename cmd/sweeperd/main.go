// Command sweeperd runs one of the evaluation servers under Sweeper
// protection, drives a benign workload around a live exploit, and prints the
// complete defence timeline: detection, each analysis step and its result,
// the antibodies generated (and when), and the recovery outcome.
//
// Examples:
//
//	sweeperd -app squid
//	sweeperd -app apache1 -benign 50 -variants 2
//	sweeperd -app cvs -no-aslr -shadow-stack
package main

import (
	"flag"
	"fmt"
	"log"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
)

func main() {
	log.SetFlags(0)
	var (
		appName     = flag.String("app", "squid", "application to protect: apache1, apache2, cvs, squid")
		benign      = flag.Int("benign", 20, "benign requests before and after the attack")
		variants    = flag.Int("variants", 1, "number of polymorphic exploit variants to launch")
		interval    = flag.Uint64("checkpoint-ms", 200, "checkpoint interval in virtual milliseconds")
		noASLR      = flag.Bool("no-aslr", false, "disable address-space randomisation")
		shadowStack = flag.Bool("shadow-stack", false, "enable the shadow-stack lightweight monitor")
		showAntibody = flag.Bool("show-antibody", false, "print the final antibody as JSON")
	)
	flag.Parse()

	spec, err := apps.ByName(*appName)
	if err != nil {
		log.Fatalf("sweeperd: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.CheckpointIntervalMs = *interval
	cfg.ASLR = !*noASLR
	cfg.ShadowStack = *shadowStack

	s, err := core.New(spec.Name, spec.Image, spec.Options, cfg)
	if err != nil {
		log.Fatalf("sweeperd: %v", err)
	}
	fmt.Printf("sweeperd: protecting %s (%s, %s)\n", spec.Program, spec.CVE, spec.BugType)
	fmt.Printf("  layout: code=%#x data=%#x heap=%#x stack=%#x (ASLR %v)\n",
		s.Layout().CodeBase, s.Layout().DataBase, s.Layout().HeapBase, s.Layout().StackBase, cfg.ASLR)
	fmt.Printf("  checkpoints: every %d ms, keeping %d\n\n", cfg.CheckpointIntervalMs, cfg.MaxCheckpoints)

	for i := 0; i < *benign; i++ {
		s.Submit(exploit.Benign(spec.Name, i), "client", false)
	}
	for v := 0; v < *variants; v++ {
		payload, err := exploit.ExploitVariant(spec, v)
		if err != nil {
			log.Fatalf("sweeperd: building exploit: %v", err)
		}
		accepted := s.Submit(payload, "worm", true)
		fmt.Printf("worm: exploit variant %d submitted (%d bytes), accepted by proxy: %v\n", v, len(payload), accepted)
	}
	for i := 0; i < *benign; i++ {
		s.Submit(exploit.Benign(spec.Name, 1000+i), "client", false)
	}

	res, err := s.ServeAll()
	if err != nil {
		log.Fatalf("sweeperd: %v", err)
	}

	fmt.Printf("\nserved %d requests, handled %d attack(s), server halted: %v\n",
		res.RequestsServed, res.AttacksHandled, res.Halted)
	stats := s.Proxy().Stats()
	fmt.Printf("proxy: %d submitted, %d filtered by input signatures, %d delivered\n\n",
		stats.Submitted, stats.Filtered, stats.Delivered)

	for _, r := range s.Attacks() {
		fmt.Printf("=== attack %d (virtual t=%d ms) ===\n", r.Seq, r.DetectedAtMs)
		fmt.Printf("detected : %s\n", r.Detection.Reason)
		fmt.Printf("#1 memory state  (%v): %s\n", r.Steps[0].Duration.Round(10_000), r.CoreDump.Summary())
		if r.InitialAntibody != nil && len(r.InitialAntibody.VSEFs) > 0 {
			fmt.Printf("   initial VSEF after %v: %s\n", r.TimeToFirstVSEF.Round(10_000), r.InitialAntibody.VSEFs[0])
		}
		if len(r.MemBugFindings) > 0 {
			fmt.Printf("#2 memory bug    : %s\n", r.MemBugFindings[0].Summary())
		} else {
			fmt.Printf("#2 memory bug    : no memory bug detected\n")
		}
		if r.RefinedAntibody != nil {
			fmt.Printf("   refined VSEF after %v: %s\n", r.TimeToBestVSEF.Round(10_000), r.RefinedAntibody.VSEFs[len(r.RefinedAntibody.VSEFs)-1])
		}
		if r.CulpritRequestID >= 0 {
			method := "taint analysis"
			if r.IsolationUsed {
				method = "request isolation"
			}
			fmt.Printf("#3 input/taint   : exploit input = request %d (%d bytes) via %s\n",
				r.CulpritRequestID, len(r.CulpritPayload), method)
		} else {
			fmt.Printf("#3 input/taint   : exploit input not identified\n")
		}
		fmt.Printf("#4 slicing       : %d dynamic instructions, consistent=%v\n", r.SliceNodes, r.SliceConsistent)
		fmt.Printf("analysis times   : first VSEF %v, best VSEF %v, initial %v, total %v\n",
			r.TimeToFirstVSEF.Round(10_000), r.TimeToBestVSEF.Round(10_000),
			r.InitialAnalysisTime.Round(10_000), r.TotalAnalysisTime.Round(10_000))
		fmt.Printf("recovery         : ok=%v in %v wall / %d ms virtual (diverged=%v)\n",
			r.Recovered, r.RecoveryTime.Round(10_000), r.RecoveryVirtualMs, r.RecoveryDiverged)
		if *showAntibody && r.FinalAntibody != nil {
			data, err := r.FinalAntibody.Marshal()
			if err == nil {
				fmt.Printf("final antibody   : %s\n", data)
			}
		}
		fmt.Println()
	}

	fmt.Printf("antibodies generated: %d\n", len(s.Antibodies()))
	for _, a := range s.Antibodies() {
		fmt.Printf("  %s\n", a)
	}
}
