// Package bench contains the top-level benchmark harness: one benchmark per
// table and figure of the paper's evaluation, so that
//
//	go test -bench=. -benchmem
//
// regenerates the quantities behind Tables 1-3 and Figures 4-8, plus the
// ablation and baseline comparisons described in DESIGN.md. Custom metrics
// (overhead fractions, infection ratios, virtual-time gaps) are attached to
// the benchmark results via ReportMetric.
package bench

import (
	"strings"
	"testing"

	"sweeper/internal/apps"
	"sweeper/internal/epidemic"
	"sweeper/internal/experiments"
)

// --- Table 1: the evaluated applications (program construction cost) ---

func BenchmarkTable1BuildApplications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs := apps.All()
		if len(specs) != 4 {
			b.Fatalf("expected 4 applications, got %d", len(specs))
		}
	}
}

// --- Table 2: full defence pipeline functionality, one benchmark per app ---

func benchmarkDefense(b *testing.B, app string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunDefense(app, 8, 8, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !run.Report.Recovered {
			b.Fatalf("recovery failed for %s", app)
		}
	}
}

func BenchmarkTable2DefenseApache1(b *testing.B) { benchmarkDefense(b, "apache1") }
func BenchmarkTable2DefenseApache2(b *testing.B) { benchmarkDefense(b, "apache2") }
func BenchmarkTable2DefenseCVS(b *testing.B)     { benchmarkDefense(b, "cvs") }
func BenchmarkTable2DefenseSquid(b *testing.B)   { benchmarkDefense(b, "squid") }

// --- Table 3: analysis pipeline timings ---

func benchmarkAnalysisTimes(b *testing.B, app string) {
	b.Helper()
	var firstVSEF, bestVSEF, total float64
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunDefense(app, 8, 8, nil)
		if err != nil {
			b.Fatal(err)
		}
		r := run.Report
		firstVSEF += r.TimeToFirstVSEF.Seconds()
		bestVSEF += r.TimeToBestVSEF.Seconds()
		total += r.TotalAnalysisTime.Seconds()
	}
	n := float64(b.N)
	b.ReportMetric(firstVSEF/n*1e3, "ms-to-first-VSEF")
	b.ReportMetric(bestVSEF/n*1e3, "ms-to-best-VSEF")
	b.ReportMetric(total/n*1e3, "ms-total-analysis")
}

func BenchmarkTable3AnalysisApache1(b *testing.B) { benchmarkAnalysisTimes(b, "apache1") }
func BenchmarkTable3AnalysisSquid(b *testing.B)   { benchmarkAnalysisTimes(b, "squid") }

// --- Figure 4: checkpoint interval vs throughput overhead ---

func benchmarkCheckpointInterval(b *testing.B, intervalMs uint64) {
	b.Helper()
	requests := experiments.QuickSizes().Figure4Requests
	var overhead float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure4([]uint64{intervalMs}, requests)
		if err != nil {
			b.Fatal(err)
		}
		overhead += points[0].Overhead
	}
	b.ReportMetric(overhead/float64(b.N)*100, "overhead-%")
}

func BenchmarkFigure4CheckpointInterval20ms(b *testing.B)  { benchmarkCheckpointInterval(b, 20) }
func BenchmarkFigure4CheckpointInterval50ms(b *testing.B)  { benchmarkCheckpointInterval(b, 50) }
func BenchmarkFigure4CheckpointInterval100ms(b *testing.B) { benchmarkCheckpointInterval(b, 100) }
func BenchmarkFigure4CheckpointInterval200ms(b *testing.B) { benchmarkCheckpointInterval(b, 200) }

// --- §5.3: vulnerability monitoring (VSEF) and baseline overheads ---

func BenchmarkVSEFOverhead(b *testing.B) {
	requests := experiments.QuickSizes().OverheadRequests
	var vsefOverhead, taintOverhead float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MonitoringOverhead(requests)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch {
			case strings.HasPrefix(r.Mode, "sweeper + deployed VSEF"):
				vsefOverhead += r.Overhead
			case strings.HasPrefix(r.Mode, "always-on taint"):
				taintOverhead += r.Overhead
			}
		}
	}
	b.ReportMetric(vsefOverhead/float64(b.N)*100, "vsef-overhead-%")
	b.ReportMetric(taintOverhead/float64(b.N)*100, "taint-baseline-overhead-%")
}

// --- Figure 5: throughput during an attack, Sweeper recovery vs restart ---

func BenchmarkFigure5Recovery(b *testing.B) {
	sizes := experiments.QuickSizes()
	var recoveryGap, restartGap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(sizes.Figure5Requests, sizes.Figure5AttackAt, sizes.Figure5BucketMs)
		if err != nil {
			b.Fatal(err)
		}
		recoveryGap += float64(res.RecoveryGapMs)
		restartGap += float64(res.RestartGapMs)
	}
	b.ReportMetric(recoveryGap/float64(b.N), "recovery-gap-virtual-ms")
	b.ReportMetric(restartGap/float64(b.N), "restart-gap-virtual-ms")
}

// --- Figures 6-8: community defence model sweeps ---

func benchmarkCommunityFigure(b *testing.B, beta, rho float64, alphas []float64, reportAlpha, reportGamma float64) {
	b.Helper()
	var ratio float64
	for i := 0; i < b.N; i++ {
		for _, gamma := range epidemic.StandardGammas() {
			for _, alpha := range alphas {
				r := epidemic.InfectionRatio(beta, 100000, alpha, gamma, rho)
				if alpha == reportAlpha && gamma == reportGamma {
					ratio = r
				}
			}
		}
	}
	b.ReportMetric(ratio*100, "infection-%-at-reference-point")
}

func BenchmarkFigure6EpidemicSlammer(b *testing.B) {
	benchmarkCommunityFigure(b, 0.1, 1.0, epidemic.Figure6Alphas(), 0.0001, 5)
}

func BenchmarkFigure7EpidemicHitlist1000(b *testing.B) {
	benchmarkCommunityFigure(b, 1000, epidemic.DefaultRho, epidemic.Figure78Alphas(), 0.0001, 10)
}

func BenchmarkFigure8EpidemicHitlist4000(b *testing.B) {
	benchmarkCommunityFigure(b, 4000, epidemic.DefaultRho, epidemic.Figure78Alphas(), 0.0001, 10)
}

// --- Ablations and cross-checks ---

func BenchmarkAblationProactiveProtection(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		rows := experiments.ProactiveAblation(1000)
		for _, r := range rows {
			if r.Alpha == 0.001 && r.Gamma == 10 {
				with, without = r.WithProactive, r.WithoutProactive
			}
		}
	}
	b.ReportMetric(with*100, "with-proactive-infection-%")
	b.ReportMetric(without*100, "without-proactive-infection-%")
}

func BenchmarkAgentBasedCrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := epidemic.SimulateAgentsMean(epidemic.AgentParams{
			N: 20000, Alpha: 0.001, Beta: 1000, Gamma: 10, Rho: epidemic.DefaultRho, Seed: int64(i + 1),
		}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
}
