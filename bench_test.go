// Package bench contains the top-level benchmark harness: one benchmark per
// table and figure of the paper's evaluation, so that
//
//	go test -bench=. -benchmem
//
// regenerates the quantities behind Tables 1-3 and Figures 4-8, plus the
// ablation and baseline comparisons described in DESIGN.md. Custom metrics
// (overhead fractions, infection ratios, virtual-time gaps) are attached to
// the benchmark results via ReportMetric.
//
// Every benchmark's body is factored into a one-iteration function
// registered in benchOnce (bench_smoke_test.go), so that plain `go test`
// executes each benchmark exactly once — the -benchtime=1x equivalent — and
// the paper-table benchmarks cannot silently rot.
package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"sweeper/internal/analysis/slicing"
	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/epidemic"
	"sweeper/internal/experiments"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// --- Table 1: the evaluated applications (program construction cost) ---

func table1Once(tb testing.TB) {
	specs := apps.All()
	if len(specs) != 4 {
		tb.Fatalf("expected 4 applications, got %d", len(specs))
	}
}

func BenchmarkTable1BuildApplications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table1Once(b)
	}
}

// --- Table 2: full defence pipeline functionality, one benchmark per app ---

func defenseOnce(tb testing.TB, app string) *experiments.DefenseRun {
	run, err := experiments.RunDefense(app, 8, 8, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if !run.Report.Recovered {
		tb.Fatalf("recovery failed for %s", app)
	}
	return run
}

func benchmarkDefense(b *testing.B, app string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		defenseOnce(b, app)
	}
}

func BenchmarkTable2DefenseApache1(b *testing.B) { benchmarkDefense(b, "apache1") }
func BenchmarkTable2DefenseApache2(b *testing.B) { benchmarkDefense(b, "apache2") }
func BenchmarkTable2DefenseCVS(b *testing.B)     { benchmarkDefense(b, "cvs") }
func BenchmarkTable2DefenseSquid(b *testing.B)   { benchmarkDefense(b, "squid") }

// --- Table 3: analysis pipeline timings ---

func analysisTimesOnce(tb testing.TB, app string) (firstVSEF, bestVSEF, total float64) {
	run := defenseOnce(tb, app)
	r := run.Report
	return r.TimeToFirstVSEF.Seconds(), r.TimeToBestVSEF.Seconds(), r.TotalAnalysisTime.Seconds()
}

func benchmarkAnalysisTimes(b *testing.B, app string) {
	b.Helper()
	var firstVSEF, bestVSEF, total float64
	for i := 0; i < b.N; i++ {
		f, best, tot := analysisTimesOnce(b, app)
		firstVSEF += f
		bestVSEF += best
		total += tot
	}
	n := float64(b.N)
	b.ReportMetric(firstVSEF/n*1e3, "ms-to-first-VSEF")
	b.ReportMetric(bestVSEF/n*1e3, "ms-to-best-VSEF")
	b.ReportMetric(total/n*1e3, "ms-total-analysis")
}

func BenchmarkTable3AnalysisApache1(b *testing.B) { benchmarkAnalysisTimes(b, "apache1") }
func BenchmarkTable3AnalysisSquid(b *testing.B)   { benchmarkAnalysisTimes(b, "squid") }

// engineTiming is one engine's Table 3 headline numbers: the wall-clock
// until the final antibody shipped (what internet-scale response time is
// about — it excludes the slicing cross-check, which the antibody does not
// depend on) and the total including slicing.
type engineTiming struct {
	antibodySec float64
	totalSec    float64
}

// engineComparisonOnce runs the heaviest evaluation app through the full
// defence pipeline under both analysis engines: the parallel engine
// re-executes membug, taint and slicing concurrently on independent COW
// clones of the rollback checkpoint, the sequential engine one after
// another. Each engine is timed best-of-3 with a GC in between, so the
// comparison reflects the engines rather than collector noise (the slicing
// replay dominates the totals and allocates heavily).
func engineComparisonOnce(tb testing.TB) (sequential, parallel engineTiming) {
	bestOf := func(wantParallel bool) engineTiming {
		best := engineTiming{antibodySec: -1, totalSec: -1}
		for i := 0; i < 3; i++ {
			runtime.GC()
			run, err := experiments.RunDefense("squid", 8, 8, func(c *core.Config) { c.ParallelAnalysis = wantParallel })
			if err != nil {
				tb.Fatal(err)
			}
			if run.Report.Parallel != wantParallel {
				tb.Fatal("engine configuration was not honoured")
			}
			if v := run.Report.TimeToFinalAntibody.Seconds(); best.antibodySec < 0 || v < best.antibodySec {
				best.antibodySec = v
			}
			if v := run.Report.TotalAnalysisTime.Seconds(); best.totalSec < 0 || v < best.totalSec {
				best.totalSec = v
			}
		}
		return best
	}
	return bestOf(false), bestOf(true)
}

func BenchmarkTable3ParallelVsSequential(b *testing.B) {
	var seqAb, parAb, seqTot, parTot float64
	for i := 0; i < b.N; i++ {
		seq, par := engineComparisonOnce(b)
		seqAb += seq.antibodySec
		parAb += par.antibodySec
		seqTot += seq.totalSec
		parTot += par.totalSec
	}
	n := float64(b.N)
	b.ReportMetric(seqAb/n*1e3, "ms-to-antibody-sequential")
	b.ReportMetric(parAb/n*1e3, "ms-to-antibody-parallel")
	b.ReportMetric(seqTot/n*1e3, "ms-total-sequential")
	b.ReportMetric(parTot/n*1e3, "ms-total-parallel")
	if parAb > 0 {
		b.ReportMetric(seqAb/parAb, "antibody-speedup-x")
	}
}

// --- Table 3 variant: pooled vs fresh clone sandboxes ---

// pooledVsFreshOnce measures per-attack analysis-sandbox setup cost on the
// real Squid image: building a fresh Process.Clone (new Machine + page-map
// copy) versus resetting a pooled shell (proc.ClonePool). Each mode is timed
// best-of-3 over a batch of clones to shed collector noise.
func pooledVsFreshOnce(tb testing.TB) (freshNs, pooledNs float64) {
	spec, err := apps.ByName("squid")
	if err != nil {
		tb.Fatal(err)
	}
	proxy := netproxy.New()
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		tb.Fatal(err)
	}
	snap := p.Snapshot(1)
	for i := 0; i < 8; i++ {
		proxy.Submit(exploit.Benign("squid", i), "client", false)
	}
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		tb.Fatalf("squid did not quiesce: %v", stop.Reason)
	}

	const batch = 32
	bestOf := func(f func()) float64 {
		best := -1.0
		for r := 0; r < 3; r++ {
			runtime.GC()
			start := time.Now()
			f()
			if ns := float64(time.Since(start).Nanoseconds()) / batch; best < 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	freshNs = bestOf(func() {
		for i := 0; i < batch; i++ {
			if _, err := p.Clone(snap); err != nil {
				tb.Fatal(err)
			}
		}
	})
	pool := proc.NewClonePool(p)
	warm, err := pool.Get(snap)
	if err != nil {
		tb.Fatal(err)
	}
	pool.Put(warm)
	pooledNs = bestOf(func() {
		for i := 0; i < batch; i++ {
			c, err := pool.Get(snap)
			if err != nil {
				tb.Fatal(err)
			}
			pool.Put(c)
		}
	})
	return freshNs, pooledNs
}

func BenchmarkTable3PooledVsFreshClone(b *testing.B) {
	var freshNs, pooledNs float64
	for i := 0; i < b.N; i++ {
		f, p := pooledVsFreshOnce(b)
		freshNs += f
		pooledNs += p
	}
	n := float64(b.N)
	b.ReportMetric(freshNs/n/1e3, "us-per-fresh-clone")
	b.ReportMetric(pooledNs/n/1e3, "us-per-pooled-clone")
	if pooledNs > 0 {
		b.ReportMetric(freshNs/pooledNs, "pooled-speedup-x")
	}
}

// --- slicing fallback: control-dep fan-out prune ---

// sliceFallbackOnce measures the full-slice fallback path (neither membug
// nor taint configured, so nothing is implicated) on the real Squid exploit,
// with and without the control-dependence prune.
func sliceFallbackOnce(tb testing.TB) (pruned, forced *slicing.Result) {
	pruned, forced, err := experiments.SliceFallbackComparison()
	if err != nil {
		tb.Fatal(err)
	}
	return pruned, forced
}

// BenchmarkSliceFallbackPrune quantifies what pruning control-dependence
// fan-out saves on the fallback path: slice size with data deps only versus
// the control-dep slice that balloons toward the whole recorded execution.
func BenchmarkSliceFallbackPrune(b *testing.B) {
	var prunedNodes, forcedNodes, recorded float64
	for i := 0; i < b.N; i++ {
		pruned, forced := sliceFallbackOnce(b)
		prunedNodes += float64(pruned.Nodes)
		forcedNodes += float64(forced.Nodes)
		recorded += float64(pruned.Recorded)
	}
	n := float64(b.N)
	b.ReportMetric(prunedNodes/n, "fallback-slice-nodes-pruned")
	b.ReportMetric(forcedNodes/n, "fallback-slice-nodes-with-control-deps")
	b.ReportMetric(recorded/n, "recorded-dynamic-instructions")
	if prunedNodes > 0 {
		b.ReportMetric(forcedNodes/prunedNodes, "fallback-exploration-reduction-x")
	}
}

// --- Figure 4: checkpoint interval vs throughput overhead ---

func figure4Once(tb testing.TB, intervalMs uint64) float64 {
	requests := experiments.QuickSizes().Figure4Requests
	points, err := experiments.Figure4([]uint64{intervalMs}, requests)
	if err != nil {
		tb.Fatal(err)
	}
	return points[0].Overhead
}

func benchmarkCheckpointInterval(b *testing.B, intervalMs uint64) {
	b.Helper()
	var overhead float64
	for i := 0; i < b.N; i++ {
		overhead += figure4Once(b, intervalMs)
	}
	b.ReportMetric(overhead/float64(b.N)*100, "overhead-%")
}

func BenchmarkFigure4CheckpointInterval20ms(b *testing.B)  { benchmarkCheckpointInterval(b, 20) }
func BenchmarkFigure4CheckpointInterval50ms(b *testing.B)  { benchmarkCheckpointInterval(b, 50) }
func BenchmarkFigure4CheckpointInterval100ms(b *testing.B) { benchmarkCheckpointInterval(b, 100) }
func BenchmarkFigure4CheckpointInterval200ms(b *testing.B) { benchmarkCheckpointInterval(b, 200) }

// --- Figure 4 sweep: overhead vs checkpoint interval on all four apps ---

// figure4SweepApps and figure4SweepIntervals fix the sweep grid: every
// evaluation application at the paper's shortest, a middle and the default
// checkpoint interval.
var (
	figure4SweepApps      = []string{"apache1", "apache2", "cvs", "squid"}
	figure4SweepIntervals = []uint64{20, 100, 200}
)

func figure4SweepOnce(tb testing.TB) map[string][]experiments.Figure4Point {
	requests := experiments.QuickSizes().Figure4Requests
	out := make(map[string][]experiments.Figure4Point, len(figure4SweepApps))
	for _, app := range figure4SweepApps {
		points, err := experiments.Figure4ForApp(app, figure4SweepIntervals, requests)
		if err != nil {
			tb.Fatal(err)
		}
		out[app] = points
	}
	return out
}

// BenchmarkFigure4CheckpointIntervalSweep reproduces the paper's Figure 4
// trade-off live against every application image: virtual-throughput
// overhead against the no-checkpoint baseline, per checkpoint interval. The
// overheads are virtual-clock quantities (deterministic per configuration),
// so the reported metrics track the checkpoint hot path, not host noise.
func BenchmarkFigure4CheckpointIntervalSweep(b *testing.B) {
	acc := make(map[string][]float64)
	for i := 0; i < b.N; i++ {
		sweep := figure4SweepOnce(b)
		for app, points := range sweep {
			if acc[app] == nil {
				acc[app] = make([]float64, len(points))
			}
			for j, pt := range points {
				acc[app][j] += pt.Overhead
			}
		}
	}
	for _, app := range figure4SweepApps {
		for j, interval := range figure4SweepIntervals {
			b.ReportMetric(acc[app][j]/float64(b.N)*100, fmt.Sprintf("%s-overhead-%%-at-%dms", app, interval))
		}
	}
}

// --- Figure 4/5 against the live fleet: generator-driven interval sweep ---

// fleetSweepApps fixes the sweep grid: every evaluation application, two
// concurrent generator-driven guests each, at the paper's shortest, a middle
// and the default checkpoint interval.
var fleetSweepApps = []string{"apache1", "apache2", "cvs", "squid"}

func figure4FleetSweepOnce(tb testing.TB) []experiments.FleetSweepApp {
	sweep, err := experiments.RunFleetOverheadSweep(fleetSweepApps, experiments.QuickFleetWorkload(), figure4SweepIntervals)
	if err != nil {
		tb.Fatal(err)
	}
	return sweep
}

// BenchmarkFigure4FleetSweep reproduces the Figure 4 trade-off against the
// live fleet: per application image, two concurrently-serving guests driven
// by saturating open-loop workload generators, checkpoint interval swept
// against a checkpointing-disabled baseline fleet. Overheads are
// virtual-clock quantities, deterministic per configuration.
func BenchmarkFigure4FleetSweep(b *testing.B) {
	acc := make(map[string][]float64)
	for i := 0; i < b.N; i++ {
		for _, app := range figure4FleetSweepOnce(b) {
			if acc[app.App] == nil {
				acc[app.App] = make([]float64, len(app.Points))
			}
			for j, pt := range app.Points {
				acc[app.App][j] += pt.Overhead
			}
		}
	}
	for _, app := range fleetSweepApps {
		for j, interval := range figure4SweepIntervals {
			b.ReportMetric(acc[app][j]/float64(b.N)*100, fmt.Sprintf("%s-fleet-overhead-%%-at-%dms", app, interval))
		}
	}
}

func figure5FleetOnce(tb testing.TB) experiments.FleetSweepApp {
	sweep, err := experiments.RunFleetOverheadSweep([]string{"squid"}, experiments.Figure5FleetWorkload(), []uint64{200})
	if err != nil {
		tb.Fatal(err)
	}
	return sweep[0]
}

// BenchmarkFigure5FleetThroughput measures client-visible throughput on the
// live fleet while a worm injects exploits into one guest's request stream:
// offered versus completed req/s per guest across detection, analysis,
// antibody distribution and rollback recovery.
func BenchmarkFigure5FleetThroughput(b *testing.B) {
	var offered, completed, overhead float64
	var attacks int
	for i := 0; i < b.N; i++ {
		app := figure5FleetOnce(b)
		pt := app.Points[0]
		offered += pt.OfferedPerGuest
		completed += pt.ThroughputPerGuest
		overhead += pt.Overhead
		attacks += pt.AttacksHandled
	}
	n := float64(b.N)
	b.ReportMetric(offered/n, "offered-req-per-s-per-guest")
	b.ReportMetric(completed/n, "completed-req-per-s-per-guest")
	b.ReportMetric(overhead/n*100, "overhead-%-vs-no-checkpoint")
	b.ReportMetric(float64(attacks)/n, "attacks-handled")
}

// --- snapshot and bulk-I/O hot-path micro-benchmarks ---

func BenchmarkSnapshotSubPageVsPage(b *testing.B) {
	var scattered, sequential float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSubPageMicro()
		if err != nil {
			b.Fatal(err)
		}
		scattered += r.ScatteredReductionX
		sequential += r.SequentialReductionX
	}
	n := float64(b.N)
	b.ReportMetric(scattered/n, "scattered-captured-byte-reduction-x")
	b.ReportMetric(sequential/n, "sequential-captured-byte-reduction-x")
}

func BenchmarkSnapshotAlternatingWriter(b *testing.B) {
	var alternating float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSubPageMicro()
		if err != nil {
			b.Fatal(err)
		}
		alternating += r.AlternatingReductionX
	}
	b.ReportMetric(alternating/float64(b.N), "alternating-captured-byte-reduction-x")
}

func BenchmarkSnapshotDirtyVsFullScan(b *testing.B) {
	var full, steady, speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunHotPathMicro()
		if err != nil {
			b.Fatal(err)
		}
		full += r.FullSnapshotNs
		steady += r.SteadySnapshotNs
		speedup += r.SnapshotSpeedup
	}
	n := float64(b.N)
	b.ReportMetric(full/n, "ns-per-full-scan-snapshot")
	b.ReportMetric(steady/n, "ns-per-steady-snapshot")
	b.ReportMetric(speedup/n, "steady-snapshot-speedup-x")
}

func BenchmarkBulkGuestMemoryIO(b *testing.B) {
	var bulkR, byteR, bulkW, byteW, speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunHotPathMicro()
		if err != nil {
			b.Fatal(err)
		}
		bulkR += r.BulkReadNsPerByte
		byteR += r.ByteReadNsPerByte
		bulkW += r.BulkWriteNsPerByte
		byteW += r.ByteWriteNsPerByte
		speedup += r.BulkIOSpeedup
	}
	n := float64(b.N)
	b.ReportMetric(bulkR/n, "ns-per-byte-bulk-read")
	b.ReportMetric(byteR/n, "ns-per-byte-bytewise-read")
	b.ReportMetric(bulkW/n, "ns-per-byte-bulk-write")
	b.ReportMetric(byteW/n, "ns-per-byte-bytewise-write")
	b.ReportMetric(speedup/n, "bulk-io-speedup-x")
}

func BenchmarkInterpreterDispatch(b *testing.B) {
	var fast, slow, tooled, speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunDispatchMicro()
		if err != nil {
			b.Fatal(err)
		}
		fast += r.UntooledStepNs
		slow += r.UntooledSlowPathNs
		tooled += r.TooledStepNs
		speedup += r.DispatchSpeedup
	}
	n := float64(b.N)
	b.ReportMetric(fast/n, "ns-per-untooled-instr")
	b.ReportMetric(slow/n, "ns-per-untooled-instr-slowpath")
	b.ReportMetric(tooled/n, "ns-per-tooled-instr")
	b.ReportMetric(speedup/n, "untooled-dispatch-speedup-x")
}

// --- §5.3: vulnerability monitoring (VSEF) and baseline overheads ---

func vsefOverheadOnce(tb testing.TB) (vsefOverhead, taintOverhead float64) {
	requests := experiments.QuickSizes().OverheadRequests
	rows, err := experiments.MonitoringOverhead(requests)
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range rows {
		switch r.Key {
		case "vsef":
			vsefOverhead = r.Overhead
		case "taint_baseline":
			taintOverhead = r.Overhead
		}
	}
	return vsefOverhead, taintOverhead
}

func BenchmarkVSEFOverhead(b *testing.B) {
	var vsefOverhead, taintOverhead float64
	for i := 0; i < b.N; i++ {
		v, t := vsefOverheadOnce(b)
		vsefOverhead += v
		taintOverhead += t
	}
	b.ReportMetric(vsefOverhead/float64(b.N)*100, "vsef-overhead-%")
	b.ReportMetric(taintOverhead/float64(b.N)*100, "taint-baseline-overhead-%")
}

// --- Figure 5: throughput during an attack, Sweeper recovery vs restart ---

func figure5Once(tb testing.TB) (recoveryGap, restartGap float64) {
	sizes := experiments.QuickSizes()
	res, err := experiments.Figure5(sizes.Figure5Requests, sizes.Figure5AttackAt, sizes.Figure5BucketMs)
	if err != nil {
		tb.Fatal(err)
	}
	return float64(res.RecoveryGapMs), float64(res.RestartGapMs)
}

func BenchmarkFigure5Recovery(b *testing.B) {
	var recoveryGap, restartGap float64
	for i := 0; i < b.N; i++ {
		rec, res := figure5Once(b)
		recoveryGap += rec
		restartGap += res
	}
	b.ReportMetric(recoveryGap/float64(b.N), "recovery-gap-virtual-ms")
	b.ReportMetric(restartGap/float64(b.N), "restart-gap-virtual-ms")
}

// --- Figures 6-8: community defence model sweeps ---

func communityFigureOnce(beta, rho float64, alphas []float64, reportAlpha, reportGamma float64) float64 {
	var ratio float64
	for _, gamma := range epidemic.StandardGammas() {
		for _, alpha := range alphas {
			r := epidemic.InfectionRatio(beta, 100000, alpha, gamma, rho)
			if alpha == reportAlpha && gamma == reportGamma {
				ratio = r
			}
		}
	}
	return ratio
}

func benchmarkCommunityFigure(b *testing.B, beta, rho float64, alphas []float64, reportAlpha, reportGamma float64) {
	b.Helper()
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = communityFigureOnce(beta, rho, alphas, reportAlpha, reportGamma)
	}
	b.ReportMetric(ratio*100, "infection-%-at-reference-point")
}

func BenchmarkFigure6EpidemicSlammer(b *testing.B) {
	benchmarkCommunityFigure(b, 0.1, 1.0, epidemic.Figure6Alphas(), 0.0001, 5)
}

func BenchmarkFigure7EpidemicHitlist1000(b *testing.B) {
	benchmarkCommunityFigure(b, 1000, epidemic.DefaultRho, epidemic.Figure78Alphas(), 0.0001, 10)
}

func BenchmarkFigure8EpidemicHitlist4000(b *testing.B) {
	benchmarkCommunityFigure(b, 4000, epidemic.DefaultRho, epidemic.Figure78Alphas(), 0.0001, 10)
}

// --- Figures 6-8 live: the epidemic measured on a real daemon community ---

// epidemicLiveOnce runs one worm outbreak against 100 real in-process
// daemons — 5 producers with the full analysis pipeline, 95 consumers
// receiving antibodies over the in-process federation hub — and checks the
// community-defence invariants hold at production scale.
func epidemicLiveOnce(tb testing.TB) *experiments.EpidemicPointResult {
	res, err := experiments.RunEpidemicPoint(experiments.EpidemicPointConfig{
		Community:  100,
		Alpha:      0.05,
		GammaTicks: 8,
		Seed:       7,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if !res.Converged {
		tb.Fatalf("stores did not converge on %d antibodies", res.AntibodiesTotal)
	}
	if res.Immune != res.Protected {
		tb.Fatalf("only %d of %d daemons immune after the community response", res.Immune, res.Protected)
	}
	if res.FinalInfected >= res.N {
		tb.Fatalf("the whole community was infected despite the response")
	}
	if res.SharedPageFraction < 0.75 {
		tb.Fatalf("shared base pages %.3f of resident pages, want >= 0.75", res.SharedPageFraction)
	}
	return res
}

// BenchmarkEpidemicLiveCommunity is the live counterpart of the Figure 6
// model sweeps: the infection outcome of a real 100-daemon community per
// outbreak, plus the shared base-image fraction that keeps a community that
// size resident in one process.
func BenchmarkEpidemicLiveCommunity(b *testing.B) {
	var infected, shared, t0 float64
	for i := 0; i < b.N; i++ {
		r := epidemicLiveOnce(b)
		infected += r.InfectionRatio
		shared += r.SharedPageFraction
		t0 += float64(r.T0)
	}
	n := float64(b.N)
	b.ReportMetric(infected/n*100, "live-infection-%")
	b.ReportMetric(t0/n, "t0-ticks")
	b.ReportMetric(shared/n, "shared-base-page-fraction")
}

// --- Ablations and cross-checks ---

func proactiveAblationOnce() (with, without float64) {
	rows := experiments.ProactiveAblation(1000)
	for _, r := range rows {
		if r.Alpha == 0.001 && r.Gamma == 10 {
			with, without = r.WithProactive, r.WithoutProactive
		}
	}
	return with, without
}

func BenchmarkAblationProactiveProtection(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with, without = proactiveAblationOnce()
	}
	b.ReportMetric(with*100, "with-proactive-infection-%")
	b.ReportMetric(without*100, "without-proactive-infection-%")
}

func agentCrossCheckOnce(tb testing.TB, seed int64) {
	_, _, err := epidemic.SimulateAgentsMean(epidemic.AgentParams{
		N: 20000, Alpha: 0.001, Beta: 1000, Gamma: 10, Rho: epidemic.DefaultRho, Seed: seed,
	}, 1)
	if err != nil {
		tb.Fatal(err)
	}
}

func BenchmarkAgentBasedCrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agentCrossCheckOnce(b, int64(i+1))
	}
}
