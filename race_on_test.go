//go:build race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector. Perf smoke assertions that compare two timed code paths scale
// their bars down under instrumentation: the detector multiplies the cost of
// every memory access, which compresses ratios between paths whose work is
// dominated by short instrumented loops.
const raceEnabled = true
