module sweeper

go 1.22
