package monitor_test

import (
	"testing"

	"sweeper/internal/apps"
	"sweeper/internal/exploit"
	"sweeper/internal/monitor"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

func TestRandomizedLayoutIsValidAndDistinct(t *testing.T) {
	def := vm.DefaultLayout()
	seen := map[uint32]bool{}
	for seed := int64(1); seed <= 20; seed++ {
		l := monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: seed})
		if err := l.Validate(); err != nil {
			t.Fatalf("seed %d produced an invalid layout: %v", seed, err)
		}
		if l.CodeBase == def.CodeBase || l.DataBase == def.DataBase ||
			l.HeapBase == def.HeapBase || l.StackBase == def.StackBase {
			t.Errorf("seed %d left a segment at its default base", seed)
		}
		seen[l.CodeBase] = true
	}
	if len(seen) < 15 {
		t.Errorf("only %d distinct code bases over 20 seeds; entropy too low", len(seen))
	}
}

func TestRandomizedLayoutDeterministicPerSeed(t *testing.T) {
	a := monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: 5})
	b := monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: 5})
	if a != b {
		t.Error("same seed must produce the same layout")
	}
	c := monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: 6})
	if a == c {
		t.Error("different seeds should produce different layouts")
	}
}

func TestClassify(t *testing.T) {
	fault := &vm.StopInfo{Reason: vm.StopFault, Fault: &vm.Fault{Kind: vm.FaultPage, Detail: "x"}}
	if d := monitor.Classify(fault); !d.Suspicious || d.Source != monitor.SourceFault || d.Fault == nil {
		t.Errorf("fault classification = %+v", d)
	}
	viol := &vm.StopInfo{Reason: vm.StopViolation, Violation: &vm.Violation{Kind: vm.ViolationDoubleFree}}
	if d := monitor.Classify(viol); !d.Suspicious || d.Source != monitor.SourceViolation {
		t.Errorf("violation classification = %+v", d)
	}
	for _, r := range []vm.StopReason{vm.StopHalt, vm.StopWaitInput, vm.StopInstrBudget} {
		if d := monitor.Classify(&vm.StopInfo{Reason: r}); d.Suspicious {
			t.Errorf("%v should not be suspicious", r)
		}
	}
}

func TestShadowStackDetectsApache1Smash(t *testing.T) {
	spec, err := apps.ByName("apache1")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := exploit.Apache1ExploitDefault(spec.Image)
	if err != nil {
		t.Fatal(err)
	}
	proxy := netproxy.New()
	proxy.Submit([]byte("GET /ok.html HTTP/1.0\r\n\r\n"), "client", false)
	proxy.Submit(payload, "worm", true)
	// Default layout: without the shadow stack this exploit hijacks control.
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	ss := monitor.NewShadowStack()
	p.Machine.AttachTool(ss)
	stop := p.Run(0)
	if stop.Reason != vm.StopViolation {
		t.Fatalf("stop = %v, want violation", stop.Reason)
	}
	if stop.Violation.Kind != vm.ViolationReturnAddress {
		t.Errorf("violation = %v", stop.Violation)
	}
	if ss.Smashes != 1 {
		t.Errorf("smashes = %d", ss.Smashes)
	}
}

func TestShadowStackQuietOnBenignTraffic(t *testing.T) {
	spec, err := apps.ByName("apache1")
	if err != nil {
		t.Fatal(err)
	}
	proxy := netproxy.New()
	for i := 0; i < 5; i++ {
		proxy.Submit(exploit.Apache1Benign(i), "client", false)
	}
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	ss := monitor.NewShadowStack()
	p.Machine.AttachTool(ss)
	stop := p.Run(0)
	if stop.Reason != vm.StopWaitInput {
		t.Fatalf("benign traffic under shadow stack stopped with %v", stop.Reason)
	}
	if ss.Smashes != 0 {
		t.Errorf("false positives: %d", ss.Smashes)
	}
	if ss.Depth() > 2 {
		t.Errorf("shadow stack did not unwind: depth %d", ss.Depth())
	}
}
