// Package monitor implements Sweeper's lightweight always-on monitoring:
// address-space randomisation (the default, near-zero-overhead detector),
// fault classification into detection events, and an optional shadow-stack
// monitor used in ablation experiments.
package monitor

import (
	"math/rand"

	"sweeper/internal/vm"
)

// RandomizeOptions controls address-space randomisation.
type RandomizeOptions struct {
	// Entropy is the number of random bits applied to each segment base
	// (in page-sized steps). The paper's Section 6 uses a success probability
	// of 2^-12 for typical randomisations; 12 bits of page-granular entropy
	// matches it.
	Entropy uint
	// Seed drives the layout choice; a zero seed picks an arbitrary one.
	Seed int64
}

// DefaultEntropy corresponds to the 2^-12 bypass probability used in the
// paper's community-defence model.
const DefaultEntropy = 12

// RandomizedLayout returns an address-space layout whose code, data, heap and
// stack bases are displaced by independent random page-aligned offsets.
// Exploits carrying absolute addresses computed against vm.DefaultLayout()
// then hit unmapped memory or non-code addresses with probability about
// 1 - 2^-Entropy, turning infection attempts into detectable faults.
func RandomizedLayout(opts RandomizeOptions) vm.Layout {
	if opts.Entropy == 0 {
		opts.Entropy = DefaultEntropy
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x5eed5eed
	}
	rng := rand.New(rand.NewSource(seed))
	slots := int64(1) << opts.Entropy

	l := vm.DefaultLayout()
	shift := func() uint32 {
		// Never return 0 so a randomised layout is always distinct from the
		// default one (offset in [1, slots-1] pages).
		return uint32(1+rng.Int63n(slots-1)) * vm.PageSize
	}
	l.CodeBase += shift()
	l.DataBase += shift()
	l.HeapBase += shift()
	// Keep the heap below the stack; displace the stack downwards.
	l.StackBase -= shift()
	return l
}

// DetectionSource says which lightweight mechanism flagged the request.
type DetectionSource uint8

// Detection sources.
const (
	SourceNone      DetectionSource = iota
	SourceFault                     // hardware fault (ASLR-induced segfault, heap corruption, ...)
	SourceViolation                 // an attached monitor/VSEF raised a violation
)

// Detection is the lightweight monitor's verdict on a stopped execution.
type Detection struct {
	Suspicious bool
	Source     DetectionSource
	Reason     string
	Fault      *vm.Fault
	Violation  *vm.Violation
}

// Classify inspects why the protected process stopped and decides whether the
// stop is a suspected attack. Faults and violations are suspicious; normal
// halts, input waits and budget stops are not.
func Classify(stop *vm.StopInfo) Detection {
	switch stop.Reason {
	case vm.StopFault:
		return Detection{
			Suspicious: true,
			Source:     SourceFault,
			Reason:     stop.Fault.Error(),
			Fault:      stop.Fault,
		}
	case vm.StopViolation:
		return Detection{
			Suspicious: true,
			Source:     SourceViolation,
			Reason:     stop.Violation.Error(),
			Violation:  stop.Violation,
		}
	default:
		return Detection{Suspicious: false}
	}
}

// ShadowStack is an optional lightweight monitor that keeps a host-side copy
// of every pushed return address and raises a violation when a return pops a
// different value (the "separate return-address stack" the paper describes as
// an alternative to stack canaries). It only hooks calls and returns, so its
// overhead is proportional to call density, not instruction count.
type ShadowStack struct {
	entries []shadowEntry
	// Smashes counts detected mismatches (for tests and reports).
	Smashes int
}

type shadowEntry struct {
	slot uint32
	addr uint32
}

// NewShadowStack returns an empty shadow-stack monitor.
func NewShadowStack() *ShadowStack { return &ShadowStack{} }

// Name implements vm.Tool.
func (s *ShadowStack) Name() string { return "monitor.shadow-stack" }

// OnCall implements vm.CallHook.
func (s *ShadowStack) OnCall(m *vm.Machine, idx, targetIdx int, retAddr, retSlot uint32) {
	s.entries = append(s.entries, shadowEntry{slot: retSlot, addr: retAddr})
}

// OnRet implements vm.CallHook.
func (s *ShadowStack) OnRet(m *vm.Machine, idx int, retAddr, retSlot uint32) {
	// Pop entries belonging to frames already unwound (longjmp-like flows).
	for len(s.entries) > 0 && s.entries[len(s.entries)-1].slot < retSlot {
		s.entries = s.entries[:len(s.entries)-1]
	}
	if len(s.entries) == 0 {
		return
	}
	top := s.entries[len(s.entries)-1]
	if top.slot != retSlot {
		return
	}
	s.entries = s.entries[:len(s.entries)-1]
	if top.addr != retAddr {
		s.Smashes++
		m.RaiseViolation(&vm.Violation{
			Kind:   vm.ViolationReturnAddress,
			Tool:   s.Name(),
			Addr:   retSlot,
			Detail: "return address does not match shadow stack",
		})
	}
}

// Depth returns the current shadow-stack depth (exported for tests).
func (s *ShadowStack) Depth() int { return len(s.entries) }

// OnRollback implements vm.RollbackHook: entries pushed by the abandoned
// execution describe frames that no longer exist after the process rolls
// back to a checkpoint; the replay re-pushes frames as it re-enters them.
func (s *ShadowStack) OnRollback(m *vm.Machine) { s.entries = s.entries[:0] }
