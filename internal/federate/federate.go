// Package federate peers antibody stores across sweeperd daemons over
// HTTP+JSON, turning the single-process fleet into the paper's community of
// untrusting hosts (Section 6). Each daemon runs a Server that exposes its
// store to peers and a Node that gossips with them: freshly published
// antibodies are pushed to every peer, a poll loop pulls what pushes missed,
// and a joining node's first pull replays the peer's full store. Stores
// deduplicate by antibody ID, so gossip loops terminate after one bounce.
//
// Federation moves antibodies between daemons but deliberately does not vouch
// for them: a receiving daemon's guests re-verify each antibody by replaying
// its attached exploit input in a sandbox before adoption (see
// core.Config.VerifyAdoption), exactly because peers are untrusted.
package federate

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sweeper/internal/antibody"
	"sweeper/internal/metrics"
)

// Config controls a federation node.
type Config struct {
	// Name identifies this daemon in push envelopes (diagnostics only).
	Name string
	// PollInterval is how often each peer is polled for antibodies that a
	// push did not deliver (default 25ms).
	PollInterval time.Duration
	// RequestTimeout bounds every HTTP call to a peer (default 5s).
	RequestTimeout time.Duration
	// AuthToken, when set, is attached to every push and poll this node
	// sends (HTTP peers carry it in the X-Sweeper-Token header). Servers
	// configured with a token reject requests that do not present it.
	AuthToken string
	// MaxPushFanout, when positive, bounds how many peers each push batch
	// is delivered to: batches go to a rotating window of MaxPushFanout
	// peers, and the remaining peers' poll loops recover the antibodies.
	// Zero pushes to every peer (the small-community default).
	MaxPushFanout int
	// MaxPollBackoff caps the exponential backoff a poll loop applies to an
	// unreachable peer. Each consecutive failure doubles the poll delay from
	// PollInterval up to this cap (with ±25% jitter so a community of
	// daemons does not hammer a recovering peer in lockstep); the first
	// successful poll snaps back to PollInterval. Default: the smaller of
	// 64×PollInterval and 2s.
	MaxPollBackoff time.Duration
}

func (c *Config) defaults() {
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxPollBackoff <= 0 {
		c.MaxPollBackoff = 64 * c.PollInterval
		if c.MaxPollBackoff > 2*time.Second {
			c.MaxPollBackoff = 2 * time.Second
		}
	}
}

// Node connects a local antibody store to a set of peers. It subscribes to
// the store (so locally generated antibodies — and antibodies imported from
// one peer — are pushed to all the others) and runs one poll loop per peer as
// the reliable catch-up path.
type Node struct {
	cfg   Config
	store *antibody.Store
	rec   *metrics.FederationRecorder

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*antibody.Antibody
	peers    []Transport
	fromPeer map[string]Transport // antibody ID -> peer it arrived from
	fanout   int                  // rotating fan-out window cursor
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewNode returns a node gossiping the given store. The store subscription is
// taken immediately, so antibodies already stored are offered to every peer
// added later.
func NewNode(store *antibody.Store, rec *metrics.FederationRecorder, cfg Config) *Node {
	cfg.defaults()
	n := &Node{
		cfg:      cfg,
		store:    store,
		rec:      rec,
		fromPeer: make(map[string]Transport),
		done:     make(chan struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	store.Subscribe(n.enqueue)
	n.wg.Add(1)
	go n.pushLoop()
	return n
}

// Store returns the node's local store.
func (n *Node) Store() *antibody.Store { return n.store }

// AddPeer connects to the HTTP peer at addr ("host:port" or a full URL),
// carrying the node's auth token if one is configured.
func (n *Node) AddPeer(addr string) error {
	return n.AddTransport(NewPeer(addr, n.cfg.RequestTimeout).WithAuthToken(n.cfg.AuthToken))
}

// AddTransport connects to a peer over any Transport (an HTTP Peer or an
// in-process hub endpoint). The first pull — the full-store replay a joining
// daemon performs — happens synchronously so the caller learns immediately
// whether the peer is reachable; the poll loop then keeps the stores
// converged.
func (n *Node) AddTransport(t Transport) error {
	page, err := t.Pull(0)
	if err != nil {
		return fmt.Errorf("federate: joining peer %s: %w", t.URL(), err)
	}
	n.importFrom(t, page.Antibodies)
	n.mu.Lock()
	n.peers = append(n.peers, t)
	peerCount := len(n.peers)
	n.mu.Unlock()
	n.rec.Update(func(s *metrics.FederationStats) { s.Peers = peerCount })
	n.wg.Add(1)
	go n.pollLoop(t, page.Next, false)
	return nil
}

// AddTransportLazy connects to a peer that may not be reachable yet: a
// daemon that crashed and has not restarted, or one that simply boots later.
// Unlike AddTransport it never fails — an unreachable peer is recorded as
// down (FederationStats.PeerDown) and its poll loop keeps retrying with
// capped exponential backoff from cursor 0, so the full-store replay happens
// at the first successful poll after the peer appears.
func (n *Node) AddTransportLazy(t Transport) {
	cursor := 0
	down := false
	if page, err := t.Pull(0); err == nil {
		n.importFrom(t, page.Antibodies)
		cursor = page.Next
	} else {
		down = true
	}
	n.mu.Lock()
	n.peers = append(n.peers, t)
	peerCount := len(n.peers)
	n.mu.Unlock()
	n.rec.Update(func(s *metrics.FederationStats) {
		s.Peers = peerCount
		if down {
			s.PeerDown++
		}
	})
	n.wg.Add(1)
	go n.pollLoop(t, cursor, down)
}

// Peers returns the URLs of the connected peers.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	urls := make([]string, len(n.peers))
	for i, p := range n.peers {
		urls[i] = p.URL()
	}
	return urls
}

// Close stops the push and poll loops after flushing queued pushes.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	n.cond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
}

// enqueue is the store-subscription callback: every antibody entering the
// local store (generated locally or imported from a peer) is queued for push.
func (n *Node) enqueue(a *antibody.Antibody) {
	n.mu.Lock()
	if !n.closed {
		n.queue = append(n.queue, a)
		n.cond.Broadcast()
	}
	n.mu.Unlock()
}

// importFrom publishes antibodies received from a peer into the local store.
// Duplicates are dropped by the store (no subscriber fires, so nothing is
// re-pushed: this ends the gossip loop); fresh ones are tagged with their
// source peer so the push loop does not echo them straight back.
func (n *Node) importFrom(p Transport, abs []*antibody.Antibody) {
	for _, a := range abs {
		if a == nil || a.ID == "" {
			continue
		}
		n.mu.Lock()
		n.fromPeer[a.ID] = p
		n.mu.Unlock()
		if n.store.Publish(a) {
			n.rec.Update(func(s *metrics.FederationStats) { s.Received++ })
		} else {
			// Duplicate: no subscriber fired, so the push loop will never
			// consume (or clear) the source tag — drop it here.
			n.mu.Lock()
			delete(n.fromPeer, a.ID)
			n.mu.Unlock()
			n.rec.Update(func(s *metrics.FederationStats) { s.Duplicates++ })
		}
	}
}

// pushLoop drains the publish queue, pushing each batch to every peer in the
// fan-out window except an antibody's own source. Push failures are only
// counted: the receiving side's poll loop recovers anything a push missed.
// Source tags are consumed with the batch — an ID is pushed at most once
// (store dedup prevents re-notification), so keeping tags longer would only
// leak memory.
func (n *Node) pushLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		for !n.closed && len(n.queue) == 0 {
			n.cond.Wait()
		}
		if len(n.queue) == 0 && n.closed {
			n.mu.Unlock()
			return
		}
		batch := n.queue
		n.queue = nil
		peers := n.fanoutWindow()
		sources := make(map[string]Transport, len(batch))
		for _, a := range batch {
			if p, ok := n.fromPeer[a.ID]; ok {
				sources[a.ID] = p
				delete(n.fromPeer, a.ID)
			}
		}
		n.mu.Unlock()

		for _, p := range peers {
			var outgoing []*antibody.Antibody
			for _, a := range batch {
				if sources[a.ID] != p {
					outgoing = append(outgoing, a)
				}
			}
			if len(outgoing) == 0 {
				continue
			}
			if _, err := p.Push(n.cfg.Name, outgoing); err != nil {
				n.rec.Update(func(s *metrics.FederationStats) { s.PushErrors++ })
			} else {
				n.rec.Update(func(s *metrics.FederationStats) { s.Pushed += len(outgoing) })
			}
		}
	}
}

// fanoutWindow returns the peers the next push batch goes to: all of them,
// or — when MaxPushFanout bounds the gossip — a rotating window of that many
// peers, advanced per batch so every peer is pushed to eventually. Caller
// holds n.mu.
func (n *Node) fanoutWindow() []Transport {
	k := n.cfg.MaxPushFanout
	if k <= 0 || len(n.peers) <= k {
		return append([]Transport(nil), n.peers...)
	}
	window := make([]Transport, 0, k)
	for i := 0; i < k; i++ {
		window = append(window, n.peers[(n.fanout+i)%len(n.peers)])
	}
	n.fanout = (n.fanout + k) % len(n.peers)
	return window
}

// pollLoop periodically pulls the peer's store from the given cursor onward.
// A healthy peer is polled every PollInterval; consecutive failures double
// the delay up to MaxPollBackoff with ±25% jitter (so a whole community does
// not retry a recovering peer in lockstep), and the up/down transitions are
// counted as PeerDown/PeerRecovered. down says whether the peer was already
// unreachable when the loop started (the AddTransportLazy path).
func (n *Node) pollLoop(p Transport, cursor int, down bool) {
	defer n.wg.Done()
	delay := n.cfg.PollInterval
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-timer.C:
		}
		page, err := p.Pull(cursor)
		if err != nil {
			if !down {
				down = true
				n.rec.Update(func(s *metrics.FederationStats) { s.PeerDown++ })
			}
			delay *= 2
			if delay > n.cfg.MaxPollBackoff {
				delay = n.cfg.MaxPollBackoff
			}
		} else {
			if down {
				down = false
				n.rec.Update(func(s *metrics.FederationStats) { s.PeerRecovered++ })
			}
			delay = n.cfg.PollInterval
			cursor = page.Next
			n.importFrom(p, page.Antibodies)
			n.rec.Update(func(s *metrics.FederationStats) { s.Polls++ })
		}
		// ±25% jitter around the chosen delay (the global rand source is
		// concurrency-safe and randomly seeded).
		d := delay + time.Duration(rand.Int63n(int64(delay)/2+1)) - delay/4
		timer.Reset(d)
	}
}
