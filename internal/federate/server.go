package federate

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"sweeper/internal/antibody"
	"sweeper/internal/metrics"
)

// Server exposes an antibody store to federation peers. Mount it on any
// listener; sweeperd serves it on the -listen address. Everything a peer
// pushes lands in the store unverified — verification happens on the adopting
// guests, not at the network boundary — but structurally invalid antibodies
// (no ID, no program) are refused outright.
type Server struct {
	store *antibody.Store
	rec   *metrics.FederationRecorder
	mux   *http.ServeMux
	token string
}

// NewServer returns a peer-facing HTTP handler around the store.
func NewServer(store *antibody.Store, rec *metrics.FederationRecorder) *Server {
	s := &Server{store: store, rec: rec, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/antibodies", s.handleAntibodies)
	s.mux.HandleFunc("/v1/health", s.handleHealth)
	return s
}

// SetAuthToken requires every push and poll to present the shared-secret
// token (in the X-Sweeper-Token header); requests without it are rejected
// and counted. Call before serving; an empty token disables the check.
func (s *Server) SetAuthToken(token string) { s.token = token }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleAntibodies(w http.ResponseWriter, r *http.Request) {
	if s.token != "" && r.Header.Get(AuthHeader) != s.token {
		s.rec.Update(func(st *metrics.FederationStats) { st.Rejected++ })
		http.Error(w, "bad or missing auth token", http.StatusUnauthorized)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handlePull(w, r)
	case http.MethodPost:
		s.handlePush(w, r)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// handlePull serves the store from the requested publication cursor onward
// (cursor 0, the default, replays the full store to a joining peer).
func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	cursor := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad since cursor %q", raw), http.StatusBadRequest)
			return
		}
		cursor = n
	}
	abs, next := s.store.Since(cursor)
	writeJSON(w, &antibody.PullPage{Next: next, Antibodies: abs})
}

// handlePush absorbs a peer's publish push into the store, dropping
// already-known IDs (the dedup that terminates gossip loops).
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	env, err := antibody.DecodePush(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, a := range env.Antibodies {
		if a == nil || a.ID == "" || a.Program == "" {
			s.rec.Update(func(st *metrics.FederationStats) { st.Rejected++ })
			http.Error(w, "antibody without id or program", http.StatusBadRequest)
			return
		}
	}
	accepted := 0
	for _, a := range env.Antibodies {
		if s.store.Publish(a) {
			accepted++
			s.rec.Update(func(st *metrics.FederationStats) { st.Received++ })
		} else {
			s.rec.Update(func(st *metrics.FederationStats) { st.Duplicates++ })
		}
	}
	writeJSON(w, &antibody.PushResult{Accepted: accepted})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "antibodies": s.store.Len()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
