package federate

import (
	"fmt"
	"sync"

	"sweeper/internal/antibody"
	"sweeper/internal/metrics"
)

// Hub is an in-process federation fabric: a registry of named endpoints,
// each the channel-backed equivalent of one daemon's HTTP Server. Dialing an
// endpoint yields a Transport with the HTTP peer's exact semantics — push
// with per-antibody accept counts, cursor-paged pulls, structural
// validation, auth-token rejection — so one process can host hundreds of
// sweeperd-equivalent daemons without sockets. Antibodies cross the hub by
// reference; they are immutable once published, as everywhere else.
type Hub struct {
	mu  sync.Mutex
	eps map[string]*Endpoint
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{eps: make(map[string]*Endpoint)}
}

// Register creates and serves the named endpoint around the store. The
// token, when non-empty, must be presented by every dialer (mirroring
// Server.SetAuthToken). Registering a taken name fails.
func (h *Hub) Register(name string, store *antibody.Store, rec *metrics.FederationRecorder, token string) (*Endpoint, error) {
	if name == "" {
		return nil, fmt.Errorf("federate: inproc endpoint needs a name")
	}
	ep := &Endpoint{
		name:  name,
		store: store,
		rec:   rec,
		token: token,
		reqs:  make(chan inprocReq),
		done:  make(chan struct{}),
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, taken := h.eps[name]; taken {
		return nil, fmt.Errorf("federate: inproc endpoint %q already registered", name)
	}
	h.eps[name] = ep
	go ep.serve()
	return ep, nil
}

// Unregister removes and closes the named endpoint, as a crashing daemon
// would tear down its HTTP server. The name becomes free for a restarted
// daemon to re-register; peers holding Transports to it fail their calls
// (connection refused) until then, after which the same Transport reaches
// the new endpoint — transports bind to the name, not the instance.
func (h *Hub) Unregister(name string) {
	h.mu.Lock()
	ep := h.eps[name]
	delete(h.eps, name)
	h.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}

// Dial returns a Transport to the named endpoint, presenting the given
// token. The name must currently be registered; a bad token fails at the
// first push or pull, like HTTP. The returned transport resolves the name
// on every call, so it survives the endpoint being unregistered and
// re-registered (a daemon restart).
func (h *Hub) Dial(name, token string) (Transport, error) {
	h.mu.Lock()
	_, ok := h.eps[name]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("federate: inproc endpoint %q not registered", name)
	}
	return &inprocPeer{hub: h, name: name, token: token}, nil
}

// Transport returns a Transport bound to the name whether or not the
// endpoint is registered yet — the in-process analogue of an HTTP peer URL
// whose server has not started. Calls fail until the name is registered;
// pair it with Node.AddTransportLazy for peers that boot (or come back)
// late.
func (h *Hub) Transport(name, token string) Transport {
	return &inprocPeer{hub: h, name: name, token: token}
}

// lookup resolves the current endpoint for a name, or nil.
func (h *Hub) lookup(name string) *Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.eps[name]
}

// Close shuts down every endpoint.
func (h *Hub) Close() {
	h.mu.Lock()
	eps := make([]*Endpoint, 0, len(h.eps))
	for _, ep := range h.eps {
		eps = append(eps, ep)
	}
	h.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// Endpoint is one daemon's in-process federation server: a dispatcher
// goroutine consuming push/pull requests off a channel, so request handling
// is serialised exactly like an HTTP handler invocation and the store/metrics
// interaction stays identical to Server's.
type Endpoint struct {
	name  string
	store *antibody.Store
	rec   *metrics.FederationRecorder
	token string

	reqs      chan inprocReq
	done      chan struct{}
	closeOnce sync.Once
}

// inprocReq is one request crossing the hub: a push (env != nil) or a pull
// (pullSince). The reply channel is buffered so the dispatcher never blocks
// on a caller that gave up.
type inprocReq struct {
	token     string
	env       *antibody.PushEnvelope
	pullSince int
	reply     chan inprocResp
}

type inprocResp struct {
	accepted int
	page     *antibody.PullPage
	err      error
}

// Name returns the endpoint's hub name.
func (ep *Endpoint) Name() string { return ep.name }

// Close stops the dispatcher; in-flight and future requests fail like a
// connection refused, which the poll loops absorb.
func (ep *Endpoint) Close() {
	ep.closeOnce.Do(func() { close(ep.done) })
}

// serve is the dispatcher loop.
func (ep *Endpoint) serve() {
	for {
		select {
		case <-ep.done:
			return
		case req := <-ep.reqs:
			req.reply <- ep.handle(req)
		}
	}
}

// handle services one request with Server's semantics.
func (ep *Endpoint) handle(req inprocReq) inprocResp {
	if ep.token != "" && req.token != ep.token {
		ep.rec.Update(func(st *metrics.FederationStats) { st.Rejected++ })
		return inprocResp{err: fmt.Errorf("federate: inproc %s: bad or missing auth token", ep.name)}
	}
	if req.env == nil {
		abs, next := ep.store.Since(req.pullSince)
		return inprocResp{page: &antibody.PullPage{Next: next, Antibodies: abs}}
	}
	for _, a := range req.env.Antibodies {
		if a == nil || a.ID == "" || a.Program == "" {
			ep.rec.Update(func(st *metrics.FederationStats) { st.Rejected++ })
			return inprocResp{err: fmt.Errorf("federate: inproc %s: antibody without id or program", ep.name)}
		}
	}
	accepted := 0
	for _, a := range req.env.Antibodies {
		if ep.store.Publish(a) {
			accepted++
			ep.rec.Update(func(st *metrics.FederationStats) { st.Received++ })
		} else {
			ep.rec.Update(func(st *metrics.FederationStats) { st.Duplicates++ })
		}
	}
	return inprocResp{accepted: accepted}
}

// call sends one request to the endpoint's dispatcher and waits for the
// reply, failing if the endpoint closed.
func (ep *Endpoint) call(req inprocReq) (inprocResp, error) {
	req.reply = make(chan inprocResp, 1)
	select {
	case ep.reqs <- req:
	case <-ep.done:
		return inprocResp{}, fmt.Errorf("federate: inproc %s: endpoint closed", ep.name)
	}
	select {
	case resp := <-req.reply:
		return resp, nil
	case <-ep.done:
		return inprocResp{}, fmt.Errorf("federate: inproc %s: endpoint closed", ep.name)
	}
}

// inprocPeer is the dialer side: a Transport that resolves its hub name to
// the current Endpoint on every call, so a re-registered endpoint (daemon
// restart) is reachable through transports dialed before the crash.
type inprocPeer struct {
	hub   *Hub
	name  string
	token string
}

// URL identifies the peer as inproc://name.
func (p *inprocPeer) URL() string { return "inproc://" + p.name }

// call resolves the name and forwards the request; an unregistered name
// fails like a refused connection.
func (p *inprocPeer) call(req inprocReq) (inprocResp, error) {
	ep := p.hub.lookup(p.name)
	if ep == nil {
		return inprocResp{}, fmt.Errorf("federate: inproc %s: endpoint not registered", p.name)
	}
	return ep.call(req)
}

// Push delivers antibodies to the endpoint's store and returns how many it
// had not seen before.
func (p *inprocPeer) Push(from string, abs []*antibody.Antibody) (int, error) {
	resp, err := p.call(inprocReq{
		token: p.token,
		env:   &antibody.PushEnvelope{From: from, Antibodies: abs},
	})
	if err != nil {
		return 0, err
	}
	return resp.accepted, resp.err
}

// Pull fetches the endpoint's store from the cursor onward; Pull(0) replays
// the full store.
func (p *inprocPeer) Pull(cursor int) (*antibody.PullPage, error) {
	resp, err := p.call(inprocReq{token: p.token, pullSince: cursor})
	if err != nil {
		return nil, err
	}
	if resp.err != nil {
		return nil, resp.err
	}
	return resp.page, nil
}
