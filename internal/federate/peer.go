package federate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sweeper/internal/antibody"
)

// maxBodyBytes bounds how much of a peer's response (or request, on the
// server side) is read; antibodies are small, so anything bigger is abuse.
const maxBodyBytes = 32 << 20

// AuthHeader is the HTTP header carrying the federation shared-secret token
// (see Config.AuthToken).
const AuthHeader = "X-Sweeper-Token"

// Peer is an HTTP client for one remote federation server.
type Peer struct {
	base   string
	token  string
	client *http.Client
}

// NewPeer returns a client for the peer at addr. A bare "host:port" is
// promoted to an http:// URL.
func NewPeer(addr string, timeout time.Duration) *Peer {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Peer{
		base:   strings.TrimRight(addr, "/"),
		client: &http.Client{Timeout: timeout},
	}
}

// WithAuthToken sets the shared-secret token attached to every request and
// returns the peer for chaining. An empty token sends no header.
func (p *Peer) WithAuthToken(token string) *Peer {
	p.token = token
	return p
}

// URL returns the peer's base URL.
func (p *Peer) URL() string { return p.base }

// do issues one request with the auth token attached.
func (p *Peer) do(method, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if p.token != "" {
		req.Header.Set(AuthHeader, p.token)
	}
	return p.client.Do(req)
}

// Push delivers antibodies to the peer's store and returns how many the peer
// had not seen before.
func (p *Peer) Push(from string, abs []*antibody.Antibody) (accepted int, err error) {
	body, err := antibody.EncodePush(&antibody.PushEnvelope{From: from, Antibodies: abs})
	if err != nil {
		return 0, fmt.Errorf("federate: encoding push to %s: %w", p.base, err)
	}
	resp, err := p.do(http.MethodPost, p.base+"/v1/antibodies", body)
	if err != nil {
		return 0, fmt.Errorf("federate: push to %s: %w", p.base, err)
	}
	defer resp.Body.Close()
	data, err := readAll(resp)
	if err != nil {
		return 0, fmt.Errorf("federate: push to %s: %w", p.base, err)
	}
	var res antibody.PushResult
	if err := json.Unmarshal(data, &res); err != nil {
		return 0, fmt.Errorf("federate: push response from %s: %w", p.base, err)
	}
	return res.Accepted, nil
}

// Pull fetches the peer's store from the given publication cursor onward.
// Pull(0) is the full-store replay performed on join.
func (p *Peer) Pull(cursor int) (*antibody.PullPage, error) {
	resp, err := p.do(http.MethodGet, fmt.Sprintf("%s/v1/antibodies?since=%d", p.base, cursor), nil)
	if err != nil {
		return nil, fmt.Errorf("federate: pull from %s: %w", p.base, err)
	}
	defer resp.Body.Close()
	data, err := readAll(resp)
	if err != nil {
		return nil, fmt.Errorf("federate: pull from %s: %w", p.base, err)
	}
	page, err := antibody.DecodePull(data)
	if err != nil {
		return nil, fmt.Errorf("federate: pull page from %s: %w", p.base, err)
	}
	return page, nil
}

// Health checks that the peer answers.
func (p *Peer) Health() error {
	resp, err := p.do(http.MethodGet, p.base+"/v1/health", nil)
	if err != nil {
		return fmt.Errorf("federate: health check of %s: %w", p.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("federate: health check of %s: status %d", p.base, resp.StatusCode)
	}
	return nil
}

func readAll(resp *http.Response) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		detail := strings.TrimSpace(string(data))
		if len(detail) > 120 {
			detail = detail[:120]
		}
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, detail)
	}
	return data, nil
}
