package federate

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sweeper/internal/antibody"
	"sweeper/internal/metrics"
)

// daemon is one simulated sweeperd for transport tests: a store, its
// peer-facing server, a node, and a notification counter that records how
// often each antibody ID reached the store's subscribers.
type daemon struct {
	store *antibody.Store
	rec   *metrics.FederationRecorder
	srv   *httptest.Server
	node  *Node

	mu       sync.Mutex
	notified map[string]int
}

func newDaemon(t *testing.T, name string) *daemon {
	t.Helper()
	d := &daemon{
		store:    antibody.NewStore(),
		rec:      metrics.NewFederationRecorder(),
		notified: make(map[string]int),
	}
	d.store.Subscribe(func(a *antibody.Antibody) {
		d.mu.Lock()
		d.notified[a.ID]++
		d.mu.Unlock()
	})
	d.srv = httptest.NewServer(NewServer(d.store, d.rec))
	t.Cleanup(d.srv.Close)
	d.node = NewNode(d.store, d.rec, Config{Name: name, PollInterval: 5 * time.Millisecond})
	t.Cleanup(d.node.Close)
	return d
}

func (d *daemon) notifyCount(id string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.notified[id]
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func ab(id, program string) *antibody.Antibody {
	return &antibody.Antibody{ID: id, Program: program, Stage: antibody.StageFinal}
}

// TestJoinReplaysFullStore: a node joining a populated peer receives the
// peer's whole store synchronously from AddPeer (the replay-on-join path).
func TestJoinReplaysFullStore(t *testing.T) {
	seeded := newDaemon(t, "seeded")
	for i := 0; i < 5; i++ {
		seeded.store.Publish(ab(fmt.Sprintf("seed-%d", i), "squid"))
	}
	joiner := newDaemon(t, "joiner")
	if err := joiner.node.AddPeer(seeded.srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := joiner.store.Len(); got != 5 {
		t.Fatalf("joiner store holds %d antibodies after join, want 5", got)
	}
	if got := joiner.rec.Snapshot().Received; got != 5 {
		t.Errorf("joiner Received = %d, want 5", got)
	}
}

// TestPushReachesPeerImmediately: a publish after peering arrives by push,
// and the duplicate bounce-back is absorbed without re-notification.
func TestPushReachesPeerImmediately(t *testing.T) {
	a := newDaemon(t, "a")
	b := newDaemon(t, "b")
	if err := a.node.AddPeer(b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := b.node.AddPeer(a.srv.URL); err != nil {
		t.Fatal(err)
	}
	a.store.Publish(ab("fresh", "squid"))
	waitFor(t, 5*time.Second, "push to reach b", func() bool { return b.store.Len() == 1 })
	// Give the bounce (b pushing back to a) time to be deduplicated.
	time.Sleep(30 * time.Millisecond)
	if got := a.notifyCount("fresh"); got != 1 {
		t.Errorf("a notified %d times for one antibody, want 1", got)
	}
	if got := b.notifyCount("fresh"); got != 1 {
		t.Errorf("b notified %d times for one antibody, want 1", got)
	}
}

// TestFederationSoakThreeDaemonConvergence is the soak test: three daemons in
// a one-directional peering ring (each reaches two of the others only
// transitively), every daemon publishing its own batch of antibodies
// concurrently. All three stores must converge on the full union, every
// subscriber must be notified exactly once per antibody, and gossip must
// terminate (run under -race in CI).
func TestFederationSoakThreeDaemonConvergence(t *testing.T) {
	perDaemon := 40
	if testing.Short() {
		perDaemon = 8
	}
	daemons := []*daemon{newDaemon(t, "d0"), newDaemon(t, "d1"), newDaemon(t, "d2")}
	for i, d := range daemons {
		// Ring: d0 -> d1 -> d2 -> d0.
		if err := d.node.AddPeer(daemons[(i+1)%len(daemons)].srv.URL); err != nil {
			t.Fatal(err)
		}
	}

	total := perDaemon * len(daemons)
	var wg sync.WaitGroup
	for i, d := range daemons {
		wg.Add(1)
		go func(i int, d *daemon) {
			defer wg.Done()
			for j := 0; j < perDaemon; j++ {
				d.store.Publish(ab(fmt.Sprintf("d%d-attack%d-final", i, j), "squid"))
			}
		}(i, d)
	}
	wg.Wait()

	waitFor(t, 30*time.Second, "store convergence", func() bool {
		for _, d := range daemons {
			if d.store.Len() != total {
				return false
			}
		}
		return true
	})
	// Quiesce: no poll may add anything further once converged.
	time.Sleep(50 * time.Millisecond)

	for i, d := range daemons {
		if got := d.store.Len(); got != total {
			t.Errorf("daemon %d store holds %d antibodies, want %d", i, got, total)
		}
		for j := 0; j < len(daemons); j++ {
			for k := 0; k < perDaemon; k++ {
				id := fmt.Sprintf("d%d-attack%d-final", j, k)
				if _, ok := d.store.Get(id); !ok {
					t.Errorf("daemon %d is missing %s", i, id)
				}
				if got := d.notifyCount(id); got != 1 {
					t.Errorf("daemon %d notified %d times for %s, want exactly 1", i, got, id)
				}
			}
		}
		fs := d.rec.Snapshot()
		if fs.Received != total-perDaemon {
			t.Errorf("daemon %d Received = %d, want %d", i, fs.Received, total-perDaemon)
		}
	}
}

// TestServerRejectsMalformedTraffic covers the wire-level negative paths.
func TestServerRejectsMalformedTraffic(t *testing.T) {
	d := newDaemon(t, "srv")
	peer := NewPeer(d.srv.URL, time.Second)

	if _, err := peer.Push("rogue", []*antibody.Antibody{{ID: "", Program: "squid"}}); err == nil {
		t.Error("push of an antibody without an ID was accepted")
	}
	if _, err := peer.Push("rogue", []*antibody.Antibody{{ID: "x", Program: ""}}); err == nil {
		t.Error("push of an antibody without a program was accepted")
	}
	if d.store.Len() != 0 {
		t.Errorf("malformed pushes reached the store (%d entries)", d.store.Len())
	}
	if err := peer.Health(); err != nil {
		t.Errorf("health check failed: %v", err)
	}
	// Bad cursor.
	resp, err := d.srv.Client().Get(d.srv.URL + "/v1/antibodies?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad since cursor answered %d, want 400", resp.StatusCode)
	}
}

// TestPeerPullPaginatesWithCursor: cursor pulls see exactly the antibodies
// published after the cursor was handed out.
func TestPeerPullPaginatesWithCursor(t *testing.T) {
	d := newDaemon(t, "srv")
	peer := NewPeer(d.srv.URL, time.Second)

	d.store.Publish(ab("one", "squid"))
	page, err := peer.Pull(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Antibodies) != 1 || page.Antibodies[0].ID != "one" {
		t.Fatalf("first pull = %+v", page)
	}
	d.store.Publish(ab("two", "squid"))
	page2, err := peer.Pull(page.Next)
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Antibodies) != 1 || page2.Antibodies[0].ID != "two" {
		t.Fatalf("incremental pull = %+v", page2)
	}
	page3, err := peer.Pull(page2.Next)
	if err != nil {
		t.Fatal(err)
	}
	if len(page3.Antibodies) != 0 {
		t.Fatalf("up-to-date pull returned %d antibodies, want 0", len(page3.Antibodies))
	}
}
