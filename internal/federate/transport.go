package federate

import "sweeper/internal/antibody"

// Transport is one reachable federation peer: the push/poll surface a Node
// gossips through. The HTTP client (Peer) is the production implementation;
// the in-process hub (Hub/Endpoint) provides the same semantics — push
// delivery with per-antibody accept counts, cursor-paged pulls whose Pull(0)
// replays the peer's full store, structural validation and auth-token
// rejection — over channels, so one process can host hundreds of
// sweeperd-equivalent daemons without sockets.
type Transport interface {
	// URL identifies the peer for diagnostics ("http://host:port" or
	// "inproc://name").
	URL() string
	// Push delivers antibodies to the peer's store and returns how many the
	// peer had not seen before.
	Push(from string, abs []*antibody.Antibody) (accepted int, err error)
	// Pull fetches the peer's store from the given publication cursor
	// onward. Pull(0) is the full-store replay performed on join.
	Pull(cursor int) (*antibody.PullPage, error)
}
