package federate

import (
	"fmt"
	"testing"
	"time"

	"sweeper/internal/antibody"
	"sweeper/internal/metrics"
)

// TestLatePeerBackoffAndRecovery: a peer added lazily before it exists is
// counted down and polled with backoff, not error-spammed at the base poll
// cadence; when the peer finally registers, the node recovers it, replays
// its full store through the cursor-0 poll, and counts the recovery.
func TestLatePeerBackoffAndRecovery(t *testing.T) {
	hub := NewHub()
	defer hub.Close()

	joiner := newInprocDaemon(t, hub, "joiner", "")
	// "late" does not exist yet; AddTransport would refuse, the lazy path
	// must not.
	joiner.node.AddTransportLazy(hub.Transport("late", ""))

	st := joiner.rec.Snapshot()
	if st.PeerDown != 1 {
		t.Fatalf("PeerDown = %d after lazy-adding an absent peer, want 1", st.PeerDown)
	}
	if st.PeerRecovered != 0 {
		t.Fatalf("PeerRecovered = %d before the peer exists, want 0", st.PeerRecovered)
	}
	if got := joiner.node.Peers(); len(got) != 1 || got[0] != "inproc://late" {
		t.Fatalf("peer list = %v", got)
	}

	// Let the poll loop fail a few rounds so the backoff grows.
	time.Sleep(30 * time.Millisecond)

	// The peer comes up late, already holding antibodies.
	late := newInprocDaemon(t, hub, "late", "")
	for i := 0; i < 4; i++ {
		late.store.Publish(ab(fmt.Sprintf("late-%d", i), "squid"))
	}

	waitFor(t, 5*time.Second, "late peer replay", func() bool {
		return joiner.store.Len() == 4
	})
	st = joiner.rec.Snapshot()
	if st.PeerRecovered != 1 {
		t.Fatalf("PeerRecovered = %d after the peer appeared, want 1", st.PeerRecovered)
	}
	if st.PeerDown != 1 {
		t.Fatalf("PeerDown = %d, want exactly the initial transition", st.PeerDown)
	}
}

// TestPeerCrashCountsDownOnce: a peer that answers, then disappears, is
// counted down exactly once across many failed polls, and its backoff means
// the failure count stays far below what fixed-cadence polling would rack
// up. When it re-registers, gossip resumes over the same transport.
func TestPeerCrashCountsDownOnce(t *testing.T) {
	hub := NewHub()
	defer hub.Close()

	flaky := newInprocDaemon(t, hub, "flaky", "")
	flaky.store.Publish(ab("pre-crash", "squid"))

	watcher := newInprocDaemon(t, hub, "watcher", "")
	if err := watcher.node.AddTransport(dialInproc(t, hub, "flaky", "")); err != nil {
		t.Fatal(err)
	}
	if watcher.store.Len() != 1 {
		t.Fatal("join replay missed the pre-crash antibody")
	}

	// Crash: tear the endpoint out of the hub, as a dying daemon would.
	hub.Unregister("flaky")
	waitFor(t, 5*time.Second, "down transition", func() bool {
		return watcher.rec.Snapshot().PeerDown == 1
	})
	time.Sleep(40 * time.Millisecond)
	if st := watcher.rec.Snapshot(); st.PeerDown != 1 {
		t.Fatalf("PeerDown = %d after a single crash, want 1", st.PeerDown)
	}

	// Restart under the same name. A real restart replays the WAL first, so
	// the store the new endpoint serves is a superset of the pre-crash one —
	// that is what keeps peers' Since cursors valid. Model that here by
	// republishing the pre-crash contents before anything new.
	restarted := antibody.NewStore()
	restarted.Publish(ab("pre-crash", "squid"))
	if _, err := hub.Register("flaky", restarted, metrics.NewFederationRecorder(), ""); err != nil {
		t.Fatal(err)
	}
	restarted.Publish(ab("post-restart", "squid"))
	waitFor(t, 5*time.Second, "post-restart gossip", func() bool {
		return watcher.store.Len() == 2
	})
	if st := watcher.rec.Snapshot(); st.PeerRecovered != 1 {
		t.Fatalf("PeerRecovered = %d, want 1", st.PeerRecovered)
	}
}
