package federate

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sweeper/internal/antibody"
	"sweeper/internal/metrics"
)

// inprocDaemon is one simulated sweeperd on the in-process hub.
type inprocDaemon struct {
	store *antibody.Store
	rec   *metrics.FederationRecorder
	ep    *Endpoint
	node  *Node
}

func newInprocDaemon(t *testing.T, hub *Hub, name, token string) *inprocDaemon {
	t.Helper()
	d := &inprocDaemon{
		store: antibody.NewStore(),
		rec:   metrics.NewFederationRecorder(),
	}
	ep, err := hub.Register(name, d.store, d.rec, token)
	if err != nil {
		t.Fatal(err)
	}
	d.ep = ep
	t.Cleanup(ep.Close)
	d.node = NewNode(d.store, d.rec, Config{Name: name, PollInterval: 2 * time.Millisecond, AuthToken: token})
	t.Cleanup(d.node.Close)
	return d
}

func dialInproc(t *testing.T, hub *Hub, name, token string) Transport {
	t.Helper()
	tr, err := hub.Dial(name, token)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestInprocJoinReplaysFullStore: the in-process transport preserves the
// replay-on-join semantics — AddTransport's synchronous Pull(0) delivers a
// populated peer's whole store.
func TestInprocJoinReplaysFullStore(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	seeded := newInprocDaemon(t, hub, "seeded", "")
	for i := 0; i < 5; i++ {
		seeded.store.Publish(ab(fmt.Sprintf("seed-%d", i), "squid"))
	}
	joiner := newInprocDaemon(t, hub, "joiner", "")
	if err := joiner.node.AddTransport(dialInproc(t, hub, "seeded", "")); err != nil {
		t.Fatal(err)
	}
	if got := joiner.store.Len(); got != 5 {
		t.Fatalf("joiner store holds %d antibodies after join, want 5", got)
	}
}

// TestInprocGossipConverges: a 5-daemon in-process community on a sparse
// ring topology converges via push plus poll, and dedup terminates the
// gossip (no daemon re-receives an ID it already stored).
func TestInprocGossipConverges(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	const n = 5
	ds := make([]*inprocDaemon, n)
	for i := range ds {
		ds[i] = newInprocDaemon(t, hub, fmt.Sprintf("d%d", i), "")
	}
	// Ring: each daemon peers with its two neighbours only.
	for i, d := range ds {
		for _, j := range []int{(i + 1) % n, (i + n - 1) % n} {
			if err := d.node.AddTransport(dialInproc(t, hub, fmt.Sprintf("d%d", j), "")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 3; i++ {
		ds[0].store.Publish(ab(fmt.Sprintf("ring-%d", i), "squid"))
	}
	waitFor(t, 5*time.Second, "ring convergence", func() bool {
		for _, d := range ds {
			if d.store.Len() != 3 {
				return false
			}
		}
		return true
	})
}

// TestInprocAuthTokenRejected: an endpoint registered with a token refuses
// pushes and pulls that do not present it, counting each rejection, while a
// correctly tokened dialer passes.
func TestInprocAuthTokenRejected(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	d := newInprocDaemon(t, hub, "guarded", "s3cret")

	bad := dialInproc(t, hub, "guarded", "wrong")
	if _, err := bad.Push("rogue", []*antibody.Antibody{ab("x", "squid")}); err == nil {
		t.Fatal("push with wrong token succeeded")
	}
	if _, err := bad.Pull(0); err == nil {
		t.Fatal("pull with wrong token succeeded")
	}
	if got := d.rec.Snapshot().Rejected; got != 2 {
		t.Fatalf("Rejected = %d, want 2", got)
	}
	if d.store.Len() != 0 {
		t.Fatalf("store holds %d antibodies from rejected pushes", d.store.Len())
	}

	good := dialInproc(t, hub, "guarded", "s3cret")
	if acc, err := good.Push("peer", []*antibody.Antibody{ab("x", "squid")}); err != nil || acc != 1 {
		t.Fatalf("tokened push = (%d, %v), want (1, nil)", acc, err)
	}
}

// TestInprocStructuralValidation: like the HTTP server, the endpoint refuses
// a push containing an antibody without an ID or program, rejecting the
// whole batch and counting it.
func TestInprocStructuralValidation(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	d := newInprocDaemon(t, hub, "strict", "")
	tr := dialInproc(t, hub, "strict", "")
	if _, err := tr.Push("peer", []*antibody.Antibody{ab("ok", "squid"), {ID: "no-program"}}); err == nil {
		t.Fatal("structurally invalid push succeeded")
	}
	if d.store.Len() != 0 {
		t.Fatalf("store holds %d antibodies from an invalid batch", d.store.Len())
	}
	if got := d.rec.Snapshot().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
}

// TestInprocClosedEndpointFails: dialers of a closed endpoint get errors
// (like connection refused), which AddTransport surfaces.
func TestInprocClosedEndpointFails(t *testing.T) {
	hub := NewHub()
	d := newInprocDaemon(t, hub, "gone", "")
	d.ep.Close()
	tr := dialInproc(t, hub, "gone", "")
	if _, err := tr.Pull(0); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("pull of closed endpoint: %v, want closed error", err)
	}
	other := newInprocDaemon(t, hub, "other", "")
	if err := other.node.AddTransport(tr); err == nil {
		t.Fatal("joining a closed endpoint succeeded")
	}
}

// TestBoundedFanoutStillConverges: with MaxPushFanout 1 in a 4-peer star,
// each batch is pushed to one peer only — but the rotating window plus the
// poll loops still converge every store.
func TestBoundedFanoutStillConverges(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	center := &inprocDaemon{store: antibody.NewStore(), rec: metrics.NewFederationRecorder()}
	ep, err := hub.Register("center", center.store, center.rec, "")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	center.node = NewNode(center.store, center.rec, Config{
		Name: "center", PollInterval: 2 * time.Millisecond, MaxPushFanout: 1,
	})
	defer center.node.Close()

	const spokes = 4
	ds := make([]*inprocDaemon, spokes)
	for i := range ds {
		ds[i] = newInprocDaemon(t, hub, fmt.Sprintf("s%d", i), "")
		if err := center.node.AddTransport(dialInproc(t, hub, fmt.Sprintf("s%d", i), "")); err != nil {
			t.Fatal(err)
		}
		// Spokes poll the center so bounded pushes are recovered.
		if err := ds[i].node.AddTransport(dialInproc(t, hub, "center", "")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		center.store.Publish(ab(fmt.Sprintf("fan-%d", i), "squid"))
	}
	waitFor(t, 5*time.Second, "bounded fan-out convergence", func() bool {
		for _, d := range ds {
			if d.store.Len() != 6 {
				return false
			}
		}
		return true
	})
}

// TestHTTPAuthTokenRejected: the HTTP server mirrors the endpoint's token
// check — wrong-token pushes and pulls get 401 and are counted Rejected;
// AddPeer attaches the node's configured token so a tokened community still
// converges.
func TestHTTPAuthTokenRejected(t *testing.T) {
	a := newDaemonWithToken(t, "a", "s3cret")
	b := newDaemonWithToken(t, "b", "s3cret")

	rogue := NewPeer(a.srv.URL, time.Second) // no token
	if _, err := rogue.Push("rogue", []*antibody.Antibody{ab("x", "squid")}); err == nil {
		t.Fatal("tokenless push accepted by guarded server")
	}
	if _, err := rogue.Pull(0); err == nil {
		t.Fatal("tokenless pull accepted by guarded server")
	}
	if got := a.rec.Snapshot().Rejected; got != 2 {
		t.Fatalf("Rejected = %d, want 2", got)
	}

	if err := b.node.AddPeer(a.srv.URL); err != nil {
		t.Fatal(err)
	}
	a.store.Publish(ab("guarded-1", "squid"))
	waitFor(t, 5*time.Second, "tokened convergence", func() bool { return b.store.Len() == 1 })
}

// TestMixedTransportCommunityDedup: one community, two fabrics — daemons
// connected both over loopback HTTP and the in-process hub. Every antibody
// reaches every store exactly once at the subscriber level: the cross-fabric
// echoes are absorbed by store dedup.
func TestMixedTransportCommunityDedup(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	a := newDaemon(t, "a")
	b := newDaemon(t, "b")
	for name, d := range map[string]*daemon{"a": a, "b": b} {
		if _, err := hub.Register(name, d.store, d.rec, ""); err != nil {
			t.Fatal(err)
		}
	}
	// a -> b over HTTP, b -> a over the hub: a full mesh spanning fabrics.
	if err := a.node.AddPeer(b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := b.node.AddTransport(dialInproc(t, hub, "a", "")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a.store.Publish(ab(fmt.Sprintf("mix-a-%d", i), "squid"))
		b.store.Publish(ab(fmt.Sprintf("mix-b-%d", i), "squid"))
	}
	waitFor(t, 5*time.Second, "mixed-transport convergence", func() bool {
		return a.store.Len() == 8 && b.store.Len() == 8
	})
	// Dedup: each antibody notified each store's subscribers exactly once.
	time.Sleep(20 * time.Millisecond) // let late echoes arrive
	for i := 0; i < 4; i++ {
		for _, d := range []*daemon{a, b} {
			for _, id := range []string{fmt.Sprintf("mix-a-%d", i), fmt.Sprintf("mix-b-%d", i)} {
				if got := d.notifyCount(id); got != 1 {
					t.Errorf("%s notified %d times for %s, want 1", d.node.cfg.Name, got, id)
				}
			}
		}
	}
}

// TestSinceCursorUnderConcurrentPublishes: the replay-on-join pull races a
// publisher; whatever the cursor cut, join-replay plus the poll loop must
// deliver every antibody exactly once to the joiner's subscribers (the
// Store.Since cursor-clamp edge cases under the new transport).
func TestSinceCursorUnderConcurrentPublishes(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	src := newInprocDaemon(t, hub, "src", "")

	const total = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			src.store.Publish(ab(fmt.Sprintf("race-%d", i), "squid"))
		}
	}()

	joiner := &inprocDaemon{store: antibody.NewStore(), rec: metrics.NewFederationRecorder()}
	notified := make(map[string]int)
	var mu sync.Mutex
	joiner.store.Subscribe(func(a *antibody.Antibody) {
		mu.Lock()
		notified[a.ID]++
		mu.Unlock()
	})
	if _, err := hub.Register("racing-joiner", joiner.store, joiner.rec, ""); err != nil {
		t.Fatal(err)
	}
	joiner.node = NewNode(joiner.store, joiner.rec, Config{Name: "racing-joiner", PollInterval: time.Millisecond})
	defer joiner.node.Close()
	// Join mid-publish: Pull(0) replays a prefix, the poll loop picks up
	// from the returned cursor while the publisher keeps going.
	if err := joiner.node.AddTransport(dialInproc(t, hub, "src", "")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	waitFor(t, 10*time.Second, "post-race convergence", func() bool { return joiner.store.Len() == total })
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("race-%d", i)
		if notified[id] != 1 {
			t.Fatalf("%s delivered %d times to the joiner, want exactly 1", id, notified[id])
		}
	}
}

// TestSinceCursorBeyondEnd: a poll cursor past the store's end (the store
// was rebuilt, or the cursor came from a larger peer) clamps instead of
// panicking, and the next publication is still delivered from the clamped
// cursor.
func TestSinceCursorBeyondEnd(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	d := newInprocDaemon(t, hub, "clamp", "")
	d.store.Publish(ab("one", "squid"))
	tr := dialInproc(t, hub, "clamp", "")
	page, err := tr.Pull(9999)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Antibodies) != 0 || page.Next != 1 {
		t.Fatalf("Pull(9999) = %d antibodies, next %d; want 0 antibodies, next clamped to 1", len(page.Antibodies), page.Next)
	}
	d.store.Publish(ab("two", "squid"))
	page, err = tr.Pull(page.Next)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Antibodies) != 1 || page.Antibodies[0].ID != "two" {
		t.Fatalf("pull from clamped cursor returned %d antibodies, want exactly the new one", len(page.Antibodies))
	}
}

// newDaemonWithToken is newDaemon with a shared-secret token on both the
// server and the node.
func newDaemonWithToken(t *testing.T, name, token string) *daemon {
	t.Helper()
	d := &daemon{
		store:    antibody.NewStore(),
		rec:      metrics.NewFederationRecorder(),
		notified: make(map[string]int),
	}
	d.store.Subscribe(func(a *antibody.Antibody) {
		d.mu.Lock()
		d.notified[a.ID]++
		d.mu.Unlock()
	})
	srv := NewServer(d.store, d.rec)
	srv.SetAuthToken(token)
	d.srv = httptest.NewServer(srv)
	t.Cleanup(d.srv.Close)
	d.node = NewNode(d.store, d.rec, Config{Name: name, PollInterval: 5 * time.Millisecond, AuthToken: token})
	t.Cleanup(d.node.Close)
	return d
}
