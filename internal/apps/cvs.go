package apps

import (
	"sweeper/internal/asm"
	"sweeper/internal/guest"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// CVS models the cvs-1.11.4 double free (CVE-2003-0015): the Directory
// request handler allocates a buffer for the directory name, frees it on its
// error path, and then frees it again in its common cleanup path.
func CVS() *Spec {
	b := asm.New("cvs-1.11.4")

	emitMainLoop(b)

	b.DataString("str_directory", "Directory ")
	b.DataString("str_dir_ok", "ok Directory\n")
	b.DataString("str_cvs_ok", "ok\n")
	b.DataString("str_dir_err", "E protocol error: empty Directory request\n")

	// handle_request(req r1). Frame: [bp-4]=req, [bp-8]=arg
	b.Func("handle_request")
	b.Prologue(16)
	b.StoreW(vm.BP, -4, vm.R1)
	b.LoadDataAddr(vm.R2, "str_directory")
	b.Call(guest.FnPrefix)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.other")
	// arg = req + len("Directory "), stripped of its trailing newline
	b.LoadW(vm.R1, vm.BP, -4)
	b.AddI(vm.R1, 10)
	b.StoreW(vm.BP, -8, vm.R1)
	b.MovI(vm.R2, int32('\n'))
	b.Call(guest.FnStrchr)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.nolf")
	b.MovI(vm.R3, 0)
	b.StoreB(vm.R0, 0, vm.R3)
	b.Label("handle_request.nolf")
	b.LoadW(vm.R1, vm.BP, -8)
	b.Call("dirswitch")
	b.Epilogue()
	b.Label("handle_request.other")
	emitSendString(b, "str_cvs_ok")
	b.Epilogue()

	// dirswitch(arg r1): switch the server's notion of the current directory.
	// Frame: [bp-4]=arg, [bp-8]=len, [bp-12]=buf
	b.Func("dirswitch")
	b.Prologue(16)
	b.StoreW(vm.BP, -4, vm.R1)
	b.Call(guest.FnStrlen)
	b.StoreW(vm.BP, -8, vm.R0)
	// buf = malloc(len + 2); strcpy(buf, arg)
	b.AddI(vm.R0, 2)
	b.Mov(vm.R1, vm.R0)
	b.Call(guest.FnMalloc)
	b.StoreW(vm.BP, -12, vm.R0)
	b.Mov(vm.R1, vm.R0)
	b.LoadW(vm.R2, vm.BP, -4)
	b.Call(guest.FnStrcpy)
	// Error path: an empty directory name frees the buffer and reports an
	// error -- but then falls through to the common cleanup which frees it
	// again. This is the double free.
	b.LoadW(vm.R4, vm.BP, -8)
	b.CmpI(vm.R4, 0)
	b.Jnz("dirswitch.ok")
	b.LoadW(vm.R1, vm.BP, -12)
	b.Label("dirswitch.first_free")
	b.Call(guest.FnFree)
	emitSendString(b, "str_dir_err")
	b.Jmp("dirswitch.cleanup")
	b.Label("dirswitch.ok")
	emitSendString(b, "str_dir_ok")
	b.Label("dirswitch.cleanup")
	b.LoadW(vm.R1, vm.BP, -12)
	b.Label("dirswitch.second_free")
	b.Call(guest.FnFree)
	b.Epilogue()

	guest.AddLibc(b)

	return &Spec{
		Name:        "cvs",
		Program:     "cvs-1.11.4 version control server",
		CVE:         "CVE-2003-0015",
		BugType:     "Double Free",
		Threat:      "Remotely exploitable vulnerability provides unauthorized access and disruption of service",
		Image:       b.MustBuild(),
		Options:     proc.Options{},
		VulnSym:     "dirswitch",
		VulnLabel:   "dirswitch.second_free",
		DetectSym:   guest.FnFree,
		RecvBufSize: recvBufSize,
	}
}
