package apps

import (
	"sweeper/internal/asm"
	"sweeper/internal/guest"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// SquidMmapThreshold is the allocation size above which the Squid process's
// allocator uses the large-object zone. The escape buffer of the exploit
// request exceeds it, so (as with real Squid) the buffer being overflowed is
// the last object in the main arena and the overflow runs off mapped memory,
// crashing inside strcat.
const SquidMmapThreshold = 8192

// Squid models the squid-2.3 FTP URL handling heap overflow (CVE-2002-0068,
// Figure 2 of the paper): ftpBuildTitleUrl allocates t = 64+strlen(user)
// bytes, rfc1738_escape_part expands user up to 3x into its own buffer, and
// an unbounded strcat copies the escaped string into t.
func Squid() *Spec {
	b := asm.New("squid-2.3")

	emitMainLoop(b)

	b.DataString("str_ftp_scheme", "ftp://")
	b.DataString("str_atsite", "@ftp.site/")
	b.DataString("str_generic_resp", "HTTP/1.0 200 OK\r\nX-Cache: MISS from squid\r\n\r\n<html>cached object</html>\r\n")
	b.DataString("str_ftp_err", "HTTP/1.0 400 Bad ftp URL\r\n\r\n")

	// handle_request(req r1): dispatch FTP URLs to ftpBuildTitleUrl.
	// Frame: [bp-4]=req, [bp-8]=scratch, [bp-12]=user
	b.Func("handle_request")
	b.Prologue(16)
	b.StoreW(vm.BP, -4, vm.R1)
	b.LoadDataAddr(vm.R2, "str_ftp_scheme")
	b.Call(guest.FnPrefix)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.notftp")
	// user = req + 6
	b.LoadW(vm.R1, vm.BP, -4)
	b.AddI(vm.R1, 6)
	b.StoreW(vm.BP, -12, vm.R1)
	// find '@' terminating the user part
	b.MovI(vm.R2, int32('@'))
	b.Call(guest.FnStrchr)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.badftp")
	b.MovI(vm.R3, 0)
	b.StoreB(vm.R0, 0, vm.R3)
	// ftpBuildTitleUrl(user)
	b.LoadW(vm.R1, vm.BP, -12)
	b.Call("ftpBuildTitleUrl")
	b.Epilogue()
	b.Label("handle_request.badftp")
	emitSendString(b, "str_ftp_err")
	b.Epilogue()
	b.Label("handle_request.notftp")
	emitSendString(b, "str_generic_resp")
	b.Epilogue()

	// ftpBuildTitleUrl(user r1): builds the FTP title URL (Figure 2).
	// Frame: [bp-4]=user, [bp-8]=len, [bp-12]=t, [bp-16]=buf
	b.Func("ftpBuildTitleUrl")
	b.Prologue(24)
	b.StoreW(vm.BP, -4, vm.R1)
	// len = 64 + strlen(user)
	b.Call(guest.FnStrlen)
	b.AddI(vm.R0, 64)
	b.StoreW(vm.BP, -8, vm.R0)
	// t = malloc(len)
	b.Mov(vm.R1, vm.R0)
	b.Call(guest.FnMalloc)
	b.StoreW(vm.BP, -12, vm.R0)
	// strcpy(t, "ftp://")
	b.Mov(vm.R1, vm.R0)
	b.LoadDataAddr(vm.R2, "str_ftp_scheme")
	b.Call(guest.FnStrcpy)
	// buf = rfc1738_escape_part(user)
	b.LoadW(vm.R1, vm.BP, -4)
	b.Call("rfc1738_escape_part")
	b.StoreW(vm.BP, -16, vm.R0)
	// strcat(t, buf)  -- the unbounded copy that overflows t
	b.LoadW(vm.R1, vm.BP, -12)
	b.Mov(vm.R2, vm.R0)
	b.Label("ftpBuildTitleUrl.overflowing_strcat")
	b.Call(guest.FnStrcat)
	// strcat(t, "@ftp.site/")
	b.LoadW(vm.R1, vm.BP, -12)
	b.LoadDataAddr(vm.R2, "str_atsite")
	b.Call(guest.FnStrcat)
	// send(t, strlen(t))
	b.LoadW(vm.R1, vm.BP, -12)
	b.Call(guest.FnStrlen)
	b.Mov(vm.R2, vm.R0)
	b.LoadW(vm.R1, vm.BP, -12)
	b.Call(guest.FnSend)
	// free(buf); free(t)
	b.LoadW(vm.R1, vm.BP, -16)
	b.Call(guest.FnFree)
	b.LoadW(vm.R1, vm.BP, -12)
	b.Call(guest.FnFree)
	b.Epilogue()

	// rfc1738_escape_part(src r1) -> r0 = freshly allocated escaped copy.
	// Frame: [bp-4]=src, [bp-8]=buf
	b.Func("rfc1738_escape_part")
	b.Prologue(16)
	b.StoreW(vm.BP, -4, vm.R1)
	// bufsize = strlen(src)*3 + 1; buf = malloc(bufsize)
	b.Call(guest.FnStrlen)
	b.MulI(vm.R0, 3)
	b.AddI(vm.R0, 1)
	b.Mov(vm.R1, vm.R0)
	b.Call(guest.FnMalloc)
	b.StoreW(vm.BP, -8, vm.R0)
	// r4 = src cursor, r5 = dst cursor
	b.Mov(vm.R5, vm.R0)
	b.LoadW(vm.R4, vm.BP, -4)
	b.Label("escape.loop")
	b.LoadB(vm.R6, vm.R4, 0)
	b.CmpI(vm.R6, 0)
	b.Jz("escape.done")
	// digits pass through
	b.CmpI(vm.R6, '0')
	b.Jlt("escape.chk_upper")
	b.CmpI(vm.R6, '9')
	b.Jle("escape.passthru")
	b.Label("escape.chk_upper")
	b.CmpI(vm.R6, 'A')
	b.Jlt("escape.chk_punct")
	b.CmpI(vm.R6, 'Z')
	b.Jle("escape.passthru")
	b.CmpI(vm.R6, 'a')
	b.Jlt("escape.chk_punct")
	b.CmpI(vm.R6, 'z')
	b.Jle("escape.passthru")
	b.Label("escape.chk_punct")
	b.CmpI(vm.R6, '/')
	b.Jz("escape.passthru")
	b.CmpI(vm.R6, '.')
	b.Jz("escape.passthru")
	b.CmpI(vm.R6, '-')
	b.Jz("escape.passthru")
	b.CmpI(vm.R6, '_')
	b.Jz("escape.passthru")
	// escape: '%' high-nibble low-nibble
	b.MovI(vm.R7, int32('%'))
	b.StoreB(vm.R5, 0, vm.R7)
	b.AddI(vm.R5, 1)
	b.Mov(vm.R7, vm.R6)
	b.ShrI(vm.R7, 4)
	b.CmpI(vm.R7, 10)
	b.Jlt("escape.hi_digit")
	b.AddI(vm.R7, 55) // 'A'-10
	b.Jmp("escape.hi_store")
	b.Label("escape.hi_digit")
	b.AddI(vm.R7, '0')
	b.Label("escape.hi_store")
	b.StoreB(vm.R5, 0, vm.R7)
	b.AddI(vm.R5, 1)
	b.Mov(vm.R7, vm.R6)
	b.AndI(vm.R7, 15)
	b.CmpI(vm.R7, 10)
	b.Jlt("escape.lo_digit")
	b.AddI(vm.R7, 55)
	b.Jmp("escape.lo_store")
	b.Label("escape.lo_digit")
	b.AddI(vm.R7, '0')
	b.Label("escape.lo_store")
	b.StoreB(vm.R5, 0, vm.R7)
	b.AddI(vm.R5, 1)
	b.Jmp("escape.next")
	b.Label("escape.passthru")
	b.StoreB(vm.R5, 0, vm.R6)
	b.AddI(vm.R5, 1)
	b.Label("escape.next")
	b.AddI(vm.R4, 1)
	b.Jmp("escape.loop")
	b.Label("escape.done")
	b.MovI(vm.R7, 0)
	b.StoreB(vm.R5, 0, vm.R7)
	b.LoadW(vm.R0, vm.BP, -8)
	b.Epilogue()

	guest.AddLibc(b)

	return &Spec{
		Name:        "squid",
		Program:     "squid-2.3 proxy cache server",
		CVE:         "CVE-2002-0068",
		BugType:     "Heap Buffer Overflow",
		Threat:      "Remotely exploitable vulnerability provides unauthorized access and disruption of service",
		Image:       b.MustBuild(),
		Options:     proc.Options{MmapThreshold: SquidMmapThreshold},
		VulnSym:     guest.FnStrcat,
		VulnLabel:   guest.StrcatStoreLabel,
		DetectSym:   guest.FnStrcat,
		RecvBufSize: recvBufSize,
	}
}
