// Package apps contains the guest server applications used to evaluate
// Sweeper: simplified re-implementations of the request-handling paths of
// Apache 1.3, CVS 1.11 and Squid 2.3 that contain the same vulnerability
// classes, at identifiable instructions, as the four CVEs in the paper's
// Table 1.
package apps

import (
	"fmt"

	"sweeper/internal/asm"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Spec describes one evaluation application: its program image, the options
// it needs from the process runtime, and ground-truth metadata about its
// vulnerability used by tests and by the Table 1/2 harnesses.
type Spec struct {
	// Name identifies the application (apache1, apache2, cvs, squid).
	Name string
	// Program is a description of the real server being modelled.
	Program string
	// CVE is the vulnerability identifier of the modelled bug.
	CVE string
	// BugType is the paper's Table 1 bug classification.
	BugType string
	// Threat is the paper's Table 1 security-threat description.
	Threat string

	// Image is the loadable guest program.
	Image *vm.Program
	// Options are the process-runtime options the application needs.
	Options proc.Options

	// VulnSym is the function containing the instruction ultimately
	// responsible for the vulnerability (ground truth for tests).
	VulnSym string
	// VulnLabel, when non-empty, is a code label placed exactly on the
	// vulnerable instruction.
	VulnLabel string
	// DetectSym is the function in which the lightweight monitors are
	// expected to observe the failure (ground truth for tests).
	DetectSym string
	// RecvBufSize is the size of the static request buffer used by main.
	RecvBufSize int
}

// VulnIndex returns the instruction index of the labelled vulnerable
// instruction, or -1 when the spec does not label one.
func (s *Spec) VulnIndex() int {
	if s.VulnLabel == "" {
		return -1
	}
	if idx, ok := s.Image.Symbols[s.VulnLabel]; ok {
		return idx
	}
	return -1
}

// All returns the four evaluation applications in Table 1 order.
func All() []*Spec {
	return []*Spec{Apache1(), Apache2(), CVS(), Squid()}
}

// ByName returns the named application spec.
func ByName(name string) (*Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// recvBufSize is the static request buffer size shared by all applications.
const recvBufSize = 8192

// recvBufLabel is the data-segment label of the request buffer.
const recvBufLabel = "reqbuf"

// emitMainLoop emits the standard server main loop: receive a request into
// the static buffer, NUL-terminate it, dispatch to handle_request, repeat.
func emitMainLoop(b *asm.Builder) {
	b.DataSpace(recvBufLabel, recvBufSize+4)
	b.Func("main")
	b.Label("main.loop")
	b.LoadDataAddr(vm.R1, recvBufLabel)
	b.MovI(vm.R2, recvBufSize)
	b.Call("recv")
	// NUL-terminate the received bytes: reqbuf[n] = 0.
	b.LoadDataAddr(vm.R1, recvBufLabel)
	b.Mov(vm.R2, vm.R1)
	b.Add(vm.R2, vm.R0)
	b.MovI(vm.R3, 0)
	b.StoreB(vm.R2, 0, vm.R3)
	// handle_request(reqbuf)
	b.Call("handle_request")
	b.Jmp("main.loop")
}

// emitSendString emits code that sends the NUL-terminated data-segment string
// under the given label.
func emitSendString(b *asm.Builder, label string) {
	b.LoadDataAddr(vm.R1, label)
	b.Call("strlen")
	b.Mov(vm.R2, vm.R0)
	b.LoadDataAddr(vm.R1, label)
	b.Call("send")
}

// padCodeForCleanAddress appends nops until the *next* emitted instruction's
// default-layout address contains none of the given forbidden byte values in
// its low two bytes. Exploit payloads embed that address inside strings, so
// bytes like NUL or space would corrupt the payload in transit.
func padCodeForCleanAddress(b *asm.Builder, forbidden ...byte) {
	bad := func(v byte) bool {
		for _, f := range forbidden {
			if v == f {
				return true
			}
		}
		return false
	}
	def := vm.DefaultLayout()
	for {
		addr := def.CodeBase + uint32(b.Len())*vm.InstrSize
		if !bad(byte(addr)) && !bad(byte(addr>>8)) && !bad(byte(addr>>16)) && !bad(byte(addr>>24)) {
			return
		}
		b.Nop()
	}
}
