package apps

import (
	"sweeper/internal/asm"
	"sweeper/internal/guest"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Apache2 models the Apache 1.3.12 NULL pointer dereference (CVE-2003-1054
// analogue in the paper's Table 1): a Referer header whose URL does not start
// with "http://" or "ftp://" makes the scheme parser return NULL, which is_ip
// then dereferences.
func Apache2() *Spec {
	b := asm.New("apache-1.3.12")

	emitMainLoop(b)

	b.DataString("str_get", "GET ")
	b.DataString("str_referer", "Referer: ")
	b.DataString("str_http_scheme", "http://")
	b.DataString("str_ftp_scheme", "ftp://")
	b.DataString("str_ok", "HTTP/1.0 200 OK\r\nServer: Apache/1.3.12\r\n\r\n<html>welcome</html>\r\n")
	b.DataString("str_bad", "HTTP/1.0 400 Bad Request\r\n\r\n")

	// handle_request(req r1). Frame: [bp-4]=req, [bp-8]=referer, [bp-12]=host
	b.Func("handle_request")
	b.Prologue(16)
	b.StoreW(vm.BP, -4, vm.R1)
	b.LoadDataAddr(vm.R2, "str_get")
	b.Call(guest.FnPrefix)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.bad")
	// Look for a Referer header and classify its host.
	b.LoadW(vm.R1, vm.BP, -4)
	b.LoadDataAddr(vm.R2, "str_referer")
	b.Call(guest.FnStrstr)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.noref")
	b.AddI(vm.R0, 9)
	b.StoreW(vm.BP, -8, vm.R0)
	// terminate the header value at CR and at LF
	b.Mov(vm.R1, vm.R0)
	b.MovI(vm.R2, int32('\r'))
	b.Call(guest.FnStrchr)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.nocr")
	b.MovI(vm.R3, 0)
	b.StoreB(vm.R0, 0, vm.R3)
	b.Label("handle_request.nocr")
	b.LoadW(vm.R1, vm.BP, -8)
	b.MovI(vm.R2, int32('\n'))
	b.Call(guest.FnStrchr)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.nolf")
	b.MovI(vm.R3, 0)
	b.StoreB(vm.R0, 0, vm.R3)
	b.Label("handle_request.nolf")
	// host = referer_host(referer); is_ip(host)
	b.LoadW(vm.R1, vm.BP, -8)
	b.Call("referer_host")
	b.StoreW(vm.BP, -12, vm.R0)
	b.Mov(vm.R1, vm.R0)
	b.Call("is_ip")
	b.Label("handle_request.noref")
	emitSendString(b, "str_ok")
	b.Epilogue()
	b.Label("handle_request.bad")
	emitSendString(b, "str_bad")
	b.Epilogue()

	// referer_host(ref r1) -> r0 = pointer past the scheme, or NULL when the
	// scheme is neither http:// nor ftp:// (the bug: callers never check).
	b.Func("referer_host")
	b.Prologue(8)
	b.StoreW(vm.BP, -4, vm.R1)
	b.LoadDataAddr(vm.R2, "str_http_scheme")
	b.Call(guest.FnPrefix)
	b.CmpI(vm.R0, 0)
	b.Jnz("referer_host.http")
	b.LoadW(vm.R1, vm.BP, -4)
	b.LoadDataAddr(vm.R2, "str_ftp_scheme")
	b.Call(guest.FnPrefix)
	b.CmpI(vm.R0, 0)
	b.Jnz("referer_host.ftp")
	b.MovI(vm.R0, 0)
	b.Epilogue()
	b.Label("referer_host.http")
	b.LoadW(vm.R0, vm.BP, -4)
	b.AddI(vm.R0, 7)
	b.Epilogue()
	b.Label("referer_host.ftp")
	b.LoadW(vm.R0, vm.BP, -4)
	b.AddI(vm.R0, 6)
	b.Epilogue()

	// is_ip(host r1) -> r0 = 1 when the host looks numeric. The first load is
	// the NULL pointer dereference when referer_host returned NULL.
	b.Func("is_ip")
	b.Label("is_ip.load")
	b.LoadB(vm.R4, vm.R1, 0)
	b.CmpI(vm.R4, int32('0'))
	b.Jlt("is_ip.no")
	b.CmpI(vm.R4, int32('9'))
	b.Jgt("is_ip.no")
	b.MovI(vm.R0, 1)
	b.Ret()
	b.Label("is_ip.no")
	b.MovI(vm.R0, 0)
	b.Ret()

	guest.AddLibc(b)

	return &Spec{
		Name:        "apache2",
		Program:     "apache-1.3.12 web server",
		CVE:         "CVE-2003-1054",
		BugType:     "NULL Pointer",
		Threat:      "Remotely exploitable vulnerability allows disruption of service",
		Image:       b.MustBuild(),
		Options:     proc.Options{},
		VulnSym:     "is_ip",
		VulnLabel:   "is_ip.load",
		DetectSym:   "is_ip",
		RecvBufSize: recvBufSize,
	}
}
