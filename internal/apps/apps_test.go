package apps

import (
	"bytes"
	"strings"
	"testing"

	"sweeper/internal/monitor"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// runApp loads the app, submits the given payloads and runs the guest until
// it blocks for more input or stops for another reason.
func runApp(t *testing.T, spec *Spec, layout vm.Layout, payloads ...[]byte) (*proc.Process, *vm.StopInfo) {
	t.Helper()
	proxy := netproxy.New()
	for _, pl := range payloads {
		if _, ok := proxy.Submit(pl, "client", false); !ok {
			t.Fatalf("proxy rejected payload %q", pl)
		}
	}
	p, err := proc.New(spec.Name, spec.Image, layout, proxy, spec.Options)
	if err != nil {
		t.Fatalf("loading %s: %v", spec.Name, err)
	}
	stop := p.Run(0)
	return p, stop
}

func TestAllSpecsHaveMetadata(t *testing.T) {
	specs := All()
	if len(specs) != 4 {
		t.Fatalf("expected 4 applications, got %d", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.CVE == "" || s.BugType == "" || s.Program == "" {
			t.Errorf("spec %+v missing metadata", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate app name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Image == nil || len(s.Image.Code) == 0 {
			t.Errorf("app %s has no code", s.Name)
		}
		if s.VulnIndex() < 0 {
			t.Errorf("app %s has no labelled vulnerable instruction", s.Name)
		}
		if _, ok := s.Image.Symbols["handle_request"]; !ok {
			t.Errorf("app %s has no handle_request", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"apache1", "apache2", "cvs", "squid"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("iis"); err == nil {
		t.Errorf("ByName(iis) should fail")
	}
}

func TestBenignWorkloads(t *testing.T) {
	cases := map[string][][]byte{
		"squid": {
			[]byte("ftp://anonymous@ftp.example.org/pub/file.tar.gz"),
			[]byte("GET http://origin.example.com/x HTTP/1.0\r\n\r\n"),
		},
		"apache1": {
			[]byte("GET /index.html HTTP/1.0\r\n\r\n"),
			[]byte("GET /docs/a/b/c.html HTTP/1.0\r\n\r\n"),
		},
		"apache2": {
			[]byte("GET /index.html HTTP/1.0\r\nReferer: http://www.example.com/\r\n\r\n"),
			[]byte("GET /index.html HTTP/1.0\r\n\r\n"),
		},
		"cvs": {
			[]byte("Directory src/lib\n"),
			[]byte("noop\n"),
		},
	}
	for name, payloads := range cases {
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, stop := runApp(t, spec, vm.DefaultLayout(), payloads...)
			if stop.Reason != vm.StopWaitInput {
				t.Fatalf("benign workload stopped with %v (fault=%v)", stop.Reason, stop.Fault)
			}
			if p.ServedRequests() != len(payloads) {
				t.Errorf("served %d requests, want %d", p.ServedRequests(), len(payloads))
			}
			if len(p.Outputs()) != len(payloads) {
				t.Errorf("got %d outputs, want %d", len(p.Outputs()), len(payloads))
			}
		})
	}
}

func TestBenignWorkloadsUnderRandomizedLayout(t *testing.T) {
	layout := monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: 7})
	for _, spec := range All() {
		t.Run(spec.Name, func(t *testing.T) {
			var payloads [][]byte
			switch spec.Name {
			case "squid":
				payloads = append(payloads, []byte("ftp://anonymous@ftp.example.org/pub/file.tar.gz"))
			case "cvs":
				payloads = append(payloads, []byte("Directory src/lib\n"))
			default:
				payloads = append(payloads, []byte("GET /index.html HTTP/1.0\r\n\r\n"))
			}
			_, stop := runApp(t, spec, layout, payloads...)
			if stop.Reason != vm.StopWaitInput {
				t.Fatalf("benign workload under ASLR stopped with %v (fault=%v)", stop.Reason, stop.Fault)
			}
		})
	}
}

func TestSquidExploitFaultsInStrcat(t *testing.T) {
	spec, err := ByName("squid")
	if err != nil {
		t.Fatal(err)
	}
	exploitUser := strings.Repeat("\\", 4000)
	payload := []byte("ftp://" + exploitUser + "@ftp.site/")
	_, stop := runApp(t, spec, vm.DefaultLayout(),
		[]byte("ftp://anonymous@ftp.example.org/pub/file.tar.gz"),
		payload,
	)
	if stop.Reason != vm.StopFault {
		t.Fatalf("exploit did not fault: %v", stop.Reason)
	}
	if stop.Fault.Kind != vm.FaultPage || !stop.Fault.IsWrite {
		t.Fatalf("expected write page fault, got %v", stop.Fault)
	}
	if stop.Fault.Sym != "strcat" {
		t.Errorf("fault in %q, want strcat", stop.Fault.Sym)
	}
}

func TestApache1ExploitHijacksWithoutASLR(t *testing.T) {
	spec, err := ByName("apache1")
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := spec.Image.Symbols[Apache1BackdoorSym]
	if !ok {
		t.Fatal("no backdoor symbol")
	}
	layout := vm.DefaultLayout()
	addr := layout.CodeBase + uint32(entry)*vm.InstrSize
	uri := []byte{'/'}
	for len(uri) < Apache1RetOffset {
		uri = append(uri, 'A')
	}
	uri = append(uri, byte(addr), byte(addr>>8), byte(addr>>16), byte(addr>>24))
	payload := append([]byte("GET "), uri...)
	payload = append(payload, []byte(" HTTP/1.0\r\n\r\n")...)

	p, stop := runApp(t, spec, layout, payload)
	if stop.Reason != vm.StopHalt {
		t.Fatalf("expected hijacked execution to reach the backdoor and exit, got %v (fault=%v)", stop.Reason, stop.Fault)
	}
	var owned bool
	for _, out := range p.Outputs() {
		if bytes.Contains(out.Data, []byte("OWNED")) {
			owned = true
		}
	}
	if !owned {
		t.Errorf("backdoor did not run; outputs: %v", p.Outputs())
	}
}

func TestApache1ExploitFaultsUnderASLR(t *testing.T) {
	spec, err := ByName("apache1")
	if err != nil {
		t.Fatal(err)
	}
	entry := spec.Image.Symbols[Apache1BackdoorSym]
	def := vm.DefaultLayout()
	addr := def.CodeBase + uint32(entry)*vm.InstrSize
	uri := []byte{'/'}
	for len(uri) < Apache1RetOffset {
		uri = append(uri, 'A')
	}
	uri = append(uri, byte(addr), byte(addr>>8), byte(addr>>16), byte(addr>>24))
	payload := append([]byte("GET "), uri...)
	payload = append(payload, []byte(" HTTP/1.0\r\n\r\n")...)

	layout := monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: 99})
	_, stop := runApp(t, spec, layout, payload)
	if stop.Reason != vm.StopFault {
		t.Fatalf("expected fault under ASLR, got %v", stop.Reason)
	}
	if stop.Fault.Kind != vm.FaultBadPC {
		t.Errorf("expected bad-PC fault, got %v", stop.Fault)
	}
	if stop.Fault.Sym != "try_alias_list" {
		t.Errorf("fault in %q, want try_alias_list", stop.Fault.Sym)
	}
}

func TestApache2ExploitNullDeref(t *testing.T) {
	spec, err := ByName("apache2")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("GET /index.html HTTP/1.0\r\nReferer: gopher://evil.example/\r\n\r\n")
	_, stop := runApp(t, spec, vm.DefaultLayout(),
		[]byte("GET /a.html HTTP/1.0\r\nReferer: http://ok.example/\r\n\r\n"),
		payload,
	)
	if stop.Reason != vm.StopFault {
		t.Fatalf("exploit did not fault: %v", stop.Reason)
	}
	if stop.Fault.Kind != vm.FaultPage || stop.Fault.Addr >= vm.PageSize {
		t.Fatalf("expected NULL-page fault, got %v", stop.Fault)
	}
	if stop.Fault.Sym != "is_ip" {
		t.Errorf("fault in %q, want is_ip", stop.Fault.Sym)
	}
}

func TestCVSExploitDoubleFree(t *testing.T) {
	spec, err := ByName("cvs")
	if err != nil {
		t.Fatal(err)
	}
	_, stop := runApp(t, spec, vm.DefaultLayout(),
		[]byte("Directory src/lib\n"),
		[]byte("Directory \n"),
	)
	if stop.Reason != vm.StopFault {
		t.Fatalf("exploit did not fault: %v", stop.Reason)
	}
	if stop.Fault.Kind != vm.FaultHeapCorruption {
		t.Fatalf("expected heap corruption fault, got %v", stop.Fault)
	}
	if !strings.Contains(stop.Fault.Detail, "double free") {
		t.Errorf("fault detail %q does not mention double free", stop.Fault.Detail)
	}
}
