package apps

import (
	"sweeper/internal/asm"
	"sweeper/internal/guest"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Apache1AliasBufSize is the size of the stack buffer that try_alias_list
// keeps its alias match in; URIs longer than this smash the stack.
const Apache1AliasBufSize = 256

// Apache1RetOffset is the byte offset within the URI at which the saved
// return address of try_alias_list is overwritten (buffer size + saved
// BP + padding for the leading locals). Exploit builders use it.
const Apache1RetOffset = Apache1AliasBufSize + 12

// Apache1BackdoorSym is the code symbol the canned exploit hijacks control to
// (standing in for injected shellcode).
const Apache1BackdoorSym = "backdoor"

// Apache1 models the Apache 1.3.27 local stack smashing vulnerability
// (CVE-2003-0542, mod_alias/mod_rewrite): try_alias_list keeps a fixed-size
// stack buffer and lmatcher copies the request URI into it without bounds
// checking, overwriting the saved return address.
func Apache1() *Spec {
	b := asm.New("apache-1.3.27")

	emitMainLoop(b)

	b.DataString("str_get", "GET ")
	b.DataString("str_ok", "HTTP/1.0 200 OK\r\nServer: Apache/1.3.27\r\n\r\n<html>it works</html>\r\n")
	b.DataString("str_bad", "HTTP/1.0 400 Bad Request\r\n\r\n")
	b.DataString("str_owned", "OWNED\n")

	// handle_request(req r1). Frame: [bp-4]=req, [bp-8]=uri
	b.Func("handle_request")
	b.Prologue(16)
	b.StoreW(vm.BP, -4, vm.R1)
	b.LoadDataAddr(vm.R2, "str_get")
	b.Call(guest.FnPrefix)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.bad")
	// uri = req + 4, terminated at the first space
	b.LoadW(vm.R1, vm.BP, -4)
	b.AddI(vm.R1, 4)
	b.StoreW(vm.BP, -8, vm.R1)
	b.MovI(vm.R2, int32(' '))
	b.Call(guest.FnStrchr)
	b.CmpI(vm.R0, 0)
	b.Jz("handle_request.nospace")
	b.MovI(vm.R3, 0)
	b.StoreB(vm.R0, 0, vm.R3)
	b.Label("handle_request.nospace")
	b.LoadW(vm.R1, vm.BP, -8)
	b.Call("try_alias_list")
	emitSendString(b, "str_ok")
	b.Epilogue()
	b.Label("handle_request.bad")
	emitSendString(b, "str_bad")
	b.Epilogue()

	// try_alias_list(uri r1): matches the URI against the configured aliases,
	// recording the match into a fixed-size stack buffer via lmatcher.
	// Frame: [bp-4]=uri, [bp-8]=match length, buffer at [bp-(8+bufsize) .. bp-8)
	frame := int32(Apache1AliasBufSize + 16)
	b.Func("try_alias_list")
	b.Prologue(frame)
	b.StoreW(vm.BP, -4, vm.R1)
	// lmatcher(dst=buffer, src=uri)
	b.Mov(vm.R2, vm.R1)
	b.Lea(vm.R1, vm.BP, -(8 + Apache1AliasBufSize))
	b.Call("lmatcher")
	b.StoreW(vm.BP, -8, vm.R0)
	b.Label("try_alias_list.ret")
	b.Epilogue()

	// lmatcher(dst r1, src r2) -> r0 = bytes copied. The copy is unbounded:
	// this store is the instruction that smashes the caller's stack frame.
	b.Func("lmatcher")
	b.MovI(vm.R0, 0)
	b.Label("lmatcher.loop")
	b.LoadB(vm.R4, vm.R2, 0)
	b.CmpI(vm.R4, 0)
	b.Jz("lmatcher.done")
	b.Label("lmatcher.store")
	b.StoreB(vm.R1, 0, vm.R4)
	b.AddI(vm.R1, 1)
	b.AddI(vm.R2, 1)
	b.AddI(vm.R0, 1)
	b.Jmp("lmatcher.loop")
	b.Label("lmatcher.done")
	b.MovI(vm.R4, 0)
	b.StoreB(vm.R1, 0, vm.R4)
	b.Ret()

	// The hijack target standing in for injected shellcode: make sure its
	// default-layout address contains no bytes that would corrupt the exploit
	// string in transit (NUL terminates copies; space ends the URI).
	padCodeForCleanAddress(b, 0x00, ' ', '\r', '\n')
	b.Func(Apache1BackdoorSym)
	b.LoadDataAddr(vm.R1, "str_owned")
	b.MovI(vm.R2, 6)
	b.Call(guest.FnSend)
	b.Call(guest.FnExit)

	guest.AddLibc(b)

	return &Spec{
		Name:        "apache1",
		Program:     "apache-1.3.27 web server",
		CVE:         "CVE-2003-0542",
		BugType:     "Stack Smashing",
		Threat:      "Local exploitable vulnerability enables unauthorized access",
		Image:       b.MustBuild(),
		Options:     proc.Options{},
		VulnSym:     "lmatcher",
		VulnLabel:   "lmatcher.store",
		DetectSym:   "try_alias_list",
		RecvBufSize: recvBufSize,
	}
}
