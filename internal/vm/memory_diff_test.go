package vm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// refMemory is the byte-at-a-time reference model the real Memory is checked
// against: a map of mapped pages to plain byte slices, deep-copied on
// snapshot. It intentionally has no COW, no dirty tracking and no bulk
// paths, so any divergence points at the optimised implementation.
type refMemory struct {
	pages map[uint32][]byte
}

func newRefMemory() *refMemory { return &refMemory{pages: make(map[uint32][]byte)} }

func (r *refMemory) mapRegion(base, size uint32) {
	if size == 0 {
		return
	}
	first, last := base>>PageShift, (base+size-1)>>PageShift
	for pn := first; ; pn++ {
		if _, ok := r.pages[pn]; !ok {
			r.pages[pn] = make([]byte, PageSize)
		}
		if pn == last {
			break
		}
	}
}

func (r *refMemory) unmapRegion(base, size uint32) {
	if size == 0 {
		return
	}
	first, last := base>>PageShift, (base+size-1)>>PageShift
	for pn := first; ; pn++ {
		delete(r.pages, pn)
		if pn == last {
			break
		}
	}
}

func (r *refMemory) read(addr uint32) (byte, bool) {
	p, ok := r.pages[addr>>PageShift]
	if !ok {
		return 0, false
	}
	return p[addr&(PageSize-1)], true
}

func (r *refMemory) write(addr uint32, v byte) bool {
	p, ok := r.pages[addr>>PageShift]
	if !ok {
		return false
	}
	p[addr&(PageSize-1)] = v
	return true
}

func (r *refMemory) writeBytes(addr uint32, data []byte) bool {
	for i, b := range data {
		if !r.write(addr+uint32(i), b) {
			return false
		}
	}
	return true
}

func (r *refMemory) readBytes(addr uint32, n int) ([]byte, bool) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, ok := r.read(addr + uint32(i))
		if !ok {
			return nil, false
		}
		out[i] = b
	}
	return out, true
}

func (r *refMemory) readCString(addr uint32, max int) (string, bool) {
	var out []byte
	for i := 0; i < max; i++ {
		b, ok := r.read(addr + uint32(i))
		if !ok {
			return "", false
		}
		if b == 0 {
			return string(out), true
		}
		out = append(out, b)
	}
	return string(out), true
}

func (r *refMemory) snapshot() *refMemory {
	c := newRefMemory()
	for pn, p := range r.pages {
		np := make([]byte, PageSize)
		copy(np, p)
		c.pages[pn] = np
	}
	return c
}

// diffCheck compares the full observable state of a Memory against the
// reference: page count and every mapped byte (probed at page edges and a
// random interior sample, which catches both mapping and content bugs
// without an O(pages*PageSize) scan per step).
func diffCheck(t *testing.T, tag string, m *Memory, ref *refMemory, rng *rand.Rand) {
	t.Helper()
	if m.MappedPages() != len(ref.pages) {
		t.Fatalf("%s: mapped pages = %d, reference has %d", tag, m.MappedPages(), len(ref.pages))
	}
	for pn := range ref.pages {
		base := pn << PageShift
		offs := []uint32{0, PageSize - 1, rng.Uint32() % PageSize}
		for _, off := range offs {
			got, ok := m.ReadU8(base + off)
			want, _ := ref.read(base + off)
			if !ok || got != want {
				t.Fatalf("%s: byte %#x = %#x (ok=%v), reference %#x", tag, base+off, got, ok, want)
			}
		}
	}
}

// fullDiffCheck compares every mapped byte.
func fullDiffCheck(t *testing.T, tag string, m *Memory, ref *refMemory) {
	t.Helper()
	if m.MappedPages() != len(ref.pages) {
		t.Fatalf("%s: mapped pages = %d, reference has %d", tag, m.MappedPages(), len(ref.pages))
	}
	for pn, want := range ref.pages {
		base := pn << PageShift
		got, ok := m.ReadBytes(base, PageSize)
		if !ok {
			t.Fatalf("%s: page %#x unreadable", tag, base)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: byte %#x = %#x, reference %#x", tag, base+uint32(i), got[i], want[i])
			}
		}
	}
}

// TestMemoryDifferentialRandomOps drives long random sequences of
// MapRegion/UnmapRegion/writes/reads/Snapshot/SnapshotFull/Restore/Fork
// against the naive reference memory, proving the dirty-tracking and
// bulk-I/O fast paths observationally identical to byte-at-a-time semantics.
func TestMemoryDifferentialRandomOps(t *testing.T) {
	const (
		arenaBase  = uint32(0x10000)
		arenaPages = 8
		arenaSize  = uint32(arenaPages * PageSize)
	)
	type snapPair struct {
		snap *MemSnapshot
		ref  *refMemory
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := NewMemory()
			ref := newRefMemory()
			var snaps []snapPair
			randAddr := func() uint32 { return arenaBase + rng.Uint32()%arenaSize }

			for step := 0; step < 3000; step++ {
				tag := fmt.Sprintf("seed %d step %d", seed, step)
				switch op := rng.Intn(100); {
				case op < 10: // map
					base, size := randAddr(), rng.Uint32()%(2*PageSize)+1
					m.MapRegion(base, size)
					ref.mapRegion(base, size)
				case op < 14: // unmap
					base, size := randAddr(), rng.Uint32()%(2*PageSize)+1
					m.UnmapRegion(base, size)
					ref.unmapRegion(base, size)
				case op < 40: // single-byte write
					addr, v := randAddr(), byte(rng.Intn(256))
					if got, want := m.WriteU8(addr, v), ref.write(addr, v); got != want {
						t.Fatalf("%s: WriteU8(%#x) = %v, reference %v", tag, addr, got, want)
					}
				case op < 55: // bulk write, often page-crossing
					addr := randAddr()
					data := make([]byte, rng.Intn(int(2*PageSize)+300))
					rng.Read(data)
					if got, want := m.WriteBytes(addr, data), ref.writeBytes(addr, data); got != want {
						t.Fatalf("%s: WriteBytes(%#x, %d) = %v, reference %v", tag, addr, len(data), got, want)
					}
				case op < 65: // bulk read
					addr := randAddr()
					n := rng.Intn(int(2*PageSize) + 300)
					got, gok := m.ReadBytes(addr, n)
					want, wok := ref.readBytes(addr, n)
					if gok != wok {
						t.Fatalf("%s: ReadBytes(%#x, %d) ok=%v, reference ok=%v", tag, addr, n, gok, wok)
					}
					if gok && string(got) != string(want) {
						t.Fatalf("%s: ReadBytes(%#x, %d) differs from reference", tag, addr, n)
					}
				case op < 72: // C string read
					addr := randAddr()
					max := rng.Intn(int(PageSize) * 2)
					got, gok := m.ReadCString(addr, max)
					want, wok := ref.readCString(addr, max)
					if gok != wok || got != want {
						t.Fatalf("%s: ReadCString(%#x, %d) = %q/%v, reference %q/%v", tag, addr, max, got, gok, want, wok)
					}
				case op < 82: // snapshot (sometimes the full-scan reference path)
					var s *MemSnapshot
					if rng.Intn(4) == 0 {
						s = m.SnapshotFull()
					} else {
						s = m.Snapshot()
					}
					snaps = append(snaps, snapPair{snap: s, ref: ref.snapshot()})
					if len(snaps) > 24 {
						snaps = snaps[1:]
					}
				case op < 90: // restore a random retained snapshot
					if len(snaps) > 0 {
						pair := snaps[rng.Intn(len(snaps))]
						m.Restore(pair.snap)
						ref = pair.ref.snapshot()
					}
				default: // fork a random retained snapshot and scribble on it
					if len(snaps) > 0 {
						pair := snaps[rng.Intn(len(snaps))]
						fork := pair.snap.Fork()
						fullDiffCheck(t, tag+" fork", fork, pair.ref)
						for i := 0; i < 16; i++ {
							fork.WriteU8(randAddr(), byte(rng.Intn(256)))
						}
						// The fork's writes must not leak into the live
						// memory, the snapshot, or later forks.
						fullDiffCheck(t, tag+" fork-isolated", pair.snap.Fork(), pair.ref)
					}
				}
				if step%257 == 0 {
					diffCheck(t, tag, m, ref, rng)
				}
			}
			fullDiffCheck(t, fmt.Sprintf("seed %d final", seed), m, ref)
			for i, pair := range snaps {
				fullDiffCheck(t, fmt.Sprintf("seed %d snapshot %d", seed, i), pair.snap.Fork(), pair.ref)
			}
		})
	}
}

// TestMemoryDifferentialSubPageRuns drives the workload shape the sub-page
// dirty-run capture exists for — long sequences of small scattered writes
// with frequent snapshots, so nearly every delta in the chain is a run
// patch — against the byte-at-a-time reference model: every retained
// snapshot (and every fork of it) must stay byte-identical to the
// reference's deep copy, across restores, unmaps and remaps. It also pins
// the capture accounting: across each run the patched snapshots must
// capture strictly fewer bytes than page-granular capture would charge.
func TestMemoryDifferentialSubPageRuns(t *testing.T) {
	const (
		arenaBase  = uint32(0x20000)
		arenaPages = 10
		arenaSize  = uint32(arenaPages * PageSize)
	)
	type snapPair struct {
		snap *MemSnapshot
		ref  *refMemory
	}
	for seed := int64(11); seed <= 14; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := NewMemory()
			ref := newRefMemory()
			m.MapRegion(arenaBase, arenaSize)
			ref.mapRegion(arenaBase, arenaSize)
			m.Snapshot() // root epoch: later snapshots chain patches onto it
			var snaps []snapPair
			capturedBytes, pageGranularBytes := 0, 0
			randAddr := func() uint32 { return arenaBase + rng.Uint32()%arenaSize }

			for step := 0; step < 4000; step++ {
				tag := fmt.Sprintf("seed %d step %d", seed, step)
				switch op := rng.Intn(100); {
				case op < 70: // small scattered write, 1-16 bytes
					addr := randAddr()
					data := make([]byte, 1+rng.Intn(16))
					rng.Read(data)
					if got, want := m.WriteBytes(addr, data), ref.writeBytes(addr, data); got != want {
						t.Fatalf("%s: WriteBytes(%#x, %d) = %v, reference %v", tag, addr, len(data), got, want)
					}
				case op < 74: // occasional large run, crossing the patch cutoff
					addr := arenaBase + (rng.Uint32()%arenaSize)&^(PageSize-1)
					data := make([]byte, patchMaxRunBytes+rng.Intn(PageSize))
					rng.Read(data)
					if got, want := m.WriteBytes(addr, data), ref.writeBytes(addr, data); got != want {
						t.Fatalf("%s: bulk WriteBytes = %v, reference %v", tag, got, want)
					}
				case op < 78: // unmap + remap: the fresh page must not be patched
					base := arenaBase + (rng.Uint32()%arenaSize)&^(PageSize-1)
					m.UnmapRegion(base, PageSize)
					ref.unmapRegion(base, PageSize)
					m.MapRegion(base, PageSize)
					ref.mapRegion(base, PageSize)
				case op < 92: // snapshot: the steady state of a checkpointing guest
					dirty := m.DirtyPages()
					s := m.Snapshot()
					capturedBytes += s.CapturedBytes()
					pageGranularBytes += dirty * PageSize
					snaps = append(snaps, snapPair{snap: s, ref: ref.snapshot()})
					if len(snaps) > 20 {
						snaps = snaps[1:]
					}
				default: // restore a retained patch-chained snapshot
					if len(snaps) > 0 {
						pair := snaps[rng.Intn(len(snaps))]
						m.Restore(pair.snap)
						ref = pair.ref.snapshot()
					}
				}
				if step%251 == 0 {
					diffCheck(t, tag, m, ref, rng)
				}
			}
			fullDiffCheck(t, fmt.Sprintf("seed %d final", seed), m, ref)
			for i, pair := range snaps {
				fullDiffCheck(t, fmt.Sprintf("seed %d snapshot %d", seed, i), pair.snap.Fork(), pair.ref)
			}
			if capturedBytes >= pageGranularBytes {
				t.Errorf("seed %d: sub-page capture %d bytes not below page-granular %d bytes",
					seed, capturedBytes, pageGranularBytes)
			}
		})
	}
}

// TestMemoryDifferentialAlternatingEndWriters drives the workload shape that
// defeated the single-watermark tracker: every epoch touches a few bytes at
// both the header and the trailer of each hot page (plus occasional random
// interior scribbles), then checkpoints. With one [lo,hi) run the span covers
// nearly the whole page and capture regresses to whole-page freezing; the
// run-list tracker must keep every such snapshot sub-page while every
// retained snapshot (and fork) stays byte-identical to the reference model.
func TestMemoryDifferentialAlternatingEndWriters(t *testing.T) {
	const (
		arenaBase  = uint32(0x30000)
		arenaPages = 6
		arenaSize  = uint32(arenaPages * PageSize)
	)
	type snapPair struct {
		snap *MemSnapshot
		ref  *refMemory
	}
	for seed := int64(21); seed <= 23; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := NewMemory()
			ref := newRefMemory()
			m.MapRegion(arenaBase, arenaSize)
			ref.mapRegion(arenaBase, arenaSize)
			m.Snapshot() // root epoch
			var snaps []snapPair
			wholePageFallbacks, capturedBytes, pageGranularBytes := 0, 0, 0

			for epoch := 0; epoch < 300; epoch++ {
				tag := fmt.Sprintf("seed %d epoch %d", seed, epoch)
				// Header + trailer writes on every page, the paper's
				// "length field up front, checksum at the end" shape.
				for pg := uint32(0); pg < arenaPages; pg++ {
					base := arenaBase + pg*PageSize
					hdr := make([]byte, 2+rng.Intn(12))
					rng.Read(hdr)
					if got, want := m.WriteBytes(base, hdr), ref.writeBytes(base, hdr); got != want {
						t.Fatalf("%s: header WriteBytes = %v, reference %v", tag, got, want)
					}
					trl := make([]byte, 2+rng.Intn(12))
					rng.Read(trl)
					taddr := base + PageSize - uint32(len(trl))
					if got, want := m.WriteBytes(taddr, trl), ref.writeBytes(taddr, trl); got != want {
						t.Fatalf("%s: trailer WriteBytes = %v, reference %v", tag, got, want)
					}
					// Sometimes a third interior touch, still sub-page.
					if rng.Intn(3) == 0 {
						addr := base + PageSize/4 + rng.Uint32()%(PageSize/2)
						v := byte(rng.Intn(256))
						m.WriteU8(addr, v)
						ref.write(addr, v)
					}
				}
				dirty := m.DirtyPages()
				s := m.Snapshot()
				capturedBytes += s.CapturedBytes()
				pageGranularBytes += dirty * PageSize
				if s.CapturedBytes() >= dirty*PageSize {
					wholePageFallbacks++
				}
				snaps = append(snaps, snapPair{snap: s, ref: ref.snapshot()})
				if len(snaps) > 12 {
					snaps = snaps[1:]
				}
				switch {
				case epoch%37 == 17 && len(snaps) > 0: // rollback, as recovery does
					pair := snaps[rng.Intn(len(snaps))]
					m.Restore(pair.snap)
					ref = pair.ref.snapshot()
				case epoch%53 == 29: // remap one page: fresh page must not be patched
					base := arenaBase + (rng.Uint32()%arenaSize)&^(PageSize-1)
					m.UnmapRegion(base, PageSize)
					ref.unmapRegion(base, PageSize)
					m.MapRegion(base, PageSize)
					ref.mapRegion(base, PageSize)
				}
				if epoch%23 == 0 {
					diffCheck(t, tag, m, ref, rng)
				}
			}
			fullDiffCheck(t, fmt.Sprintf("seed %d final", seed), m, ref)
			for i, pair := range snaps {
				fullDiffCheck(t, fmt.Sprintf("seed %d snapshot %d", seed, i), pair.snap.Fork(), pair.ref)
			}
			if wholePageFallbacks != 0 {
				t.Errorf("seed %d: %d snapshots fell back to whole-page capture; alternating-end writers must stay sub-page", seed, wholePageFallbacks)
			}
			// The point of the fix: capture must be a small fraction of
			// page-granular, not marginally below it.
			if capturedBytes*10 >= pageGranularBytes {
				t.Errorf("seed %d: sub-page capture %d bytes not <10%% of page-granular %d bytes",
					seed, capturedBytes, pageGranularBytes)
			}
		})
	}
}

// TestMemoryDifferentialSubPageConcurrentForks forks a snapshot whose delta
// chain is built almost entirely from sub-page run patches, from concurrent
// goroutines (meaningful under -race): each fork scribbles over the shared
// reconstructed pages while comparing against its own reference copy, and
// the snapshot itself must come out untouched.
func TestMemoryDifferentialSubPageConcurrentForks(t *testing.T) {
	const arenaBase = uint32(0x80000)
	const arenaPages = 8
	rng := rand.New(rand.NewSource(7))
	m := NewMemory()
	ref := newRefMemory()
	m.MapRegion(arenaBase, arenaPages*PageSize)
	ref.mapRegion(arenaBase, arenaPages*PageSize)
	seedData := make([]byte, arenaPages*PageSize)
	rng.Read(seedData)
	m.WriteBytes(arenaBase, seedData)
	ref.writeBytes(arenaBase, seedData)
	m.Snapshot()
	// Several epochs of scattered small writes: every delta is a run patch,
	// so the snapshot under test reconstructs its pages through the patch
	// chain when forked.
	var snap *MemSnapshot
	for epoch := 0; epoch < 6; epoch++ {
		for w := 0; w < 32; w++ {
			addr := arenaBase + rng.Uint32()%(arenaPages*PageSize-8)
			data := []byte{byte(epoch), byte(w), 0xA5}
			m.WriteBytes(addr, data)
			ref.writeBytes(addr, data)
		}
		snap = m.Snapshot()
	}
	snapRef := ref.snapshot()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for f := 0; f < 8; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + f)))
			fork := snap.Fork()
			local := snapRef.snapshot()
			for i := 0; i < 3000; i++ {
				addr := arenaBase + rng.Uint32()%(arenaPages*PageSize)
				if rng.Intn(2) == 0 {
					v := byte(rng.Intn(256))
					fork.WriteU8(addr, v)
					local.write(addr, v)
				} else {
					got, gok := fork.ReadU8(addr)
					want, wok := local.read(addr)
					if gok != wok || got != want {
						errs <- fmt.Errorf("fork %d: byte %#x = %#x/%v, reference %#x/%v", f, addr, got, gok, want, wok)
						return
					}
				}
			}
		}(f)
	}
	// The origin keeps writing small runs (and checkpointing) concurrently.
	for i := 0; i < 2000; i++ {
		m.WriteU8(arenaBase+rng.Uint32()%(arenaPages*PageSize), 0xEE)
		if i%257 == 0 {
			m.Snapshot()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	fullDiffCheck(t, "patch-chained snapshot after concurrent forks", snap.Fork(), snapRef)
}

// TestMemoryDifferentialConcurrentForks checks COW aliasing across forks
// running on concurrent goroutines (meaningful under -race): every fork of
// one snapshot scribbles over the shared pages while comparing itself
// against its own private reference copy, and the snapshot itself must come
// out untouched.
func TestMemoryDifferentialConcurrentForks(t *testing.T) {
	const arenaBase = uint32(0x40000)
	const arenaPages = 12
	rng := rand.New(rand.NewSource(99))
	m := NewMemory()
	ref := newRefMemory()
	m.MapRegion(arenaBase, arenaPages*PageSize)
	ref.mapRegion(arenaBase, arenaPages*PageSize)
	seedData := make([]byte, arenaPages*PageSize)
	rng.Read(seedData)
	m.WriteBytes(arenaBase, seedData)
	ref.writeBytes(arenaBase, seedData)
	// A couple of extra snapshot epochs so the snapshot under test is a
	// chained delta, not a flat root.
	m.Snapshot()
	m.WriteBytes(arenaBase+5*PageSize, []byte("epoch two"))
	ref.writeBytes(arenaBase+5*PageSize, []byte("epoch two"))
	snap := m.Snapshot()
	snapRef := ref.snapshot()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for f := 0; f < 8; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + f)))
			fork := snap.Fork()
			local := snapRef.snapshot()
			for i := 0; i < 4000; i++ {
				addr := arenaBase + rng.Uint32()%(arenaPages*PageSize)
				if rng.Intn(2) == 0 {
					v := byte(rng.Intn(256))
					fork.WriteU8(addr, v)
					local.write(addr, v)
				} else {
					got, gok := fork.ReadU8(addr)
					want, wok := local.read(addr)
					if gok != wok || got != want {
						errs <- fmt.Errorf("fork %d: byte %#x = %#x/%v, reference %#x/%v", f, addr, got, gok, want, wok)
						return
					}
				}
			}
		}(f)
	}
	// The origin memory keeps mutating its own COW view concurrently.
	for i := 0; i < 4000; i++ {
		m.WriteU8(arenaBase+rng.Uint32()%(arenaPages*PageSize), 0xEE)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	fullDiffCheck(t, "snapshot after concurrent forks", snap.Fork(), snapRef)
}
