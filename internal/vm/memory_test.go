package vm

import (
	"testing"
	"testing/quick"
)

func TestMemoryUnmappedAccess(t *testing.T) {
	m := NewMemory()
	if _, ok := m.ReadU8(0x1000); ok {
		t.Error("read of unmapped page should fail")
	}
	if m.WriteU8(0x1000, 1) {
		t.Error("write to unmapped page should fail")
	}
	if _, ok := m.ReadWord(0x1000); ok {
		t.Error("word read of unmapped page should fail")
	}
	if m.WriteWord(0x1000, 1) {
		t.Error("word write to unmapped page should fail")
	}
}

func TestMemoryMapAndRW(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, 2*PageSize)
	if !m.IsMapped(0x1000) || !m.IsMapped(0x1000+PageSize) {
		t.Fatal("pages not mapped")
	}
	if m.IsMapped(0x1000 + 2*PageSize) {
		t.Fatal("page beyond region should not be mapped")
	}
	if !m.WriteU8(0x1234, 0xAB) {
		t.Fatal("write failed")
	}
	if b, _ := m.ReadU8(0x1234); b != 0xAB {
		t.Errorf("read back %#x, want 0xAB", b)
	}
	if !m.WriteWord(0x1500, 0xDEADBEEF) {
		t.Fatal("word write failed")
	}
	if w, _ := m.ReadWord(0x1500); w != 0xDEADBEEF {
		t.Errorf("word read back %#x", w)
	}
}

func TestMemoryWordLittleEndian(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x2000, PageSize)
	m.WriteWord(0x2000, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if b, _ := m.ReadU8(0x2000 + uint32(i)); b != want {
			t.Errorf("byte %d = %d, want %d", i, b, want)
		}
	}
}

func TestMemoryWordSpanningPages(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, 2*PageSize)
	addr := uint32(0x1000 + PageSize - 2)
	if !m.WriteWord(addr, 0xCAFEBABE) {
		t.Fatal("cross-page word write failed")
	}
	if w, ok := m.ReadWord(addr); !ok || w != 0xCAFEBABE {
		t.Errorf("cross-page word read = %#x, ok=%v", w, ok)
	}
}

func TestMemoryBytesAndCString(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x3000, PageSize)
	if !m.WriteBytes(0x3000, []byte("hello\x00world")) {
		t.Fatal("WriteBytes failed")
	}
	bs, ok := m.ReadBytes(0x3000, 5)
	if !ok || string(bs) != "hello" {
		t.Errorf("ReadBytes = %q", bs)
	}
	s, ok := m.ReadCString(0x3000, 64)
	if !ok || s != "hello" {
		t.Errorf("ReadCString = %q", s)
	}
	if _, ok := m.ReadBytes(0x3000+PageSize-2, 8); ok {
		t.Error("ReadBytes crossing into unmapped memory should fail")
	}
}

func TestMemoryUnmapRegion(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x4000, 2*PageSize)
	m.UnmapRegion(0x4000, PageSize)
	if m.IsMapped(0x4000) {
		t.Error("page should be unmapped")
	}
	if !m.IsMapped(0x4000 + PageSize) {
		t.Error("second page should remain mapped")
	}
}

func TestMemorySnapshotCopyOnWrite(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, PageSize)
	m.WriteU8(0x1000, 1)

	snap := m.Snapshot()
	if m.CopyOnWritePending() == 0 {
		t.Error("snapshot should leave pages in shared state")
	}
	// Mutate live memory after the snapshot.
	m.WriteU8(0x1000, 2)
	if m.CopyOnWritePending() != 0 {
		t.Error("write should have broken sharing for that page")
	}
	if b, _ := m.ReadU8(0x1000); b != 2 {
		t.Errorf("live value = %d, want 2", b)
	}

	// Restore: the pre-write value comes back.
	m.Restore(snap)
	if b, _ := m.ReadU8(0x1000); b != 1 {
		t.Errorf("restored value = %d, want 1", b)
	}

	// The snapshot can be restored repeatedly.
	m.WriteU8(0x1000, 7)
	m.Restore(snap)
	if b, _ := m.ReadU8(0x1000); b != 1 {
		t.Errorf("second restore value = %d, want 1", b)
	}
}

func TestMemoryMultipleSnapshots(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, PageSize)
	m.WriteU8(0x1000, 10)
	s1 := m.Snapshot()
	m.WriteU8(0x1000, 20)
	s2 := m.Snapshot()
	m.WriteU8(0x1000, 30)

	m.Restore(s1)
	if b, _ := m.ReadU8(0x1000); b != 10 {
		t.Errorf("restore s1 = %d, want 10", b)
	}
	m.Restore(s2)
	if b, _ := m.ReadU8(0x1000); b != 20 {
		t.Errorf("restore s2 = %d, want 20", b)
	}
}

func TestMemorySnapshotNewPagesDisappearOnRestore(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, PageSize)
	snap := m.Snapshot()
	m.MapRegion(0x8000, PageSize)
	m.WriteU8(0x8000, 5)
	m.Restore(snap)
	if m.IsMapped(0x8000) {
		t.Error("pages mapped after the snapshot should vanish on restore")
	}
}

func TestMemoryMappedPageBasesSorted(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x9000, PageSize)
	m.MapRegion(0x1000, PageSize)
	m.MapRegion(0x5000, PageSize)
	bases := m.MappedPageBases()
	if len(bases) != 3 {
		t.Fatalf("got %d pages, want 3", len(bases))
	}
	for i := 1; i < len(bases); i++ {
		if bases[i-1] >= bases[i] {
			t.Errorf("bases not sorted: %v", bases)
		}
	}
}

// TestMemoryQuickReadBackWrites is a property test: any byte written to mapped
// memory reads back identically, and snapshots never observe later writes.
func TestMemoryQuickReadBackWrites(t *testing.T) {
	const base = uint32(0x10000)
	const size = uint32(4 * PageSize)
	prop := func(offsets []uint16, values []byte) bool {
		m := NewMemory()
		m.MapRegion(base, size)
		n := len(offsets)
		if len(values) < n {
			n = len(values)
		}
		written := make(map[uint32]byte)
		for i := 0; i < n; i++ {
			addr := base + uint32(offsets[i])%size
			if !m.WriteU8(addr, values[i]) {
				return false
			}
			written[addr] = values[i]
		}
		snap := m.Snapshot()
		// Overwrite everything after the snapshot.
		for addr := range written {
			m.WriteU8(addr, 0xFF)
		}
		m.Restore(snap)
		for addr, want := range written {
			if got, ok := m.ReadU8(addr); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemoryIncrementalSnapshotIsODirty(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x10000, 64*PageSize)
	s1 := m.Snapshot()
	if s1.DeltaPages() != 64 {
		t.Errorf("first snapshot delta = %d pages, want all 64", s1.DeltaPages())
	}
	// Steady state: two pages written -> two pages captured.
	m.WriteU8(0x10000, 1)
	m.WriteU8(0x10000+7*PageSize, 2)
	if m.DirtyPages() != 2 {
		t.Errorf("DirtyPages = %d, want 2", m.DirtyPages())
	}
	s2 := m.Snapshot()
	if s2.DeltaPages() != 2 {
		t.Errorf("steady snapshot delta = %d pages, want 2", s2.DeltaPages())
	}
	if s2.Pages() != 64 {
		t.Errorf("steady snapshot Pages = %d, want 64", s2.Pages())
	}
	if m.DirtyPages() != 0 {
		t.Errorf("DirtyPages after snapshot = %d, want 0", m.DirtyPages())
	}
	// The incremental snapshot still restores the complete image.
	m.WriteU8(0x10000, 99)
	m.Restore(s2)
	if b, _ := m.ReadU8(0x10000); b != 1 {
		t.Errorf("restored byte = %d, want 1", b)
	}
	if b, _ := m.ReadU8(0x10000 + 63*PageSize); b != 0 {
		t.Errorf("untouched page should restore to zero, got %d", b)
	}
}

func TestMemorySubPageRunCapture(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x10000, 8*PageSize)
	first := m.Snapshot()
	if got, want := first.CapturedBytes(), 8*PageSize; got != want {
		t.Errorf("first snapshot captured %d bytes, want all %d", got, want)
	}
	// Small scattered writes: the pages are frozen, so the writes clone them
	// (inParent), and the next snapshot captures only the runs.
	m.WriteBytes(0x10000+100, []byte{1, 2, 3, 4})
	m.WriteU8(0x10000+3*PageSize+9, 7)
	s2 := m.Snapshot()
	if got := s2.CapturedBytes(); got != 5 {
		t.Errorf("scattered snapshot captured %d bytes, want 5 (two runs)", got)
	}
	if got := s2.DeltaPages(); got != 2 {
		t.Errorf("scattered snapshot DeltaPages = %d, want 2", got)
	}
	// The patched pages stayed writable: the next epoch's runs are captured
	// against s2 without any whole-page COW clone in between.
	m.WriteBytes(0x10000+200, []byte{9, 9})
	s3 := m.Snapshot()
	if got := s3.CapturedBytes(); got != 2 {
		t.Errorf("second run snapshot captured %d bytes, want 2", got)
	}
	// Every chained snapshot restores its exact epoch content.
	if b, _ := s2.Fork().ReadU8(0x10000 + 100); b != 1 {
		t.Errorf("s2 fork byte = %d, want 1", b)
	}
	if b, _ := s2.Fork().ReadU8(0x10000 + 200); b != 0 {
		t.Errorf("s2 fork must not see the later run, got %d", b)
	}
	if b, _ := s3.Fork().ReadU8(0x10000 + 200); b != 9 {
		t.Errorf("s3 fork byte = %d, want 9", b)
	}
	if b, _ := s3.Fork().ReadU8(0x10000 + 3*PageSize + 9); b != 7 {
		t.Errorf("s3 fork must keep the earlier patch, got %d", b)
	}
}

func TestMemoryAlternatingEndWritesStaySubPage(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x10000, PageSize)
	m.Snapshot()
	// The carried-forward watermark bug: touching a page's header AND trailer
	// in one epoch spans nearly the whole page with a single [lo,hi) run and
	// regresses to whole-page freezing. The run list must capture the two
	// small spans instead, epoch after epoch.
	for epoch := 0; epoch < 4; epoch++ {
		m.WriteBytes(0x10000, []byte{byte(epoch), 1, 2, 3})            // header
		m.WriteBytes(0x10000+PageSize-8, []byte{4, 5, 6, byte(epoch)}) // trailer
		s := m.Snapshot()
		if got := s.CapturedBytes(); got != 8 {
			t.Fatalf("epoch %d: alternating-end snapshot captured %d bytes, want 8 (two 4-byte runs)", epoch, got)
		}
		f := s.Fork()
		if b, _ := f.ReadU8(0x10000); b != byte(epoch) {
			t.Errorf("epoch %d: header byte = %d, want %d", epoch, b, epoch)
		}
		if b, _ := f.ReadU8(0x10000 + PageSize - 5); b != byte(epoch) {
			t.Errorf("epoch %d: trailer byte = %d, want %d", epoch, b, epoch)
		}
	}
}

func TestMemoryRunListMergesAndFallsBack(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x10000, PageSize)
	m.Snapshot()
	// More disjoint spots than run slots: the extra writes merge into the
	// nearest run, so capture grows by the gaps but stays sub-page.
	offsets := []uint32{0, 1000, 2000, 3000, 4000}
	for _, off := range offsets {
		m.WriteU8(0x10000+off, 0xEE)
	}
	s := m.Snapshot()
	got := s.CapturedBytes()
	if got < len(offsets) || got > patchMaxRunBytes {
		t.Errorf("five-spot snapshot captured %d bytes, want within [%d, %d]", got, len(offsets), patchMaxRunBytes)
	}
	f := s.Fork()
	for _, off := range offsets {
		if b, _ := f.ReadU8(0x10000 + off); b != 0xEE {
			t.Errorf("restored byte at +%d = %#x, want 0xEE", off, b)
		}
	}
	// Adjacent and overlapping writes coalesce back into one run.
	m.WriteBytes(0x10000+100, []byte{1, 1})
	m.WriteBytes(0x10000+104, []byte{2, 2})
	m.WriteBytes(0x10000+102, []byte{3, 3}) // bridges the two runs
	s2 := m.Snapshot()
	if got := s2.CapturedBytes(); got != 6 {
		t.Errorf("bridged runs captured %d bytes, want one 6-byte run", got)
	}
}

func TestMemoryLargeRunFallsBackToWholePage(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x10000, PageSize)
	m.Snapshot()
	// A run beyond the patch cutoff freezes the page whole, like the
	// pre-sub-page design (zero copy now, full COW clone on the next write).
	big := make([]byte, patchMaxRunBytes+1)
	for i := range big {
		big[i] = byte(i)
	}
	m.WriteBytes(0x10000, big)
	s := m.Snapshot()
	if got := s.CapturedBytes(); got != PageSize {
		t.Errorf("large-run snapshot captured %d bytes, want a whole page (%d)", got, PageSize)
	}
	if b, _ := s.Fork().ReadU8(0x10000 + 1); b != 1 {
		t.Errorf("restored byte = %d, want 1", b)
	}
}

func TestMemoryRemappedPageIsNotPatched(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x10000, PageSize)
	m.WriteU8(0x10000, 0xAA)
	m.Snapshot()
	// Unmap + remap within one epoch: the fresh zero page has no parent
	// version (the parent's content differs), so it must be captured whole.
	m.UnmapRegion(0x10000, PageSize)
	m.MapRegion(0x10000, PageSize)
	m.WriteU8(0x10000+5, 1)
	s := m.Snapshot()
	if got := s.CapturedBytes(); got != PageSize {
		t.Errorf("remapped page captured %d bytes, want a whole page", got)
	}
	f := s.Fork()
	if b, _ := f.ReadU8(0x10000); b != 0 {
		t.Errorf("remapped page byte 0 = %#x, want 0 (not the pre-unmap 0xAA)", b)
	}
	if b, _ := f.ReadU8(0x10000 + 5); b != 1 {
		t.Errorf("remapped page byte 5 = %d, want 1", b)
	}
}

func TestMemoryNoopSnapshotIsFree(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, 4*PageSize)
	s1 := m.Snapshot()
	s2 := m.Snapshot()
	if s1 != s2 {
		t.Error("a snapshot with nothing dirtied should reuse the previous snapshot")
	}
	m.WriteU8(0x1000, 1)
	if s3 := m.Snapshot(); s3 == s2 {
		t.Error("a snapshot after a write must be distinct")
	}
}

func TestMemorySnapshotFullMatchesIncremental(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, 4*PageSize)
	m.WriteBytes(0x1000, []byte{1, 2, 3})
	m.Snapshot()
	m.WriteU8(0x2000, 42)
	inc := m.Snapshot()
	m.WriteU8(0x2000, 43)
	full := m.SnapshotFull()
	if got, _ := inc.Fork().ReadU8(0x2000); got != 42 {
		t.Errorf("incremental snapshot byte = %d, want 42", got)
	}
	if got, _ := full.Fork().ReadU8(0x2000); got != 43 {
		t.Errorf("full snapshot byte = %d, want 43", got)
	}
	if inc.Pages() != full.Pages() {
		t.Errorf("page counts differ: incremental %d, full %d", inc.Pages(), full.Pages())
	}
}

func TestMemoryUnmapAcrossSnapshots(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, 2*PageSize)
	m.WriteU8(0x1000, 7)
	s1 := m.Snapshot()
	m.UnmapRegion(0x1000, PageSize)
	s2 := m.Snapshot()
	if s2.Pages() != 1 {
		t.Errorf("post-unmap snapshot Pages = %d, want 1", s2.Pages())
	}
	m.Restore(s1)
	if b, ok := m.ReadU8(0x1000); !ok || b != 7 {
		t.Errorf("restore s1: byte = %d (ok=%v), want 7", b, ok)
	}
	m.Restore(s2)
	if m.IsMapped(0x1000) {
		t.Error("restore s2: unmapped page came back")
	}
	if !m.IsMapped(0x1000 + PageSize) {
		t.Error("restore s2: second page should remain mapped")
	}
	// Remap after restore: page must read as zeroed even though an old
	// snapshot still holds the previous contents.
	m.MapRegion(0x1000, PageSize)
	if b, _ := m.ReadU8(0x1000); b != 0 {
		t.Errorf("remapped page reads %d, want 0", b)
	}
}

func TestMemorySnapshotChainDeepRestore(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, PageSize)
	var snaps []*MemSnapshot
	for i := 0; i < 3*maxSnapChainDepth; i++ {
		m.WriteU8(0x1000, byte(i))
		snaps = append(snaps, m.Snapshot())
	}
	for i, s := range snaps {
		f := s.Fork()
		if b, _ := f.ReadU8(0x1000); b != byte(i) {
			t.Fatalf("snapshot %d forks byte %d, want %d", i, b, byte(i))
		}
	}
}

func TestPageHelpers(t *testing.T) {
	if pageNum(0) != 0 || pageNum(PageSize) != 1 || pageNum(PageSize-1) != 0 {
		t.Error("pageNum incorrect")
	}
	if pageOff(PageSize+5) != 5 {
		t.Error("pageOff incorrect")
	}
	if pageBase(PageSize+5) != PageSize {
		t.Error("pageBase incorrect")
	}
}

func TestMemoryDump(t *testing.T) {
	m := NewMemory()
	if s := m.Dump(0x1000, 4); s == "" {
		t.Error("dump of unmapped memory should describe the situation")
	}
	m.MapRegion(0x1000, PageSize)
	m.WriteBytes(0x1000, []byte{1, 2, 3, 4})
	if s := m.Dump(0x1000, 4); s != "01 02 03 04" {
		t.Errorf("dump = %q", s)
	}
}
