package vm

import (
	"testing"
	"testing/quick"
)

func TestMemoryUnmappedAccess(t *testing.T) {
	m := NewMemory()
	if _, ok := m.ReadU8(0x1000); ok {
		t.Error("read of unmapped page should fail")
	}
	if m.WriteU8(0x1000, 1) {
		t.Error("write to unmapped page should fail")
	}
	if _, ok := m.ReadWord(0x1000); ok {
		t.Error("word read of unmapped page should fail")
	}
	if m.WriteWord(0x1000, 1) {
		t.Error("word write to unmapped page should fail")
	}
}

func TestMemoryMapAndRW(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, 2*PageSize)
	if !m.IsMapped(0x1000) || !m.IsMapped(0x1000+PageSize) {
		t.Fatal("pages not mapped")
	}
	if m.IsMapped(0x1000 + 2*PageSize) {
		t.Fatal("page beyond region should not be mapped")
	}
	if !m.WriteU8(0x1234, 0xAB) {
		t.Fatal("write failed")
	}
	if b, _ := m.ReadU8(0x1234); b != 0xAB {
		t.Errorf("read back %#x, want 0xAB", b)
	}
	if !m.WriteWord(0x1500, 0xDEADBEEF) {
		t.Fatal("word write failed")
	}
	if w, _ := m.ReadWord(0x1500); w != 0xDEADBEEF {
		t.Errorf("word read back %#x", w)
	}
}

func TestMemoryWordLittleEndian(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x2000, PageSize)
	m.WriteWord(0x2000, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if b, _ := m.ReadU8(0x2000 + uint32(i)); b != want {
			t.Errorf("byte %d = %d, want %d", i, b, want)
		}
	}
}

func TestMemoryWordSpanningPages(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, 2*PageSize)
	addr := uint32(0x1000 + PageSize - 2)
	if !m.WriteWord(addr, 0xCAFEBABE) {
		t.Fatal("cross-page word write failed")
	}
	if w, ok := m.ReadWord(addr); !ok || w != 0xCAFEBABE {
		t.Errorf("cross-page word read = %#x, ok=%v", w, ok)
	}
}

func TestMemoryBytesAndCString(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x3000, PageSize)
	if !m.WriteBytes(0x3000, []byte("hello\x00world")) {
		t.Fatal("WriteBytes failed")
	}
	bs, ok := m.ReadBytes(0x3000, 5)
	if !ok || string(bs) != "hello" {
		t.Errorf("ReadBytes = %q", bs)
	}
	s, ok := m.ReadCString(0x3000, 64)
	if !ok || s != "hello" {
		t.Errorf("ReadCString = %q", s)
	}
	if _, ok := m.ReadBytes(0x3000+PageSize-2, 8); ok {
		t.Error("ReadBytes crossing into unmapped memory should fail")
	}
}

func TestMemoryUnmapRegion(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x4000, 2*PageSize)
	m.UnmapRegion(0x4000, PageSize)
	if m.IsMapped(0x4000) {
		t.Error("page should be unmapped")
	}
	if !m.IsMapped(0x4000 + PageSize) {
		t.Error("second page should remain mapped")
	}
}

func TestMemorySnapshotCopyOnWrite(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, PageSize)
	m.WriteU8(0x1000, 1)

	snap := m.Snapshot()
	if m.CopyOnWritePending() == 0 {
		t.Error("snapshot should leave pages in shared state")
	}
	// Mutate live memory after the snapshot.
	m.WriteU8(0x1000, 2)
	if m.CopyOnWritePending() != 0 {
		t.Error("write should have broken sharing for that page")
	}
	if b, _ := m.ReadU8(0x1000); b != 2 {
		t.Errorf("live value = %d, want 2", b)
	}

	// Restore: the pre-write value comes back.
	m.Restore(snap)
	if b, _ := m.ReadU8(0x1000); b != 1 {
		t.Errorf("restored value = %d, want 1", b)
	}

	// The snapshot can be restored repeatedly.
	m.WriteU8(0x1000, 7)
	m.Restore(snap)
	if b, _ := m.ReadU8(0x1000); b != 1 {
		t.Errorf("second restore value = %d, want 1", b)
	}
}

func TestMemoryMultipleSnapshots(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, PageSize)
	m.WriteU8(0x1000, 10)
	s1 := m.Snapshot()
	m.WriteU8(0x1000, 20)
	s2 := m.Snapshot()
	m.WriteU8(0x1000, 30)

	m.Restore(s1)
	if b, _ := m.ReadU8(0x1000); b != 10 {
		t.Errorf("restore s1 = %d, want 10", b)
	}
	m.Restore(s2)
	if b, _ := m.ReadU8(0x1000); b != 20 {
		t.Errorf("restore s2 = %d, want 20", b)
	}
}

func TestMemorySnapshotNewPagesDisappearOnRestore(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, PageSize)
	snap := m.Snapshot()
	m.MapRegion(0x8000, PageSize)
	m.WriteU8(0x8000, 5)
	m.Restore(snap)
	if m.IsMapped(0x8000) {
		t.Error("pages mapped after the snapshot should vanish on restore")
	}
}

func TestMemoryMappedPageBasesSorted(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x9000, PageSize)
	m.MapRegion(0x1000, PageSize)
	m.MapRegion(0x5000, PageSize)
	bases := m.MappedPageBases()
	if len(bases) != 3 {
		t.Fatalf("got %d pages, want 3", len(bases))
	}
	for i := 1; i < len(bases); i++ {
		if bases[i-1] >= bases[i] {
			t.Errorf("bases not sorted: %v", bases)
		}
	}
}

// TestMemoryQuickReadBackWrites is a property test: any byte written to mapped
// memory reads back identically, and snapshots never observe later writes.
func TestMemoryQuickReadBackWrites(t *testing.T) {
	const base = uint32(0x10000)
	const size = uint32(4 * PageSize)
	prop := func(offsets []uint16, values []byte) bool {
		m := NewMemory()
		m.MapRegion(base, size)
		n := len(offsets)
		if len(values) < n {
			n = len(values)
		}
		written := make(map[uint32]byte)
		for i := 0; i < n; i++ {
			addr := base + uint32(offsets[i])%size
			if !m.WriteU8(addr, values[i]) {
				return false
			}
			written[addr] = values[i]
		}
		snap := m.Snapshot()
		// Overwrite everything after the snapshot.
		for addr := range written {
			m.WriteU8(addr, 0xFF)
		}
		m.Restore(snap)
		for addr, want := range written {
			if got, ok := m.ReadU8(addr); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPageHelpers(t *testing.T) {
	if pageNum(0) != 0 || pageNum(PageSize) != 1 || pageNum(PageSize-1) != 0 {
		t.Error("pageNum incorrect")
	}
	if pageOff(PageSize+5) != 5 {
		t.Error("pageOff incorrect")
	}
	if pageBase(PageSize+5) != PageSize {
		t.Error("pageBase incorrect")
	}
}

func TestMemoryDump(t *testing.T) {
	m := NewMemory()
	if s := m.Dump(0x1000, 4); s == "" {
		t.Error("dump of unmapped memory should describe the situation")
	}
	m.MapRegion(0x1000, PageSize)
	m.WriteBytes(0x1000, []byte{1, 2, 3, 4})
	if s := m.Dump(0x1000, 4); s != "01 02 03 04" {
		t.Errorf("dump = %q", s)
	}
}
