package vm_test

import (
	"testing"

	"sweeper/internal/asm"
	"sweeper/internal/vm"
)

// buildAndRun assembles a program, runs it to completion and returns the
// machine for inspection.
func buildAndRun(t *testing.T, build func(b *asm.Builder)) (*vm.Machine, *vm.StopInfo) {
	t.Helper()
	b := asm.New("test")
	build(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("assembling: %v", err)
	}
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	stop := m.Run(1_000_000)
	return m, stop
}

func TestArithmetic(t *testing.T) {
	m, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 10)
		b.MovI(vm.R2, 3)
		b.Mov(vm.R3, vm.R1)
		b.Add(vm.R3, vm.R2) // 13
		b.Mov(vm.R4, vm.R1)
		b.Sub(vm.R4, vm.R2) // 7
		b.Mov(vm.R5, vm.R1)
		b.Mul(vm.R5, vm.R2) // 30
		b.Mov(vm.R6, vm.R1)
		b.Div(vm.R6, vm.R2) // 3
		b.Mov(vm.R7, vm.R1)
		b.Mod(vm.R7, vm.R2) // 1
		b.Halt()
	})
	if stop.Reason != vm.StopHalt {
		t.Fatalf("stop = %v", stop.Reason)
	}
	want := map[vm.Reg]uint32{vm.R3: 13, vm.R4: 7, vm.R5: 30, vm.R6: 3, vm.R7: 1}
	for r, v := range want {
		if m.Regs[r] != v {
			t.Errorf("%v = %d, want %d", r, m.Regs[r], v)
		}
	}
}

func TestImmediateALUAndShifts(t *testing.T) {
	m, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 0x0F)
		b.OrI(vm.R1, 0xF0) // 0xFF
		b.MovI(vm.R2, 0xFF)
		b.AndI(vm.R2, 0x0F) // 0x0F
		b.MovI(vm.R3, 1)
		b.ShlI(vm.R3, 8) // 256
		b.MovI(vm.R4, 256)
		b.ShrI(vm.R4, 4) // 16
		b.MovI(vm.R5, 0xAA)
		b.XorI(vm.R5, 0xFF) // 0x55
		b.MovI(vm.R6, 7)
		b.AddI(vm.R6, -10) // -3 (wraps)
		b.Halt()
	})
	if stop.Reason != vm.StopHalt {
		t.Fatalf("stop = %v", stop.Reason)
	}
	if m.Regs[vm.R1] != 0xFF || m.Regs[vm.R2] != 0x0F || m.Regs[vm.R3] != 256 ||
		m.Regs[vm.R4] != 16 || m.Regs[vm.R5] != 0x55 {
		t.Errorf("regs = %v", m.Regs)
	}
	if int32(m.Regs[vm.R6]) != -3 {
		t.Errorf("R6 = %d, want -3", int32(m.Regs[vm.R6]))
	}
}

func TestConditionalBranches(t *testing.T) {
	// Compute max(17, 42) via a branch.
	m, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 17)
		b.MovI(vm.R2, 42)
		b.Cmp(vm.R1, vm.R2)
		b.Jge("take_r1")
		b.Mov(vm.R0, vm.R2)
		b.Halt()
		b.Label("take_r1")
		b.Mov(vm.R0, vm.R1)
		b.Halt()
	})
	if stop.Reason != vm.StopHalt || m.Regs[vm.R0] != 42 {
		t.Errorf("max = %d (stop %v), want 42", m.Regs[vm.R0], stop.Reason)
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..10 with a loop.
	m, _ := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 1) // i
		b.MovI(vm.R2, 0) // sum
		b.Label("loop")
		b.CmpI(vm.R1, 10)
		b.Jgt("done")
		b.Add(vm.R2, vm.R1)
		b.AddI(vm.R1, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Halt()
	})
	if m.Regs[vm.R2] != 55 {
		t.Errorf("sum = %d, want 55", m.Regs[vm.R2])
	}
}

func TestCallRetAndStack(t *testing.T) {
	m, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 5)
		b.Call("double")
		b.Mov(vm.R7, vm.R0)
		b.PushI(123)
		b.Pop(vm.R6)
		b.Halt()
		b.Func("double")
		b.Mov(vm.R0, vm.R1)
		b.AddI(vm.R0, 0)
		b.Add(vm.R0, vm.R1)
		b.Ret()
	})
	if stop.Reason != vm.StopHalt {
		t.Fatalf("stop = %v", stop.Reason)
	}
	if m.Regs[vm.R7] != 10 {
		t.Errorf("double(5) = %d", m.Regs[vm.R7])
	}
	if m.Regs[vm.R6] != 123 {
		t.Errorf("push/pop = %d", m.Regs[vm.R6])
	}
	if m.Regs[vm.SP] != vm.DefaultLayout().StackTop() {
		t.Errorf("stack not balanced: SP=%#x", m.Regs[vm.SP])
	}
}

func TestPrologueEpilogueLocals(t *testing.T) {
	m, _ := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 21)
		b.Call("f")
		b.Halt()
		b.Func("f")
		b.Prologue(16)
		b.StoreW(vm.BP, -4, vm.R1)
		b.LoadW(vm.R2, vm.BP, -4)
		b.Mov(vm.R0, vm.R2)
		b.Add(vm.R0, vm.R2)
		b.Epilogue()
	})
	if m.Regs[vm.R0] != 42 {
		t.Errorf("f(21) = %d, want 42", m.Regs[vm.R0])
	}
}

func TestDataSegmentAndRelocations(t *testing.T) {
	m, _ := buildAndRun(t, func(b *asm.Builder) {
		b.DataString("greeting", "hi")
		b.DataWord("answer", 42)
		b.Func("main")
		b.LoadDataAddr(vm.R1, "answer")
		b.LoadW(vm.R2, vm.R1, 0)
		b.LoadDataAddr(vm.R3, "greeting")
		b.LoadB(vm.R4, vm.R3, 0)
		b.Halt()
	})
	if m.Regs[vm.R2] != 42 {
		t.Errorf("data word = %d", m.Regs[vm.R2])
	}
	if m.Regs[vm.R4] != 'h' {
		t.Errorf("data byte = %c", m.Regs[vm.R4])
	}
}

func TestIndirectCallThroughCodeRelocation(t *testing.T) {
	m, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.LoadCodeAddr(vm.R5, "target")
		b.CallReg(vm.R5)
		b.Halt()
		b.Func("target")
		b.MovI(vm.R0, 99)
		b.Ret()
	})
	if stop.Reason != vm.StopHalt || m.Regs[vm.R0] != 99 {
		t.Errorf("indirect call result = %d, stop=%v", m.Regs[vm.R0], stop.Reason)
	}
}

func TestFaultDivisionByZero(t *testing.T) {
	_, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 1)
		b.MovI(vm.R2, 0)
		b.Div(vm.R1, vm.R2)
		b.Halt()
	})
	if stop.Reason != vm.StopFault || stop.Fault.Kind != vm.FaultDivZero {
		t.Errorf("stop = %v fault = %v", stop.Reason, stop.Fault)
	}
}

func TestFaultNullDereference(t *testing.T) {
	_, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 0)
		b.LoadW(vm.R2, vm.R1, 0)
		b.Halt()
	})
	if stop.Reason != vm.StopFault || stop.Fault.Kind != vm.FaultPage || stop.Fault.Addr != 0 {
		t.Errorf("fault = %v", stop.Fault)
	}
	if stop.Fault.IsWrite {
		t.Error("load fault should not be marked as a write")
	}
}

func TestFaultBadIndirectJump(t *testing.T) {
	_, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 0x12345678)
		b.JmpReg(vm.R1)
		b.Halt()
	})
	if stop.Reason != vm.StopFault || stop.Fault.Kind != vm.FaultBadPC {
		t.Errorf("fault = %v", stop.Fault)
	}
}

func TestFaultCorruptedReturnAddress(t *testing.T) {
	_, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.Call("victim")
		b.Halt()
		b.Func("victim")
		// Overwrite our own return address with garbage and return.
		b.MovI(vm.R1, 0x41414141)
		b.StoreW(vm.SP, 0, vm.R1)
		b.Ret()
	})
	if stop.Reason != vm.StopFault || stop.Fault.Kind != vm.FaultBadPC {
		t.Fatalf("fault = %v", stop.Fault)
	}
	if stop.Fault.Sym != "victim" {
		t.Errorf("fault attributed to %q, want victim", stop.Fault.Sym)
	}
	if stop.Fault.Addr != 0x41414141 {
		t.Errorf("fault address = %#x", stop.Fault.Addr)
	}
}

func TestInstructionBudget(t *testing.T) {
	b := asm.New("spin")
	b.Func("main")
	b.Label("loop")
	b.Jmp("loop")
	prog := b.MustBuild()
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := m.Run(1000)
	if stop.Reason != vm.StopInstrBudget {
		t.Errorf("stop = %v, want instruction budget", stop.Reason)
	}
	if m.InstrCount() == 0 || m.Cycles() == 0 {
		t.Error("instruction/cycle counters did not advance")
	}
}

func TestSyscallWithoutHandlerFaults(t *testing.T) {
	_, stop := buildAndRun(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R0, 1)
		b.Syscall()
		b.Halt()
	})
	if stop.Reason != vm.StopFault || stop.Fault.Kind != vm.FaultBadSyscall {
		t.Errorf("fault = %v", stop.Fault)
	}
}

// recordingTool counts hook invocations and optionally raises a violation.
type recordingTool struct {
	name       string
	instrs     int
	reads      int
	writes     int
	calls      int
	rets       int
	raiseAtPC  int
	raisedKind vm.ViolationKind
}

func (r *recordingTool) Name() string { return r.name }
func (r *recordingTool) BeforeInstr(m *vm.Machine, idx int, in *vm.Instr) {
	r.instrs++
	if r.raiseAtPC >= 0 && idx == r.raiseAtPC {
		m.RaiseViolation(&vm.Violation{Kind: r.raisedKind, Tool: r.name, Detail: "test"})
	}
}
func (r *recordingTool) OnMemRead(m *vm.Machine, idx int, addr uint32, size int, val uint32) {
	r.reads++
}
func (r *recordingTool) OnMemWrite(m *vm.Machine, idx int, addr uint32, size int, val uint32) {
	r.writes++
}
func (r *recordingTool) OnCall(m *vm.Machine, idx, target int, retAddr, retSlot uint32) { r.calls++ }
func (r *recordingTool) OnRet(m *vm.Machine, idx int, retAddr, retSlot uint32)          { r.rets++ }

func TestToolHooksDispatch(t *testing.T) {
	b := asm.New("hooks")
	b.Func("main")
	b.Call("f")
	b.Halt()
	b.Func("f")
	b.PushI(1)
	b.Pop(vm.R1)
	b.Ret()
	prog := b.MustBuild()
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tool := &recordingTool{name: "rec", raiseAtPC: -1}
	m.AttachTool(tool)
	baseCycles := m.Cycles()
	stop := m.Run(0)
	if stop.Reason != vm.StopHalt {
		t.Fatalf("stop = %v", stop.Reason)
	}
	if tool.instrs == 0 || tool.calls != 1 || tool.rets != 1 || tool.writes == 0 || tool.reads == 0 {
		t.Errorf("hook counts: %+v", tool)
	}
	if m.Cycles()-baseCycles < uint64(tool.instrs)*vm.CyclesPerHook {
		t.Error("hook dispatch should be charged to the virtual clock")
	}
	if got := m.Tools(); len(got) != 1 || got[0] != "rec" {
		t.Errorf("Tools() = %v", got)
	}
	if !m.DetachTool("rec") || m.DetachTool("rec") {
		t.Error("DetachTool bookkeeping wrong")
	}
}

func TestViolationPreventsInstruction(t *testing.T) {
	b := asm.New("viol")
	b.Func("main")
	b.MovI(vm.R1, 1)
	storeIdx := b.StoreW(vm.R1, 0, vm.R1) // would fault (address 1 unmapped) if executed
	b.Halt()
	prog := b.MustBuild()
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tool := &recordingTool{name: "guard", raiseAtPC: storeIdx, raisedKind: vm.ViolationBoundsCheck}
	m.AttachTool(tool)
	stop := m.Run(0)
	if stop.Reason != vm.StopViolation {
		t.Fatalf("stop = %v (fault=%v), want violation", stop.Reason, stop.Fault)
	}
	if stop.Violation.Kind != vm.ViolationBoundsCheck || stop.Violation.Tool != "guard" {
		t.Errorf("violation = %v", stop.Violation)
	}
}

type countingProbe struct {
	name  string
	fired int
}

func (p *countingProbe) Name() string                                 { return p.name }
func (p *countingProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) { p.fired++ }

func TestProbesFireOnlyAtTheirInstruction(t *testing.T) {
	b := asm.New("probe")
	b.Func("main")
	b.MovI(vm.R1, 0)
	b.Label("loop")
	target := b.AddI(vm.R1, 1)
	b.CmpI(vm.R1, 5)
	b.Jlt("loop")
	b.Halt()
	prog := b.MustBuild()
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &countingProbe{name: "p"}
	if err := m.AddProbe(target, p); err != nil {
		t.Fatal(err)
	}
	if err := m.AddProbe(len(prog.Code)+5, p); err == nil {
		t.Error("out-of-range probe should be rejected")
	}
	if m.ProbeCount() != 1 {
		t.Errorf("ProbeCount = %d", m.ProbeCount())
	}
	m.Run(0)
	if p.fired != 5 {
		t.Errorf("probe fired %d times, want 5", p.fired)
	}
	if n := m.RemoveProbes("p"); n != 1 {
		t.Errorf("RemoveProbes = %d", n)
	}
}

func TestRegSnapshotRoundTrip(t *testing.T) {
	b := asm.New("snap")
	b.Func("main")
	b.MovI(vm.R1, 77)
	b.Halt()
	prog := b.MustBuild()
	m, _ := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	m.Run(0)
	s := m.SaveRegs()
	m.Regs[vm.R1] = 0
	m.RestoreRegs(s)
	if m.Regs[vm.R1] != 77 {
		t.Errorf("restored R1 = %d", m.Regs[vm.R1])
	}
	if m.Halted() {
		t.Error("RestoreRegs should clear the halted state")
	}
}

func TestAddrIndexConversion(t *testing.T) {
	b := asm.New("addr")
	b.Func("main")
	b.Nop()
	b.Nop()
	b.Halt()
	prog := b.MustBuild()
	layout := vm.DefaultLayout()
	m, _ := vm.NewMachine(prog, layout, nil)
	for idx := 0; idx < len(prog.Code); idx++ {
		addr := m.AddrOfIndex(idx)
		back, ok := m.IndexOfAddr(addr)
		if !ok || back != idx {
			t.Errorf("round trip failed for %d", idx)
		}
	}
	if _, ok := m.IndexOfAddr(layout.CodeBase - 4); ok {
		t.Error("address below code base should not convert")
	}
	if _, ok := m.IndexOfAddr(layout.CodeBase + 2); ok {
		t.Error("misaligned address should not convert")
	}
	if _, ok := m.IndexOfAddr(layout.CodeBase + uint32(len(prog.Code))*vm.InstrSize); ok {
		t.Error("address past code end should not convert")
	}
}

func TestEffectiveAddr(t *testing.T) {
	b := asm.New("ea")
	b.Func("main")
	load := b.LoadW(vm.R1, vm.R2, 8)
	store := b.StoreB(vm.R3, -4, vm.R4)
	push := b.PushI(1)
	b.Halt()
	prog := b.MustBuild()
	m, _ := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	m.Regs[vm.R2] = 0x1000
	m.Regs[vm.R3] = 0x2000

	if addr, size, isWrite, ok := m.EffectiveAddr(&prog.Code[load]); !ok || addr != 0x1008 || size != 4 || isWrite {
		t.Errorf("load EA = %#x size=%d write=%v ok=%v", addr, size, isWrite, ok)
	}
	if addr, size, isWrite, ok := m.EffectiveAddr(&prog.Code[store]); !ok || addr != 0x1FFC || size != 1 || !isWrite {
		t.Errorf("store EA = %#x size=%d write=%v ok=%v", addr, size, isWrite, ok)
	}
	if addr, _, isWrite, ok := m.EffectiveAddr(&prog.Code[push]); !ok || addr != m.Regs[vm.SP]-4 || !isWrite {
		t.Errorf("push EA = %#x write=%v ok=%v", addr, isWrite, ok)
	}
	if _, _, _, ok := m.EffectiveAddr(&vm.Instr{Op: vm.OpNop}); ok {
		t.Error("nop has no effective address")
	}
}

func TestLayoutValidation(t *testing.T) {
	good := vm.DefaultLayout()
	if err := good.Validate(); err != nil {
		t.Errorf("default layout invalid: %v", err)
	}
	bad := good
	bad.CodeBase = 0
	if err := bad.Validate(); err == nil {
		t.Error("NULL code base should be rejected")
	}
	bad = good
	bad.HeapBase = 0x1001
	if err := bad.Validate(); err == nil {
		t.Error("unaligned heap base should be rejected")
	}
	bad = good
	bad.StackSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero stack size should be rejected")
	}
}

func TestNewMachineRejectsEmptyProgram(t *testing.T) {
	if _, err := vm.NewMachine(&vm.Program{Name: "empty"}, vm.DefaultLayout(), nil); err == nil {
		t.Error("empty program should be rejected")
	}
}
