package vm

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
)

// RelocKind says what a relocation entry resolves against.
type RelocKind uint8

// Relocation kinds: code relocations patch an instruction immediate with the
// absolute address of another instruction (function pointers); data
// relocations patch it with the absolute address of a data-segment symbol.
const (
	RelocCode RelocKind = iota
	RelocData
)

// Reloc is a load-time relocation: the immediate of Code[InstrIndex] is
// replaced by the loaded absolute address of the target (an instruction index
// for RelocCode, a data-segment offset for RelocData). Relocations are what
// make address-space randomisation meaningful: correctly relocated code keeps
// working wherever it is loaded, while absolute addresses baked into exploit
// payloads do not.
type Reloc struct {
	InstrIndex int
	Kind       RelocKind
	Target     uint32
}

// Program is a loadable guest program image: decoded code, an initial data
// segment, relocations and symbol tables.
type Program struct {
	Name        string
	Code        []Instr
	Data        []byte
	Relocs      []Reloc
	Symbols     map[string]int    // code label -> instruction index
	DataSymbols map[string]uint32 // data label -> offset within Data
	Entry       int               // entry instruction index

	// blocks caches the decoded basic-block map (see blocks.go), built
	// lazily on first load and shared by every Machine running this image:
	// blocks depend only on opcodes, which relocation never touches. Do not
	// copy a Program by value once it has been loaded.
	blocks atomic.Pointer[blockInfo]

	// dataDigest caches the sha256 of Data, keying the program's shared base
	// image in the BaseStore (see basestore.go). Data is immutable once the
	// program is loadable, so a racing double computation is benign.
	dataDigest atomic.Pointer[[sha256.Size]byte]

	// relocMu guards relocImages, the per-layout cache of relocated code and
	// packed micro-ops. Relocation depends only on the layout's code and data
	// bases, so every Machine loaded at the same bases — a guest, its pooled
	// sandbox shells, its analysis and recovery clones — shares one immutable
	// image instead of re-relocating and re-fusing per load (see relocImage).
	relocMu     sync.Mutex
	relocImages map[relocKey]*relocImage
}

// relocKey identifies a relocated image: the only layout inputs relocation
// consumes.
type relocKey struct {
	codeBase, dataBase uint32
}

// relocImage is a relocated view of the program for one pair of code/data
// bases: the patched instruction stream plus the packed, macro-op-fused
// micro-ops the fused dispatcher executes. All fields are immutable once
// published; plain is the unfused micro-op encoding, built lazily on first
// tooled-dispatch use (hook-calling execution must observe every
// architectural instruction, so it cannot dispatch fused pairs — see
// blocks_tooled.go).
type relocImage struct {
	code []Instr
	uops []uint64

	plainOnce sync.Once
	plain     []uint64
}

// plainUops returns the image's unfused packed micro-ops, building them on
// first use.
func (img *relocImage) plainUops() []uint64 {
	img.plainOnce.Do(func() {
		u := make([]uint64, len(img.code))
		for i, in := range img.code {
			u[i] = packUop(in)
		}
		img.plain = u
	})
	return img.plain
}

// relocImage returns the program's shared relocated image for the given
// layout, building and caching it on first use. Installing an antibody's
// probes, cloning a guest for analysis, or spinning up a pooled shell
// therefore never re-pays the O(code) relocation + fusion cost — the machines
// differ only in their probe overlays and machine state.
func (p *Program) relocImage(layout Layout) (*relocImage, error) {
	key := relocKey{codeBase: layout.CodeBase, dataBase: layout.DataBase}
	p.relocMu.Lock()
	defer p.relocMu.Unlock()
	if img, ok := p.relocImages[key]; ok {
		return img, nil
	}
	code := make([]Instr, len(p.Code))
	copy(code, p.Code)
	for _, r := range p.Relocs {
		if r.InstrIndex < 0 || r.InstrIndex >= len(code) {
			return nil, fmt.Errorf("vm: relocation for out-of-range instruction %d", r.InstrIndex)
		}
		switch r.Kind {
		case RelocCode:
			code[r.InstrIndex].Imm = int32(layout.CodeBase + r.Target*InstrSize)
		case RelocData:
			code[r.InstrIndex].Imm = int32(layout.DataBase + r.Target)
		default:
			return nil, fmt.Errorf("vm: unknown relocation kind %d", r.Kind)
		}
	}
	img := &relocImage{code: code, uops: packUops(code, p.blockMap().runLen)}
	if p.relocImages == nil {
		p.relocImages = make(map[relocKey]*relocImage)
	}
	p.relocImages[key] = img
	return img, nil
}

// dataHash returns (and caches) the sha256 digest of the initial data
// segment.
func (p *Program) dataHash() [sha256.Size]byte {
	if h := p.dataDigest.Load(); h != nil {
		return *h
	}
	h := sha256.Sum256(p.Data)
	p.dataDigest.Store(&h)
	return h
}

// SymbolFor returns the name of the function containing instruction idx,
// falling back to the instruction's Sym annotation.
func (p *Program) SymbolFor(idx int) string {
	if idx >= 0 && idx < len(p.Code) && p.Code[idx].Sym != "" {
		return p.Code[idx].Sym
	}
	return fmt.Sprintf("@%d", idx)
}

// EntryOf returns the instruction index of a named code symbol.
func (p *Program) EntryOf(label string) (int, bool) {
	idx, ok := p.Symbols[label]
	return idx, ok
}

// Layout fixes where the program's segments land in the guest address space.
// The monitor package produces randomised layouts (address-space
// randomisation); DefaultLayout is the fixed layout an attacker would assume.
type Layout struct {
	CodeBase  uint32
	DataBase  uint32
	HeapBase  uint32
	HeapSize  uint32
	StackBase uint32 // lowest address of the stack region
	StackSize uint32
}

// StackTop returns the initial stack pointer (the stack grows down).
func (l Layout) StackTop() uint32 { return l.StackBase + l.StackSize }

// DefaultLayout is the layout used when address-space randomisation is
// disabled. Exploit payloads hard-code addresses computed against this layout,
// exactly as real exploits hard-code addresses of a known binary build.
func DefaultLayout() Layout {
	return Layout{
		CodeBase:  0x08048000,
		DataBase:  0x08100000,
		HeapBase:  0x08200000,
		HeapSize:  1 << 20,
		StackBase: 0xbff00000,
		StackSize: 1 << 16,
	}
}

// Validate checks that the layout's regions are non-overlapping, page aligned
// and avoid the NULL page.
func (l Layout) Validate() error {
	type region struct {
		name       string
		base, size uint32
	}
	regions := []region{
		{"code", l.CodeBase, 1},
		{"data", l.DataBase, 1},
		{"heap", l.HeapBase, l.HeapSize},
		{"stack", l.StackBase, l.StackSize},
	}
	for _, r := range regions {
		if r.base == 0 {
			return fmt.Errorf("layout: %s region at NULL page", r.name)
		}
		if r.base%PageSize != 0 {
			return fmt.Errorf("layout: %s base %#x not page aligned", r.name, r.base)
		}
		if r.base < PageSize {
			return fmt.Errorf("layout: %s region overlaps NULL page", r.name)
		}
	}
	if l.HeapSize == 0 || l.StackSize == 0 {
		return fmt.Errorf("layout: heap and stack must have non-zero size")
	}
	return nil
}
