package vm

import "encoding/binary"

// Decoded basic-block dispatch.
//
// Step() pays a fixed per-instruction tax — dispatch-flag checks, budget
// bookkeeping, and two read-modify-write clock updates — that dominates the
// cost of executing the small ops making up most guest code. The block
// dispatcher removes that tax for untooled guests: Program.Code is scanned
// once into straight-line runs terminated by branches, calls, returns,
// syscalls and halts, and Machine.Run executes a whole run in a fused loop
// that charges virtual cycles and the retired-instruction count once per run
// from precomputed prefix sums. The scan also re-encodes each instruction
// into a packed 8-byte micro-op, so the fused loop fetches one machine word
// per instruction instead of a 24-byte Instr with its symbol pointer.
//
// Blocks are a pure function of the opcode stream plus relocated immediates.
// Relocation patches only Instr.Imm, never Op, so the runLen/cyc structure of
// one blockInfo — built lazily and cached on the Program — is shared by every
// Machine loaded from the same image; the packed micro-ops bake in the
// relocated immediates and are therefore per-Machine (built once at load).
// There is no invalidation: code is immutable once loaded.
//
// Anything the fused loop cannot express falls back to Step(): attached
// instr/mem tools disable it wholesale (fastDispatch), a registered probe
// truncates fusion just before the probed index (probeGap), and syscalls,
// halts, illegal opcodes and call/ret under call hooks are non-fusible
// terminators handed back to the slow path. Faults and budget exhaustion
// inside a run flush partial accounting so that every observable quantity —
// Cycles(), InstrCount(), PC, StopInfo — is bit-identical to a pure-Step
// execution at every stop point.

// blockInfo is the per-Program decoded block map.
//
// runLen[i] is the number of consecutive fusible instructions starting at i
// (zero if code[i] itself is a terminator or otherwise non-fusible): the
// straight-line body the fused loop may execute before it must look at
// code[i+runLen[i]] as a terminator.
//
// cyc holds prefix sums of the static cycle cost of fusible instructions:
// cyc[i+1]-cyc[i] is the cost of instruction i (zero for non-fusible ones),
// so the cost of a body [base, end) is cyc[end]-cyc[base] — one subtraction
// per block instead of one clock update per instruction.
type blockInfo struct {
	runLen []int32
	cyc    []uint64
}

// Packed micro-op layout: op in bits 0-7, Rd in 8-15, Rs in 16-23, the
// (relocated) immediate in bits 32-63.
const (
	uopOpMask  = 0xff
	uopRdShift = 8
	uopRsShift = 16
)

func packUop(in Instr) uint64 {
	return uint64(in.Op) |
		uint64(in.Rd)<<uopRdShift |
		uint64(in.Rs)<<uopRsShift |
		uint64(uint32(in.Imm))<<32
}

// Macro-op fusion: the dispatch cost of the fused body loop is one indirect
// jump per micro-op, so frequently adjacent instruction pairs are re-encoded
// as a single synthetic micro-op executing both halves under one dispatch.
// The pattern table below is the set of highest-static-frequency fusible
// pairs across the four app images plus the push/pop stack-move idiom (whose
// fusion also forwards the pushed value, eliminating the stack re-read).
//
// A fused micro-op replaces only the opcode byte of the FIRST slot; its own
// operand fields and the entire second slot keep their original encoding, and
// the executor reads the second half's operands from uops[pc+1]. That keeps
// every instruction index a valid entry point: a jump landing on the second
// half executes the untouched original micro-op, and a budget or probe clamp
// that splits a pair (end == pc+1) makes the executor retire only the first
// half. Synthetic opcodes live only in Machine.uops — Program.Code, Step()
// and the block map never see them.
// The synthetic opcodes sit directly after the real ones so the dispatch
// switch still compiles to one compact jump table. Where the first half
// leaves operand fields unused, fusion bakes the second half's destination
// register into them (push/pop and addi/push use the free Rs byte, mov/pop
// the unused immediate), so executing the pair never re-reads uops[pc+1].
const (
	fusePushPop    Op = numOps + iota // push rA ; pop rB   (rB in Rs byte; value forwarded)
	fuseAddIPush                      // addi ; push rB     (rB in Rs byte)
	fuseMovPop                        // mov ; pop rB       (rB in imm bits 32-39)
	fuseAddIAddI                      // addi ; addi        (second half from uops[pc+1])
	fuseLoadBCmpI                     // loadb ; cmpi       (second half from uops[pc+1])
	fuseStoreBAddI                    // storeb ; addi      (second half from uops[pc+1])
)

// fusePair returns the synthetic opcode and selection weight for an adjacent
// opcode pair, or weight 0 if the pair is not in the fusion table. push+pop
// weighs more because fusing it also removes a guest memory read.
func fusePair(a, b Op) (Op, int32) {
	switch {
	case a == OpPush && b == OpPop:
		return fusePushPop, 3
	case a == OpAddI && b == OpAddI:
		return fuseAddIAddI, 2
	case a == OpLoadB && b == OpCmpI:
		return fuseLoadBCmpI, 2
	case a == OpMov && b == OpPop:
		return fuseMovPop, 2
	case a == OpStoreB && b == OpAddI:
		return fuseStoreBAddI, 2
	case a == OpAddI && b == OpPush:
		return fuseAddIPush, 2
	}
	return 0, 0
}

// packUops encodes relocated code into packed micro-ops and applies macro-op
// fusion. Candidate pairs must lie inside one straight-line run (runLen[i] >=
// 2 guarantees i and i+1 are both fusible body ops); among overlapping
// candidates, a maximum-weight matching is picked by the classic linear DP
// over each run, so e.g. addi;push;pop fuses as addi + [push;pop] (weight 3)
// rather than [addi;push] + pop (weight 2).
func packUops(code []Instr, runLen []int32) []uint64 {
	n := len(code)
	uops := make([]uint64, n)
	for i, in := range code {
		uops[i] = packUop(in)
	}
	pairOp := make([]Op, n)
	weight := make([]int32, n)
	any := false
	for i := 0; i+1 < n; i++ {
		if runLen[i] < 2 {
			continue
		}
		if f, w := fusePair(code[i].Op, code[i+1].Op); w > 0 {
			pairOp[i], weight[i] = f, w
			any = true
		}
	}
	if !any {
		return uops
	}
	// best[i] = max total weight over the suffix starting at i; take[i]
	// records whether fusing (i, i+1) is part of that optimum.
	best := make([]int32, n+2)
	take := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		best[i] = best[i+1]
		if weight[i] > 0 && weight[i]+best[i+2] > best[i] {
			best[i] = weight[i] + best[i+2]
			take[i] = true
		}
	}
	for i := 0; i < n; {
		if !take[i] {
			i++
			continue
		}
		u := uops[i]&^uint64(uopOpMask) | uint64(pairOp[i])
		switch pairOp[i] {
		case fusePushPop, fuseAddIPush:
			u = u&^(uint64(0xff)<<uopRsShift) | uint64(code[i+1].Rd)<<uopRsShift
		case fuseMovPop:
			u = u&(1<<32-1) | uint64(code[i+1].Rd)<<32
		}
		uops[i] = u
		i += 2
	}
	return uops
}

// invalidPN is the page-number sentinel for an empty local TLB mirror. Guest
// addresses are 32-bit, so no real page number reaches it.
const invalidPN = ^uint32(0)

// fusedCost returns the static virtual-cycle cost of op if the fused body
// loop can execute it, and ok=false for terminators and non-fusible ops
// (control flow, syscall, halt, illegal opcodes).
func fusedCost(op Op) (uint64, bool) {
	switch op {
	case OpNop, OpMovI, OpMov, OpLea,
		OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpAddI, OpSubI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI,
		OpCmp, OpCmpI:
		return cyclesALU, true
	case OpMul, OpDiv, OpMod, OpMulI, OpDivI, OpModI:
		return cyclesMulDiv, true
	case OpLoadB, OpLoadW, OpStoreB, OpStoreW, OpPush, OpPushI, OpPop:
		return cyclesMem, true
	}
	return 0, false
}

// buildBlocks decodes the opcode stream into a blockInfo. Every instruction
// index is a legal block entry (indirect jumps can land anywhere), so runLen
// is computed for all of them: a single right-to-left pass, since a run
// starting at i is one instruction longer than the run starting at i+1.
func buildBlocks(code []Instr) *blockInfo {
	n := len(code)
	bi := &blockInfo{
		runLen: make([]int32, n),
		cyc:    make([]uint64, n+1),
	}
	for i := n - 1; i >= 0; i-- {
		if _, ok := fusedCost(code[i].Op); ok {
			run := int32(1)
			if i+1 < n {
				run += bi.runLen[i+1]
			}
			bi.runLen[i] = run
		}
	}
	for i := 0; i < n; i++ {
		cost, _ := fusedCost(code[i].Op)
		bi.cyc[i+1] = bi.cyc[i] + cost
	}
	return bi
}

// blockMap returns the program's decoded block map, building it on first
// use. Safe for concurrent callers: a lost CompareAndSwap race just rebuilds
// an identical map and discards it.
func (p *Program) blockMap() *blockInfo {
	if b := p.blocks.Load(); b != nil {
		return b
	}
	p.blocks.CompareAndSwap(nil, buildBlocks(p.Code))
	return p.blocks.Load()
}

// rebuildProbeGap recomputes probeGap: probeGap[i] is the number of
// consecutive probe-free instructions starting at i. The fused loop clamps a
// block body to it, so registering a VSEF probe keeps block dispatch for
// every unprobed stretch — probes stay "lightweight" even on the fast path.
func (m *Machine) rebuildProbeGap() {
	if m.probeGap == nil {
		m.probeGap = make([]int32, len(m.code))
	}
	n := len(m.code)
	for i := n - 1; i >= 0; i-- {
		if len(m.probes[i]) > 0 {
			m.probeGap[i] = 0
		} else if i+1 < n {
			m.probeGap[i] = m.probeGap[i+1] + 1
		} else {
			m.probeGap[i] = 1
		}
	}
}

// commitFused flushes a fused run's batched accounting back to the machine:
// pc becomes the architectural PC, and the retired-instruction and cycle
// deltas accumulated since runFused was entered are charged.
func (m *Machine) commitFused(pc int, done, cyc uint64) {
	m.PC = pc
	m.instrCount += done
	m.cycles += cyc
}

// tlbLocals loads the memory's one-entry TLBs into register-resident local
// mirrors for the fused loop: an empty entry becomes the invalidPN sentinel,
// so a hit test is a single page-number comparison with no nil check.
func tlbLocals(mem *Memory) (rp *page, rpn uint32, wp *page, wpn uint32) {
	rp, wp = mem.rtlb, mem.wtlb
	rpn, wpn = invalidPN, invalidPN
	if rp != nil {
		rpn = mem.rtlbPN
	}
	if wp != nil {
		wpn = mem.wtlbPN
	}
	return
}

// runFused is Machine.Run's fast path. It executes decoded basic blocks
// until it retires limit instructions, the guest stops, or it reaches an
// instruction only Step() can execute (probed index, syscall, halt, illegal
// opcode, call/ret with call hooks attached); in the last case it returns a
// nil stop and Run falls back to Step for that instruction. executed reports
// how many instructions were retired, for Run's budget bookkeeping.
//
// The loop mirrors Step()'s observable semantics exactly: the same cycle
// constants, the same fault kinds/addresses/details, instruction counting
// that includes the faulting instruction, and the PC left on the faulting
// instruction for fault attribution. Registers, flags and the TLB mirrors
// live in locals; every exit path flushes them before touching m.
func (m *Machine) runFused(limit uint64) (stop *StopInfo, executed uint64) {
	var (
		uops  = m.uops
		mem   = m.Mem
		pc    = m.PC
		done  uint64
		cyc   uint64
		regs  = m.Regs
		flags = m.Flags
	)
	runLen, cycp := m.blocks.runLen, m.blocks.cyc
	// Length equalities the prove pass uses to elide bounds checks in the
	// block loop: runLen and uops mirror code, cyc has one extra slot.
	if len(runLen) != len(uops) || len(cycp) != len(uops)+1 {
		return nil, 0 // unreachable: both are sized from the code array
	}
	// Probes and tools can only change between runFused calls (hooks and
	// syscalls run under Step), so the probe state is loop-invariant here.
	// The gap table is rebuilt lazily: probe mutations just mark it dirty,
	// so installing or removing a whole antibody's probe set costs one
	// O(code) rebuild on next entry instead of one per mutation.
	var probeGap []int32
	if m.probeCount > 0 {
		if m.probeGapDirty {
			m.rebuildProbeGap()
			m.probeGapDirty = false
		}
		probeGap = m.probeGap
	}
	rp, rpn, wp, wpn := tlbLocals(mem)

	for {
		if pc < 0 || pc >= len(uops) {
			m.Regs, m.Flags = regs, flags
			m.commitFused(pc, done, cyc)
			return m.badPCFault(), done
		}
		body := int(runLen[pc])
		fuseTerm := true
		if probeGap != nil {
			if g := int(probeGap[pc]); g <= body {
				body = g
				fuseTerm = false
			}
		}
		if rem := limit - done; rem <= uint64(body) {
			body = int(rem)
			fuseTerm = false
		}
		// A probe or budget clamp may land between the halves of a fused
		// pair. Rather than split the pair in the body loop, shorten the body
		// by one and let Run's Step fallback execute the pair's first half
		// from the original (unfused) code — the fused cases below can then
		// assume every pair they dispatch is whole. Observables are
		// unchanged: the stop still lands on exactly the same instruction. A
		// single decrement suffices, because the instruction before a pair's
		// first half is never itself a pair's first half.
		if !fuseTerm && body > 0 && Op(uops[pc+body-1]&uopOpMask) >= numOps {
			body--
		}
		base := pc
		end := pc + body
		if end > len(uops) {
			end = len(uops) // unreachable (runLen never runs past the end); helps prove
		}
		// Tight self-loop: an unclamped block whose terminator jumps back to
		// its own base (spin waits, copy loops, counting loops) iterates via
		// the backward goto below without re-running this prologue. fuseTerm
		// guarantees the whole block — terminator included — is probe-free
		// and that at least one full iteration fits the remaining budget.
		selfLoop := false
		var stride, blockCyc, loopMax uint64
		if fuseTerm && end < len(uops) {
			if tu := uops[end]; Op(tu&uopOpMask) == OpJmp && int(int32(uint32(tu>>32))) == base {
				selfLoop = true
				stride = uint64(body) + 1
				blockCyc = cycp[end] - cycp[base] + cyclesBranch
				// Iterate again while done <= loopMax, i.e. while a whole
				// further iteration still fits the budget. fuseTerm implies
				// limit-done >= stride, so the subtraction cannot wrap.
				loopMax = limit - stride
			}
		}

	iterate:
		for pc < end {
			u := uops[pc]
			op := Op(u & uopOpMask)
			// Dispatch specialization: an indirect jump through the switch
			// table is expensive on virtualized hosts (IBRS-era indirect
			// branch costs), so the hottest micro-ops resolve through
			// predictable direct compares first — the single most frequent
			// ALU op across the app images, then (one range test) every
			// synthetic fused pair, which is hot by construction since
			// fusion targets the most frequent pairs. Everything else takes
			// the jump table below.
			if op == OpAddI {
				regs[uint8(u>>uopRdShift)] += uint32(u >> 32)
				pc++
				continue
			}
			if op >= numOps {
				switch op {
				// Fused pairs. Each executes its first half exactly like the plain
				// case above, then — only if the pair is not split by a budget or
				// probe clamp (pc+1 < end) — the second half, whose operands come
				// from the untouched uops[pc+1]; the extra pc++ here plus the
				// shared one below advances past both halves. Second-half faults
				// report index pc+1 and charge both instructions, exactly as two
				// plain dispatches would.
				case fusePushPop:
					val := regs[uint8(u>>uopRdShift)]
					sp := regs[SP] - 4
					if sp>>PageShift == wpn && sp&(PageSize-1) <= PageSize-4 {
						off := sp & (PageSize - 1)
						wp.markRun(uint16(off), uint16(off)+4)
						binary.LittleEndian.PutUint32(wp.data[off:], val)
					} else if mem.WriteWord(sp, val) {
						rp, rpn, wp, wpn = tlbLocals(mem)
					} else {
						m.Regs, m.Flags = regs, flags
						done += uint64(pc-base) + 1
						m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
						return m.fault(FaultPage, sp, true, "stack push to unmapped memory"), done
					}
					// The pop re-reads the slot the push just wrote: forward
					// the value and restore SP (write-then-read of a mapped page
					// cannot fault). Assigning SP last matches Step's store
					// order when the pop target is SP itself.
					regs[uint8(u>>uopRsShift)] = val
					regs[SP] = sp + 4
					pc++

				case fuseAddIAddI:
					regs[uint8(u>>uopRdShift)] += uint32(u >> 32)
					u2 := uops[pc+1]
					regs[uint8(u2>>uopRdShift)] += uint32(u2 >> 32)
					pc++

				case fuseLoadBCmpI:
					addr := regs[uint8(u>>uopRsShift)] + uint32(u>>32)
					if addr>>PageShift == rpn {
						regs[uint8(u>>uopRdShift)] = uint32(rp.data[addr&(PageSize-1)])
					} else if b, ok := mem.ReadU8(addr); ok {
						regs[uint8(u>>uopRdShift)] = uint32(b)
						rp, rpn, wp, wpn = tlbLocals(mem)
					} else {
						m.Regs, m.Flags = regs, flags
						done += uint64(pc-base) + 1
						m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
						return m.fault(FaultPage, addr, false, "read from unmapped memory"), done
					}
					u2 := uops[pc+1]
					flags = cmp32(int32(regs[uint8(u2>>uopRdShift)]), int32(uint32(u2>>32)))
					pc++

				case fuseMovPop:
					regs[uint8(u>>uopRdShift)] = regs[uint8(u>>uopRsShift)]
					{
						slot := regs[SP]
						if slot>>PageShift == rpn && slot&(PageSize-1) <= PageSize-4 {
							regs[uint8(u>>32)] = binary.LittleEndian.Uint32(rp.data[slot&(PageSize-1):])
						} else if v, ok := mem.ReadWord(slot); ok {
							regs[uint8(u>>32)] = v
							rp, rpn, wp, wpn = tlbLocals(mem)
						} else {
							m.Regs, m.Flags = regs, flags
							done += uint64(pc-base) + 2
							m.commitFused(pc+1, done, cyc+cycp[pc+2]-cycp[base])
							return m.fault(FaultPage, slot, false, "stack pop from unmapped memory"), done
						}
						regs[SP] = slot + 4
						pc++
					}

				case fuseStoreBAddI:
					addr := regs[uint8(u>>uopRdShift)] + uint32(u>>32)
					val := regs[uint8(u>>uopRsShift)]
					if addr>>PageShift == wpn {
						off := addr & (PageSize - 1)
						wp.markRun(uint16(off), uint16(off)+1)
						wp.data[off] = byte(val)
					} else if mem.WriteU8(addr, byte(val)) {
						rp, rpn, wp, wpn = tlbLocals(mem)
					} else {
						m.Regs, m.Flags = regs, flags
						done += uint64(pc-base) + 1
						m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
						return m.fault(FaultPage, addr, true, "write to unmapped memory"), done
					}
					u2 := uops[pc+1]
					regs[uint8(u2>>uopRdShift)] += uint32(u2 >> 32)
					pc++

				case fuseAddIPush:
					regs[uint8(u>>uopRdShift)] += uint32(u >> 32)
					{
						val := regs[uint8(u>>uopRsShift)]
						sp := regs[SP] - 4
						if sp>>PageShift == wpn && sp&(PageSize-1) <= PageSize-4 {
							off := sp & (PageSize - 1)
							wp.markRun(uint16(off), uint16(off)+4)
							binary.LittleEndian.PutUint32(wp.data[off:], val)
						} else if mem.WriteWord(sp, val) {
							rp, rpn, wp, wpn = tlbLocals(mem)
						} else {
							m.Regs, m.Flags = regs, flags
							done += uint64(pc-base) + 2
							m.commitFused(pc+1, done, cyc+cycp[pc+2]-cycp[base])
							return m.fault(FaultPage, sp, true, "stack push to unmapped memory"), done
						}
						regs[SP] = sp
						pc++
					}
				}
				pc++
				continue
			}
			switch op {
			case OpNop:
			case OpMovI:
				regs[uint8(u>>uopRdShift)] = uint32(u >> 32)
			case OpMov:
				regs[uint8(u>>uopRdShift)] = regs[uint8(u>>uopRsShift)]
			case OpLea:
				regs[uint8(u>>uopRdShift)] = regs[uint8(u>>uopRsShift)] + uint32(u>>32)

			case OpLoadB:
				addr := regs[uint8(u>>uopRsShift)] + uint32(u>>32)
				if addr>>PageShift == rpn {
					regs[uint8(u>>uopRdShift)] = uint32(rp.data[addr&(PageSize-1)])
				} else if b, ok := mem.ReadU8(addr); ok {
					regs[uint8(u>>uopRdShift)] = uint32(b)
					rp, rpn, wp, wpn = tlbLocals(mem)
				} else {
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultPage, addr, false, "read from unmapped memory"), done
				}
			case OpLoadW:
				addr := regs[uint8(u>>uopRsShift)] + uint32(u>>32)
				if addr>>PageShift == rpn && addr&(PageSize-1) <= PageSize-4 {
					regs[uint8(u>>uopRdShift)] = binary.LittleEndian.Uint32(rp.data[addr&(PageSize-1):])
				} else if v, ok := mem.ReadWord(addr); ok {
					regs[uint8(u>>uopRdShift)] = v
					rp, rpn, wp, wpn = tlbLocals(mem)
				} else {
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultPage, addr, false, "read from unmapped memory"), done
				}

			case OpStoreB:
				addr := regs[uint8(u>>uopRdShift)] + uint32(u>>32)
				val := regs[uint8(u>>uopRsShift)]
				if addr>>PageShift == wpn {
					off := addr & (PageSize - 1)
					wp.markRun(uint16(off), uint16(off)+1)
					wp.data[off] = byte(val)
				} else if mem.WriteU8(addr, byte(val)) {
					rp, rpn, wp, wpn = tlbLocals(mem)
				} else {
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultPage, addr, true, "write to unmapped memory"), done
				}
			case OpStoreW:
				addr := regs[uint8(u>>uopRdShift)] + uint32(u>>32)
				val := regs[uint8(u>>uopRsShift)]
				if addr>>PageShift == wpn && addr&(PageSize-1) <= PageSize-4 {
					off := addr & (PageSize - 1)
					wp.markRun(uint16(off), uint16(off)+4)
					binary.LittleEndian.PutUint32(wp.data[off:], val)
				} else if mem.WriteWord(addr, val) {
					rp, rpn, wp, wpn = tlbLocals(mem)
				} else {
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultPage, addr, true, "write to unmapped memory"), done
				}

			case OpAdd:
				regs[uint8(u>>uopRdShift)] += regs[uint8(u>>uopRsShift)]
			case OpSub:
				regs[uint8(u>>uopRdShift)] -= regs[uint8(u>>uopRsShift)]
			case OpMul:
				regs[uint8(u>>uopRdShift)] *= regs[uint8(u>>uopRsShift)]
			case OpDiv, OpMod:
				d := regs[uint8(u>>uopRsShift)]
				if d == 0 {
					detail := "division by zero"
					if Op(u&uopOpMask) == OpMod {
						detail = "modulo by zero"
					}
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultDivZero, 0, false, detail), done
				}
				if Op(u&uopOpMask) == OpDiv {
					regs[uint8(u>>uopRdShift)] /= d
				} else {
					regs[uint8(u>>uopRdShift)] %= d
				}
			case OpAnd:
				regs[uint8(u>>uopRdShift)] &= regs[uint8(u>>uopRsShift)]
			case OpOr:
				regs[uint8(u>>uopRdShift)] |= regs[uint8(u>>uopRsShift)]
			case OpXor:
				regs[uint8(u>>uopRdShift)] ^= regs[uint8(u>>uopRsShift)]
			case OpShl:
				regs[uint8(u>>uopRdShift)] <<= regs[uint8(u>>uopRsShift)] & 31
			case OpShr:
				regs[uint8(u>>uopRdShift)] >>= regs[uint8(u>>uopRsShift)] & 31

			case OpAddI:
				regs[uint8(u>>uopRdShift)] += uint32(u >> 32)
			case OpSubI:
				regs[uint8(u>>uopRdShift)] -= uint32(u >> 32)
			case OpMulI:
				regs[uint8(u>>uopRdShift)] *= uint32(u >> 32)
			case OpDivI, OpModI:
				if uint32(u>>32) == 0 {
					detail := "division by zero immediate"
					if Op(u&uopOpMask) == OpModI {
						detail = "modulo by zero immediate"
					}
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultDivZero, 0, false, detail), done
				}
				if Op(u&uopOpMask) == OpDivI {
					regs[uint8(u>>uopRdShift)] /= uint32(u >> 32)
				} else {
					regs[uint8(u>>uopRdShift)] %= uint32(u >> 32)
				}
			case OpAndI:
				regs[uint8(u>>uopRdShift)] &= uint32(u >> 32)
			case OpOrI:
				regs[uint8(u>>uopRdShift)] |= uint32(u >> 32)
			case OpXorI:
				regs[uint8(u>>uopRdShift)] ^= uint32(u >> 32)
			case OpShlI:
				regs[uint8(u>>uopRdShift)] <<= uint32(u>>32) & 31
			case OpShrI:
				regs[uint8(u>>uopRdShift)] >>= uint32(u>>32) & 31

			case OpCmp:
				flags = cmp32(int32(regs[uint8(u>>uopRdShift)]), int32(regs[uint8(u>>uopRsShift)]))
			case OpCmpI:
				flags = cmp32(int32(regs[uint8(u>>uopRdShift)]), int32(uint32(u>>32)))

			case OpPush:
				val := regs[uint8(u>>uopRdShift)]
				sp := regs[SP] - 4
				if sp>>PageShift == wpn && sp&(PageSize-1) <= PageSize-4 {
					off := sp & (PageSize - 1)
					wp.markRun(uint16(off), uint16(off)+4)
					binary.LittleEndian.PutUint32(wp.data[off:], val)
				} else if mem.WriteWord(sp, val) {
					rp, rpn, wp, wpn = tlbLocals(mem)
				} else {
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultPage, sp, true, "stack push to unmapped memory"), done
				}
				regs[SP] = sp

			case OpPushI:
				val := uint32(u >> 32)
				sp := regs[SP] - 4
				if sp>>PageShift == wpn && sp&(PageSize-1) <= PageSize-4 {
					off := sp & (PageSize - 1)
					wp.markRun(uint16(off), uint16(off)+4)
					binary.LittleEndian.PutUint32(wp.data[off:], val)
				} else if mem.WriteWord(sp, val) {
					rp, rpn, wp, wpn = tlbLocals(mem)
				} else {
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultPage, sp, true, "stack push to unmapped memory"), done
				}
				regs[SP] = sp

			case OpPop:
				slot := regs[SP]
				if slot>>PageShift == rpn && slot&(PageSize-1) <= PageSize-4 {
					regs[uint8(u>>uopRdShift)] = binary.LittleEndian.Uint32(rp.data[slot&(PageSize-1):])
				} else if v, ok := mem.ReadWord(slot); ok {
					regs[uint8(u>>uopRdShift)] = v
					rp, rpn, wp, wpn = tlbLocals(mem)
				} else {
					m.Regs, m.Flags = regs, flags
					done += uint64(pc-base) + 1
					m.commitFused(pc, done, cyc+cycp[pc+1]-cycp[base])
					return m.fault(FaultPage, slot, false, "stack pop from unmapped memory"), done
				}
				regs[SP] = slot + 4

			}
			pc++
		}
		if selfLoop {
			// The jmp terminator is folded into the per-iteration accounting.
			done += stride
			cyc += blockCyc
			pc = base
			if done <= loopMax {
				goto iterate
			}
			continue // remaining budget < one iteration: let the prologue clamp
		}
		done += uint64(end - base)
		cyc += cycp[end] - cycp[base]

		if !fuseTerm {
			// Budget boundary, probed instruction, or end of a clamped body:
			// hand the next instruction (if any) back to the slow path.
			m.Regs, m.Flags = regs, flags
			m.commitFused(pc, done, cyc)
			return nil, done
		}

		if pc >= len(uops) {
			// The run reached the end of the code array (the image ends on a
			// fusible instruction); the bounds check at the top of the loop
			// raises the same bad-PC fault Step would.
			continue
		}

		// Terminator.
		u := uops[pc]
		switch Op(u & uopOpMask) {
		case OpJmp:
			cyc += cyclesBranch
			done++
			pc = int(int32(uint32(u >> 32)))
		case OpJz, OpJnz, OpJlt, OpJle, OpJgt, OpJge:
			cyc += cyclesBranch
			done++
			taken := false
			switch Op(u & uopOpMask) {
			case OpJz:
				taken = flags == 0
			case OpJnz:
				taken = flags != 0
			case OpJlt:
				taken = flags < 0
			case OpJle:
				taken = flags <= 0
			case OpJgt:
				taken = flags > 0
			case OpJge:
				taken = flags >= 0
			}
			if taken {
				pc = int(int32(uint32(u >> 32)))
			} else {
				pc++
			}

		case OpJmpReg:
			cyc += cyclesBranch
			done++
			target := regs[uint8(u>>uopRdShift)]
			tIdx, ok := m.IndexOfAddr(target)
			if !ok {
				m.Regs, m.Flags = regs, flags
				m.commitFused(pc, done, cyc)
				return m.fault(FaultBadPC, target, false, "indirect jump outside code segment"), done
			}
			pc = tIdx

		case OpCall, OpCallReg:
			if m.callDispatch || m.memDispatch {
				// Call hooks (shadow stacks) and memory tools observe the
				// return-address push; Step dispatches them.
				m.Regs, m.Flags = regs, flags
				m.commitFused(pc, done, cyc)
				return nil, done
			}
			cyc += cyclesBranch + cyclesMem
			done++
			targetIdx := int(int32(uint32(u >> 32)))
			if Op(u&uopOpMask) == OpCallReg {
				target := regs[uint8(u>>uopRdShift)]
				tIdx, ok := m.IndexOfAddr(target)
				if !ok {
					m.Regs, m.Flags = regs, flags
					m.commitFused(pc, done, cyc)
					return m.fault(FaultBadPC, target, false, "indirect call outside code segment"), done
				}
				targetIdx = tIdx
			}
			retAddr := m.AddrOfIndex(pc + 1)
			sp := regs[SP] - 4
			if sp>>PageShift == wpn && sp&(PageSize-1) <= PageSize-4 {
				off := sp & (PageSize - 1)
				wp.markRun(uint16(off), uint16(off)+4)
				binary.LittleEndian.PutUint32(wp.data[off:], retAddr)
			} else if mem.WriteWord(sp, retAddr) {
				rp, rpn, wp, wpn = tlbLocals(mem)
			} else {
				m.Regs, m.Flags = regs, flags
				m.commitFused(pc, done, cyc)
				return m.fault(FaultPage, sp, true, "stack push failed during call"), done
			}
			regs[SP] = sp
			pc = targetIdx

		case OpRet:
			if m.callDispatch || m.memDispatch {
				m.Regs, m.Flags = regs, flags
				m.commitFused(pc, done, cyc)
				return nil, done
			}
			cyc += cyclesBranch + cyclesMem
			done++
			retSlot := regs[SP]
			var retAddr uint32
			if retSlot>>PageShift == rpn && retSlot&(PageSize-1) <= PageSize-4 {
				retAddr = binary.LittleEndian.Uint32(rp.data[retSlot&(PageSize-1):])
			} else if v, ok := mem.ReadWord(retSlot); ok {
				retAddr = v
				rp, rpn, wp, wpn = tlbLocals(mem)
			} else {
				m.Regs, m.Flags = regs, flags
				m.commitFused(pc, done, cyc)
				return m.fault(FaultPage, retSlot, false, "stack read failed during return"), done
			}
			regs[SP] = retSlot + 4
			tIdx, ok := m.IndexOfAddr(retAddr)
			if !ok {
				m.Regs, m.Flags = regs, flags
				m.commitFused(pc, done, cyc)
				return m.fault(FaultBadPC, retAddr, false, "return to address outside code segment"), done
			}
			pc = tIdx

		default:
			// Syscall, halt, illegal opcode: only Step knows how.
			m.Regs, m.Flags = regs, flags
			m.commitFused(pc, done, cyc)
			return nil, done
		}
	}
}
