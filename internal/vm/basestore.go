package vm

import (
	"crypto/sha256"
	"sync"
)

// BaseStore is a process-wide, content-addressed store of frozen base-image
// pages. Loading a program maps its initial data segment and zeroed stack
// through the store: every page is hashed and interned, so all same-content
// pages — across guests, across clone fleets, and across differently
// randomised layouts (segment shifts are page-aligned multiples of PageSize,
// so page contents are layout-independent) — are backed by one immutable page
// object. Guests copy-on-write privately on first touch, exactly like
// snapshot sharing, so memory for N same-program guests grows with the pages
// they dirty, not with N times the image size.
//
// Interned pages are frozen (owner nil) before they are ever shared and are
// never written in place, which is the same invariant MemSnapshot sharing
// relies on; handing them to concurrently-running Memories is safe.
type BaseStore struct {
	mu     sync.Mutex
	pages  map[[32]byte]*page // content hash -> canonical frozen page
	byPtr  map[*page]struct{} // identity set of the canonical pages
	images map[imageKey]*MemSnapshot

	installs       int // base images handed to machines
	installedPages int // page-table entries those installs shared
}

// imageKey memoises one built base image: the program's data-segment content
// plus the layout coordinates that decide which page numbers it occupies.
type imageKey struct {
	dataHash  [32]byte
	dataBase  uint32
	stackBase uint32
	stackSize uint32
}

// NewBaseStore returns an empty store. Most callers want DefaultBaseStore;
// a private store exists for tests that need isolated accounting.
func NewBaseStore() *BaseStore {
	return &BaseStore{
		pages:  make(map[[32]byte]*page),
		byPtr:  make(map[*page]struct{}),
		images: make(map[imageKey]*MemSnapshot),
	}
}

var defaultBaseStore = NewBaseStore()

// DefaultBaseStore returns the process-wide store every NewMachine installs
// base images from.
func DefaultBaseStore() *BaseStore { return defaultBaseStore }

// BaseStoreStats is a point-in-time accounting snapshot of a BaseStore.
type BaseStoreStats struct {
	// DistinctPages is how many unique page contents the store holds — the
	// real backing memory, shared by every install.
	DistinctPages int
	// Images is how many distinct (program data, layout) base images were
	// built.
	Images int
	// Installs counts machines that installed a base image.
	Installs int
	// InstalledPages counts the page-table entries handed out across all
	// installs; InstalledPages / DistinctPages is the sharing factor.
	InstalledPages int
}

// Stats returns the store's accounting counters.
func (b *BaseStore) Stats() BaseStoreStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BaseStoreStats{
		DistinctPages:  len(b.pages),
		Images:         len(b.images),
		Installs:       b.installs,
		InstalledPages: b.installedPages,
	}
}

// BaseImage returns the chain-root snapshot of prog's clean initial memory —
// the data segment (zero-padded to at least one page) plus the zeroed stack —
// under the given layout, building and memoising it on first use. Restoring
// the returned snapshot into a fresh Memory reproduces exactly the segment
// state NewMachine used to build eagerly, but with every page shared.
func (b *BaseStore) BaseImage(prog *Program, layout Layout) *MemSnapshot {
	dataSize := uint32(len(prog.Data))
	if dataSize < PageSize {
		dataSize = PageSize
	}
	key := imageKey{
		dataHash:  prog.dataHash(),
		dataBase:  layout.DataBase,
		stackBase: layout.StackBase,
		stackSize: layout.StackSize,
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.images[key]; ok {
		b.installs++
		b.installedPages += s.Pages()
		return s
	}
	// Build the segments exactly as the eager path did, then intern every
	// page, so the shared image is byte-identical to the unshared one.
	scratch := NewMemory()
	scratch.MapRegion(layout.DataBase, dataSize)
	if len(prog.Data) > 0 {
		scratch.WriteBytes(layout.DataBase, prog.Data)
	}
	scratch.MapRegion(layout.StackBase, layout.StackSize)
	flat := make(map[uint32]*page, len(scratch.pages))
	for pn, p := range scratch.pages {
		flat[pn] = b.intern(p)
	}
	// A chain root with captured == 0: installing (and re-checkpointing) a
	// clean image costs the guest's virtual clock nothing, because nothing
	// was copied at run time.
	s := &MemSnapshot{delta: flat, count: len(flat)}
	s.flat = flat
	b.images[key] = s
	b.installs++
	b.installedPages += len(flat)
	return s
}

// intern returns the canonical frozen page for p's content, adopting p as the
// canonical copy if the content is new. Caller holds b.mu.
func (b *BaseStore) intern(p *page) *page {
	h := sha256.Sum256(p.data[:])
	if canon, ok := b.pages[h]; ok {
		return canon
	}
	p.owner = nil // freeze: shared from here on, never written in place
	p.nruns = 0
	p.inParent = false
	b.pages[h] = p
	b.byPtr[p] = struct{}{}
	return p
}

// SharedPagesIn reports how many of m's live page-table entries still point
// at store-backed base pages (untouched since install) versus the total
// mapped pages. The Memory must be quiescent: the caller synchronises with
// the goroutine running the guest.
func (b *BaseStore) SharedPagesIn(m *Memory) (shared, total int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range m.pages {
		if _, ok := b.byPtr[p]; ok {
			shared++
		}
	}
	return shared, len(m.pages)
}
