package vm

import (
	"strings"
	"testing"
)

func TestRegAndOpStrings(t *testing.T) {
	if R0.String() != "r0" || SP.String() != "sp" || BP.String() != "bp" {
		t.Error("register names wrong")
	}
	if !strings.Contains(Reg(200).String(), "?") {
		t.Error("unknown register should be marked")
	}
	if OpAdd.String() != "add" || OpStoreW.String() != "storew" {
		t.Error("opcode names wrong")
	}
	if !strings.Contains(Op(250).String(), "?") {
		t.Error("unknown opcode should be marked")
	}
	// Every defined opcode has a name.
	for op := OpNop; op < numOps; op++ {
		if strings.Contains(op.String(), "?") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestOpClassification(t *testing.T) {
	branches := []Op{OpJmp, OpJz, OpJnz, OpJlt, OpJle, OpJgt, OpJge, OpJmpReg, OpCall, OpCallReg, OpRet}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	if OpAdd.IsBranch() || OpStoreB.IsBranch() {
		t.Error("non-branches misclassified")
	}
	for _, op := range []Op{OpJz, OpJnz, OpJlt, OpJle, OpJgt, OpJge} {
		if !op.IsCondBranch() {
			t.Errorf("%v should be conditional", op)
		}
	}
	if OpJmp.IsCondBranch() || OpCall.IsCondBranch() {
		t.Error("unconditional branch misclassified as conditional")
	}
	if !OpLoadB.IsLoad() || !OpLoadW.IsLoad() || OpStoreB.IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !OpStoreB.IsStore() || !OpStoreW.IsStore() || OpLoadW.IsStore() {
		t.Error("IsStore wrong")
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"movi r1, 5":        {Op: OpMovI, Rd: R1, Imm: 5},
		"mov r1, r2":        {Op: OpMov, Rd: R1, Rs: R2},
		"loadw r3, [bp-4]":  {Op: OpLoadW, Rd: R3, Rs: BP, Imm: -4},
		"storeb [r2+0], r4": {Op: OpStoreB, Rd: R2, Rs: R4, Imm: 0},
		"add r1, r2":        {Op: OpAdd, Rd: R1, Rs: R2},
		"addi r1, 7":        {Op: OpAddI, Rd: R1, Imm: 7},
		"jmp @12":           {Op: OpJmp, Imm: 12},
		"callr r5":          {Op: OpCallReg, Rd: R5},
		"push r6":           {Op: OpPush, Rd: R6},
		"pushi 3":           {Op: OpPushI, Imm: 3},
		"ret":               {Op: OpRet},
		"syscall":           {Op: OpSyscall},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("Instr.String() = %q, want %q", got, want)
		}
	}
}

func TestFaultAndViolationStrings(t *testing.T) {
	f := &Fault{Kind: FaultPage, Addr: 0x1234, PCAddr: 0x8048000, Sym: "strcat", Detail: "boom"}
	if !strings.Contains(f.Error(), "segmentation fault") || !strings.Contains(f.Error(), "strcat") {
		t.Errorf("fault error = %q", f.Error())
	}
	v := &Violation{Kind: ViolationDoubleFree, Tool: "t", Sym: "free", Detail: "d"}
	if !strings.Contains(v.Error(), "double free") || !strings.Contains(v.Error(), "t") {
		t.Errorf("violation error = %q", v.Error())
	}
	var nilF *Fault
	var nilV *Violation
	if nilF.Error() == "" || nilV.Error() == "" {
		t.Error("nil errors should still describe themselves")
	}
	for k := FaultNone; k <= FaultInstrLimit; k++ {
		if k.String() == "" {
			t.Errorf("fault kind %d has no name", k)
		}
	}
	for k := ViolationNone; k <= ViolationPolicy; k++ {
		if k.String() == "" {
			t.Errorf("violation kind %d has no name", k)
		}
	}
	if !strings.Contains(FaultKind(99).String(), "?") || !strings.Contains(ViolationKind(99).String(), "?") {
		t.Error("unknown kinds should be marked")
	}
}

func TestStopReasonString(t *testing.T) {
	for r := StopNone; r <= StopInstrBudget; r++ {
		if strings.Contains(r.String(), "?") {
			t.Errorf("stop reason %d has no name", r)
		}
	}
	if !strings.Contains(StopReason(99).String(), "?") {
		t.Error("unknown stop reason should be marked")
	}
}

func TestProgramSymbolHelpers(t *testing.T) {
	p := &Program{
		Code:    []Instr{{Op: OpNop, Sym: "main"}, {Op: OpHalt, Sym: "main"}},
		Symbols: map[string]int{"main": 0},
	}
	if p.SymbolFor(0) != "main" {
		t.Error("SymbolFor wrong")
	}
	if p.SymbolFor(99) == "" {
		t.Error("SymbolFor out of range should still return something")
	}
	if idx, ok := p.EntryOf("main"); !ok || idx != 0 {
		t.Error("EntryOf wrong")
	}
	if _, ok := p.EntryOf("nope"); ok {
		t.Error("EntryOf should fail for unknown symbols")
	}
}
