package vm

import (
	"fmt"
)

// StopReason says why Machine.Run returned.
type StopReason uint8

// Stop reasons.
const (
	StopNone        StopReason = iota
	StopHalt                   // the guest executed halt or the exit syscall
	StopWaitInput              // the guest asked for input and none is queued
	StopFault                  // a hardware fault (segfault, bad PC, ...)
	StopViolation              // an attached tool raised a violation
	StopInstrBudget            // the per-Run instruction budget was exhausted
)

var stopNames = [...]string{"none", "halt", "wait-input", "fault", "violation", "instr-budget"}

// String returns a human readable name for the stop reason.
func (r StopReason) String() string {
	if int(r) < len(stopNames) {
		return stopNames[r]
	}
	return fmt.Sprintf("stop?%d", uint8(r))
}

// StopInfo describes how and why execution stopped.
type StopInfo struct {
	Reason    StopReason
	Fault     *Fault
	Violation *Violation
}

// SyscallResult is returned by a SyscallHandler.
type SyscallResult uint8

// Syscall results. SysWaitInput leaves the PC on the syscall instruction so
// that resuming the machine retries it once input is available.
const (
	SysOK SyscallResult = iota
	SysWaitInput
	SysHalt
)

// SyscallHandler services guest syscalls. Arguments are in R1..R3 and the
// syscall number in R0; results are written back into R0. A returned fault
// stops the machine as if the syscall instruction itself had faulted.
type SyscallHandler interface {
	Syscall(m *Machine, num uint32) (SyscallResult, *Fault)
}

// Probe is a targeted, per-instruction-address instrumentation callback: it
// fires only when its instruction executes, so it imposes no cost on the rest
// of the execution. VSEFs are implemented as probes, which is what makes them
// "lightweight" in the paper's sense.
// As with InstrHook, in points into the shared loaded code image: valid only
// during the call, read-only.
type Probe interface {
	Name() string
	OnProbe(m *Machine, idx int, in *Instr)
}

// Approximate virtual cycle costs. The virtual clock lets experiments measure
// guest-perceived overhead (Figure 4, Figure 5, VSEF overhead) independently
// of host speed.
const (
	// CyclesPerMicrosecond calibrates the virtual clock. The guest is slow
	// (1 MHz) by design: it keeps a serving request in the millisecond range
	// so that checkpoint intervals of 20-200 ms, analysis windows and
	// recovery times land in the same regime as the paper's measurements.
	CyclesPerMicrosecond = 1

	cyclesALU     = 1
	cyclesMem     = 3
	cyclesMulDiv  = 5
	cyclesBranch  = 2
	cyclesSyscall = 80
	// CyclesPerHook is charged for every full-instrumentation hook dispatch,
	// modelling the 10x-1000x slowdowns of heavyweight dynamic analysis.
	CyclesPerHook = 12
	// CyclesPerProbe is charged when a targeted probe (VSEF) fires: a VSEF
	// check is only "a handful of extra instructions".
	CyclesPerProbe = 2
)

// Machine is a loaded guest program plus CPU and memory state.
type Machine struct {
	Mem   *Memory
	Regs  [NumRegs]uint32
	PC    int
	Flags int

	prog   *Program
	code   []Instr // relocated code, shared read-only via prog's relocImage
	img    *relocImage
	layout Layout

	tools  toolSet
	probes [][]Probe

	// Cached dispatch flags, recomputed whenever tools or probes change, so
	// an untooled live guest pays no hook iteration on the per-instruction
	// and per-memory-access hot paths.
	instrDispatch bool // an InstrHook is attached or any probe is registered
	memDispatch   bool // a MemHook is attached
	callDispatch  bool // a CallHook is attached
	probeCount    int

	// Block dispatch state (see blocks.go and blocks_tooled.go). blocks is
	// the Program's shared decoded-block map; probeGap clamps fused runs
	// short of probed indexes and is rebuilt lazily (probeGapDirty) so that
	// installing a fleet-wide antibody's probes costs O(probes), not
	// O(code) per machine. fastDispatch caches "Run may use the fused loop":
	// block dispatch is enabled and no instr/mem tool is attached.
	// tooledDispatch caches the complementary case: block dispatch is
	// enabled and an instr or mem tool is attached, so Run uses the
	// hook-calling block engine (runTooled) instead of per-Step execution.
	blocks         *blockInfo
	uops           []uint64 // packed fused micro-ops, shared via relocImage
	uopsPlain      []uint64 // packed unfused micro-ops for runTooled, lazy
	probeGap       []int32
	blockDispatch  bool
	fastDispatch   bool
	tooledDispatch bool
	lightTooled    bool // tooledDispatch may use the single-instr-hook engine
	probeGapDirty  bool

	sys SyscallHandler

	cycles     uint64
	instrCount uint64

	stopped          bool
	pendingViolation *Violation
}

// NewMachine loads prog at the given layout and returns a machine ready to
// run. The syscall handler may be nil for pure-computation programs.
func NewMachine(prog *Program, layout Layout, sys SyscallHandler) (*Machine, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if len(prog.Code) == 0 {
		return nil, fmt.Errorf("vm: program %q has no code", prog.Name)
	}
	m := &Machine{
		Mem:    NewMemory(),
		prog:   prog,
		layout: layout,
		sys:    sys,
	}
	// Attach the program's shared relocated image for this layout: code and
	// packed micro-ops are immutable and content-addressed by (code base,
	// data base), so clones and pooled shells load in O(1) instead of
	// re-relocating. Per-machine instrumentation lives in the probe overlay.
	img, err := prog.relocImage(layout)
	if err != nil {
		return nil, err
	}
	m.img = img
	m.code = img.code
	m.probes = make([][]Probe, len(m.code))
	m.blocks = prog.blockMap()
	m.uops = img.uops
	m.blockDispatch = true
	m.refreshDispatch()

	// Map segments by restoring the program's shared base image: data and
	// stack pages are content-interned in the process-wide BaseStore, so
	// every same-program machine starts on the same immutable backing pages
	// and copies-on-write privately on first touch. The heap region is
	// mapped lazily by the allocator.
	m.Mem.Restore(defaultBaseStore.BaseImage(prog, layout))

	m.PC = prog.Entry
	m.Regs[SP] = layout.StackTop()
	m.Regs[BP] = layout.StackTop()
	return m, nil
}

// Program returns the loaded program image.
func (m *Machine) Program() *Program { return m.prog }

// Layout returns the address-space layout in effect for this machine.
func (m *Machine) Layout() Layout { return m.layout }

// Code returns the relocated instruction stream.
func (m *Machine) Code() []Instr { return m.code }

// InstrAt returns the instruction at index idx, or a Nop if out of range.
func (m *Machine) InstrAt(idx int) Instr {
	if idx < 0 || idx >= len(m.code) {
		return Instr{Op: OpNop}
	}
	return m.code[idx]
}

// AddrOfIndex converts an instruction index to its loaded code address.
//
// Contract with IndexOfAddr: for every idx in [0, len(code)] — the one-past-
// the-end index included, since it is the return address a call at the last
// instruction pushes — AddrOfIndex returns CodeBase + idx*InstrSize, and
// IndexOfAddr inverts it for idx in [0, len(code)) while rejecting the
// one-past-the-end address (it is not executable). Out-of-range indexes are
// clamped to the segment bounds rather than fabricating addresses: a negative
// index would otherwise wrap through uint32 into an address far outside the
// code segment (the old FaultBadPC garbage-address bug), and indexes past the
// end would alias unrelated memory. Block-boundary math relies on this.
func (m *Machine) AddrOfIndex(idx int) uint32 {
	if idx < 0 {
		idx = 0
	} else if idx > len(m.code) {
		idx = len(m.code)
	}
	return m.layout.CodeBase + uint32(idx)*InstrSize
}

// badPCFault raises the fault for a PC outside the code segment. The fault
// address is the clamped segment bound (AddrOfIndex), and the raw index goes
// in the detail, so a wild jump to index -1 reports CodeBase rather than a
// wrapped garbage address.
func (m *Machine) badPCFault() *StopInfo {
	return m.fault(FaultBadPC, m.AddrOfIndex(m.PC), false,
		fmt.Sprintf("program counter %d outside code segment [0,%d)", m.PC, len(m.code)))
}

// IndexOfAddr converts a code address back into an instruction index. It is
// the inverse of AddrOfIndex for in-range indexes; see AddrOfIndex for the
// round-trip contract.
func (m *Machine) IndexOfAddr(addr uint32) (int, bool) {
	if addr < m.layout.CodeBase {
		return 0, false
	}
	off := addr - m.layout.CodeBase
	if off%InstrSize != 0 {
		return 0, false
	}
	idx := int(off / InstrSize)
	if idx >= len(m.code) {
		return 0, false
	}
	return idx, true
}

// SymbolAt returns the function symbol containing instruction idx.
func (m *Machine) SymbolAt(idx int) string {
	if idx >= 0 && idx < len(m.code) && m.code[idx].Sym != "" {
		return m.code[idx].Sym
	}
	return fmt.Sprintf("@%d", idx)
}

// Cycles returns the virtual cycle count consumed so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// AddCycles charges extra virtual cycles (used by the syscall handler and the
// checkpoint manager to account for their own work).
func (m *Machine) AddCycles(n uint64) { m.cycles += n }

// SetCycles overrides the virtual clock. The Sweeper core uses it to account
// analysis replays as out-of-band work (the analysis module re-executes
// shadow state; the protected service's client-visible clock only advances by
// detection, rollback and recovery re-execution). Callers must keep the clock
// monotonic with respect to any timestamps they have already recorded.
func (m *Machine) SetCycles(c uint64) { m.cycles = c }

// NowMicros returns the virtual time in microseconds.
func (m *Machine) NowMicros() uint64 { return m.cycles / CyclesPerMicrosecond }

// NowMillis returns the virtual time in milliseconds.
func (m *Machine) NowMillis() uint64 { return m.cycles / (CyclesPerMicrosecond * 1000) }

// InstrCount returns the number of retired instructions.
func (m *Machine) InstrCount() uint64 { return m.instrCount }

// refreshDispatch recomputes the cached hot-path dispatch flags. Everything
// that changes instrumentation (AttachTool, DetachTool, AddProbe,
// RemoveProbes, ClearProbes, SetBlockDispatch) funnels through here, which is
// what keeps block dispatch honest: attaching an instr or mem tool drops
// fastDispatch and raises tooledDispatch, moving Run from the fused loop to
// the hook-calling block engine (runTooled) — never to silent hook skipping.
// Probe changes mark the probe-gap table dirty; the fused loop rebuilds it
// on next entry (see rebuildProbeGap).
func (m *Machine) refreshDispatch() {
	m.instrDispatch = len(m.tools.instr) > 0 || m.probeCount > 0
	m.memDispatch = len(m.tools.mem) > 0
	m.callDispatch = len(m.tools.call) > 0
	m.fastDispatch = m.blockDispatch && len(m.tools.instr) == 0 && len(m.tools.mem) == 0
	m.tooledDispatch = m.blockDispatch && !m.fastDispatch
	// The dominant tooled configuration — one instruction hook, nothing else —
	// gets a specialized loop with a much smaller live set across the hook
	// call (see runTooledLight).
	m.lightTooled = m.tooledDispatch && len(m.tools.instr) == 1 &&
		len(m.tools.mem) == 0 && len(m.tools.call) == 0 && m.probeCount == 0
}

// SetBlockDispatch enables or disables basic-block dispatch in Run (enabled
// by default). Disabling forces every instruction through the Step slow
// path; differential tests and the dispatch micro-benchmarks use it to
// compare the two engines on identical guests.
func (m *Machine) SetBlockDispatch(enabled bool) {
	m.blockDispatch = enabled
	m.refreshDispatch()
}

// AttachTool attaches an instrumentation tool; it takes effect from the next
// executed instruction.
func (m *Machine) AttachTool(t Tool) {
	m.tools.attach(t)
	m.refreshDispatch()
}

// DetachTool removes the named tool. It reports whether the tool was attached.
func (m *Machine) DetachTool(name string) bool {
	ok := m.tools.detach(name)
	m.refreshDispatch()
	return ok
}

// DetachAllTools removes every attached tool.
func (m *Machine) DetachAllTools() {
	m.tools.detachAll()
	m.refreshDispatch()
}

// FindTool returns the attached tool with the given name, or nil.
func (m *Machine) FindTool(name string) Tool { return m.tools.find(name) }

// Tools returns the names of all attached tools.
func (m *Machine) Tools() []string {
	names := make([]string, 0, len(m.tools.all))
	for _, t := range m.tools.all {
		names = append(names, t.Name())
	}
	return names
}

// AddProbe registers a targeted probe on instruction idx.
func (m *Machine) AddProbe(idx int, p Probe) error {
	if idx < 0 || idx >= len(m.code) {
		return fmt.Errorf("vm: probe index %d out of range", idx)
	}
	m.probes[idx] = append(m.probes[idx], p)
	m.probeCount++
	m.probeGapDirty = true
	m.refreshDispatch()
	return nil
}

// RemoveProbes removes every probe registered under the given name and
// returns how many were removed.
func (m *Machine) RemoveProbes(name string) int {
	removed := 0
	for i, list := range m.probes {
		if len(list) == 0 {
			continue
		}
		kept := list[:0]
		for _, p := range list {
			if p.Name() == name {
				removed++
			} else {
				kept = append(kept, p)
			}
		}
		m.probes[i] = kept
	}
	m.probeCount -= removed
	m.probeGapDirty = true
	m.refreshDispatch()
	return removed
}

// ClearProbes removes every registered probe regardless of owner. The clone
// pool uses it when resetting a shell for reuse.
func (m *Machine) ClearProbes() {
	for i := range m.probes {
		m.probes[i] = nil
	}
	m.probeCount = 0
	m.probeGapDirty = true
	m.refreshDispatch()
}

// ProbeCount returns the total number of registered probes.
func (m *Machine) ProbeCount() int { return m.probeCount }

// NotifyRollback tells every attached tool and probe implementing
// RollbackHook that the process has been rolled back to a checkpoint, so
// execution-shadowing state must be dropped. A probe registered on several
// instructions is notified once per registration; resets are idempotent.
func (m *Machine) NotifyRollback() {
	for _, t := range m.tools.all {
		if h, ok := t.(RollbackHook); ok {
			h.OnRollback(m)
		}
	}
	for _, list := range m.probes {
		for _, p := range list {
			if h, ok := p.(RollbackHook); ok {
				h.OnRollback(m)
			}
		}
	}
}

// RaiseViolation is called by tools, probes and monitors to stop execution.
// When raised from a BeforeInstr hook or probe, the instruction is not
// executed, so the violation also prevents the attack's effect.
func (m *Machine) RaiseViolation(v *Violation) {
	if v.PCAddr == 0 {
		v.PC = m.PC
		v.PCAddr = m.AddrOfIndex(m.PC)
		v.Sym = m.SymbolAt(m.PC)
	}
	if m.pendingViolation == nil {
		m.pendingViolation = v
	}
}

// NotifyInput reports that untrusted input bytes were written to guest memory
// (called by the syscall handler implementing recv).
func (m *Machine) NotifyInput(addr uint32, data []byte, requestID int) {
	for _, h := range m.tools.input {
		m.cycles += CyclesPerHook
		h.OnInput(m, addr, data, requestID)
	}
}

// NotifyMalloc reports a heap allocation to attached tools.
func (m *Machine) NotifyMalloc(addr uint32, size uint32) {
	for _, h := range m.tools.alloc {
		m.cycles += CyclesPerHook
		h.OnMalloc(m, m.PC, addr, size)
	}
}

// NotifyFree reports a heap free to attached tools.
func (m *Machine) NotifyFree(addr uint32) {
	for _, h := range m.tools.alloc {
		m.cycles += CyclesPerHook
		h.OnFree(m, m.PC, addr)
	}
}

func (m *Machine) fault(kind FaultKind, addr uint32, isWrite bool, detail string) *StopInfo {
	f := &Fault{
		Kind:    kind,
		Addr:    addr,
		PC:      m.PC,
		PCAddr:  m.AddrOfIndex(m.PC),
		Sym:     m.SymbolAt(m.PC),
		IsWrite: isWrite,
		Detail:  detail,
	}
	for _, h := range m.tools.fault {
		h.OnFault(m, f)
	}
	m.stopped = true
	return &StopInfo{Reason: StopFault, Fault: f}
}

func (m *Machine) violationStop() *StopInfo {
	v := m.pendingViolation
	m.pendingViolation = nil
	m.stopped = true
	return &StopInfo{Reason: StopViolation, Violation: v}
}

func (m *Machine) readMem(addr uint32, size int) (uint32, bool) {
	if size == 1 {
		b, ok := m.Mem.ReadU8(addr)
		return uint32(b), ok
	}
	return m.Mem.ReadWord(addr)
}

func (m *Machine) writeMem(addr uint32, size int, val uint32) bool {
	if size == 1 {
		return m.Mem.WriteU8(addr, byte(val))
	}
	return m.Mem.WriteWord(addr, val)
}

func (m *Machine) dispatchMemRead(idx int, addr uint32, size int, val uint32) {
	for _, h := range m.tools.mem {
		m.cycles += CyclesPerHook
		h.OnMemRead(m, idx, addr, size, val)
	}
}

func (m *Machine) dispatchMemWrite(idx int, addr uint32, size int, val uint32) {
	for _, h := range m.tools.mem {
		m.cycles += CyclesPerHook
		h.OnMemWrite(m, idx, addr, size, val)
	}
}

// push writes val at SP-4 and updates SP; it reports the address used.
func (m *Machine) push(val uint32) (uint32, bool) {
	sp := m.Regs[SP] - 4
	if !m.Mem.WriteWord(sp, val) {
		return sp, false
	}
	m.Regs[SP] = sp
	return sp, true
}

// Step executes a single instruction. It returns nil if execution may
// continue, or a StopInfo describing why it must stop.
func (m *Machine) Step() *StopInfo {
	if m.stopped {
		return &StopInfo{Reason: StopHalt}
	}
	if m.PC < 0 || m.PC >= len(m.code) {
		return m.badPCFault()
	}
	idx := m.PC
	in := m.code[idx]

	// Full instrumentation hooks and targeted probes (VSEFs). The cached
	// instrDispatch flag keeps untooled execution off this path entirely.
	if m.instrDispatch {
		for _, h := range m.tools.instr {
			m.cycles += CyclesPerHook
			h.BeforeInstr(m, idx, &m.code[idx])
		}
		if probes := m.probes[idx]; len(probes) > 0 {
			for _, p := range probes {
				m.cycles += CyclesPerProbe
				p.OnProbe(m, idx, &m.code[idx])
			}
		}
		if m.pendingViolation != nil {
			return m.violationStop()
		}
	}

	m.instrCount++
	nextPC := idx + 1

	switch in.Op {
	case OpNop:
		m.cycles += cyclesALU

	case OpMovI:
		m.cycles += cyclesALU
		m.Regs[in.Rd] = uint32(in.Imm)
	case OpMov:
		m.cycles += cyclesALU
		m.Regs[in.Rd] = m.Regs[in.Rs]
	case OpLea:
		m.cycles += cyclesALU
		m.Regs[in.Rd] = m.Regs[in.Rs] + uint32(in.Imm)

	case OpLoadB, OpLoadW:
		m.cycles += cyclesMem
		size := 4
		if in.Op == OpLoadB {
			size = 1
		}
		addr := m.Regs[in.Rs] + uint32(in.Imm)
		val, ok := m.readMem(addr, size)
		if !ok {
			return m.fault(FaultPage, addr, false, "read from unmapped memory")
		}
		if m.memDispatch {
			m.dispatchMemRead(idx, addr, size, val)
			if m.pendingViolation != nil {
				return m.violationStop()
			}
		}
		m.Regs[in.Rd] = val

	case OpStoreB, OpStoreW:
		m.cycles += cyclesMem
		size := 4
		if in.Op == OpStoreB {
			size = 1
		}
		addr := m.Regs[in.Rd] + uint32(in.Imm)
		val := m.Regs[in.Rs]
		if !m.writeMem(addr, size, val) {
			return m.fault(FaultPage, addr, true, "write to unmapped memory")
		}
		if m.memDispatch {
			m.dispatchMemWrite(idx, addr, size, val)
			if m.pendingViolation != nil {
				return m.violationStop()
			}
		}

	case OpAdd:
		m.cycles += cyclesALU
		m.Regs[in.Rd] += m.Regs[in.Rs]
	case OpSub:
		m.cycles += cyclesALU
		m.Regs[in.Rd] -= m.Regs[in.Rs]
	case OpMul:
		m.cycles += cyclesMulDiv
		m.Regs[in.Rd] *= m.Regs[in.Rs]
	case OpDiv:
		m.cycles += cyclesMulDiv
		if m.Regs[in.Rs] == 0 {
			return m.fault(FaultDivZero, 0, false, "division by zero")
		}
		m.Regs[in.Rd] /= m.Regs[in.Rs]
	case OpMod:
		m.cycles += cyclesMulDiv
		if m.Regs[in.Rs] == 0 {
			return m.fault(FaultDivZero, 0, false, "modulo by zero")
		}
		m.Regs[in.Rd] %= m.Regs[in.Rs]
	case OpAnd:
		m.cycles += cyclesALU
		m.Regs[in.Rd] &= m.Regs[in.Rs]
	case OpOr:
		m.cycles += cyclesALU
		m.Regs[in.Rd] |= m.Regs[in.Rs]
	case OpXor:
		m.cycles += cyclesALU
		m.Regs[in.Rd] ^= m.Regs[in.Rs]
	case OpShl:
		m.cycles += cyclesALU
		m.Regs[in.Rd] <<= m.Regs[in.Rs] & 31
	case OpShr:
		m.cycles += cyclesALU
		m.Regs[in.Rd] >>= m.Regs[in.Rs] & 31

	case OpAddI:
		m.cycles += cyclesALU
		m.Regs[in.Rd] += uint32(in.Imm)
	case OpSubI:
		m.cycles += cyclesALU
		m.Regs[in.Rd] -= uint32(in.Imm)
	case OpMulI:
		m.cycles += cyclesMulDiv
		m.Regs[in.Rd] *= uint32(in.Imm)
	case OpDivI:
		m.cycles += cyclesMulDiv
		if in.Imm == 0 {
			return m.fault(FaultDivZero, 0, false, "division by zero immediate")
		}
		m.Regs[in.Rd] /= uint32(in.Imm)
	case OpModI:
		m.cycles += cyclesMulDiv
		if in.Imm == 0 {
			return m.fault(FaultDivZero, 0, false, "modulo by zero immediate")
		}
		m.Regs[in.Rd] %= uint32(in.Imm)
	case OpAndI:
		m.cycles += cyclesALU
		m.Regs[in.Rd] &= uint32(in.Imm)
	case OpOrI:
		m.cycles += cyclesALU
		m.Regs[in.Rd] |= uint32(in.Imm)
	case OpXorI:
		m.cycles += cyclesALU
		m.Regs[in.Rd] ^= uint32(in.Imm)
	case OpShlI:
		m.cycles += cyclesALU
		m.Regs[in.Rd] <<= uint32(in.Imm) & 31
	case OpShrI:
		m.cycles += cyclesALU
		m.Regs[in.Rd] >>= uint32(in.Imm) & 31

	case OpCmp:
		m.cycles += cyclesALU
		m.Flags = cmp32(int32(m.Regs[in.Rd]), int32(m.Regs[in.Rs]))
	case OpCmpI:
		m.cycles += cyclesALU
		m.Flags = cmp32(int32(m.Regs[in.Rd]), in.Imm)

	case OpJmp:
		m.cycles += cyclesBranch
		nextPC = int(in.Imm)
	case OpJz:
		m.cycles += cyclesBranch
		if m.Flags == 0 {
			nextPC = int(in.Imm)
		}
	case OpJnz:
		m.cycles += cyclesBranch
		if m.Flags != 0 {
			nextPC = int(in.Imm)
		}
	case OpJlt:
		m.cycles += cyclesBranch
		if m.Flags < 0 {
			nextPC = int(in.Imm)
		}
	case OpJle:
		m.cycles += cyclesBranch
		if m.Flags <= 0 {
			nextPC = int(in.Imm)
		}
	case OpJgt:
		m.cycles += cyclesBranch
		if m.Flags > 0 {
			nextPC = int(in.Imm)
		}
	case OpJge:
		m.cycles += cyclesBranch
		if m.Flags >= 0 {
			nextPC = int(in.Imm)
		}

	case OpJmpReg:
		m.cycles += cyclesBranch
		target := m.Regs[in.Rd]
		tIdx, ok := m.IndexOfAddr(target)
		if !ok {
			return m.fault(FaultBadPC, target, false, "indirect jump outside code segment")
		}
		nextPC = tIdx

	case OpCall, OpCallReg:
		m.cycles += cyclesBranch + cyclesMem
		var targetIdx int
		if in.Op == OpCall {
			targetIdx = int(in.Imm)
		} else {
			target := m.Regs[in.Rd]
			tIdx, ok := m.IndexOfAddr(target)
			if !ok {
				return m.fault(FaultBadPC, target, false, "indirect call outside code segment")
			}
			targetIdx = tIdx
		}
		retAddr := m.AddrOfIndex(idx + 1)
		retSlot, ok := m.push(retAddr)
		if !ok {
			return m.fault(FaultPage, retSlot, true, "stack push failed during call")
		}
		if m.memDispatch || m.callDispatch {
			m.dispatchMemWrite(idx, retSlot, 4, retAddr)
			for _, h := range m.tools.call {
				m.cycles += CyclesPerHook
				h.OnCall(m, idx, targetIdx, retAddr, retSlot)
			}
			if m.pendingViolation != nil {
				return m.violationStop()
			}
		}
		nextPC = targetIdx

	case OpRet:
		m.cycles += cyclesBranch + cyclesMem
		retSlot := m.Regs[SP]
		retAddr, ok := m.Mem.ReadWord(retSlot)
		if !ok {
			return m.fault(FaultPage, retSlot, false, "stack read failed during return")
		}
		if m.memDispatch || m.callDispatch {
			m.dispatchMemRead(idx, retSlot, 4, retAddr)
			for _, h := range m.tools.call {
				m.cycles += CyclesPerHook
				h.OnRet(m, idx, retAddr, retSlot)
			}
			if m.pendingViolation != nil {
				return m.violationStop()
			}
		}
		m.Regs[SP] = retSlot + 4
		tIdx, ok := m.IndexOfAddr(retAddr)
		if !ok {
			// A hijacked return address that does not land in mapped code:
			// exactly what address-space randomisation turns attacks into.
			return m.fault(FaultBadPC, retAddr, false, "return to address outside code segment")
		}
		nextPC = tIdx

	case OpPush, OpPushI:
		m.cycles += cyclesMem
		val := m.Regs[in.Rd]
		if in.Op == OpPushI {
			val = uint32(in.Imm)
		}
		slot, ok := m.push(val)
		if !ok {
			return m.fault(FaultPage, slot, true, "stack push to unmapped memory")
		}
		if m.memDispatch {
			m.dispatchMemWrite(idx, slot, 4, val)
			if m.pendingViolation != nil {
				return m.violationStop()
			}
		}

	case OpPop:
		m.cycles += cyclesMem
		slot := m.Regs[SP]
		val, ok := m.Mem.ReadWord(slot)
		if !ok {
			return m.fault(FaultPage, slot, false, "stack pop from unmapped memory")
		}
		if m.memDispatch {
			m.dispatchMemRead(idx, slot, 4, val)
			if m.pendingViolation != nil {
				return m.violationStop()
			}
		}
		m.Regs[in.Rd] = val
		m.Regs[SP] = slot + 4

	case OpSyscall:
		m.cycles += cyclesSyscall
		num := m.Regs[R0]
		for _, h := range m.tools.syscall {
			m.cycles += CyclesPerHook
			h.BeforeSyscall(m, idx, num)
		}
		if m.pendingViolation != nil {
			return m.violationStop()
		}
		if m.sys == nil {
			return m.fault(FaultBadSyscall, num, false, "no syscall handler installed")
		}
		res, f := m.sys.Syscall(m, num)
		if f != nil {
			f.PC = idx
			f.PCAddr = m.AddrOfIndex(idx)
			f.Sym = m.SymbolAt(idx)
			for _, h := range m.tools.fault {
				h.OnFault(m, f)
			}
			m.stopped = true
			return &StopInfo{Reason: StopFault, Fault: f}
		}
		if m.pendingViolation != nil {
			return m.violationStop()
		}
		switch res {
		case SysWaitInput:
			// Leave PC on the syscall so that resuming retries it.
			return &StopInfo{Reason: StopWaitInput}
		case SysHalt:
			m.stopped = true
			return &StopInfo{Reason: StopHalt}
		}

	case OpHalt:
		m.stopped = true
		return &StopInfo{Reason: StopHalt}

	default:
		return m.fault(FaultBadPC, m.AddrOfIndex(idx), false, fmt.Sprintf("illegal opcode %d", in.Op))
	}

	if m.pendingViolation != nil {
		return m.violationStop()
	}
	m.PC = nextPC
	return nil
}

// Run executes instructions until the machine stops or the budget (number of
// instructions; 0 means unlimited) is exhausted. Nothing is allocated on the
// hot path: a StopInfo is built only when execution actually stops.
//
// Untooled machines execute through the fused basic-block dispatcher
// (runFused, see blocks.go); machines with instr or mem tools attached
// execute through the hook-calling block dispatcher (runTooled, see
// blocks_tooled.go). Instructions neither block loop can express — probed
// indexes in the fused loop, syscalls, halts — fall back to Step one
// instruction at a time. All engines retire the same instructions with the
// same accounting, so StopInstrBudget fires at exactly the same instruction
// either way.
func (m *Machine) Run(budget uint64) *StopInfo {
	remaining := ^uint64(0) // unlimited
	if budget > 0 {
		remaining = budget
	}
	for {
		if m.fastDispatch && !m.stopped && m.pendingViolation == nil {
			stop, executed := m.runFused(remaining)
			remaining -= executed
			if stop != nil {
				return stop
			}
		} else if m.tooledDispatch && !m.stopped && m.pendingViolation == nil {
			var stop *StopInfo
			var executed uint64
			if m.lightTooled {
				stop, executed = m.runTooledLight(remaining)
			} else {
				stop, executed = m.runTooled(remaining)
			}
			remaining -= executed
			if stop != nil {
				return stop
			}
		}
		if remaining == 0 {
			return &StopInfo{Reason: StopInstrBudget}
		}
		if stop := m.Step(); stop != nil {
			return stop
		}
		remaining--
	}
}

// Halted reports whether the machine has permanently stopped.
func (m *Machine) Halted() bool { return m.stopped }

// ClearStop clears a previous fault/halt condition so that execution can be
// resumed after state has been externally repaired (used by rollback).
func (m *Machine) ClearStop() { m.stopped = false; m.pendingViolation = nil }

// RegSnapshot captures registers, PC, flags and clock for checkpointing.
type RegSnapshot struct {
	Regs       [NumRegs]uint32
	PC         int
	Flags      int
	Cycles     uint64
	InstrCount uint64
}

// SaveRegs captures the CPU register state.
func (m *Machine) SaveRegs() RegSnapshot {
	return RegSnapshot{Regs: m.Regs, PC: m.PC, Flags: m.Flags, Cycles: m.cycles, InstrCount: m.instrCount}
}

// RestoreRegs restores a previously captured CPU register state.
func (m *Machine) RestoreRegs(s RegSnapshot) {
	m.Regs = s.Regs
	m.PC = s.PC
	m.Flags = s.Flags
	m.cycles = s.Cycles
	m.instrCount = s.InstrCount
	m.stopped = false
	m.pendingViolation = nil
}

// EffectiveAddr computes the data address accessed by a load/store/push/pop
// instruction given the current register state, for analysis tools that need
// it before execution.
func (m *Machine) EffectiveAddr(in *Instr) (addr uint32, size int, isWrite bool, ok bool) {
	switch in.Op {
	case OpLoadB:
		return m.Regs[in.Rs] + uint32(in.Imm), 1, false, true
	case OpLoadW:
		return m.Regs[in.Rs] + uint32(in.Imm), 4, false, true
	case OpStoreB:
		return m.Regs[in.Rd] + uint32(in.Imm), 1, true, true
	case OpStoreW:
		return m.Regs[in.Rd] + uint32(in.Imm), 4, true, true
	case OpPush, OpPushI, OpCall, OpCallReg:
		return m.Regs[SP] - 4, 4, true, true
	case OpPop, OpRet:
		return m.Regs[SP], 4, false, true
	}
	return 0, 0, false, false
}

func cmp32(a, b int32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
