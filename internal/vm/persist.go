package vm

import (
	"crypto/sha256"
	"sync"
)

// This file is the vm side of checkpoint persistence: walking a snapshot's
// pages with content hashes (so the disk store can write content-addressed
// page files, CXL-style — many consumers referencing one immutable page
// image) and rebuilding a chain-root snapshot from persisted page contents
// through the BaseStore, so warm-restarted guests share pages with every
// live guest and daemon in the process.

// PageRef is a read-only handle to one frozen page of a flattened snapshot.
type PageRef struct{ p *page }

// Data returns the page's content. The page is frozen and shared; callers
// must treat the returned array as immutable.
func (r PageRef) Data() *[PageSize]byte { return &r.p.data }

// pageHashMu guards the lazily computed content-hash cache on frozen pages.
// Frozen page data is immutable, so a cached hash never goes stale; the
// mutex only orders the cache fill against concurrent readers.
var pageHashMu sync.Mutex

// Hash returns the sha256 of the page content, caching it on the page so
// repeated persists of a shared page hash it once per process.
func (r PageRef) Hash() [32]byte {
	pageHashMu.Lock()
	if !r.p.hashed {
		r.p.hash = sha256.Sum256(r.p.data[:])
		r.p.hashed = true
	}
	h := r.p.hash
	pageHashMu.Unlock()
	return h
}

// Same reports whether two refs point at the identical page object. Frozen
// pages are immutable and shared, so pointer identity means content
// identity — the disk store uses it to skip re-hashing unchanged pages
// between consecutive persists.
func (r PageRef) Same(o PageRef) bool { return r.p == o.p }

// VisitPages flattens the snapshot (memoising the result, as Restore would)
// and calls fn for every mapped page. All visited pages are frozen.
func (s *MemSnapshot) VisitPages(fn func(pn uint32, ref PageRef)) {
	for pn, p := range s.flatten() {
		fn(pn, PageRef{p: p})
	}
}

// InternSnapshot rebuilds a chain-root snapshot from persisted page
// contents, interning every page in the store. Pages whose content already
// exists in the store — a base-image page no guest dirtied, or a page
// another restarted guest already loaded — are shared rather than
// duplicated, so N daemons restoring same-program guests pay for one copy
// of each distinct page, mirroring BaseImage's economics. The returned
// snapshot has captured == 0: restoring it costs the guest's virtual clock
// nothing.
func (b *BaseStore) InternSnapshot(pages map[uint32][]byte) *MemSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	flat := make(map[uint32]*page, len(pages))
	for pn, data := range pages {
		p := &page{}
		copy(p.data[:], data)
		flat[pn] = b.intern(p)
	}
	s := &MemSnapshot{delta: flat, count: len(flat)}
	s.flat = flat
	return s
}
