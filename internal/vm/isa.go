// Package vm implements a small 32-bit register virtual machine with
// per-instruction, per-memory-access and per-call instrumentation hooks.
//
// The VM stands in for the paper's combination of real x86 binaries and the
// PIN dynamic binary instrumentation framework: analysis tools (memory-bug
// detection, dynamic taint analysis, backward slicing) and antibodies (VSEFs)
// attach and detach instrumentation at runtime, exactly as Sweeper attaches
// PIN tools to a replayed execution after an attack is detected.
package vm

import "fmt"

// Reg identifies a machine register.
type Reg uint8

// General purpose and special registers. R0 carries return values and
// syscall numbers; R1-R3 carry arguments. SP is the stack pointer and BP
// the frame base pointer.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	SP
	BP
	// NumRegs is the number of addressable registers.
	NumRegs
	// RegNone marks an unused register operand.
	RegNone Reg = 0xFF
)

var regNames = [...]string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "sp", "bp"}

// String returns the assembler name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes. Arithmetic/logic ops come in register (Rd op= Rs) and
// immediate (Rd op= Imm) forms so analysis tools can tell data sources apart
// without decoding addressing modes.
const (
	OpNop Op = iota

	OpMovI // Rd = Imm
	OpMov  // Rd = Rs
	OpLea  // Rd = Rs + Imm

	OpLoadB  // Rd = zeroext(mem8[Rs+Imm])
	OpLoadW  // Rd = mem32[Rs+Imm]
	OpStoreB // mem8[Rd+Imm] = low8(Rs)
	OpStoreW // mem32[Rd+Imm] = Rs

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	OpAddI
	OpSubI
	OpMulI
	OpDivI
	OpModI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI

	OpCmp  // flags = sign(Rd - Rs)
	OpCmpI // flags = sign(Rd - Imm)

	OpJmp // PC = Imm (instruction index)
	OpJz
	OpJnz
	OpJlt
	OpJle
	OpJgt
	OpJge
	OpJmpReg // PC = addr in Rd (indirect jump)

	OpCall    // push return address; PC = Imm
	OpCallReg // push return address; PC = addr in Rd (indirect call)
	OpRet     // pop return address

	OpPush  // push Rd
	OpPushI // push Imm
	OpPop   // Rd = pop

	OpSyscall // invoke host syscall handler; number in R0
	OpHalt    // stop the machine

	numOps
)

var opNames = [...]string{
	OpNop:  "nop",
	OpMovI: "movi", OpMov: "mov", OpLea: "lea",
	OpLoadB: "loadb", OpLoadW: "loadw", OpStoreB: "storeb", OpStoreW: "storew",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddI: "addi", OpSubI: "subi", OpMulI: "muli", OpDivI: "divi", OpModI: "modi",
	OpAndI: "andi", OpOrI: "ori", OpXorI: "xori", OpShlI: "shli", OpShrI: "shri",
	OpCmp: "cmp", OpCmpI: "cmpi",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpJlt: "jlt", OpJle: "jle", OpJgt: "jgt", OpJge: "jge",
	OpJmpReg: "jmpr",
	OpCall:   "call", OpCallReg: "callr", OpRet: "ret",
	OpPush: "push", OpPushI: "pushi", OpPop: "pop",
	OpSyscall: "syscall", OpHalt: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// IsBranch reports whether the opcode may change control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpJmp, OpJz, OpJnz, OpJlt, OpJle, OpJgt, OpJge, OpJmpReg, OpCall, OpCallReg, OpRet:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpJz, OpJnz, OpJlt, OpJle, OpJgt, OpJge:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads from memory (excluding pops).
func (o Op) IsLoad() bool { return o == OpLoadB || o == OpLoadW }

// IsStore reports whether the opcode writes to memory (excluding pushes).
func (o Op) IsStore() bool { return o == OpStoreB || o == OpStoreW }

// InstrSize is the notional encoded size of one instruction in bytes; code
// addresses are CodeBase + InstrSize*index.
const InstrSize = 4

// Instr is a single decoded instruction. Instructions are stored decoded;
// the notional encoding occupies InstrSize bytes so that every instruction
// has a unique address usable in VSEFs and stored return addresses.
type Instr struct {
	Op  Op
	Rd  Reg    // destination / base register
	Rs  Reg    // source register
	Imm int32  // immediate, displacement or branch target (instruction index)
	Sym string // enclosing function symbol, for diagnostics and VSEF context
}

// String renders the instruction in assembler-like syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpRet, OpHalt, OpSyscall:
		return in.Op.String()
	case OpMovI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs)
	case OpLea:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Rd, in.Rs, in.Imm)
	case OpLoadB, OpLoadW:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Rd, in.Rs, in.Imm)
	case OpStoreB, OpStoreW:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, in.Rd, in.Imm, in.Rs)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs)
	case OpAddI, OpSubI, OpMulI, OpDivI, OpModI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpCmpI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpJmp, OpJz, OpJnz, OpJlt, OpJle, OpJgt, OpJge, OpCall:
		return fmt.Sprintf("%s @%d", in.Op, in.Imm)
	case OpJmpReg, OpCallReg:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	case OpPush, OpPop:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	case OpPushI:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	}
	return fmt.Sprintf("%s rd=%s rs=%s imm=%d", in.Op, in.Rd, in.Rs, in.Imm)
}
