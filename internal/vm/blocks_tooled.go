package vm

import "encoding/binary"

// tlbTryReadWord is ReadWord's TLB-hit path, kept under the inlining budget
// by reporting a miss (hit=false) instead of falling back itself; the caller
// pays the full ReadWord call only on the miss. Reading the TLB fresh at
// every access (rather than mirroring it in locals like runFused) keeps it
// valid no matter what an interleaved hook did to guest memory.
func tlbTryReadWord(mem *Memory, addr uint32) (val uint32, hit bool) {
	// PN match implies rtlb non-nil: an empty entry carries tlbMissPN.
	if addr>>PageShift == mem.rtlbPN && addr&(PageSize-1) <= PageSize-4 {
		return binary.LittleEndian.Uint32(mem.rtlb.data[addr&(PageSize-1):]), true
	}
	return 0, false
}

// tlbTryWriteWord is WriteWord's TLB-hit path narrowed to the steady-state
// case that dominates dispatch-loop traffic: the target word already lies
// inside the page's single dirty run (stack slots are rewritten constantly),
// so no run bookkeeping is needed at all. Everything else — TLB miss,
// page-spanning write, run extension, fragmented runs — reports false and is
// handled by the caller's full WriteWord fallback, which pays the markRun
// cost exactly as it did before this fast path existed.
func tlbTryWriteWord(mem *Memory, addr uint32, val uint32) bool {
	// PN match implies wtlb non-nil: an empty entry carries tlbMissPN.
	o := addr & (PageSize - 1)
	if addr>>PageShift != mem.wtlbPN || o > PageSize-4 {
		return false
	}
	p := mem.wtlb
	r := &p.runs[0]
	lo := uint16(o)
	if p.nruns != 1 || lo < r.lo || lo+4 > r.hi {
		return false
	}
	binary.LittleEndian.PutUint32(p.data[o:], val)
	return true
}

// Tooled basic-block dispatch.
//
// runFused (blocks.go) serves untooled guests; before this engine existed,
// attaching an instruction or memory tool dropped the machine all the way
// back to per-Step execution, which is what made monitored guests, analysis
// replays and verification sandboxes several times slower than the block
// path. runTooled is the hook-calling variant of the fused loop: it executes
// the packed micro-op stream directly and dispatches instr/mem/call hooks
// and probes inline, with exactly Step's ordering, cycle charges, violation
// semantics and fault attribution.
//
// It runs the PLAIN (unfused) micro-op encoding: hooks must observe every
// architectural instruction, and a fused pair would hide its second half
// from BeforeInstr and collapse the push/pop memory traffic mem hooks watch.
// What makes the loop faster than Step is everything around the hooks: no
// per-instruction function call, an 8-byte micro-op fetch instead of a full
// Instr decode, hoisted tool dispatch state, and cycle/instruction/PC
// accounting accumulated in locals and committed only at exits. Unlike
// runFused, guest-visible machine state (registers, flags, memory) is
// operated on in place, never mirrored in locals: a hook may read or write
// any of it at every dispatch point, so there is nothing to keep
// re-synchronised — which also means the loop leans on Memory's own
// one-entry TLBs rather than local mirrors a hook's write could invalidate.
//
// The virtual clock and retired-instruction count are the one documented
// relaxation: they are committed at every stop and at every fall-back to
// Step — so all stop-time accounting and every reading outside Run is
// bit-identical to Step — but a hook reading them mid-run sees the value as
// of loop entry. No in-tree tool does.
//
// Syscalls, halts and illegal opcodes hand back to Run's Step fall-back
// BEFORE any hook dispatch here, so their hooks fire exactly once, in Step.
func (m *Machine) runTooled(limit uint64) (stop *StopInfo, executed uint64) {
	if m.uopsPlain == nil {
		m.uopsPlain = m.img.plainUops()
	}
	var (
		uops = m.uopsPlain
		code = m.code
		mem  = m.Mem
		pc   = m.PC
		done uint64
		cyc  uint64
	)
	// Length equality the prove pass uses to elide bounds checks: plain uops
	// mirror code one-to-one.
	if len(code) != len(uops) || len(m.probes) != len(uops) {
		return nil, 0 // unreachable: all are sized from the code array
	}
	// Hoisted instrumentation state. Tools and probes can only change between
	// run slices from the host's point of view (no in-tree hook attaches or
	// detaches instrumentation mid-run); a change made by a hook is observed
	// at the next runTooled entry or Step fall-back. The single-instr-hook
	// case — a guest under exactly one monitor or analysis tracker — skips
	// the slice loop entirely.
	instr := m.tools.instr
	call := m.tools.call
	memHooks := m.memDispatch
	callHooks := m.callDispatch
	probes := m.probes
	hasProbes := m.probeCount > 0
	instrHooks := len(instr) > 0 || hasProbes
	var h0 InstrHook
	if len(instr) == 1 {
		h0 = instr[0]
	}

	for done < limit {
		if uint(pc) >= uint(len(uops)) {
			m.commitTooled(pc, done, cyc)
			return m.badPCFault(), done
		}
		u := uops[pc]
		op := Op(u & uopOpMask)
		if op >= OpSyscall {
			// Syscall, halt or illegal opcode: Step owns their hook dispatch
			// and execution, so return before any hook fires here.
			m.commitTooled(pc, done, cyc)
			return nil, done
		}
		if instrHooks {
			// Hooks observe the architectural PC (RaiseViolation and probe
			// findings attribute to it), so it is stored before dispatch.
			m.PC = pc
			if h0 != nil {
				cyc += CyclesPerHook
				h0.BeforeInstr(m, pc, &code[pc])
			} else {
				for _, h := range instr {
					cyc += CyclesPerHook
					h.BeforeInstr(m, pc, &code[pc])
				}
			}
			if hasProbes {
				if ps := probes[pc]; len(ps) > 0 {
					in := &code[pc]
					for _, p := range ps {
						cyc += CyclesPerProbe
						p.OnProbe(m, pc, in)
					}
				}
			}
			if m.pendingViolation != nil {
				// Raised before execution: the instruction neither runs nor
				// counts, exactly as in Step.
				m.commitTooled(pc, done, cyc)
				return m.violationStop(), done
			}
		}
		done++
		// Dispatch specialization mirroring runFused: resolve the most
		// frequent ALU op and the unconditional block terminator through
		// predictable direct compares before paying the switch's indirect
		// jump.
		if op == OpAddI {
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] += uint32(u >> 32)
			pc++
			continue
		}
		if op == OpJmp {
			cyc += cyclesBranch
			pc = int(int32(uint32(u >> 32)))
			continue
		}
		nextPC := pc + 1

		switch op {
		case OpNop:
			cyc += cyclesALU

		case OpMovI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] = uint32(u >> 32)
		case OpMov:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] = m.Regs[uint8(u>>uopRsShift)]
		case OpLea:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] = m.Regs[uint8(u>>uopRsShift)] + uint32(u>>32)

		case OpLoadB, OpLoadW:
			cyc += cyclesMem
			addr := m.Regs[uint8(u>>uopRsShift)] + uint32(u>>32)
			var val uint32
			if op == OpLoadW {
				v, hit := tlbTryReadWord(mem, addr)
				if !hit {
					var ok bool
					if v, ok = mem.ReadWord(addr); !ok {
						m.commitTooled(pc, done, cyc)
						return m.fault(FaultPage, addr, false, "read from unmapped memory"), done
					}
				}
				val = v
			} else {
				b, ok := mem.ReadU8(addr)
				if !ok {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, addr, false, "read from unmapped memory"), done
				}
				val = uint32(b)
			}
			if memHooks {
				size := 4
				if op == OpLoadB {
					size = 1
				}
				m.PC = pc
				m.dispatchMemRead(pc, addr, size, val)
				if m.pendingViolation != nil {
					// The destination register is not written, as in Step.
					m.commitTooled(pc, done, cyc)
					return m.violationStop(), done
				}
			}
			m.Regs[uint8(u>>uopRdShift)] = val

		case OpStoreB, OpStoreW:
			cyc += cyclesMem
			addr := m.Regs[uint8(u>>uopRdShift)] + uint32(u>>32)
			val := m.Regs[uint8(u>>uopRsShift)]
			if op == OpStoreW {
				if !tlbTryWriteWord(mem, addr, val) && !mem.WriteWord(addr, val) {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, addr, true, "write to unmapped memory"), done
				}
			} else {
				if !mem.WriteU8(addr, byte(val)) {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, addr, true, "write to unmapped memory"), done
				}
			}
			if memHooks {
				size := 4
				if op == OpStoreB {
					size = 1
				}
				m.PC = pc
				m.dispatchMemWrite(pc, addr, size, val)
				if m.pendingViolation != nil {
					m.commitTooled(pc, done, cyc)
					return m.violationStop(), done
				}
			}

		case OpAdd:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] += m.Regs[uint8(u>>uopRsShift)]
		case OpSub:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] -= m.Regs[uint8(u>>uopRsShift)]
		case OpMul:
			cyc += cyclesMulDiv
			m.Regs[uint8(u>>uopRdShift)] *= m.Regs[uint8(u>>uopRsShift)]
		case OpDiv:
			cyc += cyclesMulDiv
			if m.Regs[uint8(u>>uopRsShift)] == 0 {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultDivZero, 0, false, "division by zero"), done
			}
			m.Regs[uint8(u>>uopRdShift)] /= m.Regs[uint8(u>>uopRsShift)]
		case OpMod:
			cyc += cyclesMulDiv
			if m.Regs[uint8(u>>uopRsShift)] == 0 {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultDivZero, 0, false, "modulo by zero"), done
			}
			m.Regs[uint8(u>>uopRdShift)] %= m.Regs[uint8(u>>uopRsShift)]
		case OpAnd:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] &= m.Regs[uint8(u>>uopRsShift)]
		case OpOr:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] |= m.Regs[uint8(u>>uopRsShift)]
		case OpXor:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] ^= m.Regs[uint8(u>>uopRsShift)]
		case OpShl:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] <<= m.Regs[uint8(u>>uopRsShift)] & 31
		case OpShr:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] >>= m.Regs[uint8(u>>uopRsShift)] & 31

		case OpSubI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] -= uint32(u >> 32)
		case OpMulI:
			cyc += cyclesMulDiv
			m.Regs[uint8(u>>uopRdShift)] *= uint32(u >> 32)
		case OpDivI:
			cyc += cyclesMulDiv
			if uint32(u>>32) == 0 {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultDivZero, 0, false, "division by zero immediate"), done
			}
			m.Regs[uint8(u>>uopRdShift)] /= uint32(u >> 32)
		case OpModI:
			cyc += cyclesMulDiv
			if uint32(u>>32) == 0 {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultDivZero, 0, false, "modulo by zero immediate"), done
			}
			m.Regs[uint8(u>>uopRdShift)] %= uint32(u >> 32)
		case OpAndI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] &= uint32(u >> 32)
		case OpOrI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] |= uint32(u >> 32)
		case OpXorI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] ^= uint32(u >> 32)
		case OpShlI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] <<= uint32(u>>32) & 31
		case OpShrI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] >>= uint32(u>>32) & 31

		case OpCmp:
			cyc += cyclesALU
			m.Flags = cmp32(int32(m.Regs[uint8(u>>uopRdShift)]), int32(m.Regs[uint8(u>>uopRsShift)]))
		case OpCmpI:
			cyc += cyclesALU
			m.Flags = cmp32(int32(m.Regs[uint8(u>>uopRdShift)]), int32(uint32(u>>32)))

		case OpJz:
			cyc += cyclesBranch
			if m.Flags == 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJnz:
			cyc += cyclesBranch
			if m.Flags != 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJlt:
			cyc += cyclesBranch
			if m.Flags < 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJle:
			cyc += cyclesBranch
			if m.Flags <= 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJgt:
			cyc += cyclesBranch
			if m.Flags > 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJge:
			cyc += cyclesBranch
			if m.Flags >= 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}

		case OpJmpReg:
			cyc += cyclesBranch
			target := m.Regs[uint8(u>>uopRdShift)]
			tIdx, ok := m.IndexOfAddr(target)
			if !ok {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultBadPC, target, false, "indirect jump outside code segment"), done
			}
			nextPC = tIdx

		case OpCall, OpCallReg:
			cyc += cyclesBranch + cyclesMem
			var targetIdx int
			if op == OpCall {
				targetIdx = int(int32(uint32(u >> 32)))
			} else {
				target := m.Regs[uint8(u>>uopRdShift)]
				tIdx, ok := m.IndexOfAddr(target)
				if !ok {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultBadPC, target, false, "indirect call outside code segment"), done
				}
				targetIdx = tIdx
			}
			retAddr := m.AddrOfIndex(pc + 1)
			sp := m.Regs[SP] - 4
			if !tlbTryWriteWord(mem, sp, retAddr) && !mem.WriteWord(sp, retAddr) {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultPage, sp, true, "stack push failed during call"), done
			}
			m.Regs[SP] = sp
			if memHooks || callHooks {
				m.PC = pc
				m.dispatchMemWrite(pc, sp, 4, retAddr)
				for _, h := range call {
					cyc += CyclesPerHook
					h.OnCall(m, pc, targetIdx, retAddr, sp)
				}
				if m.pendingViolation != nil {
					m.commitTooled(pc, done, cyc)
					return m.violationStop(), done
				}
			}
			nextPC = targetIdx

		case OpRet:
			cyc += cyclesBranch + cyclesMem
			retSlot := m.Regs[SP]
			retAddr, hit := tlbTryReadWord(mem, retSlot)
			if !hit {
				var ok bool
				if retAddr, ok = mem.ReadWord(retSlot); !ok {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, retSlot, false, "stack read failed during return"), done
				}
			}
			if memHooks || callHooks {
				m.PC = pc
				m.dispatchMemRead(pc, retSlot, 4, retAddr)
				for _, h := range call {
					cyc += CyclesPerHook
					h.OnRet(m, pc, retAddr, retSlot)
				}
				if m.pendingViolation != nil {
					// SP is not yet bumped past the return slot, as in Step.
					m.commitTooled(pc, done, cyc)
					return m.violationStop(), done
				}
			}
			m.Regs[SP] = retSlot + 4
			tIdx, ok := m.IndexOfAddr(retAddr)
			if !ok {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultBadPC, retAddr, false, "return to address outside code segment"), done
			}
			nextPC = tIdx

		case OpPush, OpPushI:
			cyc += cyclesMem
			val := m.Regs[uint8(u>>uopRdShift)]
			if op == OpPushI {
				val = uint32(u >> 32)
			}
			sp := m.Regs[SP] - 4
			if !tlbTryWriteWord(mem, sp, val) && !mem.WriteWord(sp, val) {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultPage, sp, true, "stack push to unmapped memory"), done
			}
			m.Regs[SP] = sp
			if memHooks {
				m.PC = pc
				m.dispatchMemWrite(pc, sp, 4, val)
				if m.pendingViolation != nil {
					m.commitTooled(pc, done, cyc)
					return m.violationStop(), done
				}
			}

		case OpPop:
			cyc += cyclesMem
			slot := m.Regs[SP]
			val, hit := tlbTryReadWord(mem, slot)
			if !hit {
				var ok bool
				if val, ok = mem.ReadWord(slot); !ok {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, slot, false, "stack pop from unmapped memory"), done
				}
			}
			if memHooks {
				m.PC = pc
				m.dispatchMemRead(pc, slot, 4, val)
				if m.pendingViolation != nil {
					// Rd and SP are not yet updated, as in Step.
					m.commitTooled(pc, done, cyc)
					return m.violationStop(), done
				}
			}
			m.Regs[uint8(u>>uopRdShift)] = val
			m.Regs[SP] = slot + 4
		}
		// No trailing pendingViolation check: every path that can raise one
		// (the hook dispatches above) already returned, matching Step's
		// end-of-instruction check by construction.
		pc = nextPC
	}
	m.commitTooled(pc, done, cyc)
	return nil, done
}

// commitTooled flushes the tooled loop's batched accounting back to the
// machine: pc becomes the architectural PC, and the retired-instruction and
// cycle deltas accumulated since runTooled was entered are charged.
func (m *Machine) commitTooled(pc int, done, cyc uint64) {
	m.PC = pc
	m.instrCount += done
	m.cycles += cyc
}
