package vm

// Tool is an instrumentation tool that can be attached to a running Machine.
// A tool implements any subset of the optional hook interfaces below; the
// machine only dispatches the hooks a tool actually implements. This mirrors
// PIN-style dynamic binary instrumentation: tools are attached and detached
// at runtime, including in the middle of an execution being replayed.
type Tool interface {
	// Name identifies the tool in violations and reports.
	Name() string
}

// InstrHook receives a callback before every executed instruction. in points
// into the machine's loaded code image (shared across every machine at the
// same layout): it is valid only for the duration of the call and must be
// treated as read-only. Passing a pointer keeps the per-instruction dispatch
// in the block engines from copying the three-word Instr on every call.
type InstrHook interface {
	BeforeInstr(m *Machine, idx int, in *Instr)
}

// MemHook receives callbacks for every data memory access (loads, stores,
// pushes and pops). idx is the index of the instruction performing the access.
type MemHook interface {
	OnMemRead(m *Machine, idx int, addr uint32, size int, val uint32)
	OnMemWrite(m *Machine, idx int, addr uint32, size int, val uint32)
}

// CallHook receives callbacks at calls and returns. retSlot is the stack
// address holding the return address; retAddr is the return address value.
type CallHook interface {
	OnCall(m *Machine, idx int, targetIdx int, retAddr uint32, retSlot uint32)
	OnRet(m *Machine, idx int, retAddr uint32, retSlot uint32)
}

// AllocHook receives callbacks from the heap allocator syscalls.
type AllocHook interface {
	OnMalloc(m *Machine, idx int, addr uint32, size uint32)
	OnFree(m *Machine, idx int, addr uint32)
}

// InputHook receives a callback whenever untrusted input bytes are copied
// into guest memory (the recv syscall). Taint analysis uses it to introduce
// taint labels.
type InputHook interface {
	OnInput(m *Machine, addr uint32, data []byte, requestID int)
}

// SyscallHook receives a callback before every syscall.
type SyscallHook interface {
	BeforeSyscall(m *Machine, idx int, num uint32)
}

// RollbackHook is implemented by tools and probes whose internal state
// shadows the guest's execution (saved return addresses, shadow stacks,
// taint labels). The machine invokes it when the process is rolled back to a
// checkpoint: shadow state accumulated by the abandoned execution describes
// memory that no longer exists, and letting it leak into the re-execution
// produces false violations (e.g. an adopted taint VSEF still considering
// bytes of the excised attack request tainted during recovery replay).
type RollbackHook interface {
	OnRollback(m *Machine)
}

// FaultHook receives a callback when the machine raises a hardware fault.
type FaultHook interface {
	OnFault(m *Machine, f *Fault)
}

// toolSet caches tools by the hook interfaces they implement so the hot
// interpreter loop does not perform interface type assertions per instruction.
type toolSet struct {
	all     []Tool
	instr   []InstrHook
	mem     []MemHook
	call    []CallHook
	alloc   []AllocHook
	input   []InputHook
	syscall []SyscallHook
	fault   []FaultHook
}

func (ts *toolSet) rebuild() {
	ts.instr = ts.instr[:0]
	ts.mem = ts.mem[:0]
	ts.call = ts.call[:0]
	ts.alloc = ts.alloc[:0]
	ts.input = ts.input[:0]
	ts.syscall = ts.syscall[:0]
	ts.fault = ts.fault[:0]
	for _, t := range ts.all {
		if h, ok := t.(InstrHook); ok {
			ts.instr = append(ts.instr, h)
		}
		if h, ok := t.(MemHook); ok {
			ts.mem = append(ts.mem, h)
		}
		if h, ok := t.(CallHook); ok {
			ts.call = append(ts.call, h)
		}
		if h, ok := t.(AllocHook); ok {
			ts.alloc = append(ts.alloc, h)
		}
		if h, ok := t.(InputHook); ok {
			ts.input = append(ts.input, h)
		}
		if h, ok := t.(SyscallHook); ok {
			ts.syscall = append(ts.syscall, h)
		}
		if h, ok := t.(FaultHook); ok {
			ts.fault = append(ts.fault, h)
		}
	}
}

func (ts *toolSet) attach(t Tool) {
	ts.all = append(ts.all, t)
	ts.rebuild()
}

func (ts *toolSet) detach(name string) bool {
	for i, t := range ts.all {
		if t.Name() == name {
			ts.all = append(ts.all[:i], ts.all[i+1:]...)
			ts.rebuild()
			return true
		}
	}
	return false
}

func (ts *toolSet) detachAll() {
	ts.all = nil
	ts.rebuild()
}

func (ts *toolSet) find(name string) Tool {
	for _, t := range ts.all {
		if t.Name() == name {
			return t
		}
	}
	return nil
}
