package vm

import (
	"bytes"
	"fmt"
	"maps"
	"sort"
	"sync"
)

// PageSize is the granularity of guest memory mapping and of copy-on-write
// checkpointing.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// maxSnapChainDepth bounds how many incremental snapshot deltas may chain
// before a snapshot is flattened eagerly. The cap keeps Restore/Fork of an
// arbitrary snapshot O(mapped pages) instead of O(history), and bounds the
// memory retained by the delta chain; amortised over the chain, flattening
// adds O(mapped/maxSnapChainDepth) work per snapshot.
const maxSnapChainDepth = 32

// patchMaxRunBytes is the largest dirty run Snapshot() captures as a sub-page
// patch. A page whose run grew beyond it (a sequential writer filling the
// page) is frozen whole instead — zero copy at snapshot time, one full-page
// COW clone on the next write — which is exactly the pre-sub-page behaviour,
// so bulk-writing guests cannot regress.
const patchMaxRunBytes = PageSize / 2

// maxPageRuns is how many disjoint dirty runs a page tracks per epoch before
// new writes start merging into the nearest existing run. A single watermark
// regressed to whole-page capture for alternating-end writers (a guest
// touching both a page's header and trailer each request blows one [lo,hi)
// span past patchMaxRunBytes); a small fixed list keeps those guests sub-page
// while bounding the per-write tracking cost.
const maxPageRuns = 3

// byteRun is one dirty byte span [lo, hi) within a page.
type byteRun struct {
	lo, hi uint16
}

// page is one 4 KiB guest page. owner identifies the Memory that may write
// the page in place; a nil owner marks the page frozen — captured by a
// snapshot (or adopted from one), shared copy-on-write, and never written in
// place again by anyone.
//
// Owned pages additionally carry up to maxPageRuns dirty runs: the disjoint
// byte spans written since the last snapshot epoch (nruns == 0 means clean).
// Snapshot() uses them to capture only the runs — sub-page patches chained to
// the parent snapshot's version of the page — instead of freezing the whole
// page, when the page's epoch-start content is reconstructible from the
// parent chain (inParent). The run fields are only ever touched while the
// page is owned; frozen pages are immutable, as before.
type page struct {
	owner    *Memory
	nruns    uint8
	inParent bool
	// hashed/hash cache the page's content hash once frozen (see
	// PageRef.Hash; guarded by pageHashMu, never set on owned pages).
	hashed bool
	hash   [32]byte
	runs   [maxPageRuns]byteRun
	data   [PageSize]byte
}

func (p *page) clone(owner *Memory) *page {
	// A page cloned from a frozen page existed, with exactly this content, in
	// the snapshot chain the freeze belongs to: its future dirty runs can be
	// captured as patches against that parent version.
	np := &page{owner: owner, inParent: true}
	np.data = p.data
	return np
}

// markRun records the write [off, end) in the page's dirty-run list. The
// single-run overlap case — a guest hammering one spot or streaming
// sequentially, by far the hottest pattern — is handled here inline (two
// compares, like the old single-watermark scheme, and no coalescing since
// there is nothing to merge with); everything else goes to markRunSlow.
func (p *page) markRun(off, end uint16) {
	if p.nruns == 1 {
		r := &p.runs[0]
		if off <= r.hi && end >= r.lo {
			if off < r.lo {
				r.lo = off
			}
			if end > r.hi {
				r.hi = end
			}
			return
		}
	}
	p.markRunSlow(off, end)
}

// markRunSlow is the multi-run path: extend the run the write overlaps or
// touches, start a new run while slots are free, and once the list is full
// merge into the run whose extension captures the fewest extra bytes.
func (p *page) markRunSlow(off, end uint16) {
	n := int(p.nruns)
	for i := 0; i < n; i++ {
		r := &p.runs[i]
		if off <= r.hi && end >= r.lo {
			if off < r.lo {
				r.lo = off
			}
			if end > r.hi {
				r.hi = end
			}
			p.coalesceRuns(i)
			return
		}
	}
	if n < maxPageRuns {
		p.runs[n] = byteRun{lo: off, hi: end}
		p.nruns++
		return
	}
	// All slots taken and the write is disjoint from every run: absorb it
	// into the run that grows least, trading a few captured gap bytes for the
	// bounded list.
	best, bestCost := 0, PageSize+1
	for i := 0; i < n; i++ {
		r := p.runs[i]
		cost := 0
		if off < r.lo {
			cost = int(r.lo) - int(off)
		} else {
			cost = int(end) - int(r.hi)
		}
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	r := &p.runs[best]
	if off < r.lo {
		r.lo = off
	}
	if end > r.hi {
		r.hi = end
	}
	p.coalesceRuns(best)
}

// coalesceRuns merges any run that the just-extended run i now overlaps or
// touches, keeping the list disjoint. With at most three runs a single pass
// restarted on merge is cheap and simple.
func (p *page) coalesceRuns(i int) {
	for {
		merged := false
		ri := &p.runs[i]
		for j := int(p.nruns) - 1; j >= 0; j-- {
			if j == i {
				continue
			}
			rj := p.runs[j]
			if rj.lo > ri.hi || rj.hi < ri.lo {
				continue
			}
			if rj.lo < ri.lo {
				ri.lo = rj.lo
			}
			if rj.hi > ri.hi {
				ri.hi = rj.hi
			}
			// Remove run j by swapping the last run into its slot.
			last := int(p.nruns) - 1
			p.runs[j] = p.runs[last]
			p.nruns--
			if i == last {
				i = j
				ri = &p.runs[i]
			}
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}

// Memory is a sparse, paged, byte-addressable 32-bit guest address space with
// generation-tagged dirty tracking and copy-on-write snapshot support. Page
// zero is never mapped, so NULL pointer dereferences fault.
//
// Snapshots are incremental and sub-page aware: Snapshot() captures only the
// pages written, mapped or unmapped since the previous snapshot (the dirty
// set), chaining the delta to that previous snapshot — and a page whose
// writes stayed within a small byte run is captured as a run patch rather
// than a whole page. Steady-state checkpoints are therefore O(dirty bytes),
// not O(all mapped pages).
type Memory struct {
	// pages is the live page table. It may be shared read-only with the
	// snapshot it was restored from (pagesShared); any structural mutation
	// (mapping, unmapping, COW-cloning an entry) first takes a private copy.
	pages       map[uint32]*page
	pagesShared bool

	// dirty holds the pages written or mapped since the last snapshot; dels
	// holds the pages unmapped since the last snapshot. A page captured as a
	// sub-page patch stays owned by this Memory across the snapshot (its
	// watermark resets), so owned pages are a superset of the dirty set.
	dirty map[uint32]struct{}
	dels  map[uint32]struct{}

	// owned counts the pages in the table owned by this Memory; the rest are
	// frozen, i.e. shared copy-on-write with snapshots.
	owned int

	// lastSnap is the snapshot the dirty/dels sets are relative to.
	lastSnap *MemSnapshot

	// One-entry translation caches for the interpreter hot path: the last
	// page resolved for a read (rtlb) and the last page resolved writable
	// (wtlb), keyed by page number. A wtlb hit carries the writablePage
	// invariants with it — the page is owned, watermarked and in the dirty
	// set — so a hot write skips the owner check, the dirty-set insert and
	// the page-table lookup, leaving only the watermark update and the store.
	// Snapshot/Restore/Unmap invalidate (see invalidateTLB); the COW clone in
	// writablePage redirects rtlb so reads never see a stale frozen page.
	rtlb   *page
	wtlb   *page
	rtlbPN uint32
	wtlbPN uint32
}

// tlbMissPN is the page-number value carried by an empty TLB entry. No guest
// address can reach it (addr>>PageShift is at most 1<<(32-PageShift) - 1), so
// a PN compare alone decides a hit and the dispatch-loop fast paths
// (blocks_tooled.go) need no nil check. Invariant: whenever rtlb/wtlb is nil
// the matching PN is tlbMissPN.
const tlbMissPN = ^uint32(0)

// invalidateTLB drops the one-entry translation caches. Any operation that
// freezes pages, resets dirty-run watermarks, or replaces page-table entries
// wholesale must call it: a stale wtlb entry would let writes bypass
// copy-on-write and dirty tracking.
func (m *Memory) invalidateTLB() {
	m.rtlb, m.wtlb = nil, nil
	m.rtlbPN, m.wtlbPN = tlbMissPN, tlbMissPN
}

// NewMemory returns an empty address space with no pages mapped.
func NewMemory() *Memory {
	return &Memory{
		pages:  make(map[uint32]*page),
		dirty:  make(map[uint32]struct{}),
		dels:   make(map[uint32]struct{}),
		rtlbPN: tlbMissPN,
		wtlbPN: tlbMissPN,
	}
}

// MemSnapshot is a copy-on-write snapshot of a Memory: an immutable delta
// (the pages dirtied since the previous snapshot) chained to that previous
// snapshot. It shares pages with the live memory until the live side writes
// to them.
//
// Page sharing is goroutine-safe by construction: every page captured by a
// snapshot is frozen (owner nil) before the snapshot is handed out, and a
// frozen page is never written in place — every Memory holding one clones it
// privately before writing. Concurrent Forks/Restores of one snapshot and
// concurrent execution of the resulting Memories — each confined to its own
// goroutine — therefore only ever read the shared pages. As with any shared
// value, handing a snapshot to another goroutine must itself synchronise
// (channel send, WaitGroup, goroutine start).
type MemSnapshot struct {
	delta map[uint32]*page
	// patch holds the sub-page captures: for each page, only the dirty byte
	// run written this epoch, applied over the parent chain's version of the
	// page when the snapshot is flattened. A page appears in delta or patch,
	// never both; the run bytes of all patches share one backing buffer, so
	// a steady-state checkpoint allocates O(1) regardless of how many pages
	// it patches.
	patch    []patchRun
	patched  int // distinct pages in patch (a page may contribute several runs)
	dels     []uint32
	count    int // total mapped pages at snapshot time
	captured int // bytes of page data captured (runs + PageSize per full page)
	depth    int // chain length at creation

	// mu guards flat and parent: flatten memoises the full page table and
	// drops the parent link. Deltas, patches and dels are immutable after
	// creation.
	mu     sync.Mutex
	parent *MemSnapshot
	flat   map[uint32]*page // memoised full page table (see flatten)
}

// patchRun is one sub-page capture: the bytes of a page's dirty run, copied
// out at snapshot time. The rest of the page is the parent snapshot's
// version, reconstructed lazily by flatten.
type patchRun struct {
	pn   uint32
	off  uint16
	data []byte
}

// Pages returns the number of pages mapped at the time of the snapshot.
func (s *MemSnapshot) Pages() int { return s.count }

// DeltaPages returns the number of pages the snapshot had to capture —
// whole (frozen) or as a sub-page patch — i.e. the pages dirtied since the
// previous snapshot.
func (s *MemSnapshot) DeltaPages() int { return len(s.delta) + s.patched }

// CapturedBytes returns how many bytes of page data the snapshot captured:
// the dirty-run length for pages captured as sub-page patches, a full
// PageSize for pages frozen whole. The checkpoint cost charged to the
// guest's virtual clock is proportional to this, not to Pages().
func (s *MemSnapshot) CapturedBytes() int { return s.captured }

// flatten materialises (and memoises) the snapshot's full page table by
// walking its delta chain down to the nearest already-flattened ancestor and
// applying the collected deltas oldest-first into one fresh map — the
// intermediate ancestors are read, not themselves materialised, so one
// flatten costs O(mapped + chained deltas) total, no matter the depth.
// Afterwards the parent link is dropped so ancestors evicted from checkpoint
// rings become collectable. Safe for concurrent use; a concurrent flatten of
// an ancestor is benign (its deltas are immutable, and either its memoised
// table or its chain yields the same pages).
func (s *MemSnapshot) flatten() map[uint32]*page {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flat != nil {
		return s.flat
	}
	chain := []*MemSnapshot{s}
	var base map[uint32]*page
	for cur := s.parent; cur != nil; {
		cur.mu.Lock()
		flat, parent := cur.flat, cur.parent
		cur.mu.Unlock()
		if flat != nil {
			base = flat
			break
		}
		chain = append(chain, cur)
		cur = parent
	}
	flat := make(map[uint32]*page, s.count)
	for pn, p := range base {
		flat[pn] = p
	}
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		for _, pn := range c.dels {
			delete(flat, pn)
		}
		for pn, p := range c.delta {
			flat[pn] = p
		}
		for _, pr := range c.patch {
			// Reconstruct the full page lazily: the parent chain's version
			// (what flat holds at this point of the walk) with the captured
			// dirty run applied on top. The result is frozen and private to
			// this flatten, so it is safe to share from here on.
			np := &page{}
			if prev := flat[pr.pn]; prev != nil {
				np.data = prev.data
			}
			copy(np.data[pr.off:], pr.data)
			flat[pr.pn] = np
		}
	}
	s.flat = flat
	s.parent = nil
	return flat
}

func pageNum(addr uint32) uint32  { return addr >> PageShift }
func pageOff(addr uint32) uint32  { return addr & (PageSize - 1) }
func pageBase(addr uint32) uint32 { return addr &^ (PageSize - 1) }

// ownPages takes a private copy of the page table if it is still shared with
// the snapshot it was restored from. Called before any structural mutation.
func (m *Memory) ownPages() {
	if m.pagesShared {
		m.pages = maps.Clone(m.pages)
		m.pagesShared = false
	}
}

// MapRegion maps (and zeroes) all pages covering [base, base+size). Mapping an
// already-mapped page leaves its contents intact.
func (m *Memory) MapRegion(base, size uint32) {
	if size == 0 {
		return
	}
	first := pageNum(base)
	last := pageNum(base + size - 1)
	for pn := first; ; pn++ {
		if _, ok := m.pages[pn]; !ok {
			m.ownPages()
			// A freshly mapped page has no version in the parent chain (even
			// if an older snapshot held one before an unmap, its content was
			// different), so it is never patch-captured: inParent stays false
			// and the next snapshot freezes it whole.
			m.pages[pn] = &page{owner: m}
			m.owned++
			m.dirty[pn] = struct{}{}
			delete(m.dels, pn)
		}
		if pn == last {
			break
		}
	}
}

// UnmapRegion removes all pages fully covered by [base, base+size).
func (m *Memory) UnmapRegion(base, size uint32) {
	if size == 0 {
		return
	}
	m.invalidateTLB()
	first := pageNum(base)
	last := pageNum(base + size - 1)
	for pn := first; ; pn++ {
		if p, ok := m.pages[pn]; ok {
			m.ownPages()
			if p.owner == m {
				m.owned--
			}
			delete(m.pages, pn)
			delete(m.dirty, pn)
			m.dels[pn] = struct{}{}
		}
		if pn == last {
			break
		}
	}
}

// IsMapped reports whether the page containing addr is mapped.
func (m *Memory) IsMapped(addr uint32) bool {
	_, ok := m.pages[pageNum(addr)]
	return ok
}

// MappedPages returns the number of mapped pages.
func (m *Memory) MappedPages() int { return len(m.pages) }

// DirtyPages returns the number of pages written or newly mapped since the
// last snapshot — the work the next Snapshot() will have to do, and the page
// count the checkpoint manager charges to the guest's virtual clock.
func (m *Memory) DirtyPages() int { return len(m.dirty) }

// MappedPageBases returns the base addresses of all mapped pages in ascending
// order. It is used by analysis tools that walk memory (heap walkers, core
// dump analysis).
func (m *Memory) MappedPageBases() []uint32 {
	out := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn<<PageShift)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Memory) pageFor(addr uint32) (*page, bool) {
	p, ok := m.pages[pageNum(addr)]
	if ok {
		m.rtlb, m.rtlbPN = p, pageNum(addr)
	}
	return p, ok
}

// writablePage returns the page for addr, cloning it first if it is frozen
// (shared with a snapshot or adopted from one: copy-on-write), and extends
// the page's dirty-run watermark to cover the n bytes about to be written at
// addr. n must not run past the end of the page; bulk writers split at page
// boundaries before calling.
func (m *Memory) writablePage(addr, n uint32) (*page, bool) {
	pn := pageNum(addr)
	p, ok := m.pages[pn]
	if !ok {
		return nil, false
	}
	if p.owner != m {
		m.ownPages()
		p = p.clone(m)
		m.pages[pn] = p
		m.owned++
		m.dirty[pn] = struct{}{}
		if m.rtlbPN == pn {
			// Reads must see the clone, not the frozen original.
			m.rtlb = p
		}
	} else if p.nruns == 0 {
		// An owned page surviving from a previous epoch (it was captured as a
		// sub-page patch): its first write of the new epoch re-enters the
		// dirty set.
		m.dirty[pn] = struct{}{}
	}
	off := uint16(pageOff(addr))
	p.markRun(off, off+uint16(n))
	// The page now satisfies every wtlb invariant: owned, watermarked
	// (markRun ran with n >= 1) and in the dirty set.
	m.wtlb, m.wtlbPN = p, pn
	return p, true
}

// ReadU8 reads one byte. ok is false if the page is unmapped.
func (m *Memory) ReadU8(addr uint32) (byte, bool) {
	if p := m.rtlb; p != nil && pageNum(addr) == m.rtlbPN {
		return p.data[pageOff(addr)], true
	}
	p, ok := m.pageFor(addr)
	if !ok {
		return 0, false
	}
	return p.data[pageOff(addr)], true
}

// WriteU8 writes one byte. ok is false if the page is unmapped.
func (m *Memory) WriteU8(addr uint32, v byte) bool {
	if p := m.wtlb; p != nil && pageNum(addr) == m.wtlbPN {
		off := uint16(pageOff(addr))
		// Hand-inlined markRun single-run case: the interpreter's store hot
		// path must not pay a call per byte (markRun exceeds the inline
		// budget), and a wtlb hit almost always extends run 0.
		if r := &p.runs[0]; p.nruns == 1 && off <= r.hi && off+1 >= r.lo {
			if off < r.lo {
				r.lo = off
			}
			if off+1 > r.hi {
				r.hi = off + 1
			}
		} else {
			p.markRun(off, off+1)
		}
		p.data[off] = v
		return true
	}
	p, ok := m.writablePage(addr, 1)
	if !ok {
		return false
	}
	p.data[pageOff(addr)] = v
	return true
}

// ReadWord reads a 32-bit little-endian word, possibly spanning pages.
func (m *Memory) ReadWord(addr uint32) (uint32, bool) {
	off := pageOff(addr)
	if off <= PageSize-4 {
		p := m.rtlb
		if p == nil || pageNum(addr) != m.rtlbPN {
			var ok bool
			p, ok = m.pageFor(addr)
			if !ok {
				return 0, false
			}
		}
		d := p.data[off : off+4]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, true
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, ok := m.ReadU8(addr + i)
		if !ok {
			return 0, false
		}
		v |= uint32(b) << (8 * i)
	}
	return v, true
}

// WriteWord writes a 32-bit little-endian word, possibly spanning pages.
func (m *Memory) WriteWord(addr uint32, v uint32) bool {
	off := pageOff(addr)
	if off <= PageSize-4 {
		p := m.wtlb
		if p != nil && pageNum(addr) == m.wtlbPN {
			o := uint16(off)
			// Hand-inlined markRun single-run case; see WriteU8.
			if r := &p.runs[0]; p.nruns == 1 && o <= r.hi && o+4 >= r.lo {
				if o < r.lo {
					r.lo = o
				}
				if o+4 > r.hi {
					r.hi = o + 4
				}
			} else {
				p.markRun(o, o+4)
			}
		} else {
			var ok bool
			p, ok = m.writablePage(addr, 4)
			if !ok {
				return false
			}
		}
		p.data[off] = byte(v)
		p.data[off+1] = byte(v >> 8)
		p.data[off+2] = byte(v >> 16)
		p.data[off+3] = byte(v >> 24)
		return true
	}
	for i := uint32(0); i < 4; i++ {
		if !m.WriteU8(addr+i, byte(v>>(8*i))) {
			return false
		}
	}
	return true
}

// ReadBytes copies n bytes starting at addr into a new slice. It walks whole
// page runs — one page lookup and one copy per page — rather than reading
// byte-at-a-time, which is what makes bulk guest I/O (send buffers, core
// images) cheap.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, bool) {
	out := make([]byte, n)
	for off := 0; off < n; {
		p, ok := m.pageFor(addr)
		if !ok {
			return nil, false
		}
		copied := copy(out[off:], p.data[pageOff(addr):])
		off += copied
		addr += uint32(copied)
	}
	return out, true
}

// WriteBytes copies data into guest memory starting at addr, one page-sized
// copy at a time. Like the byte-at-a-time path it replaces, a write that runs
// into an unmapped page fails after the preceding pages were modified.
func (m *Memory) WriteBytes(addr uint32, data []byte) bool {
	for off := 0; off < len(data); {
		n := PageSize - int(pageOff(addr))
		if rem := len(data) - off; n > rem {
			n = rem
		}
		p, ok := m.writablePage(addr, uint32(n))
		if !ok {
			return false
		}
		copy(p.data[pageOff(addr):], data[off:off+n])
		off += n
		addr += uint32(n)
	}
	return true
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes, scanning one page run at a time.
func (m *Memory) ReadCString(addr uint32, max int) (string, bool) {
	var out []byte
	for max > 0 {
		p, ok := m.pageFor(addr)
		if !ok {
			return "", false
		}
		chunk := p.data[pageOff(addr):]
		if len(chunk) > max {
			chunk = chunk[:max]
		}
		if i := bytes.IndexByte(chunk, 0); i >= 0 {
			return string(append(out, chunk[:i]...)), true
		}
		out = append(out, chunk...)
		max -= len(chunk)
		addr += uint32(len(chunk))
	}
	return string(out), true
}

// Snapshot captures the current memory contents copy-on-write. The snapshot
// stays valid until discarded; the live memory clones pages lazily on its
// next write to each captured page.
//
// Snapshot is incremental and sub-page aware: it captures only the pages
// dirtied since the previous snapshot, and a page whose dirty run is small
// (and whose epoch-start content the parent chain can reconstruct) is
// captured as a byte-run patch — the run is copied out and the live page
// stays writable, so a guest scattering small writes pays neither a full
// page of capture per touched page nor a 4 KiB COW clone on its next write.
// Pages dirtied beyond patchMaxRunBytes (or with no parent version) are
// frozen whole, as before. The first snapshot of a Memory (everything dirty)
// is equivalent to a full scan.
func (m *Memory) Snapshot() *MemSnapshot {
	m.invalidateTLB()
	if len(m.dirty) == 0 && len(m.dels) == 0 && m.lastSnap != nil {
		// Nothing changed since the previous snapshot; the snapshots are
		// indistinguishable, so a quiet guest checkpoints for free.
		return m.lastSnap
	}
	// First pass: decide per dirty page between a sub-page patch and a
	// whole-page freeze (freezing as it goes), and size the patch containers.
	// Everything is allocated lazily: a steady-state checkpoint usually
	// produces only patches, and its delta map would sit empty forever. A
	// patched page may carry several runs, so the patchRun entries themselves
	// are built in the second pass once the run count is known.
	type patchPage struct {
		pn uint32
		p  *page
	}
	var delta map[uint32]*page
	var patchPages []patchPage
	captured := 0
	runBytes := 0
	patchedRuns := 0
	for pn := range m.dirty {
		p := m.pages[pn]
		if p.inParent && p.nruns != 0 {
			runLen := 0
			for i := 0; i < int(p.nruns); i++ {
				runLen += int(p.runs[i].hi) - int(p.runs[i].lo)
			}
			if runLen <= patchMaxRunBytes {
				if patchPages == nil {
					patchPages = make([]patchPage, 0, len(m.dirty))
				}
				patchPages = append(patchPages, patchPage{pn: pn, p: p})
				patchedRuns += int(p.nruns)
				runBytes += runLen
				captured += runLen
				continue
			}
		}
		p.nruns = 0
		p.owner = nil // freeze: all future writes copy
		m.owned--
		if delta == nil {
			delta = make(map[uint32]*page, len(m.dirty))
		}
		delta[pn] = p
		captured += PageSize
	}
	// Second pass: copy every patched run into one backing buffer, so a
	// steady-state checkpoint allocates O(1) however many pages it patches.
	// The live pages stay owned and writable; their content now equals this
	// snapshot's version, so the next epoch's runs patch against this
	// snapshot in turn.
	var patch []patchRun
	if len(patchPages) > 0 {
		patch = make([]patchRun, 0, patchedRuns)
		backing := make([]byte, runBytes)
		used := 0
		for _, pp := range patchPages {
			p := pp.p
			for i := 0; i < int(p.nruns); i++ {
				r := p.runs[i]
				n := copy(backing[used:], p.data[r.lo:r.hi])
				patch = append(patch, patchRun{pn: pp.pn, off: r.lo, data: backing[used : used+n : used+n]})
				used += n
			}
			p.nruns = 0
		}
	}
	var dels []uint32
	for pn := range m.dels {
		dels = append(dels, pn)
	}
	snap := &MemSnapshot{parent: m.lastSnap, delta: delta, patch: patch, patched: len(patchPages), dels: dels, count: len(m.pages), captured: captured}
	if snap.parent == nil {
		if len(dels) == 0 && len(patch) == 0 {
			snap.flat = delta // a chain root is its own page table
		}
	} else {
		snap.depth = snap.parent.depth + 1
		if snap.depth >= maxSnapChainDepth {
			snap.flatten()
			snap.depth = 0
		}
	}
	m.resetDirtyTracking(snap)
	return snap
}

// SnapshotFull captures the current memory contents by scanning every mapped
// page, ignoring dirty tracking — the pre-incremental behaviour. It produces
// a self-contained (chain-free) snapshot observationally identical to
// Snapshot()'s. It is kept as the reference implementation for differential
// tests and as the baseline the snapshot micro-benchmarks compare against.
func (m *Memory) SnapshotFull() *MemSnapshot {
	m.invalidateTLB()
	pages := make(map[uint32]*page, len(m.pages))
	for pn, p := range m.pages {
		if p.owner == m {
			// Freeze only privately-owned pages: already-frozen pages may be
			// shared with concurrently-running forks, and even a redundant
			// owner write would race their reads.
			p.nruns = 0
			p.owner = nil
		}
		pages[pn] = p
	}
	m.owned = 0
	snap := &MemSnapshot{delta: pages, count: len(pages), captured: len(pages) * PageSize}
	snap.flat = pages
	m.resetDirtyTracking(snap)
	return snap
}

// resetDirtyTracking starts a fresh dirty epoch relative to snap. Small sets
// are cleared in place (no allocation per steady-state snapshot); a set that
// grew large is replaced, because clearing a map walks its whole grown
// bucket array forever after.
func (m *Memory) resetDirtyTracking(snap *MemSnapshot) {
	const resetThreshold = 64
	if len(m.dirty) > resetThreshold {
		m.dirty = make(map[uint32]struct{})
	} else {
		clear(m.dirty)
	}
	if len(m.dels) > resetThreshold {
		m.dels = make(map[uint32]struct{})
	} else {
		clear(m.dels)
	}
	m.lastSnap = snap
}

// Restore replaces the live memory contents with the snapshot's. The snapshot
// remains valid and may be restored again.
//
// Restore reuses the snapshot's (memoised) page table directly instead of
// rebuilding page and COW-arming maps from scratch: every snapshot page is
// already frozen, so copy-on-write needs no re-arming, and the table itself
// is shared until the first structural change. The restored Memory's dirty
// epoch restarts relative to the restored snapshot, so the next Snapshot()
// captures exactly what the re-execution touched.
func (m *Memory) Restore(s *MemSnapshot) {
	m.invalidateTLB()
	m.pages = s.flatten()
	m.pagesShared = true
	m.owned = 0 // every page in a flattened table is frozen
	m.resetDirtyTracking(s)
}

// Fork derives a new, independent Memory whose contents equal the snapshot's.
// All pages start out shared copy-on-write with the snapshot (and with every
// other Memory derived from it); the forked memory clones pages lazily as it
// writes. The fork may be used from a different goroutine than the snapshot's
// origin Memory, which is what lets analysis clones replay concurrently.
func (s *MemSnapshot) Fork() *Memory {
	m := NewMemory()
	m.Restore(s)
	return m
}

// CopyOnWritePending returns the number of live pages still shared
// copy-on-write with snapshots (frozen pages in the live table). It is
// exported for tests and overhead accounting.
func (m *Memory) CopyOnWritePending() int { return len(m.pages) - m.owned }

// Dump formats a small hex dump around addr, for diagnostics.
func (m *Memory) Dump(addr uint32, n int) string {
	bs, ok := m.ReadBytes(addr, n)
	if !ok {
		return fmt.Sprintf("<unmapped near %#x>", addr)
	}
	return fmt.Sprintf("% x", bs)
}
