package vm

import (
	"fmt"
	"sort"
)

// PageSize is the granularity of guest memory mapping and of copy-on-write
// checkpointing.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

type page struct {
	data [PageSize]byte
}

func (p *page) clone() *page {
	np := &page{}
	np.data = p.data
	return np
}

// Memory is a sparse, paged, byte-addressable 32-bit guest address space with
// copy-on-write snapshot support. Page zero is never mapped, so NULL pointer
// dereferences fault.
type Memory struct {
	pages  map[uint32]*page
	shared map[uint32]bool // pages shared with at least one live snapshot
}

// NewMemory returns an empty address space with no pages mapped.
func NewMemory() *Memory {
	return &Memory{
		pages:  make(map[uint32]*page),
		shared: make(map[uint32]bool),
	}
}

// MemSnapshot is a copy-on-write snapshot of a Memory. It shares pages with
// the live memory until the live side writes to them.
//
// Page sharing is goroutine-safe by construction: a page referenced by a
// snapshot is never written in place. Every Memory holding such a page marks
// it shared (Snapshot marks the snapshotted memory's pages, Restore and Fork
// mark the receiving memory's pages), so any write first clones the page into
// memory private to the writer. Concurrent Forks/Restores of one snapshot and
// concurrent execution of the resulting Memories — each confined to its own
// goroutine — therefore only ever read the shared pages.
type MemSnapshot struct {
	pages map[uint32]*page
}

// Pages returns the number of pages captured by the snapshot.
func (s *MemSnapshot) Pages() int { return len(s.pages) }

func pageNum(addr uint32) uint32  { return addr >> PageShift }
func pageOff(addr uint32) uint32  { return addr & (PageSize - 1) }
func pageBase(addr uint32) uint32 { return addr &^ (PageSize - 1) }

// MapRegion maps (and zeroes) all pages covering [base, base+size). Mapping an
// already-mapped page leaves its contents intact.
func (m *Memory) MapRegion(base, size uint32) {
	if size == 0 {
		return
	}
	first := pageNum(base)
	last := pageNum(base + size - 1)
	for pn := first; ; pn++ {
		if _, ok := m.pages[pn]; !ok {
			m.pages[pn] = &page{}
		}
		if pn == last {
			break
		}
	}
}

// UnmapRegion removes all pages fully covered by [base, base+size).
func (m *Memory) UnmapRegion(base, size uint32) {
	if size == 0 {
		return
	}
	first := pageNum(base)
	last := pageNum(base + size - 1)
	for pn := first; ; pn++ {
		delete(m.pages, pn)
		delete(m.shared, pn)
		if pn == last {
			break
		}
	}
}

// IsMapped reports whether the page containing addr is mapped.
func (m *Memory) IsMapped(addr uint32) bool {
	_, ok := m.pages[pageNum(addr)]
	return ok
}

// MappedPages returns the number of mapped pages.
func (m *Memory) MappedPages() int { return len(m.pages) }

// MappedPageBases returns the base addresses of all mapped pages in ascending
// order. It is used by analysis tools that walk memory (heap walkers, core
// dump analysis).
func (m *Memory) MappedPageBases() []uint32 {
	out := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn<<PageShift)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Memory) pageFor(addr uint32) (*page, bool) {
	p, ok := m.pages[pageNum(addr)]
	return p, ok
}

// writablePage returns the page for addr, cloning it first if it is shared
// with a snapshot (copy-on-write).
func (m *Memory) writablePage(addr uint32) (*page, bool) {
	pn := pageNum(addr)
	p, ok := m.pages[pn]
	if !ok {
		return nil, false
	}
	if m.shared[pn] {
		p = p.clone()
		m.pages[pn] = p
		delete(m.shared, pn)
	}
	return p, true
}

// ReadU8 reads one byte. ok is false if the page is unmapped.
func (m *Memory) ReadU8(addr uint32) (byte, bool) {
	p, ok := m.pageFor(addr)
	if !ok {
		return 0, false
	}
	return p.data[pageOff(addr)], true
}

// WriteU8 writes one byte. ok is false if the page is unmapped.
func (m *Memory) WriteU8(addr uint32, v byte) bool {
	p, ok := m.writablePage(addr)
	if !ok {
		return false
	}
	p.data[pageOff(addr)] = v
	return true
}

// ReadWord reads a 32-bit little-endian word, possibly spanning pages.
func (m *Memory) ReadWord(addr uint32) (uint32, bool) {
	if pageOff(addr) <= PageSize-4 {
		p, ok := m.pageFor(addr)
		if !ok {
			return 0, false
		}
		off := pageOff(addr)
		d := p.data[off : off+4]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, true
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, ok := m.ReadU8(addr + i)
		if !ok {
			return 0, false
		}
		v |= uint32(b) << (8 * i)
	}
	return v, true
}

// WriteWord writes a 32-bit little-endian word, possibly spanning pages.
func (m *Memory) WriteWord(addr uint32, v uint32) bool {
	if pageOff(addr) <= PageSize-4 {
		p, ok := m.writablePage(addr)
		if !ok {
			return false
		}
		off := pageOff(addr)
		p.data[off] = byte(v)
		p.data[off+1] = byte(v >> 8)
		p.data[off+2] = byte(v >> 16)
		p.data[off+3] = byte(v >> 24)
		return true
	}
	for i := uint32(0); i < 4; i++ {
		if !m.WriteU8(addr+i, byte(v>>(8*i))) {
			return false
		}
	}
	return true
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, bool) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, ok := m.ReadU8(addr + uint32(i))
		if !ok {
			return nil, false
		}
		out[i] = b
	}
	return out, true
}

// WriteBytes copies data into guest memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, data []byte) bool {
	for i, b := range data {
		if !m.WriteU8(addr+uint32(i), b) {
			return false
		}
	}
	return true
}

// ReadCString reads a NUL-terminated string starting at addr, up to max bytes.
func (m *Memory) ReadCString(addr uint32, max int) (string, bool) {
	var out []byte
	for i := 0; i < max; i++ {
		b, ok := m.ReadU8(addr + uint32(i))
		if !ok {
			return "", false
		}
		if b == 0 {
			return string(out), true
		}
		out = append(out, b)
	}
	return string(out), true
}

// Snapshot captures the current memory contents copy-on-write. The snapshot
// stays valid until explicitly discarded; the live memory clones pages lazily
// on its next write to each shared page.
func (m *Memory) Snapshot() *MemSnapshot {
	snap := &MemSnapshot{pages: make(map[uint32]*page, len(m.pages))}
	for pn, p := range m.pages {
		snap.pages[pn] = p
		m.shared[pn] = true
	}
	return snap
}

// Restore replaces the live memory contents with the snapshot's. The snapshot
// remains valid and may be restored again.
func (m *Memory) Restore(s *MemSnapshot) {
	m.pages = make(map[uint32]*page, len(s.pages))
	m.shared = make(map[uint32]bool, len(s.pages))
	for pn, p := range s.pages {
		m.pages[pn] = p
		m.shared[pn] = true
	}
}

// Fork derives a new, independent Memory whose contents equal the snapshot's.
// All pages start out shared copy-on-write with the snapshot (and with every
// other Memory derived from it); the forked memory clones pages lazily as it
// writes. The fork may be used from a different goroutine than the snapshot's
// origin Memory, which is what lets analysis clones replay concurrently.
func (s *MemSnapshot) Fork() *Memory {
	m := NewMemory()
	m.Restore(s)
	return m
}

// CopyOnWritePending returns the number of live pages still shared with
// snapshots. It is exported for tests and overhead accounting.
func (m *Memory) CopyOnWritePending() int { return len(m.shared) }

// Dump formats a small hex dump around addr, for diagnostics.
func (m *Memory) Dump(addr uint32, n int) string {
	bs, ok := m.ReadBytes(addr, n)
	if !ok {
		return fmt.Sprintf("<unmapped near %#x>", addr)
	}
	return fmt.Sprintf("% x", bs)
}
