package vm

// runTooledLight is runTooled specialized for the single configuration that
// dominates tooled execution in practice: exactly one instruction hook and
// nothing else — no memory hooks, no call hooks, no probes (refreshDispatch
// gates it behind lightTooled). That covers a production guest under one
// monitor and an analysis replay under one tracker.
//
// The specialization exists because of the Go ABI: every register is
// caller-saved, so each BeforeInstr call spills the loop's entire live set to
// the stack and reloads it. runTooled must keep its mem/call-hook dispatch
// state and the probe overlay alive across that call; this loop carries only
// the micro-op stream, the hook itself and the batched accounting, which
// makes the per-instruction spill/reload several words narrower. The bodies
// are otherwise identical (see blocks_tooled.go for the semantics contract:
// Step-exact ordering, cycle charges, violation handling and fault
// attribution; syscalls/halts/illegal opcodes hand back to Run's Step
// fall-back before any hook fires here).
func (m *Machine) runTooledLight(limit uint64) (stop *StopInfo, executed uint64) {
	if m.uopsPlain == nil {
		m.uopsPlain = m.img.plainUops()
	}
	// Unlike runTooled there is no local mem: memory ops reload m.Mem at the
	// point of use, keeping it out of the register set spilled around every
	// BeforeInstr call (the Go ABI is fully caller-saved).
	var (
		uops = m.uopsPlain
		code = m.code
		h0   = m.tools.instr[0]
		pc   = m.PC
		done uint64
		cyc  uint64
	)
	// Length equality the prove pass uses to elide bounds checks: plain uops
	// mirror code one-to-one.
	if len(code) != len(uops) {
		return nil, 0 // unreachable: both are sized from the code array
	}

	for done < limit {
		if uint(pc) >= uint(len(uops)) {
			m.commitTooled(pc, done, cyc)
			return m.badPCFault(), done
		}
		u := uops[pc]
		op := Op(u & uopOpMask)
		if op >= OpSyscall {
			// Syscall, halt or illegal opcode: Step owns their hook dispatch
			// and execution, so return before any hook fires here.
			m.commitTooled(pc, done, cyc)
			return nil, done
		}
		// The hook observes the architectural PC (RaiseViolation attributes
		// to it), so it is stored before dispatch.
		m.PC = pc
		cyc += CyclesPerHook
		h0.BeforeInstr(m, pc, &code[pc])
		if m.pendingViolation != nil {
			// Raised before execution: the instruction neither runs nor
			// counts, exactly as in Step.
			m.commitTooled(pc, done, cyc)
			return m.violationStop(), done
		}
		done++
		// Dispatch specialization mirroring runFused: resolve the most
		// frequent ALU op and the unconditional block terminator through
		// predictable direct compares before paying the switch's indirect
		// jump.
		if op == OpAddI {
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] += uint32(u >> 32)
			pc++
			continue
		}
		if op == OpJmp {
			cyc += cyclesBranch
			pc = int(int32(uint32(u >> 32)))
			continue
		}
		nextPC := pc + 1

		switch op {
		case OpNop:
			cyc += cyclesALU

		case OpMovI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] = uint32(u >> 32)
		case OpMov:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] = m.Regs[uint8(u>>uopRsShift)]
		case OpLea:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] = m.Regs[uint8(u>>uopRsShift)] + uint32(u>>32)

		case OpLoadB, OpLoadW:
			cyc += cyclesMem
			addr := m.Regs[uint8(u>>uopRsShift)] + uint32(u>>32)
			if op == OpLoadW {
				v, hit := tlbTryReadWord(m.Mem, addr)
				if !hit {
					var ok bool
					if v, ok = m.Mem.ReadWord(addr); !ok {
						m.commitTooled(pc, done, cyc)
						return m.fault(FaultPage, addr, false, "read from unmapped memory"), done
					}
				}
				m.Regs[uint8(u>>uopRdShift)] = v
			} else {
				b, ok := m.Mem.ReadU8(addr)
				if !ok {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, addr, false, "read from unmapped memory"), done
				}
				m.Regs[uint8(u>>uopRdShift)] = uint32(b)
			}

		case OpStoreB, OpStoreW:
			cyc += cyclesMem
			addr := m.Regs[uint8(u>>uopRdShift)] + uint32(u>>32)
			val := m.Regs[uint8(u>>uopRsShift)]
			if op == OpStoreW {
				if !tlbTryWriteWord(m.Mem, addr, val) && !m.Mem.WriteWord(addr, val) {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, addr, true, "write to unmapped memory"), done
				}
			} else {
				if !m.Mem.WriteU8(addr, byte(val)) {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, addr, true, "write to unmapped memory"), done
				}
			}

		case OpAdd:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] += m.Regs[uint8(u>>uopRsShift)]
		case OpSub:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] -= m.Regs[uint8(u>>uopRsShift)]
		case OpMul:
			cyc += cyclesMulDiv
			m.Regs[uint8(u>>uopRdShift)] *= m.Regs[uint8(u>>uopRsShift)]
		case OpDiv:
			cyc += cyclesMulDiv
			if m.Regs[uint8(u>>uopRsShift)] == 0 {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultDivZero, 0, false, "division by zero"), done
			}
			m.Regs[uint8(u>>uopRdShift)] /= m.Regs[uint8(u>>uopRsShift)]
		case OpMod:
			cyc += cyclesMulDiv
			if m.Regs[uint8(u>>uopRsShift)] == 0 {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultDivZero, 0, false, "modulo by zero"), done
			}
			m.Regs[uint8(u>>uopRdShift)] %= m.Regs[uint8(u>>uopRsShift)]
		case OpAnd:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] &= m.Regs[uint8(u>>uopRsShift)]
		case OpOr:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] |= m.Regs[uint8(u>>uopRsShift)]
		case OpXor:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] ^= m.Regs[uint8(u>>uopRsShift)]
		case OpShl:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] <<= m.Regs[uint8(u>>uopRsShift)] & 31
		case OpShr:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] >>= m.Regs[uint8(u>>uopRsShift)] & 31

		case OpSubI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] -= uint32(u >> 32)
		case OpMulI:
			cyc += cyclesMulDiv
			m.Regs[uint8(u>>uopRdShift)] *= uint32(u >> 32)
		case OpDivI:
			cyc += cyclesMulDiv
			if uint32(u>>32) == 0 {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultDivZero, 0, false, "division by zero immediate"), done
			}
			m.Regs[uint8(u>>uopRdShift)] /= uint32(u >> 32)
		case OpModI:
			cyc += cyclesMulDiv
			if uint32(u>>32) == 0 {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultDivZero, 0, false, "modulo by zero immediate"), done
			}
			m.Regs[uint8(u>>uopRdShift)] %= uint32(u >> 32)
		case OpAndI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] &= uint32(u >> 32)
		case OpOrI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] |= uint32(u >> 32)
		case OpXorI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] ^= uint32(u >> 32)
		case OpShlI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] <<= uint32(u>>32) & 31
		case OpShrI:
			cyc += cyclesALU
			m.Regs[uint8(u>>uopRdShift)] >>= uint32(u>>32) & 31

		case OpCmp:
			cyc += cyclesALU
			m.Flags = cmp32(int32(m.Regs[uint8(u>>uopRdShift)]), int32(m.Regs[uint8(u>>uopRsShift)]))
		case OpCmpI:
			cyc += cyclesALU
			m.Flags = cmp32(int32(m.Regs[uint8(u>>uopRdShift)]), int32(uint32(u>>32)))

		case OpJz:
			cyc += cyclesBranch
			if m.Flags == 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJnz:
			cyc += cyclesBranch
			if m.Flags != 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJlt:
			cyc += cyclesBranch
			if m.Flags < 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJle:
			cyc += cyclesBranch
			if m.Flags <= 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJgt:
			cyc += cyclesBranch
			if m.Flags > 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}
		case OpJge:
			cyc += cyclesBranch
			if m.Flags >= 0 {
				nextPC = int(int32(uint32(u >> 32)))
			}

		case OpJmpReg:
			cyc += cyclesBranch
			target := m.Regs[uint8(u>>uopRdShift)]
			tIdx, ok := m.IndexOfAddr(target)
			if !ok {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultBadPC, target, false, "indirect jump outside code segment"), done
			}
			nextPC = tIdx

		case OpCall, OpCallReg:
			cyc += cyclesBranch + cyclesMem
			var targetIdx int
			if op == OpCall {
				targetIdx = int(int32(uint32(u >> 32)))
			} else {
				target := m.Regs[uint8(u>>uopRdShift)]
				tIdx, ok := m.IndexOfAddr(target)
				if !ok {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultBadPC, target, false, "indirect call outside code segment"), done
				}
				targetIdx = tIdx
			}
			retAddr := m.AddrOfIndex(pc + 1)
			sp := m.Regs[SP] - 4
			if !tlbTryWriteWord(m.Mem, sp, retAddr) && !m.Mem.WriteWord(sp, retAddr) {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultPage, sp, true, "stack push failed during call"), done
			}
			m.Regs[SP] = sp
			nextPC = targetIdx

		case OpRet:
			cyc += cyclesBranch + cyclesMem
			retSlot := m.Regs[SP]
			retAddr, hit := tlbTryReadWord(m.Mem, retSlot)
			if !hit {
				var ok bool
				if retAddr, ok = m.Mem.ReadWord(retSlot); !ok {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, retSlot, false, "stack read failed during return"), done
				}
			}
			m.Regs[SP] = retSlot + 4
			tIdx, ok := m.IndexOfAddr(retAddr)
			if !ok {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultBadPC, retAddr, false, "return to address outside code segment"), done
			}
			nextPC = tIdx

		case OpPush, OpPushI:
			cyc += cyclesMem
			val := m.Regs[uint8(u>>uopRdShift)]
			if op == OpPushI {
				val = uint32(u >> 32)
			}
			sp := m.Regs[SP] - 4
			if !tlbTryWriteWord(m.Mem, sp, val) && !m.Mem.WriteWord(sp, val) {
				m.commitTooled(pc, done, cyc)
				return m.fault(FaultPage, sp, true, "stack push to unmapped memory"), done
			}
			m.Regs[SP] = sp

		case OpPop:
			cyc += cyclesMem
			slot := m.Regs[SP]
			val, hit := tlbTryReadWord(m.Mem, slot)
			if !hit {
				var ok bool
				if val, ok = m.Mem.ReadWord(slot); !ok {
					m.commitTooled(pc, done, cyc)
					return m.fault(FaultPage, slot, false, "stack pop from unmapped memory"), done
				}
			}
			m.Regs[uint8(u>>uopRdShift)] = val
			m.Regs[SP] = slot + 4
		}
		// No trailing pendingViolation check: the only violation source in
		// this configuration is the instruction hook, which already returned
		// above, matching Step's end-of-instruction check by construction.
		pc = nextPC
	}
	m.commitTooled(pc, done, cyc)
	return nil, done
}
