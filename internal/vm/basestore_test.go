package vm

import (
	"bytes"
	"testing"
)

// testProgram returns a minimal loadable program with the given data segment.
func testProgram(name string, data []byte) *Program {
	return &Program{
		Name: name,
		Code: []Instr{{Op: OpHalt}},
		Data: data,
	}
}

func patternData(n int, seed byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i)*7 + seed
	}
	return d
}

// TestBaseImageMatchesEagerMapping checks the shared base image reproduces
// exactly the segment state the eager mapping path used to build.
func TestBaseImageMatchesEagerMapping(t *testing.T) {
	data := patternData(3*PageSize+123, 1)
	layout := DefaultLayout()
	m, err := NewMachine(testProgram("base-eq", data), layout, nil)
	if err != nil {
		t.Fatal(err)
	}

	want := NewMemory()
	want.MapRegion(layout.DataBase, uint32(len(data)))
	want.WriteBytes(layout.DataBase, data)
	want.MapRegion(layout.StackBase, layout.StackSize)

	if got, wantN := m.Mem.MappedPages(), want.MappedPages(); got != wantN {
		t.Fatalf("mapped pages = %d, want %d", got, wantN)
	}
	for _, base := range want.MappedPageBases() {
		g, ok := m.Mem.ReadBytes(base, PageSize)
		if !ok {
			t.Fatalf("page %#x unmapped in base-imaged machine", base)
		}
		w, _ := want.ReadBytes(base, PageSize)
		if !bytes.Equal(g, w) {
			t.Fatalf("page %#x content differs from eager mapping", base)
		}
	}
}

// TestBaseStoreSharesPagesAcrossMachines checks that same-program machines
// share all their initial pages, across layouts too (segment shifts are
// page-aligned), and that writes diverge privately via COW.
func TestBaseStoreSharesPagesAcrossMachines(t *testing.T) {
	store := DefaultBaseStore()
	prog := testProgram("base-share", patternData(4*PageSize, 2))
	layout := DefaultLayout()

	m1, err := NewMachine(prog, layout, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared, total := store.SharedPagesIn(m1.Mem)
	if shared != total || total == 0 {
		t.Fatalf("fresh machine shares %d of %d pages, want all", shared, total)
	}

	// A second machine under a page-shifted layout shares the same backing
	// pages: content interning is layout-independent.
	shifted := layout
	shifted.DataBase += 4 * PageSize
	shifted.StackBase -= 8 * PageSize
	m2, err := NewMachine(prog, shifted, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := store.Stats()
	if s2, t2 := store.SharedPagesIn(m2.Mem); s2 != t2 {
		t.Fatalf("shifted-layout machine shares %d of %d pages", s2, t2)
	}
	// Same program content under a third layout must intern zero new pages.
	again := layout
	again.DataBase += 16 * PageSize
	if _, err := NewMachine(prog, again, nil); err != nil {
		t.Fatal(err)
	}
	if after := store.Stats(); after.DistinctPages != before.DistinctPages {
		t.Errorf("third layout interned %d new pages, want 0",
			after.DistinctPages-before.DistinctPages)
	}

	// Writing diverges privately: m1's write must not show through to m2.
	addr := layout.DataBase
	if !m1.Mem.WriteU8(addr, 0xAB) {
		t.Fatal("write failed")
	}
	b2, _ := m2.Mem.ReadU8(shifted.DataBase)
	if b2 == 0xAB {
		t.Fatal("write to one machine leaked into another's base pages")
	}
	s1, t1 := store.SharedPagesIn(m1.Mem)
	if s1 != t1-1 {
		t.Errorf("after one page write, %d of %d pages shared, want %d", s1, t1, t1-1)
	}
}

// TestBaseStoreSublinearGrowth proves the headline accounting claim: the
// installed page-table entries grow linearly with the number of same-program
// machines while the distinct backing pages stay constant, so the shared
// fraction of a fleet exceeds 90%.
func TestBaseStoreSublinearGrowth(t *testing.T) {
	store := NewBaseStore()
	prog := testProgram("base-sublinear", patternData(8*PageSize, 3))
	layout := DefaultLayout()

	var first BaseStoreStats
	const fleet = 32
	for i := 0; i < fleet; i++ {
		// Distinct page-aligned layouts, like ASLR would produce.
		l := layout
		l.DataBase += uint32(i) * PageSize
		store.BaseImage(prog, l)
		if i == 0 {
			first = store.Stats()
		}
	}
	st := store.Stats()
	if st.Installs != fleet {
		t.Fatalf("Installs = %d, want %d", st.Installs, fleet)
	}
	if st.DistinctPages != first.DistinctPages {
		t.Errorf("fleet of %d grew distinct pages %d -> %d; backing memory must stay constant",
			fleet, first.DistinctPages, st.DistinctPages)
	}
	sharedFraction := 1 - float64(st.DistinctPages)/float64(st.InstalledPages)
	if sharedFraction < 0.90 {
		t.Errorf("shared fraction %.3f < 0.90 (distinct %d, installed %d)",
			sharedFraction, st.DistinctPages, st.InstalledPages)
	}
}

// TestBaseImageZeroCaptureCost checks the base image charges no captured
// bytes: installing (or re-checkpointing) a clean image must cost the
// guest's virtual clock nothing.
func TestBaseImageZeroCaptureCost(t *testing.T) {
	m, err := NewMachine(testProgram("base-free", patternData(2*PageSize, 4)), DefaultLayout(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Mem.Snapshot() // untouched: must be the base image itself
	if s.CapturedBytes() != 0 {
		t.Errorf("clean-image snapshot captured %d bytes, want 0", s.CapturedBytes())
	}
	if s.Pages() != m.Mem.MappedPages() {
		t.Errorf("snapshot covers %d pages, memory maps %d", s.Pages(), m.Mem.MappedPages())
	}

	// After a write, the next snapshot chains onto the base image and
	// captures only the touched page (or its sub-page run).
	m.Mem.WriteU8(DefaultLayout().DataBase, 1)
	s2 := m.Mem.Snapshot()
	if s2.DeltaPages() != 1 {
		t.Errorf("post-write snapshot captured %d pages, want 1", s2.DeltaPages())
	}
	// Restore must reproduce the written state, not the clean image.
	fork := s2.Fork()
	if b, _ := fork.ReadU8(DefaultLayout().DataBase); b != 1 {
		t.Errorf("restored fork reads %d at written address, want 1", b)
	}
}
