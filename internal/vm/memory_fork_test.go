package vm

import (
	"sync"
	"testing"
)

func TestMemSnapshotForkIsIndependent(t *testing.T) {
	m := NewMemory()
	m.MapRegion(0x1000, 3*PageSize)
	m.WriteBytes(0x1000, []byte{1, 2, 3, 4})
	snap := m.Snapshot()

	fork := snap.Fork()
	if got, _ := fork.ReadU8(0x1000); got != 1 {
		t.Fatalf("fork read %d, want 1", got)
	}
	// Writes on either side stay invisible to the other and to the snapshot.
	m.WriteU8(0x1000, 0x11)
	fork.WriteU8(0x1000, 0x22)
	if got, _ := m.ReadU8(0x1000); got != 0x11 {
		t.Errorf("live read %#x, want 0x11", got)
	}
	if got, _ := fork.ReadU8(0x1000); got != 0x22 {
		t.Errorf("fork read %#x, want 0x22", got)
	}
	second := snap.Fork()
	if got, _ := second.ReadU8(0x1000); got != 1 {
		t.Errorf("second fork read %d, want the snapshot's original 1", got)
	}
	if fork.MappedPages() != m.MappedPages() {
		t.Errorf("fork maps %d pages, live maps %d", fork.MappedPages(), m.MappedPages())
	}
}

// TestMemSnapshotConcurrentForks exercises the goroutine-safety invariant of
// COW page sharing: many forks of one snapshot reading and writing the same
// shared pages concurrently (run under -race in CI), while the origin memory
// keeps mutating its own COW view.
func TestMemSnapshotConcurrentForks(t *testing.T) {
	const pages = 16
	m := NewMemory()
	m.MapRegion(0x1000, pages*PageSize)
	for i := 0; i < pages; i++ {
		m.WriteU8(uint32(0x1000+i*PageSize), byte(i))
	}
	snap := m.Snapshot()

	var wg sync.WaitGroup
	const forks = 8
	for f := 0; f < forks; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			fork := snap.Fork()
			for i := 0; i < pages; i++ {
				addr := uint32(0x1000 + i*PageSize)
				if got, ok := fork.ReadU8(addr); !ok || got != byte(i) {
					t.Errorf("fork %d page %d: read %d (ok=%v), want %d", f, i, got, ok, i)
					return
				}
				fork.WriteU8(addr, byte(f)+100)
			}
			for i := 0; i < pages; i++ {
				addr := uint32(0x1000 + i*PageSize)
				if got, _ := fork.ReadU8(addr); got != byte(f)+100 {
					t.Errorf("fork %d page %d: read %d after write, want %d", f, i, got, byte(f)+100)
					return
				}
			}
		}(f)
	}
	// The origin concurrently overwrites its own view of every shared page.
	for i := 0; i < pages; i++ {
		m.WriteU8(uint32(0x1000+i*PageSize), 0xEE)
	}
	wg.Wait()

	for i := 0; i < pages; i++ {
		addr := uint32(0x1000 + i*PageSize)
		if got, _ := m.ReadU8(addr); got != 0xEE {
			t.Errorf("live page %d: read %#x, want 0xEE", i, got)
		}
		if got, _ := snap.Fork().ReadU8(addr); got != byte(i) {
			t.Errorf("snapshot page %d corrupted: read %d, want %d", i, got, i)
		}
	}
}
