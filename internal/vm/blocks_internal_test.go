package vm

import "testing"

// TestBuildBlocksRunLen pins the block decoder: runLen counts the fusible
// straight-line suffix from each index and is zero on terminators.
func TestBuildBlocksRunLen(t *testing.T) {
	code := []Instr{
		{Op: OpMovI, Rd: R1},          // 0
		{Op: OpAddI, Rd: R1},          // 1
		{Op: OpPush, Rd: R1},          // 2
		{Op: OpJmp, Imm: 1},           // 3 terminator
		{Op: OpAddI, Rd: R2},          // 4
		{Op: OpHalt},                  // 5 terminator
		{Op: OpCmpI, Rd: R1, Imm: 10}, // 6 (run to end of code)
	}
	bi := buildBlocks(code)
	wantRun := []int32{3, 2, 1, 0, 1, 0, 1}
	for i, want := range wantRun {
		if bi.runLen[i] != want {
			t.Errorf("runLen[%d] = %d, want %d", i, bi.runLen[i], want)
		}
	}
	// Prefix sums: movi/addi cost cyclesALU, push cyclesMem; terminators
	// contribute zero (they are charged by the terminator dispatch).
	wantCost := []uint64{cyclesALU, cyclesALU, cyclesMem, 0, cyclesALU, 0, cyclesALU}
	for i, want := range wantCost {
		if got := bi.cyc[i+1] - bi.cyc[i]; got != want {
			t.Errorf("cyc[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestPackUopsFusionSelection pins the maximum-weight pair matching: in
// addi;push;pop the DP must prefer the weight-3 push/pop fusion over the
// weight-2 addi/push one, and terminators must never be fused over.
func TestPackUopsFusionSelection(t *testing.T) {
	code := []Instr{
		{Op: OpMovI, Rd: R1}, // 0
		{Op: OpAddI, Rd: R1}, // 1
		{Op: OpPush, Rd: R1}, // 2
		{Op: OpPop, Rd: R2},  // 3
		{Op: OpJmp, Imm: 1},  // 4
		{Op: OpAddI, Rd: R3}, // 5  last pair candidate halves split by...
		{Op: OpHalt},         // 6  ...a terminator: runLen[5] == 1, no fusion
		{Op: OpPush, Rd: R4}, // 7  trailing pair at end of code
		{Op: OpPop, Rd: R5},  // 8
	}
	uops := packUops(code, buildBlocks(code).runLen)
	if got := Op(uops[1] & uopOpMask); got != OpAddI {
		t.Errorf("uops[1] op = %d, want plain OpAddI (DP must skip the weaker addi/push pair)", got)
	}
	if got := Op(uops[2] & uopOpMask); got != fusePushPop {
		t.Errorf("uops[2] op = %d, want fusePushPop", got)
	}
	// The fused slot bakes the pop's destination into the spare Rs byte and
	// leaves the second half untouched for mid-pair entry.
	if got := Reg(uops[2] >> uopRsShift & 0xff); got != R2 {
		t.Errorf("fused pair Rs byte = %v, want pop destination R2", got)
	}
	if got := Op(uops[3] & uopOpMask); got != OpPop {
		t.Errorf("uops[3] op = %d, want original OpPop preserved", got)
	}
	if got := Op(uops[5] & uopOpMask); got != OpAddI {
		t.Errorf("uops[5] op = %d, want plain OpAddI (no pair across a terminator)", got)
	}
	if got := Op(uops[7] & uopOpMask); got != fusePushPop {
		t.Errorf("uops[7] op = %d, want fusePushPop for trailing pair", got)
	}
}

// TestSyntheticOpcodesDisjoint guards the synthetic opcode range: fused
// opcodes must sit strictly above the real ISA so the fused loop's range
// pre-dispatch (op >= numOps) is unambiguous.
func TestSyntheticOpcodesDisjoint(t *testing.T) {
	for _, op := range []Op{fusePushPop, fuseAddIPush, fuseMovPop, fuseAddIAddI, fuseLoadBCmpI, fuseStoreBAddI} {
		if op < numOps {
			t.Errorf("synthetic opcode %d collides with real ISA (numOps=%d)", op, numOps)
		}
	}
	// Every pattern in the fusion table must pair two fusible body ops —
	// fusedCost is what buildBlocks uses to bound runs, and packUops relies
	// on runLen >= 2 implying both halves are body ops.
	pairs := [][2]Op{
		{OpPush, OpPop}, {OpAddI, OpAddI}, {OpLoadB, OpCmpI},
		{OpMov, OpPop}, {OpStoreB, OpAddI}, {OpAddI, OpPush},
	}
	for _, p := range pairs {
		if f, w := fusePair(p[0], p[1]); w > 0 {
			if _, ok := fusedCost(p[0]); !ok {
				t.Errorf("fusion %d pairs non-fusible first half %v", f, p[0])
			}
			if _, ok := fusedCost(p[1]); !ok {
				t.Errorf("fusion %d pairs non-fusible second half %v", f, p[1])
			}
		}
	}
}
