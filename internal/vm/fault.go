package vm

import "fmt"

// FaultKind classifies hardware-level faults raised by the machine itself.
type FaultKind uint8

// Fault kinds. PageFault corresponds to a segmentation fault in the paper's
// terminology (the primary signal used by address-space randomisation);
// BadPC is a control transfer to an address outside the code segment;
// HeapCorruption models glibc aborting inside free() on corrupted metadata.
const (
	FaultNone FaultKind = iota
	FaultPage
	FaultBadPC
	FaultDivZero
	FaultStackOverflow
	FaultHeapCorruption
	FaultBadSyscall
	FaultInstrLimit
)

var faultNames = [...]string{
	FaultNone:           "none",
	FaultPage:           "segmentation fault",
	FaultBadPC:          "invalid program counter",
	FaultDivZero:        "division by zero",
	FaultStackOverflow:  "stack overflow",
	FaultHeapCorruption: "heap corruption",
	FaultBadSyscall:     "invalid syscall",
	FaultInstrLimit:     "instruction limit exceeded",
}

// String returns a human readable name for the fault kind.
func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("fault?%d", uint8(k))
}

// Fault describes a machine fault: what happened, where the faulting access
// pointed, and which instruction raised it.
type Fault struct {
	Kind    FaultKind
	Addr    uint32 // faulting data address (page fault) or bad target (bad PC)
	PC      int    // instruction index that raised the fault
	PCAddr  uint32 // address of that instruction
	Sym     string // enclosing function symbol of the faulting instruction
	IsWrite bool   // for page faults: whether the access was a write
	Detail  string // free-form detail (e.g. heap corruption reason)
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f == nil {
		return "<nil fault>"
	}
	return fmt.Sprintf("%s at pc=%#x (%s) addr=%#x: %s", f.Kind, f.PCAddr, f.Sym, f.Addr, f.Detail)
}

// ViolationKind classifies violations raised by attached analysis tools,
// monitors or VSEFs (as opposed to hardware faults raised by the machine).
type ViolationKind uint8

// Violation kinds raised by instrumentation.
const (
	ViolationNone ViolationKind = iota
	ViolationStackSmash
	ViolationHeapOverflow
	ViolationDoubleFree
	ViolationDanglingPointer
	ViolationTaintedControl
	ViolationTaintedFree
	ViolationNullDeref
	ViolationBoundsCheck
	ViolationReturnAddress
	ViolationCanary
	ViolationPolicy
)

var violationNames = [...]string{
	ViolationNone:            "none",
	ViolationStackSmash:      "stack smashing",
	ViolationHeapOverflow:    "heap buffer overflow",
	ViolationDoubleFree:      "double free",
	ViolationDanglingPointer: "dangling pointer access",
	ViolationTaintedControl:  "tainted control transfer",
	ViolationTaintedFree:     "tainted free argument",
	ViolationNullDeref:       "NULL pointer dereference",
	ViolationBoundsCheck:     "bounds check failure",
	ViolationReturnAddress:   "return address overwrite",
	ViolationCanary:          "stack canary clobbered",
	ViolationPolicy:          "policy violation",
}

// String returns a human readable name for the violation kind.
func (k ViolationKind) String() string {
	if int(k) < len(violationNames) {
		return violationNames[k]
	}
	return fmt.Sprintf("violation?%d", uint8(k))
}

// Violation is raised by an attached tool (monitor, analysis tool, or VSEF)
// through Machine.RaiseViolation. It stops execution like a fault but records
// which tool detected it and what it detected.
type Violation struct {
	Kind   ViolationKind
	Tool   string // name of the tool that raised it
	PC     int    // instruction index at which it was raised
	PCAddr uint32
	Sym    string
	Addr   uint32 // related data address, if any
	Detail string
}

// Error implements the error interface.
func (v *Violation) Error() string {
	if v == nil {
		return "<nil violation>"
	}
	return fmt.Sprintf("%s detected by %s at pc=%#x (%s) addr=%#x: %s",
		v.Kind, v.Tool, v.PCAddr, v.Sym, v.Addr, v.Detail)
}
