package vm_test

import (
	"testing"

	"sweeper/internal/asm"
	"sweeper/internal/vm"
)

// spinMachine builds a machine running a tight ALU+stack loop with no
// syscalls, for hot-loop measurements.
func spinMachine(t testing.TB) *vm.Machine {
	t.Helper()
	b := asm.New("spin")
	b.Func("main")
	b.MovI(vm.R1, 0)
	b.Label("main.loop")
	b.AddI(vm.R1, 1)
	b.Push(vm.R1)
	b.Pop(vm.R2)
	b.Jmp("main.loop")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("assembling: %v", err)
	}
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	return m
}

// TestRunSteadyStateAllocations pins the run-loop small fix: executing
// instructions allocates nothing per step — the only allocation of a whole
// budgeted Run call is the final StopInfo.
func TestRunSteadyStateAllocations(t *testing.T) {
	m := spinMachine(t)
	m.Run(10_000) // warm up: map/clone the stack page, settle the caches
	const steps = 50_000
	allocs := testing.AllocsPerRun(10, func() {
		if stop := m.Run(steps); stop.Reason != vm.StopInstrBudget {
			t.Fatalf("unexpected stop: %v", stop.Reason)
		}
	})
	// One StopInfo per Run call; anything near the step count means a
	// per-instruction allocation crept back into the hot loop.
	if allocs > 2 {
		t.Errorf("Run(%d) allocated %.0f objects per call; the step path must not allocate", steps, allocs)
	}
}

// countingInstrTool counts BeforeInstr dispatches.
type countingInstrTool struct{ calls int }

func (c *countingInstrTool) Name() string                                     { return "test.counter" }
func (c *countingInstrTool) BeforeInstr(m *vm.Machine, idx int, in *vm.Instr) { c.calls++ }

type nopProbe struct{}

func (nopProbe) Name() string                                 { return "test.probe" }
func (nopProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {}

// TestDispatchFastPathFlags checks the cached dispatch flags: an untooled
// machine charges no hook cycles, attaching a tool or probe re-enables
// dispatch, and detaching everything restores the fast path.
func TestDispatchFastPathFlags(t *testing.T) {
	m := spinMachine(t)
	m.Run(1000)
	base := m.Cycles()
	m.Run(1000)
	untooledCycles := m.Cycles() - base

	tool := &countingInstrTool{}
	m.AttachTool(tool)
	base = m.Cycles()
	m.Run(1000)
	tooledCycles := m.Cycles() - base
	if tool.calls != 1000 {
		t.Errorf("instr hook dispatched %d times, want 1000", tool.calls)
	}
	if want := untooledCycles + 1000*vm.CyclesPerHook; tooledCycles != want {
		t.Errorf("tooled run cost %d cycles, want %d (untooled %d + hook charge)", tooledCycles, want, untooledCycles)
	}

	m.DetachAllTools()
	tool.calls = 0
	base = m.Cycles()
	m.Run(1000)
	if got := m.Cycles() - base; got != untooledCycles {
		t.Errorf("detached run cost %d cycles, want untooled %d", got, untooledCycles)
	}
	if tool.calls != 0 {
		t.Errorf("detached tool still dispatched %d times", tool.calls)
	}

	// Probes: registration leaves the fast path, removal restores it.
	if err := m.AddProbe(m.PC, nopProbe{}); err != nil {
		t.Fatal(err)
	}
	if m.ProbeCount() != 1 {
		t.Errorf("ProbeCount = %d, want 1", m.ProbeCount())
	}
	base = m.Cycles()
	m.Run(1000)
	if got := m.Cycles() - base; got <= untooledCycles {
		t.Errorf("probed run cost %d cycles, want more than untooled %d", got, untooledCycles)
	}
	if removed := m.RemoveProbes("test.probe"); removed != 1 {
		t.Fatalf("RemoveProbes = %d, want 1", removed)
	}
	if m.ProbeCount() != 0 {
		t.Errorf("ProbeCount after removal = %d, want 0", m.ProbeCount())
	}
	base = m.Cycles()
	m.Run(1000)
	if got := m.Cycles() - base; got != untooledCycles {
		t.Errorf("post-probe run cost %d cycles, want untooled %d", got, untooledCycles)
	}
}

// BenchmarkUntooledStep measures the raw per-instruction dispatch cost of an
// untooled machine (the live-guest hot path the cached dispatch flags serve).
func BenchmarkUntooledStep(b *testing.B) {
	m := spinMachine(b)
	m.Run(10_000)
	b.ResetTimer()
	m.Run(uint64(b.N))
}

// BenchmarkUntooledStepSlowPath is the same loop with block dispatch
// disabled — the per-Step path BenchmarkUntooledStep is measured against.
func BenchmarkUntooledStepSlowPath(b *testing.B) {
	m := spinMachine(b)
	m.SetBlockDispatch(false)
	m.Run(10_000)
	b.ResetTimer()
	m.Run(uint64(b.N))
}

// BenchmarkUntooledALU measures block dispatch on a pure ALU loop (no memory
// traffic), isolating the interpreter's dispatch cost from the store/load
// work the spin loop's push/pop pair carries.
func BenchmarkUntooledALU(b *testing.B) {
	bd := asm.New("alu")
	bd.Func("main")
	bd.MovI(vm.R1, 0)
	bd.Label("main.loop")
	bd.AddI(vm.R1, 1)
	bd.AddI(vm.R2, 3)
	bd.AddI(vm.R3, 5)
	bd.Jmp("main.loop")
	prog, err := bd.Build()
	if err != nil {
		b.Fatalf("assembling: %v", err)
	}
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		b.Fatalf("loading: %v", err)
	}
	m.Run(10_000)
	b.ResetTimer()
	m.Run(uint64(b.N))
}

// BenchmarkTooledStep is the same loop with one no-op instrumentation tool
// attached, for comparison with BenchmarkUntooledStep. Since the hook-calling
// block engines landed this runs block-dispatched, not per-Step.
func BenchmarkTooledStep(b *testing.B) {
	m := spinMachine(b)
	m.AttachTool(&countingInstrTool{})
	m.Run(10_000)
	b.ResetTimer()
	m.Run(uint64(b.N))
}

// BenchmarkTooledStepSlowPath is the same tooled loop forced onto the
// per-Step path — the configuration every monitored guest ran in before the
// hook-calling block engines, kept as the ratio baseline for
// BenchmarkTooledStep.
func BenchmarkTooledStepSlowPath(b *testing.B) {
	m := spinMachine(b)
	m.AttachTool(&countingInstrTool{})
	m.SetBlockDispatch(false)
	m.Run(10_000)
	b.ResetTimer()
	m.Run(uint64(b.N))
}
