package vm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sweeper/internal/analysis/taint"
	"sweeper/internal/vm"
)

// seqInstrTool records the exact firing sequence of an instruction hook.
type seqInstrTool struct {
	name string
	seq  *[]int
}

func (t seqInstrTool) Name() string { return t.name }
func (t seqInstrTool) BeforeInstr(m *vm.Machine, idx int, in *vm.Instr) {
	*t.seq = append(*t.seq, idx)
}

// memEvent is one memory-hook callback with everything it observed.
type memEvent struct {
	idx   int
	addr  uint32
	size  int
	val   uint32
	write bool
}

// seqMemTool records the exact firing sequence of a memory hook.
type seqMemTool struct {
	name string
	seq  *[]memEvent
}

func (t seqMemTool) Name() string { return t.name }
func (t seqMemTool) OnMemRead(m *vm.Machine, idx int, addr uint32, size int, val uint32) {
	*t.seq = append(*t.seq, memEvent{idx, addr, size, val, false})
}
func (t seqMemTool) OnMemWrite(m *vm.Machine, idx int, addr uint32, size int, val uint32) {
	*t.seq = append(*t.seq, memEvent{idx, addr, size, val, true})
}

func diffIntSeq(t *testing.T, label string, fast, slow []int) {
	t.Helper()
	if len(fast) != len(slow) {
		t.Errorf("%s: fired fast=%d slow=%d times", label, len(fast), len(slow))
		return
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("%s: firing %d at idx fast=%d slow=%d", label, i, fast[i], slow[i])
			return
		}
	}
}

func diffMemSeq(t *testing.T, label string, fast, slow []memEvent) {
	t.Helper()
	if len(fast) != len(slow) {
		t.Errorf("%s: fired fast=%d slow=%d times", label, len(fast), len(slow))
		return
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("%s: firing %d fast=%+v slow=%+v", label, i, fast[i], slow[i])
			return
		}
	}
}

func diffGuestMemory(t *testing.T, label string, fast, slow *vm.Machine) {
	t.Helper()
	layout := vm.DefaultLayout()
	fd, fok := fast.Mem.ReadBytes(layout.DataBase, 256)
	sd, sok := slow.Mem.ReadBytes(layout.DataBase, 256)
	if fok != sok || (fok && string(fd) != string(sd)) {
		t.Errorf("%s: data segment diverged", label)
	}
	top := layout.StackTop()
	fsk, fok := fast.Mem.ReadBytes(top-256, 256)
	ssk, sok := slow.Mem.ReadBytes(top-256, 256)
	if fok != sok || (fok && string(fsk) != string(ssk)) {
		t.Errorf("%s: stack memory diverged", label)
	}
}

// TestTooledDispatchDifferential runs the random-guest fuzzer with
// instrumentation attached: every tool mix the dispatcher specializes on —
// the single-instruction-hook light engine, multi-hook, memory hooks with and
// without instruction hooks, random VSEF-style probes, and the real taint
// tracker — must leave the block-dispatched and per-Step engines bit-identical
// in architectural state AND in what the hooks observed: firing order, counts
// and callback arguments, not just the final state they left behind.
func TestTooledDispatchDifferential(t *testing.T) {
	configs := []string{"light", "two-instr", "instr+mem", "mem-only", "probed", "taint"}
	rng := rand.New(rand.NewSource(0x7001ed))
	const perConfig = 12 // 6 configs x 12 = 72 tooled programs
	for _, cfg := range configs {
		cfg := cfg
		for k := 0; k < perConfig; k++ {
			seed := rng.Int63()
			t.Run(fmt.Sprintf("%s/trial=%d", cfg, k), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				fast, slow := buildMachinePair(t, randomGuest(r, 80))

				var fastInstr, slowInstr, fastInstr2, slowInstr2 []int
				var fastMem, slowMem []memEvent
				var fastProbe, slowProbe []int
				switch cfg {
				case "light":
					// Exactly one instruction hook: the specialized light loop.
					fast.AttachTool(seqInstrTool{"t.instr", &fastInstr})
					slow.AttachTool(seqInstrTool{"t.instr", &slowInstr})
				case "two-instr":
					fast.AttachTool(seqInstrTool{"t.instr", &fastInstr})
					fast.AttachTool(seqInstrTool{"t.instr2", &fastInstr2})
					slow.AttachTool(seqInstrTool{"t.instr", &slowInstr})
					slow.AttachTool(seqInstrTool{"t.instr2", &slowInstr2})
				case "instr+mem":
					fast.AttachTool(seqInstrTool{"t.instr", &fastInstr})
					fast.AttachTool(seqMemTool{"t.mem", &fastMem})
					slow.AttachTool(seqInstrTool{"t.instr", &slowInstr})
					slow.AttachTool(seqMemTool{"t.mem", &slowMem})
				case "mem-only":
					fast.AttachTool(seqMemTool{"t.mem", &fastMem})
					slow.AttachTool(seqMemTool{"t.mem", &slowMem})
				case "probed":
					// VSEF-style probes at random PCs, including duplicates.
					for p := 0; p < 3; p++ {
						idx := 1 + r.Intn(40)
						if err := fast.AddProbe(idx, recordingProbe{hits: &fastProbe}); err != nil {
							t.Fatal(err)
						}
						if err := slow.AddProbe(idx, recordingProbe{hits: &slowProbe}); err != nil {
							t.Fatal(err)
						}
					}
				case "taint":
					// The real always-on taint tracker (one instr hook: rides
					// the light engine) — no input ever arrives, so it must
					// observe identical no-taint propagation on both engines.
					fast.AttachTool(taint.New(true))
					slow.AttachTool(taint.New(true))
				}

				budget := uint64(200 + r.Intn(5000))
				fs, ss := fast.Run(budget), slow.Run(budget)
				label := fmt.Sprintf("%s seed=%#x budget=%d", cfg, seed, budget)
				diffStop(t, label, fast, slow, fs, ss)
				diffGuestMemory(t, label, fast, slow)
				diffIntSeq(t, label+" instr-hook", fastInstr, slowInstr)
				diffIntSeq(t, label+" instr-hook2", fastInstr2, slowInstr2)
				diffMemSeq(t, label+" mem-hook", fastMem, slowMem)
				diffIntSeq(t, label+" probe", fastProbe, slowProbe)
			})
		}
	}
}
