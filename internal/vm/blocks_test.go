package vm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sweeper/internal/asm"
	"sweeper/internal/vm"
)

// buildMachine assembles a program and loads it twice: once with block
// dispatch (the default) and once forced onto the Step slow path, for
// differential checks between the two engines.
func buildMachinePair(t testing.TB, build func(b *asm.Builder)) (fast, slow *vm.Machine) {
	t.Helper()
	b := asm.New("blocktest")
	build(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("assembling: %v", err)
	}
	fast, err = vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatalf("loading fast machine: %v", err)
	}
	slow, err = vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatalf("loading slow machine: %v", err)
	}
	slow.SetBlockDispatch(false)
	return fast, slow
}

// diffStop compares every observable of two stopped machines: stop reason,
// fault identity, architectural state and accounting. The block dispatcher's
// contract is that all of these are bit-identical to a pure-Step run.
func diffStop(t *testing.T, label string, fast, slow *vm.Machine, fs, ss *vm.StopInfo) {
	t.Helper()
	if fs.Reason != ss.Reason {
		t.Errorf("%s: stop reason fast=%v slow=%v", label, fs.Reason, ss.Reason)
	}
	switch {
	case (fs.Fault == nil) != (ss.Fault == nil):
		t.Errorf("%s: fault presence fast=%v slow=%v", label, fs.Fault, ss.Fault)
	case fs.Fault != nil:
		f, s := fs.Fault, ss.Fault
		if f.Kind != s.Kind || f.Addr != s.Addr || f.PC != s.PC ||
			f.PCAddr != s.PCAddr || f.Sym != s.Sym || f.IsWrite != s.IsWrite || f.Detail != s.Detail {
			t.Errorf("%s: fault mismatch\nfast: %+v\nslow: %+v", label, f, s)
		}
	}
	if fast.PC != slow.PC {
		t.Errorf("%s: PC fast=%d slow=%d", label, fast.PC, slow.PC)
	}
	if fast.Flags != slow.Flags {
		t.Errorf("%s: flags fast=%d slow=%d", label, fast.Flags, slow.Flags)
	}
	if fast.Regs != slow.Regs {
		t.Errorf("%s: regs fast=%v slow=%v", label, fast.Regs, slow.Regs)
	}
	if fast.Cycles() != slow.Cycles() {
		t.Errorf("%s: cycles fast=%d slow=%d", label, fast.Cycles(), slow.Cycles())
	}
	if fast.InstrCount() != slow.InstrCount() {
		t.Errorf("%s: instrs fast=%d slow=%d", label, fast.InstrCount(), slow.InstrCount())
	}
}

// TestNegativePCFaultAddress pins the negative-PC bugfix: a PC corrupted to
// -1 must report a clamped in-segment fault address and the raw index in the
// detail, not an address wrapped through uint32 — on both engines.
func TestNegativePCFaultAddress(t *testing.T) {
	for _, blockDispatch := range []bool{true, false} {
		t.Run(fmt.Sprintf("blockDispatch=%v", blockDispatch), func(t *testing.T) {
			fast, slow := buildMachinePair(t, func(b *asm.Builder) {
				b.Func("main")
				b.MovI(vm.R1, 1)
				b.Halt()
			})
			m := fast
			if !blockDispatch {
				m = slow
			}
			m.PC = -1
			stop := m.Run(10)
			if stop.Reason != vm.StopFault || stop.Fault == nil {
				t.Fatalf("stop = %+v, want fault", stop)
			}
			f := stop.Fault
			if f.Kind != vm.FaultBadPC {
				t.Errorf("fault kind = %v, want FaultBadPC", f.Kind)
			}
			codeBase := vm.DefaultLayout().CodeBase
			if f.Addr != codeBase {
				t.Errorf("fault addr = %#x, want clamped code base %#x", f.Addr, codeBase)
			}
			if want := "program counter -1 outside code segment [0,2)"; f.Detail != want {
				t.Errorf("fault detail = %q, want %q", f.Detail, want)
			}
		})
	}
}

// TestAddrIndexRoundTrip pins the AddrOfIndex/IndexOfAddr contract: exact
// round trips for in-range indexes, a legal but non-executable one-past-end
// address, and clamped (never fabricated) addresses outside the segment.
func TestAddrIndexRoundTrip(t *testing.T) {
	fast, _ := buildMachinePair(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 1)
		b.AddI(vm.R1, 2)
		b.Nop()
		b.Halt()
	})
	m := fast
	const codeLen = 4
	base := vm.DefaultLayout().CodeBase

	for idx := 0; idx < codeLen; idx++ {
		addr := m.AddrOfIndex(idx)
		if want := base + uint32(idx)*vm.InstrSize; addr != want {
			t.Errorf("AddrOfIndex(%d) = %#x, want %#x", idx, addr, want)
		}
		back, ok := m.IndexOfAddr(addr)
		if !ok || back != idx {
			t.Errorf("IndexOfAddr(AddrOfIndex(%d)) = %d, %v; want exact round trip", idx, back, ok)
		}
	}

	// One-past-the-end: a legal address (a call at the last instruction
	// pushes it as the return address) that is not executable.
	pastEnd := m.AddrOfIndex(codeLen)
	if want := base + codeLen*vm.InstrSize; pastEnd != want {
		t.Errorf("AddrOfIndex(len) = %#x, want %#x", pastEnd, want)
	}
	if idx, ok := m.IndexOfAddr(pastEnd); ok {
		t.Errorf("IndexOfAddr(one-past-end) = %d, true; want rejection", idx)
	}

	// Out-of-range indexes clamp to the segment bounds instead of wrapping
	// (negative) or aliasing unrelated memory (past the end).
	for _, idx := range []int{-1, -100, -1 << 30} {
		if addr := m.AddrOfIndex(idx); addr != base {
			t.Errorf("AddrOfIndex(%d) = %#x, want clamped code base %#x", idx, addr, base)
		}
	}
	for _, idx := range []int{codeLen + 1, codeLen + 1000} {
		if addr := m.AddrOfIndex(idx); addr != pastEnd {
			t.Errorf("AddrOfIndex(%d) = %#x, want clamped segment end %#x", idx, addr, pastEnd)
		}
	}

	// Addresses that never came from AddrOfIndex are rejected.
	if _, ok := m.IndexOfAddr(base - vm.InstrSize); ok {
		t.Error("IndexOfAddr(below code base) accepted")
	}
	if _, ok := m.IndexOfAddr(base + 1); ok {
		t.Error("IndexOfAddr(misaligned) accepted")
	}
}

// TestRunBudgetBlockBoundaries sweeps Run budgets across a program with a
// known block structure — exhausting the budget exactly at a block boundary,
// one instruction before it, and midway through a block (including between
// the halves of a fused push/pop pair) — and asserts block dispatch and the
// forced slow path stop with identical observables everywhere.
func TestRunBudgetBlockBoundaries(t *testing.T) {
	// Block layout: [movi addi push pop addi] jmp -> 6-instruction loop with
	// a fused pair inside, so budgets land on every interesting boundary.
	build := func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R2, 7)
		b.Label("main.loop")
		b.AddI(vm.R1, 3)
		b.Push(vm.R1)
		b.Pop(vm.R3)
		b.AddI(vm.R3, 1)
		b.Jmp("main.loop")
	}
	// Named boundary cases on top of the exhaustive sweep below: the first
	// block body ends at instruction 5 (the jmp terminator retires as the
	// 6th), the fused push/pop pair occupies instructions 2-3.
	named := map[string]uint64{
		"one before block boundary": 4,
		"exactly at block boundary": 5,
		"midway through block":      3,
		"between fused pair halves": 2,
	}
	for name, budget := range named {
		t.Run(name, func(t *testing.T) {
			fast, slow := buildMachinePair(t, build)
			fs, ss := fast.Run(budget), slow.Run(budget)
			if fs.Reason != vm.StopInstrBudget {
				t.Errorf("budget %d: reason = %v, want StopInstrBudget", budget, fs.Reason)
			}
			diffStop(t, name, fast, slow, fs, ss)
			if got := fast.InstrCount(); got != budget {
				t.Errorf("budget %d: retired %d instructions", budget, got)
			}
		})
	}
	t.Run("sweep", func(t *testing.T) {
		for budget := uint64(1); budget <= 40; budget++ {
			fast, slow := buildMachinePair(t, build)
			fs, ss := fast.Run(budget), slow.Run(budget)
			diffStop(t, fmt.Sprintf("budget=%d", budget), fast, slow, fs, ss)
		}
	})
	t.Run("chunked resume", func(t *testing.T) {
		// Re-entering Run with small budgets must accumulate to the same
		// state as one large budget: exercises the fused-loop prologue
		// clamps and pair-split handling at every offset.
		fast, slow := buildMachinePair(t, build)
		var total uint64
		for _, chunk := range []uint64{1, 2, 3, 1, 5, 7, 2, 11, 1, 4} {
			fast.Run(chunk)
			total += chunk
		}
		ss := slow.Run(total)
		diffStop(t, "chunked", fast, slow, &vm.StopInfo{Reason: ss.Reason}, ss)
	})
}

// TestFusedPairJumpIntoSecondHalf pins the fusion entry-point invariant: a
// branch landing on the second half of a fused pair executes the original
// un-fused instruction.
func TestFusedPairJumpIntoSecondHalf(t *testing.T) {
	build := func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 100)
		// addi;addi fuses into one micro-op...
		b.AddI(vm.R1, 10)
		b.Label("main.second") // ...whose second half is also a jump target.
		b.AddI(vm.R1, 1)
		b.CmpI(vm.R1, 115)
		b.Jlt("main.second")
		b.Halt()
	}
	fast, slow := buildMachinePair(t, build)
	fs, ss := fast.Run(1000), slow.Run(1000)
	if fs.Reason != vm.StopHalt {
		t.Fatalf("fast stop = %v, want halt", fs.Reason)
	}
	diffStop(t, "jump into pair", fast, slow, fs, ss)
	if fast.Regs[vm.R1] != 115 {
		t.Errorf("R1 = %d, want 115", fast.Regs[vm.R1])
	}
}

// TestFusedPairSPEdgeCases pins the push/pop fusion against Step's register
// write ordering when SP itself is an operand.
func TestFusedPairSPEdgeCases(t *testing.T) {
	cases := map[string]func(b *asm.Builder){
		"pop into SP": func(b *asm.Builder) {
			b.Func("main")
			b.MovI(vm.R1, 0x5000)
			b.Push(vm.R1)
			b.Pop(vm.SP) // fused pop whose destination is SP
			b.Halt()
		},
		"push SP pop SP": func(b *asm.Builder) {
			b.Func("main")
			b.Push(vm.SP)
			b.Pop(vm.SP)
			b.Halt()
		},
		"push SP pop other": func(b *asm.Builder) {
			b.Func("main")
			b.Push(vm.SP)
			b.Pop(vm.R4)
			b.Halt()
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			fast, slow := buildMachinePair(t, build)
			fs, ss := fast.Run(1000), slow.Run(1000)
			diffStop(t, name, fast, slow, fs, ss)
		})
	}
}

// TestProbeParityFastPath checks that registering a probe keeps block
// dispatch bit-compatible with the slow path: the probe fires the same
// number of times at the same indexes and the accounting matches.
func TestProbeParityFastPath(t *testing.T) {
	build := func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 0)
		b.Label("main.loop")
		b.AddI(vm.R1, 1)
		b.Push(vm.R1)
		b.Pop(vm.R2)
		b.CmpI(vm.R1, 50)
		b.Jlt("main.loop")
		b.Halt()
	}
	fast, slow := buildMachinePair(t, build)
	var fastHits, slowHits []int
	rec := func(sink *[]int) vm.Probe {
		return recordingProbe{hits: sink}
	}
	// Probe the middle of the loop body: the fused run must clamp short of
	// it every iteration and hand it to Step.
	if err := fast.AddProbe(3, rec(&fastHits)); err != nil {
		t.Fatal(err)
	}
	if err := slow.AddProbe(3, rec(&slowHits)); err != nil {
		t.Fatal(err)
	}
	fs, ss := fast.Run(100000), slow.Run(100000)
	diffStop(t, "probed", fast, slow, fs, ss)
	if len(fastHits) != 50 || len(slowHits) != 50 {
		t.Fatalf("probe fired fast=%d slow=%d times, want 50", len(fastHits), len(slowHits))
	}
}

type recordingProbe struct{ hits *[]int }

func (recordingProbe) Name() string { return "test.recorder" }
func (p recordingProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {
	*p.hits = append(*p.hits, idx)
}

// TestBlockDispatchDifferential runs randomly generated guests — ALU soup,
// loads and stores through a data segment, stack traffic, division hazards
// and dense branch webs — on both engines and requires every observable to
// match, including after faults and budget exhaustion.
// randomGuest returns a builder for one random guest program: ALU soup, loads
// and stores through a scratch data segment, stack traffic, division hazards
// and a dense branch web. Both differential fuzzers (untooled and tooled)
// draw their guests from it.
func randomGuest(r *rand.Rand, n int) func(b *asm.Builder) {
	regs := []vm.Reg{vm.R0, vm.R1, vm.R2, vm.R3, vm.R4, vm.R5, vm.R7}
	return func(b *asm.Builder) {
		b.DataSpace("scratch", 256)
		b.Func("main")
		b.LoadDataAddr(vm.R6, "scratch") // R6 anchors memory traffic
		labels := 0
		for i := 0; i < n; i++ {
			if i%10 == 0 {
				b.Label(fmt.Sprintf("main.l%d", labels))
				labels++
			}
			rd := regs[r.Intn(len(regs))]
			rs := regs[r.Intn(len(regs))]
			switch r.Intn(16) {
			case 0:
				b.AddI(rd, int32(r.Intn(64)))
			case 1:
				b.AddI(rd, int32(r.Intn(64))) // weight addi like real code
			case 2:
				b.Mov(rd, rs)
			case 3:
				b.CmpI(rd, int32(r.Intn(32)))
			case 4:
				b.LoadB(rd, vm.R6, int32(r.Intn(200)))
			case 5:
				b.StoreB(vm.R6, int32(r.Intn(200)), rs)
			case 6:
				b.LoadW(rd, vm.R6, int32(r.Intn(196)))
			case 7:
				b.StoreW(vm.R6, int32(r.Intn(196)), rs)
			case 8:
				b.Push(rd)
			case 9:
				b.Pop(rd)
			case 10:
				b.Sub(rd, rs)
			case 11:
				b.Div(rd, rs) // faults when rs holds zero
			case 12:
				b.MulI(rd, int32(r.Intn(8)))
			case 13:
				b.Cmp(rd, rs)
			case 14:
				// Branch into the existing label web.
				target := fmt.Sprintf("main.l%d", r.Intn(labels))
				switch r.Intn(3) {
				case 0:
					b.Jz(target)
				case 1:
					b.Jge(target)
				default:
					b.Jlt(target)
				}
			case 15:
				b.ShlI(rd, int32(r.Intn(8)))
			}
		}
		b.Halt()
	}
}

func TestBlockDispatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 60; trial++ {
		trial := trial
		seed := rng.Int63()
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			fast, slow := buildMachinePair(t, randomGuest(r, 80))
			budget := uint64(200 + r.Intn(5000))
			fs, ss := fast.Run(budget), slow.Run(budget)
			diffStop(t, fmt.Sprintf("seed=%#x budget=%d", seed, budget), fast, slow, fs, ss)

			// Guest memory must match too: data segment and the touched
			// region just under the initial stack top.
			layout := vm.DefaultLayout()
			fd, fok := fast.Mem.ReadBytes(layout.DataBase, 256)
			sd, sok := slow.Mem.ReadBytes(layout.DataBase, 256)
			if fok != sok || (fok && string(fd) != string(sd)) {
				t.Errorf("data segment diverged")
			}
			top := layout.StackTop()
			fsk, fok := fast.Mem.ReadBytes(top-256, 256)
			ssk, sok := slow.Mem.ReadBytes(top-256, 256)
			if fok != sok || (fok && string(fsk) != string(ssk)) {
				t.Errorf("stack memory diverged")
			}
		})
	}
}
