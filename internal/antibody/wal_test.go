package antibody

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mkAb(id, program string) *Antibody {
	return &Antibody{
		ID:      id,
		Program: program,
		Stage:   StageInitial,
		Sigs:    []*Signature{ExactSignature("sig-"+id, []byte(id))},
	}
}

func walFrame(t *testing.T, seq uint64, a *Antibody) []byte {
	t.Helper()
	payload, err := json.Marshal(walRecord{Seq: seq, Antibody: a})
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame
}

func TestDurableStoreSurvivesCloseAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("ab-%02d", i)
		st.Publish(mkAb(id, fmt.Sprintf("prog-%d", i%3)))
		want = append(want, id)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	all := st2.All()
	if len(all) != len(want) {
		t.Fatalf("reopened store has %d antibodies, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.ID != want[i] {
			t.Fatalf("publication order changed at %d: got %s want %s", i, a.ID, want[i])
		}
	}
	if got := st2.ForProgram("prog-0"); len(got) != 7 {
		t.Fatalf("per-program index not rebuilt: got %d for prog-0, want 7", len(got))
	}
}

func TestWALTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurable(dir, DurableOptions{CompactEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st.Publish(mkAb(fmt.Sprintf("ab-%d", i), "prog"))
	}
	st.DetachWAL() // crash-style: no compaction, records live only in wal.log

	// Simulate a crash mid-append: a good frame's header plus half its payload.
	walPath := filepath.Join(dir, walFileName)
	frame := walFrame(t, 99, mkAb("ab-torn", "prog"))
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-7]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("open with torn tail should succeed: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 5 {
		t.Fatalf("got %d antibodies after torn-tail recovery, want 5", st2.Len())
	}
	if _, ok := st2.Get("ab-torn"); ok {
		t.Fatal("torn record must not be replayed")
	}
}

func TestWALCorruptCRCTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurable(dir, DurableOptions{CompactEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	st.Publish(mkAb("ab-good", "prog"))
	st.DetachWAL()

	walPath := filepath.Join(dir, walFileName)
	frame := walFrame(t, 7, mkAb("ab-bad", "prog"))
	frame[4] ^= 0xff // break the CRC
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame)
	f.Close()

	st2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("got %d antibodies, want 1 (CRC-mismatched record dropped)", st2.Len())
	}
}

func TestWALDuplicateIDsAcrossSnapshotAndLog(t *testing.T) {
	// A crash between compaction's snapshot rename and its log truncation
	// leaves the same antibody in both files; the reload must dedup.
	dir := t.TempDir()
	snap := walSnapshot{Antibodies: []*Antibody{mkAb("ab-0", "prog"), mkAb("ab-1", "prog")}}
	data, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var log []byte
	log = append(log, walFrame(t, 1, mkAb("ab-1", "prog"))...) // dup of snapshot
	log = append(log, walFrame(t, 2, mkAb("ab-2", "prog"))...) // fresh
	if err := os.WriteFile(filepath.Join(dir, walFileName), log, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 3 {
		t.Fatalf("got %d antibodies, want 3 (snapshot∪log with dedup)", st.Len())
	}
	all := st.All()
	for i, want := range []string{"ab-0", "ab-1", "ab-2"} {
		if all[i].ID != want {
			t.Fatalf("order[%d] = %s, want %s", i, all[i].ID, want)
		}
	}
}

func TestSinceCursorStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		st.Publish(mkAb(fmt.Sprintf("ab-%d", i), fmt.Sprintf("prog-%d", i%4)))
	}
	// A federation peer that pulled up to cursor 6 before the restart…
	before, cursor := st.Since(6)
	st.Close()

	st2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// …must see exactly the same suffix from the reopened store.
	after, cursor2 := st2.Since(6)
	if len(after) != len(before) || cursor2 != cursor {
		t.Fatalf("Since(6) changed across restart: %d/%d vs %d/%d", len(after), cursor2, len(before), cursor)
	}
	for i := range after {
		if after[i].ID != before[i].ID {
			t.Fatalf("Since(6)[%d] = %s, want %s", i, after[i].ID, before[i].ID)
		}
	}
	// New publishes continue the cursor sequence.
	st2.Publish(mkAb("ab-new", "prog-0"))
	fresh, _ := st2.Since(cursor2)
	if len(fresh) != 1 || fresh[0].ID != "ab-new" {
		t.Fatalf("cursor did not resume cleanly: got %d records", len(fresh))
	}
}

func TestConcurrentPublishDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurable(dir, DurableOptions{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		each    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				st.Publish(mkAb(fmt.Sprintf("ab-%d-%d", w, i), fmt.Sprintf("prog-%d", w%5)))
			}
		}(w)
	}
	// Extra compactions racing the publish storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := st.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if st.Len() != workers*each {
		t.Fatalf("in-memory store has %d, want %d", st.Len(), workers*each)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != workers*each {
		t.Fatalf("reloaded store has %d, want %d (lost or duplicated publishes)", st2.Len(), workers*each)
	}
}
