package antibody

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Durable storage layout inside the store directory:
//
//	snapshot.json — compacted store image: {"antibodies": [...]} in global
//	                publication order, written atomically (tmp + rename).
//	wal.log       — append-only log of publishes since the last compaction.
//	                Each record is framed [4B BE payload len][4B BE IEEE
//	                CRC32 of payload][payload]; the payload is a JSON
//	                walRecord carrying the publication seq so that records
//	                appended concurrently from different shards can be
//	                replayed in global publication order.
//
// On open, a torn final record (short frame or CRC mismatch — the tail a
// crash mid-append leaves behind) is truncated away; everything before it
// replays. Records whose IDs duplicate the snapshot (possible when a crash
// lands between compaction's rename and its log truncation) are absorbed by
// Publish's normal dedup.
const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.json"
	walMaxRecord     = 16 << 20 // an antibody record beyond 16 MiB is corruption
)

// DurableOptions configures OpenDurable. Zero values get defaults.
type DurableOptions struct {
	// Shards is the store shard count (default DefaultShards).
	Shards int
	// CompactEvery triggers snapshot compaction after this many WAL
	// appends (default 256). Compaction rewrites snapshot.json with the
	// full store and truncates the log.
	CompactEvery int
	// SyncEveryAppend fsyncs the log after every record. Off by default:
	// records are write()n immediately (no userspace buffering), so an
	// in-process crash loses nothing; only a kernel crash can lose the
	// unsynced tail. Sync/Close always fsync.
	SyncEveryAppend bool
}

type walRecord struct {
	Seq      uint64    `json:"seq"`
	Antibody *Antibody `json:"antibody"`
}

type walSnapshot struct {
	Antibodies []*Antibody `json:"antibodies"`
}

// wal is the open write-ahead log for one durable store. All fields are
// guarded by the owning Store's walMu.
type wal struct {
	dir     string
	f       *os.File
	appends int // records since last compaction
	opts    DurableOptions
}

// OpenDurable opens (creating if necessary) a durable store rooted at dir.
// It replays the snapshot and WAL into a fresh sharded store, truncating a
// torn WAL tail, then compacts immediately so the log restarts empty with
// sequence numbers consistent with the rebuilt in-memory order. The replay
// preserves publication order, so federation Since cursors held by peers
// remain valid across a restart.
func OpenDurable(dir string, opts DurableOptions) (*Store, error) {
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 256
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("antibody: durable store: %w", err)
	}
	st := NewStoreSharded(opts.Shards)

	// Replay snapshot first (already in publication order)…
	snapPath := filepath.Join(dir, snapshotFileName)
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap walSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("antibody: durable store: corrupt %s: %w", snapshotFileName, err)
		}
		for _, a := range snap.Antibodies {
			st.Publish(a)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("antibody: durable store: %w", err)
	}

	// …then the WAL, sorted by the seq each record carried when written.
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("antibody: durable store: %w", err)
	}
	recs, goodEnd, err := readWALRecords(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi, statErr := f.Stat(); statErr == nil && fi.Size() > goodEnd {
		// Torn tail from a crash mid-append: drop it.
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("antibody: durable store: truncating torn WAL tail: %w", err)
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	for _, r := range recs {
		st.Publish(r.Antibody)
	}

	w := &wal{dir: dir, f: f, opts: opts}
	st.wal = w
	// Compact immediately: the replay renumbered sequences contiguously, so
	// stale on-disk seqs must not mix with fresh appends in one log
	// generation.
	st.walMu.Lock()
	err = st.compactLocked()
	st.walMu.Unlock()
	if err != nil {
		f.Close()
		st.wal = nil
		return nil, err
	}
	return st, nil
}

// readWALRecords decodes every intact record and returns the offset just
// past the last good frame. A short frame, oversized length, or CRC
// mismatch ends the scan (torn tail) without error.
func readWALRecords(f *os.File) ([]walRecord, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("antibody: durable store: %w", err)
	}
	var (
		recs    []walRecord
		goodEnd int64
		hdr     [8]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // clean EOF or torn header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n == 0 || n > walMaxRecord {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var r walRecord
		if err := json.Unmarshal(payload, &r); err != nil || r.Antibody == nil {
			break
		}
		recs = append(recs, r)
		goodEnd += int64(len(hdr)) + int64(n)
	}
	return recs, goodEnd, nil
}

// walAppend durably records a publish. Called by Publish after the
// in-memory insert, outside shard locks; a no-op for in-memory stores.
// Append errors are counted, not fatal: losing durability must never take
// down the serving path.
func (st *Store) walAppend(seq uint64, a *Antibody) {
	st.walMu.Lock()
	defer st.walMu.Unlock()
	w := st.wal
	if w == nil {
		return
	}
	payload, err := json.Marshal(walRecord{Seq: seq, Antibody: a})
	if err != nil {
		return
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return
	}
	if w.opts.SyncEveryAppend {
		w.f.Sync()
	}
	w.appends++
	if w.appends >= w.opts.CompactEvery {
		st.compactLocked() // best-effort; the WAL keeps growing on failure
	}
}

// compactLocked rewrites snapshot.json from the full in-memory store and
// truncates the WAL. Caller holds walMu (shard locks are NOT held — All
// takes them itself). A publish racing with compaction may land in both the
// snapshot and a later WAL append; load-time dedup absorbs the duplicate,
// and nothing is ever lost because the in-memory insert happens before the
// WAL append.
func (st *Store) compactLocked() error {
	w := st.wal
	if w == nil {
		return nil
	}
	snap := walSnapshot{Antibodies: st.All()}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("antibody: durable store: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(w.dir, snapshotFileName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("antibody: durable store: %w", err)
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("antibody: durable store: writing snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("antibody: durable store: syncing snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("antibody: durable store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapshotFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("antibody: durable store: installing snapshot: %w", err)
	}
	syncDir(w.dir)
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("antibody: durable store: truncating WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("antibody: durable store: %w", err)
	}
	w.f.Sync()
	w.appends = 0
	return nil
}

// Compact forces a snapshot compaction now. Exposed for tests and the
// clean-shutdown path.
func (st *Store) Compact() error {
	st.walMu.Lock()
	defer st.walMu.Unlock()
	return st.compactLocked()
}

// Sync fsyncs the WAL so every published antibody is on stable storage. A
// no-op for in-memory stores.
func (st *Store) Sync() error {
	st.walMu.Lock()
	defer st.walMu.Unlock()
	if st.wal == nil {
		return nil
	}
	return st.wal.f.Sync()
}

// Close flushes, fsyncs and detaches the WAL. The store remains usable in
// memory afterwards. A no-op for in-memory stores.
func (st *Store) Close() error {
	st.walMu.Lock()
	defer st.walMu.Unlock()
	w := st.wal
	if w == nil {
		return nil
	}
	st.wal = nil
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// DetachWAL abandons the WAL without flushing — the moral equivalent of a
// SIGKILL for the durability layer. Whatever the OS already has (every
// completed append — records are written unbuffered) survives; the file
// descriptor is simply closed. Used by the fault-injection harness.
func (st *Store) DetachWAL() {
	st.walMu.Lock()
	defer st.walMu.Unlock()
	if st.wal == nil {
		return
	}
	st.wal.f.Close()
	st.wal = nil
}

// Durable reports whether the store is backed by a WAL.
func (st *Store) Durable() bool {
	st.walMu.Lock()
	defer st.walMu.Unlock()
	return st.wal != nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
