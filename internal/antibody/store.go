package antibody

import "sync"

// Store is a thread-safe, deduplicating registry of antibodies shared by a
// fleet of protected guests. A guest that generates an antibody publishes it
// here; every subscriber (typically the fleet's distribution loop) is told
// about each antibody exactly once, so an antibody generated for one guest
// can inoculate all others — the paper's community-defence flow inside one
// daemon.
type Store struct {
	mu    sync.Mutex
	byID  map[string]*Antibody
	order []*Antibody
	// byProgram indexes the antibodies by target program, in publication
	// order, so the per-program lookup every joining guest performs stays
	// O(matches) instead of rescanning a fleet-sized store.
	byProgram map[string][]*Antibody
	subs      []func(*Antibody)
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byID: make(map[string]*Antibody), byProgram: make(map[string][]*Antibody)}
}

// Publish adds the antibody to the store and notifies subscribers. It
// reports whether the antibody was new; an already-known ID is ignored, so
// guests may republish received antibodies without causing loops.
func (st *Store) Publish(a *Antibody) bool {
	st.mu.Lock()
	if _, dup := st.byID[a.ID]; dup {
		st.mu.Unlock()
		return false
	}
	st.byID[a.ID] = a
	st.order = append(st.order, a)
	st.byProgram[a.Program] = append(st.byProgram[a.Program], a)
	var subs []func(*Antibody)
	subs = append(subs, st.subs...)
	st.mu.Unlock()
	// Notify outside the lock so subscribers may publish or query freely.
	for _, fn := range subs {
		fn(a)
	}
	return true
}

// Subscribe registers fn to be called for every subsequently published
// antibody, and immediately replays every antibody already stored (so a
// late-joining guest is inoculated against everything the fleet has learned).
func (st *Store) Subscribe(fn func(*Antibody)) {
	st.mu.Lock()
	st.subs = append(st.subs, fn)
	replay := append([]*Antibody(nil), st.order...)
	st.mu.Unlock()
	for _, a := range replay {
		fn(a)
	}
}

// Get returns the stored antibody with the given ID.
func (st *Store) Get(id string) (*Antibody, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a, ok := st.byID[id]
	return a, ok
}

// All returns every stored antibody in publication order.
func (st *Store) All() []*Antibody {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]*Antibody(nil), st.order...)
}

// Since returns the antibodies published at or after the given publication
// cursor, plus the cursor to pass next time. A federated peer polls with the
// returned cursor to stream the store incrementally: Since(0) is the
// full-store replay a joining peer performs, and an up-to-date peer gets an
// empty slice back.
func (st *Store) Since(cursor int) ([]*Antibody, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(st.order) {
		cursor = len(st.order)
	}
	return append([]*Antibody(nil), st.order[cursor:]...), len(st.order)
}

// ForProgram returns every stored antibody generated for the given program,
// in publication order. The per-program index maintained by Publish makes
// this O(matches) regardless of how many programs share the store.
func (st *Store) ForProgram(program string) []*Antibody {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]*Antibody(nil), st.byProgram[program]...)
}

// Len returns the number of stored antibodies.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.order)
}
