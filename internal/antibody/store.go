package antibody

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used by NewStore. Sharding by program
// family keeps a fleet-wide publish storm from funnelling every publish
// through one lock while preserving a single global publication order for
// the federation `Since` cursor.
const DefaultShards = 8

// shardRec pairs a stored antibody with its global publication sequence
// number. Per-shard record slices are naturally sorted by seq (records are
// appended while holding the shard lock that assigned the seq), which lets
// Since gather each shard's suffix with a binary search and merge by seq.
type shardRec struct {
	seq uint64
	a   *Antibody
}

type storeShard struct {
	mu   sync.Mutex
	byID map[string]*Antibody
	recs []shardRec
	// byProgram indexes the antibodies by target program, in publication
	// order, so the per-program lookup every joining guest performs stays
	// O(matches) instead of rescanning a fleet-sized store.
	byProgram map[string][]*Antibody
}

// Store is a thread-safe, deduplicating registry of antibodies shared by a
// fleet of protected guests. A guest that generates an antibody publishes it
// here; every subscriber (typically the fleet's distribution loop) is told
// about each antibody exactly once, so an antibody generated for one guest
// can inoculate all others — the paper's community-defence flow inside one
// daemon.
//
// The store is sharded by program family. Each shard has its own mutex and
// indexes; a global atomic sequence counter (assigned while holding the
// shard lock) preserves a total publication order across shards so the
// federation path's Since cursor keeps its exact pre-sharding semantics.
//
// Lock order: subsMu before any shard mutex, shard mutexes in index order,
// walMu after all shard mutexes. Publish holds subsMu for read across both
// the shard insert and the subscriber-list copy; Subscribe holds it for
// write across the full-store snapshot and the subscriber append. That
// serialisation is what gives each subscriber every antibody exactly once.
type Store struct {
	shards []*storeShard
	seq    uint64 // next global sequence number; atomic, bumped under a shard lock

	subsMu sync.RWMutex
	subs   []func(*Antibody)

	// walMu serialises WAL appends (which may come from any shard) and
	// compaction. It is always taken after shard locks are released.
	walMu sync.Mutex
	wal   *wal
}

// NewStore returns an empty store with the default shard count.
func NewStore() *Store { return NewStoreSharded(DefaultShards) }

// NewStoreSharded returns an empty store with the given shard count
// (values below 1 fall back to DefaultShards).
func NewStoreSharded(shards int) *Store {
	if shards < 1 {
		shards = DefaultShards
	}
	st := &Store{shards: make([]*storeShard, shards)}
	for i := range st.shards {
		st.shards[i] = &storeShard{
			byID:      make(map[string]*Antibody),
			byProgram: make(map[string][]*Antibody),
		}
	}
	return st
}

// Shards returns the store's shard count.
func (st *Store) Shards() int { return len(st.shards) }

func (st *Store) shard(program string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(program))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

// Publish adds the antibody to the store and notifies subscribers. It
// reports whether the antibody was new; an already-known ID is ignored, so
// guests may republish received antibodies without causing loops.
func (st *Store) Publish(a *Antibody) bool {
	st.subsMu.RLock()
	sh := st.shard(a.Program)
	sh.mu.Lock()
	if _, dup := sh.byID[a.ID]; dup {
		sh.mu.Unlock()
		st.subsMu.RUnlock()
		return false
	}
	seq := atomic.AddUint64(&st.seq, 1) - 1
	sh.byID[a.ID] = a
	sh.recs = append(sh.recs, shardRec{seq: seq, a: a})
	sh.byProgram[a.Program] = append(sh.byProgram[a.Program], a)
	sh.mu.Unlock()
	var subs []func(*Antibody)
	subs = append(subs, st.subs...)
	st.subsMu.RUnlock()
	st.walAppend(seq, a)
	// Notify outside the locks so subscribers may publish or query freely.
	for _, fn := range subs {
		fn(a)
	}
	return true
}

// Subscribe registers fn to be called for every subsequently published
// antibody, and immediately replays every antibody already stored (so a
// late-joining guest is inoculated against everything the fleet has learned).
func (st *Store) Subscribe(fn func(*Antibody)) {
	st.subsMu.Lock()
	st.subs = append(st.subs, fn)
	replay, _ := st.snapshotSince(0)
	st.subsMu.Unlock()
	for _, a := range replay {
		fn(a)
	}
}

// Get returns the stored antibody with the given ID.
func (st *Store) Get(id string) (*Antibody, bool) {
	for _, sh := range st.shards {
		sh.mu.Lock()
		a, ok := sh.byID[id]
		sh.mu.Unlock()
		if ok {
			return a, true
		}
	}
	return nil, false
}

// All returns every stored antibody in publication order.
func (st *Store) All() []*Antibody {
	out, _ := st.snapshotSince(0)
	return out
}

// Since returns the antibodies published at or after the given publication
// cursor, plus the cursor to pass next time. A federated peer polls with the
// returned cursor to stream the store incrementally: Since(0) is the
// full-store replay a joining peer performs, and an up-to-date peer gets an
// empty slice back.
func (st *Store) Since(cursor int) ([]*Antibody, int) {
	if cursor < 0 {
		cursor = 0
	}
	return st.snapshotSince(uint64(cursor))
}

// snapshotSince locks every shard, reads the global sequence counter, and
// merges each shard's records with seq >= cursor into global publication
// order. Holding all shard locks guarantees no sequence number has been
// assigned without its record being visible (both happen under the same
// shard lock), so the returned cursor is always consistent.
func (st *Store) snapshotSince(cursor uint64) ([]*Antibody, int) {
	for _, sh := range st.shards {
		sh.mu.Lock()
	}
	total := atomic.LoadUint64(&st.seq)
	if cursor > total {
		cursor = total
	}
	merged := make([]shardRec, 0, total-cursor)
	for _, sh := range st.shards {
		// recs is sorted by seq; binary search for the suffix >= cursor.
		lo, hi := 0, len(sh.recs)
		for lo < hi {
			mid := (lo + hi) / 2
			if sh.recs[mid].seq < cursor {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		merged = append(merged, sh.recs[lo:]...)
	}
	for _, sh := range st.shards {
		sh.mu.Unlock()
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].seq < merged[j].seq })
	out := make([]*Antibody, len(merged))
	for i, r := range merged {
		out[i] = r.a
	}
	return out, int(total)
}

// ForProgram returns every stored antibody generated for the given program,
// in publication order. The per-program index maintained by Publish makes
// this O(matches) regardless of how many programs share the store.
func (st *Store) ForProgram(program string) []*Antibody {
	sh := st.shard(program)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]*Antibody(nil), sh.byProgram[program]...)
}

// Len returns the number of stored antibodies.
func (st *Store) Len() int {
	for _, sh := range st.shards {
		sh.mu.Lock()
	}
	n := atomic.LoadUint64(&st.seq)
	for _, sh := range st.shards {
		sh.mu.Unlock()
	}
	return int(n)
}
