package antibody

import (
	"encoding/json"
	"fmt"
)

// The wire types below are the HTTP+JSON vocabulary federated stores speak:
// a daemon pushes freshly published antibodies to its peers as a
// PushEnvelope, and pulls a peer's store incrementally (or in full, when
// joining) as PullPages. Antibodies travel in their ordinary JSON encoding,
// exploit input included, so the receiving host can re-verify each one by
// replaying the attached exploit before adoption.

// PushEnvelope is the body of a publish push between federated stores.
type PushEnvelope struct {
	// From names the sending daemon (diagnostics only; receivers must not
	// trust it any more than the antibodies themselves).
	From       string      `json:"from,omitempty"`
	Antibodies []*Antibody `json:"antibodies"`
}

// PushResult reports how a push was absorbed.
type PushResult struct {
	// Accepted counts antibodies that were new to the receiving store;
	// duplicates (already-known IDs) are dropped silently, which is what makes
	// gossip loops terminate.
	Accepted int `json:"accepted"`
}

// PullPage is the response to a cursor pull: the antibodies published at or
// after the requested cursor and the cursor to poll with next.
type PullPage struct {
	Next       int         `json:"next"`
	Antibodies []*Antibody `json:"antibodies"`
}

// EncodePush encodes a push envelope for the wire.
func EncodePush(e *PushEnvelope) ([]byte, error) { return json.Marshal(e) }

// DecodePush decodes a push envelope received from a peer.
func DecodePush(data []byte) (*PushEnvelope, error) {
	var e PushEnvelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("antibody: decoding push: %w", err)
	}
	return &e, nil
}

// DecodePull decodes a pull page received from a peer (the serving side
// encodes pages with a plain JSON encoder).
func DecodePull(data []byte) (*PullPage, error) {
	var p PullPage
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("antibody: decoding pull page: %w", err)
	}
	return &p, nil
}
