package antibody

import (
	"encoding/json"
	"fmt"

	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
)

// Stage labels how refined an antibody is. Sweeper distributes antibodies
// piecemeal: the initial one (from memory-state analysis) within tens of
// milliseconds, refined and final ones as the heavier analyses complete.
type Stage string

// Antibody stages.
const (
	StageInitial Stage = "initial"
	StageRefined Stage = "refined"
	StageFinal   Stage = "final"
)

// Antibody is the shareable unit of defence: VSEFs, input signatures and the
// exploit-triggering input that lets untrusting hosts verify (or regenerate)
// the antibodies themselves.
type Antibody struct {
	ID      string       `json:"id"`
	Program string       `json:"program"`
	Stage   Stage        `json:"stage"`
	VSEFs   []*VSEF      `json:"vsefs,omitempty"`
	Sigs    []*Signature `json:"signatures,omitempty"`
	// ExploitInput is the captured attack request.
	ExploitInput []byte `json:"exploit_input,omitempty"`
	// CreatedAtMs is the virtual time at which the antibody became available,
	// measured from the protected process's clock.
	CreatedAtMs uint64   `json:"created_at_ms"`
	Notes       []string `json:"notes,omitempty"`
}

// String summarises the antibody.
func (a *Antibody) String() string {
	return fmt.Sprintf("antibody %s for %s (%s): %d VSEFs, %d signatures",
		a.ID, a.Program, a.Stage, len(a.VSEFs), len(a.Sigs))
}

// Marshal encodes the antibody for distribution to other hosts.
func (a *Antibody) Marshal() ([]byte, error) { return json.Marshal(a) }

// Unmarshal decodes an antibody received from another host.
func Unmarshal(data []byte) (*Antibody, error) {
	var a Antibody
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("antibody: decoding: %w", err)
	}
	return &a, nil
}

// Filters returns the antibody's input signatures as proxy filters.
func (a *Antibody) Filters() []netproxy.Filter {
	out := make([]netproxy.Filter, 0, len(a.Sigs))
	for _, s := range a.Sigs {
		out = append(out, s)
	}
	return out
}

// AppliedAntibody is a handle to an antibody installed on a process and proxy.
type AppliedAntibody struct {
	antibody *Antibody
	vsefs    []*Applied
	proxy    *netproxy.Proxy
}

// Antibody returns the antibody this handle installed.
func (ap *AppliedAntibody) Antibody() *Antibody { return ap.antibody }

// Remove uninstalls the antibody's VSEF probes and proxy filters.
func (ap *AppliedAntibody) Remove() {
	for _, v := range ap.vsefs {
		v.Remove()
	}
	if ap.proxy != nil {
		for _, s := range ap.antibody.Sigs {
			ap.proxy.RemoveFilter(s.Name())
		}
	}
}

// Apply installs the antibody's VSEFs on the process and (when a proxy is
// given) its input signatures on the proxy. By their nature VSEFs cannot be
// harmful — an incorrect VSEF only adds unnecessary checking — so hosts may
// apply antibodies before verifying them.
func (a *Antibody) Apply(p *proc.Process, proxy *netproxy.Proxy) (*AppliedAntibody, error) {
	ap := &AppliedAntibody{antibody: a, proxy: proxy}
	for _, v := range a.VSEFs {
		h, err := v.Apply(p)
		if err != nil {
			ap.Remove()
			return nil, err
		}
		ap.vsefs = append(ap.vsefs, h)
	}
	if proxy != nil {
		for _, s := range a.Sigs {
			proxy.AddFilter(s)
		}
	}
	return ap, nil
}
