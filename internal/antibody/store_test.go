package antibody

import (
	"fmt"
	"sync"
	"testing"
)

func TestStorePublishDedupAndForProgram(t *testing.T) {
	st := NewStore()
	a1 := &Antibody{ID: "a-attack1-initial", Program: "squid", Stage: StageInitial}
	a2 := &Antibody{ID: "a-attack1-final", Program: "squid", Stage: StageFinal}
	b1 := &Antibody{ID: "b-attack1-final", Program: "cvs", Stage: StageFinal}
	if !st.Publish(a1) || !st.Publish(a2) || !st.Publish(b1) {
		t.Fatal("fresh antibodies were rejected")
	}
	if st.Publish(a1) {
		t.Error("duplicate ID was accepted")
	}
	if st.Len() != 3 {
		t.Fatalf("store holds %d antibodies, want 3", st.Len())
	}
	if got := st.ForProgram("squid"); len(got) != 2 || got[0] != a1 || got[1] != a2 {
		t.Errorf("ForProgram(squid) = %v", got)
	}
	if _, ok := st.Get("b-attack1-final"); !ok {
		t.Error("Get missed a stored antibody")
	}
}

func TestStoreSubscribeReplaysAndNotifies(t *testing.T) {
	st := NewStore()
	st.Publish(&Antibody{ID: "early", Program: "squid"})
	var seen []string
	st.Subscribe(func(a *Antibody) { seen = append(seen, a.ID) })
	st.Publish(&Antibody{ID: "late", Program: "squid"})
	st.Publish(&Antibody{ID: "late", Program: "squid"}) // dup: no second notify
	if len(seen) != 2 || seen[0] != "early" || seen[1] != "late" {
		t.Fatalf("subscriber saw %v, want [early late]", seen)
	}
}

// TestStoreEdgeCases is a table of edge behaviours the federation layer
// depends on: republish dedup (first publication wins, no re-notification),
// replay-on-subscribe ordering, and Since-cursor clamping.
func TestStoreEdgeCases(t *testing.T) {
	mk := func(ids ...string) []*Antibody {
		out := make([]*Antibody, len(ids))
		for i, id := range ids {
			out[i] = &Antibody{ID: id, Program: "squid"}
		}
		return out
	}
	cases := []struct {
		name  string
		run   func(st *Store) []string // returns what a subscriber saw
		want  []string                 // expected notification sequence
		len   int                      // expected final store size
		check func(t *testing.T, st *Store)
	}{
		{
			name: "republish keeps the first antibody and stays silent",
			run: func(st *Store) []string {
				first := &Antibody{ID: "dup", Program: "squid", Stage: StageInitial}
				imposter := &Antibody{ID: "dup", Program: "squid", Stage: StageFinal}
				var seen []string
				st.Subscribe(func(a *Antibody) { seen = append(seen, a.ID) })
				if !st.Publish(first) {
					panic("fresh antibody rejected")
				}
				if st.Publish(imposter) {
					panic("duplicate ID accepted")
				}
				return seen
			},
			want: []string{"dup"},
			len:  1,
			check: func(t *testing.T, st *Store) {
				got, _ := st.Get("dup")
				if got.Stage != StageInitial {
					t.Errorf("republish replaced the stored antibody: stage %s", got.Stage)
				}
			},
		},
		{
			name: "subscribe replays existing antibodies in publication order",
			run: func(st *Store) []string {
				for _, a := range mk("a", "b", "c") {
					st.Publish(a)
				}
				var seen []string
				st.Subscribe(func(a *Antibody) { seen = append(seen, a.ID) })
				st.Publish(mk("d")[0])
				return seen
			},
			want: []string{"a", "b", "c", "d"},
			len:  4,
		},
		{
			name: "since cursor clamps and pages",
			run: func(st *Store) []string {
				for _, a := range mk("a", "b", "c") {
					st.Publish(a)
				}
				var seen []string
				if abs, next := st.Since(-5); len(abs) != 3 || next != 3 {
					seen = append(seen, fmt.Sprintf("negative cursor: %d abs, next %d", len(abs), next))
				}
				if abs, next := st.Since(2); len(abs) != 1 || abs[0].ID != "c" || next != 3 {
					seen = append(seen, "mid cursor wrong")
				}
				if abs, next := st.Since(99); len(abs) != 0 || next != 3 {
					seen = append(seen, "overshoot cursor wrong")
				}
				return seen
			},
			want: nil,
			len:  3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := NewStore()
			seen := tc.run(st)
			if len(seen) != len(tc.want) {
				t.Fatalf("subscriber saw %v, want %v", seen, tc.want)
			}
			for i := range tc.want {
				if seen[i] != tc.want[i] {
					t.Fatalf("subscriber saw %v, want %v", seen, tc.want)
				}
			}
			if st.Len() != tc.len {
				t.Errorf("store holds %d antibodies, want %d", st.Len(), tc.len)
			}
			if tc.check != nil {
				tc.check(t, st)
			}
		})
	}
}

// TestStoreSubscribeDuringPublishStorm registers subscribers while publishes
// are in full flight (run under -race in CI): no matter how registration
// interleaves with publication, every subscriber must see every antibody
// exactly once — replay-on-subscribe and live notification must never both
// deliver the same antibody, and none may fall between the two.
func TestStoreSubscribeDuringPublishStorm(t *testing.T) {
	const publishers, each, subscribers = 4, 100, 6
	st := NewStore()

	type tally struct {
		mu   sync.Mutex
		seen map[string]int
	}
	tallies := make([]*tally, subscribers)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			<-start
			for i := 0; i < each; i++ {
				st.Publish(&Antibody{ID: fmt.Sprintf("p%d-%d", p, i), Program: "squid"})
			}
		}(p)
	}
	for sIdx := 0; sIdx < subscribers; sIdx++ {
		wg.Add(1)
		go func(sIdx int) {
			defer wg.Done()
			<-start
			tl := &tally{seen: make(map[string]int)}
			tallies[sIdx] = tl
			st.Subscribe(func(a *Antibody) {
				tl.mu.Lock()
				tl.seen[a.ID]++
				tl.mu.Unlock()
			})
		}(sIdx)
	}
	close(start)
	wg.Wait()

	total := publishers * each
	if st.Len() != total {
		t.Fatalf("store holds %d antibodies, want %d", st.Len(), total)
	}
	for sIdx, tl := range tallies {
		tl.mu.Lock()
		if len(tl.seen) != total {
			t.Errorf("subscriber %d saw %d distinct antibodies, want %d", sIdx, len(tl.seen), total)
		}
		for id, n := range tl.seen {
			if n != 1 {
				t.Errorf("subscriber %d saw %s %d times, want exactly once", sIdx, id, n)
			}
		}
		tl.mu.Unlock()
	}
}

func TestStoreConcurrentPublishers(t *testing.T) {
	st := NewStore()
	var notified sync.Map
	st.Subscribe(func(a *Antibody) { notified.Store(a.ID, true) })
	var wg sync.WaitGroup
	const publishers, each = 8, 50
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				st.Publish(&Antibody{ID: fmt.Sprintf("p%d-%d", p, i), Program: "squid"})
			}
		}(p)
	}
	wg.Wait()
	if st.Len() != publishers*each {
		t.Fatalf("store holds %d antibodies, want %d", st.Len(), publishers*each)
	}
	count := 0
	notified.Range(func(_, _ any) bool { count++; return true })
	if count != publishers*each {
		t.Fatalf("subscriber saw %d antibodies, want %d", count, publishers*each)
	}
}
