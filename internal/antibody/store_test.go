package antibody

import (
	"fmt"
	"sync"
	"testing"
)

func TestStorePublishDedupAndForProgram(t *testing.T) {
	st := NewStore()
	a1 := &Antibody{ID: "a-attack1-initial", Program: "squid", Stage: StageInitial}
	a2 := &Antibody{ID: "a-attack1-final", Program: "squid", Stage: StageFinal}
	b1 := &Antibody{ID: "b-attack1-final", Program: "cvs", Stage: StageFinal}
	if !st.Publish(a1) || !st.Publish(a2) || !st.Publish(b1) {
		t.Fatal("fresh antibodies were rejected")
	}
	if st.Publish(a1) {
		t.Error("duplicate ID was accepted")
	}
	if st.Len() != 3 {
		t.Fatalf("store holds %d antibodies, want 3", st.Len())
	}
	if got := st.ForProgram("squid"); len(got) != 2 || got[0] != a1 || got[1] != a2 {
		t.Errorf("ForProgram(squid) = %v", got)
	}
	if _, ok := st.Get("b-attack1-final"); !ok {
		t.Error("Get missed a stored antibody")
	}
}

func TestStoreSubscribeReplaysAndNotifies(t *testing.T) {
	st := NewStore()
	st.Publish(&Antibody{ID: "early", Program: "squid"})
	var seen []string
	st.Subscribe(func(a *Antibody) { seen = append(seen, a.ID) })
	st.Publish(&Antibody{ID: "late", Program: "squid"})
	st.Publish(&Antibody{ID: "late", Program: "squid"}) // dup: no second notify
	if len(seen) != 2 || seen[0] != "early" || seen[1] != "late" {
		t.Fatalf("subscriber saw %v, want [early late]", seen)
	}
}

func TestStoreConcurrentPublishers(t *testing.T) {
	st := NewStore()
	var notified sync.Map
	st.Subscribe(func(a *Antibody) { notified.Store(a.ID, true) })
	var wg sync.WaitGroup
	const publishers, each = 8, 50
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				st.Publish(&Antibody{ID: fmt.Sprintf("p%d-%d", p, i), Program: "squid"})
			}
		}(p)
	}
	wg.Wait()
	if st.Len() != publishers*each {
		t.Fatalf("store holds %d antibodies, want %d", st.Len(), publishers*each)
	}
	count := 0
	notified.Range(func(_, _ any) bool { count++; return true })
	if count != publishers*each {
		t.Fatalf("subscriber saw %d antibodies, want %d", count, publishers*each)
	}
}
