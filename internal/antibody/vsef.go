// Package antibody implements Sweeper's two antibody forms — input-signature
// filters and vulnerability-specific execution filters (VSEFs) — plus the
// bundle format in which they are deployed locally and distributed to other
// hosts together with the exploit-triggering input.
package antibody

import (
	"fmt"

	"sweeper/internal/analysis/coredump"
	"sweeper/internal/analysis/membug"
	"sweeper/internal/analysis/taint"
	"sweeper/internal/heap"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// VSEFKind identifies what a VSEF checks.
type VSEFKind string

// VSEF kinds.
const (
	// VSEFReturnGuard keeps a side copy of a specific function's return
	// address and verifies it just before that function returns.
	VSEFReturnGuard VSEFKind = "return-guard"
	// VSEFHeapBounds bounds-checks one specific store instruction against the
	// heap chunk it writes into (optionally only in one calling context).
	VSEFHeapBounds VSEFKind = "heap-bounds"
	// VSEFDoubleFree verifies, at one specific free call site, that the chunk
	// being freed is still allocated.
	VSEFDoubleFree VSEFKind = "double-free-guard"
	// VSEFNullCheck verifies, at one specific load/store, that the pointer is
	// not in the NULL page.
	VSEFNullCheck VSEFKind = "null-check"
	// VSEFFreeGuard verifies heap metadata consistency at one allocation call
	// site (the weak, immediately available guard when only corruption — not
	// the corrupting instruction — is known).
	VSEFFreeGuard VSEFKind = "free-guard"
	// VSEFTaint applies taint propagation and sink checks only at the
	// instructions recorded during analysis.
	VSEFTaint VSEFKind = "taint-guard"
	// VSEFStackStore guards one specific store instruction against writing
	// over the current frame's saved linkage (the refined stack-smash VSEF:
	// it targets the overflow itself rather than the victim's return).
	VSEFStackStore VSEFKind = "stack-store-guard"
)

// VSEF is a vulnerability-specific execution filter. All code locations are
// position independent (instruction indices within the program image), so a
// VSEF generated on one host applies unchanged on hosts with different
// address-space randomisations.
type VSEF struct {
	Kind    VSEFKind `json:"kind"`
	Program string   `json:"program"`
	Name    string   `json:"name"`

	// InstrIdx is the guarded instruction (store, load or call site),
	// depending on Kind.
	InstrIdx int    `json:"instr_idx"`
	InstrSym string `json:"instr_sym,omitempty"`
	// CallerIdx restricts the check to one calling context (-1 = any).
	CallerIdx int `json:"caller_idx"`
	// FuncSym is the protected function for return guards.
	FuncSym string `json:"func_sym,omitempty"`
	// TaintInstrs are the propagation/sink instructions for taint guards.
	TaintInstrs []int  `json:"taint_instrs,omitempty"`
	Note        string `json:"note,omitempty"`
}

// String summarises the VSEF.
func (v *VSEF) String() string {
	switch v.Kind {
	case VSEFReturnGuard:
		return fmt.Sprintf("%s: protect return address of %s", v.Kind, v.FuncSym)
	case VSEFTaint:
		return fmt.Sprintf("%s: %d instrumented instructions", v.Kind, len(v.TaintInstrs))
	default:
		if v.CallerIdx >= 0 {
			return fmt.Sprintf("%s at @%d (%s) when called by @%d", v.Kind, v.InstrIdx, v.InstrSym, v.CallerIdx)
		}
		return fmt.Sprintf("%s at @%d (%s)", v.Kind, v.InstrIdx, v.InstrSym)
	}
}

// InstrumentedInstrs returns how many static instructions the VSEF probes;
// the paper's argument that VSEFs are lightweight rests on this being tiny.
func (v *VSEF) InstrumentedInstrs() int {
	switch v.Kind {
	case VSEFReturnGuard:
		return 2 // entry + return
	case VSEFTaint:
		return len(v.TaintInstrs)
	default:
		return 1
	}
}

// --- constructors from analysis results ---

// FromCoreDump derives the initial VSEF from memory-state analysis. It may
// return nil when the report does not support any guard.
func FromCoreDump(name string, program string, r *coredump.Report) *VSEF {
	v := &VSEF{Program: program, Name: name, CallerIdx: -1}
	switch r.Class {
	case coredump.ClassStackSmash, coredump.ClassControlHijack:
		v.Kind = VSEFReturnGuard
		v.FuncSym = r.FaultSym
		v.Note = "use a side stack for " + r.FaultSym
	case coredump.ClassNullDeref:
		v.Kind = VSEFNullCheck
		v.InstrIdx = r.FaultPC
		v.InstrSym = r.FaultSym
		v.Note = "check for NULL pointer"
	case coredump.ClassDoubleFree:
		v.Kind = VSEFDoubleFree
		v.InstrIdx = r.CallerPC
		v.InstrSym = r.CallerSym
		v.Note = "check for double frees"
	case coredump.ClassHeapOverflow:
		v.Kind = VSEFHeapBounds
		v.InstrIdx = r.FaultPC
		v.InstrSym = r.FaultSym
		v.CallerIdx = r.CallerPC
		v.Note = fmt.Sprintf("heap bounds-check @%d (%s) when called by @%d (%s)", r.FaultPC, r.FaultSym, r.CallerPC, r.CallerSym)
	case coredump.ClassHeapCorruption:
		v.Kind = VSEFFreeGuard
		v.InstrIdx = r.CallerPC
		v.InstrSym = r.CallerSym
		v.Note = "verify heap consistency at this allocation site"
	default:
		return nil
	}
	return v
}

// FromMemBug derives a refined VSEF from a memory-bug detection finding.
func FromMemBug(name string, program string, f *membug.Finding) *VSEF {
	if f == nil {
		return nil
	}
	v := &VSEF{Program: program, Name: name, CallerIdx: -1}
	switch f.Kind {
	case membug.KindStackSmash:
		v.Kind = VSEFStackStore
		v.InstrIdx = f.InstrIdx
		v.InstrSym = f.Sym
		v.FuncSym = f.VictimSym
		v.Note = fmt.Sprintf("@%d (%s) should not overflow stack buffer", f.InstrIdx, f.Sym)
	case membug.KindHeapOverflow, membug.KindDanglingWrite, membug.KindDanglingRead:
		v.Kind = VSEFHeapBounds
		v.InstrIdx = f.InstrIdx
		v.InstrSym = f.Sym
		v.Note = fmt.Sprintf("@%d (%s) should stay within its heap chunk", f.InstrIdx, f.Sym)
	case membug.KindDoubleFree, membug.KindWildFree:
		v.Kind = VSEFDoubleFree
		v.InstrIdx = f.CallerIdx
		v.InstrSym = f.Detail
		v.Note = fmt.Sprintf("@%d should not double-free", f.CallerIdx)
	default:
		return nil
	}
	return v
}

// FromTaint derives a taint-guard VSEF from a taint analysis run: it lists
// the instructions that propagated taint plus the sink.
func FromTaint(name string, program string, t *taint.Tracker) *VSEF {
	if !t.Detected() {
		return nil
	}
	instrs := t.Propagators()
	sink := t.Primary().InstrIdx
	found := false
	for _, i := range instrs {
		if i == sink {
			found = true
			break
		}
	}
	if !found {
		instrs = append(instrs, sink)
	}
	return &VSEF{
		Kind:        VSEFTaint,
		Program:     program,
		Name:        name,
		CallerIdx:   -1,
		InstrIdx:    sink,
		InstrSym:    t.Primary().Sym,
		TaintInstrs: instrs,
		Note:        "taint tracking restricted to the attack's propagation path",
	}
}

// --- applying VSEFs to a running process ---

// Applied is a handle to a VSEF installed on a process; Remove uninstalls it.
type Applied struct {
	name string
	p    *proc.Process
	// extraTools lists full tools (not probes) attached for this VSEF.
	extraTools []string
}

// Remove uninstalls the VSEF's probes and tools.
func (a *Applied) Remove() {
	a.p.Machine.RemoveProbes(a.name)
	for _, t := range a.extraTools {
		a.p.Machine.DetachTool(t)
	}
}

// Apply installs the VSEF on the process as targeted probes (plus, for taint
// guards, a lightweight input hook). The returned handle removes it again.
func (v *VSEF) Apply(p *proc.Process) (*Applied, error) {
	m := p.Machine
	applied := &Applied{name: v.Name, p: p}
	switch v.Kind {
	case VSEFReturnGuard:
		entry, rets, err := functionSites(m, v.FuncSym)
		if err != nil {
			return nil, err
		}
		probe := &returnGuardProbe{name: v.Name, vsef: v}
		if err := m.AddProbe(entry, probe); err != nil {
			return nil, err
		}
		for _, r := range rets {
			if err := m.AddProbe(r, probe); err != nil {
				return nil, err
			}
		}
	case VSEFHeapBounds:
		probe := &heapBoundsProbe{name: v.Name, vsef: v, alloc: p.Alloc}
		if err := m.AddProbe(v.InstrIdx, probe); err != nil {
			return nil, err
		}
	case VSEFStackStore:
		probe := &stackStoreProbe{name: v.Name, vsef: v}
		if err := m.AddProbe(v.InstrIdx, probe); err != nil {
			return nil, err
		}
	case VSEFDoubleFree:
		probe := &doubleFreeProbe{name: v.Name, vsef: v, alloc: p.Alloc}
		if err := m.AddProbe(v.InstrIdx, probe); err != nil {
			return nil, err
		}
	case VSEFFreeGuard:
		probe := &freeGuardProbe{name: v.Name, vsef: v, alloc: p.Alloc}
		if err := m.AddProbe(v.InstrIdx, probe); err != nil {
			return nil, err
		}
	case VSEFNullCheck:
		probe := &nullCheckProbe{name: v.Name, vsef: v}
		if err := m.AddProbe(v.InstrIdx, probe); err != nil {
			return nil, err
		}
	case VSEFTaint:
		tracker := taint.NewRestricted(v.Name+".tracker", v.TaintInstrs, true)
		probe := &taintProbe{name: v.Name, tracker: tracker}
		for _, idx := range v.TaintInstrs {
			if err := m.AddProbe(idx, probe); err != nil {
				return nil, err
			}
		}
		src := &taintSource{name: v.Name + ".source", tracker: tracker}
		m.AttachTool(src)
		applied.extraTools = append(applied.extraTools, src.Name())
	default:
		return nil, fmt.Errorf("antibody: unknown VSEF kind %q", v.Kind)
	}
	return applied, nil
}

// functionSites finds the entry index and all return instructions of the
// named function in the loaded code.
func functionSites(m *vm.Machine, funcSym string) (entry int, rets []int, err error) {
	prog := m.Program()
	entry, ok := prog.Symbols[funcSym]
	if !ok {
		return 0, nil, fmt.Errorf("antibody: function %q not found", funcSym)
	}
	for idx, in := range m.Code() {
		if in.Sym == funcSym && in.Op == vm.OpRet {
			rets = append(rets, idx)
		}
	}
	if len(rets) == 0 {
		return 0, nil, fmt.Errorf("antibody: function %q has no return instruction", funcSym)
	}
	return entry, rets, nil
}

// --- probe implementations ---

type savedRet struct {
	slot uint32
	val  uint32
}

type returnGuardProbe struct {
	name  string
	vsef  *VSEF
	saved []savedRet
}

func (p *returnGuardProbe) Name() string { return p.name }

// OnRollback drops return addresses saved by the abandoned execution; the
// replay re-enters every guarded function from checkpoint state and saves
// fresh copies. Stale entries could otherwise pair with a replayed return at
// the same stack slot and mis-fire.
func (p *returnGuardProbe) OnRollback(m *vm.Machine) { p.saved = p.saved[:0] }

func (p *returnGuardProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {
	if in.Op != vm.OpRet {
		// Function entry: the caller's return address sits at [SP].
		slot := m.Regs[vm.SP]
		if val, ok := m.Mem.ReadWord(slot); ok {
			p.saved = append(p.saved, savedRet{slot: slot, val: val})
		}
		return
	}
	// Function return: SP points at the return-address slot again.
	slot := m.Regs[vm.SP]
	for len(p.saved) > 0 && p.saved[len(p.saved)-1].slot < slot {
		p.saved = p.saved[:len(p.saved)-1]
	}
	if len(p.saved) == 0 || p.saved[len(p.saved)-1].slot != slot {
		return
	}
	want := p.saved[len(p.saved)-1].val
	p.saved = p.saved[:len(p.saved)-1]
	got, ok := m.Mem.ReadWord(slot)
	if !ok || got != want {
		m.RaiseViolation(&vm.Violation{
			Kind:   vm.ViolationReturnAddress,
			Tool:   p.name,
			Addr:   slot,
			Detail: fmt.Sprintf("return address of %s was overwritten", p.vsef.FuncSym),
		})
	}
}

type heapBoundsProbe struct {
	name  string
	vsef  *VSEF
	alloc *heap.Allocator
}

func (p *heapBoundsProbe) Name() string { return p.name }

func (p *heapBoundsProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {
	if !in.Op.IsStore() && !in.Op.IsLoad() {
		return
	}
	if p.vsef.CallerIdx >= 0 {
		// Only check in the recorded calling context.
		if ret, ok := m.Mem.ReadWord(m.Regs[vm.SP]); ok {
			if callIdx, ok := m.IndexOfAddr(ret); !ok || callIdx-1 != p.vsef.CallerIdx {
				return
			}
		}
	}
	addr, size, _, ok := m.EffectiveAddr(in)
	if !ok {
		return
	}
	if !p.alloc.InHeapRegion(addr) {
		return
	}
	c, found := p.alloc.ChunkContaining(addr)
	if found && c.Allocated && addr+uint32(size) <= c.End() {
		return
	}
	m.RaiseViolation(&vm.Violation{
		Kind:   vm.ViolationBoundsCheck,
		Tool:   p.name,
		Addr:   addr,
		Detail: fmt.Sprintf("store at @%d (%s) outside heap chunk bounds", idx, p.vsef.InstrSym),
	})
}

type stackStoreProbe struct {
	name string
	vsef *VSEF
}

func (p *stackStoreProbe) Name() string { return p.name }

func (p *stackStoreProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {
	if !in.Op.IsStore() {
		return
	}
	addr, size, _, ok := m.EffectiveAddr(in)
	if !ok {
		return
	}
	layout := m.Layout()
	if addr < layout.StackBase || addr >= layout.StackTop() {
		return
	}
	// The store must stay strictly below the current frame's saved base
	// pointer; reaching BP or above means it is about to clobber the saved
	// frame linkage / return address.
	if addr+uint32(size) > m.Regs[vm.BP] {
		m.RaiseViolation(&vm.Violation{
			Kind:   vm.ViolationStackSmash,
			Tool:   p.name,
			Addr:   addr,
			Detail: fmt.Sprintf("store at @%d (%s) reaches saved frame of %s", idx, p.vsef.InstrSym, p.vsef.FuncSym),
		})
	}
}

type doubleFreeProbe struct {
	name  string
	vsef  *VSEF
	alloc *heap.Allocator
}

func (p *doubleFreeProbe) Name() string { return p.name }

func (p *doubleFreeProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {
	ptr := m.Regs[vm.R1]
	if ptr == 0 || !p.alloc.InHeap(ptr) {
		return
	}
	if c, ok := p.alloc.ChunkContaining(ptr); ok && c.Addr == ptr && !c.Allocated {
		m.RaiseViolation(&vm.Violation{
			Kind:   vm.ViolationDoubleFree,
			Tool:   p.name,
			Addr:   ptr,
			Detail: fmt.Sprintf("free call at @%d frees an already-freed chunk", idx),
		})
	}
}

type freeGuardProbe struct {
	name  string
	vsef  *VSEF
	alloc *heap.Allocator
}

func (p *freeGuardProbe) Name() string { return p.name }

func (p *freeGuardProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {
	if ok, detail, chunk := p.alloc.CheckConsistency(); !ok {
		m.RaiseViolation(&vm.Violation{
			Kind:   vm.ViolationHeapOverflow,
			Tool:   p.name,
			Addr:   chunk.Addr,
			Detail: "heap metadata inconsistent before allocation call: " + detail,
		})
	}
}

type nullCheckProbe struct {
	name string
	vsef *VSEF
}

func (p *nullCheckProbe) Name() string { return p.name }

func (p *nullCheckProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {
	addr, _, _, ok := m.EffectiveAddr(in)
	if !ok {
		return
	}
	if addr < vm.PageSize {
		m.RaiseViolation(&vm.Violation{
			Kind:   vm.ViolationNullDeref,
			Tool:   p.name,
			Addr:   addr,
			Detail: fmt.Sprintf("NULL pointer dereference at @%d (%s)", idx, p.vsef.InstrSym),
		})
	}
}

type taintProbe struct {
	name    string
	tracker *taint.Tracker
}

func (p *taintProbe) Name() string { return p.name }

func (p *taintProbe) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {
	p.tracker.Propagate(m, idx, in)
}

// OnRollback clears the tracker's shadow taint: labels introduced by the
// abandoned execution (often the excised attack request itself) must not
// survive into the replay.
func (p *taintProbe) OnRollback(m *vm.Machine) { p.tracker.ResetShadow() }

// taintSource feeds request bytes into a restricted tracker; it implements
// only the input hook, so it adds no per-instruction cost.
type taintSource struct {
	name    string
	tracker *taint.Tracker
}

func (s *taintSource) Name() string { return s.name }

func (s *taintSource) OnInput(m *vm.Machine, addr uint32, data []byte, requestID int) {
	s.tracker.OnInput(m, addr, data, requestID)
}
