package antibody_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"sweeper/internal/antibody"
	"sweeper/internal/apps"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// --- signatures ---

func TestExactSignature(t *testing.T) {
	payload := []byte("Directory \n")
	sig := antibody.ExactSignature("cvs-sig", payload)
	if !sig.Match(payload) {
		t.Error("exact signature must match its own payload")
	}
	if sig.Match([]byte("Directory x\n")) || sig.Match(append(payload, 'x')) {
		t.Error("exact signature must not match different payloads")
	}
	if sig.Name() != "cvs-sig" {
		t.Error("name lost")
	}
	// The signature owns its copy of the payload.
	payload[0] = 'X'
	if !sig.Match([]byte("Directory \n")) {
		t.Error("signature payload was aliased to the caller's buffer")
	}
}

func TestTokenSignatureFromMultipleSamples(t *testing.T) {
	samples := [][]byte{
		[]byte("GET /aaaaAAAA\x01\x02\x03 HTTP/1.0"),
		[]byte("GET /bbbbAAAA\x01\x02\x03zz HTTP/1.0"),
		[]byte("GET /ccAAAA\x01\x02\x03qqqq HTTP/1.0"),
	}
	sig := antibody.TokenSignature("poly", samples, 4)
	if len(sig.Tokens) == 0 {
		t.Fatal("no tokens extracted")
	}
	for _, s := range samples {
		if !sig.Match(s) {
			t.Errorf("signature does not match its own sample %q", s)
		}
	}
	// A fourth variant sharing the invariant parts also matches...
	if !sig.Match([]byte("GET /ddddddAAAA\x01\x02\x03!! HTTP/1.0")) {
		t.Error("signature should match a new variant with the invariant content")
	}
	// ...but ordinary traffic does not.
	if sig.Match([]byte("GET /index.html HTTP/1.0")) {
		t.Error("signature matches benign traffic")
	}
	if sig.String() == "" {
		t.Error("String() empty")
	}
}

func TestTokenSignatureDegenerateCases(t *testing.T) {
	if sig := antibody.TokenSignature("empty", nil, 4); sig.Match([]byte("anything")) {
		t.Error("empty signature must not match")
	}
	sig := antibody.TokenSignature("one", [][]byte{[]byte("ABCDEFGH")}, 4)
	if !sig.Match([]byte("xxABCDEFGHyy")) {
		t.Error("single-sample token signature should match supersets")
	}
}

// TestQuickTokenSignatureAlwaysMatchesSamples: for any pair of samples with a
// common middle, the generated signature matches both samples.
func TestQuickTokenSignatureAlwaysMatchesSamples(t *testing.T) {
	prop := func(prefixA, prefixB, common, suffixA, suffixB []byte) bool {
		if len(common) < 8 {
			return true
		}
		a := append(append(append([]byte{}, prefixA...), common...), suffixA...)
		b := append(append(append([]byte{}, prefixB...), common...), suffixB...)
		sig := antibody.TokenSignature("q", [][]byte{a, b}, 4)
		if len(sig.Tokens) == 0 {
			return true // nothing in common long enough — acceptable
		}
		return sig.Match(a) && sig.Match(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- antibody bundles ---

func TestAntibodyMarshalRoundTrip(t *testing.T) {
	a := &antibody.Antibody{
		ID:      "squid-attack1-final",
		Program: "squid",
		Stage:   antibody.StageFinal,
		VSEFs: []*antibody.VSEF{{
			Kind: antibody.VSEFHeapBounds, Program: "squid", Name: "v1",
			InstrIdx: 197, InstrSym: "strcat", CallerIdx: 66,
		}},
		Sigs:         []*antibody.Signature{antibody.ExactSignature("s", []byte("ftp://evil"))},
		ExploitInput: []byte("ftp://evil"),
		CreatedAtMs:  1234,
		Notes:        []string{"heap inconsistent"},
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := antibody.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != a.ID || back.Stage != a.Stage || len(back.VSEFs) != 1 || len(back.Sigs) != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.VSEFs[0].InstrIdx != 197 || back.VSEFs[0].CallerIdx != 66 {
		t.Error("VSEF fields lost")
	}
	if !bytes.Equal(back.ExploitInput, a.ExploitInput) {
		t.Error("exploit input lost")
	}
	if !back.Sigs[0].Match([]byte("ftp://evil")) {
		t.Error("signature no longer matches after the round trip")
	}
	if _, err := antibody.Unmarshal([]byte("{broken")); err == nil {
		t.Error("corrupt antibody should fail to decode")
	}
	if a.String() == "" {
		t.Error("String() empty")
	}
}

// --- VSEF application on live processes ---

func newProcess(t *testing.T, app string, payloads ...[]byte) (*proc.Process, *netproxy.Proxy, *apps.Spec) {
	t.Helper()
	spec, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	proxy := netproxy.New()
	for _, pl := range payloads {
		proxy.Submit(pl, "client", bytes.Contains(pl, []byte("ftp://\\")))
	}
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	return p, proxy, spec
}

func TestHeapBoundsVSEFStopsSquidExploit(t *testing.T) {
	p, _, spec := newProcess(t, "squid",
		[]byte("ftp://anonymous@ftp.example.org/file.gz"),
		exploit.SquidExploit(),
	)
	v := &antibody.VSEF{
		Kind:      antibody.VSEFHeapBounds,
		Program:   "squid",
		Name:      "squid-heap-vsef",
		InstrIdx:  spec.VulnIndex(),
		InstrSym:  "strcat",
		CallerIdx: -1,
	}
	applied, err := v.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	stop := p.Run(0)
	if stop.Reason != vm.StopViolation || stop.Violation.Kind != vm.ViolationBoundsCheck {
		t.Fatalf("stop = %v %v, want bounds-check violation", stop.Reason, stop.Violation)
	}
	// The benign request was served before the violation.
	if p.ServedRequests() != 1 {
		t.Errorf("served = %d", p.ServedRequests())
	}
	applied.Remove()
	if p.Machine.ProbeCount() != 0 {
		t.Error("Remove left probes installed")
	}
}

func TestReturnGuardVSEFStopsApache1HijackAtDefaultLayout(t *testing.T) {
	spec, _ := apps.ByName("apache1")
	payload, err := exploit.Apache1ExploitDefault(spec.Image)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ := newProcess(t, "apache1", exploit.Apache1Benign(0), payload)
	v := &antibody.VSEF{
		Kind:      antibody.VSEFReturnGuard,
		Program:   "apache1",
		Name:      "apache1-ret-guard",
		FuncSym:   "try_alias_list",
		CallerIdx: -1,
	}
	if _, err := v.Apply(p); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(0)
	if stop.Reason != vm.StopViolation || stop.Violation.Kind != vm.ViolationReturnAddress {
		t.Fatalf("stop = %v %v", stop.Reason, stop.Violation)
	}
	// Without the guard this exact run would have been hijacked (halt); the
	// violation means the hijack never executed.
	for _, out := range p.Outputs() {
		if bytes.Contains(out.Data, []byte("OWNED")) {
			t.Fatal("backdoor ran despite the return guard")
		}
	}
}

func TestDoubleFreeVSEFStopsCVSExploit(t *testing.T) {
	spec, _ := apps.ByName("cvs")
	p, _, _ := newProcess(t, "cvs", []byte("Directory src/lib\n"), exploit.CVSExploit())
	v := &antibody.VSEF{
		Kind:      antibody.VSEFDoubleFree,
		Program:   "cvs",
		Name:      "cvs-dfree-guard",
		InstrIdx:  spec.Image.Symbols["dirswitch.second_free"],
		InstrSym:  "dirswitch",
		CallerIdx: -1,
	}
	if _, err := v.Apply(p); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(0)
	if stop.Reason != vm.StopViolation || stop.Violation.Kind != vm.ViolationDoubleFree {
		t.Fatalf("stop = %v %v", stop.Reason, stop.Violation)
	}
}

func TestNullCheckVSEFStopsApache2Exploit(t *testing.T) {
	spec, _ := apps.ByName("apache2")
	p, _, _ := newProcess(t, "apache2", exploit.Apache2Benign(1), exploit.Apache2Exploit())
	v := &antibody.VSEF{
		Kind:      antibody.VSEFNullCheck,
		Program:   "apache2",
		Name:      "apache2-null-guard",
		InstrIdx:  spec.Image.Symbols["is_ip.load"],
		InstrSym:  "is_ip",
		CallerIdx: -1,
	}
	if _, err := v.Apply(p); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(0)
	if stop.Reason != vm.StopViolation || stop.Violation.Kind != vm.ViolationNullDeref {
		t.Fatalf("stop = %v %v", stop.Reason, stop.Violation)
	}
}

func TestVSEFsDoNotDisturbBenignTraffic(t *testing.T) {
	spec, _ := apps.ByName("squid")
	var benign [][]byte
	for i := 0; i < 10; i++ {
		benign = append(benign, exploit.SquidBenign(i))
	}
	p, _, _ := newProcess(t, "squid", benign...)
	v := &antibody.VSEF{
		Kind: antibody.VSEFHeapBounds, Program: "squid", Name: "g",
		InstrIdx: spec.VulnIndex(), InstrSym: "strcat", CallerIdx: -1,
	}
	if _, err := v.Apply(p); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(0)
	if stop.Reason != vm.StopWaitInput {
		t.Fatalf("benign traffic under the VSEF stopped with %v (%v)", stop.Reason, stop.Violation)
	}
	if p.ServedRequests() != len(benign) {
		t.Errorf("served %d of %d", p.ServedRequests(), len(benign))
	}
	if v.InstrumentedInstrs() != 1 {
		t.Errorf("heap-bounds VSEF instruments %d instructions, want 1", v.InstrumentedInstrs())
	}
}

func TestApplyUnknownVSEFKindFails(t *testing.T) {
	p, _, _ := newProcess(t, "cvs")
	v := &antibody.VSEF{Kind: antibody.VSEFKind("bogus"), Name: "x", CallerIdx: -1}
	if _, err := v.Apply(p); err == nil {
		t.Error("unknown kind should fail to apply")
	}
	rg := &antibody.VSEF{Kind: antibody.VSEFReturnGuard, Name: "y", FuncSym: "no_such_fn", CallerIdx: -1}
	if _, err := rg.Apply(p); err == nil {
		t.Error("return guard for a missing function should fail to apply")
	}
}

func TestAntibodyApplyInstallsFiltersAndProbes(t *testing.T) {
	spec, _ := apps.ByName("cvs")
	p, proxy, _ := newProcess(t, "cvs")
	a := &antibody.Antibody{
		ID: "cvs-final", Program: "cvs", Stage: antibody.StageFinal,
		VSEFs: []*antibody.VSEF{{
			Kind: antibody.VSEFDoubleFree, Program: "cvs", Name: "g",
			InstrIdx: spec.Image.Symbols["dirswitch.second_free"], CallerIdx: -1,
		}},
		Sigs: []*antibody.Signature{antibody.ExactSignature("cvs-sig", exploit.CVSExploit())},
	}
	applied, err := a.Apply(p, proxy)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine.ProbeCount() == 0 {
		t.Error("no probes installed")
	}
	if len(proxy.Filters()) != 1 {
		t.Error("no filter installed")
	}
	if _, ok := proxy.Submit(exploit.CVSExploit(), "worm", true); ok {
		t.Error("filter did not drop the exploit")
	}
	applied.Remove()
	if p.Machine.ProbeCount() != 0 || len(proxy.Filters()) != 0 {
		t.Error("Remove did not clean up")
	}
	if len(a.Filters()) != 1 {
		t.Error("Filters() accessor wrong")
	}
}

func TestVSEFStringAndInstrumentedInstrs(t *testing.T) {
	kinds := []*antibody.VSEF{
		{Kind: antibody.VSEFReturnGuard, FuncSym: "f", CallerIdx: -1},
		{Kind: antibody.VSEFHeapBounds, InstrIdx: 5, InstrSym: "strcat", CallerIdx: 3},
		{Kind: antibody.VSEFTaint, TaintInstrs: []int{1, 2, 3}, CallerIdx: -1},
		{Kind: antibody.VSEFStackStore, InstrIdx: 9, InstrSym: "lmatcher", CallerIdx: -1},
	}
	if kinds[0].InstrumentedInstrs() != 2 || kinds[2].InstrumentedInstrs() != 3 || kinds[1].InstrumentedInstrs() != 1 {
		t.Error("InstrumentedInstrs wrong")
	}
	for _, v := range kinds {
		if v.String() == "" {
			t.Errorf("VSEF %v has empty String()", v.Kind)
		}
	}
}
