package antibody

import (
	"bytes"
	"fmt"
)

// Signature is an input-signature filter: either an exact payload match or an
// ordered-token match (all tokens must appear, in order), the latter covering
// simple polymorphic variants in the style of Polygraph.
type Signature struct {
	SigName string   `json:"name"`
	Exact   []byte   `json:"exact,omitempty"`
	Tokens  [][]byte `json:"tokens,omitempty"`
}

// Name implements the netproxy.Filter interface.
func (s *Signature) Name() string { return s.SigName }

// Match implements the netproxy.Filter interface.
func (s *Signature) Match(payload []byte) bool {
	if len(s.Exact) > 0 {
		return bytes.Equal(payload, s.Exact)
	}
	if len(s.Tokens) == 0 {
		return false
	}
	rest := payload
	for _, tok := range s.Tokens {
		i := bytes.Index(rest, tok)
		if i < 0 {
			return false
		}
		rest = rest[i+len(tok):]
	}
	return true
}

// String summarises the signature.
func (s *Signature) String() string {
	if len(s.Exact) > 0 {
		return fmt.Sprintf("%s: exact match, %d bytes", s.SigName, len(s.Exact))
	}
	return fmt.Sprintf("%s: %d ordered tokens", s.SigName, len(s.Tokens))
}

// ExactSignature builds an exact-match signature from the exploit payload.
// Exact signatures have no false positives and are impervious to malicious
// training, which is why Sweeper starts with them (the VSEF provides the
// safety net against variants).
func ExactSignature(name string, payload []byte) *Signature {
	return &Signature{SigName: name, Exact: append([]byte(nil), payload...)}
}

// TokenSignature builds an ordered-token signature from one or more exploit
// samples of the same vulnerability: the tokens are the maximal substrings
// (at least minToken bytes long) common to all samples, in order. With a
// single sample it degrades to one token covering the whole payload.
func TokenSignature(name string, samples [][]byte, minToken int) *Signature {
	if minToken <= 0 {
		minToken = 4
	}
	if len(samples) == 0 {
		return &Signature{SigName: name}
	}
	tokens := commonTokens(samples, minToken)
	return &Signature{SigName: name, Tokens: tokens}
}

// commonTokens finds ordered common substrings by recursively taking the
// longest common substring of all samples and splitting around it.
func commonTokens(samples [][]byte, minToken int) [][]byte {
	for _, s := range samples {
		if len(s) < minToken {
			return nil
		}
	}
	tok := longestCommonSubstring(samples)
	if len(tok) < minToken {
		return nil
	}
	var lefts, rights [][]byte
	for _, s := range samples {
		i := bytes.Index(s, tok)
		lefts = append(lefts, s[:i])
		rights = append(rights, s[i+len(tok):])
	}
	var out [][]byte
	out = append(out, commonTokens(lefts, minToken)...)
	out = append(out, tok)
	out = append(out, commonTokens(rights, minToken)...)
	return out
}

// longestCommonSubstring returns the longest substring of samples[0] present
// in every sample (empty when there is none).
func longestCommonSubstring(samples [][]byte) []byte {
	if len(samples) == 0 {
		return nil
	}
	if len(samples) == 1 {
		return samples[0]
	}
	ref := samples[0]
	// Binary search on the length; check each candidate substring of that
	// length against all other samples.
	lo, hi := 0, len(ref)
	var best []byte
	for lo <= hi {
		mid := (lo + hi) / 2
		if mid == 0 {
			lo = 1
			continue
		}
		found := findCommonOfLen(ref, samples[1:], mid)
		if found != nil {
			best = found
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

func findCommonOfLen(ref []byte, others [][]byte, n int) []byte {
	if n > len(ref) {
		return nil
	}
outer:
	for i := 0; i+n <= len(ref); i++ {
		cand := ref[i : i+n]
		for _, o := range others {
			if !bytes.Contains(o, cand) {
				continue outer
			}
		}
		return cand
	}
	return nil
}
