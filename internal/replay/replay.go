// Package replay implements Flashback-style event logging for deterministic
// re-execution. During normal execution the process runtime logs every
// delivered request and every nondeterministic syscall result (time, random
// numbers) together with the outputs it produced. After a rollback the same
// log is consumed instead of the live sources, so re-execution is
// deterministic; outputs produced during replay are compared against the log
// to handle the output-commit problem.
package replay

import "fmt"

// EventKind identifies a logged nondeterministic event.
type EventKind uint8

// Event kinds.
const (
	EventRequest EventKind = iota // delivery of a network request
	EventTime                     // gettimeofday-style syscall result
	EventRand                     // random number syscall result
	EventOutput                   // bytes written by the guest (send syscall)
)

var eventNames = [...]string{"request", "time", "rand", "output"}

// String returns the event kind name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event?%d", uint8(k))
}

// Event is one logged nondeterministic event.
type Event struct {
	Kind      EventKind
	Value     uint32 // time/rand result
	RequestID int    // for EventRequest and EventOutput: the request being served
	Data      []byte // request payload or output bytes
}

// Log is an append-only event log with a replay cursor.
type Log struct {
	events []Event
	cursor int // next event to consume during replay
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append records an event during live execution.
func (l *Log) Append(e Event) { l.events = append(l.events, e) }

// Len returns the number of logged events.
func (l *Log) Len() int { return len(l.events) }

// Cursor returns the current replay cursor.
func (l *Log) Cursor() int { return l.cursor }

// SetCursor positions the replay cursor (used by rollback, which rewinds the
// cursor to the value captured at checkpoint time).
func (l *Log) SetCursor(c int) {
	if c < 0 {
		c = 0
	}
	if c > len(l.events) {
		c = len(l.events)
	}
	l.cursor = c
}

// CloneForReplay returns an independent view of the log for a replay-only
// consumer, with its own cursor positioned at the given index. The clone
// shares the already-logged events read-only with the original (the capacity
// is clamped, so an append to either side copies rather than overwriting the
// shared tail); several clones may therefore replay concurrently from their
// own goroutines while the original keeps appending live events.
func (l *Log) CloneForReplay(cursor int) *Log {
	nl := &Log{events: l.events[:len(l.events):len(l.events)]}
	nl.SetCursor(cursor)
	return nl
}

// TruncateAt discards every event at or after index n. Recovery uses it after
// the replayed execution diverges permanently from the logged one (the
// remaining log entries no longer describe the new execution).
func (l *Log) TruncateAt(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(l.events) {
		return
	}
	l.events = l.events[:n]
	if l.cursor > n {
		l.cursor = n
	}
}

// Next consumes and returns the next event of the given kind during replay,
// skipping events of other kinds. It returns ok=false when the log is
// exhausted (the replayed execution has caught up with live execution).
func (l *Log) Next(kind EventKind) (Event, bool) {
	for l.cursor < len(l.events) {
		e := l.events[l.cursor]
		l.cursor++
		if e.Kind == kind {
			return e, true
		}
	}
	return Event{}, false
}

// Peek returns the next event of the given kind without consuming anything.
func (l *Log) Peek(kind EventKind) (Event, bool) {
	for i := l.cursor; i < len(l.events); i++ {
		if l.events[i].Kind == kind {
			return l.events[i], true
		}
	}
	return Event{}, false
}

// PeekRequest returns the next request event that the drop predicate does not
// exclude, without consuming anything — the cursor does not move even past the
// dropped requests scanned over. Recovery uses it to suspend a replay exactly
// at the boundary before a chosen request.
func (l *Log) PeekRequest(drop func(id int) bool) (Event, bool) {
	for i := l.cursor; i < len(l.events); i++ {
		e := l.events[i]
		if e.Kind != EventRequest {
			continue
		}
		if drop != nil && drop(e.RequestID) {
			continue
		}
		return e, true
	}
	return Event{}, false
}

// Events returns a copy of all logged events (for inspection and tests).
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// EventsSince returns a copy of the events logged at or after index n.
func (l *Log) EventsSince(n int) []Event {
	if n < 0 {
		n = 0
	}
	if n > len(l.events) {
		n = len(l.events)
	}
	out := make([]Event, len(l.events)-n)
	copy(out, l.events[n:])
	return out
}

// RequestsSince returns the IDs of requests delivered at or after event index n.
func (l *Log) RequestsSince(n int) []int {
	var ids []int
	for _, e := range l.EventsSince(n) {
		if e.Kind == EventRequest {
			ids = append(ids, e.RequestID)
		}
	}
	return ids
}

// OutputsFor returns the logged output bytes produced while serving the given
// request, concatenated in order. The output-commit check compares replayed
// outputs against these.
func (l *Log) OutputsFor(requestID int) []byte {
	var out []byte
	for _, e := range l.events {
		if e.Kind == EventOutput && e.RequestID == requestID {
			out = append(out, e.Data...)
		}
	}
	return out
}
