package replay

import (
	"bytes"
	"testing"
)

func sampleLog() *Log {
	l := NewLog()
	l.Append(Event{Kind: EventRequest, RequestID: 1, Data: []byte("req1")})
	l.Append(Event{Kind: EventTime, Value: 100})
	l.Append(Event{Kind: EventOutput, RequestID: 1, Data: []byte("out1")})
	l.Append(Event{Kind: EventRequest, RequestID: 2, Data: []byte("req2")})
	l.Append(Event{Kind: EventRand, Value: 42})
	l.Append(Event{Kind: EventOutput, RequestID: 2, Data: []byte("out2a")})
	l.Append(Event{Kind: EventOutput, RequestID: 2, Data: []byte("out2b")})
	return l
}

func TestAppendAndLen(t *testing.T) {
	l := sampleLog()
	if l.Len() != 7 {
		t.Errorf("len = %d", l.Len())
	}
	if l.Cursor() != 0 {
		t.Errorf("cursor = %d", l.Cursor())
	}
}

func TestNextSkipsOtherKinds(t *testing.T) {
	l := sampleLog()
	e, ok := l.Next(EventRequest)
	if !ok || e.RequestID != 1 {
		t.Fatalf("first request event: %+v", e)
	}
	e, ok = l.Next(EventRequest)
	if !ok || e.RequestID != 2 {
		t.Fatalf("second request event: %+v", e)
	}
	if _, ok := l.Next(EventRequest); ok {
		t.Error("log should be exhausted of request events")
	}
}

func TestNextConsumesInterleaved(t *testing.T) {
	l := sampleLog()
	if e, ok := l.Next(EventTime); !ok || e.Value != 100 {
		t.Errorf("time event %+v ok=%v", e, ok)
	}
	// The cursor has moved past the first request; only request 2 remains.
	if e, ok := l.Next(EventRequest); !ok || e.RequestID != 2 {
		t.Errorf("request after time: %+v", e)
	}
	if e, ok := l.Next(EventRand); !ok || e.Value != 42 {
		t.Errorf("rand event %+v", e)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	l := sampleLog()
	if e, ok := l.Peek(EventRand); !ok || e.Value != 42 {
		t.Errorf("peek = %+v", e)
	}
	if l.Cursor() != 0 {
		t.Error("peek must not move the cursor")
	}
}

func TestSetCursorClamps(t *testing.T) {
	l := sampleLog()
	l.SetCursor(-5)
	if l.Cursor() != 0 {
		t.Error("negative cursor should clamp to 0")
	}
	l.SetCursor(100)
	if l.Cursor() != l.Len() {
		t.Error("oversized cursor should clamp to length")
	}
	l.SetCursor(3)
	if e, ok := l.Next(EventRequest); !ok || e.RequestID != 2 {
		t.Errorf("after SetCursor(3): %+v", e)
	}
}

func TestEventsSinceAndRequestsSince(t *testing.T) {
	l := sampleLog()
	if got := l.RequestsSince(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("RequestsSince(0) = %v", got)
	}
	if got := l.RequestsSince(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("RequestsSince(1) = %v", got)
	}
	if got := l.RequestsSince(100); len(got) != 0 {
		t.Errorf("RequestsSince(100) = %v", got)
	}
	if got := l.EventsSince(-3); len(got) != l.Len() {
		t.Error("EventsSince with negative index should return everything")
	}
}

func TestOutputsFor(t *testing.T) {
	l := sampleLog()
	if got := l.OutputsFor(2); !bytes.Equal(got, []byte("out2aout2b")) {
		t.Errorf("OutputsFor(2) = %q", got)
	}
	if got := l.OutputsFor(9); got != nil {
		t.Errorf("OutputsFor(9) = %q", got)
	}
}

func TestTruncateAt(t *testing.T) {
	l := sampleLog()
	l.SetCursor(5)
	l.TruncateAt(3)
	if l.Len() != 3 {
		t.Errorf("len after truncate = %d", l.Len())
	}
	if l.Cursor() != 3 {
		t.Errorf("cursor after truncate = %d", l.Cursor())
	}
	l.TruncateAt(100) // no-op
	if l.Len() != 3 {
		t.Error("truncate beyond length should be a no-op")
	}
	l.TruncateAt(-1)
	if l.Len() != 0 {
		t.Error("negative truncate clears the log")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	l := sampleLog()
	evs := l.Events()
	evs[0].RequestID = 999
	if l.Events()[0].RequestID == 999 {
		t.Error("Events must return a copy")
	}
}

func TestEventKindString(t *testing.T) {
	for k := EventRequest; k <= EventOutput; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}
