package experiments

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"sweeper/internal/antibody"
	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
	"sweeper/internal/federate"
	"sweeper/internal/metrics"
)

// FederatedEpidemicConfig sizes a live epidemic run against real federated
// daemons: the Figure 6 community-defence flow measured on the actual system
// instead of the SI model. α·N producer daemons are attacked and generate
// antibodies; the consumer daemons receive them over real loopback HTTP,
// re-verify each by exploit replay, and adopt — after which the worm finds
// every daemon inoculated.
type FederatedEpidemicConfig struct {
	// App names the protected application (default squid).
	App string
	// Daemons is the community size N (default 3, the minimum interesting).
	Daemons int
	// Producers is α·N: how many daemons are attacked directly (default 1).
	Producers int
	// GuestsPerDaemon is the fleet size inside each daemon (default 1).
	GuestsPerDaemon int
	// Benign is the benign-request count per guest before the attack.
	Benign int
	// PollInterval is each node's federation poll cadence (default 10ms).
	PollInterval time.Duration
	// Timeout bounds the wait for store convergence (default 30s).
	Timeout time.Duration
	// SkipCorrupted disables the rogue-publisher phase (a corrupted antibody
	// pushed into the community, which every verifying guest must reject).
	SkipCorrupted bool
}

func (c *FederatedEpidemicConfig) defaults() error {
	if c.App == "" {
		c.App = "squid"
	}
	if c.Daemons == 0 {
		c.Daemons = 3
	}
	if c.Producers == 0 {
		c.Producers = 1
	}
	if c.GuestsPerDaemon == 0 {
		c.GuestsPerDaemon = 1
	}
	if c.Benign == 0 {
		c.Benign = 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Daemons < 3 {
		return fmt.Errorf("experiments: federated epidemic needs at least 3 daemons, got %d", c.Daemons)
	}
	if c.Producers >= c.Daemons {
		return fmt.Errorf("experiments: need at least one consumer daemon (%d producers of %d daemons)", c.Producers, c.Daemons)
	}
	return nil
}

// FederatedDaemonResult is the outcome at one daemon.
type FederatedDaemonResult struct {
	Name     string
	Addr     string
	Producer bool
	StoreLen int
	Guests   []metrics.GuestStats
	Fed      metrics.FederationStats
	// ExploitFiltered says the worm's exploit was dropped at every guest's
	// proxy during the final sweep.
	ExploitFiltered bool
}

// FederatedEpidemicResult is the outcome of one live epidemic run.
type FederatedEpidemicResult struct {
	Config  FederatedEpidemicConfig
	Daemons []FederatedDaemonResult
	// Converged says every store reached the full antibody union in time.
	Converged bool
	// ConvergenceTime is how long the stores took to converge after the
	// last producer attack.
	ConvergenceTime time.Duration
	// AntibodiesTotal is the converged store size.
	AntibodiesTotal int
	// CorruptedID names the rogue antibody (empty when SkipCorrupted).
	CorruptedID string
	// CorruptedSpread counts stores the corrupted antibody gossiped into
	// (rejection happens at adoption, not in transit, so this should equal
	// Daemons).
	CorruptedSpread int
	// CorruptedRejections counts guests that rejected the corrupted antibody.
	CorruptedRejections int
}

// federatedDaemon is one real daemon: a fleet, its peer-facing HTTP server on
// a loopback port, and its federation node.
type federatedDaemon struct {
	name     string
	producer bool
	fleet    *core.Fleet
	rec      *metrics.FederationRecorder
	lis      net.Listener
	srv      *http.Server
	node     *federate.Node
}

func (d *federatedDaemon) addr() string { return d.lis.Addr().String() }

func (d *federatedDaemon) close() {
	if d.node != nil {
		d.node.Close()
	}
	if d.srv != nil {
		d.srv.Close()
	}
	if d.fleet != nil {
		d.fleet.Stop()
	}
}

// RunFederatedEpidemic stands up cfg.Daemons real sweeperd-equivalent daemons
// federated over loopback HTTP in a full mesh, attacks the producers, and
// measures the epidemic response of the actual system: antibody generation,
// gossip, verify-before-adopt at every consumer, and community-wide
// inoculation — then has a rogue publisher push a corrupted antibody, which
// must spread freely but be rejected by every verifying guest.
func RunFederatedEpidemic(cfg FederatedEpidemicConfig) (*FederatedEpidemicResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	spec, err := apps.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		return nil, err
	}

	daemons := make([]*federatedDaemon, cfg.Daemons)
	defer func() {
		for _, d := range daemons {
			if d != nil {
				d.close()
			}
		}
	}()
	for i := range daemons {
		d := &federatedDaemon{
			name:     fmt.Sprintf("daemon%d", i),
			producer: i < cfg.Producers,
			fleet:    core.NewFleet(),
			rec:      metrics.NewFederationRecorder(),
		}
		for g := 0; g < cfg.GuestsPerDaemon; g++ {
			gcfg := core.DefaultConfig()
			// Every guest on every daemon runs its own randomised layout,
			// like distinct hosts; verification must still succeed.
			gcfg.ASLRSeed = 0x5eed + int64(i*997+g)*7919
			gcfg.VerifyAdoption = true
			guestName := fmt.Sprintf("%s-g%d", d.name, g)
			if _, err := d.fleet.AddGuest(guestName, spec.Name, spec.Image, spec.Options, gcfg); err != nil {
				return nil, err
			}
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("experiments: loopback listener: %w", err)
		}
		d.lis = lis
		d.srv = &http.Server{Handler: federate.NewServer(d.fleet.Store(), d.rec)}
		go d.srv.Serve(lis)
		d.node = federate.NewNode(d.fleet.Store(), d.rec, federate.Config{
			Name:         d.name,
			PollInterval: cfg.PollInterval,
		})
		d.fleet.Start()
		daemons[i] = d
	}
	// Full-mesh peering over the real loopback transport.
	for i, d := range daemons {
		for j, peer := range daemons {
			if i == j {
				continue
			}
			if err := d.node.AddPeer(peer.addr()); err != nil {
				return nil, err
			}
		}
	}

	// Benign load everywhere, then the worm hits guest 0 of each producer.
	for _, d := range daemons {
		for _, g := range d.fleet.Guests() {
			for r := 0; r < cfg.Benign; r++ {
				d.fleet.Submit(g.Name(), exploit.Benign(cfg.App, r), "client", false)
			}
		}
		d.fleet.Drain()
	}
	for i := 0; i < cfg.Producers; i++ {
		d := daemons[i]
		if !d.fleet.Submit(d.fleet.Guests()[0].Name(), payload, "worm", true) {
			// Producers are attacked sequentially with live gossip running:
			// a later producer may already be inoculated by an earlier one's
			// antibody before the worm reaches it. That is the community
			// defence succeeding, not a failed run — except for the first
			// producer, where no antibody can exist yet.
			if i == 0 {
				return nil, fmt.Errorf("experiments: exploit filtered at %s before any antibody existed", d.name)
			}
			continue
		}
		d.fleet.Drain()
	}
	attackDone := time.Now()

	// Wait for every store to converge on the union of the producers'
	// antibodies. Producer stores may already hold gossip from each other, so
	// the union size is the largest store, not the per-producer sum.
	union := make(map[string]bool)
	for i := 0; i < cfg.Producers; i++ {
		for _, a := range daemons[i].fleet.Store().All() {
			union[a.ID] = true
		}
	}
	want := len(union)
	if want == 0 {
		return nil, fmt.Errorf("experiments: producers generated no antibodies")
	}
	res := &FederatedEpidemicResult{Config: cfg}
	deadline := time.Now().Add(cfg.Timeout)
	for {
		converged := true
		for _, d := range daemons {
			if d.fleet.Store().Len() != want {
				converged = false
				break
			}
		}
		if converged {
			res.Converged = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(cfg.PollInterval)
	}
	res.ConvergenceTime = time.Since(attackDone)
	res.AntibodiesTotal = want
	// Let every guest finish verifying and adopting what just arrived.
	for _, d := range daemons {
		d.fleet.Drain()
	}

	// Rogue publisher: a corrupted antibody (its exploit input no longer
	// exploits anything, with a self-consistent signature that would censor
	// nothing real but proves nothing either). Gossip must spread it — the
	// network layer does not judge — and every verifying guest must reject
	// it. Rejections are attributed by delta, so a rejection of anything
	// else (there should be none) cannot masquerade as a corrupted-antibody
	// rejection.
	rejectedBefore := 0
	for _, d := range daemons {
		for _, st := range d.fleet.Metrics().All() {
			rejectedBefore += st.AntibodiesRejected
		}
	}
	if !cfg.SkipCorrupted {
		corrupted := &antibody.Antibody{
			ID:      "rogue-corrupted-final",
			Program: spec.Name,
			Stage:   antibody.StageFinal,
		}
		corrupted.ExploitInput = append([]byte(nil), payload[:len(payload)/4]...)
		corrupted.Sigs = []*antibody.Signature{antibody.ExactSignature("rogue-corrupted-sig", corrupted.ExploitInput)}
		res.CorruptedID = corrupted.ID
		rogue := federate.NewPeer(daemons[cfg.Producers].addr(), 5*time.Second)
		if _, err := rogue.Push("rogue", []*antibody.Antibody{corrupted}); err != nil {
			return nil, fmt.Errorf("experiments: rogue push: %w", err)
		}
		spreadDeadline := time.Now().Add(cfg.Timeout)
		for time.Now().Before(spreadDeadline) {
			spread := 0
			for _, d := range daemons {
				if _, ok := d.fleet.Store().Get(corrupted.ID); ok {
					spread++
				}
			}
			res.CorruptedSpread = spread
			if spread == len(daemons) {
				break
			}
			time.Sleep(cfg.PollInterval)
		}
		for _, d := range daemons {
			d.fleet.Drain()
		}
	}

	// Final sweep: the worm retries everywhere; every proxy must drop it.
	for _, d := range daemons {
		filtered := true
		for _, g := range d.fleet.Guests() {
			if d.fleet.Submit(g.Name(), payload, "worm", true) {
				filtered = false
			}
		}
		d.fleet.Drain()
		dr := FederatedDaemonResult{
			Name:            d.name,
			Addr:            d.addr(),
			Producer:        d.producer,
			StoreLen:        d.fleet.Store().Len(),
			Guests:          d.fleet.Metrics().All(),
			Fed:             d.rec.Snapshot(),
			ExploitFiltered: filtered,
		}
		for _, st := range dr.Guests {
			res.CorruptedRejections += st.AntibodiesRejected
		}
		res.Daemons = append(res.Daemons, dr)
	}
	res.CorruptedRejections -= rejectedBefore
	return res, nil
}
