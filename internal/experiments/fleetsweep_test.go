package experiments

import "testing"

// TestRunSubPageMicro pins the headline sub-page claim: scattered small
// writes capture at least 2x fewer bytes than page-granular checkpoints
// would, and sequential full-page writers do not regress.
func TestRunSubPageMicro(t *testing.T) {
	r, err := RunSubPageMicro()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scattered: %d captured vs %d page-granular (%.0fx); sequential: %d vs %d (%.2fx)",
		r.ScatteredCapturedBytes, r.ScatteredPageBytes, r.ScatteredReductionX,
		r.SequentialCapturedBytes, r.SequentialPageBytes, r.SequentialReductionX)
	if r.ScatteredReductionX < 2 {
		t.Errorf("scattered-write capture reduction %.2fx, want >= 2x", r.ScatteredReductionX)
	}
	if r.SequentialReductionX < 0.99 {
		t.Errorf("sequential-write capture regressed: reduction %.3fx below 1", r.SequentialReductionX)
	}
}

// TestRunFleetOverheadSweep runs the live-fleet interval sweep on one image
// at test scale: two concurrent guests, generator-driven, overhead
// monotonically non-increasing as the interval grows.
func TestRunFleetOverheadSweep(t *testing.T) {
	wl := QuickFleetWorkload()
	wl.RequestsPerGuest = 120
	sweep, err := RunFleetOverheadSweep([]string{"cvs"}, wl, []uint64{20, 200})
	if err != nil {
		t.Fatal(err)
	}
	app := sweep[0]
	if app.BaselinePerGuest <= 0 {
		t.Fatalf("no baseline throughput: %+v", app)
	}
	for _, pt := range app.Points {
		t.Logf("cvs @%dms: offered %.1f completed %.1f overhead %.4f (captured %d of %d bytes)",
			pt.IntervalMs, pt.OfferedPerGuest, pt.ThroughputPerGuest, pt.Overhead, pt.CapturedBytes, pt.FullScanBytes)
		if pt.ThroughputPerGuest <= 0 || pt.OfferedPerGuest <= 0 {
			t.Errorf("@%dms: empty rates: %+v", pt.IntervalMs, pt)
		}
		if pt.CapturedBytes <= 0 || pt.CapturedBytes >= pt.FullScanBytes {
			t.Errorf("@%dms: captured bytes %d not below full-scan bytes %d", pt.IntervalMs, pt.CapturedBytes, pt.FullScanBytes)
		}
	}
	if first, last := app.Points[0].Overhead, app.Points[len(app.Points)-1].Overhead; first < last-1e-9 {
		t.Errorf("overhead at %dms (%v) below overhead at %dms (%v): not monotone",
			app.Points[0].IntervalMs, first, app.Points[len(app.Points)-1].IntervalMs, last)
	}

	// With attack injections the sweep still completes and reports defence
	// activity (Figure 5 mode).
	wl.AttackEvery = 50
	wl.TargetReqPerSec = 150
	sweep, err = RunFleetOverheadSweep([]string{"cvs"}, wl, []uint64{200})
	if err != nil {
		t.Fatal(err)
	}
	pt := sweep[0].Points[0]
	if pt.AttacksHandled == 0 || pt.AntibodiesGenerated == 0 {
		t.Errorf("attack injections triggered no defence: %+v", pt)
	}
	if pt.ThroughputPerGuest <= 0 {
		t.Errorf("no throughput under attack injections: %+v", pt)
	}
}
