package experiments

import (
	"fmt"
	"time"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/epidemic"
	"sweeper/internal/exploit"
	"sweeper/internal/federate"
	"sweeper/internal/metrics"
)

// EpidemicPointConfig sizes one live community-defence run: a community of N
// hosts, of which Deploy·N run a real in-process daemon (fleet + federation
// node on the in-process hub) and the rest are unprotected model hosts, with
// Alpha·N of the community acting as Producers (full Sweeper analysis
// pipeline) and the remaining daemons as Consumers (detect and recover, but
// publish nothing — core.Config.ProduceAntibodies false). A deterministic
// worm spreads over a tick clock (1 tick = 1 model second): Beta infection
// attempts per infected host per tick against uniformly random targets. The
// community reaction time GammaTicks models γ = γ1 + γ2 — consumers join the
// federation (and verify-then-adopt the producers' antibodies) GammaTicks
// after the first producer is contacted.
type EpidemicPointConfig struct {
	// App names the protected application image (default squid).
	App string
	// Community is N, the number of vulnerable hosts (default 100).
	Community int
	// Alpha is the producer fraction of the community (default 0.05).
	Alpha float64
	// Deploy is the fraction of the community running a daemon at all —
	// the Figure 7 partial-deployment axis (default 1.0).
	Deploy float64
	// GammaTicks is the community reaction time in ticks (default 8).
	GammaTicks int
	// Beta is the worm contact rate: infection attempts per infected host
	// per tick (default 0.1, the paper's observed Slammer rate).
	Beta float64
	// Rho is the probability an infection attempt against a not-yet-immune
	// consumer daemon succeeds silently. 1 (the default, the paper's Slammer
	// figures) means no proactive protection: every contact infects. Below 1
	// the remaining 1-Rho of contacts crash the guest instead — detected and
	// recovered by the real daemon.
	Rho float64
	// Seed drives the worm's deterministic PRNG (default 1).
	Seed uint64
	// BenignPerGuest is each guest's open-loop generator load, offered (and
	// drained) before the worm is released, establishing live traffic and
	// the checkpoints that verification sandboxes replay from (default 12).
	BenignPerGuest int
	// TargetReqPerSec is each generator's offered rate (default 400).
	TargetReqPerSec float64
	// PollInterval is the federation poll cadence (default 20ms).
	PollInterval time.Duration
	// MaxPushFanout bounds each node's per-batch push fan-out (default 3).
	MaxPushFanout int
	// AuthToken is the community's shared federation secret; every endpoint
	// requires it and every node presents it (default "sweeper-community").
	AuthToken string
	// Timeout bounds the wait for store convergence (default 60s).
	Timeout time.Duration
	// MaxTicks bounds the epidemic clock (default 5000).
	MaxTicks int
}

func (c *EpidemicPointConfig) defaults() error {
	if c.App == "" {
		c.App = "squid"
	}
	if c.Community == 0 {
		c.Community = 100
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Deploy == 0 {
		c.Deploy = 1.0
	}
	if c.GammaTicks == 0 {
		c.GammaTicks = 8
	}
	if c.Beta == 0 {
		c.Beta = 0.1
	}
	if c.Rho == 0 {
		c.Rho = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BenignPerGuest == 0 {
		c.BenignPerGuest = 12
	}
	if c.TargetReqPerSec == 0 {
		c.TargetReqPerSec = 400
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 20 * time.Millisecond
	}
	if c.MaxPushFanout == 0 {
		c.MaxPushFanout = 3
	}
	if c.AuthToken == "" {
		c.AuthToken = "sweeper-community"
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 5000
	}
	if c.Community < 3 {
		return fmt.Errorf("experiments: epidemic community needs at least 3 hosts, got %d", c.Community)
	}
	if c.Alpha < 0 || c.Alpha > 1 || c.Deploy <= 0 || c.Deploy > 1 {
		return fmt.Errorf("experiments: epidemic alpha %g / deploy %g out of range", c.Alpha, c.Deploy)
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("experiments: epidemic rho %g out of [0,1]", c.Rho)
	}
	return nil
}

// EpidemicTickPoint is one sample of the live infection time series — the
// Figure 6 curve of one run.
type EpidemicTickPoint struct {
	Tick int
	// Infected counts hosts ever infected by this tick.
	Infected int
	// ProducersContacted counts producers the worm has reached by this tick.
	ProducersContacted int
}

// EpidemicPointResult is the outcome of one live community run.
type EpidemicPointResult struct {
	Config EpidemicPointConfig
	// N, Protected and Producers are the realised community split: Protected
	// hosts run real daemons, of which the first Producers are producers.
	N         int
	Protected int
	Producers int
	// T0 is the tick at which the worm first contacted a producer (-1 when
	// it never did before the unprotected population saturated).
	T0 int
	// InfectedAtT0 is the ever-infected count at T0.
	InfectedAtT0 int
	// FinalInfected is the total number of hosts ever infected and
	// InfectionRatio is FinalInfected / N — the paper's I(T0+γ)/N.
	FinalInfected  int
	InfectionRatio float64
	// Series is the per-tick infection time series.
	Series []EpidemicTickPoint
	// Ticks is the total epidemic-clock duration of the run.
	Ticks int
	// Converged says every daemon's store reached the producers' full
	// antibody union within the timeout after the consumers joined.
	Converged bool
	// AntibodiesTotal is the converged store size (the producers' union).
	AntibodiesTotal int
	// ProducersAttacked counts producers that handled a real exploit
	// end-to-end (later producers are often already inoculated by gossip).
	ProducersAttacked int
	// ConsumersDetected counts consumer daemons that detected and recovered
	// from a live exploit (only possible when Rho < 1).
	ConsumersDetected int
	// BlockedContacts counts worm contacts a protected host survived:
	// filtered by an installed antibody's input signature, or detected and
	// recovered in place.
	BlockedContacts int
	// Immune counts protected daemons whose proxy filtered the worm in the
	// final sweep (producers via their own antibodies, consumers via
	// verify-then-adopt).
	Immune int
	// Adopted, Verified, Rejected and Regenerated aggregate the fleets'
	// community-defence counters across every daemon.
	Adopted, Verified, Rejected, Regenerated int
	// Fed aggregates the federation counters across every daemon.
	Fed metrics.FederationStats
	// SharedPageFraction is the fraction of the community's resident guest
	// pages still backed by the content-addressed shared base image store —
	// the memory economy that makes Deploy·N in-process daemons feasible.
	SharedPageFraction float64
	// ModelInfectionRatio cross-checks the run against the Section 6
	// differential-equation model at the same (β, N, α, γ, ρ); NaN-free only
	// for full deployment, where the model applies as-is.
	ModelInfectionRatio float64
	// Elapsed is the wall-clock cost of the run.
	Elapsed time.Duration
}

// epidemicDaemon is one protected host: a single-guest fleet, its in-process
// federation endpoint and its node.
type epidemicDaemon struct {
	name     string
	producer bool
	fleet    *core.Fleet
	rec      *metrics.FederationRecorder
	node     *federate.Node
	guest    *core.Guest
	// attacked says this daemon already handled a live exploit (consumers
	// detect and recover at most once for real; later detections are
	// bookkept, keeping tick cost bounded).
	attacked bool
}

func (d *epidemicDaemon) close() {
	if d.node != nil {
		d.node.Close()
	}
	if d.fleet != nil {
		d.fleet.Stop()
	}
}

// wormRNG is a deterministic xorshift64* generator: the epidemic must not
// depend on global randomness, so runs are reproducible per seed.
type wormRNG struct{ s uint64 }

func (r *wormRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545f4914f6cdd1d
}

func (r *wormRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *wormRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// RunEpidemicPoint stands up one live community — Deploy·Community real
// daemons federated over the in-process hub, each guest warmed with
// generator-driven load — releases the worm, and measures the epidemic
// response of the actual system: producers generate antibodies under attack,
// gossip converges the stores, consumers verify-then-adopt GammaTicks after
// the first producer contact, and the infection freezes everywhere the
// defence reached.
func RunEpidemicPoint(cfg EpidemicPointConfig) (*EpidemicPointResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	start := time.Now()
	spec, err := apps.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		return nil, err
	}

	n := cfg.Community
	protected := int(cfg.Deploy*float64(n) + 0.5)
	if protected < 1 {
		protected = 1
	}
	if protected > n {
		protected = n
	}
	producers := int(cfg.Alpha*float64(n) + 0.5)
	if producers < 1 {
		producers = 1
	}
	if producers >= protected {
		return nil, fmt.Errorf("experiments: epidemic needs at least one consumer daemon (%d producers of %d protected)", producers, protected)
	}

	hub := federate.NewHub()
	defer hub.Close()
	daemons := make([]*epidemicDaemon, protected)
	defer func() {
		for _, d := range daemons {
			if d != nil {
				d.close()
			}
		}
	}()
	for i := range daemons {
		d := &epidemicDaemon{
			name:     fmt.Sprintf("host%d", i),
			producer: i < producers,
			fleet:    core.NewFleet(),
			rec:      metrics.NewFederationRecorder(),
		}
		gcfg := core.DefaultConfig()
		gcfg.ASLRSeed = 0x5eed + int64(i)*7919
		gcfg.VerifyAdoption = true
		if !d.producer {
			// Consumer role: detection and recovery only. No heavyweight
			// analyses, and nothing published — antibodies reach consumers
			// exclusively through the federation (this is what Alpha means).
			gcfg.Analyses = []string{}
			gcfg.ProduceAntibodies = false
		}
		g, err := d.fleet.AddGuest(d.name+"-g0", spec.Name, spec.Image, spec.Options, gcfg)
		if err != nil {
			return nil, err
		}
		wcfg := core.WorkloadConfig{
			TargetReqPerSec: cfg.TargetReqPerSec,
			Requests:        cfg.BenignPerGuest,
			Benign:          func(j int) []byte { return exploit.Benign(cfg.App, j) },
			Source:          "loadgen",
		}
		if err := g.SetWorkload(wcfg); err != nil {
			return nil, err
		}
		d.guest = g
		if _, err := hub.Register(d.name, d.fleet.Store(), d.rec, cfg.AuthToken); err != nil {
			return nil, err
		}
		d.node = federate.NewNode(d.fleet.Store(), d.rec, federate.Config{
			Name:          d.name,
			PollInterval:  cfg.PollInterval,
			AuthToken:     cfg.AuthToken,
			MaxPushFanout: cfg.MaxPushFanout,
		})
		d.fleet.Start()
		daemons[i] = d
	}
	// Warm every guest with its generator load before the worm is released:
	// live traffic, live checkpoints (the verification sandboxes replay from
	// them), and a populated dispatch cache.
	for _, d := range daemons {
		d.fleet.Drain()
	}
	// Producers federate among themselves from the start (they are the
	// permanently-connected core of the community); consumers join at T0+γ.
	for i := 0; i < producers; i++ {
		for j := 0; j < producers; j++ {
			if i == j {
				continue
			}
			t, err := hub.Dial(daemons[j].name, cfg.AuthToken)
			if err != nil {
				return nil, err
			}
			if err := daemons[i].node.AddTransport(t); err != nil {
				return nil, err
			}
		}
	}

	res := &EpidemicPointResult{
		Config:    cfg,
		N:         n,
		Protected: protected,
		Producers: producers,
		T0:        -1,
	}

	// Host state. Hosts [0, producers) are producers, [producers, protected)
	// consumer daemons, [protected, n) unprotected model hosts. The seed
	// infection is host n-1: the last unprotected host, or — under full
	// deployment — a consumer that was already compromised when the outbreak
	// began.
	infected := make([]bool, n)
	immune := make([]bool, protected)
	infected[n-1] = true
	infectedCount := 1
	producersContacted := make([]bool, producers)
	contactedCount := 0
	immunityOn := false

	rng := &wormRNG{s: cfg.Seed*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019}
	// submitWorm offers the live exploit to a daemon and drains the fleet if
	// it was accepted (the guest then detects, recovers and — for producers —
	// generates antibodies). Returns whether the proxy filtered it.
	submitWorm := func(d *epidemicDaemon) (filtered bool) {
		if d.fleet.Submit(d.guest.Name(), payload, "worm", true) {
			d.fleet.Drain()
			return false
		}
		return true
	}

	contact := func(target int) {
		if target >= protected {
			// Unprotected host: no daemon, no defence, no recovery.
			if !infected[target] {
				infected[target] = true
				infectedCount++
			}
			return
		}
		d := daemons[target]
		if d.producer {
			if res.T0 < 0 {
				res.T0 = res.Ticks
				res.InfectedAtT0 = infectedCount
			}
			if !producersContacted[target] {
				producersContacted[target] = true
				contactedCount++
			}
			// Producers meet every contact head-on: either the proxy filter
			// (their own or a gossiped antibody) drops it, or the guest
			// detects, analyses, recovers and publishes.
			if submitWorm(d) {
				res.BlockedContacts++
			} else {
				d.attacked = true
				res.ProducersAttacked++
			}
			return
		}
		// Consumer daemon.
		if infected[target] {
			return // already compromised; nothing changes
		}
		if immunityOn && immune[target] {
			res.BlockedContacts++
			return
		}
		if rng.float() < cfg.Rho {
			// The attempt succeeds silently (no proactive protection, or the
			// worm guessed the layout): the host is compromised without the
			// monitor ever firing.
			infected[target] = true
			infectedCount++
			return
		}
		// The attempt crashed against the randomised layout: detected. The
		// first detection runs the real pipeline end to end; repeats are
		// bookkept so the tick cost stays bounded.
		if !d.attacked {
			d.attacked = true
			if !submitWorm(d) {
				res.ConsumersDetected++
			}
		}
		res.BlockedContacts++
	}

	record := func() {
		res.Series = append(res.Series, EpidemicTickPoint{
			Tick:               res.Ticks,
			Infected:           infectedCount,
			ProducersContacted: contactedCount,
		})
	}
	record()

	// The tick loop: Beta attempts per infected host per tick, fractional
	// attempts accumulated across ticks. The loop leaves phase 1 (worm
	// spreading freely) at T0+γ, when the community response completes; after
	// that only unprotected hosts remain susceptible, and the run ends once
	// they are saturated (immediately, under full deployment).
	attempts := 0.0
	for res.Ticks < cfg.MaxTicks {
		if res.T0 >= 0 && !immunityOn && res.Ticks >= res.T0+cfg.GammaTicks {
			break // community response complete: join the consumers below
		}
		res.Ticks++
		attempts += cfg.Beta * float64(infectedCount)
		for attempts >= 1 {
			attempts--
			contact(rng.intn(n))
		}
		record()
	}

	// Community response: consumers join the federation (each dialing two
	// producers — the initial pull replays the full store, the poll loops
	// converge the rest), verify the antibodies by replaying the attached
	// exploits in their own sandboxes, and adopt.
	if res.T0 >= 0 {
		union := make(map[string]bool)
		for i := 0; i < producers; i++ {
			for _, a := range daemons[i].fleet.Store().All() {
				union[a.ID] = true
			}
		}
		res.AntibodiesTotal = len(union)
		for i := producers; i < protected; i++ {
			for k := 0; k < 2 && k < producers; k++ {
				t, err := hub.Dial(daemons[(i+k)%producers].name, cfg.AuthToken)
				if err != nil {
					return nil, err
				}
				if err := daemons[i].node.AddTransport(t); err != nil {
					return nil, err
				}
			}
		}
		deadline := time.Now().Add(cfg.Timeout)
		for {
			converged := true
			for _, d := range daemons {
				if d.fleet.Store().Len() < res.AntibodiesTotal {
					converged = false
					break
				}
			}
			if converged {
				res.Converged = true
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(cfg.PollInterval)
		}
		for _, d := range daemons {
			d.fleet.Drain() // verify-then-adopt everything that arrived
		}
		// Probe: one more worm contact per daemon, off the epidemic clock,
		// establishing ground-truth immunity for the remaining ticks.
		for i, d := range daemons {
			immune[i] = submitWorm(d)
			if immune[i] {
				res.Immune++
			}
		}
		immunityOn = true
	}

	// Phase 2: with every reachable daemon immune, the worm still owns the
	// unprotected remainder of the community (the Figure 7 story) — run the
	// clock until it has taken what it can.
	for res.Ticks < cfg.MaxTicks {
		saturated := true
		for i := protected; i < n; i++ {
			if !infected[i] {
				saturated = false
				break
			}
		}
		if saturated {
			break
		}
		res.Ticks++
		attempts += cfg.Beta * float64(infectedCount)
		for attempts >= 1 {
			attempts--
			contact(rng.intn(n))
		}
		record()
	}

	res.FinalInfected = infectedCount
	res.InfectionRatio = float64(infectedCount) / float64(n)

	// Aggregate the defence and federation counters, and the shared-page
	// economy across every live guest.
	sharedPages, totalPages := 0, 0
	for _, d := range daemons {
		tot := d.fleet.Metrics().Totals()
		res.Adopted += tot.AntibodiesAdopted
		res.Verified += tot.AntibodiesVerified
		res.Rejected += tot.AntibodiesRejected
		res.Regenerated += tot.AntibodiesRegenerated
		fs := d.rec.Snapshot()
		res.Fed.Peers += fs.Peers
		res.Fed.Pushed += fs.Pushed
		res.Fed.PushErrors += fs.PushErrors
		res.Fed.Received += fs.Received
		res.Fed.Duplicates += fs.Duplicates
		res.Fed.Polls += fs.Polls
		res.Fed.Rejected += fs.Rejected
		s, t := d.guest.Sweeper().Process().SharedBasePages()
		sharedPages += s
		totalPages += t
	}
	if totalPages > 0 {
		res.SharedPageFraction = float64(sharedPages) / float64(totalPages)
	}
	if cfg.Deploy >= 1 {
		res.ModelInfectionRatio = epidemic.InfectionRatio(
			cfg.Beta, float64(n), float64(producers)/float64(n), float64(cfg.GammaTicks), cfg.Rho)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// EpidemicSweepConfig spans the (α, deploy, γ) grid of one RunEpidemicSweep
// call. Base carries the community shape shared by every point; the three
// axes each vary one parameter against it.
type EpidemicSweepConfig struct {
	Base EpidemicPointConfig
	// Alphas is the Figure 6 axis: producer fractions swept at Base.Deploy
	// and Base.GammaTicks, each point keeping its infection time series.
	Alphas []float64
	// Deploys is the Figure 7 axis: deployment fractions swept at Base.Alpha.
	Deploys []float64
	// Gammas is the Figure 8 axis: reaction times swept at Base.Alpha under
	// full deployment.
	Gammas []int
}

// DefaultEpidemicSweepConfig returns the grid used by the committed BENCH_8
// tables: a 100-host community swept over three producer fractions, three
// deployment fractions and three reaction times.
func DefaultEpidemicSweepConfig() EpidemicSweepConfig {
	return EpidemicSweepConfig{
		Base:    EpidemicPointConfig{Community: 100, Alpha: 0.05, Deploy: 1.0, GammaTicks: 8},
		Alphas:  []float64{0.02, 0.05, 0.10},
		Deploys: []float64{0.3, 0.6, 1.0},
		Gammas:  []int{4, 8, 16},
	}
}

// EpidemicSweepResult holds one live point per grid cell, grouped by figure.
type EpidemicSweepResult struct {
	// Figure6 varies the producer fraction α: more producers mean an earlier
	// T0 and fewer hosts infected before the community response lands.
	Figure6 []*EpidemicPointResult
	// Figure7 varies the deployment fraction: unprotected hosts are never
	// immunised, so the final infection tracks the undeployed remainder.
	Figure7 []*EpidemicPointResult
	// Figure8 varies the reaction time γ: the longer antibody generation and
	// dissemination take, the further the worm spreads first.
	Figure8 []*EpidemicPointResult
}

// RunEpidemicSweep reproduces the structure of the paper's Figures 6-8
// against live communities: every grid cell stands up its own in-process
// daemon community (generator-driven load on every guest), releases the worm,
// and measures the infection outcome of the real antibody pipeline instead of
// the differential-equation model. The three axes share Base and differ in
// exactly one parameter, so each result slice is a curve. Every point of an
// axis reuses Base.Seed — common random numbers, the paired-run variance
// reduction: the worm draws the identical contact stream against every
// community on the axis, so curve differences isolate the swept parameter.
func RunEpidemicSweep(cfg EpidemicSweepConfig) (*EpidemicSweepResult, error) {
	base := cfg.Base
	if err := base.defaults(); err != nil {
		return nil, err
	}
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = []float64{0.02, 0.05, 0.10}
	}
	if len(cfg.Deploys) == 0 {
		cfg.Deploys = []float64{0.3, 0.6, 1.0}
	}
	if len(cfg.Gammas) == 0 {
		cfg.Gammas = []int{4, 8, 16}
	}
	res := &EpidemicSweepResult{}
	for _, alpha := range cfg.Alphas {
		pc := base
		pc.Alpha = alpha
		pt, err := RunEpidemicPoint(pc)
		if err != nil {
			return nil, fmt.Errorf("experiments: epidemic figure 6 alpha=%g: %w", alpha, err)
		}
		res.Figure6 = append(res.Figure6, pt)
	}
	for _, deploy := range cfg.Deploys {
		pc := base
		pc.Deploy = deploy
		pt, err := RunEpidemicPoint(pc)
		if err != nil {
			return nil, fmt.Errorf("experiments: epidemic figure 7 deploy=%g: %w", deploy, err)
		}
		res.Figure7 = append(res.Figure7, pt)
	}
	for _, gamma := range cfg.Gammas {
		pc := base
		pc.GammaTicks = gamma
		pt, err := RunEpidemicPoint(pc)
		if err != nil {
			return nil, fmt.Errorf("experiments: epidemic figure 8 gamma=%d: %w", gamma, err)
		}
		res.Figure8 = append(res.Figure8, pt)
	}
	return res, nil
}
