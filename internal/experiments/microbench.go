package experiments

import (
	"bytes"
	"fmt"
	"time"

	"sweeper/internal/apps"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// HotPathMicro holds the hot-path micro-benchmark results: what a
// steady-state (low-dirty) incremental checkpoint costs versus a full-scan
// snapshot of the same image, and what bulk page-run guest memory I/O costs
// versus the byte-at-a-time path it replaced. All measurements run against
// the real Squid image after it has served traffic (heap populated, request
// buffers dirtied), so the page counts are the evaluation workload's.
type HotPathMicro struct {
	// MappedPages is the image's mapped page count at measurement time;
	// SteadyDirtyPages is how many pages a steady-state checkpoint (one
	// benign request served since the previous checkpoint) captures, and
	// SteadyCapturedBytes how much page data that capture actually copied
	// (sub-page dirty runs by run length, whole pages by vm.PageSize).
	MappedPages         int
	SteadyDirtyPages    int
	SteadyCapturedBytes int

	// FullSnapshotNs / SteadySnapshotNs are the mean host-time costs of one
	// full-scan snapshot versus one steady-state incremental snapshot.
	FullSnapshotNs   float64
	SteadySnapshotNs float64
	// SnapshotSpeedup is FullSnapshotNs / SteadySnapshotNs.
	SnapshotSpeedup float64

	// Bulk vs byte-at-a-time guest memory I/O, ns per byte over an 8 KiB
	// buffer (the recv/send hot path).
	BulkReadNsPerByte  float64
	ByteReadNsPerByte  float64
	BulkWriteNsPerByte float64
	ByteWriteNsPerByte float64
	// BulkIOSpeedup compares total (read+write) byte-at-a-time cost to the
	// bulk page-run cost.
	BulkIOSpeedup float64
}

// bestOfRounds runs f rounds times and returns the smallest result, shedding
// collector and scheduler noise the way the Table 3 micro-benchmarks do. A
// negative result from any round is a failure and is returned immediately
// rather than being shadowed by a later, healthier-looking round.
func bestOfRounds(rounds int, f func() float64) float64 {
	best := -1.0
	for i := 0; i < rounds; i++ {
		v := f()
		if v < 0 {
			return v
		}
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}

// RunHotPathMicro measures the checkpoint and bulk-I/O hot paths on the
// Squid image. It is shared by the top-level benchmark suite (which asserts
// the steady-state snapshot is several times cheaper than a full scan) and
// by benchtables -json (which records the numbers in the BENCH_<n>.json
// trajectory).
func RunHotPathMicro() (*HotPathMicro, error) {
	spec, err := apps.ByName("squid")
	if err != nil {
		return nil, err
	}
	proxy := netproxy.New()
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		return nil, err
	}
	// Populate the image: serve a batch of benign requests so the heap is
	// mapped and the request path has touched its working set.
	reqSeq := 0
	serve := func(n int) error {
		for i := 0; i < n; i++ {
			proxy.Submit(exploit.Benign("squid", reqSeq), "client", false)
			reqSeq++
		}
		if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
			return fmt.Errorf("experiments: squid did not quiesce: %v", stop.Reason)
		}
		return nil
	}
	if err := serve(32); err != nil {
		return nil, err
	}
	// Model a warmed cache: the paper's Squid carries a large in-memory
	// object cache (its >5 s restart penalty is cache re-warming), while the
	// evaluation image's request path alone touches only ~20 pages. Filling
	// the guest heap through its own allocator gives the checkpoint
	// comparison a realistically sized image; the request path on top of it
	// still dirties only a handful of pages per interval.
	for {
		if _, err := p.Alloc.Malloc(vm.PageSize); err != nil {
			break
		}
	}
	mem := p.Machine.Mem
	res := &HotPathMicro{MappedPages: mem.MappedPages()}

	// --- snapshot cost: steady-state incremental vs full scan ---
	//
	// Each sample serves one benign request (untimed — that is the guest's
	// own work, identical under both designs, and its COW page clones are
	// charged to the writes in both) and then times only the snapshot call.
	const snapBatch = 24
	measureSnap := func(snap func() *vm.MemSnapshot) float64 {
		return bestOfRounds(5, func() float64 {
			var total time.Duration
			for i := 0; i < snapBatch; i++ {
				if err := serve(1); err != nil {
					return -1
				}
				start := time.Now()
				s := snap()
				total += time.Since(start)
				if res.SteadyDirtyPages == 0 && s.DeltaPages() > 0 {
					res.SteadyDirtyPages = s.DeltaPages()
					res.SteadyCapturedBytes = s.CapturedBytes()
				}
			}
			return float64(total.Nanoseconds()) / snapBatch
		})
	}
	mem.Snapshot() // establish the incremental baseline epoch
	res.SteadySnapshotNs = measureSnap(mem.Snapshot)
	res.FullSnapshotNs = measureSnap(mem.SnapshotFull)
	if res.SteadySnapshotNs < 0 || res.FullSnapshotNs < 0 {
		return nil, fmt.Errorf("experiments: snapshot measurement failed: the guest stopped serving")
	}
	res.SnapshotSpeedup = res.FullSnapshotNs / res.SteadySnapshotNs

	// --- bulk page-run guest memory I/O vs byte-at-a-time ---
	layout := p.Machine.Layout()
	const ioLen = 8192 // the applications' recv-buffer size
	base := layout.StackBase
	buf := make([]byte, ioLen)
	for i := range buf {
		buf[i] = byte(i)
	}
	const ioBatch = 64
	perByte := func(f func() bool) float64 {
		return bestOfRounds(3, func() float64 {
			start := time.Now()
			for i := 0; i < ioBatch; i++ {
				if !f() {
					return -1
				}
			}
			return float64(time.Since(start).Nanoseconds()) / (ioBatch * ioLen)
		})
	}
	res.BulkWriteNsPerByte = perByte(func() bool { return mem.WriteBytes(base, buf) })
	res.BulkReadNsPerByte = perByte(func() bool { _, ok := mem.ReadBytes(base, ioLen); return ok })
	res.ByteWriteNsPerByte = perByte(func() bool {
		for i := 0; i < ioLen; i++ {
			if !mem.WriteU8(base+uint32(i), buf[i]) {
				return false
			}
		}
		return true
	})
	res.ByteReadNsPerByte = perByte(func() bool {
		for i := 0; i < ioLen; i++ {
			if _, ok := mem.ReadU8(base + uint32(i)); !ok {
				return false
			}
		}
		return true
	})
	if res.BulkReadNsPerByte < 0 || res.ByteReadNsPerByte < 0 ||
		res.BulkWriteNsPerByte < 0 || res.ByteWriteNsPerByte < 0 {
		return nil, fmt.Errorf("experiments: bulk-I/O measurement failed: an access hit unmapped memory")
	}
	if bulk := res.BulkReadNsPerByte + res.BulkWriteNsPerByte; bulk > 0 {
		res.BulkIOSpeedup = (res.ByteReadNsPerByte + res.ByteWriteNsPerByte) / bulk
	}
	return res, nil
}

// SubPageMicro compares sub-page dirty-run checkpoint capture against the
// page-granular capture it replaced, on the two workload shapes that bound
// the design: a scatterer that writes a few bytes into many pages per
// checkpoint epoch (where runs should win big) and a sequential writer that
// fills whole pages (where the sub-page path must not regress — large runs
// fall back to whole-page freezing).
type SubPageMicro struct {
	// ScatteredCapturedBytes is what the sub-page snapshots captured across
	// the scattered-write epochs; ScatteredPageBytes is what page-granular
	// capture charges for the same epochs (touched pages times vm.PageSize).
	ScatteredCapturedBytes int
	ScatteredPageBytes     int
	// ScatteredReductionX is PageBytes / CapturedBytes — the headline
	// captured-byte reduction of the sub-page design.
	ScatteredReductionX float64

	// The same three quantities for the sequential full-page writer; the
	// reduction is ~1.0 by design (no regression, no win).
	SequentialCapturedBytes int
	SequentialPageBytes     int
	SequentialReductionX    float64

	// The same three quantities for the alternating-end writer (a few bytes
	// at the header AND trailer of each touched page per epoch) — the shape
	// that defeated the single-watermark tracker, where one [lo,hi) span
	// covers nearly the whole page and capture used to regress to
	// whole-page freezing. With run-list tracking the reduction should be
	// of the same order as the scattered case.
	AlternatingCapturedBytes int
	AlternatingPageBytes     int
	AlternatingReductionX    float64
}

// RunSubPageMicro measures checkpoint capture volume under scattered small
// writes versus sequential full-page writes, and verifies along the way that
// every retained snapshot restores byte-identically to a shadow copy of the
// arena (the deep proof lives in the vm package's differential tests).
func RunSubPageMicro() (*SubPageMicro, error) {
	const (
		arenaBase  = uint32(0x100000)
		arenaPages = 256
		epochs     = 16
	)
	res := &SubPageMicro{}

	type retained struct {
		snap   *vm.MemSnapshot
		shadow []byte
	}
	runPattern := func(writeEpoch func(m *vm.Memory, shadow []byte, epoch int) int) (captured, pageBytes int, err error) {
		m := vm.NewMemory()
		m.MapRegion(arenaBase, arenaPages*vm.PageSize)
		shadow := make([]byte, arenaPages*vm.PageSize)
		m.Snapshot() // the first snapshot captures everything; epochs start after it
		var keep []retained
		for e := 0; e < epochs; e++ {
			touched := writeEpoch(m, shadow, e)
			s := m.Snapshot()
			captured += s.CapturedBytes()
			pageBytes += touched * vm.PageSize
			if e == 0 || e == epochs-1 {
				keep = append(keep, retained{snap: s, shadow: append([]byte(nil), shadow...)})
			}
		}
		for i, r := range keep {
			got, ok := r.snap.Fork().ReadBytes(arenaBase, len(r.shadow))
			if !ok {
				return 0, 0, fmt.Errorf("experiments: sub-page micro: snapshot %d unreadable", i)
			}
			if !bytes.Equal(got, r.shadow) {
				return 0, 0, fmt.Errorf("experiments: sub-page micro: snapshot %d does not restore byte-identically", i)
			}
		}
		return captured, pageBytes, nil
	}

	// Scattered: 8 bytes at a shifting offset in each of 64 pages per epoch.
	var err error
	res.ScatteredCapturedBytes, res.ScatteredPageBytes, err = runPattern(func(m *vm.Memory, shadow []byte, e int) int {
		const pages, runLen = 64, 8
		for p := 0; p < pages; p++ {
			off := uint32((e*97 + p*131) % (vm.PageSize - runLen))
			addr := arenaBase + uint32(p*4)*vm.PageSize + off
			var buf [runLen]byte
			for i := range buf {
				buf[i] = byte(e + p + i)
			}
			m.WriteBytes(addr, buf[:])
			copy(shadow[uint32(p*4)*vm.PageSize+off:], buf[:])
		}
		return pages
	})
	if err != nil {
		return nil, err
	}
	if res.ScatteredCapturedBytes > 0 {
		res.ScatteredReductionX = float64(res.ScatteredPageBytes) / float64(res.ScatteredCapturedBytes)
	}

	// Sequential: fill 16 whole pages per epoch.
	res.SequentialCapturedBytes, res.SequentialPageBytes, err = runPattern(func(m *vm.Memory, shadow []byte, e int) int {
		const pages = 16
		buf := make([]byte, vm.PageSize)
		for p := 0; p < pages; p++ {
			for i := range buf {
				buf[i] = byte(e*3 + p + i)
			}
			base := uint32((e*pages+p)%arenaPages) * vm.PageSize
			m.WriteBytes(arenaBase+base, buf)
			copy(shadow[base:], buf)
		}
		return pages
	})
	if err != nil {
		return nil, err
	}
	if res.SequentialCapturedBytes > 0 {
		res.SequentialReductionX = float64(res.SequentialPageBytes) / float64(res.SequentialCapturedBytes)
	}

	// Alternating ends: 8 bytes at the header and 8 at the trailer of each
	// of 64 pages per epoch.
	res.AlternatingCapturedBytes, res.AlternatingPageBytes, err = runPattern(func(m *vm.Memory, shadow []byte, e int) int {
		const pages, runLen = 64, 8
		for p := 0; p < pages; p++ {
			pageOff := uint32(p*4) * vm.PageSize
			var hdr, trl [runLen]byte
			for i := range hdr {
				hdr[i] = byte(e + p + i)
				trl[i] = byte(e ^ (p + i))
			}
			m.WriteBytes(arenaBase+pageOff, hdr[:])
			copy(shadow[pageOff:], hdr[:])
			taddr := pageOff + vm.PageSize - runLen
			m.WriteBytes(arenaBase+taddr, trl[:])
			copy(shadow[taddr:], trl[:])
		}
		return pages
	})
	if err != nil {
		return nil, err
	}
	if res.AlternatingCapturedBytes > 0 {
		res.AlternatingReductionX = float64(res.AlternatingPageBytes) / float64(res.AlternatingCapturedBytes)
	}
	return res, nil
}
