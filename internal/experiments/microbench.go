package experiments

import (
	"fmt"
	"time"

	"sweeper/internal/apps"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// HotPathMicro holds the hot-path micro-benchmark results: what a
// steady-state (low-dirty) incremental checkpoint costs versus a full-scan
// snapshot of the same image, and what bulk page-run guest memory I/O costs
// versus the byte-at-a-time path it replaced. All measurements run against
// the real Squid image after it has served traffic (heap populated, request
// buffers dirtied), so the page counts are the evaluation workload's.
type HotPathMicro struct {
	// MappedPages is the image's mapped page count at measurement time;
	// SteadyDirtyPages is how many pages a steady-state checkpoint (one
	// benign request served since the previous checkpoint) captures.
	MappedPages      int
	SteadyDirtyPages int

	// FullSnapshotNs / SteadySnapshotNs are the mean host-time costs of one
	// full-scan snapshot versus one steady-state incremental snapshot.
	FullSnapshotNs   float64
	SteadySnapshotNs float64
	// SnapshotSpeedup is FullSnapshotNs / SteadySnapshotNs.
	SnapshotSpeedup float64

	// Bulk vs byte-at-a-time guest memory I/O, ns per byte over an 8 KiB
	// buffer (the recv/send hot path).
	BulkReadNsPerByte  float64
	ByteReadNsPerByte  float64
	BulkWriteNsPerByte float64
	ByteWriteNsPerByte float64
	// BulkIOSpeedup compares total (read+write) byte-at-a-time cost to the
	// bulk page-run cost.
	BulkIOSpeedup float64
}

// bestOfRounds runs f rounds times and returns the smallest result, shedding
// collector and scheduler noise the way the Table 3 micro-benchmarks do. A
// negative result from any round is a failure and is returned immediately
// rather than being shadowed by a later, healthier-looking round.
func bestOfRounds(rounds int, f func() float64) float64 {
	best := -1.0
	for i := 0; i < rounds; i++ {
		v := f()
		if v < 0 {
			return v
		}
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}

// RunHotPathMicro measures the checkpoint and bulk-I/O hot paths on the
// Squid image. It is shared by the top-level benchmark suite (which asserts
// the steady-state snapshot is several times cheaper than a full scan) and
// by benchtables -json (which records the numbers in the BENCH_<n>.json
// trajectory).
func RunHotPathMicro() (*HotPathMicro, error) {
	spec, err := apps.ByName("squid")
	if err != nil {
		return nil, err
	}
	proxy := netproxy.New()
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		return nil, err
	}
	// Populate the image: serve a batch of benign requests so the heap is
	// mapped and the request path has touched its working set.
	reqSeq := 0
	serve := func(n int) error {
		for i := 0; i < n; i++ {
			proxy.Submit(exploit.Benign("squid", reqSeq), "client", false)
			reqSeq++
		}
		if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
			return fmt.Errorf("experiments: squid did not quiesce: %v", stop.Reason)
		}
		return nil
	}
	if err := serve(32); err != nil {
		return nil, err
	}
	// Model a warmed cache: the paper's Squid carries a large in-memory
	// object cache (its >5 s restart penalty is cache re-warming), while the
	// evaluation image's request path alone touches only ~20 pages. Filling
	// the guest heap through its own allocator gives the checkpoint
	// comparison a realistically sized image; the request path on top of it
	// still dirties only a handful of pages per interval.
	for {
		if _, err := p.Alloc.Malloc(vm.PageSize); err != nil {
			break
		}
	}
	mem := p.Machine.Mem
	res := &HotPathMicro{MappedPages: mem.MappedPages()}

	// --- snapshot cost: steady-state incremental vs full scan ---
	//
	// Each sample serves one benign request (untimed — that is the guest's
	// own work, identical under both designs, and its COW page clones are
	// charged to the writes in both) and then times only the snapshot call.
	const snapBatch = 24
	measureSnap := func(snap func() *vm.MemSnapshot) float64 {
		return bestOfRounds(5, func() float64 {
			var total time.Duration
			for i := 0; i < snapBatch; i++ {
				if err := serve(1); err != nil {
					return -1
				}
				start := time.Now()
				s := snap()
				total += time.Since(start)
				if res.SteadyDirtyPages == 0 && s.DeltaPages() > 0 {
					res.SteadyDirtyPages = s.DeltaPages()
				}
			}
			return float64(total.Nanoseconds()) / snapBatch
		})
	}
	mem.Snapshot() // establish the incremental baseline epoch
	res.SteadySnapshotNs = measureSnap(mem.Snapshot)
	res.FullSnapshotNs = measureSnap(mem.SnapshotFull)
	if res.SteadySnapshotNs < 0 || res.FullSnapshotNs < 0 {
		return nil, fmt.Errorf("experiments: snapshot measurement failed: the guest stopped serving")
	}
	res.SnapshotSpeedup = res.FullSnapshotNs / res.SteadySnapshotNs

	// --- bulk page-run guest memory I/O vs byte-at-a-time ---
	layout := p.Machine.Layout()
	const ioLen = 8192 // the applications' recv-buffer size
	base := layout.StackBase
	buf := make([]byte, ioLen)
	for i := range buf {
		buf[i] = byte(i)
	}
	const ioBatch = 64
	perByte := func(f func() bool) float64 {
		return bestOfRounds(3, func() float64 {
			start := time.Now()
			for i := 0; i < ioBatch; i++ {
				if !f() {
					return -1
				}
			}
			return float64(time.Since(start).Nanoseconds()) / (ioBatch * ioLen)
		})
	}
	res.BulkWriteNsPerByte = perByte(func() bool { return mem.WriteBytes(base, buf) })
	res.BulkReadNsPerByte = perByte(func() bool { _, ok := mem.ReadBytes(base, ioLen); return ok })
	res.ByteWriteNsPerByte = perByte(func() bool {
		for i := 0; i < ioLen; i++ {
			if !mem.WriteU8(base+uint32(i), buf[i]) {
				return false
			}
		}
		return true
	})
	res.ByteReadNsPerByte = perByte(func() bool {
		for i := 0; i < ioLen; i++ {
			if _, ok := mem.ReadU8(base + uint32(i)); !ok {
				return false
			}
		}
		return true
	})
	if res.BulkReadNsPerByte < 0 || res.ByteReadNsPerByte < 0 ||
		res.BulkWriteNsPerByte < 0 || res.ByteWriteNsPerByte < 0 {
		return nil, fmt.Errorf("experiments: bulk-I/O measurement failed: an access hit unmapped memory")
	}
	if bulk := res.BulkReadNsPerByte + res.BulkWriteNsPerByte; bulk > 0 {
		res.BulkIOSpeedup = (res.ByteReadNsPerByte + res.ByteWriteNsPerByte) / bulk
	}
	return res, nil
}
