package experiments

import (
	"testing"
	"time"
)

// TestFederatedEpidemicLiveCommunityDefense runs the Figure 6 community flow
// against the real system: three daemons federated over loopback HTTP, one
// producer attacked. Consumers must adopt the producer's antibody only after
// their own exploit-replay verification succeeded, end up inoculated, and a
// corrupted antibody pushed by a rogue publisher must gossip everywhere yet
// be rejected by every guest.
func TestFederatedEpidemicLiveCommunityDefense(t *testing.T) {
	res, err := RunFederatedEpidemic(FederatedEpidemicConfig{
		Daemons:         3,
		Producers:       1,
		GuestsPerDaemon: 1,
		PollInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("stores did not converge (total %d) within the deadline", res.AntibodiesTotal)
	}
	// Squid's pipeline publishes initial, refined and final antibodies.
	if res.AntibodiesTotal < 2 {
		t.Errorf("converged store holds %d antibodies, want at least initial+final", res.AntibodiesTotal)
	}
	if len(res.Daemons) != 3 {
		t.Fatalf("got results for %d daemons, want 3", len(res.Daemons))
	}

	for _, d := range res.Daemons {
		if !d.ExploitFiltered {
			t.Errorf("%s: worm exploit was not filtered after the epidemic response", d.Name)
		}
		if d.StoreLen < res.AntibodiesTotal {
			t.Errorf("%s: store holds %d antibodies, want %d", d.Name, d.StoreLen, res.AntibodiesTotal)
		}
		for _, g := range d.Guests {
			if d.Producer {
				if g.AttacksHandled != 1 || g.Recovered != 1 {
					t.Errorf("%s/%s: attacks=%d recovered=%d, want 1/1", d.Name, g.Guest, g.AttacksHandled, g.Recovered)
				}
				if g.AntibodiesGenerated == 0 {
					t.Errorf("%s/%s: producer generated no antibodies", d.Name, g.Guest)
				}
				continue
			}
			// Consumers were never attacked: everything they know arrived
			// over the wire and went through verify-before-adopt.
			if g.AttacksHandled != 0 {
				t.Errorf("%s/%s: consumer handled %d attacks, want 0 (inoculated)", d.Name, g.Guest, g.AttacksHandled)
			}
			if g.AntibodiesVerified == 0 {
				t.Errorf("%s/%s: consumer adopted without a successful exploit-replay verification", d.Name, g.Guest)
			}
			if g.AntibodiesAdopted == 0 {
				t.Errorf("%s/%s: consumer adopted nothing", d.Name, g.Guest)
			}
			if g.FilteredInputs == 0 {
				t.Errorf("%s/%s: consumer filtered nothing in the final sweep", d.Name, g.Guest)
			}
		}
		if d.Fed.Received == 0 && !d.Producer {
			t.Errorf("%s: consumer received no antibodies over federation", d.Name)
		}
	}

	// The corrupted antibody spreads unimpeded — transit does not judge —
	// but every guest (producer's included) must reject it on verification.
	if res.CorruptedSpread != 3 {
		t.Errorf("corrupted antibody reached %d of 3 stores", res.CorruptedSpread)
	}
	if res.CorruptedRejections != 3 {
		t.Errorf("corrupted antibody rejected by %d guests, want all 3", res.CorruptedRejections)
	}
}
