package experiments

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
	"sweeper/internal/federate"
	"sweeper/internal/metrics"
)

// CrashRecoveryConfig sizes one crash-recovery fault-injection run: a
// community of Community durable daemons (each with its own data directory
// under Root) federated over the in-process hub, of which Alpha·Community
// are producers. After the community converges on the first attack wave, a
// seeded CrashFraction of the daemons is hard-stopped with crash semantics
// (WAL detached unsynced, no drain, no flush — the in-process equivalent of
// SIGKILL), a second attack wave lands on the survivors, and the crashed
// daemons restart from disk and rejoin. The run measures what the paper's
// community defence needs from durability: how much of the antibody store
// survives the crash, how long a warm restart takes, and how long the
// community needs to reconverge compared with the no-crash baseline.
type CrashRecoveryConfig struct {
	// App names the protected application image (default squid).
	App string
	// Community is the number of daemons (default 100).
	Community int
	// Alpha is the producer fraction (default 0.05).
	Alpha float64
	// CrashFraction is the fraction of daemons hard-stopped mid-run
	// (default 0.2). At least one producer always survives.
	CrashFraction float64
	// Seed drives the deterministic crash-victim selection (default 1).
	Seed uint64
	// Root is the directory holding each daemon's data directory. Required.
	Root string
	// BenignPerGuest warms each guest before the attack (default 8).
	BenignPerGuest int
	// TargetReqPerSec is each warmup generator's offered rate (default 400).
	TargetReqPerSec float64
	// PollInterval is the federation poll cadence (default 20ms).
	PollInterval time.Duration
	// AuthToken is the community's shared secret (default "sweeper-community").
	AuthToken string
	// Timeout bounds each convergence wait (default 60s).
	Timeout time.Duration
}

func (c *CrashRecoveryConfig) defaults() error {
	if c.App == "" {
		c.App = "squid"
	}
	if c.Community == 0 {
		c.Community = 100
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.CrashFraction == 0 {
		c.CrashFraction = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BenignPerGuest == 0 {
		c.BenignPerGuest = 8
	}
	if c.TargetReqPerSec == 0 {
		c.TargetReqPerSec = 400
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 20 * time.Millisecond
	}
	if c.AuthToken == "" {
		c.AuthToken = "sweeper-community"
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Root == "" {
		return fmt.Errorf("experiments: crash recovery needs a Root data directory")
	}
	if c.Community < 4 {
		return fmt.Errorf("experiments: crash recovery community needs at least 4 daemons, got %d", c.Community)
	}
	if c.CrashFraction <= 0 || c.CrashFraction >= 1 {
		return fmt.Errorf("experiments: crash fraction %g out of (0,1)", c.CrashFraction)
	}
	return nil
}

// CrashRecoveryResult is the outcome of one fault-injection run.
type CrashRecoveryResult struct {
	Config CrashRecoveryConfig
	// N, Producers and Crashed are the realised community split.
	N         int
	Producers int
	Crashed   int
	// CrashedProducers counts producers among the crash victims (their
	// surviving pollers exercise the backoff path until the restart).
	CrashedProducers int
	// BaselineConvergeMs is the no-crash yardstick: wall time from the first
	// attack-wave submission until every daemon's store held the full
	// antibody union.
	BaselineConvergeMs float64
	// CrashReconvergeMs is the recovery figure: wall time from the first
	// restart until every daemon — restarted ones included — held the full
	// post-crash union (the second wave's antibodies reach the restarted
	// daemons only through the federation).
	CrashReconvergeMs float64
	// WarmRestartMsMean and WarmRestartMsMax time the restart itself per
	// crashed daemon: opening the durable store (WAL replay), reopening the
	// checkpoint store and warm-restoring the guest.
	WarmRestartMsMean float64
	WarmRestartMsMax  float64
	// AntibodiesRetainedPct is 100 · (antibodies present after restart,
	// before rejoining the federation) / (antibodies present at the moment
	// of the crash), aggregated over the crashed daemons.
	AntibodiesRetainedPct float64
	// WarmRestarts and ColdFallbacks aggregate the restarted fleets'
	// durability counters: every restarted guest should restore warm.
	WarmRestarts  int
	ColdFallbacks int
	// RestartedImmune counts restarted daemons whose proxy filtered the
	// first wave's exploit immediately after restart — before rejoining the
	// federation — proving filters were reinstalled from disk, not re-learnt.
	RestartedImmune int
	// Converged says the post-crash community reached the full union within
	// the timeout; AntibodiesTotal is that union's size.
	Converged       bool
	AntibodiesTotal int
	// PeerDown and PeerRecovered aggregate the survivors' federation
	// transition counters: crashing producers trips their pollers into
	// backoff, restarting them recovers the peers.
	PeerDown      int
	PeerRecovered int
	// Elapsed is the wall-clock cost of the run.
	Elapsed time.Duration
}

// crashDaemon is one durable community member.
type crashDaemon struct {
	name     string
	producer bool
	dir      string
	fleet    *core.Fleet
	rec      *metrics.FederationRecorder
	node     *federate.Node
	guest    *core.Guest
	// preCrash is the store size at the moment of the Kill.
	preCrash int
}

// start builds (or rebuilds, on restart) the daemon's fleet from its data
// directory. Warmup workload is only attached on first boot — a restarted
// guest already carries its served history in the restored checkpoint.
func (d *crashDaemon) start(spec *apps.Spec, cfg CrashRecoveryConfig, firstBoot bool) error {
	d.fleet = core.NewFleetWithOptions(core.FleetOptions{DataDir: d.dir})
	d.rec = metrics.NewFederationRecorder()
	gcfg := core.DefaultConfig()
	gcfg.ASLRSeed = 0x5eed + int64(len(d.name))*131 + int64(d.name[len(d.name)-1])*7919
	gcfg.VerifyAdoption = true
	if !d.producer {
		gcfg.Analyses = []string{}
		gcfg.ProduceAntibodies = false
	}
	g, err := d.fleet.AddGuest(d.name+"-g0", spec.Name, spec.Image, spec.Options, gcfg)
	if err != nil {
		return err
	}
	d.guest = g
	if firstBoot {
		wcfg := core.WorkloadConfig{
			TargetReqPerSec: cfg.TargetReqPerSec,
			Requests:        cfg.BenignPerGuest,
			Benign:          func(j int) []byte { return exploit.Benign(cfg.App, j) },
			Source:          "loadgen",
		}
		if err := g.SetWorkload(wcfg); err != nil {
			return err
		}
	}
	return nil
}

// RunCrashRecovery runs one fault-injection point: converge, crash, attack
// the survivors, restart from disk, reconverge.
func RunCrashRecovery(cfg CrashRecoveryConfig) (*CrashRecoveryResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	start := time.Now()
	spec, err := apps.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	wave1, err := exploit.ExploitVariant(spec, 0)
	if err != nil {
		return nil, err
	}
	wave2, err := exploit.ExploitVariant(spec, 1)
	if err != nil {
		return nil, err
	}

	n := cfg.Community
	producers := int(cfg.Alpha*float64(n) + 0.5)
	if producers < 1 {
		producers = 1
	}
	if producers >= n {
		return nil, fmt.Errorf("experiments: crash recovery needs at least one consumer (%d producers of %d)", producers, n)
	}
	res := &CrashRecoveryResult{Config: cfg, N: n, Producers: producers}

	hub := federate.NewHub()
	defer hub.Close()
	daemons := make([]*crashDaemon, n)
	defer func() {
		for _, d := range daemons {
			if d != nil && d.fleet != nil {
				if d.node != nil {
					d.node.Close()
				}
				d.fleet.Stop()
			}
		}
	}()

	// Boot the community: durable single-guest fleets, all federated with
	// every producer (producers among themselves too).
	for i := range daemons {
		d := &crashDaemon{
			name:     fmt.Sprintf("host%d", i),
			producer: i < producers,
			dir:      filepath.Join(cfg.Root, fmt.Sprintf("host%d", i)),
		}
		if err := d.start(spec, cfg, true); err != nil {
			return nil, err
		}
		if _, err := hub.Register(d.name, d.fleet.Store(), d.rec, cfg.AuthToken); err != nil {
			return nil, err
		}
		d.node = federate.NewNode(d.fleet.Store(), d.rec, federate.Config{
			Name:         d.name,
			PollInterval: cfg.PollInterval,
			AuthToken:    cfg.AuthToken,
		})
		d.fleet.Start()
		daemons[i] = d
	}
	for _, d := range daemons {
		d.fleet.Drain() // warmup traffic: live checkpoints before any attack
	}
	for i, d := range daemons {
		for j := 0; j < producers; j++ {
			if i == j {
				continue
			}
			t, err := hub.Dial(daemons[j].name, cfg.AuthToken)
			if err != nil {
				return nil, err
			}
			if err := d.node.AddTransport(t); err != nil {
				return nil, err
			}
		}
	}

	// unionSize is the antibody union across the given daemons.
	unionSize := func(ds []*crashDaemon) int {
		union := make(map[string]bool)
		for _, d := range ds {
			for _, a := range d.fleet.Store().All() {
				union[a.ID] = true
			}
		}
		return len(union)
	}
	// converged waits until every listed daemon's store holds at least want
	// antibodies, returning false on timeout.
	converged := func(ds []*crashDaemon, want int) bool {
		deadline := time.Now().Add(cfg.Timeout)
		for {
			ok := true
			for _, d := range ds {
				if d.fleet.Store().Len() < want {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(cfg.PollInterval / 2)
		}
	}

	// Wave 1 — the no-crash baseline: attack every producer, let gossip
	// converge the whole community.
	baselineStart := time.Now()
	for i := 0; i < producers; i++ {
		d := daemons[i]
		if d.fleet.Submit(d.guest.Name(), wave1, "worm", true) {
			d.fleet.Drain()
		}
	}
	want := unionSize(daemons[:producers])
	if want == 0 {
		return nil, fmt.Errorf("experiments: crash recovery: wave 1 produced no antibodies")
	}
	if !converged(daemons, want) {
		return nil, fmt.Errorf("experiments: crash recovery: community never converged on wave 1 (%d antibodies)", want)
	}
	for _, d := range daemons {
		d.fleet.Drain() // verify-then-adopt everything that arrived
	}
	res.BaselineConvergeMs = float64(time.Since(baselineStart)) / float64(time.Millisecond)

	// Seeded crash selection: CrashFraction·N victims, at least one producer
	// left standing.
	rng := &wormRNG{s: cfg.Seed*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019}
	crashCount := int(cfg.CrashFraction*float64(n) + 0.5)
	if crashCount < 1 {
		crashCount = 1
	}
	if crashCount > n-1 {
		crashCount = n - 1
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	crashed := perm[:crashCount]
	surviving := 0
	for i := 0; i < producers; i++ {
		survives := true
		for _, c := range crashed {
			if c == i {
				survives = false
				break
			}
		}
		if survives {
			surviving++
		}
	}
	if surviving == 0 {
		// The seed happened to kill every producer: spare the first victim
		// that is one.
		for k, c := range crashed {
			if c < producers {
				crashed = append(crashed[:k], crashed[k+1:]...)
				break
			}
		}
	}
	res.Crashed = len(crashed)

	// Hard-stop the victims: no drain, no flush, WAL detached unsynced.
	// The hub endpoint disappears too, so surviving pollers see a dead peer
	// and back off.
	for _, i := range crashed {
		d := daemons[i]
		if d.producer {
			res.CrashedProducers++
		}
		d.preCrash = d.fleet.Store().Len()
		d.node.Close()
		d.node = nil
		d.fleet.Kill()
		d.fleet = nil
		hub.Unregister(d.name)
	}

	// Wave 2 lands while they are down: the first surviving producer handles
	// a fresh variant and the survivors converge on the grown union.
	var waveProducer *crashDaemon
	for i := 0; i < producers; i++ {
		if daemons[i].fleet != nil {
			waveProducer = daemons[i]
			break
		}
	}
	if waveProducer.fleet.Submit(waveProducer.guest.Name(), wave2, "worm", true) {
		waveProducer.fleet.Drain()
	}
	var survivors []*crashDaemon
	for _, d := range daemons {
		if d.fleet != nil {
			survivors = append(survivors, d)
		}
	}
	res.AntibodiesTotal = unionSize(survivors[:1])
	if u := unionSize(survivors); u > res.AntibodiesTotal {
		res.AntibodiesTotal = u
	}
	if !converged(survivors, res.AntibodiesTotal) {
		return nil, fmt.Errorf("experiments: crash recovery: survivors never converged on wave 2")
	}

	// Restart the crashed daemons from disk, concurrently like independent
	// machines rebooting: open the durable store (WAL replay), warm-restore
	// the guest, measure retention before any federation traffic, then
	// rejoin through lazy transports and the re-registered hub endpoints.
	reconvergeStart := time.Now()
	var (
		restartMu    sync.Mutex
		restartErr   error
		restartTimes []time.Duration
		retained     int
		preCrashSum  int
	)
	var wg sync.WaitGroup
	for _, i := range crashed {
		wg.Add(1)
		go func(d *crashDaemon) {
			defer wg.Done()
			t0 := time.Now()
			err := d.start(spec, cfg, false)
			warm := time.Since(t0)
			restartMu.Lock()
			defer restartMu.Unlock()
			if err != nil {
				if restartErr == nil {
					restartErr = err
				}
				return
			}
			restartTimes = append(restartTimes, warm)
			got := d.fleet.Store().Len()
			if got > d.preCrash {
				got = d.preCrash
			}
			retained += got
			preCrashSum += d.preCrash
			dur := d.fleet.Durability()
			res.WarmRestarts += dur.WarmRestarts
			res.ColdFallbacks += dur.ColdFallbacks
		}(daemons[i])
	}
	wg.Wait()
	if restartErr != nil {
		return nil, restartErr
	}
	if preCrashSum > 0 {
		res.AntibodiesRetainedPct = 100 * float64(retained) / float64(preCrashSum)
	}
	var totalRestart time.Duration
	for _, t := range restartTimes {
		totalRestart += t
		if ms := float64(t) / float64(time.Millisecond); ms > res.WarmRestartMsMax {
			res.WarmRestartMsMax = ms
		}
	}
	if len(restartTimes) > 0 {
		res.WarmRestartMsMean = float64(totalRestart) / float64(len(restartTimes)) / float64(time.Millisecond)
	}

	// Filters-before-serving: each restarted daemon must filter the first
	// wave's exploit from its replayed store alone, before rejoining the
	// federation.
	for _, i := range crashed {
		d := daemons[i]
		d.fleet.Start()
		d.fleet.Drain() // the serving loop applies the replayed inbox here
		if !d.fleet.Submit(d.guest.Name(), wave1, "worm", true) {
			res.RestartedImmune++
		}
		d.fleet.Drain()
	}
	for _, i := range crashed {
		d := daemons[i]
		if _, err := hub.Register(d.name, d.fleet.Store(), d.rec, cfg.AuthToken); err != nil {
			return nil, err
		}
		d.node = federate.NewNode(d.fleet.Store(), d.rec, federate.Config{
			Name:         d.name,
			PollInterval: cfg.PollInterval,
			AuthToken:    cfg.AuthToken,
		})
		for j := 0; j < producers; j++ {
			if daemons[j].name == d.name {
				continue
			}
			d.node.AddTransportLazy(hub.Transport(daemons[j].name, cfg.AuthToken))
		}
	}
	res.Converged = converged(daemons, res.AntibodiesTotal)
	res.CrashReconvergeMs = float64(time.Since(reconvergeStart)) / float64(time.Millisecond)
	for _, d := range daemons {
		d.fleet.Drain()
	}
	for _, d := range daemons {
		fs := d.rec.Snapshot()
		res.PeerDown += fs.PeerDown
		res.PeerRecovered += fs.PeerRecovered
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
