package experiments

import (
	"fmt"
	"time"

	"sweeper/internal/asm"
	"sweeper/internal/vm"
)

// DispatchMicro holds the interpreter-dispatch micro-benchmark results: what
// one instruction costs on the block-dispatch fast path versus the per-Step
// slow path it replaced, and what the same loop costs with an instruction
// tool attached (the VSEF replay configuration, which always takes the slow
// path). The workload is the ALU+stack spin loop the top-level
// BenchmarkUntooledStep uses, so the JSON trajectory and `go test -bench`
// measure the same thing.
type DispatchMicro struct {
	// UntooledStepNs is ns per instruction with block dispatch on (the live
	// guest hot path); UntooledSlowPathNs is the same machine forced onto the
	// per-Step path via SetBlockDispatch(false).
	UntooledStepNs     float64
	UntooledSlowPathNs float64
	// DispatchSpeedup is UntooledSlowPathNs / UntooledStepNs.
	DispatchSpeedup float64

	// TooledStepNs is ns per instruction with one no-op instruction hook
	// attached — the monitored-guest/VSEF-replay configuration. Since the
	// hook-calling block engines landed this runs block-dispatched;
	// TooledSlowPathNs is the same tooled machine forced onto the per-Step
	// path, and TooledSpeedup their ratio.
	TooledStepNs     float64
	TooledSlowPathNs float64
	TooledSpeedup    float64
}

// nopInstrTool is the cheapest possible InstrHook, so TooledStepNs measures
// dispatch overhead rather than tool work.
type nopInstrTool struct{}

func (nopInstrTool) Name() string                                     { return "experiments.nop" }
func (nopInstrTool) BeforeInstr(m *vm.Machine, idx int, in *vm.Instr) {}

// RunDispatchMicro measures per-instruction interpreter cost on the spin
// loop. It is shared by the benchmark suite and by benchtables -json.
func RunDispatchMicro() (*DispatchMicro, error) {
	build := func() (*vm.Machine, error) {
		b := asm.New("spin")
		b.Func("main")
		b.MovI(vm.R1, 0)
		b.Label("main.loop")
		b.AddI(vm.R1, 1)
		b.Push(vm.R1)
		b.Pop(vm.R2)
		b.Jmp("main.loop")
		prog, err := b.Build()
		if err != nil {
			return nil, err
		}
		return vm.NewMachine(prog, vm.DefaultLayout(), nil)
	}

	const steps = 2_000_000
	perInstr := func(prep func(m *vm.Machine)) (float64, error) {
		m, err := build()
		if err != nil {
			return 0, err
		}
		prep(m)
		m.Run(100_000) // warm up: map the stack page, settle caches and branch state
		ns := bestOfRounds(5, func() float64 {
			start := time.Now()
			if stop := m.Run(steps); stop.Reason != vm.StopInstrBudget {
				return -1
			}
			return float64(time.Since(start).Nanoseconds()) / steps
		})
		if ns < 0 {
			return 0, fmt.Errorf("experiments: dispatch micro: spin loop stopped unexpectedly")
		}
		return ns, nil
	}

	res := &DispatchMicro{}
	var err error
	if res.UntooledStepNs, err = perInstr(func(m *vm.Machine) {}); err != nil {
		return nil, err
	}
	if res.UntooledSlowPathNs, err = perInstr(func(m *vm.Machine) { m.SetBlockDispatch(false) }); err != nil {
		return nil, err
	}
	if res.TooledStepNs, err = perInstr(func(m *vm.Machine) { m.AttachTool(nopInstrTool{}) }); err != nil {
		return nil, err
	}
	if res.TooledSlowPathNs, err = perInstr(func(m *vm.Machine) {
		m.AttachTool(nopInstrTool{})
		m.SetBlockDispatch(false)
	}); err != nil {
		return nil, err
	}
	if res.UntooledStepNs > 0 {
		res.DispatchSpeedup = res.UntooledSlowPathNs / res.UntooledStepNs
	}
	if res.TooledStepNs > 0 {
		res.TooledSpeedup = res.TooledSlowPathNs / res.TooledStepNs
	}
	return res, nil
}
