package experiments

import (
	"strings"
	"testing"
)

func TestTable1Inventory(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	wantCVE := map[string]string{
		"apache1": "CVE-2003-0542",
		"apache2": "CVE-2003-1054",
		"cvs":     "CVE-2003-0015",
		"squid":   "CVE-2002-0068",
	}
	for _, r := range rows {
		if wantCVE[r.Name] != r.CVE {
			t.Errorf("%s CVE = %s, want %s", r.Name, r.CVE, wantCVE[r.Name])
		}
		if r.BugType == "" || r.Threat == "" || r.Program == "" {
			t.Errorf("row %+v incomplete", r)
		}
	}
	if out := FormatTable1(rows); !strings.Contains(out, "CVE-2002-0068") {
		t.Error("FormatTable1 output incomplete")
	}
}

func TestTable2Functionality(t *testing.T) {
	rows, runs, err := Table2([]string{"apache2", "cvs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(runs) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MemoryState == "" || r.InputTaint == "" || r.Slicing == "" {
			t.Errorf("row %s incomplete: %+v", r.App, r)
		}
		if strings.Contains(r.Slicing, "INCONSISTENT") {
			t.Errorf("%s: slicing disagrees with the other steps", r.App)
		}
	}
	// apache2: no memory bug, NULL-pointer VSEF from the memory state step.
	if !strings.Contains(rows[0].MemoryBug, "No memory bug") {
		t.Errorf("apache2 memory bug column: %q", rows[0].MemoryBug)
	}
	if !strings.Contains(strings.ToLower(rows[0].MemoryStateVSEF), "null") {
		t.Errorf("apache2 initial VSEF: %q", rows[0].MemoryStateVSEF)
	}
	// cvs: double free found with a refined VSEF.
	if !strings.Contains(rows[1].MemoryBug, "double free") {
		t.Errorf("cvs memory bug column: %q", rows[1].MemoryBug)
	}
	if out := FormatTable2(rows); !strings.Contains(out, "== cvs ==") {
		t.Error("FormatTable2 output incomplete")
	}
}

func TestTable3Timings(t *testing.T) {
	rows, err := Table3([]string{"apache1"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TimeToFirstVSEF <= 0 {
		t.Error("no time to first VSEF")
	}
	if r.TimeToFirstVSEF > r.TimeToBestVSEF || r.TimeToBestVSEF > r.TotalAnalysisTime {
		t.Errorf("timing ordering violated: %+v", r)
	}
	if r.InitialAnalysisTime > r.TotalAnalysisTime {
		t.Error("initial analysis cannot exceed total")
	}
	if r.MemoryState <= 0 || r.MemoryBug <= 0 || r.Slicing <= 0 {
		t.Errorf("component timings missing: %+v", r)
	}
	// The ordering of expense matches the paper: memory-state analysis is the
	// cheapest step and slicing the most expensive.
	if r.MemoryState > r.Slicing {
		t.Errorf("memory-state (%v) should be cheaper than slicing (%v)", r.MemoryState, r.Slicing)
	}
	if out := FormatTable3(rows); !strings.Contains(out, "apache1") {
		t.Error("FormatTable3 output incomplete")
	}
}

// TestDefenseRunRecordsAnalyzerLatencies: every pipeline analyzer's replay
// latency is captured per run, keyed by analyzer name.
func TestDefenseRunRecordsAnalyzerLatencies(t *testing.T) {
	run, err := RunDefense("apache1", 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]int)
	for _, l := range run.AnalyzerLatencies {
		byName[l.Name] = l.Runs
		if l.Total <= 0 || l.Max <= 0 || l.Mean() <= 0 {
			t.Errorf("analyzer %s has implausible latency stats: %+v", l.Name, l)
		}
	}
	for _, want := range []string{"membug", "taint", "slicing"} {
		if byName[want] != 1 {
			t.Errorf("analyzer %s recorded %d runs, want 1 (have %v)", want, byName[want], byName)
		}
	}
}

func TestFigure4OverheadShape(t *testing.T) {
	points, err := Figure4([]uint64{20, 200}, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	fast, slow := points[0], points[1]
	if fast.IntervalMs != 20 || slow.IntervalMs != 200 {
		t.Fatal("interval ordering lost")
	}
	// More frequent checkpoints cost more.
	if fast.Overhead <= slow.Overhead {
		t.Errorf("20ms overhead (%.4f) should exceed 200ms overhead (%.4f)", fast.Overhead, slow.Overhead)
	}
	// The 200ms configuration stays in the paper's "about 1%" regime.
	if slow.Overhead < 0 || slow.Overhead > 0.03 {
		t.Errorf("200ms overhead = %.4f, want under 3%%", slow.Overhead)
	}
	// The 20ms configuration is noticeable but still modest (paper: ~5% at 30ms).
	if fast.Overhead > 0.20 {
		t.Errorf("20ms overhead = %.4f, implausibly large", fast.Overhead)
	}
	if out := FormatFigure4(points); !strings.Contains(out, "Interval") {
		t.Error("FormatFigure4 output incomplete")
	}
}

func TestMonitoringOverheadOrdering(t *testing.T) {
	rows, err := MonitoringOverhead(250)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[string]OverheadRow{}
	for _, r := range rows {
		switch {
		case r.Mode == "unprotected":
			byMode["base"] = r
		case strings.HasPrefix(r.Mode, "sweeper (ASLR"):
			byMode["sweeper"] = r
		case strings.HasPrefix(r.Mode, "sweeper + deployed VSEF"):
			byMode["vsef"] = r
		case strings.HasPrefix(r.Mode, "always-on taint"):
			byMode["taint"] = r
		}
	}
	if len(byMode) != 4 {
		t.Fatalf("could not identify all rows: %+v", rows)
	}
	// Sweeper's lightweight runtime and VSEFs are cheap; always-on taint is
	// catastrophically more expensive (the paper's central comparison).
	if byMode["sweeper"].Overhead > 0.05 {
		t.Errorf("sweeper overhead %.4f too high", byMode["sweeper"].Overhead)
	}
	if byMode["vsef"].Overhead > 0.10 {
		t.Errorf("VSEF overhead %.4f too high", byMode["vsef"].Overhead)
	}
	if byMode["taint"].Overhead < 5*byMode["vsef"].Overhead || byMode["taint"].Overhead < 0.5 {
		t.Errorf("always-on taint (%.2f) should dwarf VSEF overhead (%.4f)",
			byMode["taint"].Overhead, byMode["vsef"].Overhead)
	}
	if out := FormatOverhead(rows); !strings.Contains(out, "unprotected") {
		t.Error("FormatOverhead output incomplete")
	}
}

func TestFigure5RecoveryVsRestart(t *testing.T) {
	res, err := Figure5(900, 450, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeper) == 0 || len(res.Restart) == 0 {
		t.Fatal("missing series")
	}
	if res.SweeperServed < res.RestartServed {
		t.Errorf("Sweeper served %d, restart baseline %d; recovery must not lose more requests",
			res.SweeperServed, res.RestartServed)
	}
	// The restart baseline pays the full restart penalty of wall-clock service
	// time, so its run stretches noticeably longer than Sweeper's.
	sweeperEnd := res.Sweeper[len(res.Sweeper)-1].TimeMs
	restartEnd := res.Restart[len(res.Restart)-1].TimeMs
	if restartEnd < sweeperEnd+RestartPenaltyMs/2 {
		t.Errorf("restart baseline finished at %d ms vs Sweeper %d ms; expected a ~%d ms penalty",
			restartEnd, sweeperEnd, RestartPenaltyMs)
	}
	if res.RecoveryGapMs == 0 {
		t.Error("no recovery gap recorded")
	}
	if res.RecoveryGapMs >= RestartPenaltyMs {
		t.Errorf("recovery gap %d ms should beat the %d ms restart penalty", res.RecoveryGapMs, RestartPenaltyMs)
	}
	if out := FormatFigure5(res); !strings.Contains(out, "restart") {
		t.Error("FormatFigure5 output incomplete")
	}
}

func TestCommunityFigures(t *testing.T) {
	for _, tc := range []struct {
		name   string
		series []FigureSeries
	}{
		{"figure6", Figure6()},
		{"figure7", Figure7()},
		{"figure8", Figure8()},
	} {
		if len(tc.series) != 6 {
			t.Errorf("%s: %d gamma curves, want 6", tc.name, len(tc.series))
		}
		for _, s := range tc.series {
			if len(s.Points) != 5 {
				t.Errorf("%s gamma=%v: %d points, want 5", tc.name, s.Gamma, len(s.Points))
			}
			for _, p := range s.Points {
				if p.InfectionRatio < 0 || p.InfectionRatio > 1 {
					t.Errorf("%s: ratio out of range %+v", tc.name, p)
				}
			}
		}
		if out := FormatCommunityFigure(tc.name, tc.series); !strings.Contains(out, "alpha") {
			t.Errorf("%s formatting incomplete", tc.name)
		}
	}
}

func TestAbstractContainmentClaim(t *testing.T) {
	unimpeded, contained := AbstractContainmentClaim()
	if unimpeded < 0.99 {
		t.Errorf("an unimpeded hit-list worm should infect ~100%% in a second, got %.3f", unimpeded)
	}
	if contained >= 0.05 {
		t.Errorf("Sweeper should contain the hit-list worm to under 5%%, got %.3f", contained)
	}
}

func TestAblationsAndCrossCheck(t *testing.T) {
	rows := ProactiveAblation(1000)
	if len(rows) == 0 {
		t.Fatal("no ablation rows")
	}
	for _, r := range rows {
		if r.WithProactive > r.WithoutProactive+1e-9 {
			t.Errorf("proactive protection made things worse: %+v", r)
		}
	}
	if out := FormatProactiveAblation(rows); !strings.Contains(out, "proactive") {
		t.Error("ablation formatting incomplete")
	}

	rt := ResponseTimeAblation(1000, 14)
	for _, r := range rt {
		if r.RatioInitial > r.RatioRefined+1e-9 {
			t.Errorf("distributing the initial VSEF sooner should never be worse: %+v", r)
		}
	}
	if out := FormatResponseTimeAblation(rt); out == "" {
		t.Error("response-time ablation formatting empty")
	}

	cc, err := AgentCrossCheck(10000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cc) == 0 {
		t.Fatal("no cross-check rows")
	}
	if out := FormatAgentCrossCheck(cc); !strings.Contains(out, "model") {
		t.Error("cross-check formatting incomplete")
	}
}

func TestSizes(t *testing.T) {
	q, p := QuickSizes(), PaperSizes()
	if q.Figure4Requests >= p.Figure4Requests || q.Figure5Requests >= p.Figure5Requests {
		t.Error("paper sizes should exceed quick sizes")
	}
	if q.Figure5AttackAt >= q.Figure5Requests {
		t.Error("quick attack index out of range")
	}
	if p.Figure5AttackAt >= p.Figure5Requests {
		t.Error("paper attack index out of range")
	}
}
