package experiments

import (
	"fmt"
	"strings"
	"time"
)

// FormatTable1 renders Table 1 as text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: List of tested exploits\n")
	fmt.Fprintf(&b, "%-10s %-36s %-15s %-22s %s\n", "Name", "Program", "CVE ID", "Bug Type", "Security Threat")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-36s %-15s %-22s %s\n", r.Name, r.Program, r.CVE, r.BugType, r.Threat)
	}
	return b.String()
}

// FormatTable2 renders Table 2 as text.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Overall Sweeper results\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "\n== %s ==\n", r.App)
		fmt.Fprintf(&b, "  Defense result summary:\n")
		for _, s := range r.ResultSummary {
			fmt.Fprintf(&b, "    - %s\n", s)
		}
		fmt.Fprintf(&b, "  #1 Memory State Analysis : %s\n", r.MemoryState)
		if r.MemoryStateVSEF != "" {
			fmt.Fprintf(&b, "                             %s\n", r.MemoryStateVSEF)
		}
		fmt.Fprintf(&b, "  #2 Memory Bug Detection  : %s\n", r.MemoryBug)
		if r.MemoryBugVSEF != "" {
			fmt.Fprintf(&b, "                             %s\n", r.MemoryBugVSEF)
		}
		fmt.Fprintf(&b, "  #3 Input/Taint Analysis  : %s\n", r.InputTaint)
		fmt.Fprintf(&b, "  #4 Slicing               : %s\n", r.Slicing)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%d ms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2f s", d.Seconds())
	}
}

// FormatTable3 renders Table 3 as text.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Sweeper failure analysis time (wall clock of this reproduction)\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-12s | %-12s %-12s %-12s %-12s %-10s\n",
		"App", "First VSEF", "Best VSEF", "Initial", "Total",
		"MemState", "MemBug", "Input/Taint", "Slicing", "Recovery")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-12s | %-12s %-12s %-12s %-12s %-10s\n",
			r.App,
			fmtDur(r.TimeToFirstVSEF), fmtDur(r.TimeToBestVSEF),
			fmtDur(r.InitialAnalysisTime), fmtDur(r.TotalAnalysisTime),
			fmtDur(r.MemoryState), fmtDur(r.MemoryBug), fmtDur(r.InputTaint), fmtDur(r.Slicing),
			fmtDur(r.RecoveryTime))
	}
	return b.String()
}

// FormatFigure4 renders the checkpoint-interval sweep as text.
func FormatFigure4(points []Figure4Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: throughput overhead vs checkpoint interval (Squid benign workload)\n")
	fmt.Fprintf(&b, "%-14s %-22s %s\n", "Interval (ms)", "Throughput (req/s)", "Overhead")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14d %-22.1f %.3f%%\n", p.IntervalMs, p.Throughput, p.Overhead*100)
	}
	return b.String()
}

// FormatOverhead renders the monitoring-overhead comparison as text.
func FormatOverhead(rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Normal-execution overhead by monitoring configuration (Squid benign workload)\n")
	fmt.Fprintf(&b, "%-50s %-22s %s\n", "Configuration", "Throughput (req/s)", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-50s %-22.1f %.2f%%\n", r.Mode, r.Throughput, r.Overhead*100)
	}
	return b.String()
}

// FormatFigure5 renders the attack/recovery throughput time series as text.
func FormatFigure5(res Figure5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: throughput during a single attack against Squid\n")
	fmt.Fprintf(&b, "Attack at t=%d ms; Sweeper recovery gap %d ms; restart baseline gap %d ms\n",
		res.AttackAtMs, res.RecoveryGapMs, res.RestartGapMs)
	fmt.Fprintf(&b, "Requests served: Sweeper=%d, restart baseline=%d\n", res.SweeperServed, res.RestartServed)
	fmt.Fprintf(&b, "%-12s %-20s %-20s\n", "time (ms)", "sweeper (req/s)", "restart (req/s)")
	n := len(res.Sweeper)
	if len(res.Restart) > n {
		n = len(res.Restart)
	}
	for i := 0; i < n; i++ {
		var t uint64
		sv, rv := "-", "-"
		if i < len(res.Sweeper) {
			t = res.Sweeper[i].TimeMs
			sv = fmt.Sprintf("%.1f", res.Sweeper[i].Value)
		}
		if i < len(res.Restart) {
			t = res.Restart[i].TimeMs
			rv = fmt.Sprintf("%.1f", res.Restart[i].Value)
		}
		fmt.Fprintf(&b, "%-12d %-20s %-20s\n", t, sv, rv)
	}
	return b.String()
}

// FormatCommunityFigure renders one of Figures 6-8 as text.
func FormatCommunityFigure(title string, series []FigureSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", "alpha")
	for _, s := range series {
		fmt.Fprintf(&b, "g=%-10.0f", s.Gamma)
	}
	fmt.Fprintf(&b, "\n")
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%-12g", series[0].Points[i].Alpha)
		for _, s := range series {
			fmt.Fprintf(&b, "%-12.4f", s.Points[i].InfectionRatio)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// FormatProactiveAblation renders the proactive-protection ablation.
func FormatProactiveAblation(rows []ProactiveAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: proactive protection (rho=2^-12) vs none (rho=1), hit-list worm\n")
	fmt.Fprintf(&b, "%-8s %-8s %-10s %-18s %-18s\n", "beta", "gamma", "alpha", "with proactive", "without proactive")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.0f %-8.0f %-10g %-18.4f %-18.4f\n", r.Beta, r.Gamma, r.Alpha, r.WithProactive, r.WithoutProactive)
	}
	return b.String()
}

// FormatResponseTimeAblation renders the antibody-timing ablation.
func FormatResponseTimeAblation(rows []ResponseTimeAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: distribute initial VSEF immediately vs wait for refined VSEF\n")
	fmt.Fprintf(&b, "%-8s %-10s %-24s %-24s\n", "beta", "alpha", "initial (gamma=5s)", "wait for refined")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.0f %-10g %-24.4f %-24.4f\n", r.Beta, r.Alpha, r.RatioInitial, r.RatioRefined)
	}
	return b.String()
}

// FormatAgentCrossCheck renders the model-vs-agent comparison.
func FormatAgentCrossCheck(rows []AgentCrossCheckRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-check: SI differential-equation model vs agent-based simulation\n")
	fmt.Fprintf(&b, "%-8s %-10s %-8s %-12s %-14s %-14s\n", "beta", "alpha", "gamma", "rho", "model ratio", "agent ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8g %-10g %-8.0f %-12.2e %-14.4f %-14.4f\n", r.Beta, r.Alpha, r.Gamma, r.Rho, r.ModelRatio, r.AgentRatio)
	}
	return b.String()
}
