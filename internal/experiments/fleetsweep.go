package experiments

import (
	"fmt"

	"sweeper/internal/analysis"
	"sweeper/internal/analysis/slicing"
	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
	"sweeper/internal/metrics"
)

// FleetWorkload scales RunFleetOverheadSweep: how many live guests per
// application image, how much load each guest's open-loop generator offers,
// and whether exploit injections ride along in guest 0's stream.
type FleetWorkload struct {
	// GuestsPerApp is the number of concurrently-serving guests per image
	// (each on its own goroutine with its own randomised layout).
	GuestsPerApp int
	// RequestsPerGuest is each generator's total offered load.
	RequestsPerGuest int
	// TargetReqPerSec is each generator's offered rate in requests per
	// virtual second. Rates beyond the image's service capacity (roughly
	// 260-590 req/s across the four evaluation images) saturate the guest,
	// which is what the Figure 4 overhead points need; sub-capacity rates
	// leave headroom so offered-vs-completed comparisons (Figure 5) are
	// meaningful.
	TargetReqPerSec float64
	// AttackEvery, when non-zero, injects an exploit variant every
	// AttackEvery-th request of guest 0's stream (the worm hitting one host
	// of the fleet; peers get inoculated through the shared store).
	AttackEvery int
}

// QuickFleetWorkload returns a fleet workload sized for tests and the smoke
// registry: two guests per image under a saturating open-loop rate.
func QuickFleetWorkload() FleetWorkload {
	return FleetWorkload{
		GuestsPerApp:     2,
		RequestsPerGuest: 200,
		TargetReqPerSec:  5000,
	}
}

// Figure5FleetWorkload returns the Figure 5 style fleet workload: a
// sub-capacity offered rate, so offered-versus-completed throughput is
// meaningful, with a worm injecting exploit variants into guest 0's stream.
func Figure5FleetWorkload() FleetWorkload {
	wl := QuickFleetWorkload()
	wl.TargetReqPerSec = 150
	wl.RequestsPerGuest = 300
	wl.AttackEvery = 60
	return wl
}

// FleetSweepPoint is one (app, interval) measurement of the fleet sweep.
type FleetSweepPoint struct {
	IntervalMs uint64
	// OfferedPerGuest and ThroughputPerGuest are the mean offered and
	// completed rates across the app's guests, in requests per virtual
	// second.
	OfferedPerGuest    float64
	ThroughputPerGuest float64
	// Overhead is the throughput drop relative to the same fleet running
	// with checkpointing disabled (the Figure 4 quantity).
	Overhead float64
	// AttacksHandled and AntibodiesGenerated aggregate the defence activity
	// the injected exploits triggered (zero in benign-only sweeps).
	AttacksHandled      int
	AntibodiesGenerated int
	// CapturedBytes and FullScanBytes aggregate the checkpoint managers'
	// ByteStats across the fleet: what the sub-page incremental checkpoints
	// captured versus what full-page full scans would have copied.
	CapturedBytes int
	FullScanBytes int
}

// FleetSweepApp is the sweep result for one application image.
type FleetSweepApp struct {
	App    string
	Guests int
	// BaselinePerGuest is the mean per-guest throughput with checkpointing
	// disabled, the denominator of every point's Overhead.
	BaselinePerGuest float64
	Points           []FleetSweepPoint
}

// neverCheckpointMs effectively disables checkpointing for baseline runs.
const neverCheckpointMs = uint64(1) << 40

// RunFleetOverheadSweep reproduces the Figure 4/5 measurements against the
// live fleet instead of a single scripted guest: for every application image
// it stands up GuestsPerApp concurrently-serving guests, drives each with
// its own open-loop workload generator, and sweeps the checkpoint interval,
// reporting per-guest throughput and the overhead against a
// checkpointing-disabled baseline fleet under the identical workload.
// Throughputs are virtual-clock quantities, so benign-only sweeps are
// deterministic per configuration.
func RunFleetOverheadSweep(appNames []string, wl FleetWorkload, intervals []uint64) ([]FleetSweepApp, error) {
	if wl.GuestsPerApp < 2 {
		return nil, fmt.Errorf("experiments: fleet sweep needs at least 2 guests per app, got %d", wl.GuestsPerApp)
	}
	if len(intervals) == 0 {
		intervals = []uint64{20, 100, 200}
	}
	var out []FleetSweepApp
	for _, app := range appNames {
		baseline, err := runFleetPoint(app, wl, neverCheckpointMs)
		if err != nil {
			return nil, err
		}
		res := FleetSweepApp{App: app, Guests: wl.GuestsPerApp, BaselinePerGuest: baseline.ThroughputPerGuest}
		for _, interval := range intervals {
			pt, err := runFleetPoint(app, wl, interval)
			if err != nil {
				return nil, err
			}
			pt.Overhead = metrics.Overhead(res.BaselinePerGuest, pt.ThroughputPerGuest)
			res.Points = append(res.Points, pt)
		}
		out = append(out, res)
	}
	return out, nil
}

// FleetGuestWorkload builds the open-loop workload configuration for guest
// guestIndex of the given app image: the benign request mix from
// exploit.Benign and — for guest 0 when attackEvery > 0 — exploit variants
// injected every attackEvery-th request, prebuilt so the generator callback
// cannot fail mid-workload. Shared by RunFleetOverheadSweep and sweeperd's
// -rate mode.
func FleetGuestWorkload(spec *apps.Spec, guestIndex int, rate float64, requests, attackEvery int) (core.WorkloadConfig, error) {
	appName := spec.Name
	cfg := core.WorkloadConfig{
		TargetReqPerSec: rate,
		Requests:        requests,
		Benign:          func(j int) []byte { return exploit.Benign(appName, j) },
		Source:          "loadgen",
	}
	if attackEvery > 0 && guestIndex == 0 {
		// Injections land at request indices attackEvery-1, 2*attackEvery-1,
		// ...: exactly requests/attackEvery of them.
		var variants [][]byte
		for k := 0; k < requests/attackEvery; k++ {
			payload, err := exploit.ExploitVariant(spec, k)
			if err != nil {
				return core.WorkloadConfig{}, err
			}
			variants = append(variants, payload)
		}
		if len(variants) > 0 {
			cfg.AttackEvery = attackEvery
			cfg.Attack = func(k int) []byte { return variants[k%len(variants)] }
		}
	}
	return cfg, nil
}

// runFleetPoint stands up one fleet of wl.GuestsPerApp guests of the named
// app at the given checkpoint interval, runs every generator to completion,
// and aggregates the per-guest rates and checkpoint byte stats.
func runFleetPoint(app string, wl FleetWorkload, intervalMs uint64) (FleetSweepPoint, error) {
	pt := FleetSweepPoint{IntervalMs: intervalMs}
	spec, err := apps.ByName(app)
	if err != nil {
		return pt, err
	}
	fleet := core.NewFleet()
	guests := make([]*core.Guest, 0, wl.GuestsPerApp)
	for i := 0; i < wl.GuestsPerApp; i++ {
		cfg := core.DefaultConfig()
		cfg.CheckpointIntervalMs = intervalMs
		// Every guest gets its own randomised layout, like distinct hosts.
		cfg.ASLRSeed = 0x5eed + int64(i)*7919
		g, err := fleet.AddGuest(fmt.Sprintf("%s-%d", app, i), spec.Name, spec.Image, spec.Options, cfg)
		if err != nil {
			return pt, err
		}
		wcfg, err := FleetGuestWorkload(spec, i, wl.TargetReqPerSec, wl.RequestsPerGuest, wl.AttackEvery)
		if err != nil {
			return pt, err
		}
		if err := g.SetWorkload(wcfg); err != nil {
			return pt, err
		}
		guests = append(guests, g)
	}
	fleet.Start()
	fleet.Drain()
	fleet.Stop()

	for _, g := range guests {
		if err := g.ServeError(); err != nil {
			return pt, fmt.Errorf("experiments: fleet sweep %s @%dms: %w", g.Name(), intervalMs, err)
		}
		st, _ := fleet.Metrics().Guest(g.Name())
		if st.Halted {
			return pt, fmt.Errorf("experiments: fleet sweep %s @%dms: guest halted", g.Name(), intervalMs)
		}
		pt.OfferedPerGuest += st.OfferedReqPerSec
		pt.ThroughputPerGuest += st.CompletedReqPerSec
		pt.AttacksHandled += st.AttacksHandled
		pt.AntibodiesGenerated += st.AntibodiesGenerated
		captured, full := g.Sweeper().Checkpoints().ByteStats()
		pt.CapturedBytes += captured
		pt.FullScanBytes += full
	}
	n := float64(len(guests))
	pt.OfferedPerGuest /= n
	pt.ThroughputPerGuest /= n
	return pt, nil
}

// SliceFallbackComparison measures the slicing analyzer's full-slice
// fallback path (only slicing configured, so neither membug nor taint
// implicates anything) on the real Squid exploit, with and without the
// control-dependence prune: the pruned run is the production default, the
// forced run registers slicing.Analyzer{ForceControlDeps: true} — the
// pre-prune behaviour — under an otherwise identical configuration.
func SliceFallbackComparison() (pruned, forced *slicing.Result, err error) {
	runOne := func(force bool) (*slicing.Result, error) {
		run, err := RunDefense("squid", 8, 8, func(c *core.Config) {
			c.Analyses = []string{slicing.AnalyzerName}
			if force {
				reg := analysis.NewRegistry()
				if err := reg.Register(slicing.Analyzer{ForceControlDeps: true}); err != nil {
					panic(err) // unreachable: one registration in a fresh registry
				}
				c.Registry = reg
			}
		})
		if err != nil {
			return nil, err
		}
		res, ok := run.Report.FindingFor(slicing.AnalyzerName).(*slicing.Result)
		if !ok {
			return nil, fmt.Errorf("experiments: slicing produced no result (error: %q)", run.Report.ErrorFor(slicing.AnalyzerName))
		}
		return res, nil
	}
	if pruned, err = runOne(false); err != nil {
		return nil, nil, err
	}
	if forced, err = runOne(true); err != nil {
		return nil, nil, err
	}
	return pruned, forced, nil
}
