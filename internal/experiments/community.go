package experiments

import (
	"math"

	"sweeper/internal/epidemic"
)

// FigureSeries is one γ-curve of Figures 6-8: infection ratio as a function
// of the deployment (producer) ratio.
type FigureSeries struct {
	Gamma  float64
	Points []epidemic.SweepPoint
}

// communityFigure evaluates the SI model over the figure's grid.
func communityFigure(beta, rho float64, alphas []float64) []FigureSeries {
	var out []FigureSeries
	for _, gamma := range epidemic.StandardGammas() {
		fs := FigureSeries{Gamma: gamma}
		for _, alpha := range alphas {
			fs.Points = append(fs.Points, epidemic.SweepPoint{
				Alpha:          alpha,
				Gamma:          gamma,
				InfectionRatio: epidemic.InfectionRatio(beta, 100000, alpha, gamma, rho),
			})
		}
		out = append(out, fs)
	}
	return out
}

// Figure6 reproduces Figure 6: Sweeper community defence against Slammer
// (β = 0.1, N = 100000, no proactive protection).
func Figure6() []FigureSeries {
	return communityFigure(0.1, 1.0, epidemic.Figure6Alphas())
}

// Figure7 reproduces Figure 7: hit-list worm with β = 1000 and proactive
// protection ρ = 2^-12.
func Figure7() []FigureSeries {
	return communityFigure(1000, epidemic.DefaultRho, epidemic.Figure78Alphas())
}

// Figure8 reproduces Figure 8: hit-list worm with β = 4000 and proactive
// protection ρ = 2^-12.
func Figure8() []FigureSeries {
	return communityFigure(4000, epidemic.DefaultRho, epidemic.Figure78Alphas())
}

// ProactiveAblation compares the hit-list outcome with and without proactive
// probabilistic protection (ρ = 2^-12 vs ρ = 1), quantifying the paper's
// claim that the reactive antibody pipeline alone cannot stop a hit-list worm
// but the combination can.
type ProactiveAblationRow struct {
	Beta             float64
	Gamma            float64
	Alpha            float64
	WithProactive    float64
	WithoutProactive float64
}

// ProactiveAblation evaluates the ablation over a small grid.
func ProactiveAblation(beta float64) []ProactiveAblationRow {
	var rows []ProactiveAblationRow
	for _, gamma := range []float64{5, 10, 30} {
		for _, alpha := range []float64{0.01, 0.001, 0.0001} {
			rows = append(rows, ProactiveAblationRow{
				Beta:             beta,
				Gamma:            gamma,
				Alpha:            alpha,
				WithProactive:    epidemic.InfectionRatio(beta, 100000, alpha, gamma, epidemic.DefaultRho),
				WithoutProactive: epidemic.InfectionRatio(beta, 100000, alpha, gamma, 1.0),
			})
		}
	}
	return rows
}

// ResponseTimeAblation quantifies the cost of waiting for better antibodies:
// distributing the initial VSEF immediately (small γ) versus waiting for the
// refined VSEF (γ grows by the memory-bug analysis time), the trade-off the
// paper discusses under Table 3.
type ResponseTimeAblationRow struct {
	Beta         float64
	Alpha        float64
	GammaInitial float64
	GammaRefined float64
	RatioInitial float64
	RatioRefined float64
}

// ResponseTimeAblation compares infection ratios for the two dissemination
// policies. extraSeconds is the additional analysis time before the refined
// antibody exists (the paper measured about 14 s for Apache and 30 s for the
// Squid memory-bug step).
func ResponseTimeAblation(beta float64, extraSeconds float64) []ResponseTimeAblationRow {
	var rows []ResponseTimeAblationRow
	for _, alpha := range []float64{0.01, 0.001, 0.0001} {
		gi, gr := 5.0, 5.0+extraSeconds
		rows = append(rows, ResponseTimeAblationRow{
			Beta:         beta,
			Alpha:        alpha,
			GammaInitial: gi,
			GammaRefined: gr,
			RatioInitial: epidemic.InfectionRatio(beta, 100000, alpha, gi, epidemic.DefaultRho),
			RatioRefined: epidemic.InfectionRatio(beta, 100000, alpha, gr, epidemic.DefaultRho),
		})
	}
	return rows
}

// AgentCrossCheckRow compares the ODE model against the agent-based
// simulation for one configuration.
type AgentCrossCheckRow struct {
	Beta       float64
	Alpha      float64
	Gamma      float64
	Rho        float64
	ModelRatio float64
	AgentRatio float64
}

// AgentCrossCheck validates the differential-equation model against the
// independent agent-based simulator on a few representative configurations.
func AgentCrossCheck(n int, runs int) ([]AgentCrossCheckRow, error) {
	if n <= 0 {
		n = 20000
	}
	configs := []struct {
		beta, alpha, gamma, rho float64
	}{
		{0.1, 0.01, 20, 1.0},
		{0.1, 0.001, 10, 1.0},
		{1000, 0.001, 10, epidemic.DefaultRho},
		{1000, 0.0001, 30, epidemic.DefaultRho},
	}
	var rows []AgentCrossCheckRow
	for _, c := range configs {
		model := epidemic.InfectionRatio(c.beta, float64(n), c.alpha, c.gamma, c.rho)
		agent, _, err := epidemic.SimulateAgentsMean(epidemic.AgentParams{
			N:     n,
			Alpha: c.alpha,
			Beta:  c.beta,
			Gamma: c.gamma,
			Rho:   c.rho,
			Seed:  1,
		}, runs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AgentCrossCheckRow{
			Beta:       c.beta,
			Alpha:      c.alpha,
			Gamma:      c.gamma,
			Rho:        c.rho,
			ModelRatio: model,
			AgentRatio: agent,
		})
	}
	return rows, nil
}

// AbstractContainmentClaim evaluates the abstract's headline claim: "for a
// hit-list worm otherwise capable of infecting all vulnerable hosts in under
// a second, Sweeper contains the extent of infection to under 5%". It returns
// the infection ratio of an unimpeded hit-list worm after one second and the
// contained ratio under Sweeper with proactive protection and a 5-second
// response time.
func AbstractContainmentClaim() (unimpededAfter1s, containedRatio float64) {
	// Unimpeded spread follows the closed-form logistic solution of the SI
	// model: I(t) = N·I0·e^{βt} / (N + I0·(e^{βt}-1)).
	const beta, n, i0, t = 1000.0, 100000.0, 1.0, 1.0
	unimpededAfter1s = 1.0 / (1.0 + (n/i0-1.0)*math.Exp(-beta*t))
	containedRatio = epidemic.InfectionRatio(1000, 100000, 0.001, 5, epidemic.DefaultRho)
	return unimpededAfter1s, containedRatio
}
