package experiments

import (
	"testing"
)

// TestCrashRecoverySmoke is the durability acceptance check, sized to the
// paper's community scale and run in the -short CI lane: one hundred durable
// in-process daemons converge on an attack wave, a seeded 20% of them are
// hard-stopped with crash semantics (WAL detached unsynced, no drain), a
// second wave lands on the survivors, and the crashed daemons restart from
// disk. The community must retain (nearly) every antibody across the crash,
// every restarted guest must come back warm with its filters reinstalled
// before serving, and reconvergence must cost no more than twice the
// no-crash baseline.
func TestCrashRecoverySmoke(t *testing.T) {
	cfg := CrashRecoveryConfig{
		Community:     100,
		Alpha:         0.05,
		CrashFraction: 0.2,
		Seed:          7,
		Root:          t.TempDir(),
	}
	res, err := RunCrashRecovery(cfg)
	if err != nil {
		t.Fatalf("RunCrashRecovery: %v", err)
	}
	t.Logf("N=%d producers=%d crashed=%d (producers %d) baseline=%.1fms reconverge=%.1fms "+
		"warm-restart mean=%.1fms max=%.1fms retained=%.1f%% warm=%d cold=%d immune=%d/%d "+
		"peer-down=%d peer-recovered=%d antibodies=%d converged=%v elapsed=%s",
		res.N, res.Producers, res.Crashed, res.CrashedProducers,
		res.BaselineConvergeMs, res.CrashReconvergeMs,
		res.WarmRestartMsMean, res.WarmRestartMsMax,
		res.AntibodiesRetainedPct, res.WarmRestarts, res.ColdFallbacks,
		res.RestartedImmune, res.Crashed, res.PeerDown, res.PeerRecovered,
		res.AntibodiesTotal, res.Converged, res.Elapsed)

	if res.Crashed < res.N/10 {
		t.Fatalf("crashed only %d of %d daemons; the fault injection did not bite", res.Crashed, res.N)
	}
	// The durability floor: at least 95% of the antibodies present at the
	// moment of the crash must be back after the restart, before any
	// federation traffic. (WAL appends are unbuffered, so an in-process
	// crash should in fact lose nothing.)
	if res.AntibodiesRetainedPct < 95 {
		t.Fatalf("antibodies retained = %.1f%%, want >= 95%%", res.AntibodiesRetainedPct)
	}
	// Every restarted guest restores from its persisted checkpoint — no cold
	// fallbacks, no guest rebuilt from the program image.
	if res.WarmRestarts != res.Crashed || res.ColdFallbacks != 0 {
		t.Fatalf("warm restarts = %d, cold fallbacks = %d for %d crashed daemons",
			res.WarmRestarts, res.ColdFallbacks, res.Crashed)
	}
	// Filters are reinstalled from the replayed store before the guest takes
	// traffic: every restarted daemon filters the first wave's exploit
	// without re-handling the attack and without asking the federation.
	if res.RestartedImmune != res.Crashed {
		t.Fatalf("only %d of %d restarted daemons filtered the first wave's exploit", res.RestartedImmune, res.Crashed)
	}
	if !res.Converged {
		t.Fatalf("community did not reconverge on %d antibodies after the restarts", res.AntibodiesTotal)
	}
	// Recovering a fifth of the community must not cost more than twice the
	// original no-crash convergence (which includes the attack analysis the
	// restart never repeats).
	if res.CrashReconvergeMs > 2*res.BaselineConvergeMs {
		t.Fatalf("reconvergence took %.1fms, more than 2x the %.1fms no-crash baseline",
			res.CrashReconvergeMs, res.BaselineConvergeMs)
	}
}
