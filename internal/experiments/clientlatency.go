package experiments

import (
	"fmt"
	"sync"
	"time"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
	"sweeper/internal/metrics"
	"sweeper/internal/netproxy"
)

// ClientLatency is the Figure 5 client view measured over real loopback
// sockets: what clients of the protected service observe — p50/p95/p99
// request latency in wall-clock milliseconds — before a worm attack arrives,
// during the window in which Sweeper detects, analyses and recovers from it,
// and after service has resumed with the antibody installed.
type ClientLatency struct {
	// Percentiles of client-observed request latency (request written →
	// response read, over a real TCP connection), per phase.
	BeforeP50Ms, BeforeP95Ms, BeforeP99Ms float64
	DuringP50Ms, DuringP95Ms, DuringP99Ms float64
	AfterP50Ms, AfterP95Ms, AfterP99Ms    float64

	// RecoveryDegradationX is AfterP99Ms / BeforeP99Ms — how much worse the
	// tail is after an absorbed attack than before any attack. The paper's
	// point is that it stays near 1 (the service is intact), versus a
	// restart-based recovery whose clients re-warm a cold cache.
	RecoveryDegradationX float64

	// AttackAbsorbed reports that the exploit connection received
	// StatusAbsorbed (its request was excised and the service survived);
	// RepeatFiltered that an identical second exploit bounced off the
	// generated antibody as StatusFiltered.
	AttackAbsorbed bool
	RepeatFiltered bool

	// Requests counts the benign requests measured per phase; Clients the
	// concurrent connections driving them.
	Requests int
	Clients  int

	// SojournP99Ms is the server-side arrival→completion p99 over the whole
	// run, from the listener's own recorder (the in-daemon view of the same
	// traffic the client percentiles see from outside).
	SojournP99Ms float64
}

// runLatencyPhase drives `perClient` benign requests on each of `clients`
// concurrent connections, timing every request round-trip into rec.
func runLatencyPhase(addr, app string, clients, perClient, seqBase int, rec *metrics.LatencyRecorder) error {
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := netproxy.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				req := exploit.Benign(app, seqBase+i*perClient+j)
				start := time.Now()
				status, _, err := c.Do(req)
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", i, j, err)
					return
				}
				rec.Record(time.Since(start))
				if status != netproxy.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %s", i, j, netproxy.StatusName(status))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// RunClientLatency reproduces the Figure 5 client view over real sockets: a
// fleet guest serves framed TCP requests through its netproxy.Listener while
// loopback clients measure per-request latency before, during and after a
// worm attack that Sweeper absorbs (rollback, culprit excision, antibody
// generation, resumed service — no restart).
func RunClientLatency(appName string) (*ClientLatency, error) {
	const (
		clients   = 4
		perClient = 60
	)
	spec, err := apps.ByName(appName)
	if err != nil {
		return nil, err
	}
	f := core.NewFleet()
	cfg := core.DefaultConfig()
	cfg.ASLRSeed = 1009
	g, err := f.AddGuest(appName+"-front", spec.Name, spec.Image, spec.Options, cfg)
	if err != nil {
		return nil, err
	}
	if err := g.AttachListener("127.0.0.1:0"); err != nil {
		return nil, err
	}
	f.Start()
	defer f.Stop()
	addr := g.ListenAddr()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		return nil, err
	}

	res := &ClientLatency{Requests: clients * perClient, Clients: clients}
	// One recorder spans the whole run; phase percentiles are deltas between
	// snapshots taken at the phase boundaries, so the three phases are views
	// of a single uninterrupted measurement rather than three recorders
	// stitched together.
	rec := metrics.NewLatencyRecorder()

	// Phase 1 — before: steady benign traffic, no attack.
	if err := runLatencyPhase(addr, appName, clients, perClient, 0, rec); err != nil {
		return nil, fmt.Errorf("experiments: client latency before-phase: %w", err)
	}
	beforeMark := rec.Snapshot()

	// Phase 2 — during: the same benign load with the worm firing mid-storm.
	// The attacker's connection blocks until recovery excises its request,
	// so benign requests measured here ride over detection, rollback,
	// analysis and replay.
	attackErr := make(chan error, 1)
	var attackWg sync.WaitGroup
	attackWg.Add(1)
	go func() {
		defer attackWg.Done()
		c, err := netproxy.Dial(addr)
		if err != nil {
			attackErr <- err
			return
		}
		defer c.Close()
		status, _, err := c.Do(payload)
		if err != nil {
			attackErr <- fmt.Errorf("exploit request: %w", err)
			return
		}
		if status == netproxy.StatusAbsorbed {
			res.AttackAbsorbed = true
		}
		status, _, err = c.Do(payload)
		if err != nil {
			attackErr <- fmt.Errorf("repeat exploit request: %w", err)
			return
		}
		if status == netproxy.StatusFiltered {
			res.RepeatFiltered = true
		}
		attackErr <- nil
	}()
	if err := runLatencyPhase(addr, appName, clients, perClient, clients*perClient, rec); err != nil {
		return nil, fmt.Errorf("experiments: client latency during-phase: %w", err)
	}
	attackWg.Wait()
	if err := <-attackErr; err != nil {
		return nil, fmt.Errorf("experiments: client latency attack: %w", err)
	}
	duringMark := rec.Snapshot()

	// Phase 3 — after: recovered service, antibody installed.
	if err := runLatencyPhase(addr, appName, clients, perClient, 2*clients*perClient, rec); err != nil {
		return nil, fmt.Errorf("experiments: client latency after-phase: %w", err)
	}
	afterMark := rec.Snapshot()

	res.BeforeP50Ms, res.BeforeP95Ms, res.BeforeP99Ms = pctMs(beforeMark.Delta(nil))
	res.DuringP50Ms, res.DuringP95Ms, res.DuringP99Ms = pctMs(duringMark.Delta(beforeMark))
	res.AfterP50Ms, res.AfterP95Ms, res.AfterP99Ms = pctMs(afterMark.Delta(duringMark))
	if res.BeforeP99Ms > 0 {
		res.RecoveryDegradationX = res.AfterP99Ms / res.BeforeP99Ms
	}
	res.SojournP99Ms = ms(g.FrontLatency().Quantile(0.99))
	if !res.AttackAbsorbed {
		return nil, fmt.Errorf("experiments: client latency: the exploit was not absorbed (service restart or hang)")
	}
	return res, nil
}

func pctMs(s *metrics.LatencySnapshot) (p50, p95, p99 float64) {
	a, b, c := s.Percentiles()
	return ms(a), ms(b), ms(c)
}
