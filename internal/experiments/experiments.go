// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5) and community-defence analysis (Section 6) against
// the simulated substrate. The cmd/benchtables tool, the top-level benchmark
// suite and EXPERIMENTS.md are all generated from the functions here.
package experiments

import (
	"fmt"
	"time"

	"sweeper/internal/antibody"
	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
	"sweeper/internal/metrics"
	"sweeper/internal/monitor"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Sizes scale the workload-driven experiments. Quick sizes keep the full
// suite runnable in seconds (tests); Paper sizes stretch the runs closer to
// the paper's time scales.
type Sizes struct {
	Figure4Requests  int
	Figure5Requests  int
	Figure5AttackAt  int
	Figure5BucketMs  uint64
	OverheadRequests int
	AgentRuns        int
	AgentN           int
}

// QuickSizes returns sizes suitable for unit tests.
func QuickSizes() Sizes {
	return Sizes{
		Figure4Requests:  300,
		Figure5Requests:  1500,
		Figure5AttackAt:  700,
		Figure5BucketMs:  250,
		OverheadRequests: 400,
		AgentRuns:        3,
		AgentN:           20000,
	}
}

// PaperSizes returns sizes closer to the paper's measurement windows.
func PaperSizes() Sizes {
	return Sizes{
		Figure4Requests:  2000,
		Figure5Requests:  10000,
		Figure5AttackAt:  5500,
		Figure5BucketMs:  1000,
		OverheadRequests: 3000,
		AgentRuns:        5,
		AgentN:           100000,
	}
}

// --- Table 1 ---

// Table1Row is one row of Table 1 (the tested exploits).
type Table1Row struct {
	Name    string
	Program string
	CVE     string
	BugType string
	Threat  string
}

// Table1 returns the four evaluated vulnerabilities.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, s := range apps.All() {
		rows = append(rows, Table1Row{
			Name:    s.Name,
			Program: s.Program,
			CVE:     s.CVE,
			BugType: s.BugType,
			Threat:  s.Threat,
		})
	}
	return rows
}

// --- defence runs shared by Tables 2 and 3 ---

// DefenseRun is the outcome of defending one application against its canned
// exploit under a benign background workload.
type DefenseRun struct {
	App     *apps.Spec
	Sweeper *core.Sweeper
	Report  *core.AttackReport
	// AnalyzerLatencies holds the per-analyzer replay latencies the pipeline
	// observed (Table 3's component diagnosis times, keyed by analyzer).
	AnalyzerLatencies []metrics.AnalyzerLatency
}

// RunDefense protects the named application with Sweeper, drives a benign
// workload around one exploit request, and returns the attack report.
func RunDefense(appName string, benignBefore, benignAfter int, mutate func(*core.Config)) (*DefenseRun, error) {
	spec, err := apps.ByName(appName)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.ASLRSeed = 1234
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.New(spec.Name, spec.Image, spec.Options, cfg)
	if err != nil {
		return nil, err
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < benignBefore; i++ {
		s.Submit(exploit.Benign(appName, i), "client", false)
	}
	s.Submit(payload, "worm", true)
	for i := 0; i < benignAfter; i++ {
		s.Submit(exploit.Benign(appName, 1000+i), "client", false)
	}
	if _, err := s.ServeAll(); err != nil {
		return nil, fmt.Errorf("experiments: defending %s: %w", appName, err)
	}
	if len(s.Attacks()) == 0 {
		return nil, fmt.Errorf("experiments: exploit against %s was not detected", appName)
	}
	// Reports complete asynchronously (the slicing cross-check finishes after
	// recovery); the experiment tables read the deferred fields, so join here.
	s.WaitAnalyses()
	return &DefenseRun{
		App:               spec,
		Sweeper:           s,
		Report:            s.Attacks()[0],
		AnalyzerLatencies: s.AnalyzerLatencies(),
	}, nil
}

// --- Table 2 ---

// Table2Row is one row of Table 2: what each analysis step concluded for one
// exploit, and the VSEFs generated.
type Table2Row struct {
	App             string
	ResultSummary   []string
	MemoryState     string
	MemoryStateVSEF string
	MemoryBug       string
	MemoryBugVSEF   string
	InputTaint      string
	Slicing         string
}

// Table2 runs the defence for each named application and summarises the
// per-step results.
func Table2(appNames []string) ([]Table2Row, []*DefenseRun, error) {
	var rows []Table2Row
	var runs []*DefenseRun
	for _, name := range appNames {
		run, err := RunDefense(name, 8, 8, nil)
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, run)
		r := run.Report
		row := Table2Row{App: name}

		row.ResultSummary = append(row.ResultSummary, fmt.Sprintf("Detected: %s", r.Detection.Reason))
		if r.Recovered {
			row.ResultSummary = append(row.ResultSummary, "Correct VSEFs; recovered without restart")
		}
		if r.CulpritRequestID >= 0 {
			row.ResultSummary = append(row.ResultSummary, "Finds input")
		}

		row.MemoryState = r.CoreDump.Summary()
		if r.InitialAntibody != nil && len(r.InitialAntibody.VSEFs) > 0 {
			row.MemoryStateVSEF = "VSEF: " + r.InitialAntibody.VSEFs[0].Note
		}
		if len(r.MemBugFindings) > 0 {
			row.MemoryBug = r.MemBugFindings[0].Summary()
			if r.RefinedAntibody != nil {
				last := r.RefinedAntibody.VSEFs[len(r.RefinedAntibody.VSEFs)-1]
				row.MemoryBugVSEF = "VSEF: " + last.Note
			}
		} else {
			row.MemoryBug = "No memory bug detected"
		}
		if r.CulpritRequestID >= 0 {
			method := "taint analysis"
			if r.IsolationUsed {
				method = "request isolation"
			}
			preview := r.CulpritPayload
			if len(preview) > 32 {
				preview = preview[:32]
			}
			row.InputTaint = fmt.Sprintf("req#%d via %s: %q...", r.CulpritRequestID, method, string(preview))
		} else {
			row.InputTaint = "input not identified"
		}
		if r.SliceConsistent {
			row.Slicing = fmt.Sprintf("Verifies results (%d dynamic instructions, %d static)", r.SliceNodes, r.SliceInstrs)
		} else {
			row.Slicing = fmt.Sprintf("INCONSISTENT: %v not in slice", r.MissingFromSlice)
		}
		rows = append(rows, row)
	}
	return rows, runs, nil
}

// --- Table 3 ---

// Table3Row is one row of Table 3: analysis times for one application.
type Table3Row struct {
	App                 string
	TimeToFirstVSEF     time.Duration
	TimeToBestVSEF      time.Duration
	InitialAnalysisTime time.Duration
	TotalAnalysisTime   time.Duration
	MemoryState         time.Duration
	MemoryBug           time.Duration
	InputTaint          time.Duration
	Slicing             time.Duration
	RecoveryTime        time.Duration
}

// Table3 measures the analysis pipeline timings for the named applications
// (the paper reports Apache1 and Squid).
func Table3(appNames []string) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range appNames {
		run, err := RunDefense(name, 8, 8, nil)
		if err != nil {
			return nil, err
		}
		r := run.Report
		row := Table3Row{
			App:                 name,
			TimeToFirstVSEF:     r.TimeToFirstVSEF,
			TimeToBestVSEF:      r.TimeToBestVSEF,
			InitialAnalysisTime: r.InitialAnalysisTime,
			TotalAnalysisTime:   r.TotalAnalysisTime,
			RecoveryTime:        r.RecoveryTime,
		}
		for _, st := range r.Steps {
			switch st.Name {
			case "memory-state":
				row.MemoryState = st.Duration
			case "memory-bug":
				row.MemoryBug = st.Duration
			case "input-taint":
				row.InputTaint += st.Duration
			case "input-isolation":
				row.InputTaint += st.Duration
			case "slicing":
				row.Slicing = st.Duration
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Figure 4: checkpoint interval vs overhead ---

// Figure4Point is one point of Figure 4.
type Figure4Point struct {
	IntervalMs uint64
	Throughput float64 // requests per virtual second
	Overhead   float64 // fraction relative to the no-checkpoint baseline
}

// benignThroughput drives `requests` benign Squid requests through a Sweeper
// instance built with the given config mutation and returns the virtual
// throughput.
func benignThroughput(appName string, requests int, mutate func(*core.Config), prepare func(*core.Sweeper) error) (float64, error) {
	spec, err := apps.ByName(appName)
	if err != nil {
		return 0, err
	}
	cfg := core.DefaultConfig()
	cfg.ASLRSeed = 99
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.New(spec.Name, spec.Image, spec.Options, cfg)
	if err != nil {
		return 0, err
	}
	if prepare != nil {
		if err := prepare(s); err != nil {
			return 0, err
		}
	}
	const batch = 100
	for i := 0; i < requests; i += batch {
		n := batch
		if requests-i < n {
			n = requests - i
		}
		for j := 0; j < n; j++ {
			s.Submit(exploit.Benign(appName, i+j), "client", false)
		}
		if _, err := s.ServeAll(); err != nil {
			return 0, err
		}
	}
	return s.Completions().Throughput(), nil
}

// Figure4 sweeps the checkpoint interval and reports throughput overhead
// relative to running with checkpointing disabled, for the Squid benign
// workload (the paper's Figure 4).
func Figure4(intervals []uint64, requests int) ([]Figure4Point, error) {
	return Figure4ForApp("squid", intervals, requests)
}

// Figure4ForApp runs the Figure 4 checkpoint-interval sweep for any of the
// four evaluation applications: benign throughput at each interval against
// the checkpointing-disabled baseline. Overheads are virtual-clock
// quantities, so the sweep is deterministic per app and configuration.
func Figure4ForApp(app string, intervals []uint64, requests int) ([]Figure4Point, error) {
	if len(intervals) == 0 {
		intervals = []uint64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
	}
	baseline, err := benignThroughput(app, requests, func(c *core.Config) {
		c.CheckpointIntervalMs = 1 << 40 // effectively never
	}, nil)
	if err != nil {
		return nil, err
	}
	var out []Figure4Point
	for _, interval := range intervals {
		iv := interval
		tp, err := benignThroughput(app, requests, func(c *core.Config) {
			c.CheckpointIntervalMs = iv
		}, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure4Point{
			IntervalMs: iv,
			Throughput: tp,
			Overhead:   metrics.Overhead(baseline, tp),
		})
	}
	return out, nil
}

// --- §5.3: VSEF overhead ---

// OverheadRow compares the throughput of one monitoring configuration against
// the unprotected baseline. Key is the stable machine-readable identifier of
// the configuration (used for BENCH_<n>.json metric names); Mode is display
// text and may be reworded freely.
type OverheadRow struct {
	Key        string
	Mode       string
	Throughput float64
	Overhead   float64
}

// MonitoringOverhead compares normal-execution overhead across monitoring
// configurations: no protection, Sweeper's lightweight runtime (ASLR +
// checkpoints), Sweeper with one deployed VSEF (the paper's §5.3 vulnerability
// monitoring experiment), and always-on dynamic taint analysis (the
// TaintCheck/Vigilante-style baseline Sweeper argues against).
func MonitoringOverhead(requests int) ([]OverheadRow, error) {
	// Generate a real antibody for Squid first so the VSEF row deploys the
	// genuine article rather than a hand-written probe. As in the paper's
	// §5.3 experiment, what gets deployed for the overhead measurement is the
	// vulnerability-monitoring VSEF (the refined bounds check), not the
	// taint-propagation guard.
	run, err := RunDefense("squid", 4, 4, nil)
	if err != nil {
		return nil, err
	}
	ab := run.Report.RefinedAntibody
	if ab == nil {
		ab = run.Report.InitialAntibody
	}

	baseline, err := benignThroughput("squid", requests, func(c *core.Config) {
		c.CheckpointIntervalMs = 1 << 40
	}, nil)
	if err != nil {
		return nil, err
	}
	rows := []OverheadRow{{Key: "unprotected", Mode: "unprotected", Throughput: baseline, Overhead: 0}}

	sweeperTp, err := benignThroughput("squid", requests, nil, nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, OverheadRow{Key: "sweeper", Mode: "sweeper (ASLR + 200ms checkpoints)", Throughput: sweeperTp, Overhead: metrics.Overhead(baseline, sweeperTp)})

	vsefTp, err := benignThroughput("squid", requests, nil, func(s *core.Sweeper) error {
		_, err := ab.Apply(s.Process(), s.Proxy())
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, OverheadRow{Key: "vsef", Mode: fmt.Sprintf("sweeper + deployed VSEF (%d probes)", vsefProbeCount(ab)), Throughput: vsefTp, Overhead: metrics.Overhead(baseline, vsefTp)})

	taintTp, err := benignThroughput("squid", requests, func(c *core.Config) {
		c.AlwaysOnTaint = true
	}, nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, OverheadRow{Key: "taint_baseline", Mode: "always-on taint analysis (TaintCheck baseline)", Throughput: taintTp, Overhead: metrics.Overhead(baseline, taintTp)})
	return rows, nil
}

func vsefProbeCount(ab *antibody.Antibody) int {
	n := 0
	for _, v := range ab.VSEFs {
		n += v.InstrumentedInstrs()
	}
	return n
}

// --- Figure 5: throughput during a single attack ---

// Figure5Result is the throughput-over-time data for one attack, with and
// without Sweeper recovery (the restart baseline).
type Figure5Result struct {
	BucketMs      uint64
	Sweeper       metrics.Series
	Restart       metrics.Series
	AttackAtMs    uint64
	RecoveryGapMs uint64
	RestartGapMs  uint64
	SweeperServed int
	RestartServed int
}

// RestartPenaltyMs models the paper's observation that restarting Squid takes
// over 5 seconds (plus cache warm-up) during which clients see refused
// connections.
const RestartPenaltyMs = 5000

// Figure5 reproduces Figure 5: client-perceived throughput over time for a
// Squid server that is attacked once, under Sweeper (rollback recovery) and
// under the restart baseline.
func Figure5(totalRequests, attackAt int, bucketMs uint64) (Figure5Result, error) {
	res := Figure5Result{BucketMs: bucketMs}

	// Sweeper run.
	spec, err := apps.ByName("squid")
	if err != nil {
		return res, err
	}
	cfg := core.DefaultConfig()
	cfg.ASLRSeed = 7
	s, err := core.New(spec.Name, spec.Image, spec.Options, cfg)
	if err != nil {
		return res, err
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		return res, err
	}
	const batch = 100
	served := 0
	for i := 0; i < totalRequests; i += batch {
		n := batch
		if totalRequests-i < n {
			n = totalRequests - i
		}
		for j := 0; j < n; j++ {
			idx := i + j
			if idx == attackAt {
				res.AttackAtMs = s.Process().Machine.NowMillis()
				s.Submit(payload, "worm", true)
			}
			s.Submit(exploit.Benign("squid", idx), "client", false)
		}
		if _, err := s.ServeAll(); err != nil {
			return res, err
		}
	}
	served = s.Process().ServedRequests()
	res.Sweeper = s.Completions().ThroughputSeries(bucketMs)
	res.SweeperServed = served
	if len(s.Attacks()) > 0 {
		res.RecoveryGapMs = s.Attacks()[0].RecoveryVirtualMs
	}

	// Restart baseline: same workload, but the attack kills the server and a
	// restart penalty elapses before a fresh instance resumes service.
	restartSeries, restartServed, restartGap, err := restartBaseline(totalRequests, attackAt, bucketMs)
	if err != nil {
		return res, err
	}
	res.Restart = restartSeries
	res.RestartServed = restartServed
	res.RestartGapMs = restartGap
	return res, nil
}

// restartBaseline drives the same workload against an unprotected server
// process (no checkpoints, no analysis, no recovery): when the attack crashes
// it, a fresh instance comes up RestartPenaltyMs of virtual time later, and
// everything the old instance had in flight is lost.
func restartBaseline(totalRequests, attackAt int, bucketMs uint64) (metrics.Series, int, uint64, error) {
	spec, err := apps.ByName("squid")
	if err != nil {
		return nil, 0, 0, err
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		return nil, 0, 0, err
	}
	layout := monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: 7})

	newServer := func() (*netproxy.Proxy, *proc.Process, error) {
		proxy := netproxy.New()
		p, err := proc.New(spec.Name, spec.Image, layout, proxy, spec.Options)
		return proxy, p, err
	}
	proxy, p, err := newServer()
	if err != nil {
		return nil, 0, 0, err
	}

	rec := metrics.NewCompletionRecorder()
	clockBase := uint64(0)
	restartGap := uint64(0)

	for idx := 0; idx < totalRequests; idx++ {
		if idx == attackAt {
			proxy.Submit(payload, "worm", true)
			if !serveOne(p) {
				// Crash: restart after the penalty; queued requests are lost.
				clockBase += p.Machine.NowMillis() + RestartPenaltyMs
				restartGap = RestartPenaltyMs
				proxy, p, err = newServer()
				if err != nil {
					return nil, 0, 0, err
				}
			}
		}
		proxy.Submit(exploit.Benign("squid", idx), "client", false)
		if !serveOne(p) {
			clockBase += p.Machine.NowMillis() + RestartPenaltyMs
			restartGap = RestartPenaltyMs
			proxy, p, err = newServer()
			if err != nil {
				return nil, 0, 0, err
			}
			continue
		}
		rec.Record(clockBase + p.Machine.NowMillis())
	}
	return rec.ThroughputSeries(bucketMs), rec.Count(), restartGap, nil
}

// serveOne runs the process until it blocks for more input; it reports false
// when the process crashed or exited instead.
func serveOne(p *proc.Process) bool {
	stop := p.Run(0)
	return stop.Reason == vm.StopWaitInput
}
