package experiments

import (
	"testing"
)

// TestEpidemicSweepFigures runs the full Figure 6-8 grid on 100-host
// communities and checks the paper's curve shapes against the live system:
// infection falls as the producer fraction α rises (Figure 6), tracks the
// undeployed remainder under partial deployment (Figure 7), and grows with
// the community reaction time γ (Figure 8). Every axis uses common random
// numbers, so the orderings are properties of the parameters, not the seed.
func TestEpidemicSweepFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure grid: TestEpidemicScaleSmoke covers the scale path in -short")
	}
	cfg := DefaultEpidemicSweepConfig()
	cfg.Base.Seed = 7
	res, err := RunEpidemicSweep(cfg)
	if err != nil {
		t.Fatalf("RunEpidemicSweep: %v", err)
	}
	logPoint := func(axis string, p *EpidemicPointResult) {
		t.Logf("%s alpha=%.2f deploy=%.1f gamma=%d: T0=%d final=%d/%d (%.0f%%) model=%.0f%% immune=%d/%d converged=%v elapsed=%s",
			axis, p.Config.Alpha, p.Config.Deploy, p.Config.GammaTicks,
			p.T0, p.FinalInfected, p.N, 100*p.InfectionRatio, 100*p.ModelInfectionRatio,
			p.Immune, p.Protected, p.Converged, p.Elapsed)
	}
	checkPoint := func(axis string, p *EpidemicPointResult) {
		logPoint(axis, p)
		if p.T0 < 0 {
			t.Fatalf("%s: worm never reached a producer", axis)
		}
		if !p.Converged {
			t.Fatalf("%s: stores did not converge", axis)
		}
		if p.Immune != p.Protected {
			t.Fatalf("%s: only %d of %d daemons immune after the response", axis, p.Immune, p.Protected)
		}
	}

	// Figure 6: more producers, earlier response, fewer infected.
	for i, p := range res.Figure6 {
		checkPoint("fig6", p)
		if i > 0 {
			prev := res.Figure6[i-1]
			if p.FinalInfected > prev.FinalInfected {
				t.Errorf("fig6: infection rose from %d to %d as alpha rose %.2f -> %.2f",
					prev.FinalInfected, p.FinalInfected, prev.Config.Alpha, p.Config.Alpha)
			}
			if p.T0 > prev.T0 {
				t.Errorf("fig6: T0 rose from %d to %d as alpha rose %.2f -> %.2f",
					prev.T0, p.T0, prev.Config.Alpha, p.Config.Alpha)
			}
		}
		for j := 1; j < len(p.Series); j++ {
			if p.Series[j].Infected < p.Series[j-1].Infected {
				t.Fatalf("fig6 alpha=%.2f: infection series not monotone at tick %d", p.Config.Alpha, j)
			}
		}
	}

	// Figure 7: the community response cannot reach undeployed hosts — the
	// worm always ends up owning them, and only them (plus what it took from
	// the deployed before the response).
	for i, p := range res.Figure7 {
		checkPoint("fig7", p)
		unprotected := p.N - p.Protected
		if p.FinalInfected < unprotected {
			t.Errorf("fig7 deploy=%.1f: final infected %d below the %d undeployed hosts",
				p.Config.Deploy, p.FinalInfected, unprotected)
		}
		if i > 0 && p.FinalInfected > res.Figure7[i-1].FinalInfected {
			t.Errorf("fig7: infection rose from %d to %d as deployment rose %.1f -> %.1f",
				res.Figure7[i-1].FinalInfected, p.FinalInfected,
				res.Figure7[i-1].Config.Deploy, p.Config.Deploy)
		}
	}

	// Figure 8: the identical outbreak, cut off later and later.
	for i, p := range res.Figure8 {
		checkPoint("fig8", p)
		if i > 0 && p.FinalInfected < res.Figure8[i-1].FinalInfected {
			t.Errorf("fig8: infection fell from %d to %d as gamma rose %d -> %d",
				res.Figure8[i-1].FinalInfected, p.FinalInfected,
				res.Figure8[i-1].Config.GammaTicks, p.Config.GammaTicks)
		}
	}
}

// TestEpidemicScaleSmoke is the production-scale convergence check: one
// hundred real in-process daemons (95 consumers, 5 producers) federated over
// the hub, generator-driven load on every guest, one worm outbreak. It runs
// in the -short CI lane; the shared base-image store is what makes a
// community this size affordable in one test process.
func TestEpidemicScaleSmoke(t *testing.T) {
	cfg := EpidemicPointConfig{
		Community:  100,
		Alpha:      0.05,
		Deploy:     1.0,
		GammaTicks: 8,
		Seed:       7,
	}
	res, err := RunEpidemicPoint(cfg)
	if err != nil {
		t.Fatalf("RunEpidemicPoint: %v", err)
	}
	t.Logf("N=%d protected=%d producers=%d T0=%d infectedAtT0=%d final=%d (%.0f%%) model=%.0f%% ticks=%d "+
		"attacked=%d blocked=%d immune=%d adopted=%d verified=%d rejected=%d regenerated=%d "+
		"antibodies=%d sharedPages=%.3f elapsed=%s",
		res.N, res.Protected, res.Producers, res.T0, res.InfectedAtT0, res.FinalInfected,
		100*res.InfectionRatio, 100*res.ModelInfectionRatio, res.Ticks,
		res.ProducersAttacked, res.BlockedContacts, res.Immune,
		res.Adopted, res.Verified, res.Rejected, res.Regenerated,
		res.AntibodiesTotal, res.SharedPageFraction, res.Elapsed)

	if res.Protected != 100 {
		t.Fatalf("protected = %d, want 100 in-process daemons", res.Protected)
	}
	if res.T0 < 0 {
		t.Fatalf("worm never contacted a producer (T0 = %d)", res.T0)
	}
	if !res.Converged {
		t.Fatalf("stores did not converge on %d antibodies within the timeout", res.AntibodiesTotal)
	}
	if res.ProducersAttacked < 1 {
		t.Fatalf("no producer handled the exploit end to end")
	}
	if res.AntibodiesTotal < 1 {
		t.Fatalf("producers generated no antibodies")
	}
	if res.Immune != res.Protected {
		t.Fatalf("only %d of %d daemons filter the worm after the community response", res.Immune, res.Protected)
	}
	// Every consumer (94 of them after the seed host) verifies and adopts the
	// producers' antibodies; producers other than the generators adopt too.
	if consumers := res.Protected - res.Producers; res.Adopted < consumers {
		t.Fatalf("adoptions = %d, want at least one per consumer (%d)", res.Adopted, consumers)
	}
	if res.Verified < res.Protected-res.ProducersAttacked-res.Producers {
		t.Fatalf("verifications = %d, too few for %d daemons", res.Verified, res.Protected)
	}
	// The community response freezes the infection: with full deployment the
	// worm keeps only what it took before T0+gamma.
	if res.FinalInfected >= res.N {
		t.Fatalf("the whole community was infected despite the response")
	}
	if last := res.Series[len(res.Series)-1]; last.Infected != res.FinalInfected {
		t.Fatalf("series end %d != final infected %d", last.Infected, res.FinalInfected)
	}
	// The memory economy that makes the scale possible: the overwhelming
	// share of the 100 guests' pages must still be the interned base images.
	if res.SharedPageFraction < 0.75 {
		t.Fatalf("shared base pages = %.3f of resident pages, want >= 0.75", res.SharedPageFraction)
	}
}
