// Package epidemic implements Section 6 of the paper: the
// Susceptible-Infected community-defence model of a Sweeper deployment
// (equations 1-4), used to evaluate how a small fraction of Producers
// (hosts running the full Sweeper system) protects Consumers against
// Slammer-class and hit-list worms, with and without proactive probabilistic
// protection (address-space randomisation). An independent agent-based
// simulator in this package cross-checks the differential-equation model.
package epidemic

import (
	"fmt"
	"math"
)

// Params are the community-model parameters (the paper's notation).
type Params struct {
	// Beta is the average contact rate: infection attempts per infected host
	// per second against vulnerable hosts. Slammer: 0.1; hit-list worms:
	// 1000-4000.
	Beta float64
	// N is the number of vulnerable hosts (100000 in the paper).
	N float64
	// Alpha is the fraction of vulnerable hosts that are Producers.
	Alpha float64
	// Gamma is the community response time in seconds: time from the first
	// infection attempt against a Producer until every host has received and
	// installed the antibody (γ = γ1 + γ2).
	Gamma float64
	// Rho is the probability that one infection attempt succeeds against a
	// host with proactive probabilistic protection (1.0 = no proactive
	// protection; the paper uses 2^-12 for address-space randomisation).
	Rho float64

	// I0 is the initial number of infected hosts (default 1).
	I0 float64
	// Dt is the integration step in seconds (0 = automatic).
	Dt float64
	// MaxTime bounds the simulated time in seconds (0 = automatic).
	MaxTime float64
}

// DefaultRho is the ASLR bypass probability used in the paper's hit-list
// analysis.
var DefaultRho = math.Exp2(-12)

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Beta <= 0 || p.N <= 1 || p.Gamma < 0 {
		return fmt.Errorf("epidemic: invalid parameters beta=%g N=%g gamma=%g", p.Beta, p.N, p.Gamma)
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("epidemic: alpha %g out of [0,1]", p.Alpha)
	}
	if p.Rho < 0 || p.Rho > 1 {
		return fmt.Errorf("epidemic: rho %g out of [0,1]", p.Rho)
	}
	return nil
}

// Point is one sample of the propagation time series.
type Point struct {
	Time      float64
	Infected  float64
	Producers float64 // producers contacted by at least one infection attempt
}

// Result is the outcome of one model run.
type Result struct {
	// T0 is the time at which the first Producer has been contacted and the
	// community response clock starts.
	T0 float64
	// InfectedAtT0 is I(T0).
	InfectedAtT0 float64
	// FinalInfected is I(T0+Gamma): the total number of hosts ever infected,
	// since after T0+Gamma every host is immune.
	FinalInfected float64
	// InfectionRatio is FinalInfected / N.
	InfectionRatio float64
	// Saturated reports that the worm infected essentially every non-producer
	// host before the response completed.
	Saturated bool
	// Series is the (optionally recorded) time series.
	Series []Point
}

func (p Params) withDefaults() Params {
	if p.I0 <= 0 {
		p.I0 = 1
	}
	if p.Rho == 0 {
		p.Rho = 1
	}
	growth := p.Beta * p.Rho
	if growth <= 0 {
		growth = p.Beta
	}
	if p.Dt <= 0 {
		p.Dt = math.Min(0.02/growth, 0.05)
		if p.Gamma > 0 {
			p.Dt = math.Min(p.Dt, p.Gamma/200)
		}
		if p.Dt <= 0 || math.IsNaN(p.Dt) {
			p.Dt = 0.001
		}
	}
	if p.MaxTime <= 0 {
		// Long enough for even a slow worm to reach the first producer.
		p.MaxTime = 100.0/growth*math.Log(p.N) + p.Gamma + 10
	}
	return p
}

// derivatives implements equations (1)-(4): with proactive protection the
// infection term is scaled by rho, but contacts against producers (which only
// need to be observed, not succeed) are not.
func derivatives(p Params, I, P float64) (dI, dP float64) {
	susceptible := 1 - p.Alpha - I/p.N
	if susceptible < 0 {
		susceptible = 0
	}
	dI = p.Beta * p.Rho * I * susceptible
	prodRemaining := 0.0
	if p.Alpha > 0 {
		prodRemaining = 1 - P/(p.Alpha*p.N)
		if prodRemaining < 0 {
			prodRemaining = 0
		}
	}
	dP = p.Alpha * p.Beta * I * prodRemaining
	return dI, dP
}

// Simulate integrates the model with classic fourth-order Runge-Kutta until
// the community response completes (T0 + Gamma) and returns the outcome.
// recordSeries controls whether the full time series is kept.
func Simulate(params Params, recordSeries bool) (Result, error) {
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	p := params.withDefaults()

	I, P := p.I0, 0.0
	t := 0.0
	t0 := math.Inf(1)
	var res Result
	maxInfected := (1 - p.Alpha) * p.N

	record := func() {
		if recordSeries {
			res.Series = append(res.Series, Point{Time: t, Infected: I, Producers: P})
		}
	}
	record()

	step := func(dt float64) {
		k1i, k1p := derivatives(p, I, P)
		k2i, k2p := derivatives(p, I+dt/2*k1i, P+dt/2*k1p)
		k3i, k3p := derivatives(p, I+dt/2*k2i, P+dt/2*k2p)
		k4i, k4p := derivatives(p, I+dt*k3i, P+dt*k3p)
		I += dt / 6 * (k1i + 2*k2i + 2*k3i + k4i)
		P += dt / 6 * (k1p + 2*k2p + 2*k3p + k4p)
		if I > maxInfected {
			I = maxInfected
		}
		if p.Alpha > 0 && P > p.Alpha*p.N {
			P = p.Alpha * p.N
		}
		t += dt
	}

	// Phase 1: run until the first producer has been contacted (P >= 1).
	if p.Alpha > 0 {
		for P < 1 && t < p.MaxTime {
			step(p.Dt)
			record()
		}
		if P < 1 {
			// No producer was ever contacted (alpha too small / worm too
			// slow): the worm saturates the susceptible population.
			res.T0 = math.Inf(1)
			res.InfectedAtT0 = I
			res.FinalInfected = maxInfected
			res.InfectionRatio = res.FinalInfected / p.N
			res.Saturated = true
			return res, nil
		}
		t0 = t
	} else {
		// With no producers at all there is no response: total infection.
		res.T0 = math.Inf(1)
		res.FinalInfected = p.N
		res.InfectionRatio = 1
		res.Saturated = true
		return res, nil
	}
	res.T0 = t0
	res.InfectedAtT0 = I

	// Phase 2: the worm keeps spreading for Gamma more seconds while the
	// antibody is generated, disseminated and installed.
	end := t0 + p.Gamma
	for t < end {
		dt := p.Dt
		if t+dt > end {
			dt = end - t
		}
		step(dt)
		record()
	}

	res.FinalInfected = I
	res.InfectionRatio = I / p.N
	res.Saturated = I >= 0.99*maxInfected
	return res, nil
}

// InfectionRatio is a convenience wrapper returning only the infection ratio.
func InfectionRatio(beta, n, alpha, gamma, rho float64) float64 {
	r, err := Simulate(Params{Beta: beta, N: n, Alpha: alpha, Gamma: gamma, Rho: rho}, false)
	if err != nil {
		return math.NaN()
	}
	return r.InfectionRatio
}

// SweepPoint is one cell of a deployment-ratio × response-time sweep.
type SweepPoint struct {
	Alpha          float64
	Gamma          float64
	InfectionRatio float64
}

// DeploymentSweep evaluates the model over a grid of deployment ratios and
// response times (the structure of Figures 6, 7 and 8).
func DeploymentSweep(beta, n, rho float64, alphas, gammas []float64) []SweepPoint {
	var out []SweepPoint
	for _, gamma := range gammas {
		for _, alpha := range alphas {
			out = append(out, SweepPoint{
				Alpha:          alpha,
				Gamma:          gamma,
				InfectionRatio: InfectionRatio(beta, n, alpha, gamma, rho),
			})
		}
	}
	return out
}

// Figure6Alphas are the deployment ratios on the x-axis of Figure 6.
func Figure6Alphas() []float64 { return []float64{0.1, 0.01, 0.005, 0.001, 0.0001} }

// Figure78Alphas are the deployment ratios on the x-axis of Figures 7 and 8.
func Figure78Alphas() []float64 { return []float64{0.5, 0.1, 0.01, 0.001, 0.0001} }

// StandardGammas are the response times plotted in Figures 6-8.
func StandardGammas() []float64 { return []float64{5, 10, 20, 30, 50, 100} }

// SlammerParams returns the observed Slammer outbreak parameters.
func SlammerParams(alpha, gamma float64) Params {
	return Params{Beta: 0.1, N: 100000, Alpha: alpha, Gamma: gamma, Rho: 1}
}

// HitListParams returns hit-list worm parameters with proactive protection.
func HitListParams(beta, alpha, gamma float64) Params {
	return Params{Beta: beta, N: 100000, Alpha: alpha, Gamma: gamma, Rho: DefaultRho}
}
