package epidemic

import (
	"fmt"
	"math"
	"math/rand"
)

// AgentParams configure the discrete-event, agent-based worm simulation used
// to cross-check the differential-equation model. Hosts are explicit: some
// are Producers, the rest Consumers; an infected host makes Beta infection
// attempts per second against uniformly random vulnerable hosts (the hit-list
// assumption — the worm already knows who is vulnerable).
type AgentParams struct {
	N     int     // vulnerable hosts
	Alpha float64 // producer fraction
	Beta  float64 // contact rate per infected host per second
	Gamma float64 // community response time in seconds
	Rho   float64 // per-attempt success probability against protected hosts (1 = unprotected)
	Dt    float64 // simulation step in seconds (0 = automatic)
	Seed  int64   // RNG seed
}

// AgentResult is the outcome of one agent-based run.
type AgentResult struct {
	T0             float64
	Infected       int
	InfectionRatio float64
	Attempts       int64
	Duration       float64
}

type hostState uint8

const (
	hostSusceptible hostState = iota
	hostInfected
	hostImmune
	hostProducer
)

// SimulateAgents runs the agent-based simulation until the community response
// completes (T0 + Gamma) or the worm has nowhere left to spread.
func SimulateAgents(p AgentParams) (AgentResult, error) {
	if p.N <= 1 || p.Beta <= 0 {
		return AgentResult{}, fmt.Errorf("epidemic: invalid agent parameters N=%d beta=%g", p.N, p.Beta)
	}
	if p.Rho <= 0 {
		p.Rho = 1
	}
	if p.Dt <= 0 {
		// Keep the expected number of attempts per infected host per step
		// around one so the discretisation error stays small.
		p.Dt = math.Min(1.0/p.Beta, 0.05)
		if p.Gamma > 0 {
			p.Dt = math.Min(p.Dt, p.Gamma/50)
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))

	hosts := make([]hostState, p.N)
	producers := int(math.Round(p.Alpha * float64(p.N)))
	for i := 0; i < producers; i++ {
		hosts[i] = hostProducer
	}
	// Shuffle producer placement.
	rng.Shuffle(p.N, func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })

	// Patient zero: a random consumer.
	var infected []int
	for {
		h := rng.Intn(p.N)
		if hosts[h] == hostSusceptible {
			hosts[h] = hostInfected
			infected = append(infected, h)
			break
		}
	}

	var res AgentResult
	t := 0.0
	t0 := math.Inf(1)
	perStep := p.Beta * p.Dt

	for {
		// Community response: at T0+Gamma every remaining susceptible host
		// (and every producer) installs the antibody and becomes immune.
		if !math.IsInf(t0, 1) && t >= t0+p.Gamma {
			break
		}
		if len(infected) >= p.N-producers {
			break // nobody left to infect
		}
		// Bound runaway simulations when no producer is ever contacted.
		if math.IsInf(t0, 1) && t > 1e6/p.Beta {
			break
		}

		newInfections := []int{}
		for range infected {
			// Number of attempts this step: floor(perStep) plus a Bernoulli
			// trial for the fractional part.
			attempts := int(perStep)
			if rng.Float64() < perStep-float64(attempts) {
				attempts++
			}
			for a := 0; a < attempts; a++ {
				res.Attempts++
				target := rng.Intn(p.N)
				switch hosts[target] {
				case hostProducer:
					// Any attempt against a producer is detected, analysed
					// and starts the response clock.
					if math.IsInf(t0, 1) {
						t0 = t
					}
				case hostSusceptible:
					if rng.Float64() < p.Rho {
						hosts[target] = hostInfected
						newInfections = append(newInfections, target)
					}
				}
			}
		}
		infected = append(infected, newInfections...)
		t += p.Dt
	}

	res.T0 = t0
	res.Infected = len(infected)
	res.InfectionRatio = float64(len(infected)) / float64(p.N)
	res.Duration = t
	return res, nil
}

// SimulateAgentsMean averages the infection ratio over several seeds.
func SimulateAgentsMean(p AgentParams, runs int) (mean float64, results []AgentResult, err error) {
	if runs <= 0 {
		runs = 1
	}
	sum := 0.0
	for i := 0; i < runs; i++ {
		q := p
		q.Seed = p.Seed + int64(i)*7919
		r, err := SimulateAgents(q)
		if err != nil {
			return 0, nil, err
		}
		results = append(results, r)
		sum += r.InfectionRatio
	}
	return sum / float64(runs), results, nil
}
