package epidemic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Params{Beta: 0.1, N: 1000, Alpha: 0.01, Gamma: 5, Rho: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{Beta: 0, N: 1000, Alpha: 0.01, Gamma: 5, Rho: 1},
		{Beta: 1, N: 0, Alpha: 0.01, Gamma: 5, Rho: 1},
		{Beta: 1, N: 1000, Alpha: 2, Gamma: 5, Rho: 1},
		{Beta: 1, N: 1000, Alpha: 0.1, Gamma: -1, Rho: 1},
		{Beta: 1, N: 1000, Alpha: 0.1, Gamma: 5, Rho: 7},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
		if _, err := Simulate(p, false); err == nil {
			t.Errorf("Simulate accepted bad params %d", i)
		}
	}
}

func TestSlammerReferencePoints(t *testing.T) {
	// Paper: alpha=0.0001, gamma=5s -> about 15% infected.
	r := InfectionRatio(0.1, 100000, 0.0001, 5, 1.0)
	if r < 0.10 || r > 0.25 {
		t.Errorf("Slammer alpha=1e-4 gamma=5: ratio %.3f outside [0.10,0.25]", r)
	}
	// Paper: alpha=0.001, gamma=20s -> about 5% infected.
	r = InfectionRatio(0.1, 100000, 0.001, 20, 1.0)
	if r < 0.02 || r > 0.12 {
		t.Errorf("Slammer alpha=1e-3 gamma=20: ratio %.3f outside [0.02,0.12]", r)
	}
	// Slow response times lose most of the population.
	r = InfectionRatio(0.1, 100000, 0.001, 100, 1.0)
	if r < 0.9 {
		t.Errorf("gamma=100 should approach saturation, got %.3f", r)
	}
}

func TestHitListReferencePoints(t *testing.T) {
	// With proactive protection and a 5 s response, infection is negligible
	// for both hit-list speeds (the paper's "<1%" claim).
	for _, beta := range []float64{1000, 4000} {
		r := InfectionRatio(beta, 100000, 0.0001, 5, DefaultRho)
		if r >= 0.01 {
			t.Errorf("beta=%v gamma=5: ratio %.4f, want < 1%%", beta, r)
		}
	}
	// Large gammas lose the population (the figures' γ=50/γ=100 curves).
	r := InfectionRatio(1000, 100000, 0.0001, 100, DefaultRho)
	if r < 0.5 {
		t.Errorf("beta=1000 gamma=100: ratio %.3f, expected large-scale infection", r)
	}
	// Without proactive protection the hit-list worm wins even with a fast
	// response (the argument for combining reactive and proactive defence).
	r = InfectionRatio(1000, 100000, 0.001, 5, 1.0)
	if r < 0.9 {
		t.Errorf("unprotected hit-list with gamma=5: ratio %.3f, expected saturation", r)
	}
}

func TestMonotonicityInGammaAndAlpha(t *testing.T) {
	// Infection ratio grows with the response time and shrinks with the
	// producer fraction.
	prev := 0.0
	for _, gamma := range []float64{5, 10, 20, 30, 50} {
		r := InfectionRatio(0.1, 100000, 0.001, gamma, 1.0)
		if r+1e-9 < prev {
			t.Errorf("ratio decreased when gamma grew: %.4f -> %.4f", prev, r)
		}
		prev = r
	}
	prevA := 1.1
	for _, alpha := range []float64{0.0001, 0.001, 0.01, 0.1} {
		r := InfectionRatio(0.1, 100000, alpha, 20, 1.0)
		if r > prevA+1e-9 {
			t.Errorf("ratio increased when alpha grew: %.4f -> %.4f", prevA, r)
		}
		prevA = r
	}
}

func TestSimulateDetails(t *testing.T) {
	res, err := Simulate(SlammerParams(0.001, 10), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.T0 <= 0 || math.IsInf(res.T0, 1) {
		t.Errorf("T0 = %v", res.T0)
	}
	if res.InfectedAtT0 < 1 {
		t.Errorf("I(T0) = %v", res.InfectedAtT0)
	}
	if res.FinalInfected < res.InfectedAtT0 {
		t.Error("infection cannot shrink during the response window")
	}
	if len(res.Series) == 0 {
		t.Error("series not recorded")
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Infected+1e-9 < res.Series[i-1].Infected {
			t.Fatal("I(t) must be non-decreasing")
		}
		if res.Series[i].Time <= res.Series[i-1].Time {
			t.Fatal("time must advance")
		}
	}
}

func TestNoProducersMeansTotalInfection(t *testing.T) {
	res, err := Simulate(Params{Beta: 1000, N: 100000, Alpha: 0, Gamma: 5, Rho: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || res.InfectionRatio < 0.999 {
		t.Errorf("no producers should mean total infection, got %.3f", res.InfectionRatio)
	}
}

func TestHelperConstructors(t *testing.T) {
	s := SlammerParams(0.01, 5)
	if s.Beta != 0.1 || s.N != 100000 || s.Rho != 1 {
		t.Errorf("SlammerParams = %+v", s)
	}
	h := HitListParams(4000, 0.001, 10)
	if h.Beta != 4000 || h.Rho != DefaultRho {
		t.Errorf("HitListParams = %+v", h)
	}
	if len(Figure6Alphas()) != 5 || len(Figure78Alphas()) != 5 || len(StandardGammas()) != 6 {
		t.Error("figure axis helpers wrong")
	}
}

func TestDeploymentSweepShape(t *testing.T) {
	pts := DeploymentSweep(0.1, 100000, 1.0, []float64{0.01, 0.001}, []float64{5, 10})
	if len(pts) != 4 {
		t.Fatalf("sweep size = %d", len(pts))
	}
	for _, p := range pts {
		if p.InfectionRatio < 0 || p.InfectionRatio > 1 {
			t.Errorf("ratio out of range: %+v", p)
		}
	}
}

// TestQuickInfectionRatioBounds: for any parameters in range, the infection
// ratio is within [0, 1] and bounded by the non-producer fraction.
func TestQuickInfectionRatioBounds(t *testing.T) {
	prop := func(betaRaw, alphaRaw, gammaRaw, rhoRaw uint16) bool {
		beta := 0.05 + float64(betaRaw%4000)
		alpha := float64(alphaRaw%1000) / 1000.0
		gamma := float64(gammaRaw % 60)
		rho := (float64(rhoRaw%1000) + 1) / 1000.0
		r := InfectionRatio(beta, 50000, alpha, gamma, rho)
		if math.IsNaN(r) {
			return false
		}
		return r >= 0 && r <= 1.0001 && r <= (1-alpha)+0.01
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- agent-based simulator ---

func TestAgentSimulationBasics(t *testing.T) {
	res, err := SimulateAgents(AgentParams{N: 5000, Alpha: 0.01, Beta: 1.0, Gamma: 5, Rho: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected < 1 || res.InfectionRatio <= 0 || res.InfectionRatio > 1 {
		t.Errorf("result %+v", res)
	}
	if res.Attempts == 0 {
		t.Error("no infection attempts recorded")
	}
	if _, err := SimulateAgents(AgentParams{N: 0, Beta: 1}); err == nil {
		t.Error("invalid agent params accepted")
	}
}

func TestAgentSimulationDeterministicPerSeed(t *testing.T) {
	p := AgentParams{N: 3000, Alpha: 0.01, Beta: 2, Gamma: 3, Rho: 1, Seed: 42}
	a, _ := SimulateAgents(p)
	b, _ := SimulateAgents(p)
	if a.Infected != b.Infected || a.T0 != b.T0 {
		t.Error("same seed should reproduce the same outcome")
	}
}

func TestAgentMatchesModelWithinTolerance(t *testing.T) {
	// One Slammer-like configuration: the agent simulation should land in the
	// same ballpark as the ODE model (factor-of-two band).
	model := InfectionRatio(0.1, 20000, 0.01, 20, 1.0)
	agent, _, err := SimulateAgentsMean(AgentParams{N: 20000, Alpha: 0.01, Beta: 0.1, Gamma: 20, Rho: 1, Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The agent simulation is stochastic and discretised; a factor-of-four
	// band around the deterministic model is the sanity bar here.
	lo, hi := model/4, model*4
	if agent < lo || agent > hi {
		t.Errorf("agent ratio %.4f outside [%.4f, %.4f] around model %.4f", agent, lo, hi, model)
	}
}

func TestAgentProactiveProtectionSlowsWorm(t *testing.T) {
	base := AgentParams{N: 10000, Alpha: 0.001, Beta: 1000, Gamma: 5, Seed: 9}
	unprotected := base
	unprotected.Rho = 1
	protected := base
	protected.Rho = DefaultRho
	u, _ := SimulateAgents(unprotected)
	p, _ := SimulateAgents(protected)
	if p.InfectionRatio >= u.InfectionRatio {
		t.Errorf("proactive protection should reduce infection: %.4f vs %.4f", p.InfectionRatio, u.InfectionRatio)
	}
	if u.InfectionRatio < 0.5 {
		t.Errorf("unprotected hit-list should saturate, got %.4f", u.InfectionRatio)
	}
	if p.InfectionRatio > 0.1 {
		t.Errorf("protected hit-list should be contained, got %.4f", p.InfectionRatio)
	}
}
