package coredump_test

import (
	"strings"
	"testing"

	"sweeper/internal/analysis/coredump"
	"sweeper/internal/apps"
	"sweeper/internal/exploit"
	"sweeper/internal/monitor"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// crashApp runs the named app's canned exploit (after a benign request) until
// the lightweight monitor would trip and returns the faulted process.
func crashApp(t *testing.T, name string, layout vm.Layout) (*proc.Process, *vm.StopInfo) {
	t.Helper()
	spec, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	proxy := netproxy.New()
	proxy.Submit(exploit.Benign(name, 0), "client", false)
	proxy.Submit(payload, "worm", true)
	p, err := proc.New(spec.Name, spec.Image, layout, proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	stop := p.Run(0)
	if stop.Reason != vm.StopFault {
		t.Fatalf("%s exploit did not fault: %v", name, stop.Reason)
	}
	return p, stop
}

func TestAnalyzeSquidHeapOverflow(t *testing.T) {
	p, stop := crashApp(t, "squid", vm.DefaultLayout())
	r := coredump.Analyze(p, stop)
	if r.Class != coredump.ClassHeapOverflow {
		t.Errorf("class = %v, want heap overflow", r.Class)
	}
	if r.FaultSym != "strcat" {
		t.Errorf("fault attributed to %q", r.FaultSym)
	}
	if r.CallerSym != "ftpBuildTitleUrl" {
		t.Errorf("caller = %q, want ftpBuildTitleUrl", r.CallerSym)
	}
	if !r.IsWrite {
		t.Error("the faulting access is a write")
	}
	if !strings.Contains(r.Summary(), "strcat") {
		t.Errorf("summary %q", r.Summary())
	}
}

func TestAnalyzeApache1StackSmash(t *testing.T) {
	layout := monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: 11})
	p, stop := crashApp(t, "apache1", layout)
	r := coredump.Analyze(p, stop)
	if r.Class != coredump.ClassStackSmash {
		t.Errorf("class = %v, want stack smashing", r.Class)
	}
	if r.FaultSym != "try_alias_list" {
		t.Errorf("fault in %q, want try_alias_list", r.FaultSym)
	}
	if r.StackConsistent {
		t.Error("the smashed stack should be reported as inconsistent")
	}
	if !strings.Contains(r.Summary(), "stack inconsistent") {
		t.Errorf("summary %q", r.Summary())
	}
}

func TestAnalyzeApache2NullDeref(t *testing.T) {
	p, stop := crashApp(t, "apache2", vm.DefaultLayout())
	r := coredump.Analyze(p, stop)
	if r.Class != coredump.ClassNullDeref || !r.NullDeref {
		t.Errorf("class = %v nullderef=%v", r.Class, r.NullDeref)
	}
	if r.FaultSym != "is_ip" {
		t.Errorf("fault in %q, want is_ip", r.FaultSym)
	}
	if !r.HeapConsistent || !r.StackConsistent {
		t.Error("a NULL dereference leaves heap and stack intact")
	}
}

func TestAnalyzeCVSDoubleFree(t *testing.T) {
	p, stop := crashApp(t, "cvs", vm.DefaultLayout())
	r := coredump.Analyze(p, stop)
	if r.Class != coredump.ClassDoubleFree {
		t.Errorf("class = %v, want double free", r.Class)
	}
	if r.FaultSym != "free" {
		t.Errorf("fault in %q, want the free wrapper", r.FaultSym)
	}
	if r.CallerSym != "dirswitch" {
		t.Errorf("caller = %q, want dirswitch", r.CallerSym)
	}
}

func TestAnalyzeBenignHaltIsUnclassified(t *testing.T) {
	spec, _ := apps.ByName("cvs")
	proxy := netproxy.New()
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	stop := p.Run(5_000) // blocks waiting for input
	r := coredump.Analyze(p, stop)
	if r.Class != coredump.ClassUnknown {
		t.Errorf("class for a non-crash = %v", r.Class)
	}
	if !r.HeapConsistent || !r.StackConsistent {
		t.Error("healthy process should look consistent")
	}
}

func TestAnalyzeViolationStops(t *testing.T) {
	p, _ := crashApp(t, "cvs", vm.DefaultLayout())
	stop := &vm.StopInfo{Reason: vm.StopViolation, Violation: &vm.Violation{
		Kind: vm.ViolationDoubleFree, Tool: "test", PC: 3, Sym: "dirswitch", Detail: "x",
	}}
	r := coredump.Analyze(p, stop)
	if r.Class != coredump.ClassDoubleFree {
		t.Errorf("violation classification = %v", r.Class)
	}
	stop.Violation.Kind = vm.ViolationStackSmash
	if r := coredump.Analyze(p, stop); r.Class != coredump.ClassStackSmash {
		t.Errorf("stack violation classification = %v", r.Class)
	}
	stop.Violation.Kind = vm.ViolationNullDeref
	if r := coredump.Analyze(p, stop); r.Class != coredump.ClassNullDeref {
		t.Errorf("null violation classification = %v", r.Class)
	}
}

func TestClassString(t *testing.T) {
	for c := coredump.ClassUnknown; c <= coredump.ClassHeapCorruption; c++ {
		if c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
	if !strings.Contains(coredump.Class(99).String(), "?") {
		t.Error("unknown class should be marked")
	}
}
