// Package coredump implements Sweeper's memory-state analysis: the first,
// fastest analysis step, which inspects the faulted process image (registers,
// stack, heap metadata) without any re-execution. It classifies the failure
// and yields the initial VSEF within milliseconds of detection.
package coredump

import (
	"fmt"
	"strings"

	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Class is the memory-state analyzer's classification of the failure.
type Class uint8

// Failure classes.
const (
	ClassUnknown Class = iota
	ClassStackSmash
	ClassControlHijack
	ClassNullDeref
	ClassHeapOverflow
	ClassDoubleFree
	ClassHeapCorruption
)

var classNames = [...]string{
	ClassUnknown:        "unknown",
	ClassStackSmash:     "stack smashing",
	ClassControlHijack:  "control-flow hijack",
	ClassNullDeref:      "NULL pointer dereference",
	ClassHeapOverflow:   "heap buffer overflow",
	ClassDoubleFree:     "double free",
	ClassHeapCorruption: "heap corruption",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// Report is the result of memory-state analysis.
type Report struct {
	Class Class

	// FaultPC/FaultSym locate the instruction at which the lightweight
	// monitor tripped.
	FaultPC   int
	FaultAddr uint32
	FaultSym  string
	IsWrite   bool

	// CallerPC/CallerSym give the calling context of the faulting function
	// when it can be recovered from the stack (e.g. strcat's caller).
	CallerPC  int
	CallerSym string

	StackConsistent bool
	StackDepth      int
	HeapConsistent  bool
	HeapDetail      string
	CorruptChunk    uint32
	NullDeref       bool

	Detail string
}

// Summary returns a one-line description suitable for Table 2.
func (r *Report) Summary() string {
	parts := []string{fmt.Sprintf("Crash at @%d (%s)", r.FaultPC, r.FaultSym)}
	if r.NullDeref {
		parts = append(parts, "accessing NULL pointer")
	}
	if !r.HeapConsistent {
		parts = append(parts, "heap inconsistent")
	}
	if !r.StackConsistent {
		parts = append(parts, "stack inconsistent")
	}
	if r.CallerPC >= 0 {
		parts = append(parts, fmt.Sprintf("called by @%d (%s)", r.CallerPC, r.CallerSym))
	}
	return strings.Join(parts, "; ")
}

// Analyze performs memory-state analysis of a stopped (faulted) process.
// It does not roll back or re-execute anything: it only inspects the image,
// which is why it completes in a few milliseconds.
func Analyze(p *proc.Process, stop *vm.StopInfo) *Report {
	m := p.Machine
	r := &Report{CallerPC: -1, StackConsistent: true, HeapConsistent: true}

	switch {
	case stop.Fault != nil:
		f := stop.Fault
		r.FaultPC = f.PC
		r.FaultAddr = f.Addr
		r.FaultSym = f.Sym
		r.IsWrite = f.IsWrite
		r.Detail = f.Detail
	case stop.Violation != nil:
		v := stop.Violation
		r.FaultPC = v.PC
		r.FaultAddr = v.Addr
		r.FaultSym = v.Sym
		r.Detail = v.Detail
	default:
		r.FaultPC = m.PC
		r.FaultSym = m.SymbolAt(m.PC)
		r.Detail = "no fault information"
	}

	// Recover the calling context: prefer the word at SP (valid for leaf
	// library routines like strcat and the syscall wrappers), falling back to
	// the saved return address in the current frame.
	if callerIdx, ok := returnSiteFrom(m, m.Regs[vm.SP]); ok {
		r.CallerPC = callerIdx
		r.CallerSym = m.SymbolAt(callerIdx)
	} else if callerIdx, ok := returnSiteFrom(m, m.Regs[vm.BP]+4); ok {
		r.CallerPC = callerIdx
		r.CallerSym = m.SymbolAt(callerIdx)
	}

	// Stack consistency: walk the frame-pointer chain.
	r.StackConsistent, r.StackDepth = walkStack(m)

	// Heap consistency: walk the allocator's inline metadata.
	ok, detail, chunk := p.Alloc.CheckConsistency()
	r.HeapConsistent = ok
	r.HeapDetail = detail
	r.CorruptChunk = chunk.Addr

	r.NullDeref = stop.Fault != nil && stop.Fault.Kind == vm.FaultPage && stop.Fault.Addr < vm.PageSize

	r.Class = classify(p, stop, r)
	return r
}

// returnSiteFrom reads a stack word and, if it is a valid code address,
// returns the index of the call instruction that pushed it.
func returnSiteFrom(m *vm.Machine, slot uint32) (int, bool) {
	val, ok := m.Mem.ReadWord(slot)
	if !ok {
		return 0, false
	}
	idx, ok := m.IndexOfAddr(val)
	if !ok || idx == 0 {
		return 0, false
	}
	return idx - 1, true
}

// walkStack follows the saved-BP chain, checking that every frame's saved
// return address points into the code segment and that frames ascend.
func walkStack(m *vm.Machine) (consistent bool, depth int) {
	layout := m.Layout()
	stackLo := layout.StackBase
	stackHi := layout.StackTop()
	bp := m.Regs[vm.BP]
	for i := 0; i < 64; i++ {
		if bp == stackHi {
			return true, depth // reached the initial frame
		}
		if bp < stackLo || bp >= stackHi {
			return false, depth
		}
		savedBP, ok1 := m.Mem.ReadWord(bp)
		retAddr, ok2 := m.Mem.ReadWord(bp + 4)
		if !ok1 || !ok2 {
			return false, depth
		}
		if _, ok := m.IndexOfAddr(retAddr); !ok {
			return false, depth
		}
		if savedBP <= bp {
			return false, depth
		}
		bp = savedBP
		depth++
	}
	return false, depth
}

func classify(p *proc.Process, stop *vm.StopInfo, r *Report) Class {
	if stop.Violation != nil {
		switch stop.Violation.Kind {
		case vm.ViolationStackSmash, vm.ViolationReturnAddress, vm.ViolationCanary:
			return ClassStackSmash
		case vm.ViolationHeapOverflow, vm.ViolationBoundsCheck:
			return ClassHeapOverflow
		case vm.ViolationDoubleFree:
			return ClassDoubleFree
		case vm.ViolationNullDeref:
			return ClassNullDeref
		case vm.ViolationTaintedControl:
			return ClassControlHijack
		}
		return ClassUnknown
	}
	f := stop.Fault
	if f == nil {
		return ClassUnknown
	}
	m := p.Machine
	switch f.Kind {
	case vm.FaultBadPC:
		if m.InstrAt(f.PC).Op == vm.OpRet {
			return ClassStackSmash
		}
		return ClassControlHijack
	case vm.FaultPage:
		if f.Addr < vm.PageSize {
			return ClassNullDeref
		}
		if f.IsWrite && p.Alloc.InHeapRegion(f.Addr) {
			return ClassHeapOverflow
		}
		if f.IsWrite && !r.HeapConsistent {
			return ClassHeapOverflow
		}
		return ClassUnknown
	case vm.FaultHeapCorruption:
		if strings.Contains(f.Detail, "double free") {
			return ClassDoubleFree
		}
		return ClassHeapCorruption
	}
	return ClassUnknown
}
