package slicing

import (
	"fmt"

	"sweeper/internal/analysis"
)

// AnalyzerName is the pipeline name of the backward-slicing analyzer.
const AnalyzerName = "slicing"

// Result is the slicing analyzer's pipeline finding: the consistency
// cross-check of the other analyses ("anything they blame must be in the
// backward slice from the failure").
type Result struct {
	// Slice is the materialised backward slice. It is nil in focused mode,
	// where only the targeted reachability check runs.
	Slice *Slice
	// Nodes and Instrs count the dynamic and static instructions in the
	// slice — or, in focused mode, the ones explored before every implicated
	// instruction was found.
	Nodes  int
	Instrs int
	// Missing lists the implicated static instructions NOT in the slice;
	// Consistent is true when there are none.
	Missing    []int
	Consistent bool
	// Restricted says the replay covered only the culprit request: the fast
	// tier had already identified the attack input, so the dependence tracker
	// skipped the benign requests in the window.
	Restricted bool
	// Focused says the check ran as a targeted backward reachability search
	// (early exit once every implicated instruction was found) instead of
	// materialising the full slice.
	Focused bool
	// ControlPruned says control-dependence fan-out was pruned: no analysis
	// implicated an instruction beyond the memory-state fault PC, so the
	// full-slice fallback recorded data dependences only. The slice from
	// the failure then covers the instructions whose *data* influenced it —
	// the useful diagnostic — instead of ballooning to essentially the whole
	// execution through the every-instruction→last-branch edges.
	ControlPruned bool
	// Recorded counts the dynamic instructions the dependence tracker
	// recorded during the replay (the slice explores a subset of these).
	Recorded int
}

// Analyzer implements analysis.Finding.
func (r *Result) Analyzer() string { return AnalyzerName }

// Summary implements analysis.Finding.
func (r *Result) Summary() string {
	if !r.Consistent {
		return fmt.Sprintf("INCONSISTENT: implicated instructions %v not in the backward slice", r.Missing)
	}
	mode := "full slice"
	if r.Focused {
		mode = "focused check"
	} else if r.ControlPruned {
		mode = "data-only slice"
	}
	return fmt.Sprintf("slice verifies the other analyses (%d dynamic / %d static instructions, %s)", r.Nodes, r.Instrs, mode)
}

// Analyzer adapts dynamic backward slicing to the analysis.Analyzer API. It
// is the most expensive analysis, and it only sanity-checks the others, so it
// runs in the deferred tier — after the antibody has shipped and recovery has
// resumed service. When the fast tier produced both a memory-bug and a taint
// implication (and named the culprit request), the dependence tracker is
// restricted to the culprit's execution and the check runs as a targeted
// reachability search over the implicated instructions, cutting the slicing
// critical path without weakening the cross-check. On the full-slice
// fallback path — taken when nothing beyond the memory-state fault PC was
// implicated (neither membug, taint, nor any custom analyzer) —
// control-dependence fan-out is pruned: with nothing of the fast tier's to
// verify, the every-instruction→last-branch edges only inflate the slice to
// the whole execution, so the fallback records data dependences alone (the
// failure's own instruction, the one implication memory-state analysis
// contributes, is the slice root and stays trivially covered).
type Analyzer struct {
	// ForceControlDeps keeps control-dependence tracking on even on the
	// fallback path — the pre-prune behaviour, retained for the benchmarks
	// that measure what the prune saves.
	ForceControlDeps bool
}

// Name implements analysis.Analyzer.
func (Analyzer) Name() string { return AnalyzerName }

// Cost implements analysis.Analyzer.
func (Analyzer) Cost() analysis.Tier { return analysis.TierDeferred }

// Run implements analysis.Analyzer.
func (a Analyzer) Run(ctx *analysis.Context, sb *analysis.Sandbox) (analysis.Finding, error) {
	focus := ctx.Implicated()
	culprit, haveCulprit := ctx.Culprit()

	// Restrict the replay to the culprit request only when both fast-tier
	// analyses implicated instructions: with a single corroborating analysis
	// the full window is kept, trading time for the stronger check.
	res := &Result{}
	if haveCulprit && ctx.HasImplication("membug") && ctx.HasImplication("taint") {
		var others []int
		for _, id := range sb.Proc.Log.RequestsSince(sb.Proc.Log.Cursor()) {
			if id != culprit {
				others = append(others, id)
			}
		}
		if len(others) > 0 {
			sb.Proc.DropRequests(others...)
			res.Restricted = true
		}
	}

	// The full-slice fallback (no analysis implicated anything) has nothing
	// to verify beyond the failure point itself, which any backward slice
	// contains by construction; recording control dependences there only
	// fans the slice out to essentially the whole execution. Prune them and
	// keep the focused data slice as the diagnostic. The memory-state step's
	// implication — the fault PC, always recorded — does not count against
	// the prune: it is the slice root, covered by any slice. An implication
	// from any real analyzer (membug, taint, or a custom registration) may
	// be reachable only through control flow, so it keeps control deps on.
	res.ControlPruned = !a.ForceControlDeps
	for _, name := range ctx.ImplicatedBy() {
		if name != "coredump" {
			res.ControlPruned = false
			break
		}
	}
	sl := New(Options{IncludeControlDeps: !res.ControlPruned})
	sb.Machine().AttachTool(sl)
	sb.Run()
	res.Recorded = sl.NodeCount()

	if res.Restricted && len(focus) > 0 {
		missing, nodes, instrs := sl.VerifyBackward(focus)
		res.Focused = true
		res.Missing = missing
		res.Nodes = nodes
		res.Instrs = instrs
	} else {
		slice, err := sl.BackwardSliceFromLast()
		if err != nil {
			return nil, err
		}
		res.Slice = slice
		res.Nodes = slice.Size()
		res.Instrs = len(slice.InstrSet)
		res.Missing = slice.Verify(focus...)
	}
	res.Consistent = len(res.Missing) == 0
	return res, nil
}
