package slicing_test

import (
	"testing"

	"sweeper/internal/analysis/slicing"
	"sweeper/internal/apps"
	"sweeper/internal/asm"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// runSliced runs a small standalone program under the slicer.
func runSliced(t *testing.T, opts slicing.Options, build func(b *asm.Builder)) (*slicing.Slicer, *vm.Machine) {
	t.Helper()
	b := asm.New("sliced")
	build(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sl := slicing.New(opts)
	m.AttachTool(sl)
	m.Run(100_000)
	return sl, m
}

func TestBackwardSliceDataDependences(t *testing.T) {
	// r1 = 3       (idx 0)  <- in slice
	// r2 = 4       (idx 1)  <- NOT in slice (never used by r3's chain)
	// r3 = r1      (idx 2)  <- in slice
	// r3 += r1     (idx 3)  <- in slice
	// r4 = r2      (idx 4)  <- not in slice
	// halt         (idx 5)
	sl, _ := runSliced(t, slicing.Options{}, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 3)
		b.MovI(vm.R2, 4)
		b.Mov(vm.R3, vm.R1)
		b.Add(vm.R3, vm.R1)
		b.Mov(vm.R4, vm.R2)
		b.Halt()
	})
	if sl.NodeCount() != 5 { // halt is recorded too? Halt stops before being recorded... it is recorded in BeforeInstr.
		// Both 5 and 6 are acceptable depending on whether halt is recorded;
		// assert at least the data instructions are present.
		if sl.NodeCount() < 5 {
			t.Fatalf("node count = %d", sl.NodeCount())
		}
	}
	seq := sl.LastSeqOf(3) // the add
	slice, err := sl.BackwardSlice(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !slice.Contains(0) || !slice.Contains(2) || !slice.Contains(3) {
		t.Errorf("slice %v missing data dependences", slice.Instrs())
	}
	if slice.Contains(1) || slice.Contains(4) {
		t.Errorf("slice %v contains unrelated instructions", slice.Instrs())
	}
	if missing := slice.Verify(0, 2, 3); len(missing) != 0 {
		t.Errorf("Verify reported %v as missing", missing)
	}
	if missing := slice.Verify(1); len(missing) != 1 {
		t.Error("Verify should flag instruction 1 as outside the slice")
	}
}

func TestBackwardSliceThroughMemory(t *testing.T) {
	// The value flows through a store/load pair on the stack.
	sl, _ := runSliced(t, slicing.Options{}, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 42)   // 0: source
		b.Push(vm.R1)       // 1: store to stack
		b.MovI(vm.R1, 0)    // 2: clobber the register (not a dependence of the load)
		b.Pop(vm.R2)        // 3: load back
		b.Mov(vm.R3, vm.R2) // 4: sink
		b.Halt()
	})
	slice, err := sl.BackwardSlice(sl.LastSeqOf(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{0, 1, 3, 4} {
		if !slice.Contains(want) {
			t.Errorf("slice missing instruction %d: %v", want, slice.Instrs())
		}
	}
}

func TestControlDependenceCapturedWhenEnabled(t *testing.T) {
	build := func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 0) // 0
		b.CmpI(vm.R1, 0) // 1
		b.Jnz("skip")    // 2
		b.MovI(vm.R2, 7) // 3: executed because the branch fell through
		b.Label("skip")
		b.Mov(vm.R3, vm.R2) // 4: sink
		b.Halt()
	}
	with, _ := runSliced(t, slicing.Options{IncludeControlDeps: true}, build)
	slice, err := with.BackwardSlice(with.LastSeqOf(4))
	if err != nil {
		t.Fatal(err)
	}
	if !slice.Contains(2) || !slice.Contains(1) {
		t.Errorf("control dependences missing from slice %v", slice.Instrs())
	}

	without, _ := runSliced(t, slicing.Options{IncludeControlDeps: false}, build)
	slice2, _ := without.BackwardSlice(without.LastSeqOf(4))
	if slice2.Contains(2) {
		t.Errorf("pure data slice should not include the branch: %v", slice2.Instrs())
	}
	if slice2.Size() > slice.Size() {
		t.Error("control-dependence slices must be at least as large as data slices")
	}
}

func TestForwardSlice(t *testing.T) {
	sl, _ := runSliced(t, slicing.Options{}, func(b *asm.Builder) {
		b.Func("main")
		b.MovI(vm.R1, 1)    // 0
		b.Mov(vm.R2, vm.R1) // 1: influenced by 0
		b.MovI(vm.R3, 9)    // 2: independent
		b.Add(vm.R2, vm.R3) // 3: influenced by 0 (through r2) and 2
		b.Halt()
	})
	fwd, err := sl.ForwardSlice(0)
	if err != nil {
		t.Fatal(err)
	}
	if !fwd.Contains(1) || !fwd.Contains(3) {
		t.Errorf("forward slice %v missing influenced instructions", fwd.Instrs())
	}
	if fwd.Contains(2) {
		t.Errorf("forward slice %v contains independent instruction", fwd.Instrs())
	}
}

func TestSliceErrorsAndTruncation(t *testing.T) {
	sl, _ := runSliced(t, slicing.Options{MaxNodes: 3}, func(b *asm.Builder) {
		b.Func("main")
		for i := 0; i < 10; i++ {
			b.Nop()
		}
		b.Halt()
	})
	if !sl.Truncated() {
		t.Error("recording should have hit MaxNodes")
	}
	if sl.NodeCount() != 3 {
		t.Errorf("node count = %d, want 3", sl.NodeCount())
	}
	if _, err := sl.BackwardSlice(999); err == nil {
		t.Error("out-of-range slice should error")
	}
	if _, err := sl.ForwardSlice(-1); err == nil {
		t.Error("negative forward slice should error")
	}
	if sl.LastSeqOf(9999) != -1 {
		t.Error("LastSeqOf for never-executed instruction should be -1")
	}
}

// TestSliceVerifiesSweeperFindings mirrors the paper's use of slicing as a
// sanity check: for the apache1 exploit, the instructions blamed by the other
// tools (the overflowing store in lmatcher and the faulting return) must be
// inside the backward slice from the failure.
func TestSliceVerifiesSweeperFindings(t *testing.T) {
	spec, err := apps.ByName("apache1")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	proxy := netproxy.New()
	proxy.Submit(exploit.Benign("apache1", 0), "client", false)
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatal("warm-up failed")
	}
	snap := p.Snapshot(1)
	proxy.Submit(payload, "worm", true)
	stop := p.Run(0)
	if stop.Reason != vm.StopHalt && stop.Reason != vm.StopFault {
		t.Fatalf("exploit outcome unexpected: %v", stop.Reason)
	}

	p.Rollback(snap, proc.ModeReplay, false)
	sl := slicing.New(slicing.Options{IncludeControlDeps: true})
	p.Machine.AttachTool(sl)
	p.Run(0)
	p.Machine.DetachTool(sl.Name())

	slice, err := sl.BackwardSliceFromLast()
	if err != nil {
		t.Fatal(err)
	}
	smashingStore := spec.Image.Symbols["lmatcher.store"]
	if missing := slice.Verify(smashingStore); len(missing) != 0 {
		t.Errorf("the overflowing store is not in the backward slice")
	}
	if slice.Size() == 0 || len(slice.Instrs()) == 0 {
		t.Error("empty slice")
	}
}
