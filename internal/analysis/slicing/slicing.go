// Package slicing implements dynamic backward slicing: during replay it
// records, for every executed instruction, the dynamic instructions whose
// results it consumed (through registers, memory, condition flags and —
// optionally — control flow). A backward slice from the failure point is the
// set of instructions that influenced it; the paper uses it as a sanity check
// on the other analysis tools (anything they blame must be in the slice) and
// as the most thorough, most expensive analysis step.
package slicing

import (
	"fmt"
	"sort"

	"sweeper/internal/vm"
)

// Node is one dynamic instruction instance.
type Node struct {
	Seq      int   // execution order
	InstrIdx int   // static instruction index
	Deps     []int // sequence numbers of the dynamic instructions it depends on
}

// Options configure the slicer.
type Options struct {
	// IncludeControlDeps adds a dependence from every instruction to the most
	// recently executed branch, approximating control dependence (this is
	// what makes slices complete — and expensive).
	IncludeControlDeps bool
	// MaxNodes bounds the recorded execution to protect the host against
	// runaway replays; 0 means the default.
	MaxNodes int
}

// DefaultMaxNodes bounds the recorded dynamic instruction count.
const DefaultMaxNodes = 2_000_000

// Slicer is the dynamic-slicing tool; attach it with vm.Machine.AttachTool
// before replaying from a checkpoint.
//
// The dependence graph is stored in flat CSR form — node seq i covers static
// instruction instrIdx[i] and depends on deps[depStart[i]:depStart[i+1]] —
// instead of one Node struct with its own Deps slice per dynamic instruction.
// A recorded replay produces millions of nodes, and per-node slice headers
// mean millions of tiny pointer-bearing allocations: the garbage collector
// then competes with the recovered service for CPU (this tool runs in the
// deferred tier, behind live traffic). Three pointer-free int32 slabs record
// the same graph with amortised-constant appends and nothing for the GC to
// scan.
type Slicer struct {
	opts Options

	instrIdx []int32 // static instruction per node, indexed by seq
	depStart []int32 // CSR row offsets into deps; len == len(instrIdx)+1
	deps     []int32 // flattened dependence lists (sequence numbers)

	lastRegWriter   [vm.NumRegs]int32
	lastMemWriter   map[uint32]int32
	lastFlagsWriter int32
	lastBranch      int32

	truncated bool
}

// New returns an empty slicer.
func New(opts Options) *Slicer {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	s := &Slicer{
		opts:            opts,
		depStart:        []int32{0},
		lastMemWriter:   make(map[uint32]int32),
		lastFlagsWriter: -1,
		lastBranch:      -1,
	}
	for i := range s.lastRegWriter {
		s.lastRegWriter[i] = -1
	}
	return s
}

// Name implements vm.Tool.
func (s *Slicer) Name() string { return "analysis.slicing" }

// NodeCount returns the number of dynamic instructions recorded.
func (s *Slicer) NodeCount() int { return len(s.instrIdx) }

// Truncated reports whether recording stopped because MaxNodes was reached.
func (s *Slicer) Truncated() bool { return s.truncated }

// Nodes materialises the recorded dynamic instructions (for tests and
// reports; traversals use the CSR arrays directly).
func (s *Slicer) Nodes() []Node {
	out := make([]Node, len(s.instrIdx))
	for i := range out {
		out[i] = Node{Seq: i, InstrIdx: int(s.instrIdx[i]), Deps: s.nodeDepsInt(i)}
	}
	return out
}

// nodeDeps returns node i's dependence row in the CSR arena.
func (s *Slicer) nodeDeps(i int32) []int32 {
	return s.deps[s.depStart[i]:s.depStart[i+1]]
}

func (s *Slicer) nodeDepsInt(i int) []int {
	row := s.nodeDeps(int32(i))
	if len(row) == 0 {
		return nil
	}
	out := make([]int, len(row))
	for j, d := range row {
		out[j] = int(d)
	}
	return out
}

func (s *Slicer) addDep(d int32) {
	if d >= 0 {
		s.deps = append(s.deps, d)
	}
}

func (s *Slicer) depReg(r vm.Reg) {
	if r < vm.NumRegs {
		s.addDep(s.lastRegWriter[r])
	}
}

func (s *Slicer) depMem(addr uint32, size int) {
	for i := 0; i < size; i++ {
		if w, ok := s.lastMemWriter[addr+uint32(i)]; ok {
			s.addDep(w)
		}
	}
}

func (s *Slicer) writeReg(r vm.Reg, seq int32) {
	if r < vm.NumRegs {
		s.lastRegWriter[r] = seq
	}
}

func (s *Slicer) writeMem(addr uint32, size int, seq int32) {
	for i := 0; i < size; i++ {
		s.lastMemWriter[addr+uint32(i)] = seq
	}
}

// BeforeInstr implements vm.InstrHook: it records the dynamic instruction and
// its dependences. Effective addresses are computed from the pre-execution
// register state.
func (s *Slicer) BeforeInstr(m *vm.Machine, idx int, in *vm.Instr) {
	if len(s.instrIdx) >= s.opts.MaxNodes {
		s.truncated = true
		return
	}
	seq := int32(len(s.instrIdx))

	if s.opts.IncludeControlDeps {
		s.addDep(s.lastBranch)
	}

	switch in.Op {
	case vm.OpNop, vm.OpHalt:

	case vm.OpMovI:
		s.writeReg(in.Rd, seq)
	case vm.OpMov, vm.OpLea:
		s.depReg(in.Rs)
		s.writeReg(in.Rd, seq)

	case vm.OpLoadB, vm.OpLoadW:
		size := 4
		if in.Op == vm.OpLoadB {
			size = 1
		}
		s.depReg(in.Rs)
		s.depMem(m.Regs[in.Rs]+uint32(in.Imm), size)
		s.writeReg(in.Rd, seq)

	case vm.OpStoreB, vm.OpStoreW:
		size := 4
		if in.Op == vm.OpStoreB {
			size = 1
		}
		s.depReg(in.Rd)
		s.depReg(in.Rs)
		s.writeMem(m.Regs[in.Rd]+uint32(in.Imm), size, seq)

	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod, vm.OpAnd, vm.OpOr, vm.OpXor, vm.OpShl, vm.OpShr:
		s.depReg(in.Rd)
		s.depReg(in.Rs)
		s.writeReg(in.Rd, seq)
	case vm.OpAddI, vm.OpSubI, vm.OpMulI, vm.OpDivI, vm.OpModI, vm.OpAndI, vm.OpOrI, vm.OpXorI, vm.OpShlI, vm.OpShrI:
		s.depReg(in.Rd)
		s.writeReg(in.Rd, seq)

	case vm.OpCmp:
		s.depReg(in.Rd)
		s.depReg(in.Rs)
		s.lastFlagsWriter = seq
	case vm.OpCmpI:
		s.depReg(in.Rd)
		s.lastFlagsWriter = seq

	case vm.OpJmp:
		s.lastBranch = seq
	case vm.OpJz, vm.OpJnz, vm.OpJlt, vm.OpJle, vm.OpJgt, vm.OpJge:
		s.addDep(s.lastFlagsWriter)
		s.lastBranch = seq
	case vm.OpJmpReg:
		s.depReg(in.Rd)
		s.lastBranch = seq

	case vm.OpCall:
		s.writeMem(m.Regs[vm.SP]-4, 4, seq)
		s.writeReg(vm.SP, seq)
		s.lastBranch = seq
	case vm.OpCallReg:
		s.depReg(in.Rd)
		s.writeMem(m.Regs[vm.SP]-4, 4, seq)
		s.writeReg(vm.SP, seq)
		s.lastBranch = seq
	case vm.OpRet:
		s.depReg(vm.SP)
		s.depMem(m.Regs[vm.SP], 4)
		s.writeReg(vm.SP, seq)
		s.lastBranch = seq

	case vm.OpPush:
		s.depReg(in.Rd)
		s.depReg(vm.SP)
		s.writeMem(m.Regs[vm.SP]-4, 4, seq)
		s.writeReg(vm.SP, seq)
	case vm.OpPushI:
		s.depReg(vm.SP)
		s.writeMem(m.Regs[vm.SP]-4, 4, seq)
		s.writeReg(vm.SP, seq)
	case vm.OpPop:
		s.depReg(vm.SP)
		s.depMem(m.Regs[vm.SP], 4)
		s.writeReg(in.Rd, seq)
		s.writeReg(vm.SP, seq)

	case vm.OpSyscall:
		// Syscalls read the argument registers and write R0; their memory
		// effects (recv buffers) are treated as fresh definitions by the
		// InputHook path of other tools, so here only register flow is kept.
		s.depReg(vm.R0)
		s.depReg(vm.R1)
		s.depReg(vm.R2)
		s.depReg(vm.R3)
		s.writeReg(vm.R0, seq)
	}

	s.instrIdx = append(s.instrIdx, int32(idx))
	s.depStart = append(s.depStart, int32(len(s.deps)))
}

// Slice is the result of a backward (or forward) slice computation.
type Slice struct {
	// FromSeq is the dynamic instruction the slice was computed from.
	FromSeq int
	// NodeSeqs are the dynamic instructions in the slice.
	NodeSeqs []int
	// InstrSet is the set of static instruction indices covered by the slice.
	InstrSet map[int]bool
}

// Contains reports whether the static instruction idx is in the slice.
func (sl *Slice) Contains(idx int) bool { return sl.InstrSet[idx] }

// Instrs returns the sorted static instruction indices in the slice.
func (sl *Slice) Instrs() []int {
	out := make([]int, 0, len(sl.InstrSet))
	for idx := range sl.InstrSet {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of dynamic instructions in the slice.
func (sl *Slice) Size() int { return len(sl.NodeSeqs) }

// BackwardSlice computes the backward slice from the dynamic instruction with
// the given sequence number.
func (s *Slicer) BackwardSlice(fromSeq int) (*Slice, error) {
	if fromSeq < 0 || fromSeq >= len(s.instrIdx) {
		return nil, fmt.Errorf("slicing: sequence %d out of range (have %d nodes)", fromSeq, len(s.instrIdx))
	}
	visited := make([]bool, len(s.instrIdx))
	queue := []int32{int32(fromSeq)}
	visited[fromSeq] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range s.nodeDeps(cur) {
			if !visited[d] {
				visited[d] = true
				queue = append(queue, d)
			}
		}
	}
	return s.buildSlice(fromSeq, visited), nil
}

// BackwardSliceFromLast computes the backward slice from the most recently
// recorded dynamic instruction (normally the faulting one).
func (s *Slicer) BackwardSliceFromLast() (*Slice, error) {
	return s.BackwardSlice(len(s.instrIdx) - 1)
}

// LastSeqOf returns the sequence number of the most recent dynamic instance
// of the given static instruction, or -1.
func (s *Slicer) LastSeqOf(instrIdx int) int {
	for i := len(s.instrIdx) - 1; i >= 0; i-- {
		if int(s.instrIdx[i]) == instrIdx {
			return i
		}
	}
	return -1
}

// ForwardSlice computes the set of dynamic instructions influenced by the
// given dynamic instruction (the paper mentions this as a possible use of the
// same dependence tree).
func (s *Slicer) ForwardSlice(fromSeq int) (*Slice, error) {
	if fromSeq < 0 || fromSeq >= len(s.instrIdx) {
		return nil, fmt.Errorf("slicing: sequence %d out of range (have %d nodes)", fromSeq, len(s.instrIdx))
	}
	// Build forward adjacency.
	succ := make(map[int32][]int32)
	for seq := range s.instrIdx {
		for _, d := range s.nodeDeps(int32(seq)) {
			succ[d] = append(succ[d], int32(seq))
		}
	}
	visited := make([]bool, len(s.instrIdx))
	visited[fromSeq] = true
	queue := []int32{int32(fromSeq)}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range succ[cur] {
			if !visited[nxt] {
				visited[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	return s.buildSlice(fromSeq, visited), nil
}

// buildSlice materialises the slice from a visited bitmap; ascending seq
// iteration keeps NodeSeqs sorted without a separate sort pass.
func (s *Slicer) buildSlice(fromSeq int, visited []bool) *Slice {
	sl := &Slice{FromSeq: fromSeq, InstrSet: make(map[int]bool)}
	for seq, in := range visited {
		if in {
			sl.NodeSeqs = append(sl.NodeSeqs, seq)
			sl.InstrSet[int(s.instrIdx[seq])] = true
		}
	}
	return sl
}

// Verify checks whether every given static instruction is contained in the
// slice; it returns the ones that are not. The paper uses exactly this check:
// "if they identify an issue which is not in the slice, then they are
// incorrect".
func (sl *Slice) Verify(instrs ...int) (missing []int) {
	for _, idx := range instrs {
		if idx >= 0 && !sl.Contains(idx) {
			missing = append(missing, idx)
		}
	}
	return missing
}

// VerifyBackward answers the consistency cross-check without materialising
// the slice: it explores the dependence graph backward from the most recently
// recorded node (normally the faulting one) and reports which of the given
// static instructions were NOT reached. The search stops as soon as every
// instruction of interest has been found, so when the implicated instructions
// sit near the failure — the common case — only a fraction of the graph is
// visited and no slice node set is allocated. nodesExplored and
// instrsExplored count the dynamic and static instructions visited; on early
// exit they undercount the full slice by construction. Negative instruction
// indices are ignored, like Slice.Verify.
func (s *Slicer) VerifyBackward(instrs []int) (missing []int, nodesExplored, instrsExplored int) {
	want := make(map[int]bool)
	for _, idx := range instrs {
		if idx >= 0 {
			want[idx] = true
		}
	}
	remaining := len(want)
	if len(s.instrIdx) == 0 {
		for idx := range want {
			missing = append(missing, idx)
		}
		sort.Ints(missing)
		return missing, 0, 0
	}

	visited := make([]bool, len(s.instrIdx))
	instrSeen := make(map[int]bool)
	start := int32(len(s.instrIdx) - 1)
	visited[start] = true
	queue := []int32{start}
	nodesExplored = 1
	for len(queue) > 0 && remaining > 0 {
		cur := queue[0]
		queue = queue[1:]
		idx := int(s.instrIdx[cur])
		if !instrSeen[idx] {
			instrSeen[idx] = true
			if want[idx] {
				remaining--
				if remaining == 0 {
					break
				}
			}
		}
		for _, d := range s.nodeDeps(cur) {
			if !visited[d] {
				visited[d] = true
				nodesExplored++
				queue = append(queue, d)
			}
		}
	}
	for idx := range want {
		if !instrSeen[idx] {
			missing = append(missing, idx)
		}
	}
	sort.Ints(missing)
	return missing, nodesExplored, len(instrSeen)
}
