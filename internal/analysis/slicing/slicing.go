// Package slicing implements dynamic backward slicing: during replay it
// records, for every executed instruction, the dynamic instructions whose
// results it consumed (through registers, memory, condition flags and —
// optionally — control flow). A backward slice from the failure point is the
// set of instructions that influenced it; the paper uses it as a sanity check
// on the other analysis tools (anything they blame must be in the slice) and
// as the most thorough, most expensive analysis step.
package slicing

import (
	"fmt"
	"sort"

	"sweeper/internal/vm"
)

// Node is one dynamic instruction instance.
type Node struct {
	Seq      int   // execution order
	InstrIdx int   // static instruction index
	Deps     []int // sequence numbers of the dynamic instructions it depends on
}

// Options configure the slicer.
type Options struct {
	// IncludeControlDeps adds a dependence from every instruction to the most
	// recently executed branch, approximating control dependence (this is
	// what makes slices complete — and expensive).
	IncludeControlDeps bool
	// MaxNodes bounds the recorded execution to protect the host against
	// runaway replays; 0 means the default.
	MaxNodes int
}

// DefaultMaxNodes bounds the recorded dynamic instruction count.
const DefaultMaxNodes = 2_000_000

// Slicer is the dynamic-slicing tool; attach it with vm.Machine.AttachTool
// before replaying from a checkpoint.
type Slicer struct {
	opts Options

	nodes []Node

	lastRegWriter   [vm.NumRegs]int
	lastMemWriter   map[uint32]int
	lastFlagsWriter int
	lastBranch      int

	truncated bool
}

// New returns an empty slicer.
func New(opts Options) *Slicer {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	s := &Slicer{
		opts:            opts,
		lastMemWriter:   make(map[uint32]int),
		lastFlagsWriter: -1,
		lastBranch:      -1,
	}
	for i := range s.lastRegWriter {
		s.lastRegWriter[i] = -1
	}
	return s
}

// Name implements vm.Tool.
func (s *Slicer) Name() string { return "analysis.slicing" }

// NodeCount returns the number of dynamic instructions recorded.
func (s *Slicer) NodeCount() int { return len(s.nodes) }

// Truncated reports whether recording stopped because MaxNodes was reached.
func (s *Slicer) Truncated() bool { return s.truncated }

// Nodes returns the recorded dynamic instructions (for tests and reports).
func (s *Slicer) Nodes() []Node { return s.nodes }

// BeforeInstr implements vm.InstrHook: it records the dynamic instruction and
// its dependences. Effective addresses are computed from the pre-execution
// register state.
func (s *Slicer) BeforeInstr(m *vm.Machine, idx int, in vm.Instr) {
	if len(s.nodes) >= s.opts.MaxNodes {
		s.truncated = true
		return
	}
	seq := len(s.nodes)
	node := Node{Seq: seq, InstrIdx: idx}

	addDep := func(d int) {
		if d >= 0 {
			node.Deps = append(node.Deps, d)
		}
	}
	depReg := func(r vm.Reg) {
		if r < vm.NumRegs {
			addDep(s.lastRegWriter[r])
		}
	}
	depMem := func(addr uint32, size int) {
		for i := 0; i < size; i++ {
			if w, ok := s.lastMemWriter[addr+uint32(i)]; ok {
				addDep(w)
			}
		}
	}
	writeReg := func(r vm.Reg) {
		if r < vm.NumRegs {
			s.lastRegWriter[r] = seq
		}
	}
	writeMem := func(addr uint32, size int) {
		for i := 0; i < size; i++ {
			s.lastMemWriter[addr+uint32(i)] = seq
		}
	}

	if s.opts.IncludeControlDeps {
		addDep(s.lastBranch)
	}

	switch in.Op {
	case vm.OpNop, vm.OpHalt:

	case vm.OpMovI:
		writeReg(in.Rd)
	case vm.OpMov, vm.OpLea:
		depReg(in.Rs)
		writeReg(in.Rd)

	case vm.OpLoadB, vm.OpLoadW:
		size := 4
		if in.Op == vm.OpLoadB {
			size = 1
		}
		depReg(in.Rs)
		depMem(m.Regs[in.Rs]+uint32(in.Imm), size)
		writeReg(in.Rd)

	case vm.OpStoreB, vm.OpStoreW:
		size := 4
		if in.Op == vm.OpStoreB {
			size = 1
		}
		depReg(in.Rd)
		depReg(in.Rs)
		writeMem(m.Regs[in.Rd]+uint32(in.Imm), size)

	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod, vm.OpAnd, vm.OpOr, vm.OpXor, vm.OpShl, vm.OpShr:
		depReg(in.Rd)
		depReg(in.Rs)
		writeReg(in.Rd)
	case vm.OpAddI, vm.OpSubI, vm.OpMulI, vm.OpDivI, vm.OpModI, vm.OpAndI, vm.OpOrI, vm.OpXorI, vm.OpShlI, vm.OpShrI:
		depReg(in.Rd)
		writeReg(in.Rd)

	case vm.OpCmp:
		depReg(in.Rd)
		depReg(in.Rs)
		s.lastFlagsWriter = seq
	case vm.OpCmpI:
		depReg(in.Rd)
		s.lastFlagsWriter = seq

	case vm.OpJmp:
		s.lastBranch = seq
	case vm.OpJz, vm.OpJnz, vm.OpJlt, vm.OpJle, vm.OpJgt, vm.OpJge:
		addDep(s.lastFlagsWriter)
		s.lastBranch = seq
	case vm.OpJmpReg:
		depReg(in.Rd)
		s.lastBranch = seq

	case vm.OpCall:
		writeMem(m.Regs[vm.SP]-4, 4)
		writeReg(vm.SP)
		s.lastBranch = seq
	case vm.OpCallReg:
		depReg(in.Rd)
		writeMem(m.Regs[vm.SP]-4, 4)
		writeReg(vm.SP)
		s.lastBranch = seq
	case vm.OpRet:
		depReg(vm.SP)
		depMem(m.Regs[vm.SP], 4)
		writeReg(vm.SP)
		s.lastBranch = seq

	case vm.OpPush:
		depReg(in.Rd)
		depReg(vm.SP)
		writeMem(m.Regs[vm.SP]-4, 4)
		writeReg(vm.SP)
	case vm.OpPushI:
		depReg(vm.SP)
		writeMem(m.Regs[vm.SP]-4, 4)
		writeReg(vm.SP)
	case vm.OpPop:
		depReg(vm.SP)
		depMem(m.Regs[vm.SP], 4)
		writeReg(in.Rd)
		writeReg(vm.SP)

	case vm.OpSyscall:
		// Syscalls read the argument registers and write R0; their memory
		// effects (recv buffers) are treated as fresh definitions by the
		// InputHook path of other tools, so here only register flow is kept.
		depReg(vm.R0)
		depReg(vm.R1)
		depReg(vm.R2)
		depReg(vm.R3)
		writeReg(vm.R0)
	}

	s.nodes = append(s.nodes, node)
}

// Slice is the result of a backward (or forward) slice computation.
type Slice struct {
	// FromSeq is the dynamic instruction the slice was computed from.
	FromSeq int
	// NodeSeqs are the dynamic instructions in the slice.
	NodeSeqs []int
	// InstrSet is the set of static instruction indices covered by the slice.
	InstrSet map[int]bool
}

// Contains reports whether the static instruction idx is in the slice.
func (sl *Slice) Contains(idx int) bool { return sl.InstrSet[idx] }

// Instrs returns the sorted static instruction indices in the slice.
func (sl *Slice) Instrs() []int {
	out := make([]int, 0, len(sl.InstrSet))
	for idx := range sl.InstrSet {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of dynamic instructions in the slice.
func (sl *Slice) Size() int { return len(sl.NodeSeqs) }

// BackwardSlice computes the backward slice from the dynamic instruction with
// the given sequence number.
func (s *Slicer) BackwardSlice(fromSeq int) (*Slice, error) {
	if fromSeq < 0 || fromSeq >= len(s.nodes) {
		return nil, fmt.Errorf("slicing: sequence %d out of range (have %d nodes)", fromSeq, len(s.nodes))
	}
	visited := make(map[int]bool)
	queue := []int{fromSeq}
	visited[fromSeq] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range s.nodes[cur].Deps {
			if !visited[d] {
				visited[d] = true
				queue = append(queue, d)
			}
		}
	}
	return s.buildSlice(fromSeq, visited), nil
}

// BackwardSliceFromLast computes the backward slice from the most recently
// recorded dynamic instruction (normally the faulting one).
func (s *Slicer) BackwardSliceFromLast() (*Slice, error) {
	return s.BackwardSlice(len(s.nodes) - 1)
}

// LastSeqOf returns the sequence number of the most recent dynamic instance
// of the given static instruction, or -1.
func (s *Slicer) LastSeqOf(instrIdx int) int {
	for i := len(s.nodes) - 1; i >= 0; i-- {
		if s.nodes[i].InstrIdx == instrIdx {
			return i
		}
	}
	return -1
}

// ForwardSlice computes the set of dynamic instructions influenced by the
// given dynamic instruction (the paper mentions this as a possible use of the
// same dependence tree).
func (s *Slicer) ForwardSlice(fromSeq int) (*Slice, error) {
	if fromSeq < 0 || fromSeq >= len(s.nodes) {
		return nil, fmt.Errorf("slicing: sequence %d out of range (have %d nodes)", fromSeq, len(s.nodes))
	}
	// Build forward adjacency.
	succ := make(map[int][]int)
	for _, n := range s.nodes {
		for _, d := range n.Deps {
			succ[d] = append(succ[d], n.Seq)
		}
	}
	visited := map[int]bool{fromSeq: true}
	queue := []int{fromSeq}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range succ[cur] {
			if !visited[nxt] {
				visited[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	return s.buildSlice(fromSeq, visited), nil
}

func (s *Slicer) buildSlice(fromSeq int, visited map[int]bool) *Slice {
	sl := &Slice{FromSeq: fromSeq, InstrSet: make(map[int]bool)}
	for seq := range visited {
		sl.NodeSeqs = append(sl.NodeSeqs, seq)
		sl.InstrSet[s.nodes[seq].InstrIdx] = true
	}
	sort.Ints(sl.NodeSeqs)
	return sl
}

// Verify checks whether every given static instruction is contained in the
// slice; it returns the ones that are not. The paper uses exactly this check:
// "if they identify an issue which is not in the slice, then they are
// incorrect".
func (sl *Slice) Verify(instrs ...int) (missing []int) {
	for _, idx := range instrs {
		if idx >= 0 && !sl.Contains(idx) {
			missing = append(missing, idx)
		}
	}
	return missing
}

// VerifyBackward answers the consistency cross-check without materialising
// the slice: it explores the dependence graph backward from the most recently
// recorded node (normally the faulting one) and reports which of the given
// static instructions were NOT reached. The search stops as soon as every
// instruction of interest has been found, so when the implicated instructions
// sit near the failure — the common case — only a fraction of the graph is
// visited and no slice node set is allocated. nodesExplored and
// instrsExplored count the dynamic and static instructions visited; on early
// exit they undercount the full slice by construction. Negative instruction
// indices are ignored, like Slice.Verify.
func (s *Slicer) VerifyBackward(instrs []int) (missing []int, nodesExplored, instrsExplored int) {
	want := make(map[int]bool)
	for _, idx := range instrs {
		if idx >= 0 {
			want[idx] = true
		}
	}
	remaining := len(want)
	if len(s.nodes) == 0 {
		for idx := range want {
			missing = append(missing, idx)
		}
		sort.Ints(missing)
		return missing, 0, 0
	}

	visited := make([]bool, len(s.nodes))
	instrSeen := make(map[int]bool)
	start := len(s.nodes) - 1
	visited[start] = true
	queue := []int{start}
	nodesExplored = 1
	for len(queue) > 0 && remaining > 0 {
		cur := queue[0]
		queue = queue[1:]
		idx := s.nodes[cur].InstrIdx
		if !instrSeen[idx] {
			instrSeen[idx] = true
			if want[idx] {
				remaining--
				if remaining == 0 {
					break
				}
			}
		}
		for _, d := range s.nodes[cur].Deps {
			if !visited[d] {
				visited[d] = true
				nodesExplored++
				queue = append(queue, d)
			}
		}
	}
	for idx := range want {
		if !instrSeen[idx] {
			missing = append(missing, idx)
		}
	}
	sort.Ints(missing)
	return missing, nodesExplored, len(instrSeen)
}
