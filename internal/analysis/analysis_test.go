package analysis

import (
	"testing"
)

type stubFinding struct{ name string }

func (f stubFinding) Analyzer() string { return f.name }
func (f stubFinding) Summary() string  { return "stub" }

type stubAnalyzer struct {
	name string
	tier Tier
}

func (a stubAnalyzer) Name() string { return a.name }
func (a stubAnalyzer) Cost() Tier   { return a.tier }
func (a stubAnalyzer) Run(ctx *Context, sb *Sandbox) (Finding, error) {
	return stubFinding{name: a.name}, nil
}

func TestRegistryOrderAndDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(stubAnalyzer{name: "b", tier: TierFast}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(stubAnalyzer{name: "a", tier: TierDeferred}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(stubAnalyzer{name: "b", tier: TierFast}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register(stubAnalyzer{name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	got := r.Names()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("Names() = %v, want registration order [b a]", got)
	}
	if a, ok := r.Get("a"); !ok || a.Cost() != TierDeferred {
		t.Errorf("Get(a) = %v, %v", a, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Error("Get(missing) reported ok")
	}
}

func TestRegistryBudgets(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterBudgeted(stubAnalyzer{name: "capped", tier: TierFast}, 1234); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(stubAnalyzer{name: "uncapped", tier: TierFast}); err != nil {
		t.Fatal(err)
	}
	if got := r.Budget("capped"); got != 1234 {
		t.Errorf("Budget(capped) = %d, want 1234", got)
	}
	if got := r.Budget("uncapped"); got != 0 {
		t.Errorf("Budget(uncapped) = %d, want 0 (inherit)", got)
	}
	if err := r.SetBudget("uncapped", 99); err != nil {
		t.Fatal(err)
	}
	if got := r.Budget("uncapped"); got != 99 {
		t.Errorf("Budget(uncapped) after SetBudget = %d, want 99", got)
	}
	if err := r.SetBudget("capped", 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Budget("capped"); got != 0 {
		t.Errorf("Budget(capped) after reset = %d, want 0", got)
	}
	if err := r.SetBudget("missing", 7); err == nil {
		t.Error("SetBudget on unknown analyzer accepted")
	}
	if err := r.RegisterBudgeted(stubAnalyzer{name: "capped"}, 5); err == nil {
		t.Error("duplicate budgeted registration accepted")
	}
}

func TestContextImplicationUnionIsSortedAndDeduplicated(t *testing.T) {
	ctx := NewContext()
	ctx.Implicate("membug", 9, 3, -1)
	ctx.Implicate("taint", 3, 7)
	ctx.Implicate("empty")
	got := ctx.Implicated()
	want := []int{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Implicated() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Implicated() = %v, want %v", got, want)
		}
	}
	by := ctx.ImplicatedBy()
	if len(by) != 2 || by[0] != "membug" || by[1] != "taint" {
		t.Errorf("ImplicatedBy() = %v, want [membug taint]", by)
	}
	if ctx.HasImplication("empty") {
		t.Error("analyzer that implicated nothing reported as implicating")
	}
	if !ctx.HasImplication("membug") {
		t.Error("membug implication lost")
	}
}

func TestContextCulpritFirstSettingWins(t *testing.T) {
	ctx := NewContext()
	if _, ok := ctx.Culprit(); ok {
		t.Fatal("empty context reports a culprit")
	}
	ctx.SetCulprit(5)
	ctx.SetCulprit(9)
	if id, ok := ctx.Culprit(); !ok || id != 5 {
		t.Errorf("Culprit() = %d, %v; want 5, true", id, ok)
	}
}

func TestContextFindings(t *testing.T) {
	ctx := NewContext()
	if ctx.FindingOf("x") != nil {
		t.Fatal("empty context has a finding")
	}
	ctx.AddFinding("x", stubFinding{name: "x"})
	if f := ctx.FindingOf("x"); f == nil || f.Analyzer() != "x" {
		t.Errorf("FindingOf(x) = %v", f)
	}
}

func TestSandboxReleaseIsIdempotent(t *testing.T) {
	released := 0
	sb := NewSandbox(nil, 0, func() { released++ })
	sb.Release()
	sb.Release()
	if released != 1 {
		t.Errorf("release ran %d times, want 1", released)
	}
}

func TestTierString(t *testing.T) {
	if TierFast.String() != "fast" || TierDeferred.String() != "deferred" {
		t.Errorf("tier names wrong: %s / %s", TierFast, TierDeferred)
	}
}
