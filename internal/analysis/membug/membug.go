// Package membug implements Sweeper's dynamic memory-bug detection: a
// heavyweight instrumentation tool attached during replay from a checkpoint.
// It detects stack smashing (writes to live return-address slots), heap
// buffer overflows and dangling accesses (using the allocator's inline
// metadata as red zones), and double frees, attributing each to the exact
// instruction responsible — the information a refined VSEF needs.
package membug

import (
	"fmt"

	"sweeper/internal/heap"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Kind classifies a memory-bug finding.
type Kind uint8

// Finding kinds.
const (
	KindStackSmash Kind = iota
	KindHeapOverflow
	KindDoubleFree
	KindDanglingWrite
	KindDanglingRead
	KindWildFree
)

var kindNames = [...]string{
	KindStackSmash:    "stack smashing",
	KindHeapOverflow:  "heap buffer overflow",
	KindDoubleFree:    "double free",
	KindDanglingWrite: "dangling pointer write",
	KindDanglingRead:  "dangling pointer read",
	KindWildFree:      "free of non-heap pointer",
}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("membug?%d", uint8(k))
}

// Finding is one detected memory bug.
type Finding struct {
	Kind     Kind
	InstrIdx int    // instruction performing the bad access / bad free syscall
	Sym      string // its enclosing function
	Addr     uint32 // the accessed or freed address
	// ChunkAddr is the payload address of the heap chunk involved (the
	// overflowed buffer, or the doubly freed chunk), when known.
	ChunkAddr uint32
	// VictimSym is, for stack smashing, the function whose return address was
	// overwritten.
	VictimSym string
	// CallerIdx is, for free-related findings, the call-site instruction
	// index (the paper's "0x808d7ac (dirswitch) should not double-free");
	// -1 for every other kind.
	CallerIdx int
	Detail    string
}

// Summary returns a one-line description suitable for Table 2.
func (f Finding) Summary() string {
	switch f.Kind {
	case KindStackSmash:
		return fmt.Sprintf("%s by @%d (%s): overwrites return address of %s", f.Kind, f.InstrIdx, f.Sym, f.VictimSym)
	case KindDoubleFree:
		return fmt.Sprintf("%s by @%d (%s) of chunk %#x", f.Kind, f.CallerIdx, f.Detail, f.ChunkAddr)
	default:
		return fmt.Sprintf("%s at @%d (%s) addr=%#x", f.Kind, f.InstrIdx, f.Sym, f.Addr)
	}
}

type frame struct {
	retSlot uint32
	retAddr uint32
	funcIdx int
	funcSym string
}

type chunkInfo struct {
	addr uint32
	size uint32
}

// Detector is the memory-bug detection tool. Attach it to a machine with
// vm.Machine.AttachTool before replaying from a checkpoint.
type Detector struct {
	alloc       *heap.Allocator
	stopOnFirst bool

	frames   []frame
	live     []chunkInfo
	freed    []chunkInfo
	findings []Finding
}

// New creates a detector for the given process. Pre-existing live buffers are
// inferred from the heap image at attach time ("buffers allocated prior to
// the checkpoint are inferred from the memory image at the checkpoint").
// When stopOnFirst is true the detector raises a violation at the first
// finding, which also prevents the offending access from executing.
func New(p *proc.Process, stopOnFirst bool) *Detector {
	d := &Detector{alloc: p.Alloc, stopOnFirst: stopOnFirst}
	for _, c := range p.Alloc.Walk() {
		if c.Corrupt {
			continue
		}
		ci := chunkInfo{addr: c.Addr, size: c.Size}
		if c.Allocated {
			d.live = append(d.live, ci)
		} else {
			d.freed = append(d.freed, ci)
		}
	}
	return d
}

// Name implements vm.Tool.
func (d *Detector) Name() string { return "analysis.membug" }

// Findings returns all findings recorded so far.
func (d *Detector) Findings() []Finding { return d.findings }

// Primary returns the first finding, or nil.
func (d *Detector) Primary() *Finding {
	if len(d.findings) == 0 {
		return nil
	}
	return &d.findings[0]
}

func (d *Detector) record(m *vm.Machine, f Finding, vkind vm.ViolationKind) {
	d.findings = append(d.findings, f)
	if d.stopOnFirst {
		m.RaiseViolation(&vm.Violation{
			Kind:   vkind,
			Tool:   d.Name(),
			PC:     f.InstrIdx,
			PCAddr: m.AddrOfIndex(f.InstrIdx),
			Sym:    f.Sym,
			Addr:   f.Addr,
			Detail: f.Detail,
		})
	}
}

// --- call tracking (vm.CallHook) ---

// OnCall implements vm.CallHook: it records the live return-address slot.
func (d *Detector) OnCall(m *vm.Machine, idx, targetIdx int, retAddr, retSlot uint32) {
	d.frames = append(d.frames, frame{
		retSlot: retSlot,
		retAddr: retAddr,
		funcIdx: targetIdx,
		funcSym: m.SymbolAt(targetIdx),
	})
}

// OnRet implements vm.CallHook: it retires frames as the stack unwinds.
func (d *Detector) OnRet(m *vm.Machine, idx int, retAddr, retSlot uint32) {
	for len(d.frames) > 0 && d.frames[len(d.frames)-1].retSlot < retSlot {
		d.frames = d.frames[:len(d.frames)-1]
	}
	if len(d.frames) > 0 && d.frames[len(d.frames)-1].retSlot == retSlot {
		d.frames = d.frames[:len(d.frames)-1]
	}
}

// --- memory tracking (vm.MemHook) ---

// OnMemWrite implements vm.MemHook: it checks stores against live
// return-address slots and against heap chunk bounds.
func (d *Detector) OnMemWrite(m *vm.Machine, idx int, addr uint32, size int, val uint32) {
	// Stack smashing: a store into any live return-address slot that is not
	// the call instruction's own push.
	for i := len(d.frames) - 1; i >= 0; i-- {
		fr := d.frames[i]
		if addr+uint32(size) > fr.retSlot && addr < fr.retSlot+4 {
			d.record(m, Finding{
				Kind:      KindStackSmash,
				InstrIdx:  idx,
				Sym:       m.SymbolAt(idx),
				Addr:      addr,
				VictimSym: d.victimFor(m, fr),
				CallerIdx: -1,
				Detail:    fmt.Sprintf("store overwrites return address of %s", d.victimFor(m, fr)),
			}, vm.ViolationStackSmash)
			return
		}
	}
	d.checkHeapAccess(m, idx, addr, size, true)
}

// OnMemRead implements vm.MemHook: it checks loads from freed heap chunks.
func (d *Detector) OnMemRead(m *vm.Machine, idx int, addr uint32, size int, val uint32) {
	d.checkHeapAccess(m, idx, addr, size, false)
}

// victimFor names the function whose return address lives in the frame: the
// slot was pushed by the call *into* that function.
func (d *Detector) victimFor(m *vm.Machine, fr frame) string { return fr.funcSym }

func (d *Detector) checkHeapAccess(m *vm.Machine, idx int, addr uint32, size int, isWrite bool) {
	if !d.alloc.InHeapRegion(addr) {
		return
	}
	// Within a live chunk's payload: fine.
	for _, c := range d.live {
		if addr >= c.addr && addr+uint32(size) <= c.addr+c.size {
			return
		}
	}
	// Within a freed chunk's payload: dangling access.
	for _, c := range d.freed {
		if addr >= c.addr && addr+uint32(size) <= c.addr+c.size {
			kind := KindDanglingRead
			vkind := vm.ViolationDanglingPointer
			if isWrite {
				kind = KindDanglingWrite
			}
			d.record(m, Finding{
				Kind:      kind,
				InstrIdx:  idx,
				Sym:       m.SymbolAt(idx),
				Addr:      addr,
				ChunkAddr: c.addr,
				CallerIdx: -1,
				Detail:    "access to freed heap chunk",
			}, vkind)
			return
		}
	}
	if !isWrite {
		// Reads of headers/red zones are what allocators themselves do; only
		// writes outside any payload are treated as overflows.
		return
	}
	// A write inside the heap but outside every payload hits metadata or
	// unallocated space: a heap overflow. Attribute it to the live chunk that
	// ends closest below the address (the buffer being overflowed).
	overflowed := uint32(0)
	var best uint32
	for _, c := range d.live {
		end := c.addr + c.size
		if end <= addr && (overflowed == 0 || end > best) {
			overflowed = c.addr
			best = end
		}
	}
	d.record(m, Finding{
		Kind:      KindHeapOverflow,
		InstrIdx:  idx,
		Sym:       m.SymbolAt(idx),
		Addr:      addr,
		ChunkAddr: overflowed,
		CallerIdx: -1,
		Detail:    "store outside any live heap chunk",
	}, vm.ViolationHeapOverflow)
}

// --- allocation tracking (vm.AllocHook) ---

// OnMalloc implements vm.AllocHook.
func (d *Detector) OnMalloc(m *vm.Machine, idx int, addr uint32, size uint32) {
	if addr == 0 {
		return
	}
	for i, c := range d.freed {
		if c.addr == addr {
			d.freed = append(d.freed[:i], d.freed[i+1:]...)
			break
		}
	}
	d.live = append(d.live, chunkInfo{addr: addr, size: size})
}

// OnFree implements vm.AllocHook: it detects double and wild frees.
func (d *Detector) OnFree(m *vm.Machine, idx int, addr uint32) {
	if addr == 0 {
		return
	}
	caller := callSite(m)
	for i, c := range d.live {
		if c.addr == addr {
			d.live = append(d.live[:i], d.live[i+1:]...)
			d.freed = append(d.freed, c)
			return
		}
	}
	for _, c := range d.freed {
		if c.addr == addr {
			d.record(m, Finding{
				Kind:      KindDoubleFree,
				InstrIdx:  idx,
				Sym:       m.SymbolAt(idx),
				Addr:      addr,
				ChunkAddr: c.addr,
				CallerIdx: caller,
				Detail:    fmt.Sprintf("double free called from %s", m.SymbolAt(caller)),
			}, vm.ViolationDoubleFree)
			return
		}
	}
	d.record(m, Finding{
		Kind:      KindWildFree,
		InstrIdx:  idx,
		Sym:       m.SymbolAt(idx),
		Addr:      addr,
		CallerIdx: caller,
		Detail:    "free of pointer that is not a live chunk",
	}, vm.ViolationDoubleFree)
}

// callSite recovers the instruction index of the call into the current leaf
// routine (the free wrapper) from the word at the top of the stack.
func callSite(m *vm.Machine) int {
	val, ok := m.Mem.ReadWord(m.Regs[vm.SP])
	if !ok {
		return -1
	}
	idx, ok := m.IndexOfAddr(val)
	if !ok || idx == 0 {
		return -1
	}
	return idx - 1
}
