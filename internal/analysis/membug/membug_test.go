package membug_test

import (
	"strings"
	"testing"

	"sweeper/internal/analysis/membug"
	"sweeper/internal/apps"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// replayWithDetector serves a benign request, snapshots, lets the exploit
// crash the app, then rolls back and replays with the memory-bug detector
// attached — the way Sweeper actually uses it.
func replayWithDetector(t *testing.T, app string, stopOnFirst bool) (*membug.Detector, *vm.StopInfo, *proc.Process) {
	t.Helper()
	spec, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	proxy := netproxy.New()
	proxy.Submit(exploit.Benign(app, 0), "client", false)
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("benign warm-up failed: %v", stop.Reason)
	}
	snap := p.Snapshot(1)
	proxy.Submit(payload, "worm", true)
	// At the default layout the apache1 hijack succeeds and exits rather than
	// faulting; either way the attack is in the log and the replay below is
	// what the detector analyses.
	if stop := p.Run(0); stop.Reason != vm.StopFault && stop.Reason != vm.StopHalt {
		t.Fatalf("exploit outcome unexpected: %v", stop.Reason)
	}
	p.Rollback(snap, proc.ModeReplay, false)
	det := membug.New(p, stopOnFirst)
	p.Machine.AttachTool(det)
	stop := p.Run(0)
	p.Machine.DetachTool(det.Name())
	return det, stop, p
}

func TestDetectsSquidHeapOverflow(t *testing.T) {
	det, stop, _ := replayWithDetector(t, "squid", true)
	f := det.Primary()
	if f == nil {
		t.Fatal("no finding")
	}
	if f.Kind != membug.KindHeapOverflow {
		t.Errorf("kind = %v", f.Kind)
	}
	if f.Sym != "strcat" {
		t.Errorf("overflowing store attributed to %q, want strcat", f.Sym)
	}
	if stop.Reason != vm.StopViolation {
		t.Errorf("stop-on-first should raise a violation, got %v", stop.Reason)
	}
	if !strings.Contains(f.Summary(), "heap buffer overflow") {
		t.Errorf("summary %q", f.Summary())
	}
}

func TestDetectsApache1StackSmashAndVictim(t *testing.T) {
	det, stop, _ := replayWithDetector(t, "apache1", true)
	f := det.Primary()
	if f == nil {
		t.Fatal("no finding")
	}
	if f.Kind != membug.KindStackSmash {
		t.Errorf("kind = %v", f.Kind)
	}
	if f.Sym != "lmatcher" {
		t.Errorf("smashing store attributed to %q, want lmatcher", f.Sym)
	}
	if f.VictimSym != "try_alias_list" {
		t.Errorf("victim = %q, want try_alias_list", f.VictimSym)
	}
	if stop.Reason != vm.StopViolation || stop.Violation.Kind != vm.ViolationStackSmash {
		t.Errorf("stop = %v %v", stop.Reason, stop.Violation)
	}
}

func TestDetectsCVSDoubleFreeWithCaller(t *testing.T) {
	det, _, p := replayWithDetector(t, "cvs", true)
	f := det.Primary()
	if f == nil {
		t.Fatal("no finding")
	}
	if f.Kind != membug.KindDoubleFree {
		t.Errorf("kind = %v", f.Kind)
	}
	if f.CallerIdx < 0 {
		t.Fatal("double free has no call site")
	}
	if sym := p.Machine.SymbolAt(f.CallerIdx); sym != "dirswitch" {
		t.Errorf("call site in %q, want dirswitch", sym)
	}
	// The call site is the labelled second free.
	spec, _ := apps.ByName("cvs")
	if want := spec.Image.Symbols["dirswitch.second_free"]; f.CallerIdx != want {
		t.Errorf("call site @%d, want @%d", f.CallerIdx, want)
	}
}

func TestApache2HasNoMemoryBug(t *testing.T) {
	det, stop, _ := replayWithDetector(t, "apache2", true)
	if len(det.Findings()) != 0 {
		t.Errorf("NULL dereference should not be a memory bug finding: %v", det.Findings())
	}
	// The replay still reproduces the fault itself.
	if stop.Reason != vm.StopFault {
		t.Errorf("stop = %v", stop.Reason)
	}
}

func TestBenignTrafficProducesNoFindings(t *testing.T) {
	for _, app := range []string{"squid", "apache1", "apache2", "cvs"} {
		spec, _ := apps.ByName(app)
		proxy := netproxy.New()
		for i := 0; i < 6; i++ {
			proxy.Submit(exploit.Benign(app, i), "client", false)
		}
		p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
		if err != nil {
			t.Fatal(err)
		}
		det := membug.New(p, true)
		p.Machine.AttachTool(det)
		stop := p.Run(0)
		if stop.Reason != vm.StopWaitInput {
			t.Errorf("%s: benign run under membug stopped with %v (%v)", app, stop.Reason, stop.Violation)
		}
		if len(det.Findings()) != 0 {
			t.Errorf("%s: false positives: %v", app, det.Findings())
		}
	}
}

func TestContinueAfterFirstFindingCollectsAll(t *testing.T) {
	det, _, _ := replayWithDetector(t, "squid", false)
	if len(det.Findings()) == 0 {
		t.Fatal("no findings with stopOnFirst disabled")
	}
	// Without stopping, the overflow keeps writing out of bounds, so several
	// findings accumulate and all blame the same store.
	for _, f := range det.Findings() {
		if f.Sym != "strcat" {
			t.Errorf("finding blames %q", f.Sym)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := membug.KindStackSmash; k <= membug.KindWildFree; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.Contains(membug.Kind(99).String(), "?") {
		t.Error("unknown kind should be marked")
	}
}
