package membug

import (
	"sweeper/internal/analysis"
)

// AnalyzerName is the pipeline name of the memory-bug detection analyzer.
const AnalyzerName = "membug"

// Result is the membug analyzer's pipeline finding: every memory bug the
// replay surfaced, with the primary (first) one singled out — that is the one
// a refined VSEF is built from.
type Result struct {
	Findings []Finding
	Primary  *Finding
}

// Analyzer implements analysis.Finding.
func (r *Result) Analyzer() string { return AnalyzerName }

// Summary implements analysis.Finding.
func (r *Result) Summary() string {
	if r.Primary == nil {
		return "no memory bug detected"
	}
	return r.Primary.Summary()
}

// Analyzer adapts the memory-bug detector to the analysis.Analyzer API: it
// replays the attack window under the detector and implicates the faulting
// instruction (and, for frees, the call site) in the shared context so the
// deferred tier can restrict itself to them.
type Analyzer struct{}

// Name implements analysis.Analyzer.
func (Analyzer) Name() string { return AnalyzerName }

// Cost implements analysis.Analyzer: memory-bug detection gates the refined
// antibody, so it runs in the fast tier.
func (Analyzer) Cost() analysis.Tier { return analysis.TierFast }

// Run implements analysis.Analyzer.
func (Analyzer) Run(ctx *analysis.Context, sb *analysis.Sandbox) (analysis.Finding, error) {
	det := New(sb.Proc, true)
	sb.Machine().AttachTool(det)
	sb.Run()
	res := &Result{Findings: det.Findings(), Primary: det.Primary()}
	if len(res.Findings) > 0 {
		f := res.Findings[0]
		instrs := []int{f.InstrIdx}
		if f.CallerIdx >= 0 {
			instrs = append(instrs, f.CallerIdx)
		}
		ctx.Implicate(AnalyzerName, instrs...)
	}
	return res, nil
}
