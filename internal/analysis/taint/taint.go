// Package taint implements dynamic taint analysis in the style of
// TaintCheck: bytes received from the network are tainted with the request
// and offset they came from, taint propagates through data movement and
// arithmetic, and uses of tainted data in sensitive places (return addresses,
// indirect branch targets, arguments to free) are flagged. The tracker also
// attributes hardware faults whose operands are tainted, which is how the
// exploit input is identified for signature generation.
package taint

import (
	"fmt"
	"math/bits"
	"sort"

	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Label identifies the origin of a tainted byte: a request and an offset
// within its payload.
type Label struct {
	RequestID int
	Offset    int
}

// String formats the label.
func (l Label) String() string { return fmt.Sprintf("req#%d+%d", l.RequestID, l.Offset) }

// Finding is one detected misuse of tainted data (or a fault attributable to
// tainted data).
type Finding struct {
	Kind     vm.ViolationKind
	InstrIdx int
	Sym      string
	Label    Label
	Detail   string
}

// Summary returns a one-line description of the finding.
func (f Finding) Summary() string {
	return fmt.Sprintf("%s at @%d (%s), data from %s", f.Kind, f.InstrIdx, f.Sym, f.Label)
}

type regTaint struct {
	tainted bool
	label   Label
}

// taintPage is the page-granular shadow of guest memory taint: a presence
// bitmap plus per-byte labels in lazily-allocated 64-byte lines (each bitmap
// word covers exactly one line). Replacing the former per-byte map keeps
// input labeling (an 8 KiB recv taints thousands of bytes at once) to one
// map lookup per page instead of one map insert per byte, while a sparsely
// tainted page costs one line (1 KiB of labels), not a full page's worth.
type taintPage struct {
	set   [vm.PageSize / 64]uint64
	lines [vm.PageSize / 64]*[64]Label
	n     int // set bits, so empty pages can be dropped
}

func (tp *taintPage) get(off uint32) (Label, bool) {
	if tp.set[off/64]&(1<<(off%64)) == 0 {
		return Label{}, false
	}
	return tp.lines[off/64][off%64], true
}

func (tp *taintPage) put(off uint32, lbl Label) {
	li := off / 64
	if tp.lines[li] == nil {
		tp.lines[li] = new([64]Label)
	}
	if tp.set[li]&(1<<(off%64)) == 0 {
		tp.set[li] |= 1 << (off % 64)
		tp.n++
	}
	tp.lines[li][off%64] = lbl
}

func (tp *taintPage) clear(off uint32) {
	if tp.set[off/64]&(1<<(off%64)) != 0 {
		tp.set[off/64] &^= 1 << (off % 64)
		tp.n--
	}
}

// putRun labels the byte run [off, off+n) with consecutive labels starting at
// {requestID, dataOff} — the same run-based capture the guest memory's
// sub-page dirty tracking uses. The presence bitmap is set a word at a time
// (with a popcount for the newly-set count) instead of bit by bit, so bulk
// input labeling costs one mask per 64 bytes plus the unavoidable per-byte
// label stores.
func (tp *taintPage) putRun(off uint32, n, requestID, dataOff int) {
	for i := 0; i < n; {
		a := off + uint32(i)
		li, bo := a/64, a%64
		run := int(64 - bo)
		if rem := n - i; run > rem {
			run = rem
		}
		if tp.lines[li] == nil {
			tp.lines[li] = new([64]Label)
		}
		mask := ^uint64(0)
		if run < 64 {
			mask = ((1 << run) - 1) << bo
		}
		tp.n += run - bits.OnesCount64(tp.set[li]&mask)
		tp.set[li] |= mask
		line := tp.lines[li]
		for j := 0; j < run; j++ {
			line[int(bo)+j] = Label{RequestID: requestID, Offset: dataOff + i + j}
		}
		i += run
	}
}

// Tracker is the taint-analysis tool. Attach it with vm.Machine.AttachTool
// before replaying from a checkpoint. A Tracker can also be restricted to a
// fixed set of instructions, which is how taint-based VSEFs are applied with
// low overhead.
type Tracker struct {
	name        string
	stopOnFirst bool

	mem     map[uint32]*taintPage // page number -> shadow page
	tainted int                   // total tainted bytes across all pages
	regs    [vm.NumRegs]regTaint

	// restrict, when non-nil, limits propagation and sink checks to the
	// listed static instructions (taint VSEF mode).
	restrict map[int]bool

	propagators map[int]bool
	findings    []Finding
}

// New returns a full taint tracker.
func New(stopOnFirst bool) *Tracker {
	return &Tracker{
		name:        "analysis.taint",
		stopOnFirst: stopOnFirst,
		mem:         make(map[uint32]*taintPage),
		propagators: make(map[int]bool),
	}
}

// NewRestricted returns a tracker that only instruments the given static
// instructions (the propagation and sink sites recorded in a taint VSEF).
func NewRestricted(name string, instrs []int, stopOnFirst bool) *Tracker {
	t := New(stopOnFirst)
	t.name = name
	t.restrict = make(map[int]bool, len(instrs))
	for _, i := range instrs {
		t.restrict[i] = true
	}
	return t
}

// Name implements vm.Tool.
func (t *Tracker) Name() string { return t.name }

// Findings returns all findings recorded so far.
func (t *Tracker) Findings() []Finding { return t.findings }

// Detected reports whether any misuse of tainted data was found.
func (t *Tracker) Detected() bool { return len(t.findings) > 0 }

// Primary returns the first finding, or nil.
func (t *Tracker) Primary() *Finding {
	if len(t.findings) == 0 {
		return nil
	}
	return &t.findings[0]
}

// ResponsibleRequest returns the request implicated by the first finding.
func (t *Tracker) ResponsibleRequest() (int, bool) {
	if len(t.findings) == 0 {
		return 0, false
	}
	return t.findings[0].Label.RequestID, true
}

// Propagators returns the sorted static instruction indices that moved
// tainted data during the analysed execution; together with the sink they
// form the taint-based VSEF.
func (t *Tracker) Propagators() []int {
	out := make([]int, 0, len(t.propagators))
	for idx := range t.propagators {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// TaintedBytes returns how many guest memory bytes are currently tainted.
func (t *Tracker) TaintedBytes() int { return t.tainted }

// ResetShadow drops all shadow taint (memory labels and register taint)
// while keeping recorded findings and propagators. The instrumented process
// calls it when it rolls back to a checkpoint: everything currently tainted
// was tainted by an execution that no longer exists, and replayed requests
// re-introduce their taint through OnInput.
func (t *Tracker) ResetShadow() {
	t.mem = make(map[uint32]*taintPage)
	t.tainted = 0
	t.regs = [vm.NumRegs]regTaint{}
}

// OnRollback implements vm.RollbackHook for trackers attached as tools
// (always-on taint analysis).
func (t *Tracker) OnRollback(m *vm.Machine) { t.ResetShadow() }

func (t *Tracker) record(m *vm.Machine, f Finding) {
	t.findings = append(t.findings, f)
	if t.stopOnFirst {
		m.RaiseViolation(&vm.Violation{
			Kind:   f.Kind,
			Tool:   t.name,
			PC:     f.InstrIdx,
			PCAddr: m.AddrOfIndex(f.InstrIdx),
			Sym:    f.Sym,
			Detail: f.Detail,
		})
	}
}

// --- taint sources ---

// OnInput implements vm.InputHook: bytes copied from a request are tainted
// with their request ID and payload offset. Labeling walks whole page runs —
// one shadow-page lookup per page, bitmap words set via putRun — mirroring
// the bulk recv copy that delivered the bytes.
func (t *Tracker) OnInput(m *vm.Machine, addr uint32, data []byte, requestID int) {
	for i := 0; i < len(data); {
		tp := t.shadowPage(addr >> vm.PageShift)
		off := addr & (vm.PageSize - 1)
		run := int(vm.PageSize - off)
		if rem := len(data) - i; run > rem {
			run = rem
		}
		before := tp.n
		tp.putRun(off, run, requestID, i)
		t.tainted += tp.n - before
		i += run
		addr += uint32(run)
	}
}

// --- propagation ---

// BeforeInstr implements vm.InstrHook: it propagates taint for the
// instruction about to execute and checks taint sinks.
func (t *Tracker) BeforeInstr(m *vm.Machine, idx int, in *vm.Instr) {
	if t.restrict != nil && !t.restrict[idx] {
		return
	}
	t.Propagate(m, idx, in)
}

// Propagate performs taint propagation and sink checking for one instruction.
// It is exported so that taint-VSEF probes can reuse the exact semantics of
// the full tool at selected instructions.
func (t *Tracker) Propagate(m *vm.Machine, idx int, in *vm.Instr) {
	switch in.Op {
	case vm.OpMovI, vm.OpPushI:
		if in.Op == vm.OpMovI {
			t.setReg(in.Rd, regTaint{})
		}
		if in.Op == vm.OpPushI {
			t.clearMem(m.Regs[vm.SP]-4, 4)
		}

	case vm.OpMov, vm.OpLea:
		t.copyRegTaint(idx, in.Rd, in.Rs)

	case vm.OpLoadB, vm.OpLoadW:
		size := 4
		if in.Op == vm.OpLoadB {
			size = 1
		}
		addr := m.Regs[in.Rs] + uint32(in.Imm)
		if lbl, ok := t.memTaint(addr, size); ok {
			t.setReg(in.Rd, regTaint{tainted: true, label: lbl})
			t.propagators[idx] = true
		} else {
			t.setReg(in.Rd, regTaint{})
		}

	case vm.OpStoreB, vm.OpStoreW:
		size := 4
		if in.Op == vm.OpStoreB {
			size = 1
		}
		addr := m.Regs[in.Rd] + uint32(in.Imm)
		if rt := t.regs[in.Rs]; rt.tainted {
			t.taintMem(addr, size, rt.label)
			t.propagators[idx] = true
		} else {
			t.clearMem(addr, size)
		}

	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod, vm.OpAnd, vm.OpOr, vm.OpXor, vm.OpShl, vm.OpShr:
		if t.regs[in.Rd].tainted {
			// keep destination taint
		} else if rt := t.regs[in.Rs]; rt.tainted {
			t.setReg(in.Rd, regTaint{tainted: true, label: rt.label})
			t.propagators[idx] = true
		}

	case vm.OpPush:
		addr := m.Regs[vm.SP] - 4
		if rt := t.regs[in.Rd]; rt.tainted {
			t.taintMem(addr, 4, rt.label)
			t.propagators[idx] = true
		} else {
			t.clearMem(addr, 4)
		}

	case vm.OpPop:
		addr := m.Regs[vm.SP]
		if lbl, ok := t.memTaint(addr, 4); ok {
			t.setReg(in.Rd, regTaint{tainted: true, label: lbl})
			t.propagators[idx] = true
		} else {
			t.setReg(in.Rd, regTaint{})
		}

	case vm.OpCall:
		// The pushed return address is a constant: untainted.
		t.clearMem(m.Regs[vm.SP]-4, 4)

	case vm.OpCallReg, vm.OpJmpReg:
		t.clearMem(m.Regs[vm.SP]-4, 4)
		if rt := t.regs[in.Rd]; rt.tainted {
			t.record(m, Finding{
				Kind:     vm.ViolationTaintedControl,
				InstrIdx: idx,
				Sym:      m.SymbolAt(idx),
				Label:    rt.label,
				Detail:   fmt.Sprintf("indirect branch target derived from %s", rt.label),
			})
		}

	case vm.OpRet:
		addr := m.Regs[vm.SP]
		if lbl, ok := t.memTaint(addr, 4); ok {
			t.record(m, Finding{
				Kind:     vm.ViolationTaintedControl,
				InstrIdx: idx,
				Sym:      m.SymbolAt(idx),
				Label:    lbl,
				Detail:   fmt.Sprintf("return address derived from %s", lbl),
			})
		}

	case vm.OpSyscall:
		if m.Regs[vm.R0] == proc.SysFree {
			if rt := t.regs[vm.R1]; rt.tainted {
				t.record(m, Finding{
					Kind:     vm.ViolationTaintedFree,
					InstrIdx: idx,
					Sym:      m.SymbolAt(idx),
					Label:    rt.label,
					Detail:   fmt.Sprintf("free() argument derived from %s", rt.label),
				})
			}
		}
	}
}

// OnFault implements vm.FaultHook: when the machine faults, attribute the
// fault to tainted operands of the faulting instruction if possible (e.g. a
// page fault on a store whose value came from the attack request). This is
// what lets taint analysis name the exploit request even when the attack does
// not hijack control flow.
func (t *Tracker) OnFault(m *vm.Machine, f *vm.Fault) {
	in := m.InstrAt(f.PC)
	var lbl Label
	var tainted bool
	switch in.Op {
	case vm.OpStoreB, vm.OpStoreW:
		if rt := t.regs[in.Rs]; rt.tainted {
			lbl, tainted = rt.label, true
		} else if rt := t.regs[in.Rd]; rt.tainted {
			lbl, tainted = rt.label, true
		} else if l, ok := t.memTaint(f.Addr-16, 16); ok {
			// The faulting store itself may carry an untainted byte (e.g. a
			// literal '%' in an escaping loop); if the run of bytes written
			// just before the fault is tainted, the copy as a whole is
			// attacker controlled.
			lbl, tainted = l, true
		}
	case vm.OpLoadB, vm.OpLoadW:
		if rt := t.regs[in.Rs]; rt.tainted {
			lbl, tainted = rt.label, true
		}
	case vm.OpRet:
		if l, ok := t.memTaint(m.Regs[vm.SP], 4); ok {
			lbl, tainted = l, true
		}
	case vm.OpJmpReg, vm.OpCallReg:
		if rt := t.regs[in.Rd]; rt.tainted {
			lbl, tainted = rt.label, true
		}
	case vm.OpSyscall:
		if rt := t.regs[vm.R1]; rt.tainted {
			lbl, tainted = rt.label, true
		}
	}
	if !tainted {
		return
	}
	t.findings = append(t.findings, Finding{
		Kind:     vm.ViolationPolicy,
		InstrIdx: f.PC,
		Sym:      f.Sym,
		Label:    lbl,
		Detail:   fmt.Sprintf("fault (%s) with operands derived from %s", f.Kind, lbl),
	})
}

// --- shadow state helpers ---

func (t *Tracker) setReg(r vm.Reg, rt regTaint) {
	if int(r) < len(t.regs) {
		t.regs[r] = rt
	}
}

func (t *Tracker) copyRegTaint(idx int, dst, src vm.Reg) {
	rt := t.regs[src]
	t.setReg(dst, rt)
	if rt.tainted {
		t.propagators[idx] = true
	}
}

// shadowPage returns (creating if needed) the shadow page for page number pn.
func (t *Tracker) shadowPage(pn uint32) *taintPage {
	tp := t.mem[pn]
	if tp == nil {
		tp = &taintPage{}
		t.mem[pn] = tp
	}
	return tp
}

func (t *Tracker) memTaint(addr uint32, size int) (Label, bool) {
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		if tp := t.mem[a>>vm.PageShift]; tp != nil {
			if lbl, ok := tp.get(a & (vm.PageSize - 1)); ok {
				return lbl, true
			}
		}
	}
	return Label{}, false
}

func (t *Tracker) taintMem(addr uint32, size int, lbl Label) {
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		tp := t.shadowPage(a >> vm.PageShift)
		before := tp.n
		tp.put(a&(vm.PageSize-1), lbl)
		t.tainted += tp.n - before
	}
}

func (t *Tracker) clearMem(addr uint32, size int) {
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		tp := t.mem[a>>vm.PageShift]
		if tp == nil {
			continue
		}
		before := tp.n
		tp.clear(a & (vm.PageSize - 1))
		t.tainted += tp.n - before
		if tp.n == 0 {
			delete(t.mem, a>>vm.PageShift)
		}
	}
}
