package taint_test

import (
	"testing"

	"sweeper/internal/analysis/taint"
	"sweeper/internal/apps"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// replayWithTaint warms the app with one benign request, snapshots, crashes it
// with the exploit, then replays from the snapshot with the taint tracker.
func replayWithTaint(t *testing.T, app string) (*taint.Tracker, *vm.StopInfo, int) {
	t.Helper()
	spec, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	proxy := netproxy.New()
	proxy.Submit(exploit.Benign(app, 0), "client", false)
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("warm-up failed: %v", stop.Reason)
	}
	snap := p.Snapshot(1)
	req, _ := proxy.Submit(payload, "worm", true)
	// At the default layout the apache1 hijack succeeds and exits rather than
	// faulting; either way the attack is in the log for the replay below.
	if stop := p.Run(0); stop.Reason != vm.StopFault && stop.Reason != vm.StopHalt {
		t.Fatalf("exploit outcome unexpected: %v", stop.Reason)
	}
	p.Rollback(snap, proc.ModeReplay, false)
	tr := taint.New(true)
	p.Machine.AttachTool(tr)
	stop := p.Run(0)
	p.Machine.DetachTool(tr.Name())
	return tr, stop, req.ID
}

func TestApache1TaintedReturnAddress(t *testing.T) {
	tr, stop, exploitID := replayWithTaint(t, "apache1")
	if !tr.Detected() {
		t.Fatal("taint analysis missed the hijack")
	}
	f := tr.Primary()
	if f.Kind != vm.ViolationTaintedControl {
		t.Errorf("kind = %v", f.Kind)
	}
	if f.Sym != "try_alias_list" {
		t.Errorf("sink in %q, want try_alias_list", f.Sym)
	}
	if id, ok := tr.ResponsibleRequest(); !ok || id != exploitID {
		t.Errorf("responsible request = %d, want %d", id, exploitID)
	}
	// Detection happens before the corrupted return executes, as a violation.
	if stop.Reason != vm.StopViolation {
		t.Errorf("stop = %v", stop.Reason)
	}
	if len(tr.Propagators()) == 0 {
		t.Error("no propagation instructions recorded for the taint VSEF")
	}
	if f.Summary() == "" || f.Label.String() == "" {
		t.Error("finding should render")
	}
}

func TestSquidFaultAttributedToExploitRequest(t *testing.T) {
	tr, stop, exploitID := replayWithTaint(t, "squid")
	if stop.Reason != vm.StopFault {
		t.Fatalf("squid replay should fault, got %v", stop.Reason)
	}
	if !tr.Detected() {
		t.Fatal("fault with tainted operands was not attributed")
	}
	if id, ok := tr.ResponsibleRequest(); !ok || id != exploitID {
		t.Errorf("responsible request = %d, want %d", id, exploitID)
	}
	if tr.TaintedBytes() == 0 {
		t.Error("no memory bytes tainted")
	}
}

func TestCVSAndApache2NotAttributedByTaint(t *testing.T) {
	// The double free and the NULL dereference do not consume tainted data in
	// a sensitive way, so taint alone cannot name the input (Sweeper falls
	// back to request isolation); what matters is no false attribution.
	for _, app := range []string{"cvs", "apache2"} {
		tr, _, _ := replayWithTaint(t, app)
		for _, f := range tr.Findings() {
			if f.Kind == vm.ViolationTaintedControl {
				t.Errorf("%s: unexpected tainted-control finding %v", app, f)
			}
		}
	}
}

func TestBenignTrafficNoTaintFindings(t *testing.T) {
	for _, app := range []string{"squid", "apache1", "apache2", "cvs"} {
		spec, _ := apps.ByName(app)
		proxy := netproxy.New()
		for i := 0; i < 6; i++ {
			proxy.Submit(exploit.Benign(app, i), "client", false)
		}
		p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
		if err != nil {
			t.Fatal(err)
		}
		tr := taint.New(true)
		p.Machine.AttachTool(tr)
		stop := p.Run(0)
		if stop.Reason != vm.StopWaitInput {
			t.Errorf("%s: benign run under taint stopped with %v (%v)", app, stop.Reason, stop.Violation)
		}
		if tr.Detected() {
			t.Errorf("%s: false positives: %v", app, tr.Findings())
		}
	}
}

func TestTaintClearedByUntaintedOverwrite(t *testing.T) {
	tr := taint.New(false)
	// Drive the tracker directly through its exported surface: taint a byte
	// via OnInput, then simulate an untainted store over it via Propagate on
	// a real machine.
	spec, _ := apps.ByName("cvs")
	proxy := netproxy.New()
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Machine
	addr := m.Layout().DataBase
	tr.OnInput(m, addr, []byte{0xAA, 0xBB}, 7)
	if tr.TaintedBytes() != 2 {
		t.Fatalf("tainted bytes = %d", tr.TaintedBytes())
	}
	// movi r1, 0 ; storeb [r2+0], r1  with r2 = addr: clears the taint.
	m.Regs[vm.R1] = 0
	m.Regs[vm.R2] = addr
	tr.Propagate(m, 0, &vm.Instr{Op: vm.OpMovI, Rd: vm.R1})
	tr.Propagate(m, 1, &vm.Instr{Op: vm.OpStoreB, Rd: vm.R2, Rs: vm.R1})
	if tr.TaintedBytes() != 1 {
		t.Errorf("overwrite should clear one byte of taint, have %d", tr.TaintedBytes())
	}
}

func TestRestrictedTrackerOnlyActsOnListedInstructions(t *testing.T) {
	spec, _ := apps.ByName("cvs")
	proxy := netproxy.New()
	p, _ := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	m := p.Machine
	addr := m.Layout().DataBase

	tr := taint.NewRestricted("vsef", []int{5}, false)
	tr.OnInput(m, addr, []byte{1}, 1)
	m.Regs[vm.R2] = addr
	// A load at a non-listed instruction must not propagate.
	tr.BeforeInstr(m, 3, &vm.Instr{Op: vm.OpLoadB, Rd: vm.R1, Rs: vm.R2})
	// The same load at the listed instruction does.
	tr.BeforeInstr(m, 5, &vm.Instr{Op: vm.OpLoadB, Rd: vm.R1, Rs: vm.R2})
	props := tr.Propagators()
	if len(props) != 1 || props[0] != 5 {
		t.Errorf("propagators = %v, want [5]", props)
	}
}
