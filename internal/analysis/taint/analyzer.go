package taint

import (
	"fmt"

	"sweeper/internal/analysis"
)

// AnalyzerName is the pipeline name of the taint-analysis analyzer.
const AnalyzerName = "taint"

// Result is the taint analyzer's pipeline finding. The Tracker is retained so
// antibody generation can extract the propagation sites for a taint VSEF.
type Result struct {
	Tracker  *Tracker
	Findings []Finding
	Detected bool
	// Culprit is the request the first finding's tainted data came from
	// (-1 when taint analysis could not name one).
	Culprit int
}

// Analyzer implements analysis.Finding.
func (r *Result) Analyzer() string { return AnalyzerName }

// Summary implements analysis.Finding.
func (r *Result) Summary() string {
	if !r.Detected {
		return "no misuse of tainted data detected"
	}
	return fmt.Sprintf("%s (exploit input: request %d)", r.Findings[0].Summary(), r.Culprit)
}

// Analyzer adapts full dynamic taint analysis to the analysis.Analyzer API:
// it replays the attack window under a fresh tracker, implicates the sink
// instruction and records the responsible request as the culprit in the
// shared context.
type Analyzer struct{}

// Name implements analysis.Analyzer.
func (Analyzer) Name() string { return AnalyzerName }

// Cost implements analysis.Analyzer: taint analysis identifies the exploit
// input the final antibody's signature is built from, so it runs in the fast
// tier.
func (Analyzer) Cost() analysis.Tier { return analysis.TierFast }

// Run implements analysis.Analyzer.
func (Analyzer) Run(ctx *analysis.Context, sb *analysis.Sandbox) (analysis.Finding, error) {
	tr := New(true)
	sb.Machine().AttachTool(tr)
	sb.Run()
	res := &Result{Tracker: tr, Findings: tr.Findings(), Detected: tr.Detected(), Culprit: -1}
	if id, ok := tr.ResponsibleRequest(); ok {
		res.Culprit = id
		ctx.SetCulprit(id)
	}
	if len(res.Findings) > 0 {
		ctx.Implicate(AnalyzerName, res.Findings[0].InstrIdx)
	}
	return res, nil
}
