// Package analysis defines the pluggable heavyweight-analysis API: an
// Analyzer is a named, tiered analysis that re-executes an attack window on a
// replay Sandbox and returns a Finding. The paper's three rollback-and-replay
// analyses (memory-bug detection, taint analysis, backward slicing) are
// Analyzers registered in a Registry; the core pipeline schedules whatever is
// registered, so new analyses plug in without touching the engine:
//
//   - fast-tier analyzers (TierFast) gate antibody generation — the pipeline
//     joins them before the refined/final antibody ships;
//   - deferred-tier analyzers (TierDeferred) complete after recovery has
//     resumed service, entirely off the client-visible path.
//
// Analyzers of one pipeline run share a Context: fast-tier results (the
// implicated instructions, the culprit request) flow into the deferred tier,
// which uses them to cut its own critical path.
package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Tier classifies an analyzer's scheduling cost.
type Tier uint8

// Tiers. Fast analyzers gate the antibody; deferred analyzers complete after
// recovery has resumed service.
const (
	TierFast Tier = iota
	TierDeferred
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierFast:
		return "fast"
	case TierDeferred:
		return "deferred"
	}
	return fmt.Sprintf("tier?%d", uint8(t))
}

// Finding is the result one analyzer produced for one attack. Concrete
// analyzers return richer typed results (e.g. *membug.Result); consumers that
// know the analyzer downcast, generic consumers use the summary.
type Finding interface {
	// Analyzer names the analyzer that produced the finding.
	Analyzer() string
	// Summary is a one-line human-readable description.
	Summary() string
}

// Analyzer is one pluggable heavyweight analysis. Implementations must be
// safe for reuse across attacks and guests: Run receives all per-run state
// (the sandbox and the shared context) and must not retain either.
type Analyzer interface {
	// Name identifies the analyzer in registries, reports and metrics.
	Name() string
	// Cost reports which tier the pipeline should schedule the analyzer in.
	Cost() Tier
	// Run replays the attack window on the sandbox under the analyzer's
	// instrumentation and returns what it found. A nil Finding with a nil
	// error means the analyzer ran but has nothing to report.
	Run(ctx *Context, sb *Sandbox) (Finding, error)
}

// Sandbox is the replay process an analyzer instruments: a clone of the
// rollback checkpoint whose event-log view covers the attack window. The
// pipeline owns the sandbox's lifecycle (including returning pooled clone
// shells); analyzers just attach tools and call Run.
type Sandbox struct {
	// Proc is the replay clone. Analyzers attach tools to Proc.Machine and
	// may restrict the replayed requests via Proc.DropRequests.
	Proc *proc.Process
	// Budget bounds the replay, in instructions. The pipeline sets it from
	// the analyzer's registry budget when one was registered, falling back to
	// the instance-wide replay budget.
	Budget uint64

	exhausted  bool
	release    func()
	yieldEvery uint64
}

// NewSandbox wraps a replay clone. release, if non-nil, is invoked exactly
// once when the sandbox is released (pooled shells return to their pool).
func NewSandbox(p *proc.Process, budget uint64, release func()) *Sandbox {
	return &Sandbox{Proc: p, Budget: budget, release: release}
}

// Machine returns the sandbox's machine, for attaching tools.
func (sb *Sandbox) Machine() *vm.Machine { return sb.Proc.Machine }

// SetYieldEvery makes Run execute the replay in chunks of n instructions,
// yielding the processor between chunks (0 restores the single-call replay).
// The pipeline sets it on deferred-tier sandboxes: their replays run behind
// the already-recovered service, and an uninterrupted CPU-bound replay would
// otherwise hold a processor for the Go runtime's full preemption quantum at
// a time — tens of milliseconds of client-visible stall on small hosts.
func (sb *Sandbox) SetYieldEvery(n uint64) { sb.yieldEvery = n }

// Run replays the sandboxed execution until it stops or exhausts the budget,
// yielding between chunks when SetYieldEvery configured a chunk size.
func (sb *Sandbox) Run() *vm.StopInfo {
	if sb.yieldEvery == 0 || (sb.Budget != 0 && sb.Budget <= sb.yieldEvery) {
		stop := sb.Proc.Run(sb.Budget)
		if stop.Reason == vm.StopInstrBudget {
			sb.exhausted = true
		}
		return stop
	}
	remaining := sb.Budget // 0 = unlimited, like vm.Machine.Run
	for {
		chunk := sb.yieldEvery
		if remaining != 0 && chunk > remaining {
			chunk = remaining
		}
		stop := sb.Proc.Run(chunk)
		if stop.Reason != vm.StopInstrBudget {
			return stop
		}
		if remaining != 0 {
			remaining -= chunk
			if remaining == 0 {
				sb.exhausted = true
				return stop
			}
		}
		runtime.Gosched()
	}
}

// Exhausted reports whether any replay on this sandbox ran out of its
// instruction budget. The pipeline surfaces it through AttackReport.ErrorFor
// so a starved analyzer is distinguishable from one that found nothing.
func (sb *Sandbox) Exhausted() bool { return sb.exhausted }

// Release returns the sandbox to its owner (e.g. a clone pool). It is
// idempotent; the sandbox must not be used afterwards.
func (sb *Sandbox) Release() {
	if sb.release != nil {
		sb.release()
		sb.release = nil
	}
}

// Context carries cross-analyzer state through one pipeline run. Fast-tier
// analyzers record what they implicated; deferred-tier analyzers (which the
// pipeline starts only after the fast tier completed) read it to restrict
// their own work. All methods are safe for concurrent use.
type Context struct {
	mu          sync.Mutex
	implicated  map[string][]int
	culprit     int
	haveCulprit bool
	findings    map[string]Finding
}

// NewContext returns an empty analysis context.
func NewContext() *Context {
	return &Context{
		implicated: make(map[string][]int),
		findings:   make(map[string]Finding),
	}
}

// Implicate records that the named analyzer blamed the given static
// instructions for the attack.
func (c *Context) Implicate(analyzer string, instrs ...int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.implicated[analyzer] = append(c.implicated[analyzer], instrs...)
}

// Implicated returns the sorted, deduplicated union of every implicated
// static instruction (negative indices are dropped). The order is
// deterministic regardless of which analyzer implicated first.
func (c *Context) Implicated() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[int]bool)
	var out []int
	for _, instrs := range c.implicated {
		for _, idx := range instrs {
			if idx >= 0 && !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ImplicatedBy returns the sorted names of the analyzers that implicated at
// least one instruction.
func (c *Context) ImplicatedBy() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.implicated))
	for name := range c.implicated {
		if len(c.implicated[name]) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// HasImplication reports whether the named analyzer implicated anything.
func (c *Context) HasImplication(analyzer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.implicated[analyzer]) > 0
}

// SetCulprit records the identified exploit request. The first setting wins
// (taint analysis and the isolation fallback agree when both run).
func (c *Context) SetCulprit(requestID int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveCulprit {
		c.culprit = requestID
		c.haveCulprit = true
	}
}

// Culprit returns the identified exploit request, if any.
func (c *Context) Culprit() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.culprit, c.haveCulprit
}

// AddFinding records a completed analyzer's finding.
func (c *Context) AddFinding(analyzer string, f Finding) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.findings[analyzer] = f
}

// FindingOf returns the named analyzer's finding, or nil if it has not
// completed (or found nothing).
func (c *Context) FindingOf(analyzer string) Finding {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.findings[analyzer]
}

// Registry maps analyzer names to Analyzer implementations, in registration
// order, each with an optional per-analyzer replay budget. It is safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	order   []string
	byN     map[string]Analyzer
	budgets map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]Analyzer), budgets: make(map[string]uint64)}
}

// Register adds an analyzer under its own name with no budget override.
// Registering a duplicate or empty name is an error.
func (r *Registry) Register(a Analyzer) error { return r.RegisterBudgeted(a, 0) }

// RegisterBudgeted adds an analyzer with its own replay budget (in
// instructions), overriding the instance-wide replay budget for this analyzer
// only: an expensive custom analyzer gets a hard cap instead of starving the
// fast tier. A budget of 0 means "inherit the instance-wide budget".
func (r *Registry) RegisterBudgeted(a Analyzer, budget uint64) error {
	name := a.Name()
	if name == "" {
		return fmt.Errorf("analysis: analyzer with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byN[name]; dup {
		return fmt.Errorf("analysis: analyzer %q already registered", name)
	}
	r.byN[name] = a
	r.order = append(r.order, name)
	if budget > 0 {
		r.budgets[name] = budget
	}
	return nil
}

// SetBudget installs (or, with 0, removes) the named analyzer's replay-budget
// override after registration.
func (r *Registry) SetBudget(name string, budget uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byN[name]; !ok {
		return fmt.Errorf("analysis: analyzer %q is not registered", name)
	}
	if budget == 0 {
		delete(r.budgets, name)
	} else {
		r.budgets[name] = budget
	}
	return nil
}

// Budget returns the named analyzer's replay-budget override, or 0 when the
// analyzer inherits the instance-wide budget.
func (r *Registry) Budget(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.budgets[name]
}

// Get returns the named analyzer.
func (r *Registry) Get(name string) (Analyzer, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.byN[name]
	return a, ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}
