package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyRecorderEmpty(t *testing.T) {
	l := NewLatencyRecorder()
	if l.Count() != 0 || l.Quantile(0.5) != 0 || l.Mean() != 0 {
		t.Errorf("empty recorder not zero: %v", l)
	}
}

func TestLatencyRecorderQuantiles(t *testing.T) {
	l := NewLatencyRecorder()
	// 1..1000 µs uniformly: p50 ≈ 500µs, p95 ≈ 950µs, p99 ≈ 990µs, within
	// the histogram's 1/2^3 relative bucket error.
	for i := 1; i <= 1000; i++ {
		l.Record(time.Duration(i) * time.Microsecond)
	}
	if l.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", l.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := l.Quantile(c.q)
		lo := c.want - c.want/4
		hi := c.want + c.want/4
		if got < lo || got > hi {
			t.Errorf("Quantile(%.2f) = %v, want within [%v, %v]", c.q, got, lo, hi)
		}
	}
	mean := l.Mean()
	if mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Errorf("Mean = %v, want ~500µs", mean)
	}
	p50, p95, p99 := l.Percentiles()
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("percentiles not monotonic: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
}

func TestLatencyRecorderWideRange(t *testing.T) {
	l := NewLatencyRecorder()
	// Magnitudes from ns to minutes must each land in a sane bucket.
	for _, d := range []time.Duration{3 * time.Nanosecond, 7 * time.Microsecond,
		12 * time.Millisecond, 2 * time.Second, 3 * time.Minute} {
		r := NewLatencyRecorder()
		r.Record(d)
		got := r.Quantile(0.5)
		if got < d-d/4-1 || got > d+d/4+1 {
			t.Errorf("single obs %v resolved to %v", d, got)
		}
		l.Record(d)
	}
	if l.Count() != 5 {
		t.Errorf("Count = %d, want 5", l.Count())
	}
	if max := l.Quantile(1.0); max < 2*time.Minute {
		t.Errorf("Quantile(1.0) = %v, want the minutes-scale observation", max)
	}
}

func TestLatencyRecorderReset(t *testing.T) {
	l := NewLatencyRecorder()
	l.Record(time.Millisecond)
	l.Reset()
	if l.Count() != 0 || l.Quantile(0.99) != 0 {
		t.Errorf("Reset did not clear: %v", l)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	l := NewLatencyRecorder()
	var wg sync.WaitGroup
	const goroutines, per = 8, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Record(time.Duration(1+(g*per+i)%1000) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if l.Count() != goroutines*per {
		t.Errorf("Count = %d, want %d", l.Count(), goroutines*per)
	}
	p50 := l.Quantile(0.5)
	if p50 < 300*time.Microsecond || p50 > 700*time.Microsecond {
		t.Errorf("concurrent p50 = %v, want ~500µs", p50)
	}
}

func BenchmarkLatencyRecorderRecord(b *testing.B) {
	l := NewLatencyRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(time.Duration(i%1_000_000) * time.Nanosecond)
	}
}
