package metrics

import "sync"

// FederationStats are the counters of one daemon's federation node: how
// antibodies moved between this daemon's store and its peers.
type FederationStats struct {
	// Peers is the number of peers this node is connected to.
	Peers int
	// Pushed counts antibodies pushed out to peers (per antibody, per peer).
	Pushed int
	// PushErrors counts failed push deliveries (the poll path recovers them).
	PushErrors int
	// Received counts antibodies accepted into the local store from peers,
	// whether they arrived by push or by poll.
	Received int
	// Duplicates counts antibodies received from peers that the local store
	// already held — the dedup that terminates gossip loops.
	Duplicates int
	// Polls counts completed poll rounds against peers.
	Polls int
	// Rejected counts requests this daemon's server refused at the boundary:
	// pushes and polls with a bad or missing auth token, and structurally
	// invalid pushes (antibodies without an ID or program).
	Rejected int
	// PeerDown counts up-to-down transitions observed by the poll loops: a
	// peer whose poll failed after succeeding (or that was unreachable when
	// added lazily). While down, polls back off exponentially with jitter.
	PeerDown int
	// PeerRecovered counts down-to-up transitions: a previously down peer
	// answered a poll again, and its poll cadence snapped back to normal.
	PeerRecovered int
}

// FederationRecorder aggregates FederationStats. It is safe for concurrent
// use by the node's push and poll goroutines and the peer-facing server.
type FederationRecorder struct {
	mu sync.Mutex
	s  FederationStats
}

// NewFederationRecorder returns a zeroed recorder.
func NewFederationRecorder() *FederationRecorder { return &FederationRecorder{} }

// Update applies fn to the counters under the recorder lock.
func (r *FederationRecorder) Update(fn func(*FederationStats)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(&r.s)
}

// Snapshot returns a copy of the counters.
func (r *FederationRecorder) Snapshot() FederationStats {
	if r == nil {
		return FederationStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s
}
