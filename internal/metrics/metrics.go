// Package metrics provides the small measurement helpers used by the
// evaluation harnesses: time-series of request completions (for the Figure 5
// throughput-over-time plot), throughput/overhead computations (Figure 4 and
// the VSEF-overhead experiment) and simple summary statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one (time, value) point of a series.
type Sample struct {
	TimeMs uint64
	Value  float64
}

// Series is an ordered list of samples.
type Series []Sample

// String renders the series as "t value" lines (gnuplot-style).
func (s Series) String() string {
	out := ""
	for _, p := range s {
		out += fmt.Sprintf("%d\t%.3f\n", p.TimeMs, p.Value)
	}
	return out
}

// CompletionRecorder records the virtual completion time of every request and
// converts them into a throughput-over-time series.
type CompletionRecorder struct {
	completions []uint64 // virtual ms timestamps
}

// NewCompletionRecorder returns an empty recorder.
func NewCompletionRecorder() *CompletionRecorder { return &CompletionRecorder{} }

// Record notes that a request completed at the given virtual time.
func (c *CompletionRecorder) Record(timeMs uint64) { c.completions = append(c.completions, timeMs) }

// Count returns the number of recorded completions.
func (c *CompletionRecorder) Count() int { return len(c.completions) }

// Last returns the last recorded completion time (0 when empty).
func (c *CompletionRecorder) Last() uint64 {
	if len(c.completions) == 0 {
		return 0
	}
	return c.completions[len(c.completions)-1]
}

// Throughput returns completed requests per second over the whole run.
func (c *CompletionRecorder) Throughput() float64 {
	if len(c.completions) == 0 {
		return 0
	}
	durMs := c.completions[len(c.completions)-1]
	if durMs == 0 {
		return 0
	}
	return float64(len(c.completions)) / (float64(durMs) / 1000.0)
}

// ThroughputSeries buckets completions into bucketMs-wide intervals and
// returns requests/second per bucket — the shape of Figure 5.
func (c *CompletionRecorder) ThroughputSeries(bucketMs uint64) Series {
	if bucketMs == 0 || len(c.completions) == 0 {
		return nil
	}
	last := c.completions[len(c.completions)-1]
	buckets := make([]int, last/bucketMs+1)
	for _, t := range c.completions {
		buckets[t/bucketMs]++
	}
	out := make(Series, len(buckets))
	for i, n := range buckets {
		out[i] = Sample{
			TimeMs: uint64(i) * bucketMs,
			Value:  float64(n) / (float64(bucketMs) / 1000.0),
		}
	}
	return out
}

// Overhead returns the fractional slowdown of measured relative to baseline
// (e.g. 0.0093 for a 0.93% throughput drop). Throughputs of zero yield zero.
func Overhead(baselineThroughput, measuredThroughput float64) float64 {
	if baselineThroughput <= 0 {
		return 0
	}
	ov := (baselineThroughput - measuredThroughput) / baselineThroughput
	if ov < 0 {
		return ov // negative overhead = measured was faster; callers may round
	}
	return ov
}

// Summary holds simple order statistics of a sample set.
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P95    float64
	StdDev float64
}

// Summarize computes summary statistics of the values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	variance := 0.0
	for _, v := range sorted {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(sorted))
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: percentile(sorted, 0.5),
		P95:    percentile(sorted, 0.95),
		StdDev: math.Sqrt(variance),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
