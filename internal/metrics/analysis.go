package metrics

import (
	"sort"
	"sync"
	"time"
)

// AnalyzerLatency summarises the observed wall-clock latency of one analyzer
// across the attacks a Sweeper instance handled.
type AnalyzerLatency struct {
	Name  string
	Runs  int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average per-run latency.
func (l AnalyzerLatency) Mean() time.Duration {
	if l.Runs == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Runs)
}

// AnalysisRecorder aggregates per-analyzer replay latencies. The pipeline
// observes one sample per analyzer per attack; fast-tier samples are recorded
// on the attack-handling goroutine and deferred-tier samples on the
// completion goroutine, so the recorder is safe for concurrent use.
type AnalysisRecorder struct {
	mu     sync.Mutex
	byName map[string]*AnalyzerLatency
}

// NewAnalysisRecorder returns an empty recorder.
func NewAnalysisRecorder() *AnalysisRecorder {
	return &AnalysisRecorder{byName: make(map[string]*AnalyzerLatency)}
}

// Observe records one analyzer run.
func (r *AnalysisRecorder) Observe(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.byName[name]
	if !ok {
		l = &AnalyzerLatency{Name: name}
		r.byName[name] = l
	}
	l.Runs++
	l.Total += d
	if d > l.Max {
		l.Max = d
	}
}

// Snapshot returns the per-analyzer summaries, sorted by name.
func (r *AnalysisRecorder) Snapshot() []AnalyzerLatency {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AnalyzerLatency, 0, len(r.byName))
	for _, l := range r.byName {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
