package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCompletionRecorder(t *testing.T) {
	r := NewCompletionRecorder()
	if r.Count() != 0 || r.Last() != 0 || r.Throughput() != 0 {
		t.Error("empty recorder should be all zeros")
	}
	for _, ts := range []uint64{100, 200, 300, 400, 1000} {
		r.Record(ts)
	}
	if r.Count() != 5 || r.Last() != 1000 {
		t.Errorf("count=%d last=%d", r.Count(), r.Last())
	}
	// 5 requests over 1 second.
	if got := r.Throughput(); math.Abs(got-5.0) > 0.01 {
		t.Errorf("throughput = %f", got)
	}
}

func TestThroughputSeries(t *testing.T) {
	r := NewCompletionRecorder()
	for i := 0; i < 10; i++ {
		r.Record(uint64(i * 100)) // one per 100ms over 900ms
	}
	s := r.ThroughputSeries(500)
	if len(s) != 2 {
		t.Fatalf("series length = %d", len(s))
	}
	if s[0].Value != 10 || s[1].Value != 10 { // 5 per 0.5s = 10/s
		t.Errorf("series = %+v", s)
	}
	if r.ThroughputSeries(0) != nil {
		t.Error("zero bucket should yield nil")
	}
	if !strings.Contains(s.String(), "\t") {
		t.Error("series String() should be tab separated")
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(100, 99); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("overhead = %f", got)
	}
	if got := Overhead(0, 50); got != 0 {
		t.Errorf("overhead with zero baseline = %f", got)
	}
	if got := Overhead(100, 110); got >= 0 {
		t.Errorf("faster measurement should give negative overhead, got %f", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.P95 < 4 || s.P95 > 5 {
		t.Errorf("p95 = %f", s.P95)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %f", s.StdDev)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Error("empty summary should be zero")
	}
}

// TestQuickSummarizeBounds: for any input, Min <= Median <= Max,
// Min <= Mean <= Max and P95 <= Max.
func TestQuickSummarizeBounds(t *testing.T) {
	prop := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			// Keep magnitudes moderate so sums and variances cannot overflow;
			// the property under test is ordering, not extended-precision
			// arithmetic.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.P95 <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickThroughputSeriesConservation: the series buckets account for every
// recorded completion exactly once.
func TestQuickThroughputSeriesConservation(t *testing.T) {
	prop := func(raw []uint16, bucket uint8) bool {
		if len(raw) == 0 {
			return true
		}
		bucketMs := uint64(bucket)%500 + 1
		r := NewCompletionRecorder()
		// Completion times must be non-decreasing for the recorder.
		cur := uint64(0)
		for _, d := range raw {
			cur += uint64(d) % 50
			r.Record(cur)
		}
		total := 0.0
		for _, p := range r.ThroughputSeries(bucketMs) {
			total += p.Value * float64(bucketMs) / 1000.0
		}
		return math.Abs(total-float64(len(raw))) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAnalysisRecorder(t *testing.T) {
	r := NewAnalysisRecorder()
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty recorder snapshot = %v", got)
	}
	r.Observe("taint", 30*time.Millisecond)
	r.Observe("membug", 10*time.Millisecond)
	r.Observe("membug", 20*time.Millisecond)
	got := r.Snapshot()
	if len(got) != 2 || got[0].Name != "membug" || got[1].Name != "taint" {
		t.Fatalf("snapshot not sorted by name: %v", got)
	}
	mb := got[0]
	if mb.Runs != 2 || mb.Total != 30*time.Millisecond || mb.Max != 20*time.Millisecond {
		t.Errorf("membug stats = %+v", mb)
	}
	if mb.Mean() != 15*time.Millisecond {
		t.Errorf("membug mean = %v, want 15ms", mb.Mean())
	}
	if (AnalyzerLatency{}).Mean() != 0 {
		t.Error("zero-run latency mean not 0")
	}
}
