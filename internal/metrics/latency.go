package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency histogram uses log-spaced buckets with latSubBits linear
// sub-buckets per power of two (an HDR-style layout): relative quantile
// error is bounded by 1/2^latSubBits (~12%) at every magnitude, the whole
// recorder is a fixed array of atomic counters, and Record is a shift, a
// mask and one atomic add — no per-request allocation on the hot path.
const (
	latSubBits  = 3
	latSubCount = 1 << latSubBits
	// 64 octaves of latSubCount sub-buckets covers every uint64 nanosecond
	// duration; in practice only the µs..minutes rows are ever touched.
	latBuckets = 64 * latSubCount
)

// LatencyRecorder is a concurrency-safe streaming histogram of request
// sojourn times (arrival→completion). The TCP front end records every
// client response into one; experiments read p50/p95/p99 from it.
type LatencyRecorder struct {
	counts [latBuckets]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Uint64
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// latBucket maps a nanosecond duration to its bucket index.
func latBucket(ns uint64) int {
	if ns < latSubCount {
		return int(ns)
	}
	top := bits.Len64(ns) - 1
	shift := top - latSubBits
	sub := int((ns >> shift) & (latSubCount - 1))
	return (top-latSubBits+1)*latSubCount + sub
}

// latBucketLow returns the smallest nanosecond value mapping to bucket i.
func latBucketLow(i int) uint64 {
	if i < latSubCount {
		return uint64(i)
	}
	block := i >> latSubBits
	sub := uint64(i & (latSubCount - 1))
	return (latSubCount + sub) << (block - 1)
}

// Record adds one observed sojourn time. Safe for concurrent use; never
// allocates.
func (l *LatencyRecorder) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	l.counts[latBucket(ns)].Add(1)
	l.total.Add(1)
	l.sumNs.Add(ns)
}

// Count returns the number of recorded observations.
func (l *LatencyRecorder) Count() int { return int(l.total.Load()) }

// Mean returns the mean recorded sojourn time (0 when empty).
func (l *LatencyRecorder) Mean() time.Duration {
	n := l.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(l.sumNs.Load() / n)
}

// Quantile returns the q-th quantile (0 < q <= 1) of the recorded times,
// resolved to the midpoint of the bucket the quantile falls in. Zero when
// nothing has been recorded. Concurrent Records move it monotonically, never
// corrupt it.
func (l *LatencyRecorder) Quantile(q float64) time.Duration {
	n := l.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := 0; i < latBuckets; i++ {
		c := l.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo := latBucketLow(i)
			hi := latBucketLow(i + 1)
			return time.Duration(lo + (hi-lo)/2)
		}
	}
	return 0
}

// Percentiles returns the p50, p95 and p99 sojourn times.
func (l *LatencyRecorder) Percentiles() (p50, p95, p99 time.Duration) {
	return l.Quantile(0.50), l.Quantile(0.95), l.Quantile(0.99)
}

// Reset clears the histogram. It is not atomic with respect to concurrent
// Records (a racing observation may land in either epoch); phase-windowed
// experiments quiesce traffic before resetting.
func (l *LatencyRecorder) Reset() {
	for i := range l.counts {
		l.counts[i].Store(0)
	}
	l.total.Store(0)
	l.sumNs.Store(0)
}

// String renders the percentiles for logs.
func (l *LatencyRecorder) String() string {
	p50, p95, p99 := l.Percentiles()
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v", l.Count(), p50, p95, p99)
}
