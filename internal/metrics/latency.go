package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency histogram uses log-spaced buckets with latSubBits linear
// sub-buckets per power of two (an HDR-style layout): relative quantile
// error is bounded by 1/2^latSubBits (~12%) at every magnitude, the whole
// recorder is a fixed array of atomic counters, and Record is a shift, a
// mask and one atomic add — no per-request allocation on the hot path.
const (
	latSubBits  = 3
	latSubCount = 1 << latSubBits
	// 64 octaves of latSubCount sub-buckets covers every uint64 nanosecond
	// duration; in practice only the µs..minutes rows are ever touched.
	latBuckets = 64 * latSubCount
)

// LatencyRecorder is a concurrency-safe streaming histogram of request
// sojourn times (arrival→completion). The TCP front end records every
// client response into one; experiments read p50/p95/p99 from it.
type LatencyRecorder struct {
	counts [latBuckets]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Uint64
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// latBucket maps a nanosecond duration to its bucket index.
func latBucket(ns uint64) int {
	if ns < latSubCount {
		return int(ns)
	}
	top := bits.Len64(ns) - 1
	shift := top - latSubBits
	sub := int((ns >> shift) & (latSubCount - 1))
	return (top-latSubBits+1)*latSubCount + sub
}

// latBucketLow returns the smallest nanosecond value mapping to bucket i.
func latBucketLow(i int) uint64 {
	if i < latSubCount {
		return uint64(i)
	}
	block := i >> latSubBits
	sub := uint64(i & (latSubCount - 1))
	return (latSubCount + sub) << (block - 1)
}

// Record adds one observed sojourn time. Safe for concurrent use; never
// allocates.
func (l *LatencyRecorder) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	l.counts[latBucket(ns)].Add(1)
	l.total.Add(1)
	l.sumNs.Add(ns)
}

// Count returns the number of recorded observations.
func (l *LatencyRecorder) Count() int { return int(l.total.Load()) }

// Mean returns the mean recorded sojourn time (0 when empty).
func (l *LatencyRecorder) Mean() time.Duration {
	n := l.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(l.sumNs.Load() / n)
}

// quantileFrom resolves the q-th quantile over a histogram exposed through a
// bucket-loader function; LatencyRecorder (atomic counters) and
// LatencySnapshot (plain copies) share it.
func quantileFrom(count func(int) uint64, n uint64, q float64) time.Duration {
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := 0; i < latBuckets; i++ {
		c := count(i)
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo := latBucketLow(i)
			hi := latBucketLow(i + 1)
			return time.Duration(lo + (hi-lo)/2)
		}
	}
	return 0
}

// Quantile returns the q-th quantile (0 < q <= 1) of the recorded times,
// resolved to the midpoint of the bucket the quantile falls in. Zero when
// nothing has been recorded. Concurrent Records move it monotonically, never
// corrupt it.
func (l *LatencyRecorder) Quantile(q float64) time.Duration {
	return quantileFrom(func(i int) uint64 { return l.counts[i].Load() }, l.total.Load(), q)
}

// Percentiles returns the p50, p95 and p99 sojourn times.
func (l *LatencyRecorder) Percentiles() (p50, p95, p99 time.Duration) {
	return l.Quantile(0.50), l.Quantile(0.95), l.Quantile(0.99)
}

// Reset clears the histogram. It is not atomic with respect to concurrent
// Records (a racing observation may land in either epoch); phase-windowed
// experiments quiesce traffic before resetting.
func (l *LatencyRecorder) Reset() {
	for i := range l.counts {
		l.counts[i].Store(0)
	}
	l.total.Store(0)
	l.sumNs.Store(0)
}

// String renders the percentiles for logs.
func (l *LatencyRecorder) String() string {
	p50, p95, p99 := l.Percentiles()
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v", l.Count(), p50, p95, p99)
}

// LatencySnapshot is an immutable point-in-time copy of a recorder's
// histogram. Snapshots subtract (Delta), so one continuously fed recorder
// yields exact per-phase percentiles — mark a snapshot at each phase
// boundary and diff adjacent marks — without Reset races or per-phase
// recorder juggling.
type LatencySnapshot struct {
	counts [latBuckets]uint64
	total  uint64
	sumNs  uint64
}

// Snapshot copies the recorder's current histogram. Safe under concurrent
// Records; an observation racing the copy lands in either the snapshot or a
// later one, never in neither.
func (l *LatencyRecorder) Snapshot() *LatencySnapshot {
	s := &LatencySnapshot{}
	for i := range l.counts {
		s.counts[i] = l.counts[i].Load()
	}
	s.total = l.total.Load()
	s.sumNs = l.sumNs.Load()
	return s
}

// Delta returns the observations recorded after prev and up to s — the phase
// window between two marks on the same recorder. A nil prev means "since the
// beginning" (a copy of s).
func (s *LatencySnapshot) Delta(prev *LatencySnapshot) *LatencySnapshot {
	out := &LatencySnapshot{}
	*out = *s
	if prev == nil {
		return out
	}
	for i := range out.counts {
		out.counts[i] -= prev.counts[i]
	}
	out.total -= prev.total
	out.sumNs -= prev.sumNs
	return out
}

// Count returns the number of observations in the snapshot.
func (s *LatencySnapshot) Count() int { return int(s.total) }

// Mean returns the snapshot's mean sojourn time (0 when empty).
func (s *LatencySnapshot) Mean() time.Duration {
	if s.total == 0 {
		return 0
	}
	return time.Duration(s.sumNs / s.total)
}

// Quantile returns the q-th quantile of the snapshot, like
// LatencyRecorder.Quantile.
func (s *LatencySnapshot) Quantile(q float64) time.Duration {
	return quantileFrom(func(i int) uint64 { return s.counts[i] }, s.total, q)
}

// Percentiles returns the snapshot's p50, p95 and p99 sojourn times.
func (s *LatencySnapshot) Percentiles() (p50, p95, p99 time.Duration) {
	return s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
}

// String renders the snapshot's percentiles for logs.
func (s *LatencySnapshot) String() string {
	p50, p95, p99 := s.Percentiles()
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v", s.Count(), p50, p95, p99)
}
