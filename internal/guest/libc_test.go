package guest_test

import (
	"strings"
	"testing"
	"testing/quick"

	"sweeper/internal/asm"
	"sweeper/internal/guest"
	"sweeper/internal/vm"
)

// callString builds a tiny guest program that calls fn with up to two string
// arguments (placed in the data segment) and a scratch output buffer, runs it
// and returns the final machine for inspection.
func callString(t *testing.T, fn string, arg1, arg2 string, setup func(b *asm.Builder)) *vm.Machine {
	t.Helper()
	b := asm.New("libc-test")
	b.DataString("arg1", arg1)
	b.DataString("arg2", arg2)
	b.DataSpace("out", 4096)
	b.Func("main")
	if setup != nil {
		setup(b)
	} else {
		b.LoadDataAddr(vm.R1, "arg1")
		b.LoadDataAddr(vm.R2, "arg2")
	}
	b.Call(fn)
	b.Halt()
	guest.AddLibc(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("assembling: %v", err)
	}
	m, err := vm.NewMachine(prog, vm.DefaultLayout(), nil)
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	stop := m.Run(1_000_000)
	if stop.Reason != vm.StopHalt {
		t.Fatalf("guest stopped with %v (fault=%v)", stop.Reason, stop.Fault)
	}
	return m
}

func dataAddr(m *vm.Machine, label string) uint32 {
	return m.Layout().DataBase + m.Program().DataSymbols[label]
}

func TestStrlen(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", strings.Repeat("x", 300)} {
		m := callString(t, guest.FnStrlen, s, "", nil)
		if got := m.Regs[vm.R0]; got != uint32(len(s)) {
			t.Errorf("strlen(%q) = %d, want %d", s, got, len(s))
		}
	}
}

func TestStrcpy(t *testing.T) {
	m := callString(t, guest.FnStrcpy, "unused", "copy me", func(b *asm.Builder) {
		b.LoadDataAddr(vm.R1, "out")
		b.LoadDataAddr(vm.R2, "arg2")
	})
	out, _ := m.Mem.ReadCString(dataAddr(m, "out"), 64)
	if out != "copy me" {
		t.Errorf("strcpy result %q", out)
	}
	if m.Regs[vm.R0] != dataAddr(m, "out") {
		t.Error("strcpy should return dst")
	}
}

func TestStrcat(t *testing.T) {
	m := callString(t, guest.FnStrcat, "", "tail", func(b *asm.Builder) {
		// out starts as "head\0"
		b.LoadDataAddr(vm.R1, "out")
		b.LoadDataAddr(vm.R2, "arg1")
		b.Call(guest.FnStrcpy)
		b.LoadDataAddr(vm.R1, "out")
		b.LoadDataAddr(vm.R2, "arg2")
	})
	_ = m
	m2 := callStrcat(t, "head", "tail")
	out, _ := m2.Mem.ReadCString(dataAddr(m2, "out"), 64)
	if out != "headtail" {
		t.Errorf("strcat result %q", out)
	}
}

// callStrcat copies a into out then concatenates b.
func callStrcat(t *testing.T, a, b string) *vm.Machine {
	t.Helper()
	return callString(t, guest.FnStrcat, a, b, func(bb *asm.Builder) {
		bb.LoadDataAddr(vm.R1, "out")
		bb.LoadDataAddr(vm.R2, "arg1")
		bb.Call(guest.FnStrcpy)
		bb.LoadDataAddr(vm.R1, "out")
		bb.LoadDataAddr(vm.R2, "arg2")
	})
}

func TestMemcpyAndMemset(t *testing.T) {
	m := callString(t, guest.FnMemcpy, "0123456789", "", func(b *asm.Builder) {
		b.LoadDataAddr(vm.R1, "out")
		b.LoadDataAddr(vm.R2, "arg1")
		b.MovI(vm.R3, 6)
	})
	out, _ := m.Mem.ReadBytes(dataAddr(m, "out"), 6)
	if string(out) != "012345" {
		t.Errorf("memcpy result %q", out)
	}

	m = callString(t, guest.FnMemset, "", "", func(b *asm.Builder) {
		b.LoadDataAddr(vm.R1, "out")
		b.MovI(vm.R2, int32('z'))
		b.MovI(vm.R3, 5)
	})
	out, _ = m.Mem.ReadBytes(dataAddr(m, "out"), 6)
	if string(out[:5]) != "zzzzz" || out[5] != 0 {
		t.Errorf("memset result %q", out)
	}
}

func TestStreq(t *testing.T) {
	cases := []struct {
		a, b string
		want uint32
	}{
		{"abc", "abc", 1},
		{"abc", "abd", 0},
		{"", "", 1},
		{"abc", "ab", 0},
		{"ab", "abc", 0},
	}
	for _, c := range cases {
		m := callString(t, guest.FnStreq, c.a, c.b, nil)
		if m.Regs[vm.R0] != c.want {
			t.Errorf("streq(%q,%q) = %d, want %d", c.a, c.b, m.Regs[vm.R0], c.want)
		}
	}
}

func TestHasPrefix(t *testing.T) {
	cases := []struct {
		s, prefix string
		want      uint32
	}{
		{"GET /index.html", "GET ", 1},
		{"POST /", "GET ", 0},
		{"ftp://x", "ftp://", 1},
		{"ft", "ftp://", 0},
		{"anything", "", 1},
	}
	for _, c := range cases {
		m := callString(t, guest.FnPrefix, c.s, c.prefix, nil)
		if m.Regs[vm.R0] != c.want {
			t.Errorf("hasprefix(%q,%q) = %d, want %d", c.s, c.prefix, m.Regs[vm.R0], c.want)
		}
	}
}

func TestStrstr(t *testing.T) {
	cases := []struct {
		hay, needle string
		wantIdx     int // -1 = not found
	}{
		{"GET / HTTP/1.0\r\nReferer: http://x\r\n", "Referer: ", 16},
		{"abcdef", "cde", 2},
		{"abcdef", "xyz", -1},
		{"abc", "abcdef", -1},
		{"aaa", "aa", 0},
	}
	for _, c := range cases {
		m := callString(t, guest.FnStrstr, c.hay, c.needle, nil)
		got := m.Regs[vm.R0]
		if c.wantIdx < 0 {
			if got != 0 {
				t.Errorf("strstr(%q,%q) = %#x, want NULL", c.hay, c.needle, got)
			}
			continue
		}
		want := dataAddr(m, "arg1") + uint32(c.wantIdx)
		if got != want {
			t.Errorf("strstr(%q,%q) = %#x, want %#x", c.hay, c.needle, got, want)
		}
	}
}

func TestStrchr(t *testing.T) {
	m := callString(t, guest.FnStrchr, "user@host", "", func(b *asm.Builder) {
		b.LoadDataAddr(vm.R1, "arg1")
		b.MovI(vm.R2, int32('@'))
	})
	want := dataAddr(m, "arg1") + 4
	if m.Regs[vm.R0] != want {
		t.Errorf("strchr = %#x, want %#x", m.Regs[vm.R0], want)
	}
	m = callString(t, guest.FnStrchr, "nochar", "", func(b *asm.Builder) {
		b.LoadDataAddr(vm.R1, "arg1")
		b.MovI(vm.R2, int32('@'))
	})
	if m.Regs[vm.R0] != 0 {
		t.Errorf("strchr of absent char = %#x, want 0", m.Regs[vm.R0])
	}
}

func TestLibcLabelsExist(t *testing.T) {
	b := asm.New("labels")
	b.Func("main")
	b.Halt()
	guest.AddLibc(b)
	prog := b.MustBuild()
	for _, label := range []string{
		guest.FnRecv, guest.FnSend, guest.FnExit, guest.FnMalloc, guest.FnFree,
		guest.FnTime, guest.FnRand, guest.FnLogMsg,
		guest.FnStrlen, guest.FnStrcpy, guest.FnStrcat, guest.FnMemcpy, guest.FnMemset,
		guest.FnStreq, guest.FnPrefix, guest.FnStrstr, guest.FnStrchr,
		guest.StrcatStoreLabel, guest.StrcpyStoreLabel,
	} {
		if _, ok := prog.Symbols[label]; !ok {
			t.Errorf("libc label %q missing", label)
		}
	}
	// The labelled stores really are store instructions.
	if prog.Code[prog.Symbols[guest.StrcatStoreLabel]].Op != vm.OpStoreB {
		t.Error("strcat.store is not a byte store")
	}
	if prog.Code[prog.Symbols[guest.StrcpyStoreLabel]].Op != vm.OpStoreB {
		t.Error("strcpy.store is not a byte store")
	}
}

// sanitize makes a quick-generated string usable as a guest C string: strip
// NUL bytes and bound the length.
func sanitize(s string, max int) string {
	s = strings.ReplaceAll(s, "\x00", "x")
	if len(s) > max {
		s = s[:max]
	}
	return s
}

// TestQuickStringRoutinesMatchGo checks strlen/streq/hasprefix/strstr against
// the Go standard library on random inputs.
func TestQuickStringRoutinesMatchGo(t *testing.T) {
	prop := func(rawA, rawB string) bool {
		a := sanitize(rawA, 120)
		b := sanitize(rawB, 60)

		m := callString(t, guest.FnStrlen, a, b, nil)
		if m.Regs[vm.R0] != uint32(len(a)) {
			return false
		}

		m = callString(t, guest.FnStreq, a, b, nil)
		if (m.Regs[vm.R0] == 1) != (a == b) {
			return false
		}

		m = callString(t, guest.FnPrefix, a, b, nil)
		if (m.Regs[vm.R0] == 1) != strings.HasPrefix(a, b) {
			return false
		}

		m = callString(t, guest.FnStrstr, a, b, nil)
		idx := strings.Index(a, b)
		if idx < 0 {
			if m.Regs[vm.R0] != 0 {
				return false
			}
		} else if m.Regs[vm.R0] != dataAddr(m, "arg1")+uint32(idx) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickStrcpyStrcatMatchGo checks the copy routines against Go string
// concatenation on random inputs.
func TestQuickStrcpyStrcatMatchGo(t *testing.T) {
	prop := func(rawA, rawB string) bool {
		a := sanitize(rawA, 100)
		b := sanitize(rawB, 100)
		m := callStrcat(t, a, b)
		out, ok := m.Mem.ReadCString(dataAddr(m, "out"), 4096)
		return ok && out == a+b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
