// Package guest provides the guest-side C library shared by all simulated
// server applications: syscall wrappers (recv, send, malloc, free, ...) and
// the unbounded string routines (strcpy, strcat, ...) whose misuse produces
// the memory-corruption vulnerabilities the paper studies.
package guest

import (
	"sweeper/internal/asm"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Names of the library entry points added by AddLibc. Applications call them
// with the standard convention: arguments in R1..R3, result in R0.
const (
	FnRecv   = "recv"
	FnSend   = "send"
	FnExit   = "exit"
	FnMalloc = "malloc"
	FnFree   = "free"
	FnTime   = "timeofday"
	FnRand   = "random"
	FnLogMsg = "logmsg"
	FnStrlen = "strlen"
	FnStrcpy = "strcpy"
	FnStrcat = "strcat"
	FnMemcpy = "memcpy"
	FnMemset = "memset"
	FnStreq  = "streq"
	FnPrefix = "hasprefix"
	FnStrstr = "strstr"
	FnStrchr = "strchr"
)

// StrcatStoreLabel names the store instruction inside strcat that performs
// the (unbounded) copy; analysis results and tests refer to it. The label is
// placed directly on the instruction so its index can be recovered from the
// program's symbol table.
const StrcatStoreLabel = "strcat.store"

// StrcpyStoreLabel names the unbounded store inside strcpy.
const StrcpyStoreLabel = "strcpy.store"

// AddLibc appends the guest C library to the builder. It may be called once
// per program, before or after the application's own functions.
func AddLibc(b *asm.Builder) {
	addSyscallWrappers(b)
	addStringRoutines(b)
}

func addSyscallWrappers(b *asm.Builder) {
	wrapper := func(name string, num int32) {
		b.Func(name)
		b.MovI(vm.R0, num)
		b.Syscall()
		b.Ret()
	}
	wrapper(FnRecv, proc.SysRecv)
	wrapper(FnSend, proc.SysSend)
	wrapper(FnMalloc, proc.SysMalloc)
	wrapper(FnFree, proc.SysFree)
	wrapper(FnTime, proc.SysTime)
	wrapper(FnRand, proc.SysRand)
	wrapper(FnLogMsg, proc.SysLog)

	// exit does not return.
	b.Func(FnExit)
	b.MovI(vm.R0, proc.SysExit)
	b.Syscall()
	b.Halt()
}

func addStringRoutines(b *asm.Builder) {
	// strlen(s r1) -> r0
	b.Func(FnStrlen)
	b.MovI(vm.R0, 0)
	b.Label("strlen.loop")
	b.LoadB(vm.R4, vm.R1, 0)
	b.CmpI(vm.R4, 0)
	b.Jz("strlen.done")
	b.AddI(vm.R1, 1)
	b.AddI(vm.R0, 1)
	b.Jmp("strlen.loop")
	b.Label("strlen.done")
	b.Ret()

	// strcpy(dst r1, src r2) -> r0 = dst. Unbounded, like the real thing.
	b.Func(FnStrcpy)
	b.Mov(vm.R0, vm.R1)
	b.Label("strcpy.loop")
	b.LoadB(vm.R4, vm.R2, 0)
	b.Label(StrcpyStoreLabel)
	b.StoreB(vm.R1, 0, vm.R4)
	b.CmpI(vm.R4, 0)
	b.Jz("strcpy.done")
	b.AddI(vm.R1, 1)
	b.AddI(vm.R2, 1)
	b.Jmp("strcpy.loop")
	b.Label("strcpy.done")
	b.Ret()

	// strcat(dst r1, src r2) -> r0 = dst. The copy store carries the
	// StrcatStoreLabel; it is the instruction the Squid heap overflow
	// analysis must identify (the paper's 0x4f0f0907 in lib strcat).
	b.Func(FnStrcat)
	b.Mov(vm.R0, vm.R1)
	b.Label("strcat.findend")
	b.LoadB(vm.R4, vm.R1, 0)
	b.CmpI(vm.R4, 0)
	b.Jz("strcat.copy")
	b.AddI(vm.R1, 1)
	b.Jmp("strcat.findend")
	b.Label("strcat.copy")
	b.LoadB(vm.R4, vm.R2, 0)
	b.Label(StrcatStoreLabel)
	b.StoreB(vm.R1, 0, vm.R4)
	b.CmpI(vm.R4, 0)
	b.Jz("strcat.done")
	b.AddI(vm.R1, 1)
	b.AddI(vm.R2, 1)
	b.Jmp("strcat.copy")
	b.Label("strcat.done")
	b.Ret()

	// memcpy(dst r1, src r2, n r3) -> r0 = dst
	b.Func(FnMemcpy)
	b.Mov(vm.R0, vm.R1)
	b.Label("memcpy.loop")
	b.CmpI(vm.R3, 0)
	b.Jz("memcpy.done")
	b.LoadB(vm.R4, vm.R2, 0)
	b.StoreB(vm.R1, 0, vm.R4)
	b.AddI(vm.R1, 1)
	b.AddI(vm.R2, 1)
	b.SubI(vm.R3, 1)
	b.Jmp("memcpy.loop")
	b.Label("memcpy.done")
	b.Ret()

	// memset(dst r1, val r2, n r3) -> r0 = dst
	b.Func(FnMemset)
	b.Mov(vm.R0, vm.R1)
	b.Label("memset.loop")
	b.CmpI(vm.R3, 0)
	b.Jz("memset.done")
	b.StoreB(vm.R1, 0, vm.R2)
	b.AddI(vm.R1, 1)
	b.SubI(vm.R3, 1)
	b.Jmp("memset.loop")
	b.Label("memset.done")
	b.Ret()

	// streq(a r1, b r2) -> r0 = 1 if the strings are equal, else 0
	b.Func(FnStreq)
	b.Label("streq.loop")
	b.LoadB(vm.R4, vm.R1, 0)
	b.LoadB(vm.R5, vm.R2, 0)
	b.Cmp(vm.R4, vm.R5)
	b.Jnz("streq.no")
	b.CmpI(vm.R4, 0)
	b.Jz("streq.yes")
	b.AddI(vm.R1, 1)
	b.AddI(vm.R2, 1)
	b.Jmp("streq.loop")
	b.Label("streq.yes")
	b.MovI(vm.R0, 1)
	b.Ret()
	b.Label("streq.no")
	b.MovI(vm.R0, 0)
	b.Ret()

	// hasprefix(s r1, prefix r2) -> r0 = 1/0
	b.Func(FnPrefix)
	b.Label("hasprefix.loop")
	b.LoadB(vm.R4, vm.R2, 0)
	b.CmpI(vm.R4, 0)
	b.Jz("hasprefix.yes")
	b.LoadB(vm.R5, vm.R1, 0)
	b.Cmp(vm.R5, vm.R4)
	b.Jnz("hasprefix.no")
	b.AddI(vm.R1, 1)
	b.AddI(vm.R2, 1)
	b.Jmp("hasprefix.loop")
	b.Label("hasprefix.yes")
	b.MovI(vm.R0, 1)
	b.Ret()
	b.Label("hasprefix.no")
	b.MovI(vm.R0, 0)
	b.Ret()

	// strstr(haystack r1, needle r2) -> r0 = pointer to first match, or 0
	b.Func(FnStrstr)
	b.Mov(vm.R5, vm.R1) // r5: current haystack position
	b.Label("strstr.outer")
	b.Mov(vm.R6, vm.R5) // r6: haystack cursor
	b.Mov(vm.R7, vm.R2) // r7: needle cursor
	b.Label("strstr.inner")
	b.LoadB(vm.R3, vm.R7, 0)
	b.CmpI(vm.R3, 0)
	b.Jz("strstr.found")
	b.LoadB(vm.R4, vm.R6, 0)
	b.CmpI(vm.R4, 0)
	b.Jz("strstr.notfound")
	b.Cmp(vm.R4, vm.R3)
	b.Jnz("strstr.advance")
	b.AddI(vm.R6, 1)
	b.AddI(vm.R7, 1)
	b.Jmp("strstr.inner")
	b.Label("strstr.advance")
	b.LoadB(vm.R4, vm.R5, 0)
	b.CmpI(vm.R4, 0)
	b.Jz("strstr.notfound")
	b.AddI(vm.R5, 1)
	b.Jmp("strstr.outer")
	b.Label("strstr.found")
	b.Mov(vm.R0, vm.R5)
	b.Ret()
	b.Label("strstr.notfound")
	b.MovI(vm.R0, 0)
	b.Ret()

	// strchr(s r1, ch r2) -> r0 = pointer to first occurrence, or 0
	b.Func(FnStrchr)
	b.Label("strchr.loop")
	b.LoadB(vm.R4, vm.R1, 0)
	b.Cmp(vm.R4, vm.R2)
	b.Jz("strchr.found")
	b.CmpI(vm.R4, 0)
	b.Jz("strchr.notfound")
	b.AddI(vm.R1, 1)
	b.Jmp("strchr.loop")
	b.Label("strchr.found")
	b.Mov(vm.R0, vm.R1)
	b.Ret()
	b.Label("strchr.notfound")
	b.MovI(vm.R0, 0)
	b.Ret()
}
