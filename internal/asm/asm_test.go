package asm

import (
	"strings"
	"testing"

	"sweeper/internal/vm"
)

func TestLabelsAndFixups(t *testing.T) {
	b := New("p")
	b.Func("main")
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Op != vm.OpJmp || prog.Code[0].Imm != 2 {
		t.Errorf("jump target = %d, want 2", prog.Code[0].Imm)
	}
	if prog.Entry != 0 {
		t.Errorf("entry = %d", prog.Entry)
	}
	if prog.Name != "p" || b.Name() != "p" {
		t.Error("name lost")
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := New("p")
	b.Func("main")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("expected undefined label error, got %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := New("p")
	b.Func("main")
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("expected duplicate label error, got %v", err)
	}
}

func TestDuplicateDataLabel(t *testing.T) {
	b := New("p")
	b.DataString("s", "a")
	b.DataString("s", "b")
	b.Func("main")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("expected duplicate data label error")
	}
}

func TestUndefinedDataSymbolInRelocation(t *testing.T) {
	b := New("p")
	b.Func("main")
	b.LoadDataAddr(vm.R1, "missing")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined data symbol") {
		t.Errorf("expected undefined data symbol error, got %v", err)
	}
}

func TestUndefinedCodeSymbolInRelocation(t *testing.T) {
	b := New("p")
	b.Func("main")
	b.LoadCodeAddr(vm.R1, "missing")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined code symbol") {
		t.Errorf("expected undefined code symbol error, got %v", err)
	}
}

func TestDataAlignmentAndContents(t *testing.T) {
	b := New("p")
	b.DataString("a", "xyz") // 4 bytes with NUL
	b.DataWord("w", 0x11223344)
	b.DataBytes("raw", []byte{9, 8, 7})
	b.DataSpace("buf", 10)
	b.Func("main")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	offW := prog.DataSymbols["w"]
	if offW%4 != 0 {
		t.Errorf("word not aligned: offset %d", offW)
	}
	got := uint32(prog.Data[offW]) | uint32(prog.Data[offW+1])<<8 | uint32(prog.Data[offW+2])<<16 | uint32(prog.Data[offW+3])<<24
	if got != 0x11223344 {
		t.Errorf("word = %#x", got)
	}
	offA := prog.DataSymbols["a"]
	if string(prog.Data[offA:offA+3]) != "xyz" || prog.Data[offA+3] != 0 {
		t.Error("string data wrong")
	}
	if _, ok := prog.DataSymbols["buf"]; !ok {
		t.Error("space symbol missing")
	}
}

func TestRelocationsResolved(t *testing.T) {
	b := New("p")
	b.DataWord("val", 5)
	b.Func("main")
	b.LoadDataAddr(vm.R1, "val")
	b.LoadCodeAddr(vm.R2, "fn")
	b.Halt()
	b.Func("fn")
	b.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Relocs) != 2 {
		t.Fatalf("got %d relocations, want 2", len(prog.Relocs))
	}
	kinds := map[vm.RelocKind]bool{}
	for _, r := range prog.Relocs {
		kinds[r.Kind] = true
	}
	if !kinds[vm.RelocData] || !kinds[vm.RelocCode] {
		t.Error("expected one data and one code relocation")
	}
}

func TestSymAnnotationFollowsFunc(t *testing.T) {
	b := New("p")
	b.Func("main")
	b.Nop()
	b.Func("helper")
	b.Nop()
	b.Halt()
	prog := b.MustBuild()
	if prog.Code[0].Sym != "main" || prog.Code[1].Sym != "helper" {
		t.Errorf("syms = %q %q", prog.Code[0].Sym, prog.Code[1].Sym)
	}
}

func TestEmitReturnsIndices(t *testing.T) {
	b := New("p")
	b.Func("main")
	i0 := b.MovI(vm.R1, 1)
	i1 := b.AddI(vm.R1, 2)
	i2 := b.Halt()
	if i0 != 0 || i1 != 1 || i2 != 2 || b.Len() != 3 {
		t.Errorf("indices %d %d %d len %d", i0, i1, i2, b.Len())
	}
}

func TestHasLabelAndSymbols(t *testing.T) {
	b := New("p")
	b.Func("main")
	b.Halt()
	b.Func("aux")
	b.Ret()
	if !b.HasLabel("main") || !b.HasLabel("aux") || b.HasLabel("nope") {
		t.Error("HasLabel wrong")
	}
	syms := b.Symbols()
	if len(syms) != 2 || !strings.Contains(syms[0], "main") {
		t.Errorf("Symbols() = %v", syms)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on error")
		}
	}()
	b := New("p")
	b.Func("main")
	b.Jmp("missing")
	b.MustBuild()
}

func TestBuildIsIdempotentCopy(t *testing.T) {
	b := New("p")
	b.Func("main")
	b.Jmp("main")
	p1 := b.MustBuild()
	p2 := b.MustBuild()
	p1.Code[0].Imm = 999
	if p2.Code[0].Imm == 999 {
		t.Error("Build must return independent copies of the code")
	}
	p1.Data = append(p1.Data, 1)
	_ = p2
}

func TestEveryEmitterProducesExpectedOpcode(t *testing.T) {
	b := New("p")
	b.Func("main")
	checks := []struct {
		idx int
		op  vm.Op
	}{
		{b.Nop(), vm.OpNop},
		{b.MovI(vm.R1, 1), vm.OpMovI},
		{b.Mov(vm.R1, vm.R2), vm.OpMov},
		{b.Lea(vm.R1, vm.BP, -4), vm.OpLea},
		{b.LoadB(vm.R1, vm.R2, 0), vm.OpLoadB},
		{b.LoadW(vm.R1, vm.R2, 0), vm.OpLoadW},
		{b.StoreB(vm.R1, 0, vm.R2), vm.OpStoreB},
		{b.StoreW(vm.R1, 0, vm.R2), vm.OpStoreW},
		{b.Add(vm.R1, vm.R2), vm.OpAdd},
		{b.Sub(vm.R1, vm.R2), vm.OpSub},
		{b.Mul(vm.R1, vm.R2), vm.OpMul},
		{b.Div(vm.R1, vm.R2), vm.OpDiv},
		{b.Mod(vm.R1, vm.R2), vm.OpMod},
		{b.And(vm.R1, vm.R2), vm.OpAnd},
		{b.Or(vm.R1, vm.R2), vm.OpOr},
		{b.Xor(vm.R1, vm.R2), vm.OpXor},
		{b.AddI(vm.R1, 1), vm.OpAddI},
		{b.SubI(vm.R1, 1), vm.OpSubI},
		{b.MulI(vm.R1, 1), vm.OpMulI},
		{b.DivI(vm.R1, 1), vm.OpDivI},
		{b.ModI(vm.R1, 1), vm.OpModI},
		{b.AndI(vm.R1, 1), vm.OpAndI},
		{b.OrI(vm.R1, 1), vm.OpOrI},
		{b.XorI(vm.R1, 1), vm.OpXorI},
		{b.ShlI(vm.R1, 1), vm.OpShlI},
		{b.ShrI(vm.R1, 1), vm.OpShrI},
		{b.Cmp(vm.R1, vm.R2), vm.OpCmp},
		{b.CmpI(vm.R1, 1), vm.OpCmpI},
		{b.Push(vm.R1), vm.OpPush},
		{b.PushI(1), vm.OpPushI},
		{b.Pop(vm.R1), vm.OpPop},
		{b.Syscall(), vm.OpSyscall},
		{b.Ret(), vm.OpRet},
		{b.JmpReg(vm.R1), vm.OpJmpReg},
		{b.CallReg(vm.R1), vm.OpCallReg},
		{b.Jmp("main"), vm.OpJmp},
		{b.Jz("main"), vm.OpJz},
		{b.Jnz("main"), vm.OpJnz},
		{b.Jlt("main"), vm.OpJlt},
		{b.Jle("main"), vm.OpJle},
		{b.Jgt("main"), vm.OpJgt},
		{b.Jge("main"), vm.OpJge},
		{b.Call("main"), vm.OpCall},
		{b.Halt(), vm.OpHalt},
	}
	prog := b.MustBuild()
	for _, c := range checks {
		if prog.Code[c.idx].Op != c.op {
			t.Errorf("instruction %d has op %v, want %v", c.idx, prog.Code[c.idx].Op, c.op)
		}
	}
}
