// Package asm provides a small assembler DSL for building guest programs for
// the vm package. Guest servers (the reproduction's stand-ins for Apache,
// Squid and CVS) and the guest C library are written with this builder.
package asm

import (
	"fmt"
	"sort"

	"sweeper/internal/vm"
)

type fixup struct {
	instr int
	label string
}

type relocFixup struct {
	instr int
	label string
	kind  vm.RelocKind
}

// Builder accumulates instructions, labels and data and produces a vm.Program.
// Methods record errors internally; Build returns the first one.
type Builder struct {
	name   string
	code   []vm.Instr
	labels map[string]int
	fixups []fixup
	relocs []relocFixup

	data       []byte
	dataLabels map[string]uint32

	curSym string
	errs   []error
}

// New returns an empty builder for a program with the given name.
func New(name string) *Builder {
	return &Builder{
		name:       name,
		labels:     make(map[string]int),
		dataLabels: make(map[string]uint32),
	}
}

// Name returns the program name.
func (b *Builder) Name() string { return b.name }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

func (b *Builder) errorf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

func (b *Builder) emit(in vm.Instr) int {
	in.Sym = b.curSym
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errorf("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.code)
}

// Func defines a function entry label and sets the symbol annotation for the
// instructions that follow.
func (b *Builder) Func(name string) {
	b.Label(name)
	b.curSym = name
}

// HasLabel reports whether a code label has been defined.
func (b *Builder) HasLabel(name string) bool {
	_, ok := b.labels[name]
	return ok
}

// --- data segment ---

func (b *Builder) defData(label string, size int) uint32 {
	if _, dup := b.dataLabels[label]; dup {
		b.errorf("duplicate data label %q", label)
		return 0
	}
	// word-align every object
	for len(b.data)%4 != 0 {
		b.data = append(b.data, 0)
	}
	off := uint32(len(b.data))
	b.dataLabels[label] = off
	b.data = append(b.data, make([]byte, size)...)
	return off
}

// DataString defines a NUL-terminated string in the data segment.
func (b *Builder) DataString(label, s string) uint32 {
	off := b.defData(label, len(s)+1)
	copy(b.data[off:], s)
	return off
}

// DataBytes defines a raw byte blob in the data segment.
func (b *Builder) DataBytes(label string, bs []byte) uint32 {
	off := b.defData(label, len(bs))
	copy(b.data[off:], bs)
	return off
}

// DataWord defines a single 32-bit word in the data segment.
func (b *Builder) DataWord(label string, v uint32) uint32 {
	off := b.defData(label, 4)
	b.data[off] = byte(v)
	b.data[off+1] = byte(v >> 8)
	b.data[off+2] = byte(v >> 16)
	b.data[off+3] = byte(v >> 24)
	return off
}

// DataSpace reserves size zeroed bytes in the data segment.
func (b *Builder) DataSpace(label string, size int) uint32 {
	return b.defData(label, size)
}

// --- plain instructions ---

// Nop emits a no-op.
func (b *Builder) Nop() int { return b.emit(vm.Instr{Op: vm.OpNop}) }

// MovI emits rd = imm.
func (b *Builder) MovI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpMovI, Rd: rd, Imm: imm})
}

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpMov, Rd: rd, Rs: rs}) }

// Lea emits rd = rs + imm.
func (b *Builder) Lea(rd, rs vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpLea, Rd: rd, Rs: rs, Imm: imm})
}

// LoadB emits rd = mem8[rs+off].
func (b *Builder) LoadB(rd, rs vm.Reg, off int32) int {
	return b.emit(vm.Instr{Op: vm.OpLoadB, Rd: rd, Rs: rs, Imm: off})
}

// LoadW emits rd = mem32[rs+off].
func (b *Builder) LoadW(rd, rs vm.Reg, off int32) int {
	return b.emit(vm.Instr{Op: vm.OpLoadW, Rd: rd, Rs: rs, Imm: off})
}

// StoreB emits mem8[rd+off] = rs.
func (b *Builder) StoreB(rd vm.Reg, off int32, rs vm.Reg) int {
	return b.emit(vm.Instr{Op: vm.OpStoreB, Rd: rd, Rs: rs, Imm: off})
}

// StoreW emits mem32[rd+off] = rs.
func (b *Builder) StoreW(rd vm.Reg, off int32, rs vm.Reg) int {
	return b.emit(vm.Instr{Op: vm.OpStoreW, Rd: rd, Rs: rs, Imm: off})
}

// Add emits rd += rs.
func (b *Builder) Add(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpAdd, Rd: rd, Rs: rs}) }

// Sub emits rd -= rs.
func (b *Builder) Sub(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpSub, Rd: rd, Rs: rs}) }

// Mul emits rd *= rs.
func (b *Builder) Mul(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpMul, Rd: rd, Rs: rs}) }

// Div emits rd /= rs.
func (b *Builder) Div(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpDiv, Rd: rd, Rs: rs}) }

// Mod emits rd %= rs.
func (b *Builder) Mod(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpMod, Rd: rd, Rs: rs}) }

// And emits rd &= rs.
func (b *Builder) And(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpAnd, Rd: rd, Rs: rs}) }

// Or emits rd |= rs.
func (b *Builder) Or(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpOr, Rd: rd, Rs: rs}) }

// Xor emits rd ^= rs.
func (b *Builder) Xor(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpXor, Rd: rd, Rs: rs}) }

// AddI emits rd += imm.
func (b *Builder) AddI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpAddI, Rd: rd, Imm: imm})
}

// SubI emits rd -= imm.
func (b *Builder) SubI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpSubI, Rd: rd, Imm: imm})
}

// MulI emits rd *= imm.
func (b *Builder) MulI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpMulI, Rd: rd, Imm: imm})
}

// DivI emits rd /= imm.
func (b *Builder) DivI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpDivI, Rd: rd, Imm: imm})
}

// ModI emits rd %= imm.
func (b *Builder) ModI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpModI, Rd: rd, Imm: imm})
}

// AndI emits rd &= imm.
func (b *Builder) AndI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpAndI, Rd: rd, Imm: imm})
}

// OrI emits rd |= imm.
func (b *Builder) OrI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpOrI, Rd: rd, Imm: imm})
}

// XorI emits rd ^= imm.
func (b *Builder) XorI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpXorI, Rd: rd, Imm: imm})
}

// ShlI emits rd <<= imm.
func (b *Builder) ShlI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpShlI, Rd: rd, Imm: imm})
}

// ShrI emits rd >>= imm.
func (b *Builder) ShrI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpShrI, Rd: rd, Imm: imm})
}

// Cmp emits flags = sign(rd - rs).
func (b *Builder) Cmp(rd, rs vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpCmp, Rd: rd, Rs: rs}) }

// CmpI emits flags = sign(rd - imm).
func (b *Builder) CmpI(rd vm.Reg, imm int32) int {
	return b.emit(vm.Instr{Op: vm.OpCmpI, Rd: rd, Imm: imm})
}

// Push emits a push of rd.
func (b *Builder) Push(rd vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpPush, Rd: rd}) }

// PushI emits a push of an immediate.
func (b *Builder) PushI(imm int32) int { return b.emit(vm.Instr{Op: vm.OpPushI, Imm: imm}) }

// Pop emits a pop into rd.
func (b *Builder) Pop(rd vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpPop, Rd: rd}) }

// Syscall emits a syscall instruction (number in R0, args in R1..R3).
func (b *Builder) Syscall() int { return b.emit(vm.Instr{Op: vm.OpSyscall}) }

// Halt emits a halt.
func (b *Builder) Halt() int { return b.emit(vm.Instr{Op: vm.OpHalt}) }

// Ret emits a return.
func (b *Builder) Ret() int { return b.emit(vm.Instr{Op: vm.OpRet}) }

// JmpReg emits an indirect jump through rd.
func (b *Builder) JmpReg(rd vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpJmpReg, Rd: rd}) }

// CallReg emits an indirect call through rd.
func (b *Builder) CallReg(rd vm.Reg) int { return b.emit(vm.Instr{Op: vm.OpCallReg, Rd: rd}) }

// --- label-referencing instructions ---

func (b *Builder) emitBranch(op vm.Op, label string) int {
	idx := b.emit(vm.Instr{Op: op})
	b.fixups = append(b.fixups, fixup{instr: idx, label: label})
	return idx
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) int { return b.emitBranch(vm.OpJmp, label) }

// Jz emits a jump-if-zero to a label.
func (b *Builder) Jz(label string) int { return b.emitBranch(vm.OpJz, label) }

// Jnz emits a jump-if-not-zero to a label.
func (b *Builder) Jnz(label string) int { return b.emitBranch(vm.OpJnz, label) }

// Jlt emits a jump-if-less-than to a label.
func (b *Builder) Jlt(label string) int { return b.emitBranch(vm.OpJlt, label) }

// Jle emits a jump-if-less-or-equal to a label.
func (b *Builder) Jle(label string) int { return b.emitBranch(vm.OpJle, label) }

// Jgt emits a jump-if-greater-than to a label.
func (b *Builder) Jgt(label string) int { return b.emitBranch(vm.OpJgt, label) }

// Jge emits a jump-if-greater-or-equal to a label.
func (b *Builder) Jge(label string) int { return b.emitBranch(vm.OpJge, label) }

// Call emits a call to a labelled function.
func (b *Builder) Call(label string) int { return b.emitBranch(vm.OpCall, label) }

// LoadDataAddr emits rd = &data(label), resolved at load time against the
// data segment base (a data relocation).
func (b *Builder) LoadDataAddr(rd vm.Reg, label string) int {
	idx := b.emit(vm.Instr{Op: vm.OpMovI, Rd: rd})
	b.relocs = append(b.relocs, relocFixup{instr: idx, label: label, kind: vm.RelocData})
	return idx
}

// LoadCodeAddr emits rd = &code(label), resolved at load time against the
// code segment base (a code relocation; used for function pointers).
func (b *Builder) LoadCodeAddr(rd vm.Reg, label string) int {
	idx := b.emit(vm.Instr{Op: vm.OpMovI, Rd: rd})
	b.relocs = append(b.relocs, relocFixup{instr: idx, label: label, kind: vm.RelocCode})
	return idx
}

// --- calling convention helpers ---

// Prologue emits the standard function prologue: save BP, establish the new
// frame and reserve frameSize bytes of locals.
func (b *Builder) Prologue(frameSize int32) {
	b.Push(vm.BP)
	b.Mov(vm.BP, vm.SP)
	if frameSize > 0 {
		b.SubI(vm.SP, frameSize)
	}
}

// Epilogue emits the standard epilogue matching Prologue and returns.
func (b *Builder) Epilogue() {
	b.Mov(vm.SP, vm.BP)
	b.Pop(vm.BP)
	b.Ret()
}

// Build resolves all fixups and relocations and returns the program image.
func (b *Builder) Build() (*vm.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	code := make([]vm.Instr, len(b.code))
	copy(code, b.code)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q referenced by instruction %d", f.label, f.instr)
		}
		code[f.instr].Imm = int32(target)
	}
	var relocs []vm.Reloc
	for _, r := range b.relocs {
		switch r.kind {
		case vm.RelocCode:
			target, ok := b.labels[r.label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined code symbol %q in relocation", r.label)
			}
			relocs = append(relocs, vm.Reloc{InstrIndex: r.instr, Kind: vm.RelocCode, Target: uint32(target)})
		case vm.RelocData:
			off, ok := b.dataLabels[r.label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined data symbol %q in relocation", r.label)
			}
			relocs = append(relocs, vm.Reloc{InstrIndex: r.instr, Kind: vm.RelocData, Target: off})
		}
	}
	entry := 0
	if e, ok := b.labels["main"]; ok {
		entry = e
	}
	symbols := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		symbols[k] = v
	}
	dataSymbols := make(map[string]uint32, len(b.dataLabels))
	for k, v := range b.dataLabels {
		dataSymbols[k] = v
	}
	data := make([]byte, len(b.data))
	copy(data, b.data)
	return &vm.Program{
		Name:        b.name,
		Code:        code,
		Data:        data,
		Relocs:      relocs,
		Symbols:     symbols,
		DataSymbols: dataSymbols,
		Entry:       entry,
	}, nil
}

// MustBuild is Build but panics on error; intended for static, known-good
// programs constructed at init time and in tests.
func (b *Builder) MustBuild() *vm.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Symbols returns the defined code labels sorted by instruction index, for
// diagnostics and disassembly listings.
func (b *Builder) Symbols() []string {
	type sym struct {
		name string
		idx  int
	}
	syms := make([]sym, 0, len(b.labels))
	for name, idx := range b.labels {
		syms = append(syms, sym{name, idx})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].idx < syms[j].idx })
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = fmt.Sprintf("%6d %s", s.idx, s.name)
	}
	return out
}
