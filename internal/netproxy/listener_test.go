package netproxy

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), []byte("hello world"), bytes.Repeat([]byte{0xAB}, 70000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("round trip of %d bytes differs", len(p))
		}
	}
}

func TestFrameOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Error("WriteFrame accepted an oversized frame")
	}
	// A poisoned length prefix must be rejected before any allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("ReadFrame accepted a poisoned length prefix")
	}
}

// echoBackend is a minimal in-test guest: it accepts every submission (or
// filters payloads with a marker) and serves each accepted request from its
// own goroutine by echoing the payload back through Resolve.
type echoBackend struct {
	mu     sync.Mutex
	nextID int
	l      *Listener
}

func (b *echoBackend) submit(payload []byte, src string) (int, byte) {
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.mu.Unlock()
	if bytes.Contains(payload, []byte("FILTERME")) {
		return id, StatusFiltered
	}
	if bytes.Contains(payload, []byte("HALTED")) {
		return id, StatusUnavailable
	}
	go b.l.Resolve(id, StatusOK, append([]byte("echo:"), payload...))
	return id, StatusOK
}

func newEchoListener(t *testing.T) (*Listener, *echoBackend) {
	t.Helper()
	b := &echoBackend{}
	l, err := NewListener("127.0.0.1:0", b.submit)
	if err != nil {
		t.Fatalf("NewListener: %v", err)
	}
	b.l = l
	t.Cleanup(func() { l.Close() })
	return l, b
}

func TestListenerEcho(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	l, _ := newEchoListener(t)
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		req := []byte(fmt.Sprintf("request-%d", i))
		status, resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("Do(%d): %v", i, err)
		}
		if status != StatusOK {
			t.Fatalf("Do(%d) status = %s, want ok", i, StatusName(status))
		}
		if want := "echo:" + string(req); string(resp) != want {
			t.Fatalf("Do(%d) = %q, want %q", i, resp, want)
		}
	}
	if l.Latency().Count() != 50 {
		t.Errorf("latency recorder saw %d responses, want 50", l.Latency().Count())
	}
	if l.Latency().Quantile(0.5) <= 0 {
		t.Errorf("latency p50 = %v, want > 0", l.Latency().Quantile(0.5))
	}
}

func TestListenerFiltered(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	l, _ := newEchoListener(t)
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	status, resp, err := c.Do([]byte("please FILTERME now"))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if status != StatusFiltered || len(resp) != 0 {
		t.Errorf("filtered request got status %s payload %q", StatusName(status), resp)
	}
	// The connection must survive a filtered request.
	if status, _, err := c.Do([]byte("clean")); err != nil || status != StatusOK {
		t.Errorf("request after filtered one: status %s, err %v", StatusName(status), err)
	}
}

func TestListenerConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	l, _ := newEchoListener(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	const clients, perClient = 8, 40
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(l.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				req := []byte(fmt.Sprintf("c%d-r%d", i, j))
				status, resp, err := c.Do(req)
				if err != nil || status != StatusOK || string(resp) != "echo:"+string(req) {
					errs <- fmt.Errorf("client %d req %d: status %s resp %q err %v", i, j, StatusName(status), resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := l.Latency().Count(); got != clients*perClient {
		t.Errorf("latency recorder saw %d responses, want %d", got, clients*perClient)
	}
}

func TestListenerCloseFailsWaiters(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	// A backend that never resolves: Close must fail the hung waiter.
	var nextID int
	var mu sync.Mutex
	l, err := NewListener("127.0.0.1:0", func(payload []byte, src string) (int, byte) {
		mu.Lock()
		defer mu.Unlock()
		nextID++
		return nextID, StatusOK
	})
	if err != nil {
		t.Fatalf("NewListener: %v", err)
	}
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		status, _, err := c.Do([]byte("stuck"))
		if err == nil && status != StatusError {
			err = fmt.Errorf("status %s, want error", StatusName(status))
		} else {
			// Either outcome is a correct way to fail the waiter: an explicit
			// StatusError frame, or the connection torn down by Close.
			err = nil
		}
		done <- err
	}()
	l.Close()
	if err := <-done; err != nil {
		t.Error(err)
	}
}

func TestListenerUnavailableSubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	// A submission the guest cannot take (halted) is answered immediately
	// with StatusUnavailable — no waiter, no hang — and the connection
	// stays usable for when the guest comes back.
	l, _ := newEchoListener(t)
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	status, resp, err := c.Do([]byte("HALTED guest"))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if status != StatusUnavailable || len(resp) != 0 {
		t.Errorf("unavailable submit got status %s payload %q, want unavailable", StatusName(status), resp)
	}
	if status, _, err := c.Do([]byte("clean")); err != nil || status != StatusOK {
		t.Errorf("request after unavailable one: status %s, err %v", StatusName(status), err)
	}
}

func TestClientDoTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	// A wedged daemon: accepts the request, registers the waiter, never
	// resolves it. Without a timeout Do would hang forever; with one it
	// must fail with an explicit deadline error.
	var nextID int
	var mu sync.Mutex
	l, err := NewListener("127.0.0.1:0", func(payload []byte, src string) (int, byte) {
		mu.Lock()
		defer mu.Unlock()
		nextID++
		return nextID, StatusOK
	})
	if err != nil {
		t.Fatalf("NewListener: %v", err)
	}
	defer l.Close()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	start := time.Now()
	_, _, err = c.Do([]byte("never answered"))
	if err == nil {
		t.Fatal("Do returned without a response from a wedged daemon")
	}
	if !strings.Contains(err.Error(), "did not answer") {
		t.Errorf("Do error %q does not name the timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Do took %v to time out; the 50ms deadline did not apply", elapsed)
	}
}

func TestClientUnreachable(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	// Grab a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = Dial(addr)
	if err == nil {
		t.Fatal("Dial succeeded against a closed port")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("Dial error %q does not name the daemon unreachable", err)
	}
}

func TestClientClosedMidRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	// A raw listener that accepts one connection, reads the request and
	// slams the connection shut without responding.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ReadFrame(conn)
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	_, _, err = c.Do([]byte("doomed"))
	if err == nil {
		t.Fatal("Do succeeded on a connection closed mid-request")
	}
	if !strings.Contains(err.Error(), "mid-request") {
		t.Errorf("Do error %q does not name the mid-request close", err)
	}
}
