package netproxy

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

type substringFilter struct {
	name string
	sub  []byte
}

func (f *substringFilter) Name() string              { return f.name }
func (f *substringFilter) Match(payload []byte) bool { return bytes.Contains(payload, f.sub) }

func TestSubmitAndNext(t *testing.T) {
	p := New()
	r1, ok := p.Submit([]byte("one"), "a", false)
	if !ok || r1.ID != 1 {
		t.Fatalf("first submit: %v %v", r1, ok)
	}
	r2, _ := p.Submit([]byte("two"), "b", true)
	if r2.ID != 2 || !r2.Malicious || r2.Src != "b" {
		t.Errorf("second request metadata wrong: %+v", r2)
	}
	if p.Pending() != 2 {
		t.Errorf("pending = %d", p.Pending())
	}
	got1, ok := p.Next()
	got2, _ := p.Next()
	if !ok || string(got1.Payload) != "one" || string(got2.Payload) != "two" {
		t.Error("FIFO order violated")
	}
	if _, ok := p.Next(); ok {
		t.Error("Next on empty queue should fail")
	}
	st := p.Stats()
	if st.Submitted != 2 || st.Delivered != 2 || st.Pending != 0 || st.Filtered != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestSubmitCopiesPayload(t *testing.T) {
	p := New()
	buf := []byte("mutate me")
	r, _ := p.Submit(buf, "c", false)
	buf[0] = 'X'
	if r.Payload[0] == 'X' {
		t.Error("proxy must keep its own copy of the payload")
	}
}

func TestFiltering(t *testing.T) {
	p := New()
	p.AddFilter(&substringFilter{name: "worm-sig", sub: []byte("EVIL")})
	if _, ok := p.Submit([]byte("normal request"), "c", false); !ok {
		t.Error("benign request filtered")
	}
	if _, ok := p.Submit([]byte("an EVIL request"), "w", true); ok {
		t.Error("matching request not filtered")
	}
	if got := p.Filters(); len(got) != 1 || got[0] != "worm-sig" {
		t.Errorf("Filters() = %v", got)
	}
	dropped := p.FilteredRequests()
	if len(dropped) != 1 || dropped[0].Filter != "worm-sig" {
		t.Errorf("FilteredRequests = %+v", dropped)
	}
	if p.Stats().Filtered != 1 {
		t.Error("filtered counter wrong")
	}
	if !p.RemoveFilter("worm-sig") || p.RemoveFilter("worm-sig") {
		t.Error("RemoveFilter bookkeeping wrong")
	}
	if _, ok := p.Submit([]byte("an EVIL request"), "w", true); !ok {
		t.Error("request should pass after the filter was removed")
	}
}

func TestRequestCloneAndString(t *testing.T) {
	r := &Request{ID: 7, Payload: []byte("GET /"), Src: "client"}
	c := r.Clone()
	c.Payload[0] = 'X'
	if r.Payload[0] == 'X' {
		t.Error("Clone must deep-copy the payload")
	}
	if s := r.String(); s == "" || !bytes.Contains([]byte(s), []byte("req#7")) {
		t.Errorf("String() = %q", s)
	}
	long := &Request{ID: 8, Payload: bytes.Repeat([]byte("A"), 100)}
	if len(long.String()) > 120 {
		t.Error("String() should truncate long payloads")
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	p := New()
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p.Submit([]byte(fmt.Sprintf("req %d/%d", w, i)), "c", false)
			}
		}(w)
	}
	wg.Wait()
	if p.Pending() != workers*each {
		t.Fatalf("pending = %d, want %d", p.Pending(), workers*each)
	}
	seen := map[int]bool{}
	for {
		r, ok := p.Next()
		if !ok {
			break
		}
		if seen[r.ID] {
			t.Fatalf("duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != workers*each {
		t.Errorf("delivered %d unique requests", len(seen))
	}
}

// TestAddFilterDuringSubmitStorm installs input-signature filters while
// submitter goroutines storm the proxy and a consumer drains it — the
// antibody-installed-mid-epidemic shape. Whatever interleaving happens, no
// request may be dropped or double-delivered: every submitted request ends
// up either filtered or delivered exactly once, and the Stats totals
// balance. Run under -race this also proves the locking.
func TestAddFilterDuringSubmitStorm(t *testing.T) {
	p := New()
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				payload := fmt.Sprintf("req %d/%d", w, i)
				if i%3 == 0 {
					payload += " ATTACK"
				}
				p.Submit([]byte(payload), "c", false)
			}
		}(w)
	}
	// Mid-storm, antibodies arrive: one filter matching the attack marker,
	// plus transient filters that are installed and removed again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.AddFilter(&substringFilter{name: "sig-attack", sub: []byte("ATTACK")})
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("transient-%d", i)
			p.AddFilter(&substringFilter{name: name, sub: []byte("NEVERMATCHES")})
			if !p.RemoveFilter(name) {
				t.Errorf("transient filter %s vanished", name)
				return
			}
		}
	}()
	// A concurrent consumer drains deliveries while the storm runs.
	delivered := make(map[int]bool)
	var consumerWg sync.WaitGroup
	stop := make(chan struct{})
	consumerWg.Add(1)
	go func() {
		defer consumerWg.Done()
		for {
			r, ok := p.Next()
			if !ok {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			if delivered[r.ID] {
				t.Errorf("request %d delivered twice", r.ID)
				return
			}
			delivered[r.ID] = true
		}
	}()
	wg.Wait()
	close(stop)
	consumerWg.Wait()
	// Drain what the consumer left behind after stop.
	for {
		r, ok := p.Next()
		if !ok {
			break
		}
		if delivered[r.ID] {
			t.Fatalf("request %d delivered twice", r.ID)
		}
		delivered[r.ID] = true
	}
	st := p.Stats()
	if st.Submitted != workers*each {
		t.Errorf("submitted = %d, want %d", st.Submitted, workers*each)
	}
	if st.Pending != 0 {
		t.Errorf("pending = %d after drain", st.Pending)
	}
	if st.Filtered+st.Delivered != st.Submitted {
		t.Errorf("stats do not balance: %d filtered + %d delivered != %d submitted",
			st.Filtered, st.Delivered, st.Submitted)
	}
	if len(delivered) != st.Delivered {
		t.Errorf("consumer saw %d unique requests, proxy counted %d deliveries", len(delivered), st.Delivered)
	}
	// No filtered request may also have been delivered.
	for _, d := range p.FilteredRequests() {
		if delivered[d.Request.ID] {
			t.Errorf("request %d both filtered (by %s) and delivered", d.Request.ID, d.Filter)
		}
	}
}
