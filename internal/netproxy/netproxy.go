// Package netproxy implements the network proxy process of the Sweeper
// runtime module: it queues incoming requests for the protected server, logs
// every accepted request so that execution can be replayed from a checkpoint,
// and applies signature-based input filtering (one of the two antibody
// forms) before requests ever reach the server.
package netproxy

import (
	"fmt"
	"sync"
)

// Request is one client request as seen by the proxy.
type Request struct {
	ID      int
	Payload []byte
	Src     string // source host identifier (used by community-defence experiments)

	// Malicious is ground truth used only by experiments and tests to
	// compute false positives/negatives; the defence never reads it.
	Malicious bool
}

// Clone returns a deep copy of the request.
func (r *Request) Clone() *Request {
	cp := *r
	cp.Payload = append([]byte(nil), r.Payload...)
	return &cp
}

// String summarises the request for logs.
func (r *Request) String() string {
	n := len(r.Payload)
	if n > 24 {
		n = 24
	}
	return fmt.Sprintf("req#%d (%d bytes) %q", r.ID, len(r.Payload), string(r.Payload[:n]))
}

// Filter is an input-signature filter applied to request payloads.
type Filter interface {
	Name() string
	Match(payload []byte) bool
}

// FilterDecision records a request dropped by a filter.
type FilterDecision struct {
	Request *Request
	Filter  string
}

// Stats summarises the proxy's activity.
type Stats struct {
	Submitted int
	Filtered  int
	Delivered int
	Pending   int
}

// Proxy is a logging, filtering request queue. It is safe for concurrent use:
// workload generators submit requests from their own goroutines while the
// protected process consumes them.
type Proxy struct {
	mu       sync.Mutex
	nextID   int
	queue    []*Request
	filters  []Filter
	filtered []FilterDecision

	submitted int
	delivered int
}

// New returns an empty proxy with no filters installed.
func New() *Proxy {
	return &Proxy{nextID: 1}
}

// AddFilter installs an input-signature filter. Subsequent submissions whose
// payload matches any installed filter are dropped before reaching the server.
func (p *Proxy) AddFilter(f Filter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.filters = append(p.filters, f)
}

// RemoveFilter removes the named filter and reports whether it was installed.
func (p *Proxy) RemoveFilter(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, f := range p.filters {
		if f.Name() == name {
			p.filters = append(p.filters[:i], p.filters[i+1:]...)
			return true
		}
	}
	return false
}

// Filters returns the names of the installed filters.
func (p *Proxy) Filters() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, len(p.filters))
	for i, f := range p.filters {
		names[i] = f.Name()
	}
	return names
}

// Submit offers a request payload to the proxy. If an installed filter
// matches, the request is dropped and accepted=false is returned; otherwise
// the request is queued for delivery.
func (p *Proxy) Submit(payload []byte, src string, malicious bool) (req *Request, accepted bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.submitted++
	req = &Request{ID: p.nextID, Payload: append([]byte(nil), payload...), Src: src, Malicious: malicious}
	p.nextID++
	for _, f := range p.filters {
		if f.Match(req.Payload) {
			p.filtered = append(p.filtered, FilterDecision{Request: req, Filter: f.Name()})
			return req, false
		}
	}
	p.queue = append(p.queue, req)
	return req, true
}

// Next pops the next queued request, if any.
func (p *Proxy) Next() (*Request, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil, false
	}
	req := p.queue[0]
	p.queue = p.queue[1:]
	p.delivered++
	return req, true
}

// Pending returns the number of queued requests.
func (p *Proxy) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// FilteredRequests returns the requests dropped by filters so far.
func (p *Proxy) FilteredRequests() []FilterDecision {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FilterDecision, len(p.filtered))
	copy(out, p.filtered)
	return out
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Submitted: p.submitted,
		Filtered:  len(p.filtered),
		Delivered: p.delivered,
		Pending:   len(p.queue),
	}
}
