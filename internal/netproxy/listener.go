package netproxy

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sweeper/internal/metrics"
)

// Wire protocol of the TCP front end. A request frame is a 4-byte big-endian
// payload length followed by the payload; the response frame on the same
// connection is a 4-byte big-endian length followed by one status byte and
// the response payload (the concatenated guest sends for that request).
// Connections are serial — one outstanding request per connection — which is
// exactly the per-client view the paper's Figure 5 measures.
const (
	// StatusOK: the guest served the request; the payload is its output.
	StatusOK = 0x00
	// StatusFiltered: an input-signature antibody dropped the request at the
	// proxy, before it reached the guest.
	StatusFiltered = 0x01
	// StatusAbsorbed: the request was identified as an attack input and
	// excised during recovery; the service survived, the request got nothing.
	StatusAbsorbed = 0x02
	// StatusError: the service cannot answer (daemon shutting down,
	// connection-level failure).
	StatusError = 0x03
	// StatusUnavailable: the guest cannot take the request right now — it
	// halted, or the submission failed before reaching the queue. Distinct
	// from StatusError so clients can tell "this daemon is going away" from
	// "this guest is down, the daemon may restart it warm".
	StatusUnavailable = 0x04

	// MaxFrameBytes bounds a request or response frame; larger length
	// prefixes poison the connection.
	MaxFrameBytes = 1 << 20
)

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("netproxy: frame of %d bytes exceeds the %d-byte limit", len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("netproxy: frame of %d bytes exceeds the %d-byte limit", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// SubmitFunc offers one framed request payload to a protected guest and
// returns the proxy-assigned request ID plus a status byte: StatusOK means
// the request was accepted into the queue and will be resolved later;
// anything else (StatusFiltered for a signature match, StatusUnavailable
// for a halted guest or failed submission) is answered to the client
// immediately. The Listener calls it with its own mutex held, atomically
// with waiter registration, so a completion for the returned ID can never
// arrive before the waiter exists.
type SubmitFunc func(payload []byte, src string) (reqID int, status byte)

type tcpOutcome struct {
	status  byte
	payload []byte
}

// Listener is the TCP front end of one protected guest: it accepts
// connections, reads length-prefixed request frames, submits them through
// the guest's filtering proxy, and writes the response frame back on the
// same connection when the guest completes (or the defence absorbs) the
// request. Every response is timed arrival→write-back into a
// metrics.LatencyRecorder — the client-observed sojourn time.
type Listener struct {
	ln     net.Listener
	submit SubmitFunc
	lat    *metrics.LatencyRecorder

	mu      sync.Mutex
	waiters map[int]chan tcpOutcome
	closed  bool
	wg      sync.WaitGroup
}

// NewListener starts a TCP front end on addr (e.g. "127.0.0.1:0") feeding
// submit. The returned listener is already accepting.
func NewListener(addr string, submit SubmitFunc) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproxy: listen %s: %w", addr, err)
	}
	l := &Listener{
		ln:      ln,
		submit:  submit,
		lat:     metrics.NewLatencyRecorder(),
		waiters: make(map[int]chan tcpOutcome),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's bound address ("host:port").
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Latency returns the recorder of client-observed sojourn times.
func (l *Listener) Latency() *metrics.LatencyRecorder { return l.lat }

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // Close shut the listener down
		}
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

func (l *Listener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	src := conn.RemoteAddr().String()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			return // client went away (or sent garbage); drop the connection
		}
		start := time.Now()

		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			l.respond(bw, start, StatusError, nil)
			return
		}
		id, st := l.submit(payload, src)
		var ch chan tcpOutcome
		if st == StatusOK {
			// Registered under the same critical section as the submit: the
			// guest cannot complete the request before the waiter exists.
			ch = make(chan tcpOutcome, 1)
			l.waiters[id] = ch
		}
		l.mu.Unlock()

		if st != StatusOK {
			// Rejected before queueing (filtered, or the guest is down):
			// answer immediately with the submit status.
			if !l.respond(bw, start, st, nil) {
				return
			}
			continue
		}
		out := <-ch
		if !l.respond(bw, start, out.status, out.payload) {
			return
		}
	}
}

// respond writes one response frame and records the sojourn time. It reports
// whether the connection is still usable.
func (l *Listener) respond(bw *bufio.Writer, start time.Time, status byte, payload []byte) bool {
	frame := make([]byte, 1+len(payload))
	frame[0] = status
	copy(frame[1:], payload)
	if err := WriteFrame(bw, frame); err != nil {
		return false
	}
	if err := bw.Flush(); err != nil {
		return false
	}
	l.lat.Record(time.Since(start))
	return true
}

// Resolve delivers the outcome for one submitted request to its waiting
// connection, unblocking the response write. It reports whether a waiter was
// found; a missing waiter (client disconnected, or a replayed completion of
// a request answered before a rollback) is harmless.
func (l *Listener) Resolve(reqID int, status byte, payload []byte) bool {
	l.mu.Lock()
	ch, ok := l.waiters[reqID]
	if ok {
		delete(l.waiters, reqID)
	}
	l.mu.Unlock()
	if !ok {
		return false
	}
	ch <- tcpOutcome{status: status, payload: payload}
	return true
}

// ResolveAll fails every outstanding waiter with the given status. Used when
// the guest halts or the daemon shuts down.
func (l *Listener) ResolveAll(status byte) {
	l.mu.Lock()
	waiters := l.waiters
	l.waiters = make(map[int]chan tcpOutcome)
	l.mu.Unlock()
	for _, ch := range waiters {
		ch <- tcpOutcome{status: status}
	}
}

// Close stops accepting, fails outstanding waiters with StatusError and
// waits for the connection goroutines to drain.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.ln.Close()
	l.ResolveAll(StatusError)
	l.wg.Wait()
	return err
}

// Client is a framed-protocol client for the TCP front end: one connection,
// serial request/response. wormsim and the client-latency experiments drive
// guests through it.
type Client struct {
	addr    string
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration
}

// Dial connects to a front-end listener. The error distinguishes an
// unreachable daemon clearly (connection refused, timeout) so callers can
// exit non-zero with a useful diagnostic.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netproxy: daemon unreachable at %s: %w", addr, err)
	}
	return &Client{
		addr: addr,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Addr returns the address the client dialed.
func (c *Client) Addr() string { return c.addr }

// SetTimeout bounds every subsequent Do call: a daemon that accepts the
// request but never answers (wedged, crashed mid-request) fails the call
// with a deadline error after d instead of hanging the client forever. Zero
// restores the unbounded default.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Do sends one request payload and blocks for its response frame, returning
// the status byte and response payload. A connection torn down mid-request
// is reported as an explicit error rather than a bare EOF; with SetTimeout
// configured, a response that does not arrive in time is an explicit
// timeout error (and the connection is no longer usable — a late response
// frame would desynchronise the stream).
func (c *Client) Do(payload []byte) (status byte, resp []byte, err error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := WriteFrame(c.bw, payload); err != nil {
		return 0, nil, fmt.Errorf("netproxy: sending request to %s: %w", c.addr, err)
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, fmt.Errorf("netproxy: sending request to %s: %w", c.addr, err)
	}
	frame, err := ReadFrame(c.br)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("netproxy: daemon at %s closed the connection mid-request", c.addr)
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return 0, nil, fmt.Errorf("netproxy: daemon at %s did not answer within %v: %w", c.addr, c.timeout, err)
		}
		return 0, nil, fmt.Errorf("netproxy: reading response from %s: %w", c.addr, err)
	}
	if len(frame) < 1 {
		return 0, nil, fmt.Errorf("netproxy: daemon at %s sent an empty response frame", c.addr)
	}
	return frame[0], frame[1:], nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// StatusName returns the human-readable name of a response status byte.
func StatusName(status byte) string {
	switch status {
	case StatusOK:
		return "ok"
	case StatusFiltered:
		return "filtered"
	case StatusAbsorbed:
		return "absorbed"
	case StatusError:
		return "error"
	case StatusUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("status-%d", status)
	}
}
