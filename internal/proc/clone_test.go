package proc

import (
	"fmt"
	"sync"
	"testing"

	"sweeper/internal/asm"
	"sweeper/internal/netproxy"
	"sweeper/internal/vm"
)

// cloneTestServer builds a guest that, per request, receives into a static
// buffer, consults time and rand (nondeterministic events the replay log
// must reproduce), and echoes the payload back. It uses raw syscalls (this
// internal test cannot import the guest libc, which depends on proc).
func cloneTestServer() *vm.Program {
	b := asm.New("clone-test")
	b.DataSpace("buf", 2048)
	b.Func("main")
	b.Label("main.loop")
	b.LoadDataAddr(vm.R1, "buf")
	b.MovI(vm.R2, 2048)
	b.MovI(vm.R0, SysRecv)
	b.Syscall()
	b.Mov(vm.R4, vm.R0) // request length
	b.MovI(vm.R0, SysTime)
	b.Syscall()
	b.MovI(vm.R0, SysRand)
	b.Syscall()
	b.LoadDataAddr(vm.R1, "buf")
	b.Mov(vm.R2, vm.R4)
	b.MovI(vm.R0, SysSend)
	b.Syscall()
	b.Jmp("main.loop")
	return b.MustBuild()
}

func newCloneTestProcess(t *testing.T) (*Process, *netproxy.Proxy) {
	t.Helper()
	proxy := netproxy.New()
	p, err := New("clone-test", cloneTestServer(), vm.DefaultLayout(), proxy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, proxy
}

func TestCloneReplaysDeterministically(t *testing.T) {
	p, proxy := newCloneTestProcess(t)
	snap := p.Snapshot(1)
	for i := 0; i < 5; i++ {
		proxy.Submit([]byte(fmt.Sprintf("req-%d....", i)), "client", false)
	}
	stop := p.Run(0)
	if stop.Reason != vm.StopWaitInput {
		t.Fatalf("live run stopped with %v", stop.Reason)
	}
	if got := len(p.Outputs()); got != 5 {
		t.Fatalf("served %d requests, want 5", got)
	}

	clone, err := p.Clone(snap)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Mode() != ModeReplay {
		t.Fatalf("clone mode = %v, want replay", clone.Mode())
	}
	stop = clone.Run(0)
	if stop.Reason != vm.StopWaitInput {
		t.Fatalf("clone replay stopped with %v", stop.Reason)
	}
	if diverged, detail := clone.Diverged(); diverged {
		t.Fatalf("clone replay diverged: %s", detail)
	}
	if got := clone.ServedRequests(); got != p.ServedRequests() {
		t.Errorf("clone served %d, live served %d", got, p.ServedRequests())
	}
}

func TestCloneIsIsolatedFromParent(t *testing.T) {
	p, proxy := newCloneTestProcess(t)
	snap := p.Snapshot(1)
	proxy.Submit([]byte("aaaa"), "client", false)
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("live run stopped with %v", stop.Reason)
	}
	logLen := p.Log.Len()

	clone, err := p.Clone(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Trash the clone's memory, registers and request sets; the parent must
	// not notice any of it.
	clone.Machine.Mem.WriteBytes(p.Machine.Layout().DataBase, []byte{1, 2, 3, 4})
	clone.Machine.Regs[vm.R1] = 0xdeadbeef
	clone.DropRequests(1)
	clone.Run(0)

	if p.Log.Len() != logLen {
		t.Errorf("parent log grew from %d to %d during clone replay", logLen, p.Log.Len())
	}
	if len(p.skip) != 0 {
		t.Errorf("parent skip set polluted by clone: %v", p.skip)
	}
	// Parent continues serving live traffic unperturbed.
	proxy.Submit([]byte("bbbb"), "client", false)
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("parent run after clone stopped with %v", stop.Reason)
	}
	if got := p.ServedRequests(); got != 2 {
		t.Errorf("parent served %d, want 2", got)
	}
	if diverged, detail := p.Diverged(); diverged {
		t.Errorf("parent diverged: %s", detail)
	}
}

// TestConcurrentClonesReplayIdentically is the fork-for-parallel-consumers
// property the parallel analysis engine rests on: many clones of one
// snapshot replaying concurrently — each writing to its own COW view of the
// shared pages — all see the same deterministic execution.
func TestConcurrentClonesReplayIdentically(t *testing.T) {
	p, proxy := newCloneTestProcess(t)
	snap := p.Snapshot(1)
	for i := 0; i < 8; i++ {
		proxy.Submit([]byte(fmt.Sprintf("req-%d....", i)), "client", false)
	}
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("live run stopped with %v", stop.Reason)
	}

	const clones = 8
	var wg sync.WaitGroup
	served := make([]int, clones)
	diverged := make([]bool, clones)
	errs := make([]error, clones)
	for c := 0; c < clones; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			clone, err := p.Clone(snap)
			if err != nil {
				errs[c] = err
				return
			}
			clone.Run(0)
			served[c] = clone.ServedRequests()
			diverged[c], _ = clone.Diverged()
		}(c)
	}
	wg.Wait()
	for c := 0; c < clones; c++ {
		if errs[c] != nil {
			t.Fatalf("clone %d: %v", c, errs[c])
		}
		if served[c] != p.ServedRequests() {
			t.Errorf("clone %d served %d, want %d", c, served[c], p.ServedRequests())
		}
		if diverged[c] {
			t.Errorf("clone %d diverged", c)
		}
	}
}
