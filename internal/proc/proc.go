// Package proc implements the protected process runtime: it loads a guest
// program into a vm.Machine, services its syscalls (network receive/send,
// malloc/free, time, random numbers), logs every nondeterministic event for
// Flashback-style deterministic replay, and exposes whole-process snapshot
// and rollback used by the checkpoint manager.
package proc

import (
	"bytes"
	"fmt"

	"sweeper/internal/heap"
	"sweeper/internal/netproxy"
	"sweeper/internal/replay"
	"sweeper/internal/vm"
)

// Guest syscall numbers (placed in R0 before the syscall instruction).
const (
	SysRecv   = 1 // R1=buffer, R2=capacity -> R0=bytes received (blocks when no request is queued)
	SysSend   = 2 // R1=buffer, R2=length  -> R0=length
	SysExit   = 3 // terminate the guest
	SysMalloc = 4 // R1=size -> R0=pointer (0 on exhaustion)
	SysFree   = 5 // R1=pointer
	SysTime   = 6 // -> R0=virtual milliseconds
	SysRand   = 7 // -> R0=pseudo random 32-bit value
	SysLog    = 8 // R1=buffer, R2=length: debug message to the host
)

// Mode selects where nondeterministic inputs come from.
type Mode uint8

// Execution modes. In ModeLive requests come from the proxy and outputs reach
// the client; in ModeReplay they come from the event log and outputs are
// sandboxed (dropped, or compared for the output-commit check).
const (
	ModeLive Mode = iota
	ModeReplay
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeLive {
		return "live"
	}
	return "replay"
}

// OutputRecord is one send() performed by the guest while serving a request.
type OutputRecord struct {
	RequestID int
	Data      []byte
}

// LogMessage is a debug message emitted by the guest via SysLog.
type LogMessage struct {
	RequestID int
	Text      string
}

// Options configure process creation.
type Options struct {
	// HeapSize overrides the layout's heap size if non-zero.
	HeapSize uint32
	// MmapThreshold overrides the allocator's large-object threshold if
	// non-zero (see the heap package).
	MmapThreshold uint32
	// RandSeed seeds the guest-visible pseudo random number generator.
	RandSeed uint32
	// SyscallCycles is the extra virtual cost charged per syscall beyond the
	// machine's base cost; it models kernel entry/exit and I/O. Zero uses a
	// default.
	SyscallCycles uint64
}

const defaultSyscallCycles = 400

// Process is a guest program under the control of the Sweeper runtime module.
type Process struct {
	Name    string
	Machine *vm.Machine
	Alloc   *heap.Allocator
	Log     *replay.Log

	proxy *netproxy.Proxy
	mode  Mode
	// replayThenLive makes the process fall through to live inputs once the
	// event log is exhausted during replay; recovery uses it, analysis does not.
	replayThenLive bool
	skip           map[int]bool // request IDs temporarily dropped during one replay
	excised        map[int]bool // request IDs permanently removed from history (attack inputs)
	// stopBeforeReq, when non-zero, suspends a replay at the recv boundary
	// immediately before this request would be delivered: the recv returns
	// SysWaitInput without consuming the request, leaving the log cursor
	// positioned so a later run (or an adopting process) can continue from
	// exactly that boundary. Pipelined recovery uses it to replay the benign
	// history prefix while the analyses still deliberate over the suspect.
	stopBeforeReq int

	outputs     []OutputRecord
	logMessages []LogMessage

	currentReqID int
	servedCount  int

	rng           uint32
	syscallCycles uint64

	diverged   bool
	divergence string

	// OnRequestBoundary, when set, is invoked at every live-mode request
	// boundary (immediately after the previous request finishes service and
	// before the next one is fetched). The Sweeper core uses it to take
	// checkpoints between requests, as Rx does.
	OnRequestBoundary func()

	// OnRequestServed, when set, is invoked with the ID of the request that
	// just finished service, at its live-mode boundary. Recovery replays of
	// already-answered requests do not re-fire it (the boundary happens in
	// replay mode), so the TCP front end can write exactly one response per
	// request. Clones never inherit it.
	OnRequestServed func(reqID int)
}

// New loads prog at the given layout and returns a ready-to-run process whose
// requests are drawn from proxy.
func New(name string, prog *vm.Program, layout vm.Layout, proxy *netproxy.Proxy, opts Options) (*Process, error) {
	if opts.HeapSize != 0 {
		layout.HeapSize = opts.HeapSize
	}
	p := &Process{
		Name:          name,
		Log:           replay.NewLog(),
		proxy:         proxy,
		skip:          make(map[int]bool),
		excised:       make(map[int]bool),
		rng:           opts.RandSeed,
		syscallCycles: opts.SyscallCycles,
	}
	if p.rng == 0 {
		p.rng = 0x9E3779B9
	}
	if p.syscallCycles == 0 {
		p.syscallCycles = defaultSyscallCycles
	}
	m, err := vm.NewMachine(prog, layout, p)
	if err != nil {
		return nil, fmt.Errorf("proc: loading %s: %w", name, err)
	}
	p.Machine = m
	p.Alloc = heap.New(m.Mem, layout.HeapBase, layout.HeapSize)
	if opts.MmapThreshold != 0 {
		p.Alloc.SetMmapThreshold(opts.MmapThreshold)
	}
	return p, nil
}

// Mode returns the current execution mode.
func (p *Process) Mode() Mode { return p.mode }

// Proxy returns the proxy this process draws live requests from. A clone gets
// a fresh, empty, filterless proxy: verification sandboxes use it to feed a
// clone an exploit candidate after its replay window is drained.
func (p *Process) Proxy() *netproxy.Proxy { return p.proxy }

// SetMode switches between live and replay execution. replayThenLive only
// matters in replay mode.
func (p *Process) SetMode(mode Mode, replayThenLive bool) {
	p.mode = mode
	p.replayThenLive = replayThenLive
}

// SetReplayStopBefore arranges for replay to suspend (recv returns wait-input
// without consuming anything) at the boundary immediately before the given
// request ID. Zero clears the stop point.
func (p *Process) SetReplayStopBefore(id int) { p.stopBeforeReq = id }

// DropRequests marks request IDs to be skipped when the event log is replayed.
// The analysis module uses it to replay selected subsets of the logged
// requests (e.g. one suspect at a time); ClearDropped resets it.
func (p *Process) DropRequests(ids ...int) {
	for _, id := range ids {
		p.skip[id] = true
	}
}

// ClearDropped forgets all temporarily dropped request IDs (it does not
// affect excised requests).
func (p *Process) ClearDropped() { p.skip = make(map[int]bool) }

// ExciseRequests permanently removes request IDs from the replayed history.
// Recovery uses it for identified attack inputs: once excised, a request is
// never re-executed by any later replay.
func (p *Process) ExciseRequests(ids ...int) {
	for _, id := range ids {
		p.excised[id] = true
	}
}

// ExcisedRequests returns the permanently removed request IDs.
func (p *Process) ExcisedRequests() []int {
	out := make([]int, 0, len(p.excised))
	for id := range p.excised {
		out = append(out, id)
	}
	return out
}

// CurrentRequestID returns the ID of the request currently being served
// (0 if none).
func (p *Process) CurrentRequestID() int { return p.currentReqID }

// ServedRequests returns how many requests have completed service (reached
// the next blocking recv).
func (p *Process) ServedRequests() int { return p.servedCount }

// Outputs returns the client-visible outputs produced so far.
func (p *Process) Outputs() []OutputRecord { return p.outputs }

// LogMessages returns guest debug messages.
func (p *Process) LogMessages() []LogMessage { return p.logMessages }

// Diverged reports whether replayed execution produced output differing from
// the logged original (the output-commit consistency check).
func (p *Process) Diverged() (bool, string) { return p.diverged, p.divergence }

// Run executes the guest until it stops (budget of 0 means unlimited).
func (p *Process) Run(budget uint64) *vm.StopInfo { return p.Machine.Run(budget) }

// SharedBasePages reports how many of the process's mapped pages are still
// backed by the process-wide content-addressed base store (untouched since
// image install) versus the total mapped pages — the shared-vs-private page
// accounting behind the scale mode's sublinear memory claim. The process
// must be quiescent; the caller synchronises with the serving goroutine.
func (p *Process) SharedBasePages() (shared, total int) {
	return vm.DefaultBaseStore().SharedPagesIn(p.Machine.Mem)
}

// --- vm.SyscallHandler ---

// Syscall services one guest syscall. It implements vm.SyscallHandler.
func (p *Process) Syscall(m *vm.Machine, num uint32) (vm.SyscallResult, *vm.Fault) {
	m.AddCycles(p.syscallCycles)
	switch num {
	case SysRecv:
		return p.sysRecv(m)
	case SysSend:
		return p.sysSend(m)
	case SysExit:
		return vm.SysHalt, nil
	case SysMalloc:
		return p.sysMalloc(m)
	case SysFree:
		return p.sysFree(m)
	case SysTime:
		return p.sysTime(m)
	case SysRand:
		return p.sysRand(m)
	case SysLog:
		return p.sysLog(m)
	default:
		return vm.SysOK, &vm.Fault{Kind: vm.FaultBadSyscall, Addr: num, Detail: fmt.Sprintf("unknown syscall %d", num)}
	}
}

func (p *Process) nextReplayRequest() (*replay.Event, bool) {
	for {
		e, ok := p.Log.Next(replay.EventRequest)
		if !ok {
			return nil, false
		}
		if p.skip[e.RequestID] || p.excised[e.RequestID] {
			continue
		}
		return &e, true
	}
}

func (p *Process) sysRecv(m *vm.Machine) (vm.SyscallResult, *vm.Fault) {
	buf := m.Regs[vm.R1]
	capacity := m.Regs[vm.R2]

	// Completing a recv means the previous request finished service.
	if p.currentReqID != 0 {
		served := p.currentReqID
		p.servedCount++
		p.currentReqID = 0
		if p.mode == ModeLive && p.OnRequestServed != nil {
			p.OnRequestServed(served)
		}
	}
	if p.mode == ModeLive && p.OnRequestBoundary != nil {
		p.OnRequestBoundary()
	}

	var payload []byte
	var reqID int

	if p.mode == ModeReplay {
		if p.stopBeforeReq != 0 {
			next, ok := p.Log.PeekRequest(func(id int) bool { return p.skip[id] || p.excised[id] })
			if ok && next.RequestID == p.stopBeforeReq {
				return vm.SysWaitInput, nil
			}
		}
		if e, ok := p.nextReplayRequest(); ok {
			payload = e.Data
			reqID = e.RequestID
		} else if p.replayThenLive {
			p.mode = ModeLive
		} else {
			return vm.SysWaitInput, nil
		}
	}
	if payload == nil && p.mode == ModeLive {
		req, ok := p.proxy.Next()
		if !ok {
			return vm.SysWaitInput, nil
		}
		payload = req.Payload
		reqID = req.ID
		p.Log.Append(replay.Event{Kind: replay.EventRequest, RequestID: reqID, Data: append([]byte(nil), payload...)})
	}

	n := uint32(len(payload))
	if n > capacity {
		n = capacity
	}
	data := payload[:n]
	if !m.Mem.WriteBytes(buf, data) {
		return vm.SysOK, &vm.Fault{Kind: vm.FaultPage, Addr: buf, IsWrite: true, Detail: "recv buffer unmapped"}
	}
	p.currentReqID = reqID
	m.Regs[vm.R0] = n
	// Charge a per-byte copy cost and tell taint trackers where the
	// untrusted bytes landed.
	m.AddCycles(uint64(n))
	m.NotifyInput(buf, data, reqID)
	return vm.SysOK, nil
}

func (p *Process) sysSend(m *vm.Machine) (vm.SyscallResult, *vm.Fault) {
	ptr := m.Regs[vm.R1]
	length := m.Regs[vm.R2]
	data, ok := m.Mem.ReadBytes(ptr, int(length))
	if !ok {
		return vm.SysOK, &vm.Fault{Kind: vm.FaultPage, Addr: ptr, Detail: "send buffer unmapped"}
	}
	m.AddCycles(uint64(length))
	if p.mode == ModeLive {
		p.outputs = append(p.outputs, OutputRecord{RequestID: p.currentReqID, Data: data})
		p.Log.Append(replay.Event{Kind: replay.EventOutput, RequestID: p.currentReqID, Data: data})
	} else {
		// Sandboxed replay: never reaches the client. Check the output-commit
		// condition against the logged original output.
		if logged, ok := p.Log.Next(replay.EventOutput); ok {
			if !bytes.Equal(logged.Data, data) {
				p.diverged = true
				p.divergence = fmt.Sprintf("request %d: replayed output differs from logged output", p.currentReqID)
			}
		}
	}
	m.Regs[vm.R0] = length
	return vm.SysOK, nil
}

func (p *Process) sysMalloc(m *vm.Machine) (vm.SyscallResult, *vm.Fault) {
	size := m.Regs[vm.R1]
	addr, err := p.Alloc.Malloc(size)
	if err != nil {
		if ce, ok := err.(*heap.CorruptionError); ok {
			return vm.SysOK, &vm.Fault{Kind: vm.FaultHeapCorruption, Addr: ce.Addr, Detail: ce.Detail}
		}
		// Out of memory: return NULL like a real malloc.
		m.Regs[vm.R0] = 0
		return vm.SysOK, nil
	}
	m.Regs[vm.R0] = addr
	m.NotifyMalloc(addr, size)
	return vm.SysOK, nil
}

func (p *Process) sysFree(m *vm.Machine) (vm.SyscallResult, *vm.Fault) {
	addr := m.Regs[vm.R1]
	m.NotifyFree(addr)
	if err := p.Alloc.Free(addr); err != nil {
		if ce, ok := err.(*heap.CorruptionError); ok {
			return vm.SysOK, &vm.Fault{Kind: vm.FaultHeapCorruption, Addr: ce.Addr, Detail: ce.Detail}
		}
		return vm.SysOK, &vm.Fault{Kind: vm.FaultHeapCorruption, Addr: addr, Detail: err.Error()}
	}
	m.Regs[vm.R0] = 0
	return vm.SysOK, nil
}

func (p *Process) sysTime(m *vm.Machine) (vm.SyscallResult, *vm.Fault) {
	if p.mode == ModeReplay {
		if e, ok := p.Log.Next(replay.EventTime); ok {
			m.Regs[vm.R0] = e.Value
			return vm.SysOK, nil
		}
	}
	now := uint32(m.NowMillis())
	m.Regs[vm.R0] = now
	p.Log.Append(replay.Event{Kind: replay.EventTime, Value: now})
	return vm.SysOK, nil
}

func (p *Process) sysRand(m *vm.Machine) (vm.SyscallResult, *vm.Fault) {
	if p.mode == ModeReplay {
		if e, ok := p.Log.Next(replay.EventRand); ok {
			m.Regs[vm.R0] = e.Value
			return vm.SysOK, nil
		}
	}
	// xorshift32
	x := p.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	p.rng = x
	m.Regs[vm.R0] = x
	p.Log.Append(replay.Event{Kind: replay.EventRand, Value: x})
	return vm.SysOK, nil
}

func (p *Process) sysLog(m *vm.Machine) (vm.SyscallResult, *vm.Fault) {
	ptr := m.Regs[vm.R1]
	length := m.Regs[vm.R2]
	data, ok := m.Mem.ReadBytes(ptr, int(length))
	if !ok {
		return vm.SysOK, &vm.Fault{Kind: vm.FaultPage, Addr: ptr, Detail: "log buffer unmapped"}
	}
	p.logMessages = append(p.logMessages, LogMessage{RequestID: p.currentReqID, Text: string(data)})
	m.Regs[vm.R0] = length
	return vm.SysOK, nil
}

// --- snapshot / rollback ---

// Snapshot is a whole-process checkpoint: memory (copy-on-write), registers,
// allocator and RNG state, and the positions in the event log and output
// stream at the time of the checkpoint.
type Snapshot struct {
	SeqNo     int
	TakenAtMs uint64
	Mem       *vm.MemSnapshot
	Regs      vm.RegSnapshot
	Alloc     heap.State
	Rng       uint32
	// DirtyPages is how many pages this checkpoint actually touched — the
	// pages written since the previous checkpoint. CapturedBytes is how much
	// page data it captured: sub-page dirty runs are charged by run length,
	// whole-page captures by vm.PageSize. Steady-state checkpoints are
	// O(CapturedBytes), not O(Mem.Pages()).
	DirtyPages    int
	CapturedBytes int
	LogLen        int
	OutputCount   int
	ServedCount   int
	CurrentReqID  int
}

// checkpointBaseCycles is the fixed virtual cost of taking a checkpoint
// (register copy, allocator and log bookkeeping), independent of how much
// page data was captured. checkpointCyclesPerKiB converts captured bytes to
// virtual cycles (a full 4 KiB page costs 40 cycles, matching the per-page
// charge the byte accounting replaced).
const (
	checkpointBaseCycles   = 64
	checkpointCyclesPerKiB = 10
)

// Snapshot captures the current process state. It is cheap: memory pages are
// shared copy-on-write with the live process, and the memory snapshot is
// incremental and sub-page aware — it captures only the dirty byte runs
// written since the previous one (whole pages only where a run grew large).
func (p *Process) Snapshot(seq int) *Snapshot {
	// Read the dirty count before snapshotting: a no-op checkpoint (nothing
	// written since the previous one) reuses the previous memory snapshot and
	// must be charged as free, not as that snapshot's original delta.
	dirty := p.Machine.Mem.DirtyPages()
	mem := p.Machine.Mem.Snapshot()
	captured := mem.CapturedBytes()
	if dirty == 0 {
		// Reused (or deletion-only) snapshot: nothing was captured now, so
		// nothing is charged now — CapturedBytes of a reused snapshot reports
		// its original creation cost, which was already paid.
		captured = 0
	}
	s := &Snapshot{
		SeqNo:         seq,
		TakenAtMs:     p.Machine.NowMillis(),
		Mem:           mem,
		Regs:          p.Machine.SaveRegs(),
		Alloc:         p.Alloc.Save(),
		Rng:           p.rng,
		DirtyPages:    dirty,
		CapturedBytes: captured,
		LogLen:        p.Log.Len(),
		OutputCount:   len(p.outputs),
		ServedCount:   p.servedCount,
		CurrentReqID:  p.currentReqID,
	}
	// Charge the cost of the checkpoint to the guest's virtual clock in
	// proportion to the bytes it captured (run copies plus COW freezing and
	// delta-table construction) — O(captured bytes), not O(all mapped pages)
	// — so Figure 4 style interval sweeps show the real trade-off of the
	// sub-page incremental design.
	p.Machine.AddCycles(uint64(captured)*checkpointCyclesPerKiB/1024 + checkpointBaseCycles)
	return s
}

// Clone derives an independent replay process from a checkpoint of this one.
// The clone shares memory pages copy-on-write with the snapshot (cheap fork)
// and consumes a private cursor over the shared event log, so several clones
// can re-execute the same attack window concurrently, each under its own
// analysis tool, without touching the live process, its proxy or each other.
//
// The clone starts in pure replay mode: once its event log view is exhausted
// it blocks at the next recv instead of falling through to live input. Its
// machine carries no tools or probes; callers attach what they need.
func (p *Process) Clone(s *Snapshot) (*Process, error) {
	clone := &Process{
		Name:          p.Name,
		Log:           p.Log.CloneForReplay(s.LogLen),
		proxy:         netproxy.New(),
		mode:          ModeReplay,
		skip:          make(map[int]bool, len(p.skip)),
		excised:       make(map[int]bool, len(p.excised)),
		currentReqID:  s.CurrentReqID,
		servedCount:   s.ServedCount,
		rng:           s.Rng,
		syscallCycles: p.syscallCycles,
	}
	for id := range p.skip {
		clone.skip[id] = true
	}
	for id := range p.excised {
		clone.excised[id] = true
	}
	m, err := vm.NewMachine(p.Machine.Program(), p.Machine.Layout(), clone)
	if err != nil {
		return nil, fmt.Errorf("proc: cloning %s: %w", p.Name, err)
	}
	m.Mem.Restore(s.Mem)
	m.RestoreRegs(s.Regs)
	clone.Machine = m
	layout := p.Machine.Layout()
	clone.Alloc = heap.New(m.Mem, layout.HeapBase, layout.HeapSize)
	clone.Alloc.SetMmapThreshold(p.Alloc.MmapThreshold())
	clone.Alloc.Restore(s.Alloc)
	return clone, nil
}

// Rollback reinstates the process state captured in s and switches the
// process into the requested mode. After a rollback for analysis the event
// log's cursor points at the first event logged after the checkpoint, so the
// attack period replays deterministically.
func (p *Process) Rollback(s *Snapshot, mode Mode, replayThenLive bool) {
	// The virtual clock measures elapsed time as observed by clients; it
	// keeps running across rollbacks (the work spent re-executing and
	// analysing is real time during which no requests complete).
	elapsed := p.Machine.Cycles()
	p.Machine.Mem.Restore(s.Mem)
	p.Machine.RestoreRegs(s.Regs)
	if elapsed > p.Machine.Cycles() {
		p.Machine.AddCycles(elapsed - p.Machine.Cycles())
	}
	p.Alloc.Restore(s.Alloc)
	p.rng = s.Rng
	p.Log.SetCursor(s.LogLen)
	// Attached monitors and VSEF probes shadow the execution (saved return
	// addresses, taint labels); their state from the abandoned execution must
	// not leak into the replay or it raises false violations.
	p.Machine.NotifyRollback()
	// Outputs already delivered to clients are history that rollback cannot
	// undo (the output-commit problem); the record of them is kept and
	// replayed sends are compared against the log instead of being re-sent.
	p.servedCount = s.ServedCount
	p.currentReqID = s.CurrentReqID
	p.diverged = false
	p.divergence = ""
	p.mode = mode
	p.replayThenLive = replayThenLive
	// Rollback is nearly a context switch; charge a small fixed cost.
	p.Machine.AddCycles(2000)
}

// RestorePersisted reinstates process state loaded from a persisted
// checkpoint: a memory snapshot rebuilt through the vm.BaseStore plus
// register, allocator and RNG state. Unlike Rollback, the destination is a
// freshly constructed process on a restarted daemon: the pre-crash event
// log is gone (outputs already delivered to clients are history the restart
// cannot replay), so the log cursor, served counters and request ID reset
// and the process serves live from the restored memory image. The virtual
// clock continues from the persisted cycle count — a warm restart does not
// rewind time any more than a rollback does.
func (p *Process) RestorePersisted(mem *vm.MemSnapshot, regs vm.RegSnapshot, alloc heap.State, rng uint32) {
	p.Machine.Mem.Restore(mem)
	p.Machine.RestoreRegs(regs)
	p.Alloc.Restore(alloc)
	p.rng = rng
	p.Log.SetCursor(0)
	// Probes attached before the restore shadowed the cold image; reset them
	// so stale state cannot raise false violations (same as Rollback).
	p.Machine.NotifyRollback()
	p.servedCount = 0
	p.currentReqID = 0
	p.diverged = false
	p.divergence = ""
	p.mode = ModeLive
	p.replayThenLive = false
}

// AdoptReplayState reinstates this process's state from a clone (derived via
// Clone from a checkpoint of this process) that has replayed a prefix of the
// shared history. It is a rollback whose destination is the clone's current
// state rather than a checkpoint: pipelined recovery replays the benign
// prefix on a clone concurrently with the analyses, then the live process
// adopts the finished state instead of re-executing the prefix serially. The
// clone must be quiescent (its Run returned) and is dead to further use once
// adopted. Like Rollback, the virtual clock never rewinds: the adopted cycle
// count is raised to the live clock when the clone's is behind, so clients
// still observe the elapsed detection-to-recovery gap.
func (p *Process) AdoptReplayState(c *Process, mode Mode, replayThenLive bool) {
	elapsed := p.Machine.Cycles()
	p.Machine.Mem.Restore(c.Machine.Mem.Snapshot())
	p.Machine.RestoreRegs(c.Machine.SaveRegs())
	if elapsed > p.Machine.Cycles() {
		p.Machine.AddCycles(elapsed - p.Machine.Cycles())
	}
	p.Alloc.Restore(c.Alloc.Save())
	p.rng = c.rng
	// The clone consumed a private cursor over the shared event backing;
	// continuing from its position resumes replay at the exact boundary where
	// the clone suspended. skip/excised stay the live process's own: the
	// excision decision was taken after the clone forked and must win.
	p.Log.SetCursor(c.Log.Cursor())
	// Monitors and probes attached here shadow the abandoned execution; their
	// state must not leak into the adopted one (same as Rollback).
	p.Machine.NotifyRollback()
	p.servedCount = c.servedCount
	p.currentReqID = c.currentReqID
	p.diverged = c.diverged
	p.divergence = c.divergence
	p.mode = mode
	p.replayThenLive = replayThenLive
	// Adoption costs the same context-switch constant as a rollback.
	p.Machine.AddCycles(2000)
}
