package proc

import (
	"sync"

	"sweeper/internal/netproxy"
)

// defaultMaxIdle bounds how many idle clone shells a pool retains; shells
// returned beyond the cap are dropped for the garbage collector.
const defaultMaxIdle = 8

// ClonePool hands out reusable replay clones of one source process. A fresh
// Clone pays for a new Machine (code relocation, segment mapping) and a new
// page-map copy per analysis; a pooled shell keeps its Machine and is reset
// to the requested checkpoint instead — the same Rollback + NotifyRollback
// path recovery uses — so high-attack-rate guests stop paying the
// construction cost over and over (ROADMAP: clone-pool reuse).
//
// A shell obtained from Get is indistinguishable from a fresh
// Process.Clone of the same snapshot: memory, registers, allocator, RNG,
// log view, drop/excise sets and proxy are all reset, and every tool and
// probe a previous user attached is removed. Replays on pooled and fresh
// clones are therefore byte-for-byte deterministic with each other.
//
// Get and Put are safe for concurrent use. Like Process.Clone, Get reads the
// source process's log and request sets, so callers must not run the source
// live concurrently with Get (the analysis pipeline builds all sandboxes
// while the guest is stopped at the detection point).
type ClonePool struct {
	src *Process

	mu      sync.Mutex
	idle    []*Process
	maxIdle int
	created int
	reused  int
}

// NewClonePool returns an empty pool of replay clones of src.
func NewClonePool(src *Process) *ClonePool {
	return &ClonePool{src: src, maxIdle: defaultMaxIdle}
}

// Get returns a replay clone positioned at the given snapshot: a reset idle
// shell when one is available, a fresh Process.Clone otherwise.
func (cp *ClonePool) Get(s *Snapshot) (*Process, error) {
	cp.mu.Lock()
	var shell *Process
	if n := len(cp.idle); n > 0 {
		shell = cp.idle[n-1]
		cp.idle = cp.idle[:n-1]
		cp.reused++
	} else {
		cp.created++
	}
	cp.mu.Unlock()
	if shell == nil {
		return cp.src.Clone(s)
	}
	shell.resetForReuse(cp.src, s)
	return shell, nil
}

// Put returns a clone to the pool. The clone may be dirty — reset happens on
// the next Get. Only clones of this pool's source process may be returned.
func (cp *ClonePool) Put(c *Process) {
	if c == nil {
		return
	}
	cp.mu.Lock()
	if len(cp.idle) < cp.maxIdle {
		cp.idle = append(cp.idle, c)
	}
	cp.mu.Unlock()
}

// Stats reports how many clones were freshly built and how many Get calls
// were served by resetting an idle shell.
func (cp *ClonePool) Stats() (created, reused int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.created, cp.reused
}

// resetForReuse makes a previously used clone shell equivalent to a fresh
// src.Clone(s): same checkpoint state, same log view, no leftover tools,
// probes, drops or outputs from the previous user. Unlike Rollback, the
// virtual clock is reset to the snapshot's — a pooled sandbox has no
// client-visible clock to keep monotonic, and fresh clones start there too,
// which keeps pooled and fresh replays identical.
func (c *Process) resetForReuse(src *Process, s *Snapshot) {
	c.Log = src.Log.CloneForReplay(s.LogLen)
	c.proxy = netproxy.New()
	c.mode = ModeReplay
	c.replayThenLive = false
	c.skip = make(map[int]bool, len(src.skip))
	for id := range src.skip {
		c.skip[id] = true
	}
	c.excised = make(map[int]bool, len(src.excised))
	for id := range src.excised {
		c.excised[id] = true
	}
	c.outputs = nil
	c.logMessages = nil
	c.currentReqID = s.CurrentReqID
	c.servedCount = s.ServedCount
	c.rng = s.Rng
	c.diverged = false
	c.divergence = ""

	// Drop the previous user's instrumentation, then restore machine state.
	// NotifyRollback is deliberately invoked after the restore: a caller that
	// re-attaches long-lived tools before running relies on the same shadow
	// discipline Rollback establishes, and resets are idempotent.
	c.Machine.DetachAllTools()
	c.Machine.ClearProbes()
	c.Machine.Mem.Restore(s.Mem)
	c.Machine.RestoreRegs(s.Regs)
	c.Alloc.Restore(s.Alloc)
	c.Machine.NotifyRollback()
}
