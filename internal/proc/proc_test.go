package proc_test

import (
	"bytes"
	"strings"
	"testing"

	"sweeper/internal/asm"
	"sweeper/internal/guest"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/replay"
	"sweeper/internal/vm"
)

// echoServer builds a guest that receives a request, optionally calls
// time/rand/malloc, and echoes the payload back prefixed with "echo:".
func echoServer() *vm.Program {
	b := asm.New("echo")
	b.DataSpace("buf", 2048)
	b.DataString("prefix", "echo:")
	b.DataSpace("out", 4096)
	b.Func("main")
	b.Label("main.loop")
	b.LoadDataAddr(vm.R1, "buf")
	b.MovI(vm.R2, 2048)
	b.Call(guest.FnRecv)
	// NUL terminate
	b.LoadDataAddr(vm.R1, "buf")
	b.Mov(vm.R2, vm.R1)
	b.Add(vm.R2, vm.R0)
	b.MovI(vm.R3, 0)
	b.StoreB(vm.R2, 0, vm.R3)
	// out = "echo:" + buf
	b.LoadDataAddr(vm.R1, "out")
	b.LoadDataAddr(vm.R2, "prefix")
	b.Call(guest.FnStrcpy)
	b.LoadDataAddr(vm.R1, "out")
	b.LoadDataAddr(vm.R2, "buf")
	b.Call(guest.FnStrcat)
	// send(out, strlen(out))
	b.LoadDataAddr(vm.R1, "out")
	b.Call(guest.FnStrlen)
	b.Mov(vm.R2, vm.R0)
	b.LoadDataAddr(vm.R1, "out")
	b.Call(guest.FnSend)
	b.Jmp("main.loop")
	guest.AddLibc(b)
	return b.MustBuild()
}

// allocServer builds a guest that, per request, allocates a buffer sized by
// the request length, copies the payload into it, frees it and replies "ok".
func allocServer() *vm.Program {
	b := asm.New("alloc")
	b.DataSpace("buf", 2048)
	b.DataString("ok", "ok")
	b.Func("main")
	b.Label("main.loop")
	b.LoadDataAddr(vm.R1, "buf")
	b.MovI(vm.R2, 2048)
	b.Call(guest.FnRecv)
	b.Mov(vm.R7, vm.R0) // n
	// p = malloc(n+1)
	b.Mov(vm.R1, vm.R0)
	b.AddI(vm.R1, 1)
	b.Call(guest.FnMalloc)
	b.Mov(vm.R6, vm.R0)
	// memcpy(p, buf, n)
	b.Mov(vm.R1, vm.R0)
	b.LoadDataAddr(vm.R2, "buf")
	b.Mov(vm.R3, vm.R7)
	b.Call(guest.FnMemcpy)
	// free(p)
	b.Mov(vm.R1, vm.R6)
	b.Call(guest.FnFree)
	// send "ok"
	b.LoadDataAddr(vm.R1, "ok")
	b.MovI(vm.R2, 2)
	b.Call(guest.FnSend)
	b.Jmp("main.loop")
	guest.AddLibc(b)
	return b.MustBuild()
}

// nondetServer uses time and rand syscalls and reports them in its output, so
// replay determinism is observable.
func nondetServer() *vm.Program {
	b := asm.New("nondet")
	b.DataSpace("buf", 256)
	b.DataSpace("out", 16)
	b.Func("main")
	b.Label("main.loop")
	b.LoadDataAddr(vm.R1, "buf")
	b.MovI(vm.R2, 256)
	b.Call(guest.FnRecv)
	b.Call(guest.FnRand)
	b.Mov(vm.R7, vm.R0)
	b.Call(guest.FnTime)
	b.Add(vm.R7, vm.R0)
	// store the combined value and send 4 bytes
	b.LoadDataAddr(vm.R1, "out")
	b.StoreW(vm.R1, 0, vm.R7)
	b.MovI(vm.R2, 4)
	b.Call(guest.FnSend)
	b.Jmp("main.loop")
	guest.AddLibc(b)
	return b.MustBuild()
}

func newProc(t *testing.T, prog *vm.Program, payloads ...string) (*proc.Process, *netproxy.Proxy) {
	t.Helper()
	proxy := netproxy.New()
	for _, pl := range payloads {
		proxy.Submit([]byte(pl), "client", false)
	}
	p, err := proc.New(prog.Name, prog, vm.DefaultLayout(), proxy, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, proxy
}

func TestEchoServerServesRequests(t *testing.T) {
	p, _ := newProc(t, echoServer(), "hello", "world")
	stop := p.Run(0)
	if stop.Reason != vm.StopWaitInput {
		t.Fatalf("stop = %v (fault %v)", stop.Reason, stop.Fault)
	}
	if p.ServedRequests() != 2 {
		t.Errorf("served = %d", p.ServedRequests())
	}
	outs := p.Outputs()
	if len(outs) != 2 || string(outs[0].Data) != "echo:hello" || string(outs[1].Data) != "echo:world" {
		t.Errorf("outputs = %+v", outs)
	}
	if outs[0].RequestID != 1 || outs[1].RequestID != 2 {
		t.Error("outputs not attributed to their requests")
	}
}

func TestEventLogRecordsRequestsAndOutputs(t *testing.T) {
	p, _ := newProc(t, echoServer(), "abc")
	p.Run(0)
	events := p.Log.Events()
	var kinds []replay.EventKind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	if len(events) != 2 || kinds[0] != replay.EventRequest || kinds[1] != replay.EventOutput {
		t.Fatalf("event kinds = %v", kinds)
	}
	if string(events[0].Data) != "abc" || !bytes.Equal(events[1].Data, []byte("echo:abc")) {
		t.Error("event payloads wrong")
	}
}

func TestSnapshotRollbackReplayDeterminism(t *testing.T) {
	p, _ := newProc(t, nondetServer(), "r1", "r2", "r3")
	snap := p.Snapshot(1)
	stop := p.Run(0)
	if stop.Reason != vm.StopWaitInput {
		t.Fatalf("stop = %v", stop.Reason)
	}
	liveOut := append([]proc.OutputRecord(nil), p.Outputs()...)
	if len(liveOut) != 3 {
		t.Fatalf("outputs = %d", len(liveOut))
	}

	// Replay from the snapshot: time and rand come from the log, so outputs
	// must match byte for byte and the output-commit check must stay clean.
	p.Rollback(snap, proc.ModeReplay, false)
	stop = p.Run(0)
	if stop.Reason != vm.StopWaitInput {
		t.Fatalf("replay stop = %v", stop.Reason)
	}
	if diverged, why := p.Diverged(); diverged {
		t.Errorf("replay diverged: %s", why)
	}
	if p.ServedRequests() != 3 {
		t.Errorf("served after replay = %d", p.ServedRequests())
	}
	// Outputs list is not duplicated by sandboxed replay.
	if len(p.Outputs()) != 3 {
		t.Errorf("outputs after replay = %d", len(p.Outputs()))
	}
}

func TestRollbackRestoresMemoryAndHeap(t *testing.T) {
	p, _ := newProc(t, allocServer(), "first", "second")
	snap := p.Snapshot(1)
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("stop = %v (%v)", stop.Reason, stop.Fault)
	}
	mallocs1, frees1 := p.Alloc.Stats()
	if mallocs1 == 0 || frees1 == 0 {
		t.Fatal("allocator was not exercised")
	}
	p.Rollback(snap, proc.ModeReplay, false)
	mallocs2, _ := p.Alloc.Stats()
	if mallocs2 != 0 {
		t.Errorf("allocator stats not rolled back: %d", mallocs2)
	}
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("replay stop = %v", stop.Reason)
	}
	mallocs3, frees3 := p.Alloc.Stats()
	if mallocs3 != mallocs1 || frees3 != frees1 {
		t.Errorf("replayed allocator stats %d/%d, want %d/%d", mallocs3, frees3, mallocs1, frees1)
	}
}

func TestDropAndExciseRequests(t *testing.T) {
	p, _ := newProc(t, echoServer(), "keep1", "drop-me", "keep2")
	snap := p.Snapshot(1)
	p.Run(0)

	// Temporarily drop request 2 during one replay.
	p.Rollback(snap, proc.ModeReplay, false)
	p.DropRequests(2)
	p.Run(0)
	if p.ServedRequests() != 2 {
		t.Errorf("served with drop = %d, want 2", p.ServedRequests())
	}
	p.ClearDropped()

	// Excision persists across later replays without re-arming.
	p.ExciseRequests(2)
	p.Rollback(snap, proc.ModeReplay, false)
	p.Run(0)
	if p.ServedRequests() != 2 {
		t.Errorf("served with excision = %d, want 2", p.ServedRequests())
	}
	if got := p.ExcisedRequests(); len(got) != 1 || got[0] != 2 {
		t.Errorf("ExcisedRequests = %v", got)
	}
}

func TestReplayThenLiveFallsThrough(t *testing.T) {
	p, proxy := newProc(t, echoServer(), "logged")
	snap := p.Snapshot(1)
	p.Run(0)

	// New live traffic arrives after the attack analysis.
	proxy.Submit([]byte("fresh"), "client", false)
	p.Rollback(snap, proc.ModeReplay, true)
	stop := p.Run(0)
	if stop.Reason != vm.StopWaitInput {
		t.Fatalf("stop = %v", stop.Reason)
	}
	if p.Mode() != proc.ModeLive {
		t.Error("process should have fallen through to live mode")
	}
	if p.ServedRequests() != 2 {
		t.Errorf("served = %d, want 2 (one replayed + one live)", p.ServedRequests())
	}
}

func TestVirtualClockMonotonicAcrossRollback(t *testing.T) {
	p, _ := newProc(t, echoServer(), "a", "b")
	snap := p.Snapshot(1)
	p.Run(0)
	before := p.Machine.Cycles()
	p.Rollback(snap, proc.ModeReplay, false)
	if p.Machine.Cycles() < before {
		t.Error("rollback must not rewind the virtual clock")
	}
}

func TestOutputCommitDivergenceDetected(t *testing.T) {
	p, _ := newProc(t, nondetServer(), "x")
	snap := p.Snapshot(1)
	p.Run(0)
	// Corrupt the logged rand value so the replayed output differs.
	events := p.Log.Events()
	var tampered *replay.Log = replay.NewLog()
	for _, e := range events {
		if e.Kind == replay.EventRand {
			e.Value ^= 0xFFFF
		}
		tampered.Append(e)
	}
	*p.Log = *tampered
	p.Rollback(snap, proc.ModeReplay, false)
	p.Run(0)
	if diverged, _ := p.Diverged(); !diverged {
		t.Error("tampered replay should be flagged as diverged")
	}
}

func TestGuestLogMessages(t *testing.T) {
	b := asm.New("logger")
	b.DataSpace("buf", 64)
	b.DataString("msg", "starting up")
	b.Func("main")
	b.LoadDataAddr(vm.R1, "msg")
	b.MovI(vm.R2, 11)
	b.Call(guest.FnLogMsg)
	b.Call(guest.FnExit)
	guest.AddLibc(b)
	p, _ := newProc(t, b.MustBuild())
	stop := p.Run(0)
	if stop.Reason != vm.StopHalt {
		t.Fatalf("stop = %v", stop.Reason)
	}
	msgs := p.LogMessages()
	if len(msgs) != 1 || msgs[0].Text != "starting up" {
		t.Errorf("log messages = %+v", msgs)
	}
}

func TestUnknownSyscallFaults(t *testing.T) {
	b := asm.New("badsys")
	b.Func("main")
	b.MovI(vm.R0, 999)
	b.Syscall()
	b.Halt()
	p, _ := newProc(t, b.MustBuild())
	stop := p.Run(0)
	if stop.Reason != vm.StopFault || stop.Fault.Kind != vm.FaultBadSyscall {
		t.Errorf("stop = %v fault = %v", stop.Reason, stop.Fault)
	}
}

func TestRecvTruncatesToBufferCapacity(t *testing.T) {
	b := asm.New("tiny")
	b.DataSpace("buf", 16)
	b.Func("main")
	b.Label("loop")
	b.LoadDataAddr(vm.R1, "buf")
	b.MovI(vm.R2, 8) // tiny capacity
	b.Call(guest.FnRecv)
	b.Mov(vm.R7, vm.R0)
	b.LoadDataAddr(vm.R1, "buf")
	b.Mov(vm.R2, vm.R7)
	b.Call(guest.FnSend)
	b.Jmp("loop")
	guest.AddLibc(b)
	p, _ := newProc(t, b.MustBuild(), strings.Repeat("Z", 100))
	p.Run(0)
	outs := p.Outputs()
	if len(outs) != 1 || len(outs[0].Data) != 8 {
		t.Errorf("expected an 8-byte truncated echo, got %+v", outs)
	}
}

func TestDoubleFreeGuestFaultsInsideFree(t *testing.T) {
	b := asm.New("dfree")
	b.DataSpace("buf", 64)
	b.Func("main")
	b.Label("loop")
	b.LoadDataAddr(vm.R1, "buf")
	b.MovI(vm.R2, 64)
	b.Call(guest.FnRecv)
	b.MovI(vm.R1, 32)
	b.Call(guest.FnMalloc)
	b.Mov(vm.R7, vm.R0)
	b.Mov(vm.R1, vm.R7)
	b.Call(guest.FnFree)
	b.Mov(vm.R1, vm.R7)
	b.Call(guest.FnFree) // double free
	b.Jmp("loop")
	guest.AddLibc(b)
	p, _ := newProc(t, b.MustBuild(), "go")
	stop := p.Run(0)
	if stop.Reason != vm.StopFault || stop.Fault.Kind != vm.FaultHeapCorruption {
		t.Fatalf("stop = %v fault = %v", stop.Reason, stop.Fault)
	}
	if stop.Fault.Sym != guest.FnFree {
		t.Errorf("fault in %q, want the free wrapper", stop.Fault.Sym)
	}
}

func TestModeString(t *testing.T) {
	if proc.ModeLive.String() != "live" || proc.ModeReplay.String() != "replay" {
		t.Error("mode strings wrong")
	}
}
