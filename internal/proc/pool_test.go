package proc

import (
	"fmt"
	"testing"

	"sweeper/internal/netproxy"
	"sweeper/internal/vm"
)

// probeStub is a dummy probe/tool a previous sandbox user might leave behind.
type probeStub struct{ name string }

func (p probeStub) Name() string                                 { return p.name }
func (p probeStub) OnProbe(m *vm.Machine, idx int, in *vm.Instr) {}

// poolTestProcess builds a served-up process with a snapshot covering a
// replay window of n requests.
func poolTestProcess(t *testing.T, n int) (*Process, *Snapshot) {
	t.Helper()
	p, proxy := newCloneTestProcess(t)
	snap := p.Snapshot(1)
	for i := 0; i < n; i++ {
		proxy.Submit([]byte(fmt.Sprintf("req-%d....", i)), "client", false)
	}
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("live run stopped with %v", stop.Reason)
	}
	return p, snap
}

// TestClonePoolReusesShells checks the pool actually reuses shells and that a
// reused shell replays exactly like a fresh clone.
func TestClonePoolReusesShells(t *testing.T) {
	p, snap := poolTestProcess(t, 6)
	pool := NewClonePool(p)

	first, err := pool.Get(snap)
	if err != nil {
		t.Fatal(err)
	}
	first.Run(0)
	pool.Put(first)

	second, err := pool.Get(snap)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("pool built a fresh clone while an idle shell was available")
	}
	if created, reused := pool.Stats(); created != 1 || reused != 1 {
		t.Fatalf("pool stats = created %d / reused %d, want 1/1", created, reused)
	}

	fresh, err := p.Clone(snap)
	if err != nil {
		t.Fatal(err)
	}
	stopPooled := second.Run(0)
	stopFresh := fresh.Run(0)
	if stopPooled.Reason != stopFresh.Reason {
		t.Errorf("stop reason: pooled %v, fresh %v", stopPooled.Reason, stopFresh.Reason)
	}
	if second.ServedRequests() != fresh.ServedRequests() {
		t.Errorf("served: pooled %d, fresh %d", second.ServedRequests(), fresh.ServedRequests())
	}
	if second.Machine.InstrCount() != fresh.Machine.InstrCount() {
		t.Errorf("instructions: pooled %d, fresh %d", second.Machine.InstrCount(), fresh.Machine.InstrCount())
	}
	if second.Machine.Cycles() != fresh.Machine.Cycles() {
		t.Errorf("virtual clock: pooled %d, fresh %d", second.Machine.Cycles(), fresh.Machine.Cycles())
	}
	if d, detail := second.Diverged(); d {
		t.Errorf("pooled replay diverged: %s", detail)
	}
}

// TestClonePoolResetIsolation is the dirty-shell test: a returned sandbox
// carrying leftover tools, probes, dropped requests, trashed memory and
// registers must not leak any of it into the next analyzer run.
func TestClonePoolResetIsolation(t *testing.T) {
	p, snap := poolTestProcess(t, 6)
	pool := NewClonePool(p)

	dirty, err := pool.Get(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty it the way a worst-case analyzer would.
	dirty.Machine.AttachTool(probeStub{name: "leftover.tool"})
	if err := dirty.Machine.AddProbe(0, probeStub{name: "leftover.probe"}); err != nil {
		t.Fatal(err)
	}
	dirty.DropRequests(1, 2, 3)
	dirty.Run(2000) // partial replay: mid-request machine state
	dirty.Machine.Mem.WriteBytes(p.Machine.Layout().DataBase, []byte{0xde, 0xad, 0xbe, 0xef})
	dirty.Machine.Regs[vm.R3] = 0xdeadbeef
	pool.Put(dirty)

	clean, err := pool.Get(snap)
	if err != nil {
		t.Fatal(err)
	}
	if clean != dirty {
		t.Fatal("expected the dirty shell back")
	}
	if tools := clean.Machine.Tools(); len(tools) != 0 {
		t.Errorf("reset shell still carries tools: %v", tools)
	}
	if n := clean.Machine.ProbeCount(); n != 0 {
		t.Errorf("reset shell still carries %d probes", n)
	}
	if len(clean.skip) != 0 {
		t.Errorf("reset shell still skips requests: %v", clean.skip)
	}

	fresh, err := p.Clone(snap)
	if err != nil {
		t.Fatal(err)
	}
	clean.Run(0)
	fresh.Run(0)
	if clean.ServedRequests() != fresh.ServedRequests() {
		t.Errorf("served: reused %d, fresh %d (dropped requests leaked?)", clean.ServedRequests(), fresh.ServedRequests())
	}
	if clean.Machine.InstrCount() != fresh.Machine.InstrCount() {
		t.Errorf("instructions: reused %d, fresh %d (state leaked)", clean.Machine.InstrCount(), fresh.Machine.InstrCount())
	}
	if d, detail := clean.Diverged(); d {
		t.Errorf("reused replay diverged: %s", detail)
	}
	// The trashed data page must have been restored from the snapshot.
	base := p.Machine.Layout().DataBase
	got, _ := clean.Machine.Mem.ReadBytes(base, 4)
	want, _ := fresh.Machine.Mem.ReadBytes(base, 4)
	if string(got) != string(want) {
		t.Errorf("data page differs after reset: % x vs fresh % x", got, want)
	}
}

// TestClonePoolIdleCap checks shells beyond the idle cap are dropped rather
// than retained forever.
func TestClonePoolIdleCap(t *testing.T) {
	p, snap := poolTestProcess(t, 1)
	pool := NewClonePool(p)
	var shells []*Process
	for i := 0; i < defaultMaxIdle+3; i++ {
		c, err := pool.Get(snap)
		if err != nil {
			t.Fatal(err)
		}
		shells = append(shells, c)
	}
	for _, c := range shells {
		pool.Put(c)
	}
	if len(pool.idle) != defaultMaxIdle {
		t.Fatalf("idle shells = %d, want cap %d", len(pool.idle), defaultMaxIdle)
	}
}

// benchProcess builds a process whose snapshot covers a small replay window,
// for the clone-setup-cost micro benchmarks.
func benchProcess(b *testing.B) (*Process, *Snapshot) {
	b.Helper()
	proxy := netproxy.New()
	p, err := New("clone-bench", cloneTestServer(), vm.DefaultLayout(), proxy, Options{})
	if err != nil {
		b.Fatal(err)
	}
	snap := p.Snapshot(1)
	for i := 0; i < 8; i++ {
		proxy.Submit([]byte(fmt.Sprintf("req-%d....", i)), "client", false)
	}
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		b.Fatalf("live run stopped with %v", stop.Reason)
	}
	return p, snap
}

// BenchmarkCloneFresh measures per-analysis sandbox setup cost without the
// pool: a new Machine plus page-map copy per clone.
func BenchmarkCloneFresh(b *testing.B) {
	p, snap := benchProcess(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Clone(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClonePooled measures the same setup served from the pool: an idle
// shell reset via snapshot restore.
func BenchmarkClonePooled(b *testing.B) {
	p, snap := benchProcess(b)
	pool := NewClonePool(p)
	warm, err := pool.Get(snap)
	if err != nil {
		b.Fatal(err)
	}
	pool.Put(warm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := pool.Get(snap)
		if err != nil {
			b.Fatal(err)
		}
		pool.Put(c)
	}
}
