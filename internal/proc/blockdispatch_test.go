package proc_test

import (
	"bytes"
	"testing"

	"sweeper/internal/vm"
)

// TestBlockDispatchCycleAccountingParity runs the same served workload on two
// identical processes — one on the block-dispatch fast path, one forced onto
// the per-Step slow path — checkpointing between requests, and requires the
// virtual clock, instruction counts, checkpoint timestamps and outputs to
// agree exactly. The checkpoint interval machinery derives everything from
// Machine.Cycles(), so any per-block accounting drift would surface here as a
// shifted checkpoint or a diverged virtual timestamp.
func TestBlockDispatchCycleAccountingParity(t *testing.T) {
	reqs := []string{"alpha", "beta", "a-much-longer-request-payload", "d"}
	run := func(fast bool) (cycles, instrs []uint64, takenAt []uint64, outs [][]byte) {
		p, proxy := newProc(t, echoServer())
		p.Machine.SetBlockDispatch(fast)
		for seq, r := range reqs {
			proxy.Submit([]byte(r), "client", false)
			if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
				t.Fatalf("fast=%v req %d: stop = %v (fault %v)", fast, seq, stop.Reason, stop.Fault)
			}
			cycles = append(cycles, p.Machine.Cycles())
			instrs = append(instrs, p.Machine.InstrCount())
			takenAt = append(takenAt, p.Snapshot(seq).TakenAtMs)
		}
		for _, o := range p.Outputs() {
			outs = append(outs, o.Data)
		}
		return
	}
	fc, fi, ft, fo := run(true)
	sc, si, st, so := run(false)
	for i := range reqs {
		if fc[i] != sc[i] {
			t.Errorf("after request %d: cycles %d (block dispatch) != %d (per-Step)", i, fc[i], sc[i])
		}
		if fi[i] != si[i] {
			t.Errorf("after request %d: instrCount %d (block dispatch) != %d (per-Step)", i, fi[i], si[i])
		}
		if ft[i] != st[i] {
			t.Errorf("checkpoint %d: TakenAtMs %d (block dispatch) != %d (per-Step)", i, ft[i], st[i])
		}
	}
	if len(fo) != len(so) {
		t.Fatalf("output counts diverge: %d vs %d", len(fo), len(so))
	}
	for i := range fo {
		if !bytes.Equal(fo[i], so[i]) {
			t.Errorf("output %d diverges: %q vs %q", i, fo[i], so[i])
		}
	}
}
