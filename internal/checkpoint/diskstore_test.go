package checkpoint_test

import (
	"testing"

	"sweeper/internal/checkpoint"
	"sweeper/internal/exploit"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

func TestDiskStoreSaveLoadRoundTrip(t *testing.T) {
	p := newCVSProcess(t, 6)
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("serving failed: %v", stop.Reason)
	}
	m := checkpoint.NewManager(checkpoint.Policy{IntervalMs: 1, MaxKept: 5})
	snap := m.Checkpoint(p)

	ds, err := checkpoint.OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	layout := p.Machine.Layout()
	if err := ds.Save("guest-0", snap, layout); err != nil {
		t.Fatal(err)
	}
	if err := ds.Sync(); err != nil {
		t.Fatal(err)
	}

	loaded, err := ds.Load("guest-0")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Pages != snap.Mem.Pages() {
		t.Fatalf("loaded %d pages, snapshot had %d", loaded.Pages, snap.Mem.Pages())
	}
	if loaded.Regs != snap.Regs || loaded.Rng != snap.Rng || loaded.Alloc != snap.Alloc {
		t.Fatal("register/allocator/rng state did not round-trip")
	}
	if loaded.Layout != layout {
		t.Fatalf("layout did not round-trip: %+v vs %+v", loaded.Layout, layout)
	}

	// Restoring the loaded image into a fresh process must reproduce the
	// machine state: same served count observable via continued serving.
	fresh := newCVSProcess(t, 0)
	fresh.RestorePersisted(loaded.Mem, loaded.Regs, loaded.Alloc, loaded.Rng)
	if fresh.Machine.Mem.MappedPages() != loaded.Pages {
		t.Fatalf("restored process maps %d pages, want %d", fresh.Machine.Mem.MappedPages(), loaded.Pages)
	}
	if fresh.Machine.Cycles() != snap.Regs.Cycles {
		t.Fatalf("virtual clock not restored: %d vs %d", fresh.Machine.Cycles(), snap.Regs.Cycles)
	}
	// The restored guest serves new traffic from where the checkpoint left off.
	fresh.Proxy().Submit([]byte("Directory anon /repo/anon\n"), "client", false)
	if stop := fresh.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("restored process cannot serve: %v", stop.Reason)
	}
	if fresh.ServedRequests() != 1 {
		t.Fatalf("restored process served %d, want 1", fresh.ServedRequests())
	}
}

func TestDiskStoreDeltaChainAndSharing(t *testing.T) {
	p := newCVSProcess(t, 12)
	m := checkpoint.NewManager(checkpoint.Policy{IntervalMs: 1, MaxKept: 50})
	ds, err := checkpoint.OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	layout := p.Machine.Layout()

	// First save is a full manifest; subsequent saves should write only the
	// pages each serving interval dirtied.
	if err := ds.Save("g", m.Checkpoint(p), layout); err != nil {
		t.Fatal(err)
	}
	firstWritten, _ := ds.PageStats()
	var lastSnap *proc.Snapshot
	for i := 0; i < 4; i++ {
		// Fresh traffic each interval, so every save has real dirtied pages
		// (Save skips writing a record when nothing changed).
		p.Proxy().Submit(exploit.CVSBenign(100+i), "client", false)
		if stop := p.Run(0); stop.Reason != vm.StopWaitInput && stop.Reason != vm.StopInstrBudget {
			t.Fatalf("run stopped: %v", stop.Reason)
		}
		lastSnap = m.Checkpoint(p)
		if err := ds.Save("g", lastSnap, layout); err != nil {
			t.Fatal(err)
		}
	}
	written, _ := ds.PageStats()
	// Four incremental saves must not have rewritten the whole address
	// space each time — only the handful of pages each interval dirtied.
	if delta := written - firstWritten; delta >= lastSnap.Mem.Pages() {
		t.Errorf("incremental saves wrote %d page files for a %d-page image; expected only dirtied pages", delta, lastSnap.Mem.Pages())
	}

	// Load folds the delta chain to the latest state.
	loaded, err := ds.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seq != lastSnap.SeqNo {
		t.Fatalf("loaded seq %d, want latest %d", loaded.Seq, lastSnap.SeqNo)
	}
	if loaded.Pages != lastSnap.Mem.Pages() {
		t.Fatalf("loaded %d pages, want %d", loaded.Pages, lastSnap.Mem.Pages())
	}

	// A second guest with identical content shares page files: saving the
	// same snapshot under another name writes zero new pages.
	before, _ := ds.PageStats()
	if err := ds.Save("g2", lastSnap, layout); err != nil {
		t.Fatal(err)
	}
	after, shared := ds.PageStats()
	if after != before {
		t.Errorf("identical snapshot for a second guest wrote %d new page files, want 0", after-before)
	}
	if shared == 0 {
		t.Error("no page references were deduplicated onto existing files")
	}
}
