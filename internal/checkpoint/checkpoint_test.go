package checkpoint_test

import (
	"testing"

	"sweeper/internal/apps"
	"sweeper/internal/checkpoint"
	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

func newCVSProcess(t *testing.T, nRequests int) *proc.Process {
	t.Helper()
	spec, err := apps.ByName("cvs")
	if err != nil {
		t.Fatal(err)
	}
	proxy := netproxy.New()
	for i := 0; i < nRequests; i++ {
		proxy.Submit(exploit.CVSBenign(i), "client", false)
	}
	p, err := proc.New(spec.Name, spec.Image, vm.DefaultLayout(), proxy, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultPolicy(t *testing.T) {
	pol := checkpoint.DefaultPolicy()
	if pol.IntervalMs != 200 || pol.MaxKept != 20 {
		t.Errorf("default policy %+v", pol)
	}
	m := checkpoint.NewManager(checkpoint.Policy{})
	if m.Policy().IntervalMs != 200 || m.Policy().MaxKept != 20 {
		t.Errorf("zero policy should fall back to defaults: %+v", m.Policy())
	}
}

func TestCheckpointRingEviction(t *testing.T) {
	p := newCVSProcess(t, 0)
	m := checkpoint.NewManager(checkpoint.Policy{IntervalMs: 1, MaxKept: 3})
	for i := 0; i < 5; i++ {
		m.Checkpoint(p)
	}
	if m.Count() != 3 {
		t.Errorf("ring holds %d, want 3", m.Count())
	}
	if m.Taken() != 5 {
		t.Errorf("taken = %d", m.Taken())
	}
	if m.Oldest().SeqNo != 3 || m.Latest().SeqNo != 5 {
		t.Errorf("oldest/latest seq = %d/%d", m.Oldest().SeqNo, m.Latest().SeqNo)
	}
	if got := m.Snapshots(); len(got) != 3 || got[0].SeqNo != 3 {
		t.Errorf("snapshots = %v", got)
	}
}

func TestMaybeCheckpointRespectsInterval(t *testing.T) {
	p := newCVSProcess(t, 30)
	m := checkpoint.NewManager(checkpoint.Policy{IntervalMs: 50, MaxKept: 10})
	first := m.MaybeCheckpoint(p)
	if first == nil {
		t.Fatal("first MaybeCheckpoint should always take one")
	}
	// Immediately asking again must not take another (no virtual time passed).
	if m.MaybeCheckpoint(p) != nil {
		t.Error("checkpoint taken before the interval elapsed")
	}
	// Serve the whole workload; tens of requests advance the virtual clock
	// well past the 50 ms interval.
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("serving failed: %v", stop.Reason)
	}
	if p.Machine.NowMillis() <= first.TakenAtMs+50 {
		t.Fatalf("workload too short to advance the virtual clock (%d ms)", p.Machine.NowMillis())
	}
	second := m.MaybeCheckpoint(p)
	if second == nil {
		t.Fatal("second checkpoint never taken despite elapsed virtual time")
	}
	if second.TakenAtMs <= first.TakenAtMs || second.LogLen <= first.LogLen {
		t.Errorf("second checkpoint does not advance: %+v vs %+v", second, first)
	}
}

func TestLatestAndOldestEmpty(t *testing.T) {
	m := checkpoint.NewManager(checkpoint.DefaultPolicy())
	if m.Latest() != nil || m.Oldest() != nil || m.Count() != 0 {
		t.Error("empty manager should have no snapshots")
	}
	if _, err := m.BeforeLogIndex(0); err == nil {
		t.Error("BeforeLogIndex on empty manager should error")
	}
}

func TestBeforeLogIndex(t *testing.T) {
	p := newCVSProcess(t, 6)
	m := checkpoint.NewManager(checkpoint.Policy{IntervalMs: 1, MaxKept: 10})
	m.Checkpoint(p) // LogLen 0
	// Serve two requests, checkpoint, serve the rest.
	for p.ServedRequests() < 2 {
		if stop := p.Run(10_000); stop.Reason == vm.StopWaitInput {
			break
		}
	}
	mid := m.Checkpoint(p)
	p.Run(0)

	snap, err := m.BeforeLogIndex(mid.LogLen)
	if err != nil {
		t.Fatal(err)
	}
	if snap.LogLen > mid.LogLen {
		t.Errorf("BeforeLogIndex returned a later snapshot (%d > %d)", snap.LogLen, mid.LogLen)
	}
	if snap.SeqNo != mid.SeqNo {
		t.Errorf("expected the most recent qualifying snapshot, got seq %d", snap.SeqNo)
	}
	if first, err := m.BeforeLogIndex(0); err != nil || first.LogLen != 0 {
		t.Errorf("BeforeLogIndex(0) = %+v, %v", first, err)
	}
}

func TestSnapshotIsUsableForRollback(t *testing.T) {
	p := newCVSProcess(t, 4)
	m := checkpoint.NewManager(checkpoint.Policy{IntervalMs: 1, MaxKept: 5})
	snap := m.Checkpoint(p)
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("serving failed: %v", stop.Reason)
	}
	served := p.ServedRequests()
	p.Rollback(snap, proc.ModeReplay, false)
	if stop := p.Run(0); stop.Reason != vm.StopWaitInput {
		t.Fatalf("replay failed: %v", stop.Reason)
	}
	if p.ServedRequests() != served {
		t.Errorf("replay served %d, want %d", p.ServedRequests(), served)
	}
}

// TestIncrementalCheckpointPageStats checks that steady-state checkpoints
// capture only dirty pages: each serving interval dirties a handful of
// pages, so the cumulative captured count must stay far below what full
// scans would have walked. The first checkpoint of an untouched process is
// free: the clean image is the shared base-image snapshot itself.
func TestIncrementalCheckpointPageStats(t *testing.T) {
	p := newCVSProcess(t, 12)
	m := checkpoint.NewManager(checkpoint.Policy{IntervalMs: 1, MaxKept: 50})

	first := m.Checkpoint(p)
	if first.DirtyPages != 0 {
		t.Errorf("first checkpoint of an untouched process captured %d pages, want 0 (shared base image)", first.DirtyPages)
	}
	if first.Mem.Pages() == 0 {
		t.Error("first checkpoint covers no pages; base image missing")
	}
	for i := 0; i < 6; i++ {
		if stop := p.Run(20_000); stop.Reason != vm.StopWaitInput && stop.Reason != vm.StopInstrBudget {
			t.Fatalf("run stopped: %v", stop.Reason)
		}
		s := m.Checkpoint(p)
		if s.DirtyPages >= s.Mem.Pages() && s.DirtyPages > 0 && i > 0 {
			t.Errorf("steady checkpoint %d captured %d of %d pages; expected an incremental delta", i, s.DirtyPages, s.Mem.Pages())
		}
	}
	captured, full := m.ByteStats()
	if captured >= full {
		t.Errorf("cumulative captured bytes %d not below full-scan byte walks %d", captured, full)
	}
	if m.Taken() != 7 {
		t.Errorf("Taken = %d, want 7", m.Taken())
	}
	// Every retained checkpoint must still be fully restorable.
	snaps := m.Snapshots()
	last := snaps[len(snaps)-1]
	p.Rollback(last, proc.ModeReplay, false)
	if p.Machine.Mem.MappedPages() != last.Mem.Pages() {
		t.Errorf("rollback mapped %d pages, snapshot had %d", p.Machine.Mem.MappedPages(), last.Mem.Pages())
	}
}
