package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"sweeper/internal/heap"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// DiskStore persists guest checkpoints as content-addressed pages plus
// small per-guest manifest records, so a restarted daemon can hand each
// guest its last consistent checkpoint instead of a cold image.
//
// Layout under the store directory:
//
//	pages/<hex sha256>          — one immutable 4 KiB page content; written
//	                              once, referenced by every manifest (and
//	                              every guest) whose checkpoint contains a
//	                              page with that content.
//	guests/<guest>/full.json    — full manifest: register/allocator/RNG
//	                              state, layout, and the page-number → hash
//	                              table of the whole address space.
//	guests/<guest>/delta.N.json — incremental record N (1-based): only the
//	                              pages changed or unmapped since record
//	                              N-1, chained onto full.json. The chain is
//	                              folded back into a new full.json every
//	                              maxDeltaChain records.
//
// Page files are the CXL-style shape the ISSUE calls for: many consumers
// referencing one content-addressed immutable page image. Within a daemon
// the same sharing happens in memory through vm.BaseStore — Load interns
// every page it reads, so N restored guests (or N restarted daemons in one
// process) pay for one copy of each distinct page.
//
// Save diffs by frozen-page identity (vm.PageRef.Same), so a steady-state
// persist hashes and writes only the pages dirtied since the previous one.
type DiskStore struct {
	dir      string
	pagesDir string

	mu     sync.Mutex
	guests map[string]*guestPersist
	// dirty lists files written since the last Sync; Sync fsyncs them so a
	// clean shutdown puts every persisted checkpoint on stable storage.
	dirty map[string]struct{}

	pagesWritten int // page files created (not deduplicated away)
	pagesShared  int // page references that hit an existing file
}

type guestPersist struct {
	refs   map[uint32]vm.PageRef // page table at last persist, by identity
	hashes map[uint32]string     // hex hashes matching refs
	chain  int                   // delta records since last full manifest
}

// maxDeltaChain bounds how many delta records a loader must fold before it
// has a full manifest; past it, Save rewrites full.json and restarts.
const maxDeltaChain = 16

type persistMeta struct {
	Seq       int            `json:"seq"`
	TakenAtMs uint64         `json:"taken_at_ms"`
	Regs      vm.RegSnapshot `json:"regs"`
	Alloc     heap.State     `json:"alloc"`
	Rng       uint32         `json:"rng"`
	Layout    vm.Layout      `json:"layout"`
}

type persistFull struct {
	Meta  persistMeta       `json:"meta"`
	Pages map[string]string `json:"pages"` // decimal page number -> hex hash
}

type persistDelta struct {
	Meta    persistMeta       `json:"meta"`
	Changed map[string]string `json:"changed,omitempty"`
	Deleted []string          `json:"deleted,omitempty"`
}

// PersistedCheckpoint is a checkpoint loaded back from disk, with the
// memory image already interned through the process-wide vm.BaseStore.
type PersistedCheckpoint struct {
	Seq       int
	TakenAtMs uint64
	Regs      vm.RegSnapshot
	Alloc     heap.State
	Rng       uint32
	Layout    vm.Layout
	Mem       *vm.MemSnapshot
	Pages     int
}

// OpenDiskStore opens (creating if necessary) a checkpoint store rooted at
// dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	ds := &DiskStore{
		dir:      dir,
		pagesDir: filepath.Join(dir, "pages"),
		guests:   make(map[string]*guestPersist),
		dirty:    make(map[string]struct{}),
	}
	if err := os.MkdirAll(ds.pagesDir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: disk store: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "guests"), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: disk store: %w", err)
	}
	return ds, nil
}

// Dir returns the store's root directory.
func (ds *DiskStore) Dir() string { return ds.dir }

// PageStats returns how many page files Save created versus how many page
// references deduplicated onto an existing file.
func (ds *DiskStore) PageStats() (written, shared int) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.pagesWritten, ds.pagesShared
}

func guestDir(root, guest string) string {
	// Hex-encode the guest name so arbitrary names cannot escape the tree.
	return filepath.Join(root, "guests", hex.EncodeToString([]byte(guest)))
}

// Save persists the snapshot as guest's latest checkpoint. Only pages
// changed since the guest's previous Save are hashed and written; the
// manifest record is installed atomically (tmp + rename), so a crash
// mid-save leaves the previous checkpoint loadable.
func (ds *DiskStore) Save(guest string, s *proc.Snapshot, layout vm.Layout) error {
	cur := make(map[uint32]vm.PageRef)
	s.Mem.VisitPages(func(pn uint32, ref vm.PageRef) { cur[pn] = ref })

	ds.mu.Lock()
	defer ds.mu.Unlock()
	gp := ds.guests[guest]
	meta := persistMeta{
		Seq:       s.SeqNo,
		TakenAtMs: s.TakenAtMs,
		Regs:      s.Regs,
		Alloc:     s.Alloc,
		Rng:       s.Rng,
		Layout:    layout,
	}

	gdir := guestDir(ds.dir, guest)
	writeFull := gp == nil || gp.chain >= maxDeltaChain
	if gp == nil {
		gp = &guestPersist{}
		ds.guests[guest] = gp
	}

	// Hash and write the pages not present (by identity) last time.
	newHashes := make(map[uint32]string, len(cur))
	var changed map[string]string
	if !writeFull {
		changed = make(map[string]string)
	}
	for pn, ref := range cur {
		if old, ok := gp.refs[pn]; ok && ref.Same(old) {
			newHashes[pn] = gp.hashes[pn]
			continue
		}
		h := ref.Hash()
		hexh := hex.EncodeToString(h[:])
		newHashes[pn] = hexh
		if hexh == gp.hashes[pn] {
			// New page identity, same content (e.g. a rollback rebuilt the
			// snapshot chain): the file exists and the manifest entry stands.
			continue
		}
		if err := ds.ensurePageFile(hexh, ref.Data()[:]); err != nil {
			return err
		}
		if changed != nil {
			changed[strconv.FormatUint(uint64(pn), 10)] = hexh
		}
	}

	if err := os.MkdirAll(gdir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: disk store: %w", err)
	}
	if writeFull {
		full := persistFull{Meta: meta, Pages: make(map[string]string, len(newHashes))}
		for pn, h := range newHashes {
			full.Pages[strconv.FormatUint(uint64(pn), 10)] = h
		}
		if err := ds.writeJSON(filepath.Join(gdir, "full.json"), &full); err != nil {
			return err
		}
		// Stale delta records from the previous chain must not be folded on
		// top of the new full manifest.
		for i := 1; ; i++ {
			p := filepath.Join(gdir, deltaName(i))
			if err := os.Remove(p); err != nil {
				break
			}
			delete(ds.dirty, p)
		}
		gp.chain = 0
	} else {
		var deleted []string
		for pn := range gp.refs {
			if _, ok := cur[pn]; !ok {
				deleted = append(deleted, strconv.FormatUint(uint64(pn), 10))
			}
		}
		if len(changed) == 0 && len(deleted) == 0 {
			// The memory image is exactly what the last record already
			// describes. Persisting a meta-only delta would grow the chain on
			// every idle stop/start cycle; the slightly stale Seq/clock in the
			// existing record restores the same state.
			gp.refs = cur
			gp.hashes = newHashes
			return nil
		}
		sort.Strings(deleted)
		d := persistDelta{Meta: meta, Changed: changed, Deleted: deleted}
		gp.chain++
		if err := ds.writeJSON(filepath.Join(gdir, deltaName(gp.chain)), &d); err != nil {
			gp.chain--
			return err
		}
	}
	gp.refs = cur
	gp.hashes = newHashes
	return nil
}

func deltaName(i int) string { return fmt.Sprintf("delta.%d.json", i) }

// ensurePageFile writes the content-addressed page file if it does not
// already exist. Caller holds ds.mu.
func (ds *DiskStore) ensurePageFile(hexh string, data []byte) error {
	path := filepath.Join(ds.pagesDir, hexh)
	if _, err := os.Stat(path); err == nil {
		ds.pagesShared++
		return nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: disk store: writing page: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: disk store: installing page: %w", err)
	}
	ds.pagesWritten++
	ds.dirty[path] = struct{}{}
	return nil
}

// writeJSON atomically installs a manifest record. Caller holds ds.mu.
func (ds *DiskStore) writeJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: disk store: encoding %s: %w", filepath.Base(path), err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: disk store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: disk store: %w", err)
	}
	ds.dirty[path] = struct{}{}
	return nil
}

// Load reads guest's latest persisted checkpoint: the full manifest plus
// every intact delta record folded on top (a torn or missing record ends
// the chain at the last consistent state). Every page is verified against
// its content hash and interned through the process-wide vm.BaseStore.
// Any error means the caller should fall back to a cold start.
func (ds *DiskStore) Load(guest string) (*PersistedCheckpoint, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	gdir := guestDir(ds.dir, guest)
	data, err := os.ReadFile(filepath.Join(gdir, "full.json"))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: disk store: %w", err)
	}
	var full persistFull
	if err := json.Unmarshal(data, &full); err != nil {
		return nil, fmt.Errorf("checkpoint: disk store: corrupt full.json for %s: %w", guest, err)
	}
	meta := full.Meta
	table := make(map[uint32]string, len(full.Pages))
	for k, h := range full.Pages {
		pn, err := strconv.ParseUint(k, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: disk store: bad page number %q: %w", k, err)
		}
		table[uint32(pn)] = h
	}
	chain := 0
	for i := 1; ; i++ {
		data, err := os.ReadFile(filepath.Join(gdir, deltaName(i)))
		if err != nil {
			break
		}
		var d persistDelta
		if err := json.Unmarshal(data, &d); err != nil {
			break // torn record: the chain ends at the last consistent state
		}
		for k, h := range d.Changed {
			pn, err := strconv.ParseUint(k, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: disk store: bad page number %q: %w", k, err)
			}
			table[uint32(pn)] = h
		}
		for _, k := range d.Deleted {
			pn, err := strconv.ParseUint(k, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: disk store: bad page number %q: %w", k, err)
			}
			delete(table, uint32(pn))
		}
		meta = d.Meta
		chain = i
	}

	pages := make(map[uint32][]byte, len(table))
	for pn, hexh := range table {
		data, err := os.ReadFile(filepath.Join(ds.pagesDir, hexh))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: disk store: missing page %s: %w", hexh, err)
		}
		if len(data) != vm.PageSize {
			return nil, fmt.Errorf("checkpoint: disk store: page %s has %d bytes", hexh, len(data))
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != hexh {
			return nil, fmt.Errorf("checkpoint: disk store: page %s content does not match its hash", hexh)
		}
		pages[pn] = data
	}
	mem := vm.DefaultBaseStore().InternSnapshot(pages)

	// Seed the save-side diff cache from what is now on disk, so the first
	// post-restore Save persists only what the guest dirties afterwards.
	gp := &guestPersist{
		refs:   make(map[uint32]vm.PageRef, len(pages)),
		hashes: make(map[uint32]string, len(pages)),
		chain:  chain,
	}
	mem.VisitPages(func(pn uint32, ref vm.PageRef) {
		gp.refs[pn] = ref
		gp.hashes[pn] = table[pn]
	})
	ds.guests[guest] = gp

	return &PersistedCheckpoint{
		Seq:       meta.Seq,
		TakenAtMs: meta.TakenAtMs,
		Regs:      meta.Regs,
		Alloc:     meta.Alloc,
		Rng:       meta.Rng,
		Layout:    meta.Layout,
		Mem:       mem,
		Pages:     len(pages),
	}, nil
}

// Guests lists the guests with a persisted checkpoint on disk.
func (ds *DiskStore) Guests() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(ds.dir, "guests"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := hex.DecodeString(e.Name())
		if err != nil {
			continue
		}
		out = append(out, string(name))
	}
	sort.Strings(out)
	return out, nil
}

// Sync fsyncs every file written since the last Sync, so a clean shutdown
// puts all persisted checkpoints on stable storage.
func (ds *DiskStore) Sync() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	var firstErr error
	for path := range ds.dirty {
		f, err := os.Open(path)
		if err != nil {
			if firstErr == nil && !errors.Is(err, os.ErrNotExist) {
				firstErr = err
			}
			continue
		}
		if err := f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		f.Close()
	}
	ds.dirty = make(map[string]struct{})
	if firstErr != nil {
		return fmt.Errorf("checkpoint: disk store: sync: %w", firstErr)
	}
	return nil
}
