// Package checkpoint implements the Rx-style checkpoint manager: a bounded
// ring of lightweight in-memory process snapshots taken at a configurable
// interval of virtual time. Snapshots are taken at request boundaries, kept
// for a short time (the paper keeps the 20 most recent, at 200 ms intervals)
// and discarded as new ones arrive.
package checkpoint

import (
	"fmt"

	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Policy controls when checkpoints are taken and how many are retained.
type Policy struct {
	// IntervalMs is the minimum virtual time between checkpoints.
	IntervalMs uint64
	// MaxKept is the number of recent checkpoints retained.
	MaxKept int
}

// DefaultPolicy mirrors the paper's experiment setup: a checkpoint every
// 200 ms, keeping the 20 most recent.
func DefaultPolicy() Policy { return Policy{IntervalMs: 200, MaxKept: 20} }

// Manager owns the snapshot ring for one protected process.
type Manager struct {
	policy Policy
	snaps  []*proc.Snapshot
	seq    int
	lastMs uint64
	taken  int
	// bytesCaptured sums the page data each checkpoint captured (sub-page
	// dirty runs by run length, whole-page captures by vm.PageSize);
	// bytesFull sums what full-scan, full-page checkpoints would have walked
	// instead (mapped pages times vm.PageSize). Their ratio is the win of
	// the sub-page incremental design across the run.
	bytesCaptured int
	bytesFull     int
}

// NewManager returns a manager with the given policy; zero fields fall back
// to the defaults.
func NewManager(policy Policy) *Manager {
	def := DefaultPolicy()
	if policy.IntervalMs == 0 {
		policy.IntervalMs = def.IntervalMs
	}
	if policy.MaxKept <= 0 {
		policy.MaxKept = def.MaxKept
	}
	return &Manager{policy: policy}
}

// Policy returns the manager's policy.
func (m *Manager) Policy() Policy { return m.policy }

// Count returns the number of retained snapshots.
func (m *Manager) Count() int { return len(m.snaps) }

// Taken returns the total number of checkpoints taken since creation.
func (m *Manager) Taken() int { return m.taken }

// ByteStats returns the cumulative byte counts across every checkpoint
// taken: captured is the page data actually snapshotted (dirty runs plus
// whole pages), full is what full-scan, full-page snapshots would have
// copied instead.
func (m *Manager) ByteStats() (captured, full int) {
	return m.bytesCaptured, m.bytesFull
}

// Checkpoint unconditionally takes a snapshot of p and adds it to the ring,
// evicting the oldest if the ring is full.
func (m *Manager) Checkpoint(p *proc.Process) *proc.Snapshot {
	m.seq++
	s := p.Snapshot(m.seq)
	m.snaps = append(m.snaps, s)
	if len(m.snaps) > m.policy.MaxKept {
		m.snaps = m.snaps[1:]
	}
	m.lastMs = s.TakenAtMs
	m.taken++
	m.bytesCaptured += s.CapturedBytes
	m.bytesFull += s.Mem.Pages() * vm.PageSize
	return s
}

// MaybeCheckpoint takes a snapshot only if at least the policy interval of
// virtual time has elapsed since the previous one. It returns nil when no
// checkpoint was taken. Callers invoke it at request boundaries.
func (m *Manager) MaybeCheckpoint(p *proc.Process) *proc.Snapshot {
	now := p.Machine.NowMillis()
	if len(m.snaps) > 0 && now < m.lastMs+m.policy.IntervalMs {
		return nil
	}
	return m.Checkpoint(p)
}

// Reset drops every retained snapshot and the interval clock, keeping the
// policy and cumulative counters. A warm-restarted guest calls it after
// adopting a persisted checkpoint: the cold-image snapshot taken at
// construction must not remain a rollback target once the restored state
// supersedes it.
func (m *Manager) Reset() {
	m.snaps = nil
	m.lastMs = 0
}

// Latest returns the most recent snapshot, or nil if none exist.
func (m *Manager) Latest() *proc.Snapshot {
	if len(m.snaps) == 0 {
		return nil
	}
	return m.snaps[len(m.snaps)-1]
}

// Oldest returns the oldest retained snapshot, or nil if none exist.
func (m *Manager) Oldest() *proc.Snapshot {
	if len(m.snaps) == 0 {
		return nil
	}
	return m.snaps[0]
}

// Snapshots returns the retained snapshots from oldest to newest.
func (m *Manager) Snapshots() []*proc.Snapshot {
	out := make([]*proc.Snapshot, len(m.snaps))
	copy(out, m.snaps)
	return out
}

// BeforeLogIndex returns the most recent snapshot taken before the event log
// had grown to logIndex entries — i.e. a snapshot from before the given
// request was delivered. The analysis module uses it to roll back to "a point
// prior to the attacking requests being read in".
func (m *Manager) BeforeLogIndex(logIndex int) (*proc.Snapshot, error) {
	for i := len(m.snaps) - 1; i >= 0; i-- {
		if m.snaps[i].LogLen <= logIndex {
			return m.snaps[i], nil
		}
	}
	return nil, fmt.Errorf("checkpoint: no retained snapshot precedes log index %d", logIndex)
}
