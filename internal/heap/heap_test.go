package heap

import (
	"strings"
	"testing"
	"testing/quick"

	"sweeper/internal/vm"
)

const (
	testBase = uint32(0x08200000)
	testSize = uint32(1 << 20)
)

func newAlloc() (*Allocator, *vm.Memory) {
	mem := vm.NewMemory()
	return New(mem, testBase, testSize), mem
}

func TestMallocBasics(t *testing.T) {
	a, mem := newAlloc()
	p1, err := a.Malloc(100)
	if err != nil || p1 == 0 {
		t.Fatalf("malloc: %v", err)
	}
	if p1 != testBase+HeaderSize {
		t.Errorf("first chunk at %#x", p1)
	}
	if !mem.IsMapped(p1) {
		t.Error("allocated memory not mapped")
	}
	p2, err := a.Malloc(50)
	if err != nil || p2 <= p1 {
		t.Fatalf("second malloc: %#x, %v", p2, err)
	}
	if mallocs, frees := a.Stats(); mallocs != 2 || frees != 0 {
		t.Errorf("stats %d/%d", mallocs, frees)
	}
	// Zero-size allocations are still distinct chunks.
	p3, err := a.Malloc(0)
	if err != nil || p3 == 0 || p3 == p2 {
		t.Errorf("malloc(0) = %#x, %v", p3, err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	a, _ := newAlloc()
	p1, _ := a.Malloc(64)
	p2, _ := a.Malloc(64)
	if err := a.Free(p1); err != nil {
		t.Fatalf("free: %v", err)
	}
	// A same-size allocation reuses the freed chunk (first fit).
	p3, _ := a.Malloc(64)
	if p3 != p1 {
		t.Errorf("expected reuse of %#x, got %#x", p1, p3)
	}
	_ = p2
}

func TestFreeNullIsNoop(t *testing.T) {
	a, _ := newAlloc()
	if err := a.Free(0); err != nil {
		t.Errorf("free(NULL) should succeed: %v", err)
	}
}

func TestChunkSplitting(t *testing.T) {
	a, _ := newAlloc()
	p1, _ := a.Malloc(256)
	a.Free(p1)
	p2, _ := a.Malloc(32)
	if p2 != p1 {
		t.Fatalf("small allocation should reuse the free chunk head")
	}
	// The remainder must still be usable.
	p3, _ := a.Malloc(100)
	if p3 == 0 {
		t.Fatal("remainder allocation failed")
	}
	if p3 >= a.Brk() {
		t.Error("remainder allocation should come from the split chunk, not the brk")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a, _ := newAlloc()
	p, _ := a.Malloc(32)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	err := a.Free(p)
	ce, ok := err.(*CorruptionError)
	if !ok || !strings.Contains(ce.Detail, "double free") {
		t.Errorf("expected double free corruption, got %v", err)
	}
	if ce.Addr != p {
		t.Errorf("corruption address %#x, want %#x", ce.Addr, p)
	}
}

func TestWildFreeDetected(t *testing.T) {
	a, _ := newAlloc()
	a.Malloc(32)
	if err := a.Free(testBase + 9999); err == nil {
		t.Error("free of a non-chunk address should be corruption")
	}
	if err := a.Free(0xDEAD0000); err == nil {
		t.Error("free of a pointer outside the heap should be corruption")
	}
}

func TestHeapOverflowCorruptsNextChunk(t *testing.T) {
	a, mem := newAlloc()
	p1, _ := a.Malloc(32)
	p2, _ := a.Malloc(32)
	// Overflow p1 into p2's header.
	for i := uint32(0); i < 32+HeaderSize; i++ {
		mem.WriteU8(p1+i, 0x41)
	}
	ok, detail, chunk := a.CheckConsistency()
	if ok {
		t.Fatal("consistency check should fail after the overflow")
	}
	if chunk.Addr != p2 {
		t.Errorf("corrupt chunk reported at %#x, want %#x (%s)", chunk.Addr, p2, detail)
	}
	// malloc/free now report corruption, like glibc aborting.
	if _, err := a.Malloc(16); err == nil {
		t.Error("malloc after corruption should fail")
	}
	if err := a.Free(p2); err == nil {
		t.Error("free of the corrupted chunk should fail")
	}
}

func TestWalkAndLiveChunks(t *testing.T) {
	a, _ := newAlloc()
	p1, _ := a.Malloc(16)
	p2, _ := a.Malloc(24)
	p3, _ := a.Malloc(32)
	a.Free(p2)
	chunks := a.Walk()
	if len(chunks) != 3 {
		t.Fatalf("walk found %d chunks, want 3", len(chunks))
	}
	live := a.LiveChunks()
	if len(live) != 2 || live[0].Addr != p1 || live[1].Addr != p3 {
		t.Errorf("live chunks wrong: %+v", live)
	}
	for _, c := range chunks {
		if c.Size%4 != 0 {
			t.Errorf("chunk size %d not aligned", c.Size)
		}
	}
}

func TestChunkContaining(t *testing.T) {
	a, _ := newAlloc()
	p, _ := a.Malloc(40)
	c, ok := a.ChunkContaining(p + 10)
	if !ok || c.Addr != p || !c.Allocated {
		t.Errorf("ChunkContaining failed: %+v ok=%v", c, ok)
	}
	if _, ok := a.ChunkContaining(p + 100); ok {
		t.Error("address outside any chunk should not be found")
	}
	if !c.Contains(p) || c.Contains(c.End()) {
		t.Error("Contains boundary conditions wrong")
	}
}

func TestMmapThresholdSeparatesLargeAllocations(t *testing.T) {
	a, _ := newAlloc()
	a.SetMmapThreshold(4096)
	small, _ := a.Malloc(128)
	big, _ := a.Malloc(8192)
	if small >= a.MmapBase() {
		t.Error("small allocation should live in the main arena")
	}
	if big < a.MmapBase() {
		t.Errorf("large allocation at %#x should live in the mmap zone (base %#x)", big, a.MmapBase())
	}
	// Both arenas are visible to the walkers.
	if _, ok := a.ChunkContaining(big + 4); !ok {
		t.Error("mmap-zone chunk not found by ChunkContaining")
	}
	if !a.InHeap(big) || !a.InHeapRegion(big) {
		t.Error("mmap-zone address should be reported as heap")
	}
	if err := a.Free(big); err != nil {
		t.Errorf("freeing an mmap-zone chunk: %v", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	mem := vm.NewMemory()
	a := New(mem, testBase, 4*vm.PageSize)
	var last uint32
	for i := 0; i < 100; i++ {
		p, err := a.Malloc(1024)
		if err != nil {
			if err != ErrOutOfMemory {
				t.Fatalf("expected ErrOutOfMemory, got %v", err)
			}
			if p != 0 {
				t.Error("failed malloc should return 0")
			}
			return
		}
		last = p
	}
	t.Fatalf("allocator never ran out of memory (last=%#x)", last)
}

func TestSaveRestore(t *testing.T) {
	a, mem := newAlloc()
	p1, _ := a.Malloc(64)
	state := a.Save()
	memSnap := mem.Snapshot()

	p2, _ := a.Malloc(128)
	a.Free(p1)

	a.Restore(state)
	mem.Restore(memSnap)
	// After restore, the heap looks exactly as at the snapshot: one live chunk.
	live := a.LiveChunks()
	if len(live) != 1 || live[0].Addr != p1 {
		t.Errorf("live after restore: %+v", live)
	}
	// And allocation proceeds deterministically: the next chunk lands where
	// p2 did the first time.
	p2again, _ := a.Malloc(128)
	if p2again != p2 {
		t.Errorf("post-restore allocation at %#x, want %#x", p2again, p2)
	}
}

func TestCorruptionErrorString(t *testing.T) {
	e := &CorruptionError{Addr: 0x1234, Detail: "double free"}
	if !strings.Contains(e.Error(), "0x1234") || !strings.Contains(e.Error(), "double free") {
		t.Errorf("error string %q", e.Error())
	}
}

// TestQuickAllocatorInvariants drives the allocator with random alloc/free
// sequences and checks the inline metadata stays consistent, chunks never
// overlap, and every live pointer is found by ChunkContaining.
func TestQuickAllocatorInvariants(t *testing.T) {
	prop := func(ops []uint16) bool {
		a, _ := newAlloc()
		var live []uint32
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := uint32(op%512) + 1
				p, err := a.Malloc(size)
				if err != nil {
					return false
				}
				live = append(live, p)
			} else {
				idx := int(op/3) % len(live)
				if err := a.Free(live[idx]); err != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			}
		}
		if ok, _, _ := a.CheckConsistency(); !ok {
			return false
		}
		// No two walked chunks overlap and all live pointers are found.
		chunks := a.Walk()
		for i := 1; i < len(chunks); i++ {
			prev, cur := chunks[i-1], chunks[i]
			if prev.HeaderAddr < testBase+testSize/2 && cur.HeaderAddr < testBase+testSize/2 {
				if prev.End() > cur.HeaderAddr {
					return false
				}
			}
		}
		for _, p := range live {
			c, ok := a.ChunkContaining(p)
			if !ok || !c.Allocated || c.Addr != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
