// Package heap implements the guest heap allocator. All allocator metadata
// (chunk headers) lives inline in guest memory, exactly like the paper's
// malloc: heap overflows corrupt the next chunk's header, double frees are
// detected at free() time ("crash in lib. free; heap inconsistent"), and
// analysis tools can walk the heap image to check consistency and to find the
// chunk containing any address — which is how the modified red-zone technique
// of the memory-bug detector and the heap-bounds VSEF are implemented.
//
// Like dlmalloc, allocations at or above a threshold are served from a
// separate, far-away region (the "mmap zone"); a sufficiently long overflow
// of a small main-arena chunk therefore runs off the end of the mapped main
// arena and segfaults at the overflowing store, which is how the paper's
// Squid exploit crashes inside strcat.
package heap

import (
	"errors"
	"fmt"

	"sweeper/internal/vm"
)

// Chunk header layout: two 32-bit words immediately before the payload.
//
//	word 0: payload size in bytes
//	word 1: status magic (allocated or free)
const (
	// HeaderSize is the inline per-chunk metadata size in bytes.
	HeaderSize = 8
	// MagicAlloc marks a live chunk.
	MagicAlloc = 0xA110C8ED
	// MagicFree marks a freed chunk.
	MagicFree = 0xF7EE0BAD
	// minPayload is the smallest payload a chunk will be split down to.
	minPayload = 8
	// DefaultMmapThreshold is the allocation size at or above which chunks
	// are served from the separate large-object (mmap) zone.
	DefaultMmapThreshold = 256 << 10
)

// ErrOutOfMemory is returned when the heap region is exhausted; the guest
// receives a NULL pointer, as from a real malloc.
var ErrOutOfMemory = errors.New("heap: out of memory")

// CorruptionError models the allocator detecting corrupted metadata (the
// analogue of glibc aborting with "double free or corruption"). The process
// runtime converts it into a heap-corruption fault at the calling syscall.
type CorruptionError struct {
	Addr   uint32 // address of the suspect chunk payload or header
	Detail string
}

// Error implements the error interface.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("heap corruption at %#x: %s", e.Addr, e.Detail)
}

// Chunk describes one heap chunk as seen by walking the inline metadata.
type Chunk struct {
	HeaderAddr uint32
	Addr       uint32 // payload address
	Size       uint32 // payload size
	Allocated  bool
	Corrupt    bool
	Reason     string
}

// End returns the first address past the chunk's payload.
func (c Chunk) End() uint32 { return c.Addr + c.Size }

// Contains reports whether addr falls within the chunk's payload.
func (c Chunk) Contains(addr uint32) bool { return addr >= c.Addr && addr < c.End() }

// arena is one contiguous allocation region managed with inline headers.
type arena struct {
	base   uint32
	limit  uint32 // size of the region
	brk    uint32 // first unused address
	mapped uint32 // first unmapped address (page aligned)
}

// ArenaState is the host-side state of one arena.
type ArenaState struct {
	Brk    uint32
	Mapped uint32
}

// State is the allocator's host-side state, captured and restored by
// checkpoints (chunk metadata itself lives in guest memory and is captured by
// the memory snapshot).
type State struct {
	Main    ArenaState
	Mmap    ArenaState
	Mallocs uint64
	Frees   uint64
}

// Allocator manages the guest heap region [base, base+size): the lower half
// is the main arena, the upper half the large-object (mmap) zone.
type Allocator struct {
	mem       *vm.Memory
	main      arena
	mmap      arena
	threshold uint32

	mallocs uint64
	frees   uint64
}

// New creates an allocator for the given guest memory region. No pages are
// mapped until the first allocation.
func New(mem *vm.Memory, base, size uint32) *Allocator {
	half := (size / 2) &^ (vm.PageSize - 1)
	if half == 0 {
		half = size
	}
	a := &Allocator{
		mem:       mem,
		main:      arena{base: base, limit: half, brk: base, mapped: base},
		mmap:      arena{base: base + half, limit: size - half, brk: base + half, mapped: base + half},
		threshold: DefaultMmapThreshold,
	}
	return a
}

// SetMmapThreshold sets the size at or above which allocations are served
// from the large-object zone. It must be called before the first allocation.
func (a *Allocator) SetMmapThreshold(t uint32) {
	if t == 0 {
		t = DefaultMmapThreshold
	}
	a.threshold = t
}

// MmapThreshold returns the current large-object threshold (process cloning
// uses it to recreate an allocator with identical placement policy).
func (a *Allocator) MmapThreshold() uint32 { return a.threshold }

// Base returns the lowest heap address.
func (a *Allocator) Base() uint32 { return a.main.base }

// Brk returns the current top of the main arena (first unused address).
func (a *Allocator) Brk() uint32 { return a.main.brk }

// MmapBase returns the base of the large-object zone.
func (a *Allocator) MmapBase() uint32 { return a.mmap.base }

// MmapBrk returns the current top of the large-object zone.
func (a *Allocator) MmapBrk() uint32 { return a.mmap.brk }

// Stats returns the number of malloc and free calls serviced.
func (a *Allocator) Stats() (mallocs, frees uint64) { return a.mallocs, a.frees }

// Save captures the host-side allocator state for a checkpoint.
func (a *Allocator) Save() State {
	return State{
		Main:    ArenaState{Brk: a.main.brk, Mapped: a.main.mapped},
		Mmap:    ArenaState{Brk: a.mmap.brk, Mapped: a.mmap.mapped},
		Mallocs: a.mallocs,
		Frees:   a.frees,
	}
}

// Restore reinstates host-side allocator state saved by Save.
func (a *Allocator) Restore(s State) {
	a.main.brk = s.Main.Brk
	a.main.mapped = s.Main.Mapped
	a.mmap.brk = s.Mmap.Brk
	a.mmap.mapped = s.Mmap.Mapped
	a.mallocs = s.Mallocs
	a.frees = s.Frees
}

func align4(n uint32) uint32 { return (n + 3) &^ 3 }

func (a *Allocator) readHeader(hdr uint32) (size, magic uint32, ok bool) {
	size, ok1 := a.mem.ReadWord(hdr)
	magic, ok2 := a.mem.ReadWord(hdr + 4)
	return size, magic, ok1 && ok2
}

func (a *Allocator) writeHeader(hdr, size, magic uint32) bool {
	return a.mem.WriteWord(hdr, size) && a.mem.WriteWord(hdr+4, magic)
}

// ensureMapped maps pages of the arena up to addr (exclusive).
func (a *Allocator) ensureMapped(ar *arena, addr uint32) bool {
	if addr <= ar.mapped {
		return true
	}
	end := ar.base + ar.limit
	if addr > end {
		return false
	}
	newMapped := (addr + vm.PageSize - 1) &^ (vm.PageSize - 1)
	if newMapped > end {
		newMapped = end
	}
	a.mem.MapRegion(ar.mapped, newMapped-ar.mapped)
	ar.mapped = newMapped
	return true
}

func (a *Allocator) allocFrom(ar *arena, need uint32) (uint32, error) {
	// First fit over existing chunks.
	hdr := ar.base
	for hdr < ar.brk {
		csize, magic, ok := a.readHeader(hdr)
		if !ok {
			return 0, &CorruptionError{Addr: hdr, Detail: "chunk header unmapped during malloc walk"}
		}
		if magic != MagicAlloc && magic != MagicFree {
			return 0, &CorruptionError{Addr: hdr + HeaderSize, Detail: "corrupted chunk header magic during malloc walk"}
		}
		if hdr+HeaderSize+csize < hdr || hdr+HeaderSize+align4(csize) > ar.brk {
			return 0, &CorruptionError{Addr: hdr + HeaderSize, Detail: "corrupted chunk size during malloc walk"}
		}
		if magic == MagicFree && csize >= need {
			// Reuse; split if worthwhile.
			if csize >= need+HeaderSize+minPayload {
				restHdr := hdr + HeaderSize + need
				a.writeHeader(restHdr, csize-need-HeaderSize, MagicFree)
				a.writeHeader(hdr, need, MagicAlloc)
			} else {
				a.writeHeader(hdr, csize, MagicAlloc)
			}
			return hdr + HeaderSize, nil
		}
		hdr += HeaderSize + align4(csize)
	}

	// Extend the break.
	newBrk := ar.brk + HeaderSize + need
	if newBrk < ar.brk || newBrk > ar.base+ar.limit {
		return 0, ErrOutOfMemory
	}
	if !a.ensureMapped(ar, newBrk) {
		return 0, ErrOutOfMemory
	}
	hdr = ar.brk
	ar.brk = newBrk
	if !a.writeHeader(hdr, need, MagicAlloc) {
		return 0, ErrOutOfMemory
	}
	return hdr + HeaderSize, nil
}

// Malloc allocates size bytes and returns the payload address. It returns 0
// and ErrOutOfMemory when the region is exhausted, or a *CorruptionError when
// walking the chunk list encounters corrupted metadata (the behaviour a real
// allocator exhibits after a heap overflow has smashed a header).
func (a *Allocator) Malloc(size uint32) (uint32, error) {
	a.mallocs++
	if size == 0 {
		size = 1
	}
	need := align4(size)
	if need >= a.threshold && a.mmap.limit > 0 {
		return a.allocFrom(&a.mmap, need)
	}
	return a.allocFrom(&a.main, need)
}

func (a *Allocator) arenaFor(addr uint32) *arena {
	if addr >= a.mmap.base && addr < a.mmap.base+a.mmap.limit {
		return &a.mmap
	}
	if addr >= a.main.base && addr < a.main.base+a.main.limit {
		return &a.main
	}
	return nil
}

// Free releases the chunk whose payload starts at addr. Freeing an already
// freed chunk or a non-chunk address returns a *CorruptionError, modelling
// the crash-inside-free that the paper's CVS double-free exploit produces.
func (a *Allocator) Free(addr uint32) error {
	a.frees++
	if addr == 0 {
		// free(NULL) is a no-op, as in C.
		return nil
	}
	ar := a.arenaFor(addr)
	if ar == nil || addr < ar.base+HeaderSize || addr >= ar.brk {
		return &CorruptionError{Addr: addr, Detail: "free of pointer outside heap"}
	}
	hdr := addr - HeaderSize
	size, magic, ok := a.readHeader(hdr)
	if !ok {
		return &CorruptionError{Addr: addr, Detail: "free of pointer with unmapped header"}
	}
	switch magic {
	case MagicAlloc:
		if hdr+HeaderSize+size > ar.brk {
			return &CorruptionError{Addr: addr, Detail: "freeing chunk with corrupted size"}
		}
		a.writeHeader(hdr, size, MagicFree)
		return nil
	case MagicFree:
		return &CorruptionError{Addr: addr, Detail: "double free"}
	default:
		return &CorruptionError{Addr: addr, Detail: "free of chunk with corrupted header magic"}
	}
}

func (a *Allocator) walkArena(ar *arena) []Chunk {
	var out []Chunk
	hdr := ar.base
	for hdr < ar.brk {
		size, magic, ok := a.readHeader(hdr)
		c := Chunk{HeaderAddr: hdr, Addr: hdr + HeaderSize, Size: size}
		if !ok {
			c.Corrupt = true
			c.Reason = "header unmapped"
			out = append(out, c)
			return out
		}
		switch magic {
		case MagicAlloc:
			c.Allocated = true
		case MagicFree:
			c.Allocated = false
		default:
			c.Corrupt = true
			c.Reason = fmt.Sprintf("bad magic %#x", magic)
			out = append(out, c)
			return out
		}
		next := hdr + HeaderSize + align4(size)
		if next > ar.brk || next < hdr {
			c.Corrupt = true
			c.Reason = "size extends past break"
			out = append(out, c)
			return out
		}
		out = append(out, c)
		hdr = next
	}
	return out
}

// Walk returns every chunk found by scanning the inline metadata of both
// arenas. A corrupted chunk terminates its arena's walk and is reported with
// Corrupt set.
func (a *Allocator) Walk() []Chunk {
	out := a.walkArena(&a.main)
	out = append(out, a.walkArena(&a.mmap)...)
	return out
}

// CheckConsistency walks the heap and returns a description of the first
// corruption found, or ok=true if the heap metadata is intact. Core-dump
// analysis uses it to report "heap inconsistent".
func (a *Allocator) CheckConsistency() (ok bool, detail string, corruptChunk Chunk) {
	for _, c := range a.Walk() {
		if c.Corrupt {
			return false, fmt.Sprintf("chunk at %#x: %s", c.Addr, c.Reason), c
		}
	}
	return true, "", Chunk{}
}

// ChunkContaining returns the chunk whose payload contains addr. The
// heap-bounds VSEF uses it to decide whether a store is in bounds.
func (a *Allocator) ChunkContaining(addr uint32) (Chunk, bool) {
	for _, c := range a.Walk() {
		if !c.Corrupt && c.Contains(addr) {
			return c, true
		}
	}
	return Chunk{}, false
}

// LiveChunks returns only the currently allocated chunks.
func (a *Allocator) LiveChunks() []Chunk {
	var out []Chunk
	for _, c := range a.Walk() {
		if c.Allocated && !c.Corrupt {
			out = append(out, c)
		}
	}
	return out
}

// InHeap reports whether addr lies inside heap address space used so far
// (either arena, up to its break).
func (a *Allocator) InHeap(addr uint32) bool {
	return (addr >= a.main.base && addr < a.main.brk) || (addr >= a.mmap.base && addr < a.mmap.brk)
}

// InHeapRegion reports whether addr lies anywhere inside the heap region,
// used or not.
func (a *Allocator) InHeapRegion(addr uint32) bool {
	return addr >= a.main.base && addr < a.mmap.base+a.mmap.limit
}
